// Service-level SLO sweep: RPC/KV traffic over ITB vs up*/down* routing.
//
// The paper's §6 next step is application traffic; the ROADMAP north star
// is "heavy traffic from millions of users". This bench drives the itb::svc
// layer — open-loop arrivals (lognormal inter-arrival gaps), bounded-Pareto
// heavy-tailed service demands, three priority classes, tokened admission
// with a bounded blocked-request buffer and first-fit admit-on-departure —
// over a 8-switch irregular COW, and reports the service-level picture the
// fabric actually delivers: p50/p99/p999 request latency split into
// admission-wait vs network vs service time, goodput, deadline-miss rate,
// and admission blocking probability.
//
// Three tables:
//   * load sweep      — offered rate to saturation, UD vs ITB;
//   * pattern table   — uniform / incast / hotspot / all-to-all at a fixed
//                       rate (incast is where admission control earns its
//                       keep: ~all clients dogpile one server);
//   * chaos soak      — the 70%-load point re-run under scheduled fault
//                       windows (links, a switch, NIC stalls) with
//                       remap-and-recover live; --watchdog arms the
//                       liveness sentinel and the verdict lands in the
//                       health_* scalars CI gates on.
//
// `--jobs N` fans the independent points across threads (bit-identical
// output for any N), `--json <path>` writes the itb.telemetry.v1 report,
// `--flight` records packet lifecycles, `--watchdog` arms liveness.
#include <cstdio>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/svc/openloop.hpp"
#include "itb/telemetry/export.hpp"

namespace {

using namespace itb;

constexpr std::uint64_t kSeed = 6001;
constexpr sim::Duration kWarmup = 2 * sim::kMs;
constexpr sim::Duration kMeasure = 10 * sim::kMs;
const std::vector<double> kRates = {2.5e3, 5e3, 1e4, 1.5e4, 2e4, 2.5e4};
// Pattern rates are scaled so each exercise is an overload study, not a
// collapse: incast concentrates 31 clients on one 26.7k req/s server, so
// 1.2k req/s/client offers ~1.4x its capacity; all-to-all fans every
// arrival into 31 calls, so the per-client arrival rate drops by the
// fan-out to keep the per-host call rate comparable to the uniform runs.
constexpr double kHotspotRate = 5e3;
constexpr double kIncastRate = 1.2e3;
constexpr double kAllToAllRate = 5e3 / 31.0;

topo::Topology make_network(std::uint64_t seed) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 8;
  spec.hosts_per_switch = 4;
  return topo::make_random_irregular(spec, rng);
}

struct PointSpec {
  routing::Policy policy = routing::Policy::kUpDown;
  double rate = 1e4;
  svc::SvcPattern pattern = svc::SvcPattern::kUniform;
  bool chaos = false;
  bool sample = false;  // embed registry counters in the JSON report
};

struct PointOutput {
  svc::SloStats slo;
  svc::AdmissionStats admission;
  svc::OpenLoopStats driver;
  std::uint64_t retransmissions = 0;
  sim::Time sim_end = 0;
  std::vector<telemetry::MetricSample> counters;
  health::LivenessVerdict liveness;
  flight::Recording recording;
};

PointOutput run_point(const PointSpec& ps, bool watchdog,
                      const flight::RecorderConfig& frc) {
  core::ClusterConfig cfg;
  cfg.topology = make_network(kSeed);
  cfg.policy = ps.policy;
  cfg.flight = frc;
  cfg.watchdog.enabled = watchdog;
  // Loaded-network MCP (paper §4): circular pool, drop when full; GM
  // retransmission recovers. Deep send queues so the fabric saturates
  // before GM token flow control does.
  cfg.mcp_options.recv_buffers = 64;
  cfg.mcp_options.drop_when_full = true;
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 5 * sim::kMs;
  if (ps.chaos) {
    fault::FaultSchedule::ChaosSpec spec;
    spec.horizon = kWarmup + kMeasure;
    spec.link_windows = 6;
    spec.switch_windows = 1;
    spec.stall_windows = 2;
    spec.mean_duration = 800 * sim::kUs;
    spec.seed = kSeed + 13;
    cfg.fault_schedule = fault::FaultSchedule::chaos(cfg.topology, spec);
    cfg.remap_delay = 300 * sim::kUs;
  }
  core::Cluster cluster(std::move(cfg));

  svc::EndpointConfig ec;
  // Admission: 8 tokens, heavy requests cost up to 4 of them, a 32-deep
  // blocked buffer. Saturation is therefore reachable inside the sweep:
  // capacity / mean_service ~ 8 / 300us ~ 26.7k req/s per server.
  ec.server.admission.capacity_tokens = 8;
  ec.server.admission.queue_limit = 32;
  ec.server.cost_quantum = 150 * sim::kUs;
  ec.server.max_cost = 4;
  ec.client.max_retries = 1;
  ec.client.deadlines = {2 * sim::kMs, 8 * sim::kMs, 32 * sim::kMs};
  ec.client.measure_start = kWarmup;
  ec.client.measure_end = kWarmup + kMeasure;

  std::vector<std::unique_ptr<svc::RpcEndpoint>> endpoints;
  std::vector<svc::RpcEndpoint*> eps;
  for (auto* port : cluster.ports()) {
    endpoints.push_back(
        std::make_unique<svc::RpcEndpoint>(cluster.queue(), *port, ec));
    eps.push_back(endpoints.back().get());
    if (ps.sample)
      endpoints.back()->register_metrics(cluster.telemetry().registry());
  }

  svc::OpenLoopConfig lc;
  lc.arrivals = svc::ArrivalDist::kLognormal;
  lc.arrival_sigma = 1.5;
  lc.service = svc::ServiceDist::kBoundedPareto;
  lc.mean_service = 300 * sim::kUs;
  lc.pareto_alpha = 1.5;
  lc.pareto_cap = 50.0;
  lc.pattern = ps.pattern;
  lc.rate_rps = ps.rate;
  lc.resp_bytes = 512;
  lc.duration = kWarmup + kMeasure;
  lc.seed = kSeed + 29;
  svc::OpenLoopDriver driver(cluster.queue(), eps, lc);
  driver.start();
  cluster.run();

  PointOutput out;
  out.slo = driver.merged_slo();
  out.admission = driver.merged_admission();
  out.driver = driver.stats();
  for (auto* port : cluster.ports())
    out.retransmissions += port->stats().retransmissions;
  out.sim_end = cluster.queue().now();
  if (ps.sample) out.counters = cluster.telemetry().registry().snapshot();
  if (watchdog) out.liveness = cluster.health()->verdict();
  if (cluster.flight()) out.recording = cluster.flight()->snapshot();
  return out;
}

const char* policy_name(routing::Policy p) {
  return p == routing::Policy::kItb ? "itb" : "ud";
}

double window_s() { return static_cast<double>(kMeasure) / 1e9; }

void add_slo_rows(telemetry::BenchReport& report, const std::string& table,
                  const PointSpec& ps, const PointOutput& out) {
  auto row_of = [&](const char* cls_name, const svc::SloClassStats& c) {
    telemetry::BenchReport::Row row;
    row.text["policy"] = policy_name(ps.policy);
    row.text["pattern"] = svc::to_string(ps.pattern);
    row.text["class"] = cls_name;
    row.num["rate_rps"] = ps.rate;
    row.num["chaos"] = ps.chaos ? 1.0 : 0.0;
    row.num["issued"] = static_cast<double>(c.issued);
    row.num["completed"] = static_cast<double>(c.completed);
    row.num["failed"] = static_cast<double>(c.failed);
    row.num["rejected"] = static_cast<double>(c.rejected);
    row.num["retries"] = static_cast<double>(c.retries);
    row.num["deadline_misses"] = static_cast<double>(c.deadline_misses);
    row.num["deadline_miss_rate"] = c.deadline_miss_rate();
    row.num["goodput_bytes_per_s"] =
        static_cast<double>(c.goodput_bytes) / window_s();
    row.num["latency_p50_ns"] = c.total.percentile(50);
    row.num["latency_p99_ns"] = c.total.percentile(99);
    row.num["latency_p999_ns"] = c.total.percentile(99.9);
    row.num["admit_p99_ns"] = c.admit.percentile(99);
    row.num["network_p99_ns"] = c.network.percentile(99);
    row.num["service_p99_ns"] = c.service.percentile(99);
    report.add_row(table, std::move(row));
  };
  static const char* kClassNames[] = {"high", "normal", "bulk"};
  for (std::size_t c = 0; c < svc::kPriorityClasses; ++c)
    row_of(kClassNames[c], out.slo.cls[c]);
  svc::SloClassStats all = out.slo.combined();
  telemetry::BenchReport::Row row;  // combined row carries admission stats
  row.text["policy"] = policy_name(ps.policy);
  row.text["pattern"] = svc::to_string(ps.pattern);
  row.text["class"] = "all";
  row.num["rate_rps"] = ps.rate;
  row.num["chaos"] = ps.chaos ? 1.0 : 0.0;
  row.num["issued"] = static_cast<double>(all.issued);
  row.num["completed"] = static_cast<double>(all.completed);
  row.num["failed"] = static_cast<double>(all.failed);
  row.num["rejected"] = static_cast<double>(all.rejected);
  row.num["retries"] = static_cast<double>(all.retries);
  row.num["deadline_misses"] = static_cast<double>(all.deadline_misses);
  row.num["deadline_miss_rate"] = all.deadline_miss_rate();
  row.num["goodput_bytes_per_s"] =
      static_cast<double>(all.goodput_bytes) / window_s();
  row.num["latency_p50_ns"] = all.total.percentile(50);
  row.num["latency_p99_ns"] = all.total.percentile(99);
  row.num["latency_p999_ns"] = all.total.percentile(99.9);
  row.num["admit_p99_ns"] = all.admit.percentile(99);
  row.num["network_p99_ns"] = all.network.percentile(99);
  row.num["service_p99_ns"] = all.service.percentile(99);
  row.num["blocking_probability"] = out.admission.blocking_probability();
  row.num["admission_offered"] = static_cast<double>(out.admission.offered);
  row.num["admission_evicted"] = static_cast<double>(out.admission.evicted);
  row.num["first_fit_skips"] =
      static_cast<double>(out.admission.first_fit_skips);
  row.num["retransmissions"] = static_cast<double>(out.retransmissions);
  report.add_row(table, std::move(row));
}

void print_row(const char* label, double rate, const PointOutput& out) {
  const svc::SloClassStats all = out.slo.combined();
  std::printf("%-14s %8.0f | %8.2f | %8.1f %9.1f %9.1f | %6.2f%% %6.2f%% | "
              "%5llu\n",
              label, rate,
              static_cast<double>(all.goodput_bytes) / window_s() / 1e6,
              all.total.percentile(50) / 1000.0,
              all.total.percentile(99) / 1000.0,
              all.total.percentile(99.9) / 1000.0,
              all.deadline_miss_rate() * 100.0,
              out.admission.blocking_probability() * 100.0,
              static_cast<unsigned long long>(all.retries));
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);

  telemetry::BenchReport report("svc_slo");
  report.set_param("seed", static_cast<double>(kSeed));
  report.set_param("mean_service_ns", 300.0 * sim::kUs);
  report.set_param("measure_ns", static_cast<double>(kMeasure));
  report.set_param("arrivals", "lognormal");
  report.set_param("service_dist", "bounded-pareto");

  // Point list: load sweep (both policies), then patterns, then chaos.
  std::vector<PointSpec> points;
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb})
    for (std::size_t i = 0; i < kRates.size(); ++i)
      points.push_back({policy, kRates[i], svc::SvcPattern::kUniform, false,
                        json_path.has_value() && i + 1 == kRates.size()});
  const std::size_t pattern_begin = points.size();
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    points.push_back({policy, kIncastRate, svc::SvcPattern::kIncast});
    points.push_back({policy, kHotspotRate, svc::SvcPattern::kHotspot});
    points.push_back({policy, kAllToAllRate, svc::SvcPattern::kAllToAll});
  }
  const std::size_t chaos_begin = points.size();
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb})
    points.push_back({policy, 1.5e4, svc::SvcPattern::kUniform, true, false});

  auto outputs = core::run_sweep_parallel(
      points.size(),
      [&](std::size_t i) { return run_point(points[i], watchdog,
                                            fcli.recorder()); },
      jobs);

  std::printf("svc_slo: 8-switch irregular COW, 32 hosts; open-loop "
              "lognormal arrivals,\nbounded-Pareto service (mean 300us, "
              "alpha 1.5), 3 priority classes,\nadmission 8 tokens + "
              "32-deep blocked buffer, first-fit on departure\n\n");
  std::printf("%-14s %8s | %8s | %8s %9s %9s | %7s %7s | %5s\n", "policy",
              "rate", "good MB/s", "p50(us)", "p99(us)", "p999(us)", "miss",
              "block", "retry");
  for (std::size_t i = 0; i < pattern_begin; ++i)
    print_row(policy_name(points[i].policy), points[i].rate, outputs[i]);

  std::printf("\npatterns (per-client rate scaled per pattern):\n");
  for (std::size_t i = pattern_begin; i < chaos_begin; ++i) {
    const std::string label = std::string(policy_name(points[i].policy)) +
                              "/" + svc::to_string(points[i].pattern);
    print_row(label.c_str(), points[i].rate, outputs[i]);
  }

  std::printf("\nchaos soak at 15000 req/s/client (6 link + 1 switch + 2 "
              "stall windows):\n");
  for (std::size_t i = chaos_begin; i < points.size(); ++i) {
    const std::string label =
        std::string(policy_name(points[i].policy)) + "/chaos";
    print_row(label.c_str(), points[i].rate, outputs[i]);
  }

  // Headline for the tracked perf trajectory (BENCH_6.json): the ITB
  // sweep's 70%-of-saturation operating point. Saturation = the offered
  // rate with peak goodput; headline = the largest swept rate at or below
  // 70% of it.
  health::LivenessVerdict liveness;
  flight::BenchFlight bflight(fcli);
  double sat_rate = kRates.front(), best_goodput = -1;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (watchdog) liveness.merge(outputs[i].liveness);
    if (fcli.enabled) bflight.add(std::move(outputs[i].recording));
    if (points[i].policy == routing::Policy::kItb && !points[i].chaos &&
        points[i].pattern == svc::SvcPattern::kUniform) {
      const auto g = static_cast<double>(
          outputs[i].slo.combined().goodput_bytes);
      if (g > best_goodput) {
        best_goodput = g;
        sat_rate = points[i].rate;
      }
    }
  }
  double headline_rate = kRates.front();
  for (double r : kRates)
    if (r <= 0.7 * sat_rate && r > headline_rate) headline_rate = r;
  const PointOutput* headline = nullptr;
  const PointOutput* headline_ud = nullptr;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!points[i].chaos && points[i].pattern == svc::SvcPattern::kUniform &&
        points[i].rate == headline_rate) {
      (points[i].policy == routing::Policy::kItb ? headline : headline_ud) =
          &outputs[i];
    }
  if (headline) {
    const auto all = headline->slo.combined();
    std::printf("\nheadline (ITB, %.0f req/s/client ~ 70%% of saturation "
                "%.0f): p99 = %.1f us, goodput = %.2f MB/s\n",
                headline_rate, sat_rate, all.total.percentile(99) / 1000.0,
                static_cast<double>(all.goodput_bytes) / window_s() / 1e6);
    report.add_scalar("headline_rate_rps", headline_rate);
    report.add_scalar("saturation_rate_rps", sat_rate);
    report.add_scalar("headline_p99_ns", all.total.percentile(99));
    report.add_scalar("headline_p999_ns", all.total.percentile(99.9));
    report.add_scalar("headline_goodput_bytes_per_s",
                      static_cast<double>(all.goodput_bytes) / window_s());
    report.add_scalar("headline_miss_rate", all.deadline_miss_rate());
    if (headline_ud) {
      const auto ud = headline_ud->slo.combined();
      report.add_scalar("headline_ud_p99_ns", ud.total.percentile(99));
      report.add_scalar("headline_ud_goodput_bytes_per_s",
                        static_cast<double>(ud.goodput_bytes) / window_s());
    }
  }

  if (watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("svc_slo", json_path ? &report : nullptr)) return 1;

  if (json_path) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      const char* table = i < pattern_begin ? "sweep"
                          : i < chaos_begin ? "patterns"
                                            : "chaos";
      add_slo_rows(report, table, points[i], outputs[i]);
      if (points[i].sample) {
        report.add_counters(std::string(policy_name(points[i].policy)) +
                                "_rate_" +
                                std::to_string(static_cast<int>(
                                    points[i].rate)),
                            std::move(outputs[i].counters));
      }
      if (i + 1 == kRates.size() || i + 1 == 2 * kRates.size()) {
        const auto all = outputs[i].slo.combined();
        report.add_histogram("svc_total_latency",
                             policy_name(points[i].policy), all.total);
        report.add_histogram("svc_admit_wait",
                             policy_name(points[i].policy), all.admit);
      }
      if (points[i].chaos && watchdog) {
        telemetry::BenchReport::Row row;
        row.text["policy"] = policy_name(points[i].policy);
        row.num["health_stalls"] =
            static_cast<double>(outputs[i].liveness.stalls);
        row.num["health_recoveries"] =
            static_cast<double>(outputs[i].liveness.recoveries);
        row.num["health_unrecovered"] =
            static_cast<double>(outputs[i].liveness.unrecovered);
        report.add_row("chaos_health", std::move(row));
      }
    }
    if (watchdog) health::add_liveness_scalars(report, liveness);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
