// Extension experiment (paper §6 future work): impact of ITBs on the
// execution time of distributed applications.
//
// Three communication skeletons run to completion on a 32-switch irregular
// COW under both routing policies; the reported metric is wall-clock
// execution time of the kernel (simulated), not network throughput.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// kernel table plus utilization series and registry counters per
// kernel/policy combination (runs like "all_to_all_itb").
//
// `--jobs N` fans the six independent {kernel, policy} runs across N
// threads (default: hardware concurrency); results are bit-identical to
// `--jobs 1` because every run owns its cluster.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/apps.hpp"

namespace {

using namespace itb;

bool g_watchdog = false;
flight::RecorderConfig g_flight;

std::unique_ptr<core::Cluster> make_cluster(routing::Policy policy,
                                            std::uint64_t seed) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 32;
  spec.hosts_per_switch = 4;
  core::ClusterConfig cfg;
  cfg.topology = topo::make_random_irregular(spec, rng);
  cfg.policy = policy;
  // Loaded-network MCP (§4 buffer pool) — collectives burst hard.
  cfg.mcp_options.recv_buffers = 512;  // 8 MB SRAM at 2 KB packets (paper: overflow "very unusual")
  cfg.itb_selection = routing::ItbHostSelection::kSpread;
  cfg.mcp_options.drop_when_full = true;
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 50 * sim::kMs;  // patient: ack RTT is large under bursts
  cfg.telemetry_sample_period = 500 * sim::kUs;
  cfg.watchdog.enabled = g_watchdog;
  cfg.flight = g_flight;
  return std::make_unique<core::Cluster>(std::move(cfg));
}

telemetry::BenchReport* g_report = nullptr;

/// One {kernel, policy} run's full output, returned by value so the
/// cluster can die on its worker thread.
struct KernelOutput {
  workload::AppResult result;
  std::vector<telemetry::MetricSample> counters;
  std::vector<telemetry::Sampler::Series> series;
  health::LivenessVerdict liveness;  // --watchdog only
  flight::Recording recording;       // --flight only
};

KernelOutput run_kernel(
    std::uint64_t seed, routing::Policy policy,
    const std::function<workload::AppResult(core::Cluster&)>& body) {
  auto cluster = make_cluster(policy, seed);
  if (g_report) cluster->telemetry().start_sampling();
  KernelOutput out;
  out.result = body(*cluster);
  if (g_report) {
    cluster->telemetry().stop_sampling();
    out.counters = cluster->telemetry().registry().snapshot();
    out.series = cluster->telemetry().sampler().series();
  }
  if (g_watchdog) out.liveness = cluster->health()->verdict();
  if (cluster->flight()) out.recording = cluster->flight()->snapshot();
  return out;
}

void report(const char* kernel, workload::AppResult ud,
            workload::AppResult itb) {
  std::printf("%-14s | %12.1f | %12.1f | %6.2fx  (%llu msgs, %.1f MB)\n",
              kernel, static_cast<double>(ud.makespan) / 1000.0,
              static_cast<double>(itb.makespan) / 1000.0,
              static_cast<double>(ud.makespan) /
                  static_cast<double>(itb.makespan),
              static_cast<unsigned long long>(ud.messages),
              static_cast<double>(ud.bytes) / 1e6);
  if (g_report) {
    telemetry::BenchReport::Row row;
    row.text["kernel"] = kernel;
    row.num["ud_makespan_ns"] = static_cast<double>(ud.makespan);
    row.num["itb_makespan_ns"] = static_cast<double>(itb.makespan);
    row.num["speedup"] = static_cast<double>(ud.makespan) /
                         static_cast<double>(itb.makespan);
    row.num["messages"] = static_cast<double>(ud.messages);
    row.num["bytes"] = static_cast<double>(ud.bytes);
    g_report->add_row("kernels", std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  g_watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  g_flight = fcli.recorder();
  telemetry::BenchReport bench_report("ext_applications");
  if (json_path) g_report = &bench_report;
  const std::uint64_t seed = 1977;
  bench_report.set_param("seed", static_cast<double>(seed));

  std::printf("Extension: distributed-application kernels, 32-switch "
              "irregular COW, 128 hosts\n");
  std::printf("(execution time in us; speedup = UD time / ITB time)\n\n");
  std::printf("%-14s | %12s | %12s | %s\n", "kernel", "UD (us)", "UD+ITB (us)",
              "speedup");

  struct Kernel {
    const char* name;
    std::function<workload::AppResult(core::Cluster&)> body;
  };
  const std::vector<Kernel> kernels = {
      {"all_to_all",
       [](core::Cluster& c) {
         return workload::run_all_to_all(c.queue(), c.ports(), 2048, 1);
       }},
      {"ring_exchange",
       [](core::Cluster& c) {
         return workload::run_ring_exchange(c.queue(), c.ports(), 4096, 8);
       }},
      {"master_worker",
       [](core::Cluster& c) {
         return workload::run_master_worker(c.queue(), c.ports(), 2048, 256,
                                            4);
       }},
  };

  // Six independent simulations (kernel x policy), fanned across threads;
  // stdout and the report are assembled serially afterwards, in the same
  // order the serial program produced them.
  auto outputs = core::run_sweep_parallel(
      kernels.size() * 2,
      [&](std::size_t i) {
        const Kernel& k = kernels[i / 2];
        const auto policy =
            i % 2 == 0 ? routing::Policy::kUpDown : routing::Policy::kItb;
        return run_kernel(seed, policy, k.body);
      },
      jobs);

  flight::BenchFlight bflight(fcli);
  health::LivenessVerdict liveness;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    KernelOutput& ud = outputs[2 * i];
    KernelOutput& itb = outputs[2 * i + 1];
    liveness.merge(ud.liveness);
    liveness.merge(itb.liveness);
    if (fcli.enabled) {
      bflight.add(std::move(ud.recording));
      bflight.add(std::move(itb.recording));
    }
    if (g_report) {
      const std::string base = kernels[i].name;
      g_report->add_counters(base + "_ud", std::move(ud.counters));
      g_report->add_series(base + "_ud", std::move(ud.series));
      g_report->add_counters(base + "_itb", std::move(itb.counters));
      g_report->add_series(base + "_itb", std::move(itb.series));
    }
    report(kernels[i].name, ud.result, itb.result);
  }

  std::printf("\nExpected: the bursty all-to-all gains most (root "
              "decongestion); the ring is\nlatency-bound and nearly "
              "unaffected; master/worker sits in between.\n");
  if (g_watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("ext_applications", g_report)) return 1;

  if (json_path) {
    if (g_watchdog) health::add_liveness_scalars(bench_report, liveness);
    if (!bench_report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
