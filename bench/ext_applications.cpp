// Extension experiment (paper §6 future work): impact of ITBs on the
// execution time of distributed applications.
//
// Three communication skeletons run to completion on a 32-switch irregular
// COW under both routing policies; the reported metric is wall-clock
// execution time of the kernel (simulated), not network throughput.
#include <cstdio>
#include <memory>

#include "itb/core/cluster.hpp"
#include "itb/workload/apps.hpp"

namespace {

using namespace itb;

std::unique_ptr<core::Cluster> make_cluster(routing::Policy policy,
                                            std::uint64_t seed) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 32;
  spec.hosts_per_switch = 4;
  core::ClusterConfig cfg;
  cfg.topology = topo::make_random_irregular(spec, rng);
  cfg.policy = policy;
  // Loaded-network MCP (§4 buffer pool) — collectives burst hard.
  cfg.mcp_options.recv_buffers = 512;  // 8 MB SRAM at 2 KB packets (paper: overflow "very unusual")
  cfg.itb_selection = routing::ItbHostSelection::kSpread;
  cfg.mcp_options.drop_when_full = true;
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 50 * sim::kMs;  // patient: ack RTT is large under bursts
  return std::make_unique<core::Cluster>(std::move(cfg));
}

void report(const char* kernel, workload::AppResult ud,
            workload::AppResult itb) {
  std::printf("%-14s | %12.1f | %12.1f | %6.2fx  (%llu msgs, %.1f MB)\n",
              kernel, static_cast<double>(ud.makespan) / 1000.0,
              static_cast<double>(itb.makespan) / 1000.0,
              static_cast<double>(ud.makespan) /
                  static_cast<double>(itb.makespan),
              static_cast<unsigned long long>(ud.messages),
              static_cast<double>(ud.bytes) / 1e6);
}

}  // namespace

int main() {
  const std::uint64_t seed = 1977;

  std::printf("Extension: distributed-application kernels, 32-switch "
              "irregular COW, 128 hosts\n");
  std::printf("(execution time in us; speedup = UD time / ITB time)\n\n");
  std::printf("%-14s | %12s | %12s | %s\n", "kernel", "UD (us)", "UD+ITB (us)",
              "speedup");

  {
    auto ud = make_cluster(routing::Policy::kUpDown, seed);
    auto itb = make_cluster(routing::Policy::kItb, seed);
    report("all-to-all",
           workload::run_all_to_all(ud->queue(), ud->ports(), 2048, 1),
           workload::run_all_to_all(itb->queue(), itb->ports(), 2048, 1));
  }
  {
    auto ud = make_cluster(routing::Policy::kUpDown, seed);
    auto itb = make_cluster(routing::Policy::kItb, seed);
    report("ring exchange",
           workload::run_ring_exchange(ud->queue(), ud->ports(), 4096, 8),
           workload::run_ring_exchange(itb->queue(), itb->ports(), 4096, 8));
  }
  {
    auto ud = make_cluster(routing::Policy::kUpDown, seed);
    auto itb = make_cluster(routing::Policy::kItb, seed);
    report("master/worker",
           workload::run_master_worker(ud->queue(), ud->ports(), 2048, 256, 4),
           workload::run_master_worker(itb->queue(), itb->ports(), 2048, 256, 4));
  }

  std::printf("\nExpected: the bursty all-to-all gains most (root "
              "decongestion); the ring is\nlatency-bound and nearly "
              "unaffected; master/worker sits in between.\n");
  return 0;
}
