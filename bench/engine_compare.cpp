// Deadlock-engine comparison: ITB vs VC-escape vs raw up*/down* on the SAME
// topology and traffic (ROADMAP "engine subsystem"; DESIGN.md §6l).
//
// The paper's argument for in-transit buffers is that they buy minimal
// routing on switches with no virtual channels. This bench puts that
// trade-off side by side with the hardware alternative: a virtual-channel
// escape engine (>= 2 lanes per physical channel, lane-ladder assignment)
// delivers the same minimal routes with zero host-buffer involvement, at
// the cost of per-port flit storage. Every engine is statically verified
// deadlock-free (per-lane CDG acyclic) before traffic runs; a failed check
// exits nonzero.
//
// Points: the paper's Fig. 1 irregular network, a 4-ary fat tree, a small
// Clos, and a ring (an up*/down* worst case: ~10% of its minimal routes
// are UD-invalid, yet any ring route has at most one down->up transition,
// so even a 2-lane ladder restores 100% minimality).
//
// `--jobs N` threads for per-source route solves. Output contains NO wall
// clock and no --jobs echo: CI byte-compares the full stdout and JSON of
// --jobs 1 vs --jobs 8 runs.
// `--json P` itb.telemetry.v1 report (BENCH_10.json is the committed
// headline the CI regression gate compares against).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/engine/engine.hpp"
#include "itb/sim/parallel.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

struct Point {
  std::string label;
  topo::Topology topo;
};

std::vector<Point> make_points() {
  std::vector<Point> pts;
  pts.push_back(Point{"fig1", topo::make_fig1_network()});
  pts.push_back(Point{"ft4", topo::make_fat_tree(4)});
  pts.push_back(Point{"clos4x8", topo::make_clos(4, 8, 8)});
  pts.push_back(Point{"ring8", topo::make_ring(8, 2)});
  return pts;
}

std::vector<engine::EngineSpec> make_specs() {
  return {
      engine::EngineSpec{engine::EngineKind::kUpDown, 1},
      engine::EngineSpec{engine::EngineKind::kItb, 1},
      engine::EngineSpec{engine::EngineKind::kVcEscape, 2},
      engine::EngineSpec{engine::EngineKind::kVcEscape, 4},
  };
}

std::string spec_label(const engine::EngineSpec& spec) {
  if (spec.kind == engine::EngineKind::kVcEscape)
    return "vc" + std::to_string(spec.lanes);
  return engine::to_string(spec.kind);
}

struct Result {
  double avg_hops = 0;
  double minimal_frac = 0;
  double avg_itbs = 0;
  unsigned buffer_lanes = 0;
  bool host_buffers = false;
  bool deadlock_free = false;
  double accepted = 0;  // msgs/s/host
  double lat_us = 0;
  double p99_us = 0;
};

/// Same traffic run for every engine: the solved table goes in as manual
/// routes (identical injection pattern), the engine spec arms the lane
/// arbitration.
void run_traffic(const topo::Topology& fabric,
                 const routing::RouteTable& table,
                 const engine::EngineSpec& spec, Result& out) {
  const auto hosts = fabric.host_count();
  std::vector<std::vector<std::vector<packet::Route>>> manual(
      hosts, std::vector<std::vector<packet::Route>>(hosts));
  for (std::uint16_t s = 0; s < hosts; ++s)
    for (std::uint16_t d = 0; d < hosts; ++d)
      if (s != d) manual[s][d] = table.route(s, d).segments;

  core::ClusterConfig cfg;
  cfg.topology = fabric;
  cfg.engine = spec;
  cfg.manual_routes = std::move(manual);
  // Loaded-network MCP configuration (see motivation_throughput): circular
  // receive pool + drop-on-full so in-transit forwarding cannot wedge.
  cfg.mcp_options.recv_buffers = 64;
  cfg.mcp_options.drop_when_full = true;
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 5 * sim::kMs;
  core::Cluster cluster(std::move(cfg));

  workload::LoadConfig lc;
  lc.message_bytes = 512;
  lc.rate_msgs_per_s = 1e4;
  lc.warmup = 1 * sim::kMs;
  lc.measure = 4 * sim::kMs;
  lc.seed = 2018;
  const auto r = workload::run_load(cluster.queue(), cluster.ports(), lc);
  out.accepted = r.accepted_msgs_per_s_per_host;
  out.lat_us = r.latency_mean_ns / 1000.0;
  out.p99_us = r.latency_p99_ns / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = sim::jobs_flag(argc, argv).value_or(1);

  telemetry::BenchReport report("engine_compare");
  const auto specs = make_specs();

  std::printf(
      "Deadlock-engine comparison (identical topology + traffic per row)\n\n");
  std::printf("%-8s %-7s %5s %7s %6s %6s %7s | %9s %8s %8s\n", "point",
              "engine", "lanes", "hops", "min%", "itbs", "hostbuf", "acc/s",
              "lat(us)", "p99(us)");

  bool all_verified = true;
  for (auto& pt : make_points()) {
    // One orientation per point (root switch 0 over the true fabric); every
    // engine solves and binds against it, so rows differ only by engine.
    routing::UpDown updown(pt.topo, 0);
    routing::Router router(updown);

    for (const auto& spec : specs) {
      auto eng = engine::make_engine(spec);
      eng->bind(updown, pt.topo, {});
      routing::RouteTable table(router, eng->policy(), jobs, spec.lanes);

      Result res;
      res.avg_hops = table.average_trunk_hops();
      res.minimal_frac = table.minimal_fraction(router, jobs);
      res.avg_itbs = table.average_itbs();
      res.buffer_lanes = eng->buffer_lanes_per_port();
      res.host_buffers = eng->uses_host_buffers();
      res.deadlock_free = engine::verify_deadlock_free(*eng, table, pt.topo);
      if (!res.deadlock_free) {
        std::fprintf(stderr, "FATAL: %s on %s has a cyclic per-lane CDG\n",
                     eng->name(), pt.label.c_str());
        all_verified = false;
      }
      run_traffic(pt.topo, table, spec, res);

      const std::string label = spec_label(spec);
      std::printf("%-8s %-7s %5u %7.2f %5.0f%% %6.2f %7s | %9.0f %8.1f %8.1f\n",
                  pt.label.c_str(), label.c_str(), res.buffer_lanes,
                  res.avg_hops, 100.0 * res.minimal_frac, res.avg_itbs,
                  res.host_buffers ? "yes" : "no", res.accepted, res.lat_us,
                  res.p99_us);

      telemetry::BenchReport::Row row;
      row.text["point"] = pt.label;
      row.text["engine"] = label;
      row.num["buffer_lanes_per_port"] = res.buffer_lanes;
      row.num["uses_host_buffers"] = res.host_buffers ? 1 : 0;
      row.num["avg_trunk_hops"] = res.avg_hops;
      row.num["minimal_fraction"] = res.minimal_frac;
      row.num["avg_itbs"] = res.avg_itbs;
      row.num["deadlock_free"] = res.deadlock_free ? 1 : 0;
      row.num["accepted_msgs_per_s"] = res.accepted;
      row.num["latency_mean_us"] = res.lat_us;
      row.num["latency_p99_us"] = res.p99_us;
      report.add_row("engines", std::move(row));

      // Headline scalars the CI regression gate reads from BENCH_10.json.
      if (pt.label == "fig1") {
        report.add_scalar("fig1_" + label + "_accepted_msgs_per_s",
                          res.accepted);
        report.add_scalar("fig1_" + label + "_latency_mean_us", res.lat_us);
        report.add_scalar("fig1_" + label + "_minimal_fraction",
                          res.minimal_frac);
      }
    }
  }

  std::printf(
      "\n(every row passed its static per-lane CDG deadlock-freedom check; "
      "tables are bit-identical for any --jobs value)\n");

  if (!all_verified) return 1;
  if (json_path) {
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    // stderr, so stdout stays byte-identical across --json destinations
    // (CI compares the --jobs 1 and --jobs 8 stdout directly).
    std::fprintf(stderr, "JSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
