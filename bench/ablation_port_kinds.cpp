// Ablation of the §5 observation that "the latency through a switch
// depends on the type of traversed ports": the Fig. 8 methodology had to
// build both measurement paths over the same port-kind multiset. This
// bench quantifies the effect by timing the same 2-switch path with every
// LAN/SAN combination of host links.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// combination table plus a half-RTT histogram and utilization series per
// combination (runs like "san_lan_san" for src_trunk_dst).
#include <cstdio>
#include <string>

#include "itb/core/cluster.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

workload::AllsizeRow measure(topo::PortKind src_kind, topo::PortKind dst_kind,
                             topo::PortKind trunk_kind, std::size_t size,
                             telemetry::BenchReport* report,
                             const std::string& tag) {
  topo::Topology topo;
  topo.add_switch(8);
  topo.add_switch(8);
  topo.add_host();
  topo.add_host();
  topo.connect_switches(0, 0, 1, 0, trunk_kind);
  topo.attach_host(0, 0, 1, src_kind);
  topo.attach_host(1, 1, 1, dst_kind);

  core::ClusterConfig cfg;
  cfg.topology = std::move(topo);
  core::Cluster cluster(std::move(cfg));
  workload::AllsizeConfig acfg;
  acfg.iterations = 20;
  acfg.sizes = {size};
  if (report) {
    acfg.sampler = &cluster.telemetry().sampler();
    cluster.telemetry().start_sampling();
  }
  auto row = workload::run_allsize(cluster.queue(), cluster.port(0),
                                   cluster.port(1), acfg)
                 .front();
  if (report) {
    cluster.telemetry().stop_sampling();
    report->add_histogram("half_rtt", tag, row.hist);
    report->add_counters(tag, cluster.telemetry().registry());
    report->add_series(tag, cluster.telemetry().sampler());
  }
  return row;
}

const char* name(topo::PortKind k) { return topo::to_string(k); }

}  // namespace

int main(int argc, char** argv) {
  using topo::PortKind;
  const auto json_path = telemetry::json_flag(argc, argv);
  const std::size_t size = 256;

  telemetry::BenchReport report("ablation_port_kinds");
  report.set_param("message_bytes", static_cast<double>(size));
  report.set_param("iterations", 20);
  telemetry::BenchReport* rp = json_path ? &report : nullptr;

  std::printf("Ablation: switch latency by traversed port kinds\n");
  std::printf("(2-switch path, 256 B ping-pong, LAN ports re-time the "
              "signal)\n\n");
  std::printf("%8s %8s %8s %14s\n", "src", "trunk", "dst", "half-RTT(us)");
  for (auto src : {PortKind::kSan, PortKind::kLan})
    for (auto trunk : {PortKind::kSan, PortKind::kLan})
      for (auto dst : {PortKind::kSan, PortKind::kLan}) {
        const std::string tag = std::string(name(src)) + "_" + name(trunk) +
                                "_" + name(dst);
        auto row = measure(src, dst, trunk, size, rp, tag);
        std::printf("%8s %8s %8s %14.3f\n", name(src), name(trunk), name(dst),
                    row.half_rtt_ns / 1000.0);
        telemetry::BenchReport::Row r;
        r.text["src"] = name(src);
        r.text["trunk"] = name(trunk);
        r.text["dst"] = name(dst);
        r.num["half_rtt_ns"] = row.half_rtt_ns;
        r.num["p50_ns"] = row.p50_ns;
        r.num["p99_ns"] = row.p99_ns;
        report.add_row("combinations", std::move(r));
      }
  std::printf("\nEach LAN port on the path adds a fixed re-timing penalty "
              "per traversal\n(default %lld ns); trunk LAN links are "
              "crossed by two fall-throughs and pay twice.\n",
              static_cast<long long>(net::NetTiming{}.lan_port_penalty_ns));

  if (json_path) {
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
