// Ablation of the §5 observation that "the latency through a switch
// depends on the type of traversed ports": the Fig. 8 methodology had to
// build both measurement paths over the same port-kind multiset. This
// bench quantifies the effect by timing the same 2-switch path with every
// LAN/SAN combination of host links.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// combination table plus a half-RTT histogram and utilization series per
// combination (runs like "san_lan_san" for src_trunk_dst).
//
// `--jobs N` fans the eight independent port-kind combinations across N
// threads (default: hardware concurrency); output is bit-identical to
// `--jobs 1` because every combination owns its cluster.
#include <cstdio>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

/// One combination's output, returned by value so the cluster can die on
/// its worker thread.
struct MeasureOutput {
  workload::AllsizeRow row;
  std::vector<telemetry::MetricSample> counters;
  std::vector<telemetry::Sampler::Series> series;
  health::LivenessVerdict liveness;  // --watchdog only
  flight::Recording recording;       // --flight only
};

MeasureOutput measure(topo::PortKind src_kind, topo::PortKind dst_kind,
                      topo::PortKind trunk_kind, std::size_t size,
                      bool sample, bool watchdog,
                      const flight::RecorderConfig& frc) {
  topo::Topology topo;
  topo.add_switch(8);
  topo.add_switch(8);
  topo.add_host();
  topo.add_host();
  topo.connect_switches(0, 0, 1, 0, trunk_kind);
  topo.attach_host(0, 0, 1, src_kind);
  topo.attach_host(1, 1, 1, dst_kind);

  core::ClusterConfig cfg;
  cfg.topology = std::move(topo);
  cfg.watchdog.enabled = watchdog;
  cfg.flight = frc;
  core::Cluster cluster(std::move(cfg));
  workload::AllsizeConfig acfg;
  acfg.iterations = 20;
  acfg.sizes = {size};
  if (sample) {
    acfg.sampler = &cluster.telemetry().sampler();
    cluster.telemetry().start_sampling();
  }
  MeasureOutput out;
  out.row = workload::run_allsize(cluster.queue(), cluster.port(0),
                                  cluster.port(1), acfg)
                .front();
  if (sample) {
    cluster.telemetry().stop_sampling();
    out.counters = cluster.telemetry().registry().snapshot();
    out.series = cluster.telemetry().sampler().series();
  }
  if (watchdog) out.liveness = cluster.health()->verdict();
  if (cluster.flight()) out.recording = cluster.flight()->snapshot();
  return out;
}

const char* name(topo::PortKind k) { return topo::to_string(k); }

}  // namespace

int main(int argc, char** argv) {
  using topo::PortKind;
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  const std::size_t size = 256;

  telemetry::BenchReport report("ablation_port_kinds");
  report.set_param("message_bytes", static_cast<double>(size));
  report.set_param("iterations", 20);
  telemetry::BenchReport* rp = json_path ? &report : nullptr;

  std::printf("Ablation: switch latency by traversed port kinds\n");
  std::printf("(2-switch path, 256 B ping-pong, LAN ports re-time the "
              "signal)\n\n");
  std::printf("%8s %8s %8s %14s\n", "src", "trunk", "dst", "half-RTT(us)");

  struct Combo {
    PortKind src, trunk, dst;
  };
  std::vector<Combo> combos;
  for (auto src : {PortKind::kSan, PortKind::kLan})
    for (auto trunk : {PortKind::kSan, PortKind::kLan})
      for (auto dst : {PortKind::kSan, PortKind::kLan})
        combos.push_back({src, trunk, dst});

  // Eight independent clusters; fan out, then print/report in combo order.
  auto outputs = core::run_sweep_parallel(
      combos.size(),
      [&](std::size_t i) {
        const Combo& c = combos[i];
        return measure(c.src, c.dst, c.trunk, size, rp != nullptr, watchdog,
                       fcli.recorder());
      },
      jobs);

  flight::BenchFlight bflight(fcli);
  health::LivenessVerdict liveness;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const auto& [src, trunk, dst] = combos[i];
    MeasureOutput& o = outputs[i];
    liveness.merge(o.liveness);
    if (fcli.enabled) bflight.add(std::move(o.recording));
    const std::string tag =
        std::string(name(src)) + "_" + name(trunk) + "_" + name(dst);
    std::printf("%8s %8s %8s %14.3f\n", name(src), name(trunk), name(dst),
                o.row.half_rtt_ns / 1000.0);
    if (rp) {
      rp->add_histogram("half_rtt", tag, o.row.hist);
      rp->add_counters(tag, std::move(o.counters));
      rp->add_series(tag, std::move(o.series));
    }
    telemetry::BenchReport::Row r;
    r.text["src"] = name(src);
    r.text["trunk"] = name(trunk);
    r.text["dst"] = name(dst);
    r.num["half_rtt_ns"] = o.row.half_rtt_ns;
    r.num["p50_ns"] = o.row.p50_ns;
    r.num["p99_ns"] = o.row.p99_ns;
    report.add_row("combinations", std::move(r));
  }
  std::printf("\nEach LAN port on the path adds a fixed re-timing penalty "
              "per traversal\n(default %lld ns); trunk LAN links are "
              "crossed by two fall-throughs and pay twice.\n",
              static_cast<long long>(net::NetTiming{}.lan_port_penalty_ns));
  if (watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("ablation_port_kinds", rp)) return 1;

  if (json_path) {
    if (watchdog) health::add_liveness_scalars(report, liveness);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
