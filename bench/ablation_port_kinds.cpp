// Ablation of the §5 observation that "the latency through a switch
// depends on the type of traversed ports": the Fig. 8 methodology had to
// build both measurement paths over the same port-kind multiset. This
// bench quantifies the effect by timing the same 2-switch path with every
// LAN/SAN combination of host links.
#include <cstdio>

#include "itb/core/cluster.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

double half_rtt_us(topo::PortKind src_kind, topo::PortKind dst_kind,
                   topo::PortKind trunk_kind, std::size_t size) {
  topo::Topology topo;
  topo.add_switch(8);
  topo.add_switch(8);
  topo.add_host();
  topo.add_host();
  topo.connect_switches(0, 0, 1, 0, trunk_kind);
  topo.attach_host(0, 0, 1, src_kind);
  topo.attach_host(1, 1, 1, dst_kind);

  core::ClusterConfig cfg;
  cfg.topology = std::move(topo);
  core::Cluster cluster(std::move(cfg));
  auto row = workload::run_pingpong(cluster.queue(), cluster.port(0),
                                    cluster.port(1), size, 20);
  return row.half_rtt_ns / 1000.0;
}

const char* name(topo::PortKind k) { return topo::to_string(k); }

}  // namespace

int main() {
  using topo::PortKind;
  const std::size_t size = 256;

  std::printf("Ablation: switch latency by traversed port kinds\n");
  std::printf("(2-switch path, 256 B ping-pong, LAN ports re-time the "
              "signal)\n\n");
  std::printf("%8s %8s %8s %14s\n", "src", "trunk", "dst", "half-RTT(us)");
  for (auto src : {PortKind::kSan, PortKind::kLan})
    for (auto trunk : {PortKind::kSan, PortKind::kLan})
      for (auto dst : {PortKind::kSan, PortKind::kLan}) {
        std::printf("%8s %8s %8s %14.3f\n", name(src), name(trunk), name(dst),
                    half_rtt_us(src, trunk, dst, size));
      }
  std::printf("\nEach LAN port on the path adds a fixed re-timing penalty "
              "per traversal\n(default %lld ns); trunk LAN links are "
              "crossed by two fall-throughs and pay twice.\n",
              static_cast<long long>(net::NetTiming{}.lan_port_penalty_ns));
  return 0;
}
