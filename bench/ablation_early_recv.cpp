// Ablation of the two §4 design choices in the ITB MCP:
//   * Early Recv detection (at 4 bytes) vs late detection (at completion):
//     late detection loses virtual cut-through, so its penalty grows with
//     message length — one full store-and-forward per ITB.
//   * Recv-side re-injection (the Recv machine programs the send DMA
//     itself) vs going back through the event handler: one dispatching
//     cycle of difference, constant in message length.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// overhead table, half-RTT histograms per configuration, and — for the
// paper MCP only — the ITB-path cluster's utilization series and counters.
//
// `--jobs N` fans the sixteen independent {size, MCP options} measurement
// pairs across N threads (default: hardware concurrency); output is
// bit-identical to `--jobs 1` because every pair owns its two clusters.
#include <cstdio>
#include <string>
#include <vector>

#include "itb/core/experiments.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

/// One {options, size} measurement pair, returned by value so both
/// clusters can die on the worker thread.
struct OverheadOutput {
  double overhead_ns = 0;
  telemetry::LatencyHistogram ud_hist;
  telemetry::LatencyHistogram itb_hist;
  std::vector<telemetry::MetricSample> counters;  // want_series pairs only
  std::vector<telemetry::Sampler::Series> series;
  health::LivenessVerdict liveness;  // --watchdog only, both clusters merged
  // --flight only. Kept separate: handles are only unique per cluster, so
  // the timeline must stitch each recording on its own.
  flight::Recording ud_recording;
  flight::Recording itb_recording;
};

OverheadOutput itb_overhead(const nic::McpOptions& options, std::size_t size,
                            bool sample, bool want_series, bool watchdog,
                            const flight::RecorderConfig& frc) {
  health::WatchdogConfig wc;
  wc.enabled = watchdog;
  auto ud = core::make_fig8_cluster(false, options, {}, wc, frc);
  auto itb = core::make_fig8_cluster(true, options, {}, wc, frc);
  if (sample) itb->telemetry().start_sampling();
  auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                  ud->port(core::kHost2), size, 20);
  workload::AllsizeConfig cfg;
  cfg.iterations = 20;
  cfg.sizes = {size};
  if (sample) cfg.sampler = &itb->telemetry().sampler();
  auto b = workload::run_allsize(itb->queue(), itb->port(core::kHost1),
                                 itb->port(core::kHost2), cfg)
               .front();
  OverheadOutput out;
  out.overhead_ns = 2.0 * (b.half_rtt_ns - a.half_rtt_ns);
  if (sample) {
    out.ud_hist = a.hist;
    out.itb_hist = b.hist;
    itb->telemetry().stop_sampling();
    // Series from every configuration would be repetitive; keep the paper
    // MCP's as the reference picture of the ITB path under ping-pong.
    if (want_series) {
      out.counters = itb->telemetry().registry().snapshot();
      out.series = itb->telemetry().sampler().series();
    }
  }
  if (watchdog) {
    out.liveness = ud->health()->verdict();
    out.liveness.merge(itb->health()->verdict());
  }
  if (ud->flight()) {
    out.ud_recording = ud->flight()->snapshot();
    out.itb_recording = itb->flight()->snapshot();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  const std::size_t sizes[] = {16, 256, 1024, 4000};

  telemetry::BenchReport report("ablation_early_recv");
  report.set_param("iterations", 20);
  telemetry::BenchReport* rp = json_path ? &report : nullptr;

  std::printf("Ablation: Early Recv event and Recv-side re-injection\n");
  std::printf("(per-ITB overhead in us, Fig. 8 methodology)\n\n");
  std::printf("%10s %12s %14s %16s %18s\n", "size(B)", "paper MCP",
              "no early-recv", "no recv-side", "neither");

  struct Variant {
    const char* run;
    nic::McpOptions options;
  };
  nic::McpOptions paper;                    // both optimisations on
  nic::McpOptions late = paper;
  late.early_recv = false;
  nic::McpOptions dispatch = paper;
  dispatch.recv_side_reinjection = false;
  nic::McpOptions neither = paper;
  neither.early_recv = false;
  neither.recv_side_reinjection = false;
  const Variant variants[] = {{"paper", paper},
                              {"no_early_recv", late},
                              {"no_recv_side", dispatch},
                              {"neither", neither}};

  // 4 sizes x 4 variants = 16 independent measurement pairs.
  auto outputs = core::run_sweep_parallel(
      std::size(sizes) * std::size(variants),
      [&](std::size_t i) {
        const std::size_t size = sizes[i / std::size(variants)];
        const Variant& v = variants[i % std::size(variants)];
        return itb_overhead(v.options, size, rp != nullptr,
                            std::string_view(v.run) == "paper", watchdog,
                            fcli.recorder());
      },
      jobs);

  flight::BenchFlight bflight(fcli);
  if (fcli.enabled) {
    for (auto& o : outputs) {
      bflight.add(std::move(o.ud_recording));
      bflight.add(std::move(o.itb_recording));
    }
  }

  health::LivenessVerdict liveness;
  for (std::size_t si = 0; si < std::size(sizes); ++si) {
    const std::size_t size = sizes[si];
    double overhead[std::size(variants)];
    for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
      OverheadOutput& o = outputs[si * std::size(variants) + vi];
      liveness.merge(o.liveness);
      overhead[vi] = o.overhead_ns;
      if (rp) {
        const std::string tag =
            std::string(variants[vi].run) + "_" + std::to_string(size) + "B";
        rp->add_histogram("ud_half_rtt", tag, o.ud_hist);
        rp->add_histogram("itb_half_rtt", tag, o.itb_hist);
        if (std::string_view(variants[vi].run) == "paper") {
          rp->add_counters(tag, std::move(o.counters));
          rp->add_series(tag, std::move(o.series));
        }
      }
    }
    std::printf("%10zu %12.3f %14.3f %16.3f %18.3f\n", size,
                overhead[0] / 1000.0, overhead[1] / 1000.0,
                overhead[2] / 1000.0, overhead[3] / 1000.0);
    telemetry::BenchReport::Row row;
    row.num["size_bytes"] = static_cast<double>(size);
    row.num["paper_mcp_ns"] = overhead[0];
    row.num["no_early_recv_ns"] = overhead[1];
    row.num["no_recv_side_ns"] = overhead[2];
    row.num["neither_ns"] = overhead[3];
    report.add_row("per_itb_overhead", std::move(row));
  }
  std::printf("\nExpected: the paper MCP is flat (~1.3 us); dropping Early "
              "Recv makes the\noverhead grow with message size "
              "(store-and-forward); dropping Recv-side\nre-injection adds "
              "one dispatch cycle (%d LANai cycles).\n",
              nic::LanaiTiming{}.dispatch);
  if (watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("ablation_early_recv", rp)) return 1;

  if (json_path) {
    if (watchdog) health::add_liveness_scalars(report, liveness);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
