// Ablation of the two §4 design choices in the ITB MCP:
//   * Early Recv detection (at 4 bytes) vs late detection (at completion):
//     late detection loses virtual cut-through, so its penalty grows with
//     message length — one full store-and-forward per ITB.
//   * Recv-side re-injection (the Recv machine programs the send DMA
//     itself) vs going back through the event handler: one dispatching
//     cycle of difference, constant in message length.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// overhead table, half-RTT histograms per configuration, and — for the
// paper MCP only — the ITB-path cluster's utilization series and counters.
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

double itb_overhead_ns(const nic::McpOptions& options, std::size_t size,
                       telemetry::BenchReport* report, const char* run) {
  auto ud = core::make_fig8_cluster(false, options);
  auto itb = core::make_fig8_cluster(true, options);
  const bool sample = report != nullptr;
  if (sample) itb->telemetry().start_sampling();
  auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                  ud->port(core::kHost2), size, 20);
  workload::AllsizeConfig cfg;
  cfg.iterations = 20;
  cfg.sizes = {size};
  if (sample) cfg.sampler = &itb->telemetry().sampler();
  auto b = workload::run_allsize(itb->queue(), itb->port(core::kHost1),
                                 itb->port(core::kHost2), cfg)
               .front();
  if (report) {
    const std::string tag = std::string(run) + "_" + std::to_string(size) + "B";
    report->add_histogram("ud_half_rtt", tag, a.hist);
    report->add_histogram("itb_half_rtt", tag, b.hist);
    itb->telemetry().stop_sampling();
    // Series from every configuration would be repetitive; keep the paper
    // MCP's as the reference picture of the ITB path under ping-pong.
    if (std::string_view(run) == "paper") {
      report->add_counters(tag, itb->telemetry().registry());
      report->add_series(tag, itb->telemetry().sampler());
    }
  }
  return 2.0 * (b.half_rtt_ns - a.half_rtt_ns);
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const std::size_t sizes[] = {16, 256, 1024, 4000};

  telemetry::BenchReport report("ablation_early_recv");
  report.set_param("iterations", 20);
  telemetry::BenchReport* rp = json_path ? &report : nullptr;

  std::printf("Ablation: Early Recv event and Recv-side re-injection\n");
  std::printf("(per-ITB overhead in us, Fig. 8 methodology)\n\n");
  std::printf("%10s %12s %14s %16s %18s\n", "size(B)", "paper MCP",
              "no early-recv", "no recv-side", "neither");
  for (auto size : sizes) {
    nic::McpOptions paper;                  // both optimisations on
    nic::McpOptions late = paper;
    late.early_recv = false;
    nic::McpOptions dispatch = paper;
    dispatch.recv_side_reinjection = false;
    nic::McpOptions neither = paper;
    neither.early_recv = false;
    neither.recv_side_reinjection = false;

    const double o_paper = itb_overhead_ns(paper, size, rp, "paper");
    const double o_late = itb_overhead_ns(late, size, rp, "no_early_recv");
    const double o_dispatch =
        itb_overhead_ns(dispatch, size, rp, "no_recv_side");
    const double o_neither = itb_overhead_ns(neither, size, rp, "neither");
    std::printf("%10zu %12.3f %14.3f %16.3f %18.3f\n", size, o_paper / 1000.0,
                o_late / 1000.0, o_dispatch / 1000.0, o_neither / 1000.0);
    telemetry::BenchReport::Row row;
    row.num["size_bytes"] = static_cast<double>(size);
    row.num["paper_mcp_ns"] = o_paper;
    row.num["no_early_recv_ns"] = o_late;
    row.num["no_recv_side_ns"] = o_dispatch;
    row.num["neither_ns"] = o_neither;
    report.add_row("per_itb_overhead", std::move(row));
  }
  std::printf("\nExpected: the paper MCP is flat (~1.3 us); dropping Early "
              "Recv makes the\noverhead grow with message size "
              "(store-and-forward); dropping Recv-side\nre-injection adds "
              "one dispatch cycle (%d LANai cycles).\n",
              nic::LanaiTiming{}.dispatch);

  if (json_path) {
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
