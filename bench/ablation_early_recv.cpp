// Ablation of the two §4 design choices in the ITB MCP:
//   * Early Recv detection (at 4 bytes) vs late detection (at completion):
//     late detection loses virtual cut-through, so its penalty grows with
//     message length — one full store-and-forward per ITB.
//   * Recv-side re-injection (the Recv machine programs the send DMA
//     itself) vs going back through the event handler: one dispatching
//     cycle of difference, constant in message length.
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

double itb_overhead_ns(const nic::McpOptions& options, std::size_t size) {
  auto ud = core::make_fig8_cluster(false, options);
  auto itb = core::make_fig8_cluster(true, options);
  auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                  ud->port(core::kHost2), size, 20);
  auto b = workload::run_pingpong(itb->queue(), itb->port(core::kHost1),
                                  itb->port(core::kHost2), size, 20);
  return 2.0 * (b.half_rtt_ns - a.half_rtt_ns);
}

}  // namespace

int main() {
  const std::size_t sizes[] = {16, 256, 1024, 4000};

  std::printf("Ablation: Early Recv event and Recv-side re-injection\n");
  std::printf("(per-ITB overhead in us, Fig. 8 methodology)\n\n");
  std::printf("%10s %12s %14s %16s %18s\n", "size(B)", "paper MCP",
              "no early-recv", "no recv-side", "neither");
  for (auto size : sizes) {
    nic::McpOptions paper;                  // both optimisations on
    nic::McpOptions late = paper;
    late.early_recv = false;
    nic::McpOptions dispatch = paper;
    dispatch.recv_side_reinjection = false;
    nic::McpOptions neither = paper;
    neither.early_recv = false;
    neither.recv_side_reinjection = false;

    std::printf("%10zu %12.3f %14.3f %16.3f %18.3f\n", size,
                itb_overhead_ns(paper, size) / 1000.0,
                itb_overhead_ns(late, size) / 1000.0,
                itb_overhead_ns(dispatch, size) / 1000.0,
                itb_overhead_ns(neither, size) / 1000.0);
  }
  std::printf("\nExpected: the paper MCP is flat (~1.3 us); dropping Early "
              "Recv makes the\noverhead grow with message size "
              "(store-and-forward); dropping Recv-side\nre-injection adds "
              "one dispatch cycle (%d LANai cycles).\n",
              nic::LanaiTiming{}.dispatch);
  return 0;
}
