// Motivation experiment (paper §1-2, from refs [2,3]): ITB routing versus
// up*/down* on medium irregular networks.
//
// The paper's premise is that the simulation studies it builds on showed
// "network throughput can be easily doubled and, in some cases, tripled"
// by ITB routing, thanks to (a) minimal paths, (b) traffic balanced away
// from the spanning-tree root, and (c) reduced wormhole contention. This
// bench regenerates that comparison: a random irregular COW, uniform
// traffic, offered-load sweep, accepted throughput and latency for both
// policies, plus the static route metrics behind the effect.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// sweep and route-metric tables, per-rate latency histograms, and — for
// the highest offered load only (the saturated regime, where the channel
// picture is interesting) — per-channel utilization series and registry
// counters for both policies (runs "ud" and "itb").
//
// `--jobs N` fans the 16 independent {policy, rate} points across N
// threads (default: hardware concurrency). Every point builds its own
// cluster from the seed, so results are bit-identical to `--jobs 1`.
//
// `--flight` records packet lifecycles on every point and prints the
// merged critical-path breakdown and run fingerprint;
// `--flight-out`/`--flight-trace` save the recording / Chrome trace.
#include <cstdio>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

struct SweepPoint {
  double offered;   // msgs/s/host
  double accepted;  // msgs/s/host
  double lat_us;
  double p99_us;
};

/// The prior-work network model ([2,3]): 8-port switches, 4 hosts on each,
/// the remaining ports wired irregularly. That leaves at most 4 trunk
/// ports per switch, so spanning-tree routing detours and concentrates
/// traffic near the root — the regime the ITB mechanism targets.
topo::Topology make_network(std::uint64_t seed) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 32;
  spec.hosts_per_switch = 4;
  return topo::make_random_irregular(spec, rng);
}

/// Everything one {policy, rate} point produces, returned by value so the
/// point's cluster can die on its worker thread.
struct PointOutput {
  workload::LoadResult load;
  std::vector<telemetry::MetricSample> counters;      // sampled point only
  std::vector<telemetry::Sampler::Series> series;     // sampled point only
  health::LivenessVerdict liveness;                   // --watchdog only
  flight::Recording recording;                        // --flight only
};

PointOutput run_point(routing::Policy policy, std::uint64_t seed, double rate,
                      bool sample, bool watchdog,
                      const flight::RecorderConfig& frc) {
  core::ClusterConfig cfg;
  cfg.topology = make_network(seed);
  cfg.policy = policy;
  cfg.flight = frc;
  // Loaded-network configuration (paper §4): the two-buffer shipped MCP
  // can deadlock through buffer-wait cycles once in-transit packets hold
  // receive buffers while their re-injection blocks; the proposed
  // circular buffer pool (accept, drop when full, GM retransmits) breaks
  // the cycle. Applied to both policies for a fair comparison.
  cfg.mcp_options.recv_buffers = 64;
  cfg.mcp_options.drop_when_full = true;
  // Deep send queues so the fabric, not GM token flow control, is what
  // saturates; a patient retransmit timer avoids go-back-N storms.
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 5 * sim::kMs;
  // Coarse sampling: the 12 ms run yields ~24 points per channel.
  cfg.telemetry_sample_period = 500 * sim::kUs;
  cfg.watchdog.enabled = watchdog;
  core::Cluster cluster(std::move(cfg));

  if (sample) cluster.telemetry().start_sampling();

  workload::LoadConfig lc;
  lc.message_bytes = 512;
  lc.rate_msgs_per_s = rate;
  lc.warmup = 2 * sim::kMs;
  lc.measure = 8 * sim::kMs;
  lc.seed = seed + 17;
  PointOutput out;
  out.load = workload::run_load(cluster.queue(), cluster.ports(), lc);
  if (sample) {
    cluster.telemetry().stop_sampling();
    out.counters = cluster.telemetry().registry().snapshot();
    out.series = cluster.telemetry().sampler().series();
  }
  if (watchdog) out.liveness = cluster.health()->verdict();
  if (cluster.flight()) out.recording = cluster.flight()->snapshot();
  return out;
}

std::vector<SweepPoint> sweep(routing::Policy policy, std::uint64_t seed,
                              const std::vector<double>& rates,
                              telemetry::BenchReport* report,
                              const std::string& run, unsigned jobs,
                              health::LivenessVerdict* liveness,
                              flight::BenchFlight* bf) {
  // Every rate is an independent simulation: fan them out, then merge into
  // the report serially in rate order so the document (and stdout) is
  // byte-identical for any job count.
  auto outputs = core::run_sweep_parallel(
      rates.size(),
      [&](std::size_t i) {
        // Time series only at the saturating rate: 128 channels x 8 rates
        // would swamp the report without adding information.
        const bool sample = report && i + 1 == rates.size();
        return run_point(policy, seed, rates[i], sample, liveness != nullptr,
                         bf ? bf->cli().recorder() : flight::RecorderConfig{});
      },
      jobs);

  std::vector<SweepPoint> points;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i];
    const workload::LoadResult& r = outputs[i].load;
    if (liveness) liveness->merge(outputs[i].liveness);
    if (bf) bf->add(std::move(outputs[i].recording));
    points.push_back(SweepPoint{rate, r.accepted_msgs_per_s_per_host,
                                r.latency_mean_ns / 1000.0,
                                r.latency_p99_ns / 1000.0});
    if (report) {
      telemetry::BenchReport::Row row;
      row.text["policy"] = run;
      row.num["offered_msgs_per_s"] = rate;
      row.num["accepted_msgs_per_s"] = r.accepted_msgs_per_s_per_host;
      row.num["latency_mean_ns"] = r.latency_mean_ns;
      row.num["latency_p50_ns"] = r.latency_p50_ns;
      row.num["latency_p95_ns"] = r.latency_p95_ns;
      row.num["latency_p99_ns"] = r.latency_p99_ns;
      row.num["latency_p999_ns"] = r.latency_p999_ns;
      row.num["sends_refused"] = static_cast<double>(r.sends_refused);
      row.num["retransmissions"] = static_cast<double>(r.retransmissions);
      report->add_row("sweep", std::move(row));
      report->add_histogram("latency_rate_" + std::to_string(int(rate)), run,
                            r.latency_hist);
      if (i + 1 == rates.size()) {
        report->add_counters(run, std::move(outputs[i].counters));
        report->add_series(run, std::move(outputs[i].series));
      }
    }
  }
  return points;
}

double saturation_throughput(const std::vector<SweepPoint>& pts) {
  double best = 0;
  for (const auto& p : pts) best = std::max(best, p.accepted);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  const std::uint64_t seed = 2001;
  const std::vector<double> rates = {2.5e3, 5e3,   1e4,   1.5e4,
                                     2e4,   2.5e4, 3e4,   4e4};

  telemetry::BenchReport report("motivation_throughput");
  report.set_param("seed", static_cast<double>(seed));
  report.set_param("message_bytes", 512);

  // Static route metrics first: the mechanism behind the throughput gap.
  {
    auto topo = make_network(seed);
    routing::UpDown ud(topo);
    routing::Router router(ud);
    routing::RouteTable t_ud(router, routing::Policy::kUpDown);
    routing::RouteTable t_itb(router, routing::Policy::kItb);
    auto peak = [](const std::vector<std::uint32_t>& v) {
      std::uint32_t m = 0;
      for (auto x : v) m = std::max(m, x);
      return m;
    };
    std::printf("Motivation: %zu-switch irregular COW, %zu hosts (seed %llu)\n\n",
                topo.switch_count(), topo.host_count(),
                static_cast<unsigned long long>(seed));
    std::printf("route metrics            %12s %12s\n", "up*/down*", "UD+ITB");
    std::printf("avg trunk hops           %12.3f %12.3f\n",
                t_ud.average_trunk_hops(), t_itb.average_trunk_hops());
    std::printf("minimal-path fraction    %12.3f %12.3f\n",
                t_ud.minimal_fraction(router), t_itb.minimal_fraction(router));
    std::printf("avg ITBs per route       %12.3f %12.3f\n", t_ud.average_itbs(),
                t_itb.average_itbs());
    std::printf("peak channel usage       %12u %12u  (root congestion)\n",
                peak(t_ud.channel_usage(topo)), peak(t_itb.channel_usage(topo)));
    for (const auto* entry : {&t_ud, &t_itb}) {
      telemetry::BenchReport::Row row;
      row.text["policy"] = entry == &t_ud ? "ud" : "itb";
      row.num["avg_trunk_hops"] = entry->average_trunk_hops();
      row.num["minimal_fraction"] = entry->minimal_fraction(router);
      row.num["avg_itbs"] = entry->average_itbs();
      row.num["peak_channel_usage"] = peak(entry->channel_usage(topo));
      report.add_row("route_metrics", std::move(row));
    }
  }

  telemetry::BenchReport* rp = json_path ? &report : nullptr;
  health::LivenessVerdict liveness;
  health::LivenessVerdict* lp = watchdog ? &liveness : nullptr;
  flight::BenchFlight bflight(fcli);
  flight::BenchFlight* bf = fcli.enabled ? &bflight : nullptr;
  auto ud =
      sweep(routing::Policy::kUpDown, seed, rates, rp, "ud", jobs, lp, bf);
  auto itb = sweep(routing::Policy::kItb, seed, rates, rp, "itb", jobs, lp, bf);

  std::printf("\nuniform traffic, 512 B messages, accepted msgs/s/host and "
              "mean latency:\n\n");
  std::printf("%12s | %12s %10s %10s | %12s %10s %10s\n", "offered",
              "UD accepted", "lat(us)", "p99(us)", "ITB accepted", "lat(us)",
              "p99(us)");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%12.0f | %12.0f %10.1f %10.1f | %12.0f %10.1f %10.1f\n",
                rates[i], ud[i].accepted, ud[i].lat_us, ud[i].p99_us,
                itb[i].accepted, itb[i].lat_us, itb[i].p99_us);
  }
  const double f =
      saturation_throughput(itb) / saturation_throughput(ud);
  double matched = 0;
  for (std::size_t i = 0; i < rates.size(); ++i)
    if (ud[i].accepted > 0)
      matched = std::max(matched, itb[i].accepted / ud[i].accepted);
  std::printf("\nsaturation throughput: ITB/UD = %.2fx; best matched-load "
              "ratio = %.2fx\n(paper claim from [2,3]: 2x-3x on the bare "
              "fabric; our figure includes full\nGM endpoint overheads, "
              "which compress the ratio)\n", f, matched);
  if (watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("motivation_throughput", rp)) return 1;

  if (json_path) {
    report.add_scalar("saturation_ratio", f);
    report.add_scalar("best_matched_load_ratio", matched);
    if (watchdog) health::add_liveness_scalars(report, liveness);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
