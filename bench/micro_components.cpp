// google-benchmark micro-benchmarks for the simulator's building blocks.
// These measure the *host* cost of running the reproduction (how fast the
// simulator itself is), not simulated time.
//
// For CLI uniformity with the other benches, `--json <path>` is accepted
// and translated to google-benchmark's own JSON reporter
// (--benchmark_out=<path> --benchmark_out_format=json); the document
// follows google-benchmark's schema, not itb.telemetry.v1.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "itb/telemetry/export.hpp"

#include "itb/core/cluster.hpp"
#include "itb/mapper/mapper.hpp"
#include "itb/packet/crc.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.schedule_in(i, [&sink] { ++sink; });
    q.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // The GM retransmit-timer pattern: arm a far timer per message, cancel it
  // when the ack lands (almost always before it fires). The old engine paid
  // a heap entry + hash-set round trip per timer and kept the dead closure
  // until it surfaced; this measures schedule+cancel churn directly.
  sim::EventQueue q;
  std::int64_t sink = 0;
  for (auto _ : state) {
    sim::EventId timers[64];
    for (int i = 0; i < 64; ++i)
      timers[i] = q.schedule_in(5 * sim::kMs + i, [&sink] { ++sink; });
    for (int i = 0; i < 64; ++i) q.cancel(timers[i]);
    q.schedule_in(1, [&sink] { ++sink; });
    q.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_EventQueueFarTimers(benchmark::State& state) {
  // All events far beyond the near horizon (sampler ticks, retransmit
  // timeouts): exercises the spill path (old engine: the same heap).
  sim::EventQueue q;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      q.schedule_in((i + 1) * 100 * sim::kUs, [&sink] { ++sink; });
    q.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueFarTimers);

void BM_EventQueueMixedHorizon(benchmark::State& state) {
  // The realistic mix: mostly byte-time/cycle-cost events within a few us,
  // a minority of ms-scale timers (wheel + spill split in the new engine).
  sim::EventQueue q;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 56; ++i) q.schedule_in(6 * (i + 1), [&sink] { ++sink; });
    for (int i = 0; i < 8; ++i)
      q.schedule_in(2 * sim::kMs + i, [&sink] { ++sink; });
    q.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueMixedHorizon);

void BM_Crc32(benchmark::State& state) {
  packet::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA7);
  for (auto _ : state) benchmark::DoNotOptimize(packet::crc32(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096);

void BM_Crc8(benchmark::State& state) {
  packet::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA7);
  for (auto _ : state) benchmark::DoNotOptimize(packet::crc8(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc8)->Arg(64)->Arg(4096);

void BM_BuildItbPacket(benchmark::State& state) {
  std::vector<packet::Route> segments{{1, 2, 3}, {4, 5}};
  packet::Bytes payload(1024, 0x3C);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        packet::build_itb_packet(segments, packet::PacketType::kGm, payload));
}
BENCHMARK(BM_BuildItbPacket);

void BM_UpDownOrientation(benchmark::State& state) {
  sim::Rng rng(7);
  topo::IrregularSpec spec;
  spec.switches = static_cast<std::uint16_t>(state.range(0));
  spec.hosts_per_switch = 2;
  auto topo = topo::make_random_irregular(spec, rng);
  for (auto _ : state) {
    routing::UpDown ud(topo);
    benchmark::DoNotOptimize(ud.depth(0));
  }
}
BENCHMARK(BM_UpDownOrientation)->Arg(8)->Arg(32);

void BM_ItbRouteTable(benchmark::State& state) {
  sim::Rng rng(7);
  topo::IrregularSpec spec;
  spec.switches = static_cast<std::uint16_t>(state.range(0));
  spec.hosts_per_switch = 2;
  auto topo = topo::make_random_irregular(spec, rng);
  routing::UpDown ud(topo);
  routing::Router router(ud);
  for (auto _ : state) {
    routing::RouteTable table(router, routing::Policy::kItb);
    benchmark::DoNotOptimize(table.average_trunk_hops());
  }
}
BENCHMARK(BM_ItbRouteTable)->Arg(8)->Arg(16);

void BM_MapperDiscovery(benchmark::State& state) {
  sim::Rng rng(7);
  topo::IrregularSpec spec;
  spec.switches = 16;
  spec.hosts_per_switch = 2;
  auto topo = topo::make_random_irregular(spec, rng);
  for (auto _ : state) {
    auto report = mapper::discover(topo, 0);
    benchmark::DoNotOptimize(report.probes_sent);
  }
}
BENCHMARK(BM_MapperDiscovery);

void BM_DeadlockCheck(benchmark::State& state) {
  sim::Rng rng(7);
  topo::IrregularSpec spec;
  spec.switches = 16;
  spec.hosts_per_switch = 2;
  auto topo = topo::make_random_irregular(spec, rng);
  routing::UpDown ud(topo);
  routing::Router router(ud);
  routing::RouteTable table(router, routing::Policy::kItb);
  for (auto _ : state) {
    routing::DependencyGraph graph(topo);
    graph.add_table(table, topo);
    benchmark::DoNotOptimize(graph.has_cycle());
  }
}
BENCHMARK(BM_DeadlockCheck);

void BM_SimulatedPingPong(benchmark::State& state) {
  // Cost of simulating one full GM ping-pong (the inner loop of every
  // figure bench).
  for (auto _ : state) {
    state.PauseTiming();
    core::ClusterConfig cfg;
    cfg.topology = topo::make_linear(2, 1);
    core::Cluster cluster(std::move(cfg));
    state.ResumeTiming();
    auto row = workload::run_pingpong(cluster.queue(), cluster.port(0),
                                      cluster.port(1), 256, 1);
    benchmark::DoNotOptimize(row.half_rtt_ns);
  }
}
BENCHMARK(BM_SimulatedPingPong);

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = itb::telemetry::json_flag(argc, argv);
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json") {          // flag + its path argument
      ++i;
      continue;
    }
    if (a.starts_with("--json=")) continue;
    args.emplace_back(a);
  }
  std::string out_flag, fmt_flag;
  if (json_path) {
    out_flag = "--benchmark_out=" + *json_path;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
