// Figure 7 reproduction: overhead of the ITB-capable MCP on normal traffic.
//
// Methodology (paper §5): gm_allsize half-round-trip between host1 and
// host2 over up*/down* routes crossing 2.5 switches on average, 100
// iterations per size, original vs modified MCP. The paper reports the
// latency difference "does not exceed 300 ns and, on average, is equal to
// 125 ns", with relative overhead falling from ~1% (short) to ~0.4% (long).
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// per-size table, half-RTT histograms and per-channel utilization series
// for both MCPs (runs "orig" and "mod").
//
// `--flight` records packet lifecycles on both clusters and prints the
// critical-path breakdown; `--flight-out`/`--flight-trace` save the merged
// recording / the Perfetto-loadable Chrome trace.
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

std::vector<workload::AllsizeRow> run(core::Cluster& cluster,
                                      workload::AllsizeConfig cfg,
                                      bool sample) {
  if (sample) {
    cfg.sampler = &cluster.telemetry().sampler();
    cluster.telemetry().start_sampling();
  }
  auto rows = workload::run_allsize(cluster.queue(), cluster.port(core::kHost1),
                                    cluster.port(core::kHost2), cfg);
  if (sample) cluster.telemetry().stop_sampling();
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace itb;
  const auto json_path = telemetry::json_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);

  workload::AllsizeConfig cfg;
  cfg.iterations = 100;
  // Single-packet GM messages, like the paper's sweep.
  cfg.sizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4000};

  auto orig = core::make_fig7_cluster(/*modified_mcp=*/false, fcli.recorder());
  auto mod = core::make_fig7_cluster(/*modified_mcp=*/true, fcli.recorder());

  auto rows_orig = run(*orig, cfg, json_path.has_value());
  auto rows_mod = run(*mod, cfg, json_path.has_value());

  std::printf("Figure 7: message latency overhead of the new GM/MCP code\n");
  std::printf("(half-round-trip, host1 <-> host2, up*/down* routes, 100 iters)\n\n");
  std::printf("%10s %14s %14s %12s %10s\n", "size(B)", "original(us)",
              "modified(us)", "delta(ns)", "rel(%)");
  telemetry::BenchReport report("fig7_code_overhead");
  report.set_param("iterations", cfg.iterations);
  double sum_delta = 0, max_delta = 0;
  for (std::size_t i = 0; i < rows_orig.size(); ++i) {
    const double a = rows_orig[i].half_rtt_ns;
    const double b = rows_mod[i].half_rtt_ns;
    const double delta = b - a;
    sum_delta += delta;
    if (delta > max_delta) max_delta = delta;
    std::printf("%10zu %14.2f %14.2f %12.1f %10.2f\n", rows_orig[i].size,
                a / 1000.0, b / 1000.0, delta, 100.0 * delta / a);
    telemetry::BenchReport::Row row;
    row.num["size_bytes"] = static_cast<double>(rows_orig[i].size);
    row.num["orig_half_rtt_ns"] = a;
    row.num["mod_half_rtt_ns"] = b;
    row.num["orig_p99_ns"] = rows_orig[i].p99_ns;
    row.num["mod_p99_ns"] = rows_mod[i].p99_ns;
    row.num["delta_ns"] = delta;
    row.num["rel_percent"] = 100.0 * delta / a;
    report.add_row("overhead", std::move(row));
    const std::string hist_name =
        "half_rtt_" + std::to_string(rows_orig[i].size) + "B";
    report.add_histogram(hist_name, "orig", rows_orig[i].hist);
    report.add_histogram(hist_name, "mod", rows_mod[i].hist);
  }
  const double avg_delta = sum_delta / static_cast<double>(rows_orig.size());
  std::printf("\naverage delta: %.1f ns   (paper: ~125 ns)\n", avg_delta);
  std::printf("maximum delta: %.1f ns   (paper: < 300 ns)\n", max_delta);
  std::printf("relative overhead falls with size (paper: ~1%% -> ~0.4%%)\n");

  flight::BenchFlight flight(fcli);
  if (fcli.enabled) {
    flight.add(orig->flight()->snapshot());
    flight.add(mod->flight()->snapshot());
  }
  if (!flight.finish("fig7_code_overhead", json_path ? &report : nullptr))
    return 1;

  if (json_path) {
    report.add_scalar("average_delta_ns", avg_delta);
    report.add_scalar("maximum_delta_ns", max_delta);
    report.add_counters("orig", orig->telemetry().registry());
    report.add_counters("mod", mod->telemetry().registry());
    report.add_series("orig", orig->telemetry().sampler());
    report.add_series("mod", mod->telemetry().sampler());
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
