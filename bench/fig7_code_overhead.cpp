// Figure 7 reproduction: overhead of the ITB-capable MCP on normal traffic.
//
// Methodology (paper §5): gm_allsize half-round-trip between host1 and
// host2 over up*/down* routes crossing 2.5 switches on average, 100
// iterations per size, original vs modified MCP. The paper reports the
// latency difference "does not exceed 300 ns and, on average, is equal to
// 125 ns", with relative overhead falling from ~1% (short) to ~0.4% (long).
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/workload/pingpong.hpp"

int main() {
  using namespace itb;

  workload::AllsizeConfig cfg;
  cfg.iterations = 100;
  // Single-packet GM messages, like the paper's sweep.
  cfg.sizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4000};

  auto orig = core::make_fig7_cluster(/*modified_mcp=*/false);
  auto mod = core::make_fig7_cluster(/*modified_mcp=*/true);

  auto rows_orig = workload::run_allsize(orig->queue(), orig->port(core::kHost1),
                                         orig->port(core::kHost2), cfg);
  auto rows_mod = workload::run_allsize(mod->queue(), mod->port(core::kHost1),
                                        mod->port(core::kHost2), cfg);

  std::printf("Figure 7: message latency overhead of the new GM/MCP code\n");
  std::printf("(half-round-trip, host1 <-> host2, up*/down* routes, 100 iters)\n\n");
  std::printf("%10s %14s %14s %12s %10s\n", "size(B)", "original(us)",
              "modified(us)", "delta(ns)", "rel(%)");
  double sum_delta = 0, max_delta = 0;
  for (std::size_t i = 0; i < rows_orig.size(); ++i) {
    const double a = rows_orig[i].half_rtt_ns;
    const double b = rows_mod[i].half_rtt_ns;
    const double delta = b - a;
    sum_delta += delta;
    if (delta > max_delta) max_delta = delta;
    std::printf("%10zu %14.2f %14.2f %12.1f %10.2f\n", rows_orig[i].size,
                a / 1000.0, b / 1000.0, delta, 100.0 * delta / a);
  }
  std::printf("\naverage delta: %.1f ns   (paper: ~125 ns)\n",
              sum_delta / static_cast<double>(rows_orig.size()));
  std::printf("maximum delta: %.1f ns   (paper: < 300 ns)\n", max_delta);
  std::printf("relative overhead falls with size (paper: ~1%% -> ~0.4%%)\n");
  return 0;
}
