// Ablation of the §4 buffering proposal: the shipped MCP keeps GM's two
// receive buffers (enough for the unloaded testbed); the paper proposes a
// circular buffer pool that drops arrivals when full (GM retransmission
// recovers) instead of exerting link-level backpressure.
//
// This bench loads one in-transit host with converging ITB traffic and
// sweeps the pool size in both modes, reporting drops, retransmissions and
// total completion time for a fixed work quantum.
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// outcome table, per-configuration send-to-ack latency histograms, and
// utilization series + counters per configuration (runs like "drop_b4").
//
// `--jobs N` fans the eight independent {mode, pool size} runs across N
// threads (default: hardware concurrency); output is bit-identical to
// `--jobs 1` because every run owns its cluster.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

struct Outcome {
  sim::Time makespan = 0;
  std::uint64_t drops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t itb_forwarded = 0;
  /// Send-call to acknowledgement (token return) per message, ns. Under
  /// drops this includes the retransmission stalls — the latency price of
  /// the smaller pool.
  telemetry::LatencyHistogram send_to_ack;
  // Captured for --json runs, by value: the cluster dies with the run.
  std::vector<telemetry::MetricSample> counters;
  std::vector<telemetry::Sampler::Series> series;
  health::LivenessVerdict liveness;  // --watchdog only
  flight::Recording recording;       // --flight only
};

/// Star topology stressing one in-transit host: four sources on switch 0,
/// four sinks on switch 1; every route is forced through the ITB host h8
/// on switch 0, so its NIC forwards every packet.
Outcome run(int recv_buffers, bool drop_when_full, bool sample,
            bool watchdog, const flight::RecorderConfig& frc) {
  topo::Topology topo;
  topo.add_switch(16);
  topo.add_switch(16);
  topo.connect_switches(0, 0, 1, 0);
  topo.connect_switches(0, 1, 1, 1);
  for (int i = 0; i < 9; ++i) topo.add_host();
  for (std::uint16_t h = 0; h < 4; ++h) topo.attach_host(h, 0, static_cast<std::uint8_t>(2 + h));
  for (std::uint16_t h = 4; h < 8; ++h) topo.attach_host(h, 1, static_cast<std::uint8_t>(2 + h - 4));
  topo.attach_host(8, 0, 6);  // the in-transit host

  core::ClusterConfig cfg;
  cfg.topology = std::move(topo);
  cfg.mcp_options.recv_buffers = recv_buffers;
  cfg.mcp_options.drop_when_full = drop_when_full;
  cfg.gm_config.retransmit_timeout = 500 * sim::kUs;
  // Manual routes: source s -> sink s+4 via ITB at h8; service routes for
  // acks are direct.
  using Routes = std::vector<std::vector<std::vector<packet::Route>>>;
  Routes r(9, std::vector<std::vector<packet::Route>>(9));
  for (std::uint16_t s = 0; s < 4; ++s) {
    const std::uint16_t d = static_cast<std::uint16_t>(s + 4);
    // Source -> ITB host (port 6 on s0), re-inject -> trunk 0 -> sink.
    r[s][d] = {{6}, {0, static_cast<std::uint8_t>(2 + s)}};
    // Ack path back: direct over trunk 1.
    r[d][s] = {{1, static_cast<std::uint8_t>(2 + s)}};
  }
  cfg.manual_routes = std::move(r);
  cfg.watchdog.enabled = watchdog;
  cfg.flight = frc;
  core::Cluster cluster(std::move(cfg));

  Outcome out;
  if (sample) cluster.telemetry().start_sampling();

  // Each source sends 30 x 2 KB messages as fast as tokens allow.
  int remaining = 4 * 30;
  for (std::uint16_t s = 0; s < 4; ++s) {
    const std::uint16_t d = static_cast<std::uint16_t>(s + 4);
    // Makespan = last delivery (not drain time: the sampler's final tick
    // would otherwise pad it in --json runs).
    cluster.port(d).set_receive_handler(
        [&remaining, &out](sim::Time t, std::uint16_t, packet::Bytes) {
          if (--remaining == 0) out.makespan = t;
        });
    auto sent = std::make_shared<int>(0);
    auto feed = std::make_shared<std::function<void()>>();
    *feed = [&cluster, &out, s, d, sent, feed] {
      auto& port = cluster.port(s);
      while (*sent < 30) {
        const sim::Time t0 = cluster.queue().now();
        if (!port.send(d, packet::Bytes(2048, 1), [&out, t0](sim::Time t) {
              out.send_to_ack.add(static_cast<double>(t - t0));
            }))
          break;
        ++*sent;
      }
      if (*sent < 30) cluster.queue().schedule_in(100 * sim::kUs, *feed);
    };
    (*feed)();
  }
  cluster.run();

  out.drops = cluster.nic(8).stats().dropped_no_buffer;
  out.itb_forwarded = cluster.nic(8).stats().itb_forwarded;
  out.retransmissions = 0;
  for (std::uint16_t s = 0; s < 4; ++s)
    out.retransmissions += cluster.port(s).stats().retransmissions;
  if (remaining != 0) out.makespan = -1;  // did not complete (diagnostic)

  if (sample) {
    cluster.telemetry().stop_sampling();
    out.counters = cluster.telemetry().registry().snapshot();
    out.series = cluster.telemetry().sampler().series();
  }
  if (watchdog) out.liveness = cluster.health()->verdict();
  if (cluster.flight()) out.recording = cluster.flight()->snapshot();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  telemetry::BenchReport report("ablation_buffer_pool");
  report.set_param("messages", 4 * 30);
  report.set_param("message_bytes", 2048);
  telemetry::BenchReport* rp = json_path ? &report : nullptr;

  std::printf("Ablation: receive buffering at the in-transit host\n");
  std::printf("(4 sources -> 4 sinks, every packet forwarded by one ITB "
              "host, 120 x 2KB messages)\n\n");
  std::printf("%8s %12s | %12s %8s %10s %10s\n", "buffers", "mode",
              "makespan(us)", "drops", "rexmit", "forwarded");

  struct Config {
    bool drop;
    int buffers;
  };
  std::vector<Config> configs;
  for (bool drop : {false, true})
    for (int buffers : {2, 4, 8, 16}) configs.push_back({drop, buffers});

  // Eight independent clusters; fan out, then print/report in config order.
  auto outcomes = core::run_sweep_parallel(
      configs.size(),
      [&](std::size_t i) {
        return run(configs[i].buffers, configs[i].drop, rp != nullptr,
                   watchdog, fcli.recorder());
      },
      jobs);

  flight::BenchFlight bflight(fcli);
  health::LivenessVerdict liveness;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& [drop, buffers] = configs[i];
    Outcome& o = outcomes[i];
    liveness.merge(o.liveness);
    if (fcli.enabled) bflight.add(std::move(o.recording));
    const std::string mode = drop ? "drop" : "backpressure";
    const std::string tag = mode + "_b" + std::to_string(buffers);
    std::printf("%8d %12s | %12.1f %8llu %10llu %10llu\n", buffers,
                mode.c_str(), static_cast<double>(o.makespan) / 1000.0,
                static_cast<unsigned long long>(o.drops),
                static_cast<unsigned long long>(o.retransmissions),
                static_cast<unsigned long long>(o.itb_forwarded));
    if (rp) {
      rp->add_histogram("send_to_ack", tag, o.send_to_ack);
      rp->add_counters(tag, std::move(o.counters));
      rp->add_series(tag, std::move(o.series));
    }
    telemetry::BenchReport::Row row;
    row.text["mode"] = mode;
    row.num["buffers"] = buffers;
    row.num["makespan_ns"] = static_cast<double>(o.makespan);
    row.num["drops"] = static_cast<double>(o.drops);
    row.num["retransmissions"] = static_cast<double>(o.retransmissions);
    row.num["itb_forwarded"] = static_cast<double>(o.itb_forwarded);
    row.num["send_to_ack_p50_ns"] = o.send_to_ack.percentile(50);
    row.num["send_to_ack_p99_ns"] = o.send_to_ack.percentile(99);
    report.add_row("outcomes", std::move(row));
  }
  std::printf("\nExpected: backpressure never drops (Stop&Go stalls the "
              "link); drop mode loses\npackets when the pool is small and "
              "GM retransmission recovers them at a\nmakespan cost; larger "
              "pools eliminate drops (the paper notes 8 MB of NIC\nSRAM "
              "makes overflow 'very unusual').\n");
  if (watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("ablation_buffer_pool", rp)) return 1;

  if (json_path) {
    if (watchdog) health::add_liveness_scalars(report, liveness);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
