// Ablation of the §4 buffering proposal: the shipped MCP keeps GM's two
// receive buffers (enough for the unloaded testbed); the paper proposes a
// circular buffer pool that drops arrivals when full (GM retransmission
// recovers) instead of exerting link-level backpressure.
//
// This bench loads one in-transit host with converging ITB traffic and
// sweeps the pool size in both modes, reporting drops, retransmissions and
// total completion time for a fixed work quantum.
#include <cstdio>

#include "itb/core/cluster.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

struct Outcome {
  sim::Time makespan;
  std::uint64_t drops;
  std::uint64_t retransmissions;
  std::uint64_t itb_forwarded;
};

/// Star topology stressing one in-transit host: four sources on switch 0,
/// four sinks on switch 1; every route is forced through the ITB host h8
/// on switch 0, so its NIC forwards every packet.
Outcome run(int recv_buffers, bool drop_when_full) {
  topo::Topology topo;
  topo.add_switch(16);
  topo.add_switch(16);
  topo.connect_switches(0, 0, 1, 0);
  topo.connect_switches(0, 1, 1, 1);
  for (int i = 0; i < 9; ++i) topo.add_host();
  for (std::uint16_t h = 0; h < 4; ++h) topo.attach_host(h, 0, static_cast<std::uint8_t>(2 + h));
  for (std::uint16_t h = 4; h < 8; ++h) topo.attach_host(h, 1, static_cast<std::uint8_t>(2 + h - 4));
  topo.attach_host(8, 0, 6);  // the in-transit host

  core::ClusterConfig cfg;
  cfg.topology = std::move(topo);
  cfg.mcp_options.recv_buffers = recv_buffers;
  cfg.mcp_options.drop_when_full = drop_when_full;
  cfg.gm_config.retransmit_timeout = 500 * sim::kUs;
  // Manual routes: source s -> sink s+4 via ITB at h8; service routes for
  // acks are direct.
  using Routes = std::vector<std::vector<std::vector<packet::Route>>>;
  Routes r(9, std::vector<std::vector<packet::Route>>(9));
  for (std::uint16_t s = 0; s < 4; ++s) {
    const std::uint16_t d = static_cast<std::uint16_t>(s + 4);
    // Source -> ITB host (port 6 on s0), re-inject -> trunk 0 -> sink.
    r[s][d] = {{6}, {0, static_cast<std::uint8_t>(2 + s)}};
    // Ack path back: direct over trunk 1.
    r[d][s] = {{1, static_cast<std::uint8_t>(2 + s)}};
  }
  cfg.manual_routes = std::move(r);
  core::Cluster cluster(std::move(cfg));

  // Each source sends 30 x 2 KB messages as fast as tokens allow.
  int remaining = 4 * 30;
  for (std::uint16_t s = 0; s < 4; ++s) {
    const std::uint16_t d = static_cast<std::uint16_t>(s + 4);
    cluster.port(d).set_receive_handler(
        [&remaining](sim::Time, std::uint16_t, packet::Bytes) { --remaining; });
    auto sent = std::make_shared<int>(0);
    auto feed = std::make_shared<std::function<void()>>();
    *feed = [&cluster, s, d, sent, feed] {
      auto& port = cluster.port(s);
      while (*sent < 30 && port.send(d, packet::Bytes(2048, 1))) ++*sent;
      if (*sent < 30) cluster.queue().schedule_in(100 * sim::kUs, *feed);
    };
    (*feed)();
  }
  cluster.run();

  Outcome out;
  out.makespan = cluster.queue().now();
  out.drops = cluster.nic(8).stats().dropped_no_buffer;
  out.itb_forwarded = cluster.nic(8).stats().itb_forwarded;
  out.retransmissions = 0;
  for (std::uint16_t s = 0; s < 4; ++s)
    out.retransmissions += cluster.port(s).stats().retransmissions;
  if (remaining != 0) out.makespan = -1;  // did not complete (diagnostic)
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: receive buffering at the in-transit host\n");
  std::printf("(4 sources -> 4 sinks, every packet forwarded by one ITB "
              "host, 120 x 2KB messages)\n\n");
  std::printf("%8s %12s | %12s %8s %10s %10s\n", "buffers", "mode",
              "makespan(us)", "drops", "rexmit", "forwarded");
  for (bool drop : {false, true}) {
    for (int buffers : {2, 4, 8, 16}) {
      auto o = run(buffers, drop);
      std::printf("%8d %12s | %12.1f %8llu %10llu %10llu\n", buffers,
                  drop ? "drop" : "backpressure",
                  static_cast<double>(o.makespan) / 1000.0,
                  static_cast<unsigned long long>(o.drops),
                  static_cast<unsigned long long>(o.retransmissions),
                  static_cast<unsigned long long>(o.itb_forwarded));
    }
  }
  std::printf("\nExpected: backpressure never drops (Stop&Go stalls the "
              "link); drop mode loses\npackets when the pool is small and "
              "GM retransmission recovers them at a\nmakespan cost; larger "
              "pools eliminate drops (the paper notes 8 MB of NIC\nSRAM "
              "makes overflow 'very unusual').\n");
  return 0;
}
