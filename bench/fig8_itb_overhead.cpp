// Figure 8 reproduction: per-ITB latency overhead for in-transit packets.
//
// Methodology (paper §5): half-round-trip between host1 and host2 where the
// forward path either is a 5-switch-traversal up*/down* route (with a loop
// in switch 2) or crosses the in-transit host once (also 5 traversals, same
// port kinds). Only the forward leg differs, so the per-ITB overhead is
// twice the half-round-trip difference. The paper measures ~1.3 us per ITB
// (its earlier simulation estimate was ~0.5 us), with relative overhead
// falling from ~10% (short) to ~3% (long messages).
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// per-size table, half-RTT histograms and per-channel utilization series
// for both paths (runs "ud" and "itb").
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

std::vector<workload::AllsizeRow> run(core::Cluster& cluster,
                                      workload::AllsizeConfig cfg,
                                      bool sample) {
  if (sample) {
    cfg.sampler = &cluster.telemetry().sampler();
    cluster.telemetry().start_sampling();
  }
  auto rows = workload::run_allsize(cluster.queue(), cluster.port(core::kHost1),
                                    cluster.port(core::kHost2), cfg);
  if (sample) cluster.telemetry().stop_sampling();
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace itb;
  const auto json_path = telemetry::json_flag(argc, argv);

  workload::AllsizeConfig cfg;
  cfg.iterations = 100;
  cfg.sizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4000};

  auto ud = core::make_fig8_cluster(/*itb_path=*/false);
  auto itb = core::make_fig8_cluster(/*itb_path=*/true);

  auto rows_ud = run(*ud, cfg, json_path.has_value());
  auto rows_itb = run(*itb, cfg, json_path.has_value());

  std::printf("Figure 8: message latency overhead of the ITB mechanism\n");
  std::printf("(half-round-trip; both paths cross 5 switches and the same "
              "port kinds)\n\n");
  std::printf("%10s %12s %12s %14s %10s\n", "size(B)", "UD(us)", "UD-ITB(us)",
              "overhead(us)", "rel(%)");
  telemetry::BenchReport report("fig8_itb_overhead");
  report.set_param("iterations", cfg.iterations);
  double sum = 0;
  for (std::size_t i = 0; i < rows_ud.size(); ++i) {
    const double a = rows_ud[i].half_rtt_ns;
    const double b = rows_itb[i].half_rtt_ns;
    const double overhead = 2.0 * (b - a);  // one ITB in the round trip
    sum += overhead;
    std::printf("%10zu %12.2f %12.2f %14.3f %10.2f\n", rows_ud[i].size,
                a / 1000.0, b / 1000.0, overhead / 1000.0,
                100.0 * (b - a) / a);
    telemetry::BenchReport::Row row;
    row.num["size_bytes"] = static_cast<double>(rows_ud[i].size);
    row.num["ud_half_rtt_ns"] = a;
    row.num["itb_half_rtt_ns"] = b;
    row.num["ud_p99_ns"] = rows_ud[i].p99_ns;
    row.num["itb_p99_ns"] = rows_itb[i].p99_ns;
    row.num["per_itb_overhead_ns"] = overhead;
    row.num["rel_percent"] = 100.0 * (b - a) / a;
    report.add_row("overhead", std::move(row));
    const std::string hist_name =
        "half_rtt_" + std::to_string(rows_ud[i].size) + "B";
    report.add_histogram(hist_name, "ud", rows_ud[i].hist);
    report.add_histogram(hist_name, "itb", rows_itb[i].hist);
  }
  const double avg_overhead = sum / static_cast<double>(rows_ud.size());
  std::printf("\naverage per-ITB overhead: %.3f us   (paper: ~1.3 us)\n",
              avg_overhead / 1000.0);
  std::printf("overhead is flat in message size (virtual cut-through)\n");
  std::printf("relative overhead falls with size (paper: ~10%% -> ~3%%)\n");

  // Sanity: the in-transit NIC actually forwarded every ping in firmware.
  const auto forwarded = itb->nic(core::kInTransit).stats().itb_forwarded;
  const auto delivered = itb->nic(core::kInTransit).stats().delivered_to_host;
  std::printf("\nin-transit NIC forwarded %llu packets, delivered %llu to "
              "its host\n",
              static_cast<unsigned long long>(forwarded),
              static_cast<unsigned long long>(delivered));

  if (json_path) {
    report.add_scalar("average_per_itb_overhead_ns", avg_overhead);
    report.add_scalar("itb_forwarded", static_cast<double>(forwarded));
    report.add_scalar("itb_delivered_to_host", static_cast<double>(delivered));
    report.add_counters("ud", ud->telemetry().registry());
    report.add_counters("itb", itb->telemetry().registry());
    report.add_series("ud", ud->telemetry().sampler());
    report.add_series("itb", itb->telemetry().sampler());
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
