// Figure 8 reproduction: per-ITB latency overhead for in-transit packets.
//
// Methodology (paper §5): half-round-trip between host1 and host2 where the
// forward path either is a 5-switch-traversal up*/down* route (with a loop
// in switch 2) or crosses the in-transit host once (also 5 traversals, same
// port kinds). Only the forward leg differs, so the per-ITB overhead is
// twice the half-round-trip difference. The paper measures ~1.3 us per ITB
// (its earlier simulation estimate was ~0.5 us), with relative overhead
// falling from ~10% (short) to ~3% (long messages).
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// per-size table, half-RTT histograms and per-channel utilization series
// for both paths (runs "ud" and "itb").
//
// `--jobs N` fans the two independent clusters (ud, itb) across threads;
// output is bit-identical to `--jobs 1` because each point owns its
// cluster and results return by value.
//
// `--flight` records every packet's lifecycle, prints the critical-path
// breakdown and run fingerprint, and writes a Perfetto-loadable Chrome
// trace (default fig8_flight_trace.json; override with --flight-trace).
// `--flight-out <path>` saves the merged itb.flight.v1 recording, which CI
// diffs across --jobs values and commits.
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

std::vector<workload::AllsizeRow> run(core::Cluster& cluster,
                                      workload::AllsizeConfig cfg,
                                      bool sample) {
  if (sample) {
    cfg.sampler = &cluster.telemetry().sampler();
    cluster.telemetry().start_sampling();
  }
  auto rows = workload::run_allsize(cluster.queue(), cluster.port(core::kHost1),
                                    cluster.port(core::kHost2), cfg);
  if (sample) cluster.telemetry().stop_sampling();
  return rows;
}

/// One forward-path configuration, returned by value so the cluster can
/// die on the worker thread.
struct PathOutput {
  std::vector<workload::AllsizeRow> rows;
  std::uint64_t itb_forwarded = 0;
  std::uint64_t delivered_to_host = 0;
  std::vector<telemetry::MetricSample> counters;
  std::vector<telemetry::Sampler::Series> series;
  flight::Recording recording;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace itb;
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  auto fcli = flight::flight_flags(argc, argv);
  // Acceptance artifact: plain --flight still emits the Perfetto trace.
  if (fcli.enabled && !fcli.trace) fcli.trace = "fig8_flight_trace.json";

  workload::AllsizeConfig cfg;
  cfg.iterations = 100;
  cfg.sizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4000};

  // Point 0 = the UD forward route, point 1 = the UD+ITB route.
  auto outputs = core::run_sweep_parallel(
      2,
      [&](std::size_t i) {
        auto cluster = core::make_fig8_cluster(/*itb_path=*/i == 1, {}, {}, {},
                                               fcli.recorder());
        PathOutput out;
        out.rows = run(*cluster, cfg, json_path.has_value());
        out.itb_forwarded = cluster->nic(core::kInTransit).stats().itb_forwarded;
        out.delivered_to_host =
            cluster->nic(core::kInTransit).stats().delivered_to_host;
        if (json_path) {
          out.counters = cluster->telemetry().registry().snapshot();
          out.series = cluster->telemetry().sampler().series();
        }
        if (cluster->flight()) out.recording = cluster->flight()->snapshot();
        return out;
      },
      jobs);
  const auto& rows_ud = outputs[0].rows;
  const auto& rows_itb = outputs[1].rows;

  std::printf("Figure 8: message latency overhead of the ITB mechanism\n");
  std::printf("(half-round-trip; both paths cross 5 switches and the same "
              "port kinds)\n\n");
  std::printf("%10s %12s %12s %14s %10s\n", "size(B)", "UD(us)", "UD-ITB(us)",
              "overhead(us)", "rel(%)");
  telemetry::BenchReport report("fig8_itb_overhead");
  report.set_param("iterations", cfg.iterations);
  double sum = 0;
  for (std::size_t i = 0; i < rows_ud.size(); ++i) {
    const double a = rows_ud[i].half_rtt_ns;
    const double b = rows_itb[i].half_rtt_ns;
    const double overhead = 2.0 * (b - a);  // one ITB in the round trip
    sum += overhead;
    std::printf("%10zu %12.2f %12.2f %14.3f %10.2f\n", rows_ud[i].size,
                a / 1000.0, b / 1000.0, overhead / 1000.0,
                100.0 * (b - a) / a);
    telemetry::BenchReport::Row row;
    row.num["size_bytes"] = static_cast<double>(rows_ud[i].size);
    row.num["ud_half_rtt_ns"] = a;
    row.num["itb_half_rtt_ns"] = b;
    row.num["ud_p99_ns"] = rows_ud[i].p99_ns;
    row.num["itb_p99_ns"] = rows_itb[i].p99_ns;
    row.num["per_itb_overhead_ns"] = overhead;
    row.num["rel_percent"] = 100.0 * (b - a) / a;
    report.add_row("overhead", std::move(row));
    const std::string hist_name =
        "half_rtt_" + std::to_string(rows_ud[i].size) + "B";
    report.add_histogram(hist_name, "ud", rows_ud[i].hist);
    report.add_histogram(hist_name, "itb", rows_itb[i].hist);
  }
  const double avg_overhead = sum / static_cast<double>(rows_ud.size());
  std::printf("\naverage per-ITB overhead: %.3f us   (paper: ~1.3 us)\n",
              avg_overhead / 1000.0);
  std::printf("overhead is flat in message size (virtual cut-through)\n");
  std::printf("relative overhead falls with size (paper: ~10%% -> ~3%%)\n");

  // Sanity: the in-transit NIC actually forwarded every ping in firmware.
  const auto forwarded = outputs[1].itb_forwarded;
  const auto delivered = outputs[1].delivered_to_host;
  std::printf("\nin-transit NIC forwarded %llu packets, delivered %llu to "
              "its host\n",
              static_cast<unsigned long long>(forwarded),
              static_cast<unsigned long long>(delivered));

  telemetry::BenchReport* rp = json_path ? &report : nullptr;
  flight::BenchFlight flight(fcli);
  if (fcli.enabled)
    for (auto& o : outputs) flight.add(std::move(o.recording));
  if (!flight.finish("fig8_itb_overhead", rp)) return 1;

  if (json_path) {
    report.add_scalar("average_per_itb_overhead_ns", avg_overhead);
    report.add_scalar("itb_forwarded", static_cast<double>(forwarded));
    report.add_scalar("itb_delivered_to_host", static_cast<double>(delivered));
    report.add_counters("ud", std::move(outputs[0].counters));
    report.add_counters("itb", std::move(outputs[1].counters));
    report.add_series("ud", std::move(outputs[0].series));
    report.add_series("itb", std::move(outputs[1].series));
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
