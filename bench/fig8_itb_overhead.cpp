// Figure 8 reproduction: per-ITB latency overhead for in-transit packets.
//
// Methodology (paper §5): half-round-trip between host1 and host2 where the
// forward path either is a 5-switch-traversal up*/down* route (with a loop
// in switch 2) or crosses the in-transit host once (also 5 traversals, same
// port kinds). Only the forward leg differs, so the per-ITB overhead is
// twice the half-round-trip difference. The paper measures ~1.3 us per ITB
// (its earlier simulation estimate was ~0.5 us), with relative overhead
// falling from ~10% (short) to ~3% (long messages).
#include <cstdio>

#include "itb/core/experiments.hpp"
#include "itb/workload/pingpong.hpp"

int main() {
  using namespace itb;

  workload::AllsizeConfig cfg;
  cfg.iterations = 100;
  cfg.sizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4000};

  auto ud = core::make_fig8_cluster(/*itb_path=*/false);
  auto itb = core::make_fig8_cluster(/*itb_path=*/true);

  auto rows_ud = workload::run_allsize(ud->queue(), ud->port(core::kHost1),
                                       ud->port(core::kHost2), cfg);
  auto rows_itb = workload::run_allsize(itb->queue(), itb->port(core::kHost1),
                                        itb->port(core::kHost2), cfg);

  std::printf("Figure 8: message latency overhead of the ITB mechanism\n");
  std::printf("(half-round-trip; both paths cross 5 switches and the same "
              "port kinds)\n\n");
  std::printf("%10s %12s %12s %14s %10s\n", "size(B)", "UD(us)", "UD-ITB(us)",
              "overhead(us)", "rel(%)");
  double sum = 0;
  for (std::size_t i = 0; i < rows_ud.size(); ++i) {
    const double a = rows_ud[i].half_rtt_ns;
    const double b = rows_itb[i].half_rtt_ns;
    const double overhead = 2.0 * (b - a);  // one ITB in the round trip
    sum += overhead;
    std::printf("%10zu %12.2f %12.2f %14.3f %10.2f\n", rows_ud[i].size,
                a / 1000.0, b / 1000.0, overhead / 1000.0,
                100.0 * (b - a) / a);
  }
  std::printf("\naverage per-ITB overhead: %.3f us   (paper: ~1.3 us)\n",
              sum / static_cast<double>(rows_ud.size()) / 1000.0);
  std::printf("overhead is flat in message size (virtual cut-through)\n");
  std::printf("relative overhead falls with size (paper: ~10%% -> ~3%%)\n");

  // Sanity: the in-transit NIC actually forwarded every ping in firmware.
  std::printf("\nin-transit NIC forwarded %llu packets, delivered %llu to "
              "its host\n",
              static_cast<unsigned long long>(
                  itb->nic(core::kInTransit).stats().itb_forwarded),
              static_cast<unsigned long long>(
                  itb->nic(core::kInTransit).stats().delivered_to_host));
  return 0;
}
