// Pure engine throughput microbench — the tracked perf trajectory's
// events/sec point (BENCH_7.json).
//
// Drives net::Network directly with a saturating closed-loop workload on a
// synthetic COW: a chain of 8-port switches with hosts hanging off each,
// every host streaming fixed-size packets at its mirror host with a fixed
// window. Chain routes are up*/down*-valid by construction (all-left or
// all-right), so the saturation is deadlock-free and the in-flight
// population stays pinned at the window limit. No NIC, no GM, no I/O in the
// timed region: what is measured is the simulator's own hot loop — event
// engine, channel arbitration, worm bookkeeping.
//
// Delivered packets recycle their byte buffers back into the next injection
// (route prefix re-inserted in place), so in an allocation-free engine the
// steady state performs ZERO heap allocations — counted for real via
// sim::alloc_hook and reported as steady_state_allocations.
//
// Output: committed events/sec (queue.run_events over wall time), worms/sec
// (deliveries), and the allocation count; `--json <path>` writes the
// itb.bench.v1 document CI gates on (>15% events/sec regression vs the
// committed BENCH_7.json fails the build).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "itb/net/network.hpp"
#include "itb/packet/format.hpp"
#include "itb/sim/alloc_hook.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/trace.hpp"
#include "itb/topo/topology.hpp"

namespace {

using namespace itb;

struct Options {
  int switches = 8;
  int hosts_per_switch = 4;
  int window = 8;            // packets in flight per flow
  int payload = 64;          // payload bytes per packet
  std::uint64_t warmup = 200'000;   // events before the timed region
  std::uint64_t events = 2'000'000;  // timed region length
  int reps = 3;              // timed repetitions; best rep is reported
  std::string json_path;
};

/// Closed-loop traffic source: every delivery at the mirror host re-injects
/// the same buffer from the original source, keeping `window` packets in
/// flight per flow forever.
class SyntheticHost final : public net::HostHooks {
 public:
  struct Flow {
    std::uint16_t src = 0;
    packet::Bytes route_prefix;  // re-inserted in front of recycled buffers
  };

  SyntheticHost(net::Network& network, std::vector<Flow>& flows,
                std::uint64_t& deliveries)
      : network_(network), flows_(flows), deliveries_(deliveries) {}

  void on_rx_head(sim::Time, net::TxHandle) override {}
  void on_rx_early_header(sim::Time, net::TxHandle,
                          const packet::Bytes&) override {}
  void on_tx_started(sim::Time, net::TxHandle) override {}
  void on_tx_complete(sim::Time, net::TxHandle) override {}

  void on_rx_complete(sim::Time, net::WirePacket pkt) override {
    ++deliveries_;
    // Recycle: the route bytes were consumed en route; splice the flow's
    // route prefix back in front and send the buffer out again. The
    // buffer's capacity already fits the full packet, so the insert is a
    // memmove, not an allocation.
    Flow& flow = flows_[pkt.src_host];
    packet::Bytes buf = std::move(pkt.bytes);
    buf.insert(buf.begin(), flow.route_prefix.begin(),
               flow.route_prefix.end());
    network_.inject(flow.src, std::move(buf));
  }

 private:
  net::Network& network_;
  std::vector<Flow>& flows_;
  std::uint64_t& deliveries_;
};

struct BenchResult {
  double events_per_s = 0;
  double worms_per_s = 0;
  std::uint64_t timed_events = 0;
  std::uint64_t timed_worms = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t head_blocks = 0;
  std::uint64_t live_worms = 0;
  double wall_s = 0;
};

BenchResult run_once(const Options& opt) {
  const int s_count = opt.switches;
  const int per_switch = opt.hosts_per_switch;
  const int n_hosts = s_count * per_switch;

  // Chain topology: switch i port 0 -> switch i-1, port 1 -> switch i+1,
  // ports 2.. host slots. A chain is a tree, so the mirrored all-to-mirror
  // pattern below is deadlock-free under wormhole channel holding.
  topo::Topology topo;
  for (int s = 0; s < s_count; ++s) topo.add_switch(8);
  for (int h = 0; h < n_hosts; ++h) topo.add_host();
  for (int s = 0; s + 1 < s_count; ++s)
    topo.connect_switches(static_cast<std::uint16_t>(s), 1,
                          static_cast<std::uint16_t>(s + 1), 0);
  for (int h = 0; h < n_hosts; ++h)
    topo.attach_host(static_cast<std::uint16_t>(h),
                     static_cast<std::uint16_t>(h / per_switch),
                     static_cast<std::uint8_t>(2 + h % per_switch));

  sim::EventQueue queue;
  sim::Tracer tracer;  // no sinks: zero-cost emits
  net::Network network(topo, net::NetTiming{}, queue, tracer);

  std::vector<SyntheticHost::Flow> flows(n_hosts);
  std::uint64_t deliveries = 0;
  std::vector<std::unique_ptr<SyntheticHost>> hosts;
  hosts.reserve(n_hosts);
  for (int h = 0; h < n_hosts; ++h) {
    hosts.push_back(
        std::make_unique<SyntheticHost>(network, flows, deliveries));
    network.attach_host(static_cast<std::uint16_t>(h), hosts.back().get());
  }

  // Flow h -> mirror host (N-1-h): route = |ds| inter-switch bytes plus the
  // final host-port byte.
  const packet::Bytes payload(static_cast<std::size_t>(opt.payload), 0xAB);
  for (int h = 0; h < n_hosts; ++h) {
    const int dst = n_hosts - 1 - h;
    const int sa = h / per_switch, sb = dst / per_switch;
    packet::Route route;
    for (int s = sa; s != sb; s += (sb > sa ? 1 : -1))
      route.push_back(sb > sa ? 1 : 0);
    route.push_back(static_cast<std::uint8_t>(2 + dst % per_switch));
    auto& flow = flows[h];
    flow.src = static_cast<std::uint16_t>(h);
    for (std::uint8_t port : route)
      flow.route_prefix.push_back(packet::encode_route_byte(port));
    for (int w = 0; w < opt.window; ++w)
      network.inject(flow.src,
                     packet::build_packet(route, packet::PacketType::kGm,
                                          payload));
  }

  // Warmup: pools grow, queues stretch, vectors reach steady capacity.
  queue.run_events(opt.warmup);
  sim::mark_steady_state();
  const std::uint64_t allocs_before = sim::total_allocations();
  const std::uint64_t worms_before = network.stats().delivered;
  const std::uint64_t blocks_before = network.stats().head_blocks;

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t fired = queue.run_events(opt.events);
  const auto t1 = std::chrono::steady_clock::now();

  BenchResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.timed_events = fired;
  r.timed_worms = network.stats().delivered - worms_before;
  r.head_blocks = network.stats().head_blocks - blocks_before;
  r.steady_allocs = sim::total_allocations() - allocs_before;
  r.live_worms = network.in_flight();
  r.events_per_s = static_cast<double>(fired) / r.wall_s;
  r.worms_per_s = static_cast<double>(r.timed_worms) / r.wall_s;
  return r;
}

bool write_json(const Options& opt, const BenchResult& best) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"itb.bench.v1\",\n");
  std::fprintf(f, "  \"bench\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"pr\": 7,\n");
  std::fprintf(f,
               "  \"description\": \"Pure engine microbench: saturating "
               "closed-loop mirror traffic on a %d-switch chain COW, %d "
               "hosts, window %d, %d B payload. Committed events/sec over "
               "the wall clock of the timed region; buffers recycled so a "
               "zero-allocation engine shows 0 steady-state allocs.\",\n",
               opt.switches, opt.switches * opt.hosts_per_switch, opt.window,
               opt.payload);
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"switches\": %d,\n", opt.switches);
  std::fprintf(f, "    \"hosts_per_switch\": %d,\n", opt.hosts_per_switch);
  std::fprintf(f, "    \"window\": %d,\n", opt.window);
  std::fprintf(f, "    \"payload_bytes\": %d,\n", opt.payload);
  std::fprintf(f, "    \"warmup_events\": %" PRIu64 ",\n", opt.warmup);
  std::fprintf(f, "    \"timed_events\": %" PRIu64 ",\n", opt.events);
  std::fprintf(f, "    \"reps\": %d\n", opt.reps);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"headline\": {\n");
  std::fprintf(f, "    \"events_per_s\": %.0f,\n", best.events_per_s);
  std::fprintf(f, "    \"worms_per_s\": %.0f,\n", best.worms_per_s);
  std::fprintf(f, "    \"steady_state_allocations\": %" PRIu64 ",\n",
               best.steady_allocs);
  std::fprintf(f, "    \"alloc_counting_available\": %s,\n",
               sim::alloc_counting_available() ? "true" : "false");
  std::fprintf(f, "    \"timed_events\": %" PRIu64 ",\n", best.timed_events);
  std::fprintf(f, "    \"timed_worms\": %" PRIu64 ",\n", best.timed_worms);
  std::fprintf(f, "    \"head_blocks\": %" PRIu64 ",\n", best.head_blocks);
  std::fprintf(f, "    \"live_worms\": %" PRIu64 "\n", best.live_worms);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next("--json");
    } else if (arg == "--switches") {
      opt.switches = std::atoi(next("--switches"));
    } else if (arg == "--hosts-per-switch") {
      opt.hosts_per_switch = std::atoi(next("--hosts-per-switch"));
    } else if (arg == "--window") {
      opt.window = std::atoi(next("--window"));
    } else if (arg == "--payload") {
      opt.payload = std::atoi(next("--payload"));
    } else if (arg == "--warmup") {
      opt.warmup = std::strtoull(next("--warmup"), nullptr, 10);
    } else if (arg == "--events") {
      opt.events = std::strtoull(next("--events"), nullptr, 10);
    } else if (arg == "--reps") {
      opt.reps = std::atoi(next("--reps"));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--switches N] [--hosts-per-switch N] "
                   "[--window N] [--payload BYTES] [--warmup EVENTS] "
                   "[--events EVENTS] [--reps N] [--json PATH]\n",
                   argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }
  if (opt.switches < 2 || opt.hosts_per_switch < 1 ||
      opt.hosts_per_switch > 6 || opt.window < 1) {
    std::fprintf(stderr, "bad config (need >=2 switches, 1..6 hosts/switch, "
                         "window >= 1)\n");
    return 2;
  }

  std::printf("engine_throughput: %d-switch chain, %d hosts, window %d, "
              "%d B payload, %" PRIu64 " warmup + %" PRIu64
              " timed events x %d reps\n",
              opt.switches, opt.switches * opt.hosts_per_switch, opt.window,
              opt.payload, opt.warmup, opt.events, opt.reps);
  std::printf("allocation counting: %s\n\n",
              sim::alloc_counting_available() ? "on" : "unavailable (sanitizer build)");

  BenchResult best;
  for (int rep = 0; rep < opt.reps; ++rep) {
    const BenchResult r = run_once(opt);
    std::printf("rep %d: %10.0f events/s  %9.0f worms/s  "
                "%8" PRIu64 " steady-state allocs  (%.3f s, %" PRIu64
                " live worms, %" PRIu64 " head blocks)\n",
                rep, r.events_per_s, r.worms_per_s, r.steady_allocs,
                r.wall_s, r.live_worms, r.head_blocks);
    if (r.events_per_s > best.events_per_s) best = r;
  }

  std::printf("\nbest: %.2f M events/s, %.2f M worms/s, %" PRIu64
              " steady-state allocations\n",
              best.events_per_s / 1e6, best.worms_per_s / 1e6,
              best.steady_allocs);

  if (!opt.json_path.empty()) {
    if (!write_json(opt, best)) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
    std::printf("JSON report written to %s\n", opt.json_path.c_str());
  }
  return 0;
}
