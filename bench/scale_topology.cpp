// Scale study: the mapper + ITB pipeline from 16 hosts to a thousand-host
// fabric (ROADMAP "Scale to thousand-host fabrics").
//
// The paper evaluates on a 3-host testbed and cites simulation studies on
// ~32-switch COWs; the natural question is whether the mechanism — and our
// reproduction of GM's mapper — survives three orders of magnitude. This
// bench sweeps four families:
//   cow      — random irregular COWs (the prior-work methodology, scaled)
//   fattree  — k-ary fat trees, k = 4/8/16 (16/128/1024 hosts)
//   clos     — two-level leaf-spine
//   ring     — the worst case for up*/down* detours
// and per point reports: mapper probe count and discovery wall-clock, route
// solve wall-clock for both policies (parallel per-source solves, --jobs),
// static route metrics (trunk hops, minimal fraction, ITBs/route, peak and
// spanning-tree-root channel usage), and a short uniform-traffic run with
// accepted throughput + latency for up*/down* vs ITB.
//
// `--jobs N`       threads for the per-source route solves (0 = hardware
//                  concurrency, the default). Tables are bit-identical for
//                  any value.
// `--max-hosts N`  skip sweep points with more than N hosts (CI runs 256).
// `--routes-out P` append every computed table's canonical dump to P
//                  (points with <= 256 hosts only). CI byte-compares the
//                  --jobs 1 and --jobs 8 artifacts; no timings go in here.
// `--json P`       itb.telemetry.v1 report with the sweep table.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/parallel.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Point {
  std::string family;
  std::string label;
  topo::Topology topo;
};

std::vector<Point> make_points() {
  std::vector<Point> pts;
  auto cow = [&](std::uint16_t switches) {
    sim::Rng rng(2001);
    topo::IrregularSpec spec;
    spec.switches = switches;
    spec.hosts_per_switch = 4;
    pts.push_back(Point{"cow", "cow" + std::to_string(switches),
                        topo::make_random_irregular(spec, rng)});
  };
  cow(4);
  cow(16);
  cow(32);
  cow(64);
  cow(128);
  for (std::uint8_t k : {std::uint8_t{4}, std::uint8_t{8}, std::uint8_t{16}})
    pts.push_back(Point{"fattree", "ft" + std::to_string(k),
                        topo::make_fat_tree(k)});
  pts.push_back(Point{"clos", "clos4x8", topo::make_clos(4, 8, 8)});
  pts.push_back(Point{"clos", "clos8x32", topo::make_clos(8, 32, 8)});
  auto ring = [&](std::uint16_t switches) {
    pts.push_back(Point{"ring", "ring" + std::to_string(switches),
                        topo::make_ring(switches, 2)});
  };
  ring(8);
  ring(32);
  ring(128);
  return pts;
}

struct PolicyResult {
  double solve_ms = 0;
  double avg_hops = 0;
  double minimal_frac = 0;
  double avg_itbs = 0;
  std::uint32_t peak_usage = 0;
  std::uint32_t root_usage = 0;  // peak over channels at the tree root
  double accepted = 0;           // msgs/s/host
  double lat_us = 0;
  double p99_us = 0;
};

/// Peak directed-channel usage over trunks incident to the spanning-tree
/// root — the congestion up*/down* concentrates and ITBs spread out.
std::uint32_t root_peak(const std::vector<std::uint32_t>& usage,
                        const topo::Topology& topo, std::uint16_t root) {
  std::uint32_t peak = 0;
  for (topo::LinkId lid : topo.links_of(topo::switch_id(root))) {
    const auto& l = topo.link(lid);
    if (l.a.node.kind != topo::NodeKind::kSwitch ||
        l.b.node.kind != topo::NodeKind::kSwitch)
      continue;
    peak = std::max({peak, usage[2 * lid], usage[2 * lid + 1]});
  }
  return peak;
}

/// Traffic run: the table is handed to the cluster as manual routes so the
/// mapper (already measured separately) is not re-run per policy.
void run_traffic(const topo::Topology& fabric,
                 const routing::RouteTable& table, PolicyResult& out) {
  const auto hosts = fabric.host_count();
  std::vector<std::vector<std::vector<packet::Route>>> manual(
      hosts, std::vector<std::vector<packet::Route>>(hosts));
  for (std::uint16_t s = 0; s < hosts; ++s)
    for (std::uint16_t d = 0; d < hosts; ++d)
      if (s != d) manual[s][d] = table.route(s, d).segments;

  core::ClusterConfig cfg;
  cfg.topology = fabric;
  cfg.manual_routes = std::move(manual);
  // Loaded-network MCP configuration (see motivation_throughput): circular
  // receive pool + drop-on-full so in-transit forwarding cannot wedge.
  cfg.mcp_options.recv_buffers = 64;
  cfg.mcp_options.drop_when_full = true;
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 5 * sim::kMs;
  core::Cluster cluster(std::move(cfg));

  workload::LoadConfig lc;
  lc.message_bytes = 512;
  lc.rate_msgs_per_s = 1e4;
  lc.warmup = 1 * sim::kMs;
  lc.measure = 4 * sim::kMs;
  lc.seed = 2018;
  const auto r = workload::run_load(cluster.queue(), cluster.ports(), lc);
  out.accepted = r.accepted_msgs_per_s_per_host;
  out.lat_us = r.latency_mean_ns / 1000.0;
  out.p99_us = r.latency_p99_ns / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = sim::jobs_flag(argc, argv).value_or(0);
  std::size_t max_hosts = SIZE_MAX;
  std::optional<std::string> routes_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-hosts") == 0 && i + 1 < argc)
      max_hosts = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--routes-out") == 0 && i + 1 < argc)
      routes_out = argv[++i];
  }

  std::ofstream routes_file;
  if (routes_out) {
    routes_file.open(*routes_out);
    if (!routes_file) {
      std::fprintf(stderr, "cannot write %s\n", routes_out->c_str());
      return 1;
    }
  }

  telemetry::BenchReport report("scale_topology");
  report.set_param("jobs", static_cast<double>(jobs));

  std::printf(
      "Scale sweep: mapper discovery + parallel route solve + traffic "
      "(--jobs %u%s)\n\n",
      jobs, jobs == 0 ? " = hw concurrency" : "");
  std::printf("%-10s %6s %6s | %8s %9s | %9s %9s | %23s | %23s\n", "point",
              "sw", "hosts", "probes", "disc(ms)", "UD(ms)", "ITB(ms)",
              "UD acc/lat/p99", "ITB acc/lat/p99");

  for (auto& pt : make_points()) {
    if (pt.topo.host_count() > max_hosts) continue;

    auto t0 = Clock::now();
    const auto disc = mapper::discover(pt.topo, 0);
    const double disc_ms = ms_since(t0);

    // Orient + solve on the discovered graph, exactly as mapper::run does.
    routing::UpDown updown(disc.discovered, 0);
    routing::Router router(updown);

    PolicyResult res[2];
    const routing::Policy policies[2] = {routing::Policy::kUpDown,
                                         routing::Policy::kItb};
    for (int p = 0; p < 2; ++p) {
      t0 = Clock::now();
      routing::RouteTable table(router, policies[p], jobs);
      res[p].solve_ms = ms_since(t0);
      res[p].avg_hops = table.average_trunk_hops();
      res[p].minimal_frac = table.minimal_fraction(router, jobs);
      res[p].avg_itbs = table.average_itbs();
      const auto usage = table.channel_usage(disc.discovered);
      for (auto u : usage) res[p].peak_usage = std::max(res[p].peak_usage, u);
      res[p].root_usage = root_peak(usage, disc.discovered, updown.root());
      if (routes_file && pt.topo.host_count() <= 256) {
        routes_file << "== " << pt.label << " ==\n";
        table.dump(routes_file);
      }
      run_traffic(pt.topo, table, res[p]);
    }

    std::printf(
        "%-10s %6zu %6zu | %8llu %9.1f | %9.1f %9.1f | %9.0f %6.1f %6.1f | "
        "%9.0f %6.1f %6.1f\n",
        pt.label.c_str(), pt.topo.switch_count(), pt.topo.host_count(),
        static_cast<unsigned long long>(disc.probes_sent), disc_ms,
        res[0].solve_ms, res[1].solve_ms, res[0].accepted, res[0].lat_us,
        res[0].p99_us, res[1].accepted, res[1].lat_us, res[1].p99_us);

    if (json_path) {
      for (int p = 0; p < 2; ++p) {
        telemetry::BenchReport::Row row;
        row.text["point"] = pt.label;
        row.text["family"] = pt.family;
        row.text["policy"] = p == 0 ? "ud" : "itb";
        row.num["switches"] = static_cast<double>(pt.topo.switch_count());
        row.num["hosts"] = static_cast<double>(pt.topo.host_count());
        row.num["probes"] = static_cast<double>(disc.probes_sent);
        row.num["discover_ms"] = disc_ms;
        row.num["solve_ms"] = res[p].solve_ms;
        row.num["avg_trunk_hops"] = res[p].avg_hops;
        row.num["minimal_fraction"] = res[p].minimal_frac;
        row.num["avg_itbs"] = res[p].avg_itbs;
        row.num["peak_channel_usage"] = res[p].peak_usage;
        row.num["root_channel_usage"] = res[p].root_usage;
        row.num["accepted_msgs_per_s"] = res[p].accepted;
        row.num["latency_mean_us"] = res[p].lat_us;
        row.num["latency_p99_us"] = res[p].p99_us;
        report.add_row("scale", std::move(row));
      }
    }
  }

  std::printf(
      "\n(static metrics and root congestion per point are in the JSON "
      "report; route tables are bit-identical for any --jobs value)\n");

  if (json_path) {
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("JSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
