// Ablation of the routing-level knobs the ITB papers explore:
//   * spanning-tree root selection — a bad root lengthens up*/down* routes
//     and sharpens root congestion; select_best_root() optimises it;
//   * in-transit host selection — spreading ITB duty across a switch's
//     hosts instead of always picking the lowest-index one.
// Reported metrics are static route-table properties plus the ITB-duty
// distribution (max packets forwarded by any single host's NIC).
#include <algorithm>
#include <cstdio>
#include <map>

#include "itb/routing/table.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;

struct Metrics {
  double avg_hops;
  double minimal_fraction;
  std::uint32_t peak_channel;
  std::size_t max_itb_duty;  // routes forwarded by the busiest ITB host
};

Metrics evaluate(const topo::Topology& topo, std::uint16_t root,
                 routing::ItbHostSelection selection) {
  routing::UpDown ud(topo, root);
  routing::Router router(ud, selection);
  routing::RouteTable table(router, routing::Policy::kItb);
  Metrics m;
  m.avg_hops = table.average_trunk_hops();
  m.minimal_fraction = table.minimal_fraction(router);
  m.peak_channel = 0;
  for (auto u : table.channel_usage(topo))
    m.peak_channel = std::max(m.peak_channel, u);
  std::map<std::uint16_t, std::size_t> duty;
  for (std::uint16_t s = 0; s < table.host_count(); ++s)
    for (std::uint16_t d = 0; d < table.host_count(); ++d) {
      if (s == d) continue;
      for (auto h : table.route(s, d).in_transit_hosts) ++duty[h];
    }
  m.max_itb_duty = 0;
  for (auto& [h, n] : duty) m.max_itb_duty = std::max(m.max_itb_duty, n);
  return m;
}

}  // namespace

int main() {
  std::printf("Ablation: root selection and in-transit host selection "
              "(UD+ITB tables)\n\n");
  std::printf("%6s %6s %10s | %9s %8s %9s %9s\n", "seed", "root", "itb-host",
              "avg hops", "minimal", "peak ch.", "max duty");

  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    sim::Rng rng(seed);
    topo::IrregularSpec spec;
    spec.switches = 16;
    spec.hosts_per_switch = 4;
    auto topo = topo::make_random_irregular(spec, rng);
    const auto best = routing::select_best_root(topo);

    struct Case {
      const char* root_name;
      std::uint16_t root;
      const char* sel_name;
      routing::ItbHostSelection sel;
    };
    const Case cases[] = {
        {"0", 0, "lowest", routing::ItbHostSelection::kLowestIndex},
        {"best", best, "lowest", routing::ItbHostSelection::kLowestIndex},
        {"best", best, "spread", routing::ItbHostSelection::kSpread},
    };
    for (const auto& c : cases) {
      auto m = evaluate(topo, c.root, c.sel);
      std::printf("%6llu %6s %10s | %9.3f %8.3f %9u %9zu\n",
                  static_cast<unsigned long long>(seed), c.root_name,
                  c.sel_name, m.avg_hops, m.minimal_fraction, m.peak_channel,
                  m.max_itb_duty);
    }
    std::printf("   (best root for seed %llu is switch %u)\n",
                static_cast<unsigned long long>(seed), best);
  }
  std::printf("\nExpected: the optimised root shortens routes and lowers the "
              "channel peak;\nspread selection cuts the busiest ITB host's "
              "duty without touching hops.\n");
  return 0;
}
