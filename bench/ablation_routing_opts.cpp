// Ablation of the routing-level knobs the ITB papers explore:
//   * spanning-tree root selection — a bad root lengthens up*/down* routes
//     and sharpens root congestion; select_best_root() optimises it;
//   * in-transit host selection — spreading ITB duty across a switch's
//     hosts instead of always picking the lowest-index one.
// Reported metrics are static route-table properties plus the ITB-duty
// distribution (max packets forwarded by any single host's NIC).
//
// `--json <path>` additionally writes an itb.telemetry.v1 report: the
// static table plus one dynamic validation run (uniform load on the first
// seed's network with spread ITB selection) contributing a message latency
// histogram, utilization series and counters (run "best_spread").
//
// `--jobs N` fans the per-seed route-table evaluations across N threads
// (default: hardware concurrency); output is bit-identical to `--jobs 1`
// because each seed's topology and tables are rebuilt from the seed.
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/routing/table.hpp"
#include "itb/sim/rng.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/topo/builders.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

struct Metrics {
  double avg_hops;
  double minimal_fraction;
  std::uint32_t peak_channel;
  std::size_t max_itb_duty;  // routes forwarded by the busiest ITB host
};

Metrics evaluate(const topo::Topology& topo, std::uint16_t root,
                 routing::ItbHostSelection selection) {
  routing::UpDown ud(topo, root);
  routing::Router router(ud, selection);
  routing::RouteTable table(router, routing::Policy::kItb);
  Metrics m;
  m.avg_hops = table.average_trunk_hops();
  m.minimal_fraction = table.minimal_fraction(router);
  m.peak_channel = 0;
  for (auto u : table.channel_usage(topo))
    m.peak_channel = std::max(m.peak_channel, u);
  std::map<std::uint16_t, std::size_t> duty;
  for (std::uint16_t s = 0; s < table.host_count(); ++s)
    for (std::uint16_t d = 0; d < table.host_count(); ++d) {
      if (s == d) continue;
      for (auto h : table.route(s, d).in_transit_hosts) ++duty[h];
    }
  m.max_itb_duty = 0;
  for (auto& [h, n] : duty) m.max_itb_duty = std::max(m.max_itb_duty, n);
  return m;
}

topo::Topology make_topology(std::uint64_t seed) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 16;
  spec.hosts_per_switch = 4;
  return topo::make_random_irregular(spec, rng);
}

/// Dynamic validation for the JSON report: run uniform load on the
/// optimised configuration so the static claims (balanced duty, lower
/// channel peak) are observable as utilization series. Returns the run's
/// liveness verdict when the watchdog is armed.
health::LivenessVerdict validation_run(std::uint64_t seed,
                                       telemetry::BenchReport& report,
                                       bool watchdog,
                                       flight::BenchFlight* bf) {
  core::ClusterConfig cfg;
  cfg.topology = make_topology(seed);
  cfg.policy = routing::Policy::kItb;
  if (bf) cfg.flight = bf->cli().recorder();
  cfg.itb_selection = routing::ItbHostSelection::kSpread;
  cfg.mcp_options.recv_buffers = 64;
  cfg.mcp_options.drop_when_full = true;
  cfg.gm_config.send_tokens = 64;
  cfg.gm_config.window = 32;
  cfg.gm_config.retransmit_timeout = 5 * sim::kMs;
  cfg.telemetry_sample_period = 500 * sim::kUs;
  cfg.watchdog.enabled = watchdog;
  core::Cluster cluster(std::move(cfg));
  cluster.telemetry().start_sampling();

  workload::LoadConfig lc;
  lc.message_bytes = 512;
  lc.rate_msgs_per_s = 1e4;
  lc.warmup = 1 * sim::kMs;
  lc.measure = 4 * sim::kMs;
  lc.seed = seed + 17;
  auto r = workload::run_load(cluster.queue(), cluster.ports(), lc);
  cluster.telemetry().stop_sampling();

  report.add_scalar("validation_accepted_msgs_per_s",
                    r.accepted_msgs_per_s_per_host);
  report.add_histogram("message_latency", "best_spread", r.latency_hist);
  report.add_counters("best_spread", cluster.telemetry().registry());
  report.add_series("best_spread", cluster.telemetry().sampler());
  if (bf && cluster.flight()) bf->add(cluster.flight()->snapshot());
  return watchdog ? cluster.health()->verdict() : health::LivenessVerdict{};
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  telemetry::BenchReport report("ablation_routing_opts");

  std::printf("Ablation: root selection and in-transit host selection "
              "(UD+ITB tables)\n\n");
  std::printf("%6s %6s %10s | %9s %8s %9s %9s\n", "seed", "root", "itb-host",
              "avg hops", "minimal", "peak ch.", "max duty");

  struct Case {
    const char* root_name;
    bool use_best;  // root = select_best_root(topo) instead of switch 0
    const char* sel_name;
    routing::ItbHostSelection sel;
  };
  constexpr Case kCases[] = {
      {"0", false, "lowest", routing::ItbHostSelection::kLowestIndex},
      {"best", true, "lowest", routing::ItbHostSelection::kLowestIndex},
      {"best", true, "spread", routing::ItbHostSelection::kSpread},
  };
  const std::vector<std::uint64_t> seeds = {11, 12, 13};

  // Each seed's topology + best-root search + three table builds form one
  // independent unit of work; fan the seeds, then print in seed order.
  struct SeedOutput {
    std::uint16_t best = 0;
    std::array<Metrics, std::size(kCases)> metrics;
  };
  auto outputs = core::run_sweep_parallel(
      seeds.size(),
      [&](std::size_t i) {
        auto topo = make_topology(seeds[i]);
        SeedOutput out;
        out.best = routing::select_best_root(topo);
        for (std::size_t c = 0; c < std::size(kCases); ++c)
          out.metrics[c] = evaluate(
              topo, kCases[c].use_best ? out.best : std::uint16_t{0},
              kCases[c].sel);
        return out;
      },
      jobs);

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::uint64_t seed = seeds[i];
    const SeedOutput& so = outputs[i];
    for (std::size_t ci = 0; ci < std::size(kCases); ++ci) {
      const Case& c = kCases[ci];
      const Metrics& m = so.metrics[ci];
      std::printf("%6llu %6s %10s | %9.3f %8.3f %9u %9zu\n",
                  static_cast<unsigned long long>(seed), c.root_name,
                  c.sel_name, m.avg_hops, m.minimal_fraction, m.peak_channel,
                  m.max_itb_duty);
      telemetry::BenchReport::Row row;
      row.num["seed"] = static_cast<double>(seed);
      row.text["root"] = c.root_name;
      row.num["root_switch"] =
          static_cast<double>(c.use_best ? so.best : std::uint16_t{0});
      row.text["itb_selection"] = c.sel_name;
      row.num["avg_trunk_hops"] = m.avg_hops;
      row.num["minimal_fraction"] = m.minimal_fraction;
      row.num["peak_channel_usage"] = static_cast<double>(m.peak_channel);
      row.num["max_itb_duty"] = static_cast<double>(m.max_itb_duty);
      report.add_row("route_metrics", std::move(row));
    }
    std::printf("   (best root for seed %llu is switch %u)\n",
                static_cast<unsigned long long>(seed), so.best);
  }
  std::printf("\nExpected: the optimised root shortens routes and lowers the "
              "channel peak;\nspread selection cuts the busiest ITB host's "
              "duty without touching hops.\n");

  // The sweep above is static route-table analysis — only the validation
  // run simulates traffic, so --watchdog and --flight attach there
  // (forcing the run even without --json so a verdict/recording always
  // exists).
  flight::BenchFlight bflight(fcli);
  if (json_path || watchdog || fcli.enabled) {
    const auto liveness =
        validation_run(11, report, watchdog, fcli.enabled ? &bflight : nullptr);
    if (watchdog) {
      health::print_liveness_summary(liveness);
      health::add_liveness_scalars(report, liveness);
    }
  }
  if (!bflight.finish("ablation_routing_opts", json_path ? &report : nullptr))
    return 1;
  if (json_path) {
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  return 0;
}
