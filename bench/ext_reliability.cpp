// Extension experiment: GM reliability under injected faults.
//
// A chaos soak over the two paper fabrics — the Fig. 6 testbed and the
// Fig. 1 irregular network — sweeping probabilistic last-hop drop rates
// against scheduled fault windows (link/switch/host down, NIC stalls)
// generated deterministically from a seed. Every run streams a fixed batch
// of tagged messages across one protected host pair and reports
// delivered-exactly-once counts (unique deliveries, duplicates, failed
// messages), the network's loss ledger by cause, mapper remaps and the
// recovery-latency percentiles.
//
// `--json <path>` writes an itb.telemetry.v1 report with the sweep table
// plus the full metric registry of every run.
//
// `--jobs N` fans the independent sweep points across N threads (default:
// hardware concurrency); results are bit-identical to `--jobs 1` because
// every run owns its cluster.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/bench_support.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/telemetry/export.hpp"

namespace {

using namespace itb;
using packet::Bytes;

constexpr int kMessages = 150;
constexpr std::size_t kMessageBytes = 1024;
constexpr sim::Time kChaosHorizon = 20 * sim::kMs;

struct Scenario {
  const char* name;
  topo::Topology (*make)();
  routing::Policy policy;
  std::uint16_t src, dst;
};

topo::Topology make_testbed() { return topo::make_paper_testbed(); }

const Scenario kScenarios[] = {
    // Fig. 6 testbed: h0 -> h2 crosses one of the two trunks; a trunk
    // window forces the remap onto the other.
    {"fig6_testbed", make_testbed, routing::Policy::kUpDown, 0, 2},
    // Fig. 1 network under ITB routing: the 4 -> 1 route relies on the
    // in-transit host on switch 6, which chaos may take down mid-path.
    {"fig1_network", topo::make_fig1_network, routing::Policy::kItb, 4, 1},
};

struct ChaosLevel {
  const char* name;
  int link_windows, switch_windows, host_windows, stall_windows;
  int hotspot_bursts = 0;  // §8 hotspot preset: a stall train on one host
};

const ChaosLevel kChaosLevels[] = {
    {"calm", 0, 0, 0, 0},
    {"light", 2, 0, 0, 1},
    {"heavy", 8, 2, 2, 1},
    // Deterministic hotspot-burst train: each release floods the target
    // NIC's pool at once — the §8 wedge-shaped load, under lossless
    // backpressure. The liveness watchdog (--watchdog) must see any stall
    // this provokes and report it in the verdict.
    {"hotspot", 0, 0, 0, 0, 6},
};

const double kDropRates[] = {0.0, 0.02, 0.1};

struct PointResult {
  std::string run_name;
  int accepted = 0;
  int delivered_unique = 0;
  int duplicates = 0;  // message-level duplicate deliveries (must stay 0)
  std::uint64_t failed = 0;
  std::uint64_t lost = 0;
  std::uint64_t lost_windows = 0;  // link/switch/host-down kills
  std::uint64_t remaps = 0;
  std::uint64_t retransmissions = 0;
  double recovery_p50_ns = 0, recovery_p99_ns = 0;
  std::uint64_t recovery_epoch = 0;
  std::uint64_t recovery_scoped_probes = 0;
  std::uint64_t recovery_sources_patched = 0;
  std::uint64_t recovery_flaps_quarantined = 0;
  sim::Time end = 0;
  bool reconciled = false;
  std::vector<telemetry::MetricSample> counters;
  health::LivenessVerdict liveness;  // --watchdog only
  flight::Recording recording;       // --flight only
};

PointResult run_point(const Scenario& sc, double drop, const ChaosLevel& lvl,
                      bool want_counters, bool watchdog,
                      const flight::RecorderConfig& frc) {
  core::ClusterConfig cfg;
  cfg.topology = sc.make();
  cfg.policy = sc.policy;
  cfg.fault_plan.drop_probability = drop;
  cfg.gm_config.retransmit_timeout = 300 * sim::kUs;
  cfg.gm_config.max_retries = 12;
  cfg.remap_delay = 300 * sim::kUs;
  if (lvl.link_windows + lvl.switch_windows + lvl.host_windows +
      lvl.stall_windows + lvl.hotspot_bursts) {
    fault::FaultSchedule::ChaosSpec spec;
    spec.horizon = kChaosHorizon;
    spec.link_windows = lvl.link_windows;
    spec.switch_windows = lvl.switch_windows;
    spec.host_windows = lvl.host_windows;
    spec.stall_windows = lvl.stall_windows;
    spec.mean_duration = 1 * sim::kMs;
    spec.protected_hosts = {sc.src, sc.dst};
    spec.hotspot_bursts = lvl.hotspot_bursts;
    spec.hotspot_stall = 400 * sim::kUs;
    spec.hotspot_gap = 200 * sim::kUs;
    cfg.fault_schedule = fault::FaultSchedule::chaos(cfg.topology, spec);
  }
  cfg.watchdog.enabled = watchdog;
  cfg.flight = frc;
  core::Cluster c(std::move(cfg));

  std::vector<int> delivered(kMessages, 0);
  c.port(sc.dst).set_receive_handler(
      [&delivered](sim::Time, std::uint16_t, Bytes m) {
        ++delivered[static_cast<std::size_t>(m[0]) |
                    (static_cast<std::size_t>(m[1]) << 8)];
      });
  // Pace one message every horizon/kMessages so the stream spans every
  // chaos window instead of draining before the first one opens; when a
  // send is refused (no token / mid-outage), retry until it is accepted.
  constexpr sim::Duration kGap = kChaosHorizon / kMessages;
  auto accepted = std::make_shared<int>(0);
  auto feed = std::make_shared<std::function<void()>>();
  *feed = [&c, &sc, accepted, feed] {
    if (c.port(sc.src).peer_failed(sc.dst)) return;
    Bytes m(kMessageBytes, 0);
    m[0] = static_cast<std::uint8_t>(*accepted & 0xFF);
    m[1] = static_cast<std::uint8_t>(*accepted >> 8);
    const bool sent = c.port(sc.src).send(sc.dst, std::move(m));
    if (sent && ++*accepted >= kMessages) return;
    c.queue().schedule_in(sent ? kGap : 50 * sim::kUs, [feed] { (*feed)(); });
  };
  (*feed)();
  c.run();

  PointResult r;
  r.accepted = *accepted;
  for (int n : delivered) {
    if (n > 0) ++r.delivered_unique;
    if (n > 1) r.duplicates += n - 1;
  }
  r.failed = c.port(sc.src).stats().messages_failed;
  const auto& ns = c.network().stats();
  r.lost = ns.lost;
  if (watchdog) r.liveness = c.health()->verdict();
  // Forced ejections are watchdog-attributed losses: net.lost but not on
  // the fault injector's ledger, so the reconciliation admits exactly that
  // many extra.
  const std::uint64_t ejected = r.liveness.forced_ejections;
  if (auto* f = c.faults()) {
    const auto& fs = f->stats();
    r.lost_windows = fs.lost_link_down + fs.lost_switch_down + fs.lost_host_down;
    r.reconciled = ns.lost == fs.total_lost() + ejected &&
                   ns.injected == ns.delivered + ns.dropped + ns.lost;
  } else {
    r.reconciled = ns.lost == ejected &&
                   ns.injected == ns.delivered + ns.dropped + ns.lost;
  }
  if (auto* rec = c.recovery()) {
    r.remaps = rec->stats().remaps;
    if (!rec->recovery_latency().empty()) {
      r.recovery_p50_ns = rec->recovery_latency().percentile(50);
      r.recovery_p99_ns = rec->recovery_latency().percentile(99);
    }
    r.recovery_epoch = rec->epoch();
    r.recovery_scoped_probes = rec->stats().scoped_probes;
    r.recovery_sources_patched = rec->stats().sources_patched;
    r.recovery_flaps_quarantined = rec->stats().flaps_quarantined;
  }
  r.retransmissions = c.port(sc.src).stats().retransmissions;
  r.end = c.queue().now();
  if (want_counters) r.counters = c.telemetry().registry().snapshot();
  if (c.flight()) r.recording = c.flight()->snapshot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = core::jobs_flag(argc, argv).value_or(0);
  const bool watchdog = health::watchdog_flag(argc, argv);
  const auto fcli = flight::flight_flags(argc, argv);
  telemetry::BenchReport report("ext_reliability");
  report.set_param("messages", kMessages);
  report.set_param("message_bytes", kMessageBytes);
  report.set_param("chaos_horizon_ns", static_cast<double>(kChaosHorizon));

  std::printf("Extension: GM reliability chaos soak (%d x %zu B messages "
              "per run)\n", kMessages, kMessageBytes);
  std::printf("exactly-once holds when dup = 0 and deliv + failed >= sent\n\n");
  std::printf("%-13s %-6s %-6s | %5s %5s %4s %6s | %6s %7s %6s %7s | %9s\n",
              "scenario", "chaos", "drop", "sent", "deliv", "dup", "failed",
              "lost", "windows", "remaps", "rexmit", "rec_p50");

  struct Point {
    const Scenario* sc;
    const ChaosLevel* lvl;
    double drop;
  };
  std::vector<Point> points;
  for (const auto& sc : kScenarios)
    for (const auto& lvl : kChaosLevels)
      for (double drop : kDropRates) points.push_back({&sc, &lvl, drop});

  auto results = core::run_sweep_parallel(
      points.size(),
      [&](std::size_t i) {
        const Point& p = points[i];
        auto r = run_point(*p.sc, p.drop, *p.lvl, json_path.has_value(),
                           watchdog, fcli.recorder());
        r.run_name = std::string(p.sc->name) + "_" + p.lvl->name + "_d" +
                     std::to_string(static_cast<int>(p.drop * 100));
        return r;
      },
      jobs);

  bool all_exactly_once = true;
  flight::BenchFlight bflight(fcli);
  health::LivenessVerdict liveness;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    PointResult& r = results[i];
    liveness.merge(r.liveness);
    if (fcli.enabled) bflight.add(std::move(r.recording));
    std::printf("%-13s %-6s %-6.2f | %5d %5d %4d %6llu | %6llu %7llu %6llu "
                "%7llu | %7.1fus\n",
                p.sc->name, p.lvl->name, p.drop, r.accepted,
                r.delivered_unique, r.duplicates,
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.lost_windows),
                static_cast<unsigned long long>(r.remaps),
                static_cast<unsigned long long>(r.retransmissions),
                r.recovery_p50_ns / 1000.0);
    const bool ok = r.duplicates == 0 &&
                    r.delivered_unique + static_cast<int>(r.failed) >=
                        r.accepted &&
                    r.reconciled;
    if (!ok) {
      all_exactly_once = false;
      std::printf("  ^^ VIOLATION: duplicates, vanished messages or "
                  "unreconciled loss ledger\n");
    }
    if (json_path) {
      telemetry::BenchReport::Row row;
      row.text["scenario"] = p.sc->name;
      row.text["chaos"] = p.lvl->name;
      row.num["drop"] = p.drop;
      row.num["sent"] = r.accepted;
      row.num["delivered_unique"] = r.delivered_unique;
      row.num["duplicates"] = r.duplicates;
      row.num["failed"] = static_cast<double>(r.failed);
      row.num["lost"] = static_cast<double>(r.lost);
      row.num["lost_windows"] = static_cast<double>(r.lost_windows);
      row.num["remaps"] = static_cast<double>(r.remaps);
      row.num["retransmissions"] = static_cast<double>(r.retransmissions);
      row.num["recovery_p50_ns"] = r.recovery_p50_ns;
      row.num["recovery_p99_ns"] = r.recovery_p99_ns;
      row.num["recovery_epoch"] = static_cast<double>(r.recovery_epoch);
      row.num["recovery_scoped_probes"] =
          static_cast<double>(r.recovery_scoped_probes);
      row.num["recovery_sources_patched"] =
          static_cast<double>(r.recovery_sources_patched);
      row.num["recovery_flaps_quarantined"] =
          static_cast<double>(r.recovery_flaps_quarantined);
      row.num["sim_end_ns"] = static_cast<double>(r.end);
      row.num["exactly_once"] = ok ? 1.0 : 0.0;
      if (watchdog) {
        row.num["health_stalls"] = static_cast<double>(r.liveness.stalls);
        row.num["health_recoveries"] =
            static_cast<double>(r.liveness.recoveries);
        row.num["health_forced_ejections"] =
            static_cast<double>(r.liveness.forced_ejections);
        row.num["health_unrecovered"] =
            static_cast<double>(r.liveness.unrecovered);
      }
      report.add_row("chaos_soak", std::move(row));
      report.add_counters(r.run_name, std::move(r.counters));
    }
  }

  std::printf("\n%s\n", all_exactly_once
                            ? "All runs delivered exactly once with a "
                              "reconciled loss ledger."
                            : "EXACTLY-ONCE VIOLATION: see rows above.");
  if (watchdog) health::print_liveness_summary(liveness);
  if (!bflight.finish("ext_reliability", json_path ? &report : nullptr))
    return 1;

  if (json_path) {
    if (watchdog) health::add_liveness_scalars(report, liveness);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("JSON report written to %s\n", json_path->c_str());
  }
  return all_exactly_once ? 0 : 1;
}
