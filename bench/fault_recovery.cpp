// Incremental fault recovery at scale (headline bench for the recovery
// engine; committed numbers in BENCH_9.json).
//
// Sweeps three fabrics (64-host Clos, 256-host Clos, 1024-host fat tree)
// through three fault scenarios:
//   single — warm-up fault on the busiest trunk, then the measured
//            single-link fault cycle on the median trunk
//   flap   — one link oscillating through three down/up windows, driving
//            the quarantine + coalescing machinery
//   burst  — a switch plus two links inside one detection window with a
//            tight pending budget, driving storm-control degradation
// and runs every scenario twice: the incremental engine (scoped re-probe +
// table patching, patches verified against full solves) vs the PR 3
// baseline (full discovery + all-pairs solve every round). Reported per
// run: simulated recovery latency p50/p99 (first unabsorbed event ->
// table install, probe/solve costs charged per probe and per source),
// probe and source ratios, and the engine counters.
//
// `--jobs N`       threads for per-source route solves (0 = hw concurrency)
// `--max-hosts N`  skip sweep points with more than N hosts (CI runs 256)
// `--routes-out P` append the post-chaos scoped table dump (points <= 256)
//                  — CI byte-compares --jobs 1 vs --jobs 8
// `--no-verify`    skip the verify-against-full safety net (full 1024-host
//                  sweeps re-solve all pairs per patched round otherwise)
// `--json P`       itb.telemetry.v1 report
//
// Exit is nonzero when a verified patch mismatched a full solve, when the
// warmed single-fault round degraded to a full re-solve, or when the
// 1024-host single-link fault failed the >= 10x source-scoping bar.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/routing/table.hpp"
#include "itb/routing/updown.hpp"
#include "itb/sim/parallel.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Point {
  std::string label;
  topo::Topology topo;
  routing::Policy policy;
  // Chosen off the canonical boot table (below): the busiest trunk is
  // crossed by every source (the up*/down* funnel), the median trunk — like
  // most of the fabric — carries no stored routes.
  topo::LinkId median_trunk = 0;
  topo::LinkId busiest_trunk = 0;
  std::uint16_t victim_switch = 0;  // for the burst scenario
};

std::vector<Point> make_points() {
  std::vector<Point> pts;
  pts.push_back({"clos64", topo::make_clos(4, 16, 4), routing::Policy::kItb});
  pts.push_back({"clos256", topo::make_clos(8, 16, 16), routing::Policy::kItb});
  // The thousand-host headline measures recovery scaling; ITB-candidate
  // invalidation is exercised at the Clos points (an ITB solve at this size
  // would dominate the sweep's wall clock without changing the story).
  pts.push_back({"ft1024", topo::make_fat_tree(16), routing::Policy::kUpDown});
  return pts;
}

// Pick victims off a table built in TRUE fabric coordinates (all links up,
// root at host 0's uplink switch) — identical to the recovery engine's own
// epoch-1 solve, so link ids and usage are the ones the engine will see.
void choose_victims(Point& pt, unsigned jobs) {
  const auto root = pt.topo.host_uplink(0).node.index;
  std::vector<char> all_up(pt.topo.link_count(), 1);
  const routing::UpDown ud(pt.topo, root, all_up);
  const routing::Router router(ud, routing::ItbHostSelection::kLowestIndex);
  const routing::RouteTable table(router, pt.policy, jobs);
  const auto usage = table.channel_usage(pt.topo);
  std::vector<std::pair<std::uint64_t, topo::LinkId>> trunks;
  for (topo::LinkId l = 0; l < pt.topo.link_count(); ++l) {
    const auto& link = pt.topo.link(l);
    if (link.a.node.kind == topo::NodeKind::kSwitch &&
        link.b.node.kind == topo::NodeKind::kSwitch &&
        !(link.a.node == link.b.node))
      trunks.push_back({usage[2 * l] + usage[2 * l + 1], l});
  }
  std::sort(trunks.begin(), trunks.end());
  pt.median_trunk = trunks[trunks.size() / 2].second;
  pt.busiest_trunk = trunks.back().second;
  // Burst: take down a non-root switch the busiest trunk touches.
  const auto& busy = pt.topo.link(pt.busiest_trunk);
  pt.victim_switch = busy.a.node.index != root ? busy.a.node.index
                                               : busy.b.node.index;
}

fault::FaultSchedule make_schedule(const Point& pt, const std::string& mode) {
  fault::FaultSchedule s;
  if (mode == "single") {
    s.link_down(pt.busiest_trunk, 1 * sim::kMs, 2 * sim::kMs);  // warm-up
    s.link_down(pt.median_trunk, 10 * sim::kMs, 12 * sim::kMs);
  } else if (mode == "flap") {
    s.link_down(pt.median_trunk, 1000 * sim::kUs, 1200 * sim::kUs);
    s.link_down(pt.median_trunk, 1400 * sim::kUs, 1600 * sim::kUs);
    s.link_down(pt.median_trunk, 1800 * sim::kUs, 2000 * sim::kUs);
  } else {  // burst: a switch and two more trunks inside one window
    s.switch_down(pt.victim_switch, 1 * sim::kMs, 3 * sim::kMs);
    s.link_down(pt.median_trunk, 1050 * sim::kUs, 3050 * sim::kUs);
    s.link_down(pt.busiest_trunk, 1100 * sim::kUs, 3100 * sim::kUs);
  }
  return s;
}

struct RunResult {
  fault::RecoveryManager::Stats stats;
  std::vector<fault::RecoveryManager::RoundInfo> rounds;
  double p50_ns = 0, p99_ns = 0, max_ns = 0;
  std::uint64_t epoch = 0;
  double wall_ms = 0;
  telemetry::LatencyHistogram latency;
};

RunResult run_scenario(const Point& pt, const std::string& mode,
                       bool incremental, bool verify, unsigned jobs,
                       std::ofstream* routes_out) {
  core::ClusterConfig cfg;
  cfg.topology = pt.topo;
  cfg.policy = pt.policy;
  cfg.route_solve_jobs = jobs;
  cfg.fault_schedule = make_schedule(pt, mode);
  cfg.recovery.incremental = incremental;
  cfg.recovery.verify_patches = incremental && verify;
  if (mode == "burst") cfg.recovery.max_pending_links = 8;

  const auto t0 = Clock::now();
  core::Cluster c(std::move(cfg));
  c.run();
  RunResult r;
  r.wall_ms = ms_since(t0);
  r.stats = c.recovery()->stats();
  r.rounds = c.recovery()->rounds();
  r.latency = c.recovery()->recovery_latency();
  if (!r.latency.empty()) {
    r.p50_ns = r.latency.percentile(50);
    r.p99_ns = r.latency.percentile(99);
    r.max_ns = static_cast<double>(r.latency.max());
  }
  r.epoch = c.recovery()->epoch();
  if (routes_out && *routes_out && pt.topo.host_count() <= 256 &&
      c.recovery()->current_table()) {
    *routes_out << "== " << pt.label << " " << mode << " ==\n";
    c.recovery()->current_table()->dump(*routes_out);
  }
  return r;
}

double ratio(std::uint64_t total, std::uint64_t part) {
  return static_cast<double>(total) / static_cast<double>(std::max<std::uint64_t>(part, 1));
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  const unsigned jobs = sim::jobs_flag(argc, argv).value_or(0);
  std::size_t max_hosts = SIZE_MAX;
  bool verify = true;
  std::optional<std::string> routes_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-hosts") == 0 && i + 1 < argc)
      max_hosts = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--routes-out") == 0 && i + 1 < argc)
      routes_path = argv[++i];
    else if (std::strcmp(argv[i], "--no-verify") == 0)
      verify = false;
  }

  std::ofstream routes_file;
  if (routes_path) {
    routes_file.open(*routes_path);
    if (!routes_file) {
      std::fprintf(stderr, "cannot write %s\n", routes_path->c_str());
      return 1;
    }
  }

  telemetry::BenchReport report("fault_recovery");
  report.set_param("jobs", static_cast<double>(jobs));
  report.set_param("verify", verify ? 1.0 : 0.0);

  std::printf(
      "Incremental recovery sweep: scoped re-probe + table patching vs full "
      "re-solve (--jobs %u%s, verify %s)\n\n",
      jobs, jobs == 0 ? " = hw concurrency" : "", verify ? "on" : "off");
  std::printf("%-8s %-7s %-7s | %6s %5s %5s | %10s %10s | %9s %9s\n", "point",
              "mode", "engine", "remaps", "full", "patch", "p50(us)",
              "p99(us)", "probes", "sources");

  bool failed = false;
  for (auto& pt : make_points()) {
    if (pt.topo.host_count() > max_hosts) continue;
    choose_victims(pt, jobs);

    for (const std::string mode : {"single", "flap", "burst"}) {
      RunResult res[2];
      for (const bool incremental : {true, false}) {
        auto& r = res[incremental ? 0 : 1];
        r = run_scenario(pt, mode, incremental, verify, jobs,
                         incremental && mode == "single" ? &routes_file
                                                         : nullptr);
        const char* engine = incremental ? "scoped" : "full";
        std::printf(
            "%-8s %-7s %-7s | %6llu %5llu %5llu | %10.1f %10.1f | %4llu/%-4llu "
            "%4llu/%-4llu\n",
            pt.label.c_str(), mode.c_str(), engine,
            static_cast<unsigned long long>(r.stats.remaps),
            static_cast<unsigned long long>(r.stats.full_resolves),
            static_cast<unsigned long long>(r.stats.patch_rounds),
            r.p50_ns / 1e3, r.p99_ns / 1e3,
            static_cast<unsigned long long>(r.stats.scoped_probes),
            static_cast<unsigned long long>(r.stats.full_probe_equiv),
            static_cast<unsigned long long>(r.stats.sources_patched),
            static_cast<unsigned long long>(r.stats.sources_total));

        if (r.stats.verify_fallbacks != 0) {
          std::fprintf(stderr,
                       "FAIL: %s/%s: %llu patched tables mismatched the full "
                       "solve\n",
                       pt.label.c_str(), mode.c_str(),
                       static_cast<unsigned long long>(r.stats.verify_fallbacks));
          failed = true;
        }

        if (json_path) {
          const std::string run = pt.label + "_" + mode + "_" + engine;
          telemetry::BenchReport::Row row;
          row.text["point"] = pt.label;
          row.text["mode"] = mode;
          row.text["engine"] = engine;
          row.num["hosts"] = static_cast<double>(pt.topo.host_count());
          row.num["switches"] = static_cast<double>(pt.topo.switch_count());
          row.num["remaps"] = static_cast<double>(r.stats.remaps);
          row.num["full_resolves"] = static_cast<double>(r.stats.full_resolves);
          row.num["patch_rounds"] = static_cast<double>(r.stats.patch_rounds);
          row.num["p50_ns"] = r.p50_ns;
          row.num["p99_ns"] = r.p99_ns;
          row.num["max_ns"] = r.max_ns;
          row.num["scoped_probes"] = static_cast<double>(r.stats.scoped_probes);
          row.num["full_probe_equiv"] =
              static_cast<double>(r.stats.full_probe_equiv);
          row.num["sources_patched"] =
              static_cast<double>(r.stats.sources_patched);
          row.num["sources_total"] = static_cast<double>(r.stats.sources_total);
          row.num["coalesced_events"] =
              static_cast<double>(r.stats.coalesced_events);
          row.num["flaps_quarantined"] =
              static_cast<double>(r.stats.flaps_quarantined);
          row.num["overflow_full_resolves"] =
              static_cast<double>(r.stats.overflow_full_resolves);
          row.num["verify_fallbacks"] =
              static_cast<double>(r.stats.verify_fallbacks);
          row.num["epoch"] = static_cast<double>(r.epoch);
          row.num["wall_ms"] = r.wall_ms;
          report.add_row("sweep", std::move(row));
          report.add_histogram("recovery_latency", run, r.latency);
        }
      }

      const auto& scoped = res[0];
      if (mode == "single") {
        // The measured fault cycle: rounds 2 (open) and 3 (close) after
        // the warm-up pair. The open must patch, not degrade.
        if (scoped.rounds.size() >= 4 && scoped.rounds[2].full) {
          std::fprintf(stderr,
                       "FAIL: %s: warmed single-link fault degraded to a "
                       "full re-solve\n",
                       pt.label.c_str());
          failed = true;
        }
        if (scoped.rounds.size() >= 4) {
          const auto& open = scoped.rounds[2];
          const double src_ratio =
              ratio(open.sources_total, open.sources_resolved);
          const double probe_ratio =
              ratio(open.full_walk_probes, open.probes);
          std::printf(
              "  -> %s single-fault open: %llu/%llu sources (%.0fx), "
              "%llu/%llu probes (%.0fx), latency %.1f us (full engine: "
              "%.1f us)\n",
              pt.label.c_str(),
              static_cast<unsigned long long>(open.sources_resolved),
              static_cast<unsigned long long>(open.sources_total), src_ratio,
              static_cast<unsigned long long>(open.probes),
              static_cast<unsigned long long>(open.full_walk_probes),
              probe_ratio,
              static_cast<double>(open.installed - open.fired) / 1e3,
              res[1].rounds.size() >= 3
                  ? static_cast<double>(res[1].rounds[2].installed -
                                        res[1].rounds[2].fired) /
                        1e3
                  : 0.0);
          if (json_path) {
            report.add_scalar("scoped_p99_ns_" + pt.label, scoped.p99_ns);
            report.add_scalar("full_p99_ns_" + pt.label, res[1].p99_ns);
            report.add_scalar("sources_ratio_" + pt.label, src_ratio);
            report.add_scalar("probes_ratio_" + pt.label, probe_ratio);
            report.add_scalar(
                "scoped_open_ns_" + pt.label,
                static_cast<double>(open.installed - open.fired));
            if (res[1].rounds.size() >= 3)
              report.add_scalar(
                  "full_open_ns_" + pt.label,
                  static_cast<double>(res[1].rounds[2].installed -
                                      res[1].rounds[2].fired));
          }
          if (pt.topo.host_count() >= 1024 && src_ratio < 10.0) {
            std::fprintf(stderr,
                         "FAIL: %s: single-link fault source ratio %.1fx "
                         "< 10x\n",
                         pt.label.c_str(), src_ratio);
            failed = true;
          }
        }
      } else if (json_path) {
        report.add_scalar(mode + "_scoped_p99_ns_" + pt.label, scoped.p99_ns);
      }
      if (mode == "flap" && scoped.stats.flaps_quarantined == 0) {
        std::fprintf(stderr, "FAIL: %s: flap scenario never quarantined\n",
                     pt.label.c_str());
        failed = true;
      }
      if (mode == "burst" && scoped.stats.overflow_full_resolves == 0) {
        std::fprintf(stderr,
                     "FAIL: %s: burst scenario never tripped storm control\n",
                     pt.label.c_str());
        failed = true;
      }
    }
  }

  if (json_path) {
    report.add_scalar("verify_enabled", verify ? 1 : 0);
    if (!report.write(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nJSON report written to %s\n", json_path->c_str());
  }
  std::printf(
      "\n(latencies are simulated first-event->install; probe/source costs "
      "charged at 1 us/probe + 2 us/source; patched tables %s)\n",
      verify ? "verified byte-identical against full solves"
             : "NOT verified (--no-verify)");
  return failed ? 1 : 0;
}
