# Empty compiler generated dependencies file for motivation_throughput.
# This may be replaced when dependencies are built.
