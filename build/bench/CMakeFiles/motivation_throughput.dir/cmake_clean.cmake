file(REMOVE_RECURSE
  "CMakeFiles/motivation_throughput.dir/motivation_throughput.cpp.o"
  "CMakeFiles/motivation_throughput.dir/motivation_throughput.cpp.o.d"
  "motivation_throughput"
  "motivation_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
