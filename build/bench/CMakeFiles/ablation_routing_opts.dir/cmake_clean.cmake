file(REMOVE_RECURSE
  "CMakeFiles/ablation_routing_opts.dir/ablation_routing_opts.cpp.o"
  "CMakeFiles/ablation_routing_opts.dir/ablation_routing_opts.cpp.o.d"
  "ablation_routing_opts"
  "ablation_routing_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
