file(REMOVE_RECURSE
  "CMakeFiles/ext_applications.dir/ext_applications.cpp.o"
  "CMakeFiles/ext_applications.dir/ext_applications.cpp.o.d"
  "ext_applications"
  "ext_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
