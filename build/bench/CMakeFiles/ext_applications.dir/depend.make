# Empty dependencies file for ext_applications.
# This may be replaced when dependencies are built.
