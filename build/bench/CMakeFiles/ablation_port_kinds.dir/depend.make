# Empty dependencies file for ablation_port_kinds.
# This may be replaced when dependencies are built.
