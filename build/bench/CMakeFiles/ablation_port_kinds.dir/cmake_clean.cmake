file(REMOVE_RECURSE
  "CMakeFiles/ablation_port_kinds.dir/ablation_port_kinds.cpp.o"
  "CMakeFiles/ablation_port_kinds.dir/ablation_port_kinds.cpp.o.d"
  "ablation_port_kinds"
  "ablation_port_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_port_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
