# Empty compiler generated dependencies file for fig7_code_overhead.
# This may be replaced when dependencies are built.
