file(REMOVE_RECURSE
  "CMakeFiles/fig7_code_overhead.dir/fig7_code_overhead.cpp.o"
  "CMakeFiles/fig7_code_overhead.dir/fig7_code_overhead.cpp.o.d"
  "fig7_code_overhead"
  "fig7_code_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_code_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
