# Empty dependencies file for fig8_itb_overhead.
# This may be replaced when dependencies are built.
