file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_pool.dir/ablation_buffer_pool.cpp.o"
  "CMakeFiles/ablation_buffer_pool.dir/ablation_buffer_pool.cpp.o.d"
  "ablation_buffer_pool"
  "ablation_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
