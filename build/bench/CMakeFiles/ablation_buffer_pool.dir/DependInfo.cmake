
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_buffer_pool.cpp" "bench/CMakeFiles/ablation_buffer_pool.dir/ablation_buffer_pool.cpp.o" "gcc" "bench/CMakeFiles/ablation_buffer_pool.dir/ablation_buffer_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
