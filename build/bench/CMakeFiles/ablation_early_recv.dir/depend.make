# Empty dependencies file for ablation_early_recv.
# This may be replaced when dependencies are built.
