file(REMOVE_RECURSE
  "CMakeFiles/ablation_early_recv.dir/ablation_early_recv.cpp.o"
  "CMakeFiles/ablation_early_recv.dir/ablation_early_recv.cpp.o.d"
  "ablation_early_recv"
  "ablation_early_recv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_recv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
