# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nic_test[1]_include.cmake")
include("/root/repo/build/tests/gm_test[1]_include.cmake")
include("/root/repo/build/tests/mapper_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/host_nic_unit_test[1]_include.cmake")
include("/root/repo/build/tests/wormhole_deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/itb_chain_test[1]_include.cmake")
include("/root/repo/build/tests/ip_test[1]_include.cmake")
include("/root/repo/build/tests/parse_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/topo_families_test[1]_include.cmake")
