# Empty dependencies file for gm_test.
# This may be replaced when dependencies are built.
