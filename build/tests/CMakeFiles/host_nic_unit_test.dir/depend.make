# Empty dependencies file for host_nic_unit_test.
# This may be replaced when dependencies are built.
