file(REMOVE_RECURSE
  "CMakeFiles/host_nic_unit_test.dir/host_nic_unit_test.cpp.o"
  "CMakeFiles/host_nic_unit_test.dir/host_nic_unit_test.cpp.o.d"
  "host_nic_unit_test"
  "host_nic_unit_test.pdb"
  "host_nic_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_nic_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
