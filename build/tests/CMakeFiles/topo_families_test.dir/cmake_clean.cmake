file(REMOVE_RECURSE
  "CMakeFiles/topo_families_test.dir/topo_families_test.cpp.o"
  "CMakeFiles/topo_families_test.dir/topo_families_test.cpp.o.d"
  "topo_families_test"
  "topo_families_test.pdb"
  "topo_families_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_families_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
