# Empty compiler generated dependencies file for topo_families_test.
# This may be replaced when dependencies are built.
