# Empty dependencies file for itb_chain_test.
# This may be replaced when dependencies are built.
