file(REMOVE_RECURSE
  "CMakeFiles/itb_chain_test.dir/itb_chain_test.cpp.o"
  "CMakeFiles/itb_chain_test.dir/itb_chain_test.cpp.o.d"
  "itb_chain_test"
  "itb_chain_test.pdb"
  "itb_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
