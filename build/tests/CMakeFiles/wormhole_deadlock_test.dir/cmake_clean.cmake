file(REMOVE_RECURSE
  "CMakeFiles/wormhole_deadlock_test.dir/wormhole_deadlock_test.cpp.o"
  "CMakeFiles/wormhole_deadlock_test.dir/wormhole_deadlock_test.cpp.o.d"
  "wormhole_deadlock_test"
  "wormhole_deadlock_test.pdb"
  "wormhole_deadlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
