file(REMOVE_RECURSE
  "CMakeFiles/mapper_demo.dir/mapper_demo.cpp.o"
  "CMakeFiles/mapper_demo.dir/mapper_demo.cpp.o.d"
  "mapper_demo"
  "mapper_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
