# Empty dependencies file for mapper_demo.
# This may be replaced when dependencies are built.
