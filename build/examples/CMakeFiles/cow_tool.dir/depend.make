# Empty dependencies file for cow_tool.
# This may be replaced when dependencies are built.
