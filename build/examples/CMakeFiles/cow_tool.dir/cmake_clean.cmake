file(REMOVE_RECURSE
  "CMakeFiles/cow_tool.dir/cow_tool.cpp.o"
  "CMakeFiles/cow_tool.dir/cow_tool.cpp.o.d"
  "cow_tool"
  "cow_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
