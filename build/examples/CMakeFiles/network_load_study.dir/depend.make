# Empty dependencies file for network_load_study.
# This may be replaced when dependencies are built.
