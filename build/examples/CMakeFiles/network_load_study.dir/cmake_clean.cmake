file(REMOVE_RECURSE
  "CMakeFiles/network_load_study.dir/network_load_study.cpp.o"
  "CMakeFiles/network_load_study.dir/network_load_study.cpp.o.d"
  "network_load_study"
  "network_load_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_load_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
