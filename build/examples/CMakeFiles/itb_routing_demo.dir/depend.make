# Empty dependencies file for itb_routing_demo.
# This may be replaced when dependencies are built.
