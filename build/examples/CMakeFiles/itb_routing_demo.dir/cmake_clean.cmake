file(REMOVE_RECURSE
  "CMakeFiles/itb_routing_demo.dir/itb_routing_demo.cpp.o"
  "CMakeFiles/itb_routing_demo.dir/itb_routing_demo.cpp.o.d"
  "itb_routing_demo"
  "itb_routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
