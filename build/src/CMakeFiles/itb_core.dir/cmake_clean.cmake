file(REMOVE_RECURSE
  "CMakeFiles/itb_core.dir/itb/core/cluster.cpp.o"
  "CMakeFiles/itb_core.dir/itb/core/cluster.cpp.o.d"
  "CMakeFiles/itb_core.dir/itb/core/experiments.cpp.o"
  "CMakeFiles/itb_core.dir/itb/core/experiments.cpp.o.d"
  "libitb_core.a"
  "libitb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
