file(REMOVE_RECURSE
  "libitb_workload.a"
)
