file(REMOVE_RECURSE
  "CMakeFiles/itb_workload.dir/itb/workload/apps.cpp.o"
  "CMakeFiles/itb_workload.dir/itb/workload/apps.cpp.o.d"
  "CMakeFiles/itb_workload.dir/itb/workload/load.cpp.o"
  "CMakeFiles/itb_workload.dir/itb/workload/load.cpp.o.d"
  "CMakeFiles/itb_workload.dir/itb/workload/pingpong.cpp.o"
  "CMakeFiles/itb_workload.dir/itb/workload/pingpong.cpp.o.d"
  "libitb_workload.a"
  "libitb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
