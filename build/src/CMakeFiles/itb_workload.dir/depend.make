# Empty dependencies file for itb_workload.
# This may be replaced when dependencies are built.
