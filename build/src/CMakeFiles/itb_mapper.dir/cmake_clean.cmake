file(REMOVE_RECURSE
  "CMakeFiles/itb_mapper.dir/itb/mapper/mapper.cpp.o"
  "CMakeFiles/itb_mapper.dir/itb/mapper/mapper.cpp.o.d"
  "libitb_mapper.a"
  "libitb_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
