file(REMOVE_RECURSE
  "CMakeFiles/itb_host.dir/itb/host/pci.cpp.o"
  "CMakeFiles/itb_host.dir/itb/host/pci.cpp.o.d"
  "libitb_host.a"
  "libitb_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
