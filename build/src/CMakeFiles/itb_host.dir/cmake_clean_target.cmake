file(REMOVE_RECURSE
  "libitb_host.a"
)
