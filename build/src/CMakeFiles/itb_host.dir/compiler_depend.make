# Empty compiler generated dependencies file for itb_host.
# This may be replaced when dependencies are built.
