# Empty dependencies file for itb_nic.
# This may be replaced when dependencies are built.
