file(REMOVE_RECURSE
  "CMakeFiles/itb_nic.dir/itb/nic/lanai.cpp.o"
  "CMakeFiles/itb_nic.dir/itb/nic/lanai.cpp.o.d"
  "CMakeFiles/itb_nic.dir/itb/nic/mux.cpp.o"
  "CMakeFiles/itb_nic.dir/itb/nic/mux.cpp.o.d"
  "CMakeFiles/itb_nic.dir/itb/nic/nic.cpp.o"
  "CMakeFiles/itb_nic.dir/itb/nic/nic.cpp.o.d"
  "libitb_nic.a"
  "libitb_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
