file(REMOVE_RECURSE
  "libitb_nic.a"
)
