# Empty compiler generated dependencies file for itb_gm.
# This may be replaced when dependencies are built.
