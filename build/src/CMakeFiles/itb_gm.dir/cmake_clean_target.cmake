file(REMOVE_RECURSE
  "libitb_gm.a"
)
