file(REMOVE_RECURSE
  "CMakeFiles/itb_gm.dir/itb/gm/header.cpp.o"
  "CMakeFiles/itb_gm.dir/itb/gm/header.cpp.o.d"
  "CMakeFiles/itb_gm.dir/itb/gm/port.cpp.o"
  "CMakeFiles/itb_gm.dir/itb/gm/port.cpp.o.d"
  "libitb_gm.a"
  "libitb_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
