file(REMOVE_RECURSE
  "libitb_routing.a"
)
