file(REMOVE_RECURSE
  "CMakeFiles/itb_routing.dir/itb/routing/deadlock.cpp.o"
  "CMakeFiles/itb_routing.dir/itb/routing/deadlock.cpp.o.d"
  "CMakeFiles/itb_routing.dir/itb/routing/paths.cpp.o"
  "CMakeFiles/itb_routing.dir/itb/routing/paths.cpp.o.d"
  "CMakeFiles/itb_routing.dir/itb/routing/table.cpp.o"
  "CMakeFiles/itb_routing.dir/itb/routing/table.cpp.o.d"
  "CMakeFiles/itb_routing.dir/itb/routing/updown.cpp.o"
  "CMakeFiles/itb_routing.dir/itb/routing/updown.cpp.o.d"
  "libitb_routing.a"
  "libitb_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
