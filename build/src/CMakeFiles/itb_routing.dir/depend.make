# Empty dependencies file for itb_routing.
# This may be replaced when dependencies are built.
