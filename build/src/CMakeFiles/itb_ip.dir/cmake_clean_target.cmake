file(REMOVE_RECURSE
  "libitb_ip.a"
)
