file(REMOVE_RECURSE
  "CMakeFiles/itb_ip.dir/itb/ip/datagram.cpp.o"
  "CMakeFiles/itb_ip.dir/itb/ip/datagram.cpp.o.d"
  "CMakeFiles/itb_ip.dir/itb/ip/stack.cpp.o"
  "CMakeFiles/itb_ip.dir/itb/ip/stack.cpp.o.d"
  "libitb_ip.a"
  "libitb_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
