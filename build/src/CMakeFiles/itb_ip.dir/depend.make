# Empty dependencies file for itb_ip.
# This may be replaced when dependencies are built.
