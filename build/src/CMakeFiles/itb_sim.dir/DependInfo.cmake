
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itb/sim/event_queue.cpp" "src/CMakeFiles/itb_sim.dir/itb/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/itb_sim.dir/itb/sim/event_queue.cpp.o.d"
  "/root/repo/src/itb/sim/rng.cpp" "src/CMakeFiles/itb_sim.dir/itb/sim/rng.cpp.o" "gcc" "src/CMakeFiles/itb_sim.dir/itb/sim/rng.cpp.o.d"
  "/root/repo/src/itb/sim/stats.cpp" "src/CMakeFiles/itb_sim.dir/itb/sim/stats.cpp.o" "gcc" "src/CMakeFiles/itb_sim.dir/itb/sim/stats.cpp.o.d"
  "/root/repo/src/itb/sim/trace.cpp" "src/CMakeFiles/itb_sim.dir/itb/sim/trace.cpp.o" "gcc" "src/CMakeFiles/itb_sim.dir/itb/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
