file(REMOVE_RECURSE
  "CMakeFiles/itb_sim.dir/itb/sim/event_queue.cpp.o"
  "CMakeFiles/itb_sim.dir/itb/sim/event_queue.cpp.o.d"
  "CMakeFiles/itb_sim.dir/itb/sim/rng.cpp.o"
  "CMakeFiles/itb_sim.dir/itb/sim/rng.cpp.o.d"
  "CMakeFiles/itb_sim.dir/itb/sim/stats.cpp.o"
  "CMakeFiles/itb_sim.dir/itb/sim/stats.cpp.o.d"
  "CMakeFiles/itb_sim.dir/itb/sim/trace.cpp.o"
  "CMakeFiles/itb_sim.dir/itb/sim/trace.cpp.o.d"
  "libitb_sim.a"
  "libitb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
