file(REMOVE_RECURSE
  "libitb_packet.a"
)
