file(REMOVE_RECURSE
  "CMakeFiles/itb_packet.dir/itb/packet/crc.cpp.o"
  "CMakeFiles/itb_packet.dir/itb/packet/crc.cpp.o.d"
  "CMakeFiles/itb_packet.dir/itb/packet/format.cpp.o"
  "CMakeFiles/itb_packet.dir/itb/packet/format.cpp.o.d"
  "libitb_packet.a"
  "libitb_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
