# Empty compiler generated dependencies file for itb_packet.
# This may be replaced when dependencies are built.
