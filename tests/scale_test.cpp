// Thousand-host scale suite (ROADMAP "Scale to thousand-host fabrics"):
// the iterative mapper walk, the 16-bit id-space guards, the datacenter
// topology generators, and the parallel per-source route solve.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "itb/mapper/mapper.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/alloc_hook.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;

// ---- Headline regression: the walk is iterative -------------------------
// The recursive discovery walk overflowed the native stack on deep chains
// (one frame per newly found switch). The fix keeps frames on the heap; the
// contract is that nothing else changed, checked against this reference
// reimplementation of the recursive algorithm.

struct ReferenceWalk {
  const topo::Topology& fabric;
  std::vector<std::uint16_t> disc_of_true;
  std::vector<std::uint16_t> true_of_disc;
  std::set<topo::LinkId> seen_links;  // the old node-per-insert seen set
  std::uint64_t probes = 0;

  explicit ReferenceWalk(const topo::Topology& f)
      : fabric(f), disc_of_true(f.switch_count(), 0xFFFF) {}

  std::uint16_t admit(std::uint16_t true_sw) {
    if (disc_of_true[true_sw] != 0xFFFF) return disc_of_true[true_sw];
    const auto disc = static_cast<std::uint16_t>(true_of_disc.size());
    disc_of_true[true_sw] = disc;
    true_of_disc.push_back(true_sw);
    return disc;
  }

  void visit(std::uint16_t true_sw) {
    for (std::uint8_t p = 0; p < fabric.switch_spec(true_sw).ports; ++p) {
      ++probes;
      auto peer = fabric.peer(topo::switch_id(true_sw), p);
      if (!peer) continue;
      const auto lid = *fabric.link_at(topo::switch_id(true_sw), p);
      if (!seen_links.insert(lid).second) continue;
      if (peer->node.kind == topo::NodeKind::kHost) continue;
      const bool is_new = disc_of_true[peer->node.index] == 0xFFFF;
      admit(peer->node.index);
      if (is_new) visit(peer->node.index);
    }
  }
};

void expect_matches_reference(const topo::Topology& fabric,
                              std::uint16_t root_host) {
  ReferenceWalk ref(fabric);
  const auto start = fabric.host_uplink(root_host).node.index;
  ref.admit(start);
  ref.visit(start);

  const auto report = mapper::discover(fabric, root_host);
  EXPECT_EQ(report.probes_sent, ref.probes);
  EXPECT_EQ(report.switch_of, ref.true_of_disc);  // discovery order
  EXPECT_EQ(report.switches_found(), ref.true_of_disc.size());
}

TEST(IterativeWalk, MatchesRecursiveReferenceOnSmallFabrics) {
  expect_matches_reference(topo::make_fig1_network(), 0);
  expect_matches_reference(topo::make_paper_testbed(), 0);  // self-cable
  expect_matches_reference(topo::make_ring(16, 2), 3);
  sim::Rng rng(11);
  topo::IrregularSpec spec;
  spec.switches = 24;
  expect_matches_reference(topo::make_random_irregular(spec, rng), 7);
}

TEST(IterativeWalk, SurvivesDeepLinearChain) {
  // 8192 switches in a chain would have cost 8192 native stack frames under
  // the recursive walk — a stack overflow at default thread stack sizes.
  const auto t = topo::make_linear(8192);
  const auto report = mapper::discover(t, 0);
  EXPECT_EQ(report.switches_found(), 8192u);
  EXPECT_EQ(report.hosts_found(), t.host_count());
  EXPECT_EQ(report.probes_sent, 8192u * 8u);  // one probe per port
}

TEST(IterativeWalk, WalkIsAllocationFree) {
  if (!sim::alloc_counting_available())
    GTEST_SKIP() << "allocation counting unavailable in this build";
  // A thousand-switch fabric: the walk pre-sizes everything up front, so
  // the probe loop itself must not touch the heap (the old std::set seen
  // set allocated a node per link).
  sim::Rng rng(5);
  topo::RegularSpec spec;
  spec.switches = 1024;
  spec.degree = 4;
  spec.hosts_per_switch = 1;
  const auto t = topo::make_random_regular(spec, rng);
  const auto report = mapper::discover(t, 0);
  EXPECT_EQ(report.switches_found(), 1024u);
  EXPECT_EQ(report.walk_heap_allocs, 0u);
}

// ---- 16-bit id-space guards ---------------------------------------------

TEST(IdSpace, TopologyRefusesSwitchIndexOverflow) {
  topo::Topology t;
  for (std::size_t i = 0; i < topo::Topology::kMaxNodesPerKind; ++i)
    t.add_switch(1);
  EXPECT_THROW(t.add_switch(1), std::invalid_argument);
}

TEST(IdSpace, TopologyRefusesHostIndexOverflow) {
  topo::Topology t;
  for (std::size_t i = 0; i < topo::Topology::kMaxNodesPerKind; ++i)
    t.add_host();
  EXPECT_THROW(t.add_host(), std::invalid_argument);
}

TEST(IdSpace, GeneratorsRefuseOverflowingParameters) {
  // k = 64 would place k^3/4 = 65536 hosts: one past the id space.
  EXPECT_THROW(topo::make_fat_tree(64), std::invalid_argument);
  EXPECT_THROW(topo::make_fat_tree(3), std::invalid_argument);  // odd k
  EXPECT_THROW(topo::make_fat_tree(0), std::invalid_argument);
  EXPECT_THROW(topo::make_clos(0, 8, 4), std::invalid_argument);
  // 300 leaves need 300 spine ports; the port byte tops out at 255.
  EXPECT_THROW(topo::make_clos(1, 300, 1), std::invalid_argument);
  sim::Rng rng(1);
  topo::RegularSpec spec;
  spec.degree = 200;
  spec.hosts_per_switch = 100;  // 300 ports per switch
  EXPECT_THROW(topo::make_random_regular(spec, rng), std::invalid_argument);
}

// ---- Generators ---------------------------------------------------------

TEST(FatTree, StructuralProperties) {
  for (std::uint8_t k : {std::uint8_t{4}, std::uint8_t{8}}) {
    const auto t = topo::make_fat_tree(k);
    const std::size_t half = k / 2;
    ASSERT_EQ(t.switch_count(), half * half + k * k);
    ASSERT_EQ(t.host_count(), static_cast<std::size_t>(k) * k * k / 4);
    // Uniform k-port switches; trunks + host links fill every edge port.
    for (std::uint16_t s = 0; s < t.switch_count(); ++s)
      EXPECT_EQ(t.switch_spec(s).ports, k);
    // core-agg + agg-edge trunks + host links, all k^3/4 each.
    EXPECT_EQ(t.link_count(), 3 * t.host_count());
    for (std::uint16_t h = 0; h < t.host_count(); ++h)
      EXPECT_TRUE(t.host_attached(h));
    t.validate();
    // Fully discoverable from any host: the fabric is connected.
    EXPECT_EQ(mapper::discover(t, 0).switches_found(), t.switch_count());
  }
}

TEST(Clos, StructuralProperties) {
  const auto t = topo::make_clos(4, 8, 8);
  ASSERT_EQ(t.switch_count(), 12u);
  ASSERT_EQ(t.host_count(), 64u);
  EXPECT_EQ(t.link_count(), 4u * 8u + 64u);  // full bipartite + host links
  // Spines come first and carry one port per leaf.
  for (std::uint16_t s = 0; s < 4; ++s) EXPECT_EQ(t.switch_spec(s).ports, 8);
  for (std::uint16_t l = 4; l < 12; ++l)
    EXPECT_EQ(t.switch_spec(l).ports, 4 + 8);
  t.validate();
  EXPECT_EQ(mapper::discover(t, 0).switches_found(), 12u);
}

TEST(RandomRegular, DegreeConnectivityAndDeterminism) {
  topo::RegularSpec spec;
  spec.switches = 64;
  spec.degree = 4;
  spec.hosts_per_switch = 2;
  sim::Rng a(7), b(7), c(8);
  const auto t1 = topo::make_random_regular(spec, a);
  const auto t2 = topo::make_random_regular(spec, b);
  const auto t3 = topo::make_random_regular(spec, c);

  // Every switch has exactly `degree` trunk endpoints.
  std::vector<unsigned> trunks(t1.switch_count(), 0);
  for (topo::LinkId l = 0; l < t1.link_count(); ++l) {
    const auto& link = t1.link(l);
    if (link.a.node.kind == topo::NodeKind::kSwitch &&
        link.b.node.kind == topo::NodeKind::kSwitch) {
      ++trunks[link.a.node.index];
      ++trunks[link.b.node.index];
    }
  }
  for (auto d : trunks) EXPECT_EQ(d, spec.degree);

  // Same seed, same wiring — link for link.
  ASSERT_EQ(t1.link_count(), t2.link_count());
  bool identical = true, differs_from_t3 = t1.link_count() != t3.link_count();
  for (topo::LinkId l = 0; l < t1.link_count(); ++l) {
    identical &= t1.link(l).a == t2.link(l).a && t1.link(l).b == t2.link(l).b;
    if (!differs_from_t3)
      differs_from_t3 =
          !(t1.link(l).a == t3.link(l).a) || !(t1.link(l).b == t3.link(l).b);
  }
  EXPECT_TRUE(identical);
  EXPECT_TRUE(differs_from_t3);  // a different seed actually rewires

  // Generator only returns connected graphs.
  EXPECT_EQ(mapper::discover(t1, 0).switches_found(), t1.switch_count());
}

TEST(RandomRegular, OddStubTotalThrows) {
  topo::RegularSpec spec;
  spec.switches = 3;
  spec.degree = 3;  // 9 stubs: unpairable
  sim::Rng rng(1);
  EXPECT_THROW(topo::make_random_regular(spec, rng), std::invalid_argument);
}

// ---- Parallel per-source route solve ------------------------------------

std::string dump_of(const routing::RouteTable& t) {
  std::ostringstream os;
  t.dump(os);
  return os.str();
}

TEST(ParallelSolve, TableIsBitIdenticalForAnyJobCount) {
  sim::Rng rng(3);
  topo::IrregularSpec spec;
  spec.switches = 16;
  const auto t = topo::make_random_irregular(spec, rng);
  routing::UpDown ud(t);
  routing::Router router(ud);
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    const routing::RouteTable serial(router, policy, 1);
    const routing::RouteTable wide(router, policy, 8);
    EXPECT_EQ(dump_of(serial), dump_of(wide)) << to_string(policy);
    EXPECT_DOUBLE_EQ(serial.minimal_fraction(router, 1),
                     wide.minimal_fraction(router, 8));
  }
}

TEST(ParallelSolve, PerSourceRowsMatchPerPairRoutes) {
  const auto t = topo::make_ring(12, 2);
  routing::UpDown ud(t);
  routing::Router router(ud);
  const routing::RouteTable table(router, routing::Policy::kItb, 4);
  for (std::uint16_t s = 0; s < t.host_count(); ++s)
    for (std::uint16_t d = 0; d < t.host_count(); ++d) {
      if (s == d) continue;
      const auto pair = router.itb_route(s, d);
      const auto& row = table.route(s, d);
      EXPECT_EQ(row.segments, pair.segments);
      EXPECT_EQ(row.in_transit_hosts, pair.in_transit_hosts);
    }
}

TEST(ParallelSolve, MapperRunIsJobsInvariant) {
  const auto t = topo::make_fat_tree(4);
  const auto serial = mapper::run(t, routing::Policy::kItb, 0,
                                  routing::ItbHostSelection::kLowestIndex,
                                  false, 1);
  const auto wide = mapper::run(t, routing::Policy::kItb, 0,
                                routing::ItbHostSelection::kLowestIndex,
                                false, 8);
  EXPECT_EQ(dump_of(serial.table), dump_of(wide.table));
}

// ---- Route-set safety on the generated families -------------------------

TEST(GeneratedTables, ItbTablesAreDeadlockFree) {
  sim::Rng rng(9);
  topo::RegularSpec spec;
  spec.switches = 32;
  spec.degree = 4;
  spec.hosts_per_switch = 2;
  const topo::Topology fabrics[] = {topo::make_fat_tree(4),
                                    topo::make_clos(4, 8, 4),
                                    topo::make_random_regular(spec, rng),
                                    topo::make_ring(16, 2)};
  for (const auto& fabric : fabrics) {
    const auto result = mapper::run(fabric, routing::Policy::kItb, 0,
                                    routing::ItbHostSelection::kLowestIndex,
                                    false, 4);
    routing::DependencyGraph cdg(result.report.discovered);
    cdg.add_table(result.table, result.report.discovered);
    EXPECT_FALSE(cdg.has_cycle());
  }
}

TEST(GeneratedTables, TreeLikeFamiliesAreBufferWedgeFree) {
  // Fat trees and Clos fabrics route every pair up-then-down, which is
  // already up*/down*-legal — the ITB tables carry no in-transit hops, so
  // even the buffer-augmented graph must stay acyclic.
  for (const auto& fabric : {topo::make_fat_tree(4), topo::make_clos(4, 8, 4)}) {
    const auto result = mapper::run(fabric, routing::Policy::kItb);
    EXPECT_DOUBLE_EQ(result.table.average_itbs(), 0.0);
    EXPECT_DOUBLE_EQ(result.table.minimal_fraction(
                         routing::Router(routing::UpDown(
                             result.report.discovered, 0))),
                     1.0);
    routing::DependencyGraph g(result.report.discovered);
    g.add_table_buffered(result.table, result.report.discovered);
    EXPECT_FALSE(g.has_cycle());
  }
}

}  // namespace
