// Tests for the GM layer: header codec, fragmentation/reassembly, tokens,
// and reliable ordered delivery (acks, go-back-N retransmission, duplicate
// suppression) including recovery from buffer-pool drops.
#include <gtest/gtest.h>

#include <numeric>

#include "itb/core/cluster.hpp"
#include "itb/gm/header.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

// ----------------------------------------------------------------- codec --

TEST(GmHeader, RoundTrip) {
  gm::GmHeader h;
  h.subtype = gm::Subtype::kData;
  h.src_host = 3;
  h.dst_host = 9;
  h.seq = 0xDEADBEEF;
  h.msg_id = 42;
  h.frag_offset = 8192;
  h.msg_len = 100000;
  Bytes data(17, 0x3C);
  auto payload = gm::encode(h, data);
  auto d = gm::decode(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->header.subtype, gm::Subtype::kData);
  EXPECT_EQ(d->header.src_host, 3);
  EXPECT_EQ(d->header.dst_host, 9);
  EXPECT_EQ(d->header.seq, 0xDEADBEEFu);
  EXPECT_EQ(d->header.msg_id, 42u);
  EXPECT_EQ(d->header.frag_offset, 8192u);
  EXPECT_EQ(d->header.msg_len, 100000u);
  EXPECT_EQ(d->header.frag_len, 17u);
  EXPECT_EQ(d->data, data);
}

TEST(GmHeader, AckRoundTrip) {
  gm::GmHeader h;
  h.subtype = gm::Subtype::kAck;
  h.seq = 77;
  auto payload = gm::encode(h, {});
  auto d = gm::decode(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->header.subtype, gm::Subtype::kAck);
  EXPECT_EQ(d->header.seq, 77u);
  EXPECT_TRUE(d->data.empty());
}

TEST(GmHeader, RejectsMalformed) {
  EXPECT_FALSE(gm::decode(Bytes{}).has_value());
  EXPECT_FALSE(gm::decode(Bytes(10, 0)).has_value());       // too short
  Bytes bad(gm::GmHeader::kSize, 0);
  bad[0] = 99;                                               // bad subtype
  EXPECT_FALSE(gm::decode(bad).has_value());
  gm::GmHeader h;
  auto p = gm::encode(h, Bytes(4, 0));
  p.pop_back();                                              // frag_len lies
  EXPECT_FALSE(gm::decode(p).has_value());
}

// ----------------------------------------------------------------- ports --

std::unique_ptr<core::Cluster> make_cluster(
    routing::Policy policy = routing::Policy::kUpDown,
    nic::McpOptions mcp = {}, gm::GmConfig gmc = {}) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(2, 1);  // h0 on s0, h1 on s1
  cfg.policy = policy;
  cfg.mcp_options = mcp;
  cfg.gm_config = gmc;
  return std::make_unique<core::Cluster>(std::move(cfg));
}

TEST(GmPort, SingleMessageDelivery) {
  auto c = make_cluster();
  Bytes msg(100);
  std::iota(msg.begin(), msg.end(), std::uint8_t{0});
  Bytes got;
  std::uint16_t got_src = 99;
  c->port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t src, Bytes m) {
        got = std::move(m);
        got_src = src;
      });
  ASSERT_TRUE(c->port(0).send(1, msg));
  c->run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(c->port(1).stats().messages_delivered, 1u);
}

TEST(GmPort, SendCallbackFiresAfterAck) {
  auto c = make_cluster();
  sim::Time sent_at = -1, delivered_at = -1;
  c->port(1).set_receive_handler(
      [&](sim::Time t, std::uint16_t, Bytes) { delivered_at = t; });
  c->port(0).send(1, Bytes(64, 1), [&](sim::Time t) { sent_at = t; });
  c->run();
  ASSERT_GE(sent_at, 0);
  // The token returns only after the ack made the return trip.
  EXPECT_GT(sent_at, delivered_at - 1);
  EXPECT_EQ(c->port(0).tokens_available(), gm::GmConfig{}.send_tokens);
}

TEST(GmPort, LargeMessageFragmentsAndReassembles) {
  auto c = make_cluster();
  const std::size_t size = 3 * (nic::Nic::kMtu - gm::GmHeader::kSize) + 123;
  Bytes msg(size);
  for (std::size_t i = 0; i < size; ++i)
    msg[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  Bytes got;
  c->port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { got = std::move(m); });
  ASSERT_TRUE(c->port(0).send(1, msg));
  c->run();
  EXPECT_EQ(got, msg);
  // 4 data packets were needed.
  EXPECT_EQ(c->port(0).stats().packets_data, 4u);
}

TEST(GmPort, TokensExhaustAndReturn) {
  gm::GmConfig gmc;
  gmc.send_tokens = 2;
  auto c = make_cluster(routing::Policy::kUpDown, {}, gmc);
  EXPECT_TRUE(c->port(0).send(1, Bytes(10, 0)));
  EXPECT_TRUE(c->port(0).send(1, Bytes(10, 0)));
  EXPECT_FALSE(c->port(0).send(1, Bytes(10, 0)));  // no token left
  c->run();
  EXPECT_EQ(c->port(0).tokens_available(), 2);
  EXPECT_TRUE(c->port(0).send(1, Bytes(10, 0)));
}

TEST(GmPort, ManyMessagesArriveInOrder) {
  auto c = make_cluster();
  std::vector<int> order;
  c->port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { order.push_back(m[0]); });
  // More messages than tokens: pace them with the queue.
  int next = 0;
  std::function<void()> feed = [&] {
    while (next < 40 &&
           c->port(0).send(1, Bytes{static_cast<std::uint8_t>(next)}))
      ++next;
    if (next < 40) c->queue().schedule_in(50 * sim::kUs, feed);
  };
  feed();
  c->run();
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(GmPort, EmptyMessageThrows) {
  auto c = make_cluster();
  EXPECT_THROW(c->port(0).send(1, Bytes{}), std::invalid_argument);
}

TEST(GmPort, BidirectionalConversation) {
  auto c = make_cluster();
  int a_got = 0, b_got = 0;
  c->port(0).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++a_got; });
  c->port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++b_got; });
  for (int i = 0; i < 5; ++i) {
    c->port(0).send(1, Bytes(200, 1));
    c->port(1).send(0, Bytes(200, 2));
  }
  c->run();
  EXPECT_EQ(a_got, 5);
  EXPECT_EQ(b_got, 5);
}

// ------------------------------------------------------------ reliability --

TEST(GmPort, RecoversFromBufferPoolDrops) {
  // drop_when_full NICs lose packets under bursts; GM retransmission must
  // still deliver everything, in order.
  nic::McpOptions mcp;
  mcp.drop_when_full = true;
  mcp.recv_buffers = 1;
  gm::GmConfig gmc;
  gmc.retransmit_timeout = 300 * sim::kUs;
  auto c = make_cluster(routing::Policy::kUpDown, mcp, gmc);
  std::vector<int> order;
  c->port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { order.push_back(m[0]); });
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(c->port(0).send(1, Bytes(4000, static_cast<std::uint8_t>(i))));
  c->run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  // The run must actually have exercised loss recovery.
  EXPECT_GT(c->nic(1).stats().dropped_no_buffer, 0u);
  EXPECT_GT(c->port(0).stats().retransmissions, 0u);
}

TEST(GmPort, DuplicatesAreSuppressed) {
  // Force a duplicate by shrinking the timeout below the round-trip time.
  gm::GmConfig gmc;
  gmc.retransmit_timeout = 20 * sim::kUs;  // RTT is ~30 us here
  auto c = make_cluster(routing::Policy::kUpDown, {}, gmc);
  int got = 0;
  c->port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got; });
  c->port(0).send(1, Bytes(3000, 7));
  c->run();
  EXPECT_EQ(got, 1);  // delivered exactly once
  EXPECT_GT(c->port(0).stats().retransmissions, 0u);
  EXPECT_GT(c->port(1).stats().duplicates, 0u);
}

TEST(GmPort, StatsCountAcks) {
  auto c = make_cluster();
  c->port(1).set_receive_handler([](sim::Time, std::uint16_t, Bytes) {});
  c->port(0).send(1, Bytes(10, 0));
  c->run();
  EXPECT_EQ(c->port(1).stats().packets_ack, 1u);
  EXPECT_EQ(c->port(0).stats().packets_data, 1u);
}

TEST(GmPort, WorksOverItbRoutes) {
  // End-to-end GM over a route with an in-transit buffer (Fig. 1 network,
  // pair whose minimal path needs one ITB).
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  ASSERT_TRUE(c.route_table());
  ASSERT_EQ(c.route_table()->route(4, 1).itb_count(), 1u);
  Bytes got;
  c.port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { got = std::move(m); });
  Bytes msg(5000, 0x42);
  ASSERT_TRUE(c.port(4).send(1, msg));
  c.run();
  EXPECT_EQ(got, msg);
  EXPECT_GT(c.nic(6).stats().itb_forwarded, 0u);  // host 6 is the ITB host
}

}  // namespace
