// Tests for IP-over-Myrinet: datagram codec, checksum, fragmentation and
// reassembly, best-effort loss semantics, and coexistence with GM on the
// same NIC through the type demux.
#include <gtest/gtest.h>

#include <numeric>

#include "itb/core/cluster.hpp"
#include "itb/ip/datagram.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

// --------------------------------------------------------------- codec ---

TEST(IpDatagram, ChecksumKnownProperty) {
  // A buffer with a valid embedded checksum re-sums to zero.
  ip::IpHeader h;
  h.src_addr = ip::address_of(3);
  h.dst_addr = ip::address_of(9);
  auto bytes = ip::encode(h, Bytes(10, 0x5A));
  EXPECT_EQ(ip::internet_checksum(
                std::span(bytes).first(ip::IpHeader::kSize)),
            0);
}

TEST(IpDatagram, RoundTrip) {
  ip::IpHeader h;
  h.protocol = 6;
  h.ident = 0xBEEF;
  h.fragment_offset = 4096;
  h.more_fragments = true;
  h.src_addr = ip::address_of(0);
  h.dst_addr = ip::address_of(65535 - 2);
  Bytes payload(33);
  std::iota(payload.begin(), payload.end(), std::uint8_t{1});
  auto d = ip::decode(ip::encode(h, payload));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->header.protocol, 6);
  EXPECT_EQ(d->header.ident, 0xBEEF);
  EXPECT_EQ(d->header.fragment_offset, 4096);
  EXPECT_TRUE(d->header.more_fragments);
  EXPECT_EQ(d->payload, payload);
}

TEST(IpDatagram, AddressMappingRoundTrips) {
  for (std::uint16_t h : {0, 1, 7, 255, 4000}) {
    auto addr = ip::address_of(h);
    auto back = ip::host_of(addr);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, h);
  }
  EXPECT_FALSE(ip::host_of(0x0A000000).has_value());  // network address
  EXPECT_FALSE(ip::host_of(0xC0A80101).has_value());  // foreign network
}

TEST(IpDatagram, DecodeRejectsCorruption) {
  ip::IpHeader h;
  h.src_addr = ip::address_of(1);
  h.dst_addr = ip::address_of(2);
  auto good = ip::encode(h, Bytes(8, 1));
  for (std::size_t i = 0; i < ip::IpHeader::kSize; ++i) {
    auto bad = good;
    bad[i] ^= 0x20;
    EXPECT_FALSE(ip::decode(bad).has_value()) << "flip at " << i;
  }
  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(ip::decode(truncated).has_value());
}

// --------------------------------------------------------------- stack ---

std::unique_ptr<core::Cluster> cluster(double drop = 0.0) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(3, 1);
  cfg.fault_plan.drop_probability = drop;
  cfg.fault_plan.seed = 5150;
  return std::make_unique<core::Cluster>(std::move(cfg));
}

TEST(IpStack, SingleDatagramDelivery) {
  auto c = cluster();
  Bytes got;
  std::uint16_t got_src = 99;
  std::uint8_t got_proto = 0;
  c->ip(2).set_handler([&](sim::Time, std::uint16_t src, std::uint8_t proto,
                           Bytes data) {
    got = std::move(data);
    got_src = src;
    got_proto = proto;
  });
  Bytes payload(500);
  std::iota(payload.begin(), payload.end(), std::uint8_t{7});
  c->ip(0).send(2, payload, /*protocol=*/17);
  c->run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(got_proto, 17);
  EXPECT_EQ(c->ip(2).stats().datagrams_delivered, 1u);
}

TEST(IpStack, LargeDatagramFragmentsAndReassembles) {
  auto c = cluster();
  const std::size_t size = 3 * (nic::Nic::kMtu - ip::IpHeader::kSize) + 57;
  Bytes payload(size);
  for (std::size_t i = 0; i < size; ++i)
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 16);
  Bytes got;
  c->ip(1).set_handler(
      [&](sim::Time, std::uint16_t, std::uint8_t, Bytes d) { got = std::move(d); });
  c->ip(0).send(1, payload);
  c->run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(c->ip(0).stats().fragments_sent, 4u);
  EXPECT_EQ(c->ip(1).stats().fragments_received, 4u);
}

TEST(IpStack, BestEffortLosesUnderFaultsWithoutRetransmission) {
  auto c = cluster(/*drop=*/0.35);
  int delivered = 0;
  c->ip(2).set_handler(
      [&](sim::Time, std::uint16_t, std::uint8_t, Bytes) { ++delivered; });
  for (int i = 0; i < 30; ++i) c->ip(0).send(2, Bytes(600, 1));
  c->run();
  EXPECT_LT(delivered, 30);  // some datagrams vanished
  EXPECT_GT(delivered, 0);   // but not all
  // No recovery machinery exists at this layer.
  EXPECT_EQ(c->port(0).stats().retransmissions, 0u);
}

TEST(IpStack, ReassemblyTimeoutDropsIncompleteDatagrams) {
  auto c = cluster(/*drop=*/0.5);
  int delivered = 0;
  c->ip(1).set_handler(
      [&](sim::Time, std::uint16_t, std::uint8_t, Bytes) { ++delivered; });
  // Multi-fragment datagrams: a lost fragment strands the rest.
  const std::size_t size = 2 * (nic::Nic::kMtu - ip::IpHeader::kSize);
  for (int i = 0; i < 20; ++i) c->ip(0).send(1, Bytes(size, 2));
  c->run();
  // The sweep runs on packet arrival; poke the stack well past the timeout
  // with several probes (individual probes can themselves be dropped).
  for (int i = 1; i <= 8; ++i)
    c->queue().schedule_in((20 + i) * sim::kMs,
                           [&] { c->ip(0).send(1, Bytes(8, 3)); });
  c->run();
  EXPECT_GT(c->ip(1).stats().reassembly_timeouts, 0u);
}

TEST(IpStack, CoexistsWithGmOnOneNic) {
  auto c = cluster();
  Bytes gm_got, ip_got;
  c->port(2).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { gm_got = std::move(m); });
  c->ip(2).set_handler(
      [&](sim::Time, std::uint16_t, std::uint8_t, Bytes d) { ip_got = std::move(d); });
  Bytes gm_msg(300, 0xAA), ip_msg(300, 0xBB);
  ASSERT_TRUE(c->port(0).send(2, gm_msg));
  c->ip(0).send(2, ip_msg);
  c->run();
  EXPECT_EQ(gm_got, gm_msg);
  EXPECT_EQ(ip_got, ip_msg);
}

TEST(IpStack, WorksAcrossItbRoutes) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  Bytes got;
  c.ip(1).set_handler(
      [&](sim::Time, std::uint16_t, std::uint8_t, Bytes d) { got = std::move(d); });
  Bytes payload(6000, 0x3D);
  c.ip(4).send(1, payload);  // route with one ITB
  c.run();
  EXPECT_EQ(got, payload);
  EXPECT_GT(c.nic(6).stats().itb_forwarded, 0u);
}

TEST(IpStack, EmptyDatagramThrows) {
  auto c = cluster();
  EXPECT_THROW(c->ip(0).send(1, Bytes{}), std::invalid_argument);
}

TEST(NicMux, UnclaimedTypesAreCounted) {
  // A NIC whose mux has no IP consumer counts kIp arrivals as unclaimed.
  sim::EventQueue queue;
  sim::Tracer tracer;
  topo::Topology t = topo::make_linear(2, 1);
  net::Network net(t, {}, queue, tracer);
  host::PciBus pci0(queue, {}), pci1(queue, {});
  nic::Nic n0(queue, tracer, net, pci0, 0, {}, {});
  nic::Nic n1(queue, tracer, net, pci1, 1, {}, {});
  n0.set_route(1, {{1}});  // linear: s0 port 0 is trunk, port 1 is host 0...
  // Determine the actual route: h1 sits on s1; from s0 the trunk is port 0.
  n0.set_route(1, {{0, 1}});
  nic::NicMux mux(n1);
  n0.post_send(1, Bytes(50, 1), packet::PacketType::kIp);
  queue.run();
  EXPECT_EQ(mux.unclaimed(), 1u);
}

}  // namespace
