// Flight recorder subsystem: ring capture, timeline stitching, Chrome
// export, and replay checking (DESIGN.md §6g).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "itb/core/experiments.hpp"
#include "itb/core/parallel.hpp"
#include "itb/flight/chrome_trace.hpp"
#include "itb/flight/recorder.hpp"
#include "itb/flight/replay.hpp"
#include "itb/flight/timeline.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/metrics.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

/// Run the Fig. 8 ping-pong on one forward path with the recorder armed.
flight::Recording record_fig8(bool itb_path, std::size_t capacity,
                              std::size_t payload = 256, int iterations = 5) {
  flight::RecorderConfig frc;
  frc.enabled = true;
  frc.capacity = capacity;
  auto cluster = core::make_fig8_cluster(itb_path, {}, {}, {}, frc);
  workload::run_pingpong(cluster->queue(), cluster->port(core::kHost1),
                         cluster->port(core::kHost2), payload, iterations);
  return cluster->flight()->snapshot();
}

TEST(FlightRecorder, ClusterGatesCaptureBehindConfig) {
  // Off by default: the cluster owns no recorder and every hook site stays
  // a single null-pointer branch.
  auto plain = core::make_fig8_cluster(true);
  EXPECT_EQ(plain->flight(), nullptr);

  flight::RecorderConfig frc;
  frc.enabled = true;
  auto armed = core::make_fig8_cluster(true, {}, {}, {}, frc);
  ASSERT_NE(armed->flight(), nullptr);
  EXPECT_EQ(armed->flight()->capacity(), frc.capacity);
}

TEST(FlightRecorder, RingWraparoundKeepsNewestAndCountsEvicted) {
  flight::FlightRecorder rec({/*enabled=*/true, /*capacity=*/4});
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record(flight::EventType::kInject, static_cast<sim::Time>(i), i, 0, 0);
  const auto snap = rec.snapshot();
  EXPECT_EQ(snap.recorded, 10u);
  EXPECT_EQ(snap.evicted, 6u);
  ASSERT_EQ(snap.events.size(), 4u);
  // The survivors are the newest four, in record order.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(snap.events[i].handle, 6u + i);
}

TEST(FlightRecorder, FingerprintIsCapacityInvariant) {
  // The fingerprint folds at record time, so it covers the whole stream
  // even after the ring evicts — a tiny ring and a roomy one agree.
  const auto small = record_fig8(true, 64);
  const auto large = record_fig8(true, std::size_t{1} << 18);
  EXPECT_GT(small.evicted, 0u);
  EXPECT_EQ(large.evicted, 0u);
  EXPECT_EQ(small.recorded, large.recorded);
  EXPECT_EQ(small.fingerprint, large.fingerprint);
}

TEST(FlightRecorder, RerunIsBitIdentical) {
  const auto a = record_fig8(true, std::size_t{1} << 18);
  const auto b = record_fig8(true, std::size_t{1} << 18);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(flight::ReplayChecker::diff(a, b), std::nullopt);
}

TEST(WormTimeline, StagesTelescopeExactly) {
  // The acceptance invariant: per-journey stage sums equal end - start to
  // the nanosecond, on both Fig. 8 paths.
  for (bool itb_path : {false, true}) {
    const auto rec = record_fig8(itb_path, std::size_t{1} << 18);
    flight::WormTimeline tl(rec);
    EXPECT_GT(tl.complete_count(), 0u);
    EXPECT_EQ(tl.max_stage_residual(), 0) << "itb_path=" << itb_path;
    for (const auto& j : tl.journeys()) {
      if (!j.complete) continue;
      EXPECT_EQ(j.stages.total(), j.end - j.start);
    }
  }
}

TEST(WormTimeline, SendPostGivesHostTxStage) {
  const auto rec = record_fig8(false, std::size_t{1} << 18);
  flight::WormTimeline tl(rec);
  ASSERT_GT(tl.complete_count(), 0u);
  // Journeys start at the send post, so the host-side SDMA/PCI stage is
  // attributed (non-zero) on every delivered packet.
  EXPECT_GT(tl.totals().host_tx, 0);
  for (const auto& j : tl.journeys()) {
    if (!j.complete) continue;
    EXPECT_GT(j.stages.host_tx, 0);
  }
}

TEST(WormTimeline, ItbPathRecordsHopsWithOrderedSubSpans) {
  const auto rec = record_fig8(true, std::size_t{1} << 18);
  flight::WormTimeline tl(rec);
  const auto split = tl.itb_hop_split();
  EXPECT_GT(split.hops, 0u);
  EXPECT_GT(split.total_ns(), 0.0);
  bool saw_hop = false;
  for (const auto& j : tl.journeys()) {
    for (const auto& hop : j.itb_hops) {
      saw_hop = true;
      EXPECT_EQ(hop.host, core::kInTransit);
      EXPECT_LE(hop.eject, hop.early);
      EXPECT_LE(hop.early, hop.dma_start);
      EXPECT_LE(hop.dma_start, hop.reinject);
      ASSERT_EQ(j.segments.size(), 2u);  // one re-injection: two handles
    }
  }
  EXPECT_TRUE(saw_hop);
}

TEST(WormTimeline, TruncatedJourneysAreNotClaimedComplete) {
  // With a tiny ring, early markers of most journeys are gone; whatever
  // stitches from the surviving window must be flagged, not mis-summed.
  const auto rec = record_fig8(true, 64);
  flight::WormTimeline tl(rec);
  for (const auto& j : tl.journeys()) {
    if (!j.truncated) continue;
    EXPECT_FALSE(j.complete);
  }
}

TEST(WormTimeline, PublishMetricsExportsStageTotals) {
  const auto rec = record_fig8(true, std::size_t{1} << 18);
  flight::WormTimeline tl(rec);
  telemetry::MetricRegistry reg;
  tl.publish_metrics(reg);
  bool found = false;
  for (const auto& s : reg.snapshot())
    if (s.component == "flight" && s.name == "path.host_tx_ns") {
      found = true;
      EXPECT_EQ(s.value, static_cast<double>(tl.totals().host_tx));
    }
  EXPECT_TRUE(found);
}

TEST(ReplayChecker, SaveLoadRoundTripsBitExactly) {
  const auto rec = record_fig8(true, std::size_t{1} << 18);
  std::stringstream buf;
  flight::ReplayChecker::save(rec, buf);
  const auto loaded = flight::ReplayChecker::load(buf);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->recorded, rec.recorded);
  EXPECT_EQ(loaded->evicted, rec.evicted);
  EXPECT_EQ(loaded->fingerprint, rec.fingerprint);
  EXPECT_EQ(flight::ReplayChecker::diff(rec, *loaded), std::nullopt);
}

TEST(ReplayChecker, LoadRejectsCorruptStreams) {
  std::stringstream bad_magic("XXXX junk");
  EXPECT_EQ(flight::ReplayChecker::load(bad_magic), std::nullopt);

  const auto rec = record_fig8(false, 1024);
  std::stringstream buf;
  flight::ReplayChecker::save(rec, buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);  // short stream
  std::stringstream truncated(bytes);
  EXPECT_EQ(flight::ReplayChecker::load(truncated), std::nullopt);
}

TEST(ReplayChecker, DiffFindsFirstDivergentEvent) {
  auto a = record_fig8(true, std::size_t{1} << 18);
  auto b = a;
  ASSERT_GT(b.events.size(), 5u);
  b.events[5].t += 1;
  const auto d = flight::ReplayChecker::diff(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->index, 5u);
  ASSERT_TRUE(d->a.has_value());
  ASSERT_TRUE(d->b.has_value());
  const std::string desc = d->describe();
  EXPECT_NE(desc.find("5"), std::string::npos);

  // One stream a strict prefix of the other: divergence at the tail.
  auto c = a;
  c.events.pop_back();
  const auto tail = flight::ReplayChecker::diff(a, c);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->index, a.events.size() - 1);
  EXPECT_FALSE(tail->b.has_value());
}

TEST(ReplayChecker, FingerprintMatchesLiveWhenNothingEvicted) {
  const auto rec = record_fig8(false, std::size_t{1} << 18);
  ASSERT_EQ(rec.evicted, 0u);
  EXPECT_EQ(flight::ReplayChecker::fingerprint(rec), rec.fingerprint);
  const auto hex = flight::ReplayChecker::fingerprint_hex(rec.fingerprint);
  EXPECT_EQ(hex.size(), 18u);  // "0x" + 16 digits
  EXPECT_EQ(hex.substr(0, 2), "0x");
}

TEST(ReplayChecker, SweepFingerprintIsJobsInvariant) {
  // The CI contract: merging per-point recordings in point order yields
  // the same fingerprint whatever --jobs says.
  auto sweep = [](unsigned jobs) {
    auto recs = core::run_sweep_parallel(
        2, [](std::size_t i) { return record_fig8(i == 1, 4096); }, jobs);
    flight::Recording merged;
    merged.fingerprint = flight::kFingerprintSeed;
    for (auto& r : recs) merged.append(r);
    return merged;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(flight::ReplayChecker::diff(serial, parallel), std::nullopt);
}

TEST(ChromeTrace, EscapesNamesAndEmitsStageSlices) {
  const auto rec = record_fig8(true, std::size_t{1} << 18);
  flight::WormTimeline tl(rec);
  std::stringstream out;
  flight::write_chrome_trace(out, "quote\" back\\slash\nbell\x07", tl);
  const std::string json = out.str();
  // The hostile process name survives as valid JSON escapes...
  EXPECT_NE(json.find("quote\\\" back\\\\slash\\nbell\\u0007"),
            std::string::npos);
  // ...and no raw control characters leak into the document.
  for (unsigned char c : json) EXPECT_GE(c, 0x20u);
  // Stage slices, journey envelopes and instants are all present.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"journey\""), std::string::npos);
  EXPECT_NE(json.find("\"host_tx\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(Tracer, MultiSinkAttachDetach) {
  sim::Tracer tracer;
  EXPECT_EQ(tracer.sink_count(), 0u);
  std::string a, b;
  const auto ida = tracer.attach(sim::Tracer::string_sink(a));
  const auto idb = tracer.attach(sim::Tracer::string_sink(b));
  EXPECT_EQ(tracer.sink_count(), 2u);
  tracer.emit(1, sim::TraceCategory::kFlight, [] { return "both"; });
  EXPECT_NE(a.find("both"), std::string::npos);
  EXPECT_NE(b.find("both"), std::string::npos);

  tracer.detach(ida);
  EXPECT_EQ(tracer.sink_count(), 1u);
  tracer.emit(2, sim::TraceCategory::kFlight, [] { return "second only"; });
  EXPECT_EQ(a.find("second only"), std::string::npos);
  EXPECT_NE(b.find("second only"), std::string::npos);

  tracer.detach(ida);  // double-detach is a no-op
  tracer.detach(idb);
  EXPECT_EQ(tracer.sink_count(), 0u);
}

}  // namespace
