// Deadlock demonstrations: the wormhole network model must actually wedge
// when routes have cyclic channel dependencies, and must not when the ITB
// mechanism breaks the cycle — the dynamic counterpart of the static CDG
// checker, closing the loop between routing theory and the simulator.
#include <gtest/gtest.h>

#include "itb/engine/engine.hpp"
#include "itb/net/network.hpp"
#include "itb/packet/format.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"
#include "itb/topo/topology.hpp"

namespace {

using namespace itb;
using packet::Bytes;

/// Minimal hooks: count deliveries, track in-flight.
class Counter : public net::HostHooks {
 public:
  int delivered = 0;
  void on_rx_head(sim::Time, net::TxHandle) override {}
  void on_rx_early_header(sim::Time, net::TxHandle, const Bytes&) override {}
  void on_rx_complete(sim::Time, net::WirePacket) override { ++delivered; }
  void on_tx_started(sim::Time, net::TxHandle) override {}
  void on_tx_complete(sim::Time, net::TxHandle) override {}
};

/// A ring of four switches, one host per switch, port 0-1 around the ring,
/// port 2 to the host. Routes that go two hops clockwise from every host
/// produce the canonical cyclic channel dependency.
struct RingRig {
  topo::Topology topo;
  sim::EventQueue queue;
  sim::Tracer tracer;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<Counter>> hosts;

  RingRig() {
    for (int i = 0; i < 4; ++i) topo.add_switch(4);
    for (int i = 0; i < 4; ++i) topo.add_host();
    // s0 p1 -> s1 p0, s1 p1 -> s2 p0, s2 p1 -> s3 p0, s3 p1 -> s0 p0.
    for (std::uint16_t s = 0; s < 4; ++s)
      topo.connect_switches(s, 1, static_cast<std::uint16_t>((s + 1) % 4), 0);
    for (std::uint16_t h = 0; h < 4; ++h) topo.attach_host(h, h, 2);
    net = std::make_unique<net::Network>(topo, net::NetTiming{}, queue, tracer);
    for (std::uint16_t h = 0; h < 4; ++h) {
      hosts.push_back(std::make_unique<Counter>());
      net->attach_host(h, hosts.back().get());
    }
  }
};

TEST(WormholeDeadlock, CyclicTwoHopRoutesWedgeTheRing) {
  // Each host sends 2 hops clockwise; with long packets each worm holds
  // its first ring channel while requesting the next one, which another
  // worm holds: classic circular wait. The simulation must stall with all
  // four packets in flight and nothing delivered.
  RingRig rig;
  for (std::uint16_t h = 0; h < 4; ++h) {
    // Route: out ring port (1) at own switch, ring port (1) at next, host
    // port (2) at the switch after that.
    auto pkt = packet::build_packet({1, 1, 2}, packet::PacketType::kGm,
                                    Bytes(2000, h));
    rig.net->inject(h, std::move(pkt));
  }
  rig.queue.run();
  int delivered = 0;
  for (auto& h : rig.hosts) delivered += h->delivered;
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.net->in_flight(), 4u);
  EXPECT_EQ(rig.queue.pending(), 0u);  // stalemate: no event can fire
}

TEST(WormholeDeadlock, ShortPacketsMayStillDrainButLongOnesWedge) {
  // Sanity contrast: a single sender on the same routes is fine.
  RingRig rig;
  auto pkt = packet::build_packet({1, 1, 2}, packet::PacketType::kGm,
                                  Bytes(2000, 1));
  rig.net->inject(0, std::move(pkt));
  rig.queue.run();
  EXPECT_EQ(rig.hosts[2]->delivered, 1);
  EXPECT_EQ(rig.net->in_flight(), 0u);
}

TEST(WormholeDeadlock, ItbEjectionBreaksTheCycle) {
  // Same pressure, but each packet is ejected at the intermediate switch's
  // host and re-injected (two one-hop segments). Emulate the in-transit
  // NIC with hooks that re-inject on completion: nothing can wedge because
  // every worm now spans a single ring channel.
  RingRig rig;

  class Forwarder : public net::HostHooks {
   public:
    net::Network* net = nullptr;
    std::uint16_t host = 0;
    int delivered = 0;
    void on_rx_head(sim::Time, net::TxHandle) override {}
    void on_rx_early_header(sim::Time, net::TxHandle, const Bytes&) override {}
    void on_rx_complete(sim::Time, net::WirePacket pkt) override {
      auto head = packet::parse_head(pkt.bytes);
      if (head && head->type == packet::PacketType::kItb) {
        net->inject(host, packet::strip_itb_stage(pkt.bytes));
        return;
      }
      ++delivered;
    }
    void on_tx_started(sim::Time, net::TxHandle) override {}
    void on_tx_complete(sim::Time, net::TxHandle) override {}
  };

  topo::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_switch(4);
  for (int i = 0; i < 4; ++i) topo.add_host();
  for (std::uint16_t s = 0; s < 4; ++s)
    topo.connect_switches(s, 1, static_cast<std::uint16_t>((s + 1) % 4), 0);
  for (std::uint16_t h = 0; h < 4; ++h) topo.attach_host(h, h, 2);
  sim::EventQueue queue;
  sim::Tracer tracer;
  net::Network net(topo, {}, queue, tracer);
  std::vector<std::unique_ptr<Forwarder>> fwd;
  for (std::uint16_t h = 0; h < 4; ++h) {
    fwd.push_back(std::make_unique<Forwarder>());
    fwd.back()->net = &net;
    fwd.back()->host = h;
    net.attach_host(h, fwd.back().get());
  }
  for (std::uint16_t h = 0; h < 4; ++h) {
    // Segment 1: one ring hop, eject at the next switch's host (port 2).
    // Segment 2: one ring hop, out to the destination host.
    auto pkt = packet::build_itb_packet({{1, 2}, {1, 2}},
                                        packet::PacketType::kGm,
                                        Bytes(2000, h));
    net.inject(h, std::move(pkt));
  }
  queue.run();
  int delivered = 0;
  for (auto& f : fwd) delivered += f->delivered;
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(WormholeDeadlock, TwoLaneLadderMakesTheRingCdgAcyclic) {
  // Static counterpart of the VC-escape claim on the exact rig that wedges
  // above. One lane: the four 2-hop routes close the canonical cycle. Two
  // lanes under the ladder (root s0, so s1->s2 is a down traversal and
  // s2->s3 is up): host 1's second traversal crosses a down->up boundary
  // and rides lane 1, which breaks the only cycle.
  RingRig rig;
  auto ring_channel = [](std::uint16_t s) {
    // Link s was created s -> s+1, so clockwise traversal is `forward`.
    return topo::Channel{static_cast<topo::LinkId>(s), true};
  };
  using Node = routing::DependencyGraph::Node;

  routing::DependencyGraph one_lane(rig.topo);
  for (std::uint16_t h = 0; h < 4; ++h)
    one_lane.add_edge(Node::of_channel(ring_channel(h)),
                      Node::of_channel(ring_channel((h + 1) % 4)));
  EXPECT_TRUE(one_lane.has_cycle());

  auto eng = engine::make_engine({engine::EngineKind::kVcEscape, 2});
  eng->bind(routing::UpDown(rig.topo, 0), rig.topo, {});
  routing::DependencyGraph two_lane(rig.topo, 2);
  std::vector<std::uint8_t> second_lanes;
  for (std::uint16_t h = 0; h < 4; ++h) {
    net::LaneState state{eng->injection_lane(h), 0};
    const auto c0 = ring_channel(h);
    const auto c1 = ring_channel((h + 1) % 4);
    const std::uint8_t l0 = eng->lane_for(state, c0);
    const std::uint8_t l1 = eng->lane_for(state, c1);
    two_lane.add_edge(Node::of_channel(c0, l0), Node::of_channel(c1, l1));
    second_lanes.push_back(l1);
  }
  // Exactly one route (host 1's, crossing the valley under root s0) is
  // pushed onto the escape lane.
  EXPECT_EQ(second_lanes, (std::vector<std::uint8_t>{0, 1, 0, 0}));
  EXPECT_FALSE(two_lane.has_cycle());
}

TEST(WormholeDeadlock, VcEscapeLanesPreventTheRingWedge) {
  // The live counterpart: identical injection pattern to
  // CyclicTwoHopRoutesWedgeTheRing, but with the 2-lane escape engine
  // arbitrating — every packet must now deliver and the network drain.
  RingRig rig;
  auto eng = engine::make_engine({engine::EngineKind::kVcEscape, 2});
  eng->bind(routing::UpDown(rig.topo, 0), rig.topo, {});
  rig.net->set_lane_policy(eng.get());
  for (std::uint16_t h = 0; h < 4; ++h) {
    auto pkt = packet::build_packet({1, 1, 2}, packet::PacketType::kGm,
                                    Bytes(2000, h));
    rig.net->inject(h, std::move(pkt));
  }
  rig.queue.run();
  int delivered = 0;
  for (auto& h : rig.hosts) delivered += h->delivered;
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(rig.net->in_flight(), 0u);
  EXPECT_EQ(rig.queue.pending(), 0u);
}

TEST(WormholeDeadlock, PerLaneCdgAcyclicOnGeneratedFabricsForEveryEngine) {
  // Randomized static sweep: solve real tables over generated fat-tree,
  // Clos and irregular fabrics and demand an acyclic per-lane CDG from
  // every engine — the deadlock-freedom claim each one rests on.
  std::vector<topo::Topology> fabrics;
  fabrics.push_back(topo::make_fat_tree(4));
  fabrics.push_back(topo::make_clos(4, 8, 8));
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    sim::Rng rng(seed);
    topo::IrregularSpec spec;
    spec.switches = 12;
    spec.hosts_per_switch = 2;
    fabrics.push_back(topo::make_random_irregular(spec, rng));
  }
  const engine::EngineSpec specs[] = {
      {engine::EngineKind::kUpDown, 1},
      {engine::EngineKind::kItb, 1},
      {engine::EngineKind::kVcEscape, 2},
      {engine::EngineKind::kVcEscape, 3},
  };
  for (std::size_t f = 0; f < fabrics.size(); ++f) {
    const auto& t = fabrics[f];
    routing::UpDown ud(t, 0);
    routing::Router router(ud);
    for (const auto& spec : specs) {
      auto eng = engine::make_engine(spec);
      eng->bind(ud, t, {});
      routing::RouteTable table(router, eng->policy(), 1, spec.lanes);
      EXPECT_TRUE(engine::verify_deadlock_free(*eng, table, t))
          << "fabric " << f << " engine " << eng->name() << " lanes "
          << spec.lanes;
    }
  }
}

TEST(WormholeDeadlock, BackpressuredHostCanWedgeDependents) {
  // A not-ready NIC stalls a worm, which holds its channels and stalls an
  // unrelated worm needing one of them — the contention cascade of §1.
  RingRig rig;
  rig.net->set_host_rx_ready(2, false);
  // h0 -> h2 (two ring hops), then h1 -> h3 (needs the s1->s2 channel the
  // first worm holds).
  rig.net->inject(0, packet::build_packet({1, 1, 2}, packet::PacketType::kGm,
                                          Bytes(500, 1)));
  rig.queue.run(2'000'000);
  rig.net->inject(1, packet::build_packet({1, 1, 2}, packet::PacketType::kGm,
                                          Bytes(500, 2)));
  rig.queue.run(4'000'000);
  EXPECT_EQ(rig.hosts[3]->delivered, 0);  // cascaded stall
  rig.net->set_host_rx_ready(2, true);    // release
  rig.queue.run();
  EXPECT_EQ(rig.hosts[2]->delivered, 1);
  EXPECT_EQ(rig.hosts[3]->delivered, 1);
}

}  // namespace
