// Tests for the LANai/MCP model: send and receive pipelines, the ITB
// detection/re-injection machinery (paper §4, Figs. 4-5), the pending flag,
// buffer management and the original-vs-modified MCP differences.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "itb/nic/nic.hpp"
#include "itb/routing/paths.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;
using packet::PacketType;

class ClientRecorder : public nic::NicClient {
 public:
  struct Msg {
    sim::Time t;
    PacketType type;
    Bytes payload;
  };
  std::vector<Msg> messages;
  std::vector<std::pair<sim::Time, std::uint64_t>> send_completes;

  void on_message(sim::Time t, PacketType type, Bytes payload) override {
    messages.push_back({t, type, std::move(payload)});
  }
  void on_send_complete(sim::Time t, std::uint64_t token) override {
    send_completes.emplace_back(t, token);
  }
};

/// Three hosts: h0 and h1 on switch s0 (ports 1, 2), h2 on s1 (port 1);
/// s0 port 0 <-> s1 port 0. h1 serves as the in-transit host.
struct Rig {
  topo::Topology topo;
  sim::EventQueue queue;
  sim::Tracer tracer;
  net::NetTiming net_timing;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<host::PciBus>> pci;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::unique_ptr<ClientRecorder>> clients;

  explicit Rig(const nic::McpOptions& options = {},
               const nic::LanaiTiming& lanai = {}) {
    topo.add_switch(8);
    topo.add_switch(8);
    for (int i = 0; i < 3; ++i) topo.add_host();
    topo.connect_switches(0, 0, 1, 0);
    topo.attach_host(0, 0, 1);
    topo.attach_host(1, 0, 2);
    topo.attach_host(2, 1, 1);
    net = std::make_unique<net::Network>(topo, net_timing, queue, tracer);
    for (std::uint16_t h = 0; h < 3; ++h) {
      pci.push_back(std::make_unique<host::PciBus>(queue, host::PciTiming{}));
      nics.push_back(std::make_unique<nic::Nic>(queue, tracer, *net, *pci[h],
                                                h, lanai, options));
      clients.push_back(std::make_unique<ClientRecorder>());
      nics[h]->set_client(clients[h].get());
    }
    // Plain routes: h0 -> h2 (out s0 port 0, then s1 port 1), etc.
    nics[0]->set_route(2, {{0, 1}});
    nics[0]->set_route(1, {{2}});
    nics[1]->set_route(0, {{1}});
    nics[1]->set_route(2, {{0, 1}});
    nics[2]->set_route(0, {{0, 1}});
    nics[2]->set_route(1, {{0, 2}});
  }

  void run() { queue.run(); }
};

TEST(Nic, EndToEndDelivery) {
  Rig rig;
  Bytes payload(100, 0x5A);
  auto token = rig.nics[0]->post_send(2, payload);
  rig.run();
  ASSERT_EQ(rig.clients[2]->messages.size(), 1u);
  EXPECT_EQ(rig.clients[2]->messages[0].payload, payload);
  EXPECT_EQ(rig.clients[2]->messages[0].type, PacketType::kGm);
  ASSERT_EQ(rig.clients[0]->send_completes.size(), 1u);
  EXPECT_EQ(rig.clients[0]->send_completes[0].second, token);
  EXPECT_EQ(rig.nics[0]->stats().sent, 1u);
  EXPECT_EQ(rig.nics[2]->stats().received, 1u);
  EXPECT_EQ(rig.nics[2]->stats().delivered_to_host, 1u);
}

TEST(Nic, ManyPacketsArriveInOrder) {
  Rig rig;
  for (int i = 0; i < 20; ++i)
    rig.nics[0]->post_send(2, Bytes{static_cast<std::uint8_t>(i)});
  rig.run();
  ASSERT_EQ(rig.clients[2]->messages.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(rig.clients[2]->messages[static_cast<size_t>(i)].payload[0], i);
}

TEST(Nic, LatencyGrowsWithMessageSize) {
  sim::Time t_small, t_big;
  {
    Rig rig;
    rig.nics[0]->post_send(2, Bytes(4, 0));
    rig.run();
    t_small = rig.clients[2]->messages.at(0).t;
  }
  {
    Rig rig;
    rig.nics[0]->post_send(2, Bytes(4096, 0));
    rig.run();
    t_big = rig.clients[2]->messages.at(0).t;
  }
  // 4092 extra bytes cross the wire once (~25.6 us at 6.25 ns/B); PCI
  // crossings add more. Loose lower bound: the wire time alone.
  EXPECT_GT(t_big - t_small, 25'000);
}

TEST(Nic, OversizedPayloadThrows) {
  Rig rig;
  EXPECT_THROW(rig.nics[0]->post_send(2, Bytes(nic::Nic::kMtu + 1, 0)),
               std::invalid_argument);
}

TEST(Nic, LoopbackThrows) {
  Rig rig;
  EXPECT_THROW(rig.nics[0]->post_send(0, Bytes(4, 0)), std::invalid_argument);
}

TEST(Nic, MissingRouteThrows) {
  Rig rig;
  // h1 -> h1 impossible; h0 has routes to 1 and 2 only. Wipe one.
  rig.nics[0]->set_route(2, {});
  EXPECT_THROW(rig.nics[0]->post_send(2, Bytes(4, 0)), std::logic_error);
}

// ------------------------------------------------------------------- ITB --

/// Sends h0 -> h2 with an ITB at h1: segments (s0 port 2) then (s0 port 0,
/// s1 port 1).
std::vector<packet::Route> itb_segments() { return {{2}, {0, 1}}; }

TEST(Nic, ItbForwardingDeliversEndToEnd) {
  Rig rig;
  rig.nics[0]->set_route(2, itb_segments());
  Bytes payload(64, 0x77);
  rig.nics[0]->post_send(2, payload);
  rig.run();
  ASSERT_EQ(rig.clients[2]->messages.size(), 1u);
  EXPECT_EQ(rig.clients[2]->messages[0].payload, payload);
  // The in-transit host forwarded in firmware: nothing reached its client.
  EXPECT_TRUE(rig.clients[1]->messages.empty());
  EXPECT_EQ(rig.nics[1]->stats().itb_forwarded, 1u);
  EXPECT_EQ(rig.nics[1]->stats().delivered_to_host, 0u);
}

TEST(Nic, ItbForwardingSlowerThanDirectButBounded) {
  sim::Time direct, via_itb;
  {
    Rig rig;
    rig.nics[0]->post_send(2, Bytes(64, 1));
    rig.run();
    direct = rig.clients[2]->messages.at(0).t;
  }
  {
    Rig rig;
    rig.nics[0]->set_route(2, itb_segments());
    rig.nics[0]->post_send(2, Bytes(64, 1));
    rig.run();
    via_itb = rig.clients[2]->messages.at(0).t;
  }
  EXPECT_GT(via_itb, direct);
  // The paper's per-ITB overhead is ~1.3 us; allow generous headroom but
  // catch pathological behaviour (e.g. store-and-forward of the payload).
  EXPECT_LT(via_itb - direct, 4 * sim::kUs);
}

TEST(Nic, ItbCutThroughOverheadIndependentOfLength) {
  // Virtual cut-through: the ITB penalty must not grow with message size
  // (Fig. 8 shows a flat ~1.3 us overhead).
  auto measure = [](std::size_t len) {
    sim::Time direct, via_itb;
    {
      Rig rig;
      rig.nics[0]->post_send(2, Bytes(len, 1));
      rig.run();
      direct = rig.clients[2]->messages.at(0).t;
    }
    {
      Rig rig;
      rig.nics[0]->set_route(2, itb_segments());
      rig.nics[0]->post_send(2, Bytes(len, 1));
      rig.run();
      via_itb = rig.clients[2]->messages.at(0).t;
    }
    return via_itb - direct;
  };
  const auto small = measure(16);
  const auto big = measure(4000);
  EXPECT_NEAR(static_cast<double>(big), static_cast<double>(small),
              static_cast<double>(small) * 0.25);
}

TEST(Nic, ItbPendingFlagWhenSendBusy) {
  // Keep h1's send DMA busy with its own traffic while an ITB packet
  // arrives: the pending flag must be used and the packet still delivered.
  Rig rig;
  rig.nics[0]->set_route(2, itb_segments());
  // h1 floods h2 so its send DMA is busy when the in-transit packet lands;
  // the ITB packet is posted once the flood is in full swing.
  for (int i = 0; i < 4; ++i) rig.nics[1]->post_send(2, Bytes(4000, 2));
  rig.queue.schedule_at(20 * sim::kUs,
                        [&] { rig.nics[0]->post_send(2, Bytes(512, 3)); });
  rig.run();
  EXPECT_EQ(rig.nics[1]->stats().itb_forwarded, 1u);
  EXPECT_GE(rig.nics[1]->stats().itb_pending_hits, 1u);
  ASSERT_EQ(rig.clients[2]->messages.size(), 5u);
}

TEST(Nic, OriginalMcpDiscardsItbPackets) {
  Rig rig(nic::McpOptions::original_gm());
  rig.nics[0]->set_route(2, itb_segments());
  rig.nics[0]->post_send(2, Bytes(16, 1));
  rig.run();
  EXPECT_TRUE(rig.clients[2]->messages.empty());
  EXPECT_EQ(rig.nics[1]->stats().rx_unknown_type, 1u);
  EXPECT_EQ(rig.nics[1]->stats().itb_forwarded, 0u);
}

TEST(Nic, LateDetectionAblationStillDelivers) {
  nic::McpOptions opts;
  opts.early_recv = false;
  Rig rig(opts);
  rig.nics[0]->set_route(2, itb_segments());
  rig.nics[0]->post_send(2, Bytes(256, 9));
  rig.run();
  ASSERT_EQ(rig.clients[2]->messages.size(), 1u);
  EXPECT_EQ(rig.nics[1]->stats().itb_forwarded, 1u);
}

TEST(Nic, LateDetectionIsSlowerForLongPackets) {
  auto arrival = [](bool early) {
    nic::McpOptions opts;
    opts.early_recv = early;
    Rig rig(opts);
    rig.nics[0]->set_route(2, itb_segments());
    rig.nics[0]->post_send(2, Bytes(4000, 9));
    rig.run();
    return rig.clients[2]->messages.at(0).t;
  };
  // Early detection re-injects while receiving; late detection waits for
  // the full packet: roughly one extra packet transmission time.
  EXPECT_GT(arrival(false), arrival(true) + 10 * sim::kUs);
}

TEST(Nic, RecvSideReinjectionSavesADispatch) {
  auto arrival = [](bool recv_side) {
    nic::McpOptions opts;
    opts.recv_side_reinjection = recv_side;
    Rig rig(opts);
    rig.nics[0]->set_route(2, itb_segments());
    rig.nics[0]->post_send(2, Bytes(16, 9));
    rig.run();
    return rig.clients[2]->messages.at(0).t;
  };
  const auto fast = arrival(true);
  const auto slow = arrival(false);
  nic::LanaiTiming lt;
  EXPECT_EQ(slow - fast, lt.cycles(lt.dispatch));
}

TEST(Nic, ModifiedMcpAddsReceiveOverheadForNormalPackets) {
  // Fig. 7: the ITB-capable MCP costs itb_recv_extra cycles per received
  // packet even when no ITBs are used.
  auto arrival = [](bool itb_support) {
    nic::McpOptions opts;
    opts.itb_support = itb_support;
    Rig rig(opts);
    rig.nics[0]->post_send(2, Bytes(128, 9));
    rig.run();
    return rig.clients[2]->messages.at(0).t;
  };
  nic::LanaiTiming lt;
  EXPECT_EQ(arrival(true) - arrival(false), lt.cycles(lt.itb_recv_extra));
}

TEST(Nic, BackpressureWhenReceiveBuffersExhausted) {
  // Default mode: two receive buffers, no drops — the link stalls instead.
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.nics[0]->post_send(2, Bytes(2048, 7));
  rig.run();
  EXPECT_EQ(rig.clients[2]->messages.size(), 10u);
  EXPECT_EQ(rig.nics[2]->stats().dropped_no_buffer, 0u);
}

TEST(Nic, DropWhenFullDropsInsteadOfStalling) {
  nic::McpOptions opts;
  opts.drop_when_full = true;
  opts.recv_buffers = 1;
  Rig rig(opts);
  // Make host-side draining slow by sending many large packets at once.
  for (int i = 0; i < 8; ++i) rig.nics[0]->post_send(2, Bytes(4000, 7));
  rig.run();
  EXPECT_GT(rig.nics[2]->stats().dropped_no_buffer, 0u);
  EXPECT_LT(rig.clients[2]->messages.size(), 8u);
  EXPECT_EQ(rig.nics[2]->stats().dropped_no_buffer +
                rig.clients[2]->messages.size(),
            8u);
}

TEST(Nic, BidirectionalTrafficCompletes) {
  Rig rig;
  rig.nics[0]->post_send(2, Bytes(100, 1));
  rig.nics[2]->post_send(0, Bytes(100, 2));
  rig.nics[1]->post_send(2, Bytes(100, 3));
  rig.run();
  EXPECT_EQ(rig.clients[2]->messages.size(), 2u);
  EXPECT_EQ(rig.clients[0]->messages.size(), 1u);
}

TEST(Nic, SendTokensCompleteInOrder) {
  Rig rig;
  std::vector<std::uint64_t> tokens;
  for (int i = 0; i < 5; ++i)
    tokens.push_back(rig.nics[0]->post_send(2, Bytes(64, 0)));
  rig.run();
  ASSERT_EQ(rig.clients[0]->send_completes.size(), 5u);
  for (size_t i = 0; i < 5; ++i)
    EXPECT_EQ(rig.clients[0]->send_completes[i].second, tokens[i]);
}

TEST(Nic, CpuAccumulatesBusyTime) {
  Rig rig;
  rig.nics[0]->post_send(2, Bytes(64, 0));
  rig.run();
  EXPECT_GT(rig.nics[0]->cpu().busy_ns(), 0);
  EXPECT_GT(rig.nics[2]->cpu().busy_ns(), 0);
}

TEST(Nic, MappingPacketsDeliveredWithType) {
  Rig rig;
  rig.nics[0]->post_send(2, Bytes(10, 0xEE), PacketType::kMapping);
  rig.run();
  ASSERT_EQ(rig.clients[2]->messages.size(), 1u);
  EXPECT_EQ(rig.clients[2]->messages[0].type, PacketType::kMapping);
}

}  // namespace
