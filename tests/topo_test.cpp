// Unit tests for the topology substrate and the canonical builders.
#include <gtest/gtest.h>

#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"
#include "itb/topo/topology.hpp"

namespace {

using namespace itb::topo;

TEST(Topology, AddAndQueryNodes) {
  Topology t;
  auto s = t.add_switch(8, "sw");
  auto h = t.add_host("hostA");
  EXPECT_EQ(s, switch_id(0));
  EXPECT_EQ(h, host_id(0));
  EXPECT_EQ(t.switch_count(), 1u);
  EXPECT_EQ(t.host_count(), 1u);
  EXPECT_EQ(t.switch_spec(0).ports, 8);
  EXPECT_EQ(t.host_spec(0).name, "hostA");
}

TEST(Topology, ConnectAndPeer) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  auto lid = t.connect_switches(0, 1, 1, 2, PortKind::kSan);
  EXPECT_EQ(t.link(lid).kind, PortKind::kSan);
  auto p = t.peer(switch_id(0), 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node, switch_id(1));
  EXPECT_EQ(p->port, 2);
  EXPECT_FALSE(t.peer(switch_id(0), 0).has_value());
}

TEST(Topology, PortCollisionThrows) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  t.add_switch(4);
  t.connect_switches(0, 1, 1, 1);
  EXPECT_THROW(t.connect_switches(0, 1, 2, 0), std::invalid_argument);
  EXPECT_THROW(t.connect_switches(2, 0, 1, 1), std::invalid_argument);
}

TEST(Topology, OutOfRangePortThrows) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  EXPECT_THROW(t.connect_switches(0, 4, 1, 0), std::invalid_argument);
}

TEST(Topology, UnknownNodeThrows) {
  Topology t;
  t.add_switch(4);
  EXPECT_THROW(t.connect_switches(0, 0, 7, 0), std::invalid_argument);
  EXPECT_THROW(t.attach_host(0, 0, 1), std::invalid_argument);  // no host yet
}

TEST(Topology, SwitchSelfCableAllowedHostSelfForbidden) {
  Topology t;
  t.add_switch(4);
  auto lid = t.connect({switch_id(0), 0}, {switch_id(0), 1});
  auto p = t.peer(switch_id(0), 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node, switch_id(0));
  EXPECT_EQ(p->port, 1);
  EXPECT_EQ(t.link(lid).a.node, t.link(lid).b.node);
}

TEST(Topology, ChannelEndpoints) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  auto lid = t.connect_switches(0, 0, 1, 3);
  Channel fwd{lid, true}, rev{lid, false};
  EXPECT_EQ(t.channel_source(fwd).node, switch_id(0));
  EXPECT_EQ(t.channel_target(fwd).node, switch_id(1));
  EXPECT_EQ(t.channel_source(rev).node, switch_id(1));
  EXPECT_EQ(t.channel_target(rev).node, switch_id(0));
}

TEST(Topology, HostUplink) {
  Topology t;
  t.add_switch(4);
  t.add_host();
  t.attach_host(0, 0, 2);
  auto up = t.host_uplink(0);
  EXPECT_EQ(up.node, switch_id(0));
  EXPECT_EQ(up.port, 2);
}

TEST(Topology, ValidateCatchesUnattachedHost) {
  Topology t;
  t.add_switch(4);
  t.add_host();
  EXPECT_THROW(t.validate(), std::logic_error);
  t.attach_host(0, 0, 0);
  EXPECT_NO_THROW(t.validate());
}

TEST(Topology, ConnectedDetectsPartition) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  EXPECT_FALSE(t.connected());
  t.connect_switches(0, 0, 1, 0);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, LinksOfNode) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  t.add_host();
  t.connect_switches(0, 0, 1, 0);
  t.attach_host(0, 0, 1);
  EXPECT_EQ(t.links_of(switch_id(0)).size(), 2u);
  EXPECT_EQ(t.links_of(switch_id(1)).size(), 1u);
  EXPECT_EQ(t.links_of(host_id(0)).size(), 1u);
}

TEST(Builders, PaperTestbedShape) {
  TestbedIds ids;
  auto t = make_paper_testbed(&ids);
  EXPECT_EQ(t.switch_count(), 2u);
  EXPECT_EQ(t.host_count(), 3u);
  EXPECT_NO_THROW(t.validate());
  // host1 on a LAN link, the others on SAN links.
  EXPECT_EQ(t.link(*t.link_at(host_id(ids.host1), 0)).kind, PortKind::kLan);
  EXPECT_EQ(t.link(*t.link_at(host_id(ids.in_transit), 0)).kind, PortKind::kSan);
  EXPECT_EQ(t.link(*t.link_at(host_id(ids.host2), 0)).kind, PortKind::kSan);
  // The loopback cable on switch 2 exists.
  auto loop = t.peer(switch_id(ids.switch2), 7);
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->node, switch_id(ids.switch2));
}

TEST(Builders, Fig1NetworkShape) {
  auto t = make_fig1_network();
  EXPECT_EQ(t.switch_count(), 8u);
  EXPECT_EQ(t.host_count(), 8u);
  EXPECT_NO_THROW(t.validate());
}

TEST(Builders, LinearChain) {
  auto t = make_linear(4, 2);
  EXPECT_EQ(t.switch_count(), 4u);
  EXPECT_EQ(t.host_count(), 8u);
  EXPECT_NO_THROW(t.validate());
  // Host 0 lives on switch 0, host 7 on switch 3.
  EXPECT_EQ(t.host_uplink(0).node, switch_id(0));
  EXPECT_EQ(t.host_uplink(7).node, switch_id(3));
}

TEST(Builders, RandomIrregularIsValidAndDeterministic) {
  itb::sim::Rng rng1(1234), rng2(1234);
  IrregularSpec spec;
  spec.switches = 12;
  spec.hosts_per_switch = 3;
  auto a = make_random_irregular(spec, rng1);
  auto b = make_random_irregular(spec, rng2);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.switch_count(), 12u);
  EXPECT_EQ(a.host_count(), 36u);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (LinkId i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.link(i).a, b.link(i).a);
    EXPECT_EQ(a.link(i).b, b.link(i).b);
  }
}

TEST(Builders, RandomIrregularVariesAcrossSeeds) {
  itb::sim::Rng rng1(1), rng2(2);
  IrregularSpec spec;
  spec.switches = 12;
  auto a = make_random_irregular(spec, rng1);
  auto b = make_random_irregular(spec, rng2);
  bool differs = a.link_count() != b.link_count();
  for (LinkId i = 0; !differs && i < a.link_count(); ++i)
    differs = !(a.link(i).a == b.link(i).a && a.link(i).b == b.link(i).b);
  EXPECT_TRUE(differs);
}

TEST(Builders, RandomIrregularRejectsNoTrunkPorts) {
  itb::sim::Rng rng(1);
  IrregularSpec spec;
  spec.ports = 4;
  spec.hosts_per_switch = 4;
  EXPECT_THROW(make_random_irregular(spec, rng), std::invalid_argument);
}

TEST(NodeIdToString, Readable) {
  EXPECT_EQ(to_string(switch_id(3)), "s3");
  EXPECT_EQ(to_string(host_id(7)), "h7");
}

}  // namespace
