// Tests for the parallel sweep runner: exactly-once execution, inline
// serial path, exception propagation, ordered results, --jobs parsing, and
// the determinism contract (a real cluster sweep is bit-identical for any
// job count).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "itb/core/experiments.hpp"
#include "itb/core/parallel.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using itb::core::ParallelRunner;
using itb::core::jobs_flag;
using itb::core::run_sweep_parallel;

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  const std::size_t count = 100;
  std::vector<std::atomic<int>> hits(count);
  ParallelRunner(4).run_indexed(count, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunner, SingleJobRunsInlineInOrder) {
  std::vector<std::size_t> order;
  ParallelRunner(1).run_indexed(10, [&](std::size_t i) {
    order.push_back(i);  // no synchronization: must be the calling thread
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelRunner, ZeroCountIsANoop) {
  bool called = false;
  ParallelRunner(4).run_indexed(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRunner, ZeroJobsPicksHardwareConcurrency) {
  EXPECT_GE(ParallelRunner(0).jobs(), 1u);
  EXPECT_EQ(ParallelRunner(3).jobs(), 3u);
}

TEST(ParallelRunner, ExceptionPropagatesFromWorker) {
  for (unsigned jobs : {1u, 4u}) {
    EXPECT_THROW(
        ParallelRunner(jobs).run_indexed(
            8,
            [](std::size_t i) {
              if (i == 3) throw std::runtime_error("point 3 failed");
            }),
        std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(RunSweepParallel, ResultsComeBackInPointOrder) {
  for (unsigned jobs : {1u, 4u}) {
    auto out = run_sweep_parallel(
        64, [](std::size_t i) { return static_cast<int>(i * i); }, jobs);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(RunSweepParallel, MoveOnlyResultsWork) {
  auto out = run_sweep_parallel(
      8,
      [](std::size_t i) {
        return std::make_unique<std::size_t>(i);
      },
      4);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], i);
}

TEST(JobsFlag, ParsesBothSpellings) {
  {
    const char* argv[] = {"bench", "--jobs", "3"};
    EXPECT_EQ(jobs_flag(3, const_cast<char**>(argv)), 3u);
  }
  {
    const char* argv[] = {"bench", "--jobs=12"};
    EXPECT_EQ(jobs_flag(2, const_cast<char**>(argv)), 12u);
  }
  {
    const char* argv[] = {"bench", "--json", "out.json"};
    EXPECT_EQ(jobs_flag(3, const_cast<char**>(argv)), std::nullopt);
  }
}

TEST(JobsFlag, RejectsMissingOrMalformedValues) {
  {
    const char* argv[] = {"bench", "--jobs"};
    EXPECT_THROW(jobs_flag(2, const_cast<char**>(argv)),
                 std::invalid_argument);
  }
  {
    const char* argv[] = {"bench", "--jobs", "fast"};
    EXPECT_THROW(jobs_flag(3, const_cast<char**>(argv)),
                 std::invalid_argument);
  }
  {
    const char* argv[] = {"bench", "--jobs="};
    EXPECT_THROW(jobs_flag(2, const_cast<char**>(argv)),
                 std::invalid_argument);
  }
}

/// The determinism contract on a real simulation: a sweep of independent
/// Fig. 8 clusters (one per message size) must produce bit-identical
/// results for any job count, because each point builds its own cluster.
TEST(RunSweepParallel, ClusterSweepIsBitIdenticalAcrossJobCounts) {
  using namespace itb;
  const std::vector<std::size_t> sizes = {16, 256, 1024};
  auto point = [&](std::size_t i) {
    auto cluster = core::make_fig8_cluster(true, nic::McpOptions{});
    auto r = workload::run_pingpong(cluster->queue(),
                                    cluster->port(core::kHost1),
                                    cluster->port(core::kHost2), sizes[i], 5);
    return r.half_rtt_ns;
  };
  const auto serial = run_sweep_parallel(sizes.size(), point, 1);
  const auto parallel = run_sweep_parallel(sizes.size(), point, 4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
