// Tests for up*/down* orientation, route computation, ITB path splitting and
// the channel-dependency-graph deadlock checker — including the paper's
// Fig. 1 scenario.
#include <gtest/gtest.h>

#include "itb/routing/deadlock.hpp"
#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"
#include "itb/routing/updown.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb::routing;
using namespace itb::topo;

// ---------------------------------------------------------------- UpDown --

TEST(UpDown, DepthsOfLinearChain) {
  auto t = make_linear(4);
  UpDown ud(t);
  EXPECT_EQ(ud.root(), 0);
  for (std::uint16_t s = 0; s < 4; ++s) EXPECT_EQ(ud.depth(s), s);
}

TEST(UpDown, UpEndIsCloserToRoot) {
  auto t = make_linear(3);
  UpDown ud(t);
  // Link 0 joins s0-s1, link 1 joins s1-s2 (built first in make_linear).
  EXPECT_EQ(ud.up_end(0), 0);
  EXPECT_EQ(ud.up_end(1), 1);
  EXPECT_TRUE(ud.is_up_traversal(0, 1));   // s1 -> s0 moves up
  EXPECT_FALSE(ud.is_up_traversal(0, 0));  // s0 -> s1 moves down
}

TEST(UpDown, TieBreaksOnLowerId) {
  Topology t;
  for (int i = 0; i < 3; ++i) t.add_switch(4);
  t.add_host();
  t.add_host();
  t.connect_switches(0, 0, 1, 0);
  t.connect_switches(0, 1, 2, 0);
  auto cross = t.connect_switches(1, 1, 2, 1);  // both at depth 1
  t.attach_host(0, 1, 2);
  t.attach_host(1, 2, 2);
  UpDown ud(t);
  EXPECT_EQ(ud.up_end(cross), 1);  // lower ID wins the tie
}

TEST(UpDown, HostLinksUnoriented) {
  auto t = make_linear(2);
  UpDown ud(t);
  // make_linear builds the trunk first, then host links.
  EXPECT_FALSE(ud.up_end(1).has_value());
  EXPECT_THROW(ud.is_up_traversal(1, 0), std::invalid_argument);
}

TEST(UpDown, AlternativeRootChangesDepths) {
  auto t = make_linear(4);
  UpDown ud(t, 3);
  EXPECT_EQ(ud.depth(3), 0u);
  EXPECT_EQ(ud.depth(0), 3u);
}

TEST(UpDown, DisconnectedSwitchGraphThrows) {
  Topology t;
  t.add_switch(4);
  t.add_switch(4);
  EXPECT_THROW(UpDown ud(t), std::invalid_argument);
}

TEST(UpDown, BadRootThrows) {
  auto t = make_linear(2);
  EXPECT_THROW(UpDown ud(t, 9), std::invalid_argument);
}

// ---------------------------------------------------------------- Router --

TEST(Router, SameSwitchRoute) {
  auto t = make_linear(2, 2);  // hosts 0,1 on s0; hosts 2,3 on s1
  UpDown ud(t);
  Router r(ud);
  auto path = r.updown_route(0, 1);
  EXPECT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].size(), 1u);  // one traversal of s0
  EXPECT_EQ(path.trunk_hops(), 0u);
  EXPECT_EQ(path.itb_count(), 0u);
}

TEST(Router, LinearChainRouteLength) {
  auto t = make_linear(4, 1);
  UpDown ud(t);
  Router r(ud);
  auto path = r.updown_route(0, 3);
  EXPECT_EQ(path.trunk_hops(), 3u);
  EXPECT_EQ(path.switch_traversals(), 4u);
  EXPECT_TRUE(r.is_valid_updown(path.trunk_channels));
}

TEST(Router, RouteBytesExecuteToDestination) {
  // Walk the route bytes over the topology and confirm they land on the
  // destination host. Exercised over every pair of the Fig. 1 network.
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  for (std::uint16_t s = 0; s < t.host_count(); ++s) {
    for (std::uint16_t d = 0; d < t.host_count(); ++d) {
      if (s == d) continue;
      auto path = r.updown_route(s, d);
      auto cur = t.host_uplink(s);
      for (std::size_t seg = 0; seg < path.segments.size(); ++seg) {
        if (seg > 0) cur = t.host_uplink(path.in_transit_hosts[seg - 1]);
        for (auto port : path.segments[seg]) {
          auto peer = t.peer(cur.node, port);
          ASSERT_TRUE(peer.has_value()) << describe(path, t);
          cur = *peer;
        }
      }
      EXPECT_EQ(cur.node, host_id(d)) << describe(path, t);
    }
  }
}

TEST(Router, Fig1MinimalPathIsForbidden) {
  // The path s4 -> s6 -> s1 makes a down->up transition at s6.
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  auto minimal = r.minimal_route(4, 1);  // host i sits on switch i
  EXPECT_EQ(minimal.trunk_hops(), 2u);
  EXPECT_FALSE(r.is_valid_updown(minimal.trunk_channels));
}

TEST(Router, Fig1UpDownDetour) {
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  auto updown = r.updown_route(4, 1);
  EXPECT_EQ(updown.trunk_hops(), 3u);  // 4 -> 2 -> 0 -> 1
  EXPECT_TRUE(r.is_valid_updown(updown.trunk_channels));
  EXPECT_EQ(updown.itb_count(), 0u);
}

TEST(Router, Fig1ItbRouteIsMinimalWithOneItb) {
  // The ITB at the host on switch 6 splits 4->6->1 into two valid
  // up*/down* sub-paths (paper Fig. 1).
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  auto itb = r.itb_route(4, 1);
  EXPECT_EQ(itb.trunk_hops(), 2u);
  EXPECT_EQ(itb.itb_count(), 1u);
  ASSERT_EQ(itb.in_transit_hosts.size(), 1u);
  EXPECT_EQ(itb.in_transit_hosts[0], 6);  // host 6 hangs off switch 6
  EXPECT_EQ(itb.segments.size(), 2u);
  // Each sub-path must itself be a valid up*/down* path.
  std::size_t cursor = 0;
  for (const auto& seg : itb.segments) {
    std::vector<Channel> chain(itb.trunk_channels.begin() + cursor,
                               itb.trunk_channels.begin() + cursor +
                                   (seg.size() - 1));
    EXPECT_TRUE(r.is_valid_updown(chain));
    cursor += seg.size() - 1;
  }
}

TEST(Router, ItbNeverWorseThanUpDown) {
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  for (std::uint16_t s = 0; s < t.host_count(); ++s)
    for (std::uint16_t d = 0; d < t.host_count(); ++d) {
      if (s == d) continue;
      EXPECT_LE(r.itb_route(s, d).trunk_hops(),
                r.updown_route(s, d).trunk_hops());
    }
}

TEST(Router, ItbRoutesAreMinimalOnFig1) {
  // Every switch in Fig. 1 has a host, so every minimal path can be
  // legalised: the ITB route length must equal the unrestricted minimum.
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  for (std::uint16_t s = 0; s < t.host_count(); ++s)
    for (std::uint16_t d = 0; d < t.host_count(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(r.itb_route(s, d).trunk_hops(), r.minimal_distance(s, d));
    }
}

TEST(Router, ItbSubPathsAlwaysValidOnRandomNets) {
  itb::sim::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    IrregularSpec spec;
    spec.switches = 10;
    spec.hosts_per_switch = 2;
    auto t = make_random_irregular(spec, rng);
    UpDown ud(t);
    Router r(ud);
    for (std::uint16_t s = 0; s < t.host_count(); s += 3)
      for (std::uint16_t d = 0; d < t.host_count(); d += 3) {
        if (s == d) continue;
        auto path = r.itb_route(s, d);
        std::size_t cursor = 0;
        for (const auto& seg : path.segments) {
          ASSERT_GE(seg.size(), 1u);
          std::vector<Channel> chain(
              path.trunk_channels.begin() + cursor,
              path.trunk_channels.begin() + cursor + (seg.size() - 1));
          EXPECT_TRUE(r.is_valid_updown(chain)) << describe(path, t);
          cursor += seg.size() - 1;
        }
        EXPECT_EQ(path.trunk_hops(), r.minimal_distance(s, d))
            << describe(path, t);
      }
  }
}

TEST(Router, DescribeMentionsItb) {
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  auto text = describe(r.itb_route(4, 1), t);
  EXPECT_NE(text.find("ITB(h6)"), std::string::npos) << text;
  EXPECT_NE(text.find("h4"), std::string::npos);
}

// ------------------------------------------------------------ RouteTable --

TEST(RouteTable, ItbImprovesAverageHopsOnFig1) {
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  RouteTable updown(r, Policy::kUpDown);
  RouteTable itb(r, Policy::kItb);
  EXPECT_LT(itb.average_trunk_hops(), updown.average_trunk_hops());
  EXPECT_DOUBLE_EQ(itb.minimal_fraction(r), 1.0);
  EXPECT_LT(updown.minimal_fraction(r), 1.0);
  EXPECT_GT(itb.average_itbs(), 0.0);
  EXPECT_DOUBLE_EQ(updown.average_itbs(), 0.0);
}

TEST(RouteTable, DiagonalAccessThrows) {
  auto t = make_linear(2, 1);
  UpDown ud(t);
  Router r(ud);
  RouteTable table(r, Policy::kUpDown);
  EXPECT_THROW(table.route(0, 0), std::out_of_range);
  EXPECT_THROW(table.route(0, 5), std::out_of_range);
}

TEST(RouteTable, ChannelUsageCountsEveryTrunk) {
  auto t = make_linear(3, 1);  // hosts 0,1,2 on switches 0,1,2
  UpDown ud(t);
  Router r(ud);
  RouteTable table(r, Policy::kUpDown);
  auto usage = table.channel_usage(t);
  std::uint32_t total = 0;
  for (auto u : usage) total += u;
  // Pairs: 0<->1 (1 hop each way), 0<->2 (2), 1<->2 (1): total 8 trunk hops.
  EXPECT_EQ(total, 8u);
}

TEST(RouteTable, UpDownConcentratesTrafficNearRoot) {
  // The motivation claim (§1): spanning-tree routing saturates the root.
  itb::sim::Rng rng(5);
  IrregularSpec spec;
  spec.switches = 16;
  spec.hosts_per_switch = 2;
  auto t = make_random_irregular(spec, rng);
  UpDown ud(t);
  Router r(ud);
  RouteTable updown(r, Policy::kUpDown);
  RouteTable itbt(r, Policy::kItb);
  auto peak = [](const std::vector<std::uint32_t>& v) {
    std::uint32_t m = 0;
    for (auto x : v) m = std::max(m, x);
    return m;
  };
  // ITB routing must reduce the most-loaded channel's share.
  EXPECT_LT(peak(itbt.channel_usage(t)), peak(updown.channel_usage(t)));
}

// -------------------------------------------------------------- Deadlock --

TEST(Deadlock, ExplicitCycleDetected) {
  auto t = make_linear(3, 1);
  DependencyGraph g(t);
  Channel c0{0, true}, c1{1, true}, c0r{0, false};
  g.add_dependency(c0, c1);
  EXPECT_FALSE(g.has_cycle());
  g.add_dependency(c1, c0r);
  g.add_dependency(c0r, c0);
  EXPECT_TRUE(g.has_cycle());
  auto cycle = g.find_cycle();
  EXPECT_GE(cycle.size(), 2u);
}

TEST(Deadlock, DuplicateEdgesIgnored) {
  auto t = make_linear(2, 1);
  DependencyGraph g(t);
  g.add_dependency({0, true}, {1, true});
  g.add_dependency({0, true}, {1, true});
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Deadlock, UpDownTablesAcyclic) {
  itb::sim::Rng rng(21);
  IrregularSpec spec;
  spec.switches = 12;
  spec.hosts_per_switch = 2;
  auto t = make_random_irregular(spec, rng);
  UpDown ud(t);
  Router r(ud);
  RouteTable table(r, Policy::kUpDown);
  DependencyGraph g(t);
  g.add_table(table, t);
  EXPECT_FALSE(g.has_cycle());
}

TEST(Deadlock, ItbTablesAcyclic) {
  // The paper's core deadlock-freedom claim: splitting at ITBs keeps the
  // CDG acyclic even though routes are minimal.
  itb::sim::Rng rng(22);
  for (int trial = 0; trial < 4; ++trial) {
    IrregularSpec spec;
    spec.switches = 12;
    spec.hosts_per_switch = 2;
    auto t = make_random_irregular(spec, rng);
    UpDown ud(t);
    Router r(ud);
    RouteTable table(r, Policy::kItb);
    DependencyGraph g(t);
    g.add_table(table, t);
    EXPECT_FALSE(g.has_cycle()) << "trial " << trial;
  }
}

TEST(Deadlock, MinimalRoutesWithoutItbsCanCycle) {
  // Sanity check of the checker itself: raw minimal routing over an
  // irregular net generally produces cyclic dependencies. We search a few
  // seeds for a cyclic instance — at least one must exist.
  itb::sim::Rng rng(1);
  bool found_cycle = false;
  for (int trial = 0; trial < 8 && !found_cycle; ++trial) {
    IrregularSpec spec;
    spec.switches = 12;
    spec.hosts_per_switch = 2;
    auto t = make_random_irregular(spec, rng);
    UpDown ud(t);
    Router r(ud);
    DependencyGraph g(t);
    for (std::uint16_t s = 0; s < t.host_count(); ++s)
      for (std::uint16_t d = 0; d < t.host_count(); ++d) {
        if (s == d) continue;
        g.add_route(r.minimal_route(s, d), t);
      }
    found_cycle = g.has_cycle();
  }
  EXPECT_TRUE(found_cycle);
}

TEST(Deadlock, ItbRouteChainsSplitAtEjection) {
  // The dependency from the last channel before an ITB to the first after
  // it must NOT exist.
  auto t = make_fig1_network();
  UpDown ud(t);
  Router r(ud);
  auto path = r.itb_route(4, 1);
  ASSERT_EQ(path.itb_count(), 1u);
  DependencyGraph g(t);
  g.add_route(path, t);
  EXPECT_FALSE(g.has_cycle());
  // With only one route, edges = (channels per chain - 1) summed: chain 1
  // has host + 1 trunk + host = 3 channels (2 edges), chain 2 the same.
  EXPECT_EQ(g.edge_count(), 4u);
}

}  // namespace
