// Unit tests for packet formats (paper Fig. 3) and CRC routines.
#include <gtest/gtest.h>

#include <numeric>

#include "itb/packet/crc.hpp"
#include "itb/packet/format.hpp"

namespace {

using namespace itb::packet;

Bytes make_payload(std::size_t n) {
  Bytes p(n);
  std::iota(p.begin(), p.end(), std::uint8_t{1});
  return p;
}

TEST(Crc8, KnownVector) {
  // CRC-8/ATM of "123456789" is 0xF4.
  const char* s = "123456789";
  std::vector<std::uint8_t> data(s, s + 9);
  EXPECT_EQ(crc8(data), 0xF4);
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::uint8_t> data(s, s + 9);
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  auto p = make_payload(100);
  Crc32 inc;
  inc.update(std::span(p).subspan(0, 37));
  inc.update(std::span(p).subspan(37));
  EXPECT_EQ(inc.value(), crc32(p));
}

TEST(Crc8, DetectsSingleBitFlips) {
  auto p = make_payload(64);
  const auto good = crc8(p);
  for (std::size_t byte = 0; byte < p.size(); byte += 7) {
    auto copy = p;
    copy[byte] ^= 0x10;
    EXPECT_NE(crc8(copy), good) << "undetected flip at byte " << byte;
  }
}

TEST(RouteBytes, EncodeDecodeRoundTrip) {
  for (std::uint8_t port = 0; port < 16; ++port) {
    auto b = encode_route_byte(port);
    EXPECT_TRUE(is_route_byte(b));
    EXPECT_EQ(decode_route_byte(b), port);
  }
}

TEST(RouteBytes, OversizedPortThrows) {
  EXPECT_THROW(encode_route_byte(0x80), std::invalid_argument);
}

TEST(Format, OriginalPacketLayout) {
  auto p = build_packet({1, 5, 2}, PacketType::kGm, make_payload(10));
  // 3 route bytes + 2 type + 10 payload + 1 crc.
  EXPECT_EQ(p.size(), 16u);
  EXPECT_EQ(leading_route_bytes(p), 3u);
  EXPECT_EQ(decode_route_byte(p[0]), 1);
  EXPECT_EQ(decode_route_byte(p[1]), 5);
  EXPECT_EQ(decode_route_byte(p[2]), 2);
}

TEST(Format, ParseAfterRouteConsumption) {
  auto p = build_packet({1, 5}, PacketType::kGm, make_payload(8));
  EXPECT_EQ(consume_route_byte(p), 1);
  EXPECT_EQ(consume_route_byte(p), 5);
  auto head = parse_head(p);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->type, PacketType::kGm);
  EXPECT_EQ(head->payload_offset, 2u);
  EXPECT_EQ(head->payload_length, 8u);
  EXPECT_TRUE(verify_crc(p));
}

TEST(Format, ParseHeadRejectsRouteBytes) {
  auto p = build_packet({3}, PacketType::kGm, make_payload(4));
  EXPECT_FALSE(parse_head(p).has_value());  // route byte still leading
}

TEST(Format, ConsumeWithoutRouteByteThrows) {
  Bytes p{0x00, 0x01};
  EXPECT_THROW(consume_route_byte(p), std::invalid_argument);
}

TEST(Format, CrcSurvivesRouteConsumption) {
  auto p = build_packet({1, 2, 3, 4}, PacketType::kGm, make_payload(32));
  while (leading_route_bytes(p) > 0) consume_route_byte(p);
  EXPECT_TRUE(verify_crc(p));
}

TEST(Format, CorruptedPayloadFailsCrc) {
  auto p = build_packet({}, PacketType::kGm, make_payload(16));
  p[5] ^= 0x01;
  EXPECT_FALSE(verify_crc(p));
}

TEST(Format, ItbPacketSingleSegmentDegeneratesToOriginal) {
  auto a = build_itb_packet({{2, 4}}, PacketType::kGm, make_payload(6));
  auto b = build_packet({2, 4}, PacketType::kGm, make_payload(6));
  EXPECT_EQ(a, b);
}

TEST(Format, ItbPacketTwoSegments) {
  // Fig. 3b: Path | ITB | Length | Path | Type | Payload | CRC
  auto p = build_itb_packet({{1, 2}, {3}}, PacketType::kGm, make_payload(5));
  // 2 route + (2 type + 1 len) + 1 route + 2 type + 5 payload + 1 crc = 14.
  EXPECT_EQ(p.size(), 14u);
  EXPECT_EQ(leading_route_bytes(p), 2u);
  consume_route_byte(p);
  consume_route_byte(p);
  auto head = parse_head(p);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->type, PacketType::kItb);
  // Remaining header after the tag: 1 route byte + 2-byte final type = 3.
  EXPECT_EQ(head->itb_remaining_header, 3u);
}

TEST(Format, ItbStripYieldsReinjectablePacket) {
  const auto payload = make_payload(9);
  auto p = build_itb_packet({{1, 2}, {3, 4}}, PacketType::kGm, payload);
  consume_route_byte(p);
  consume_route_byte(p);
  auto rest = strip_itb_stage(p);
  // The re-injected packet is exactly an original-format packet.
  EXPECT_EQ(leading_route_bytes(rest), 2u);
  consume_route_byte(rest);
  consume_route_byte(rest);
  auto head = parse_head(rest);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->type, PacketType::kGm);
  EXPECT_EQ(head->payload_length, payload.size());
  EXPECT_TRUE(verify_crc(rest));
  Bytes got(rest.begin() + 2, rest.end() - 1);
  EXPECT_EQ(got, payload);
}

TEST(Format, ThreeSegmentChain) {
  // More than one ITB per path is explicitly allowed (§1).
  auto p = build_itb_packet({{1}, {2, 3}, {4}}, PacketType::kGm, make_payload(4));
  consume_route_byte(p);
  auto h1 = parse_head(p);
  ASSERT_TRUE(h1 && h1->type == PacketType::kItb);
  // After tag 1: 2 route + tag(3) + 1 route + type(2) = 8.
  EXPECT_EQ(h1->itb_remaining_header, 8u);
  auto rest = strip_itb_stage(p);
  consume_route_byte(rest);
  consume_route_byte(rest);
  auto h2 = parse_head(rest);
  ASSERT_TRUE(h2 && h2->type == PacketType::kItb);
  EXPECT_EQ(h2->itb_remaining_header, 3u);
  auto last = strip_itb_stage(rest);
  consume_route_byte(last);
  EXPECT_TRUE(verify_crc(last));
}

TEST(Format, StripNonItbThrows) {
  auto p = build_packet({}, PacketType::kGm, make_payload(4));
  EXPECT_THROW(strip_itb_stage(p), std::invalid_argument);
}

TEST(Format, EmptySegmentsThrow) {
  EXPECT_THROW(build_itb_packet({}, PacketType::kGm, {}), std::invalid_argument);
}

TEST(Format, LengthOverflowThrows) {
  // A second segment with 254 hops overflows the 1-byte Length field.
  std::vector<Route> segs{{1}, Route(254, 2)};
  EXPECT_THROW(build_itb_packet(segs, PacketType::kGm, {}),
               std::invalid_argument);
}

TEST(Format, ParseHeadRejectsShortBuffers) {
  Bytes tiny{0x00};
  EXPECT_FALSE(parse_head(tiny).has_value());
  Bytes unknown{0x00, 0x99, 0x00};
  EXPECT_FALSE(parse_head(unknown).has_value());
}

TEST(Format, ItbHeadRequiresDeclaredBytesPresent) {
  // ITB tag claiming 10 remaining header bytes but buffer too short.
  Bytes p{0x00, 0x04, 10, 0x81};
  EXPECT_FALSE(parse_head(p).has_value());
}

TEST(Format, MappingAndIpTypesParse) {
  auto m = build_packet({}, PacketType::kMapping, make_payload(2));
  auto i = build_packet({}, PacketType::kIp, make_payload(2));
  EXPECT_EQ(parse_head(m)->type, PacketType::kMapping);
  EXPECT_EQ(parse_head(i)->type, PacketType::kIp);
}

TEST(Format, DescribeIsHumanReadable) {
  auto p = build_itb_packet({{1}, {2}}, PacketType::kGm, make_payload(3));
  auto text = describe(p);
  EXPECT_NE(text.find("p1"), std::string::npos);
  EXPECT_NE(text.find("ITB"), std::string::npos);
  EXPECT_NE(text.find("payload=3"), std::string::npos);
}

TEST(Format, EmptyPayloadPacket) {
  auto p = build_packet({7}, PacketType::kGm, {});
  consume_route_byte(p);
  auto head = parse_head(p);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->payload_length, 0u);
  EXPECT_TRUE(verify_crc(p));
}

}  // namespace
