// End-to-end tests of multi-stage ITB chains ("more than a single ITB can
// be needed in a path", §1) running through the full stack — real NICs,
// GM reliability, channel accounting — plus trace coverage.
#include <gtest/gtest.h>

#include "itb/core/cluster.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

/// Chain of three switches, one host each; hosts 1 serves as a relay for
/// a two-ITB route from h0 to h2 that bounces off BOTH intermediate hosts:
/// h0 -> s0 -> h... Actually: eject at h1 (on s1), re-inject, eject again
/// at h1? A chain with 4 switches and hosts on each gives two distinct
/// in-transit hosts (h1 on s1, h2 on s2) for a route h0 -> h3.
std::unique_ptr<core::Cluster> chain_cluster(const nic::McpOptions& mcp = {}) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(4, 1);  // h_i on s_i, trunks s_i - s_{i+1}
  cfg.mcp_options = mcp;
  // make_linear port map: s0 {0: trunk->s1, 1: host}, s1 {0: trunk->s0,
  // 1: trunk->s2, 2: host}, s2 {0: trunk->s1, 1: trunk->s3, 2: host},
  // s3 {0: trunk->s2, 1: host}.
  using Routes = std::vector<std::vector<std::vector<packet::Route>>>;
  Routes r(4, std::vector<std::vector<packet::Route>>(4));
  // The measured route: h0 -> eject at h1 -> eject at h2 -> h3.
  r[0][3] = {{0, 2}, {1, 2}, {1, 1}};
  // Direct service routes for acks and the reverse direction.
  r[3][0] = {{0, 0, 0, 1}};
  r[1][0] = {{0, 1}};
  r[0][1] = {{0, 2}};
  r[2][0] = {{0, 0, 1}};
  r[0][2] = {{0, 1, 2}};
  r[3][1] = {{0, 0, 2}};
  r[1][3] = {{1, 1, 1}};
  r[3][2] = {{0, 2}};
  r[2][3] = {{1, 1}};
  r[2][1] = {{0, 2}};
  r[1][2] = {{1, 2}};
  cfg.manual_routes = std::move(r);
  return std::make_unique<core::Cluster>(std::move(cfg));
}

TEST(ItbChain, TwoItbsDeliverEndToEnd) {
  auto c = chain_cluster();
  Bytes msg(1234);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i ^ (i >> 5));
  Bytes got;
  c->port(3).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { got = std::move(m); });
  ASSERT_TRUE(c->port(0).send(3, msg));
  c->run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(c->nic(1).stats().itb_forwarded, 1u);
  EXPECT_EQ(c->nic(2).stats().itb_forwarded, 1u);
  EXPECT_EQ(c->nic(1).stats().delivered_to_host, 0u);
  EXPECT_EQ(c->nic(2).stats().delivered_to_host, 0u);
}

TEST(ItbChain, EachStageAddsRoughlyConstantLatency) {
  // Compare the 2-ITB route against the direct 4-switch route: the extra
  // latency should be about two per-ITB overheads (~1.3 us each).
  auto measure = [](bool via_itbs) {
    auto c = chain_cluster();
    if (!via_itbs) {
      c->nic(0).set_route(3, {{0, 1, 1, 1}});  // direct, no ejections
    }
    sim::Time arrival = -1;
    c->port(3).set_receive_handler(
        [&](sim::Time t, std::uint16_t, Bytes) { arrival = t; });
    c->port(0).send(3, Bytes(64, 1));
    c->run();
    return arrival;
  };
  const auto direct = measure(false);
  const auto chained = measure(true);
  ASSERT_GT(direct, 0);
  // Unlike the Fig. 8 methodology, the comparator here is NOT traversal-
  // equalised: the chained route crosses two extra switches and four extra
  // host links, so the bound is per-ITB cost plus that structural delta.
  const auto overhead = chained - direct;
  EXPECT_GT(overhead, 2 * 1000);  // > 2 x 1.0 us
  EXPECT_LT(overhead, 2 * 2100);  // < 2 x (1.3 us + structural extras)
}

TEST(ItbChain, PipelinedStagesOverlapForLongPackets) {
  // With virtual cut-through at each stage, a long packet's chain latency
  // grows by ~constant per stage, NOT by a full transmission per stage.
  auto measure = [](std::size_t size) {
    auto c = chain_cluster();
    sim::Time arrival = -1;
    c->port(3).set_receive_handler(
        [&](sim::Time t, std::uint16_t, Bytes) { arrival = t; });
    c->port(0).send(3, Bytes(size, 1));
    c->run();
    return arrival;
  };
  // One extra wire transmission of 3600 B would be ~22.5 us; the two-stage
  // chain's length-dependent cost must stay well under one extra copy.
  const auto small = measure(400);
  const auto big = measure(4000);
  const auto per_byte_cost = static_cast<double>(big - small) / 3600.0;
  EXPECT_LT(per_byte_cost, 2.0 * 6.25);  // < wire + PCI, i.e. no S&F stages
}

TEST(ItbChain, ChainSurvivesBackToBackTraffic) {
  auto c = chain_cluster();
  int got = 0;
  c->port(3).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got; });
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(c->port(0).send(3, Bytes(2000, static_cast<std::uint8_t>(i))));
  c->run();
  EXPECT_EQ(got, 12);
  EXPECT_EQ(c->nic(1).stats().itb_forwarded, 12u);
  EXPECT_EQ(c->nic(2).stats().itb_forwarded, 12u);
}

TEST(ItbChain, RelayHostsOwnTrafficInterleaves) {
  // The in-transit hosts also talk; pending-flag service must interleave
  // forwarding duty with their own sends without losses.
  auto c = chain_cluster();
  int got3 = 0, got0 = 0;
  c->port(3).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got3; });
  c->port(0).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got0; });
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(c->port(0).send(3, Bytes(3000, 1)));
    ASSERT_TRUE(c->port(1).send(0, Bytes(3000, 2)));
    ASSERT_TRUE(c->port(2).send(0, Bytes(3000, 3)));
  }
  c->run();
  EXPECT_EQ(got3, 6);
  EXPECT_EQ(got0, 12);
}

TEST(ItbChain, TraceRecordsForwardingEvents) {
  auto c = chain_cluster();
  std::string log;
  c->tracer().attach(sim::Tracer::string_sink(log));
  c->port(3).set_receive_handler([](sim::Time, std::uint16_t, Bytes) {});
  c->port(0).send(3, Bytes(100, 1));
  c->run();
  // Both relays logged a re-injection.
  EXPECT_NE(log.find("h1 re-injecting ITB"), std::string::npos) << log;
  EXPECT_NE(log.find("h2 re-injecting ITB"), std::string::npos);
  EXPECT_NE(log.find("delivered to h3"), std::string::npos);
}

TEST(ItbChain, ChannelBusyAccountingCoversAllSegments) {
  auto c = chain_cluster();
  c->port(3).set_receive_handler([](sim::Time, std::uint16_t, Bytes) {});
  c->port(0).send(3, Bytes(500, 1));
  c->run();
  // Every trunk of the chain carried wormhole traffic (data or acks).
  const auto& busy = c->network().channel_busy_ns();
  int active_channels = 0;
  for (auto ns : busy) active_channels += (ns > 0);
  EXPECT_GE(active_channels, 6);  // 3 trunks + host links, both directions
}

TEST(ItbChain, OriginalMcpBreaksTheChain) {
  auto c = chain_cluster(nic::McpOptions::original_gm());
  int got = 0;
  c->port(3).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got; });
  c->port(0).send(3, Bytes(100, 1));
  c->queue().run(5 * sim::kMs);  // bounded: GM would retransmit forever
  EXPECT_EQ(got, 0);
  EXPECT_GT(c->nic(1).stats().rx_unknown_type, 0u);
}

}  // namespace
