// Tests for the telemetry subsystem: histogram accuracy against exact
// percentiles, registry <-> legacy-counter equality after a lossy ITB run,
// sampler integration (rate series integrate back to the underlying
// counters), trace cross-checks, and the JSON/CSV exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/core/experiments.hpp"
#include "itb/sim/rng.hpp"
#include "itb/sim/stats.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/metrics.hpp"
#include "itb/telemetry/sampler.hpp"
#include "itb/topo/builders.hpp"
#include "itb/workload/load.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

// ---------------------------------------------------------------------------
// LatencyHistogram

void expect_percentiles_close(const std::vector<double>& samples) {
  telemetry::LatencyHistogram hist;
  sim::SampledStats exact;
  for (double v : samples) {
    hist.add(v);
    exact.add(std::floor(v));  // histogram truncates to integer ns
  }
  for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double want = exact.percentile(p);
    const double got = hist.percentile(p);
    // Acceptance target: within 1% of the exact nearest-rank value.
    EXPECT_NEAR(got, want, 0.01 * std::max(want, 1.0))
        << "p" << p << " over " << samples.size() << " samples";
  }
  EXPECT_EQ(hist.count(), samples.size());
}

TEST(LatencyHistogram, UniformWithinOnePercentOfExact) {
  sim::Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(static_cast<double>(rng.next_below(1'000'000) + 500));
  expect_percentiles_close(samples);
}

TEST(LatencyHistogram, ExponentialWithinOnePercentOfExact) {
  sim::Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(rng.next_exponential(50'000.0));
  expect_percentiles_close(samples);
}

TEST(LatencyHistogram, BimodalWithinOnePercentOfExact) {
  // Short fast path + long congested path, the shape loaded ITB runs show.
  sim::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i)
    samples.push_back(static_cast<double>(9'000 + rng.next_below(2'000)));
  for (int i = 0; i < 10000; ++i)
    samples.push_back(static_cast<double>(750'000 + rng.next_below(100'000)));
  expect_percentiles_close(samples);
}

TEST(LatencyHistogram, EdgeCases) {
  telemetry::LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);

  h.record(1234);
  EXPECT_EQ(h.percentile(0), 1234.0);    // p0 = min
  EXPECT_EQ(h.percentile(100), 1234.0);  // p100 = max
  EXPECT_EQ(h.percentile(50), 1234.0);   // single sample: every percentile
  EXPECT_EQ(h.mean(), 1234.0);

  h.add(-5.0);  // clamps to zero
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0), 0.0);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogram, P999TrackedAndSummarized) {
  telemetry::LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  // Within the documented 0.4% relative-error bound.
  EXPECT_NEAR(h.percentile(99.9), 9990.0, 0.004 * 9990.0);
  EXPECT_NE(h.summary().find("p999="), std::string::npos);

  telemetry::LatencyHistogram empty;
  EXPECT_EQ(empty.percentile(99.9), 0.0);
  telemetry::LatencyHistogram one;
  one.record(77);
  EXPECT_EQ(one.percentile(99.9), 77.0);
}

TEST(LatencyHistogram, MergeAndBuckets) {
  telemetry::LatencyHistogram a, b;
  a.record(100, 5);
  b.record(1'000'000, 3);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 1'000'000u);

  std::uint64_t total = 0;
  for (const auto& bucket : a.nonzero_buckets()) {
    EXPECT_LT(bucket.lo, bucket.hi);
    total += bucket.count;
  }
  EXPECT_EQ(total, 8u);

  telemetry::LatencyHistogram coarse(3);
  EXPECT_THROW(a.merge(coarse), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// MetricRegistry

TEST(MetricRegistry, HandlesAndSources) {
  telemetry::MetricRegistry reg;
  auto c = reg.counter("core", "events");
  auto g = reg.gauge("core", "depth", {.host = 2, .channel = -1});
  c.inc();
  c.inc(4);
  g.set(7.5);
  std::uint64_t backing = 41;
  reg.register_source("core", "legacy", telemetry::MetricKind::kCounter,
                      [&backing] { return static_cast<double>(backing); });

  EXPECT_EQ(reg.value("core", "events"), 5.0);
  EXPECT_EQ(reg.value("core", "depth", {.host = 2, .channel = -1}), 7.5);
  EXPECT_EQ(reg.value("core", "legacy"), 41.0);
  ++backing;  // sources poll live state
  EXPECT_EQ(reg.value("core", "legacy"), 42.0);
  EXPECT_FALSE(reg.value("core", "missing").has_value());
  EXPECT_FALSE(reg.value("core", "depth").has_value());  // labels mismatch

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "events");
  EXPECT_EQ(snap[1].labels.host, 2);

  // Default-constructed handles are inert.
  telemetry::Counter inert;
  inert.inc();
  EXPECT_EQ(inert.value(), 0u);
}

TEST(Telemetry, ExportsEventEngineStats) {
  sim::EventQueue q;
  sim::Tracer tracer;
  telemetry::Telemetry tel(q, tracer);
  auto a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.schedule_at(5'000'000, [] {});  // far timer -> spill heap
  q.cancel(a);
  q.run();
  EXPECT_EQ(tel.registry().value("sim", "events_fired"), 2.0);
  EXPECT_EQ(tel.registry().value("sim", "events_cancelled"), 1.0);
  EXPECT_EQ(tel.registry().value("sim", "peak_pending"), 3.0);
  EXPECT_EQ(tel.registry().value("sim", "events_wheel"), 2.0);
  EXPECT_EQ(tel.registry().value("sim", "events_spilled"), 1.0);
}

TEST(MetricRegistry, DuplicateRegistrationThrows) {
  telemetry::MetricRegistry reg;
  reg.counter("gm", "sent", {.host = 0, .channel = -1});
  EXPECT_THROW(reg.counter("gm", "sent", {.host = 0, .channel = -1}),
               std::invalid_argument);
  // Same name under a different label set is a different metric.
  EXPECT_NO_THROW(reg.counter("gm", "sent", {.host = 1, .channel = -1}));
  EXPECT_THROW(reg.register_source("gm", "sent", telemetry::MetricKind::kGauge,
                                   [] { return 0.0; },
                                   {.host = 1, .channel = -1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cluster integration: registry == legacy counters after a lossy ITB run

TEST(Telemetry, RegistryMatchesLegacyCountersAfterLossyItbRun) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  cfg.mcp_options.recv_buffers = 16;
  cfg.mcp_options.drop_when_full = true;
  cfg.fault_plan.drop_probability = 0.03;  // force GM retransmissions
  cfg.gm_config.retransmit_timeout = 200 * sim::kUs;
  core::Cluster cluster(std::move(cfg));

  workload::LoadConfig lc;
  lc.message_bytes = 256;
  lc.rate_msgs_per_s = 4e3;
  lc.warmup = 0;
  lc.measure = 3 * sim::kMs;
  lc.seed = 7;
  auto r = workload::run_load(cluster.queue(), cluster.ports(), lc);
  ASSERT_GT(r.messages_delivered, 0u);
  ASSERT_GT(r.retransmissions, 0u) << "lossy run produced no retransmissions";

  const auto& reg = cluster.telemetry().registry();
  const auto& net = cluster.network().stats();
  EXPECT_EQ(reg.value("net", "injected"), static_cast<double>(net.injected));
  EXPECT_EQ(reg.value("net", "delivered"), static_cast<double>(net.delivered));
  EXPECT_EQ(reg.value("net", "dropped"), static_cast<double>(net.dropped));
  EXPECT_EQ(reg.value("net", "head_blocks"),
            static_cast<double>(net.head_blocks));
  EXPECT_EQ(reg.value("net", "faults_injected"),
            static_cast<double>(net.faults_injected));
  EXPECT_GT(net.faults_injected, 0u);

  for (std::uint16_t h = 0; h < cluster.host_count(); ++h) {
    const telemetry::Labels labels{.host = h, .channel = -1};
    const auto& nic = cluster.nic(h).stats();
    EXPECT_EQ(reg.value("nic", "sent", labels), static_cast<double>(nic.sent));
    EXPECT_EQ(reg.value("nic", "received", labels),
              static_cast<double>(nic.received));
    EXPECT_EQ(reg.value("nic", "delivered_to_host", labels),
              static_cast<double>(nic.delivered_to_host));
    EXPECT_EQ(reg.value("nic", "itb_forwarded", labels),
              static_cast<double>(nic.itb_forwarded));
    EXPECT_EQ(reg.value("nic", "dropped_no_buffer", labels),
              static_cast<double>(nic.dropped_no_buffer));
    EXPECT_EQ(reg.value("nic", "rx_bad_crc", labels),
              static_cast<double>(nic.rx_bad_crc));

    const auto& gm = cluster.port(h).stats();
    EXPECT_EQ(reg.value("gm", "messages_sent", labels),
              static_cast<double>(gm.messages_sent));
    EXPECT_EQ(reg.value("gm", "messages_delivered", labels),
              static_cast<double>(gm.messages_delivered));
    EXPECT_EQ(reg.value("gm", "packets_data", labels),
              static_cast<double>(gm.packets_data));
    EXPECT_EQ(reg.value("gm", "packets_ack", labels),
              static_cast<double>(gm.packets_ack));
    EXPECT_EQ(reg.value("gm", "retransmissions", labels),
              static_cast<double>(gm.retransmissions));

    const auto& ip = cluster.ip(h).stats();
    EXPECT_EQ(reg.value("ip", "datagrams_sent", labels),
              static_cast<double>(ip.datagrams_sent));
  }

  // Per-channel busy gauges mirror the network's vector.
  const auto& busy = cluster.network().channel_busy_ns();
  for (std::size_t c = 0; c < busy.size(); ++c)
    EXPECT_EQ(reg.value("net", "channel_busy_ns",
                        {.host = -1, .channel = static_cast<int>(c)}),
              static_cast<double>(busy[c]));
}

// ---------------------------------------------------------------------------
// Sampler

TEST(Sampler, UtilizationSeriesIntegratesToChannelBusy) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  cfg.telemetry_sample_period = 50 * sim::kUs;
  core::Cluster cluster(std::move(cfg));

  cluster.telemetry().start_sampling();
  workload::LoadConfig lc;
  lc.message_bytes = 512;
  lc.rate_msgs_per_s = 5e3;
  lc.warmup = 0;
  lc.measure = 2 * sim::kMs;
  lc.seed = 11;
  workload::run_load(cluster.queue(), cluster.ports(), lc);
  cluster.telemetry().stop_sampling();

  const auto& sampler = cluster.telemetry().sampler();
  ASSERT_GT(sampler.ticks(), 5u);
  const auto& busy = cluster.network().channel_busy_ns();
  std::size_t busy_channels = 0;
  for (std::size_t c = 0; c < busy.size(); ++c) {
    const auto* s = sampler.find(
        "channel_utilization",
        telemetry::Labels{.host = -1, .channel = static_cast<int>(c)});
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->at.size(), s->values.size());
    // sum(v_i * dt_i) must equal the counter's growth over the sampled
    // interval — the kRate definition makes this exact up to FP error.
    double integral = 0;
    sim::Time t_prev = 0;  // sampling started at time 0
    for (std::size_t i = 0; i < s->at.size(); ++i) {
      EXPECT_GE(s->values[i], 0.0);
      EXPECT_LE(s->values[i], 1.0 + 1e-9) << "utilization above 100%";
      integral += s->values[i] * static_cast<double>(s->at[i] - t_prev);
      t_prev = s->at[i];
    }
    EXPECT_NEAR(integral, static_cast<double>(busy[c]),
                1e-6 * std::max<double>(static_cast<double>(busy[c]), 1.0) +
                    1e-3);
    if (busy[c] > 0) ++busy_channels;
  }
  EXPECT_GT(busy_channels, 0u) << "load run never used any channel";
}

TEST(Sampler, ParksOnDrainResumesAndTracesEveryTick) {
  auto cluster = core::make_fig8_cluster(/*itb_path=*/true);
  std::string log;
  cluster->tracer().attach(telemetry::tick_log_sink(log));

  auto& telemetry = cluster->telemetry();
  telemetry.start_sampling();
  workload::AllsizeConfig cfg;
  cfg.iterations = 5;
  cfg.sizes = {256, 1024};
  cfg.sampler = &telemetry.sampler();
  workload::run_allsize(cluster->queue(), cluster->port(core::kHost1),
                        cluster->port(core::kHost2), cfg);
  // After each drain the sampler parks rather than spinning the queue.
  EXPECT_TRUE(telemetry.sampler().parked());
  telemetry.stop_sampling();
  EXPECT_FALSE(telemetry.sampler().running());

  const auto ticks = telemetry.sampler().ticks();
  EXPECT_GT(ticks, 0u);
  // Every tick (including the stop() flush) leaves one trace line.
  std::size_t lines = 0;
  for (char ch : log)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, ticks);
  EXPECT_NE(log.find("[telemetry]"), std::string::npos);
  EXPECT_NE(log.find("channel_utilization"), std::string::npos);
}

TEST(Sampler, RateSeriesScaleAndLevelMode) {
  sim::EventQueue queue;
  sim::Tracer tracer;
  telemetry::Sampler sampler(queue, tracer, 100);
  double counter = 0, level = 3;
  sampler.add_probe("rate", {}, telemetry::Sampler::Mode::kRate,
                    [&counter] { return counter; }, /*scale=*/1e9);
  sampler.add_probe("level", {}, telemetry::Sampler::Mode::kLevel,
                    [&level] { return level; });
  EXPECT_THROW(sampler.add_probe("level", {}, telemetry::Sampler::Mode::kLevel,
                                 [] { return 0.0; }),
               std::invalid_argument);

  sampler.start();
  // Keep the queue busy so ticks re-arm; bump the counter as time passes
  // (at off-tick times so every increment lands in a well-defined window).
  for (int i = 1; i <= 5; ++i)
    queue.schedule_in(i * 100 - 30, [&counter, &level, i] {
      counter += 50;
      level = 3 + i;
    });
  queue.run();
  sampler.stop();

  const auto* rate = sampler.find("rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_GE(rate->values.size(), 3u);
  // 50 events per 100 ns window, scaled to per-second: 5e8.
  EXPECT_NEAR(rate->values[1], 5e8, 1e-3);
  // The integral of the rate series recovers the counter's total growth.
  double integral = 0;
  sim::Time t_prev = 0;
  for (std::size_t i = 0; i < rate->at.size(); ++i) {
    integral += rate->values[i] * static_cast<double>(rate->at[i] - t_prev);
    t_prev = rate->at[i];
  }
  EXPECT_NEAR(integral / 1e9, counter, 1e-9);
  const auto* lvl = sampler.find("level");
  ASSERT_NE(lvl, nullptr);
  EXPECT_EQ(lvl->values.back(), level);
}

// ---------------------------------------------------------------------------
// Export

TEST(Export, JsonWriterEscapesAndNests) {
  std::ostringstream out;
  telemetry::JsonWriter w(out);
  w.begin_object();
  w.kv("plain", "a\"b\\c\n\t");
  w.key("arr");
  w.begin_array();
  w.value(std::int64_t{-3});
  w.value(2.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\"plain\": \"a\\\"b\\\\c\\n\\t\", \"arr\": [-3, 2.5, true, null]}");
  EXPECT_EQ(telemetry::json_quote("\x01"), "\"\\u0001\"");
}

TEST(Export, ClusterWriteJsonContainsSchemaCountersAndSeries) {
  auto cluster = core::make_fig8_cluster(/*itb_path=*/true);
  cluster->telemetry().start_sampling();
  workload::run_pingpong(cluster->queue(), cluster->port(core::kHost1),
                         cluster->port(core::kHost2), 512, 3);
  cluster->telemetry().stop_sampling();

  std::ostringstream out;
  cluster->telemetry().write_json(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"schema\": \"itb.telemetry.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\": "), std::string::npos);
  EXPECT_NE(doc.find("\"series\": "), std::string::npos);
  EXPECT_NE(doc.find("\"itb_forwarded\""), std::string::npos);
  EXPECT_NE(doc.find("channel_utilization"), std::string::npos);

  std::ostringstream csv;
  cluster->telemetry().write_series_csv(csv);
  EXPECT_NE(csv.str().find("series,host,channel,t_ns,value"),
            std::string::npos);
  EXPECT_NE(csv.str().find("channel_utilization"), std::string::npos);
}

TEST(Export, BenchReportRoundTrip) {
  telemetry::BenchReport report("unit_test_bench");
  report.set_param("seed", 7.0);
  report.set_param("mode", "fast");
  report.add_scalar("speedup", 2.25);
  telemetry::BenchReport::Row row;
  row.num["x"] = 1.0;
  row.text["label"] = "first";
  report.add_row("points", std::move(row));
  telemetry::LatencyHistogram hist;
  hist.record(10, 3);
  hist.record(1000, 1);
  report.add_histogram("latency", "run_a", hist);

  std::ostringstream out;
  report.write(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"schema\": \"itb.telemetry.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\": \"unit_test_bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"mode\": \"fast\""), std::string::npos);
  EXPECT_NE(doc.find("\"speedup\": 2.25"), std::string::npos);
  EXPECT_NE(doc.find("\"label\": \"first\""), std::string::npos);
  EXPECT_NE(doc.find("\"p50\": "), std::string::npos);
  EXPECT_NE(doc.find("\"run\": \"run_a\""), std::string::npos);
}

TEST(Export, JsonFlagParsing) {
  {
    const char* argv[] = {"bench", "--json", "out.json"};
    auto got = telemetry::json_flag(3, const_cast<char**>(argv));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "out.json");
  }
  {
    const char* argv[] = {"bench", "--json=other.json"};
    auto got = telemetry::json_flag(2, const_cast<char**>(argv));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "other.json");
  }
  {
    const char* argv[] = {"bench", "positional"};
    EXPECT_FALSE(telemetry::json_flag(2, const_cast<char**>(argv)).has_value());
  }
  {
    const char* argv[] = {"bench", "--json"};
    EXPECT_THROW(telemetry::json_flag(2, const_cast<char**>(argv)),
                 std::invalid_argument);
  }
}

}  // namespace
