// itb::svc — admission control, RPC endpoints, open-loop load (DESIGN.md
// §6h). Unit tests for the admission controller's BufferEON-style queue
// discipline and the header codec, end-to-end RPC over a real cluster, and
// the open-loop driver's patterns, trace replay, and determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "itb/core/cluster.hpp"
#include "itb/svc/openloop.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using svc::AdmissionConfig;
using svc::AdmissionController;
using svc::Priority;
using Outcome = svc::AdmissionController::Outcome;

// ------------------------------------------------------------- header --

TEST(RpcHeader, RoundTripsThroughEncode) {
  svc::RpcHeader h;
  h.kind = svc::RpcHeader::kResponse;
  h.cls = Priority::kBulk;
  h.client = 7;
  h.req_id = 0xDEADBEEF;
  h.issued_ns = 123456789;
  h.service_ns = 42 * sim::kUs;
  h.resp_bytes = 4096;
  h.admit_wait_ns = 777;
  h.service_span_ns = 888;
  const auto msg = h.encode(256);
  EXPECT_EQ(msg.size(), 256u);
  const auto d = svc::RpcHeader::decode(msg);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, svc::RpcHeader::kResponse);
  EXPECT_EQ(d->cls, Priority::kBulk);
  EXPECT_EQ(d->client, 7);
  EXPECT_EQ(d->req_id, 0xDEADBEEFu);
  EXPECT_EQ(d->issued_ns, 123456789u);
  EXPECT_EQ(d->service_ns, static_cast<std::uint64_t>(42 * sim::kUs));
  EXPECT_EQ(d->resp_bytes, 4096u);
  EXPECT_EQ(d->admit_wait_ns, 777u);
  EXPECT_EQ(d->service_span_ns, 888u);
}

TEST(RpcHeader, DecodeRejectsShortBuffers) {
  EXPECT_FALSE(svc::RpcHeader::decode(packet::Bytes{}).has_value());
  EXPECT_FALSE(
      svc::RpcHeader::decode(packet::Bytes(svc::RpcHeader::kSize - 1, 0))
          .has_value());
}

// ---------------------------------------------------------- admission --

TEST(Admission, ImmediateAdmitHoldsTokens) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 4;
  AdmissionController ac(q, cfg);
  EXPECT_EQ(ac.offer(Priority::kNormal, 3, nullptr), Outcome::kAdmitted);
  EXPECT_EQ(ac.tokens_free(), 1);
  ac.depart(3);
  EXPECT_EQ(ac.tokens_free(), 4);
  EXPECT_EQ(ac.stats().admitted_immediate, 1u);
  EXPECT_EQ(ac.stats().departures, 1u);
}

TEST(Admission, QueuedRequestAdmitsOnDepartureWithWaitCharged) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 2;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2, nullptr), Outcome::kAdmitted);
  sim::Time admitted_at = -1;
  ASSERT_EQ(ac.offer(Priority::kNormal, 1,
                     [&](sim::Time now, bool admitted) {
                       ASSERT_TRUE(admitted);
                       admitted_at = now;
                     }),
            Outcome::kQueued);
  EXPECT_EQ(ac.queue_depth(), 1u);
  q.schedule_at(500, [&] { ac.depart(2); });
  q.run();
  EXPECT_EQ(admitted_at, 500);
  EXPECT_EQ(ac.queue_depth(), 0u);
  EXPECT_EQ(ac.stats().admitted_from_queue, 1u);
  // Both admits land in the wait distribution: 0 for the immediate one,
  // the full 500 ns for the queued one (max is tracked exactly).
  EXPECT_EQ(ac.wait_hist(Priority::kNormal).count(), 2u);
  EXPECT_EQ(ac.wait_hist(Priority::kNormal).max(), 500u);
}

TEST(Admission, RejectsWhenBufferFull) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 1;
  cfg.queue_limit = 1;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kNormal, 1, nullptr), Outcome::kAdmitted);
  ASSERT_EQ(ac.offer(Priority::kNormal, 1, [](sim::Time, bool) {}),
            Outcome::kQueued);
  EXPECT_EQ(ac.offer(Priority::kNormal, 1, nullptr), Outcome::kRejected);
  EXPECT_EQ(ac.stats().rejected_full, 1u);
  EXPECT_NEAR(ac.stats().blocking_probability(), 1.0 / 3.0, 1e-9);
}

TEST(Admission, FirstFitSkipsOversizedHead) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 4;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2, nullptr), Outcome::kAdmitted);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2, nullptr), Outcome::kAdmitted);
  bool big_admitted = false, small_admitted = false;
  ASSERT_EQ(ac.offer(Priority::kNormal, 3,
                     [&](sim::Time, bool a) { big_admitted = a; }),
            Outcome::kQueued);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2,
                     [&](sim::Time, bool a) { small_admitted = a; }),
            Outcome::kQueued);
  // Two tokens return: the 3-token head does not fit, the 2-token entry
  // behind it does — first-fit admits it past the head.
  ac.depart(2);
  EXPECT_FALSE(big_admitted);
  EXPECT_TRUE(small_admitted);
  EXPECT_GE(ac.stats().first_fit_skips, 1u);
  EXPECT_EQ(ac.queue_depth(), 1u);
}

TEST(Admission, StrictFifoWithoutFirstFit) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 4;
  cfg.first_fit = false;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2, nullptr), Outcome::kAdmitted);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2, nullptr), Outcome::kAdmitted);
  bool small_admitted = false;
  ASSERT_EQ(ac.offer(Priority::kNormal, 3, [](sim::Time, bool) {}),
            Outcome::kQueued);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2,
                     [&](sim::Time, bool a) { small_admitted = a; }),
            Outcome::kQueued);
  ac.depart(2);
  // Head-of-line: the oversized head blocks everything behind it.
  EXPECT_FALSE(small_admitted);
  EXPECT_EQ(ac.queue_depth(), 2u);
  EXPECT_EQ(ac.stats().first_fit_skips, 0u);
}

TEST(Admission, HighPriorityEvictsNewestBulkWhenFull) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 1;
  cfg.queue_limit = 2;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kBulk, 1, nullptr), Outcome::kAdmitted);
  bool old_evicted = false, new_evicted = false;
  ASSERT_EQ(ac.offer(Priority::kBulk, 1,
                     [&](sim::Time, bool a) { old_evicted = !a; }),
            Outcome::kQueued);
  ASSERT_EQ(ac.offer(Priority::kBulk, 1,
                     [&](sim::Time, bool a) { new_evicted = !a; }),
            Outcome::kQueued);
  // Buffer full; a high arrival displaces the NEWEST entry of the lowest
  // queued class rather than being rejected.
  EXPECT_EQ(ac.offer(Priority::kHigh, 1, [](sim::Time, bool) {}),
            Outcome::kQueued);
  EXPECT_FALSE(old_evicted);
  EXPECT_TRUE(new_evicted);
  EXPECT_EQ(ac.stats().evicted, 1u);
  EXPECT_EQ(ac.queue_depth(), 2u);
}

TEST(Admission, NoEvictionWhenPreemptionDisabledOrNothingLower) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 1;
  cfg.queue_limit = 1;
  cfg.preemptive_queue = false;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kBulk, 1, nullptr), Outcome::kAdmitted);
  ASSERT_EQ(ac.offer(Priority::kBulk, 1, [](sim::Time, bool) {}),
            Outcome::kQueued);
  EXPECT_EQ(ac.offer(Priority::kHigh, 1, nullptr), Outcome::kRejected);

  AdmissionConfig cfg2;
  cfg2.capacity_tokens = 1;
  cfg2.queue_limit = 1;
  AdmissionController ac2(q, cfg2);
  ASSERT_EQ(ac2.offer(Priority::kHigh, 1, nullptr), Outcome::kAdmitted);
  ASSERT_EQ(ac2.offer(Priority::kHigh, 1, [](sim::Time, bool) {}),
            Outcome::kQueued);
  // A high arrival cannot evict a queued high entry (same class).
  EXPECT_EQ(ac2.offer(Priority::kHigh, 1, nullptr), Outcome::kRejected);
}

TEST(Admission, ArrivalsDoNotOvertakeQueuedSameClass) {
  sim::EventQueue q;
  AdmissionConfig cfg;
  cfg.capacity_tokens = 4;
  AdmissionController ac(q, cfg);
  ASSERT_EQ(ac.offer(Priority::kNormal, 3, nullptr), Outcome::kAdmitted);
  ASSERT_EQ(ac.offer(Priority::kNormal, 2, [](sim::Time, bool) {}),
            Outcome::kQueued);
  // One token is free and the new request would fit, but a same-class
  // request is already waiting: admitting would reorder the class FIFO.
  EXPECT_EQ(ac.offer(Priority::kNormal, 1, [](sim::Time, bool) {}),
            Outcome::kQueued);
  // A higher class with free tokens and no queued peer goes straight in.
  EXPECT_EQ(ac.offer(Priority::kHigh, 1, nullptr), Outcome::kAdmitted);
}

// -------------------------------------------------- rng + distributions --

TEST(SvcRng, StreamIsAPureFunctionOfItsArguments) {
  sim::Rng a = sim::Rng::stream(42, 3);
  sim::Rng b = sim::Rng::stream(42, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SvcRng, StreamsAreDecorrelated) {
  sim::Rng a = sim::Rng::stream(42, 0);
  sim::Rng b = sim::Rng::stream(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_EQ(equal, 0);
}

TEST(SvcRng, LognormalMatchesRequestedMean) {
  sim::Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_lognormal(1000.0, 1.0);
  EXPECT_NEAR(sum / n, 1000.0, 50.0);
}

TEST(SvcRng, BoundedParetoMatchesMeanAndRespectsBound) {
  sim::Rng rng(7);
  double sum = 0, mx = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_bounded_pareto(1000.0, 1.5, 100.0);
    sum += x;
    mx = std::max(mx, x);
    ASSERT_GT(x, 0.0);
  }
  EXPECT_NEAR(sum / n, 1000.0, 100.0);
  // Truncated at cap x scale; the scale is below the mean for alpha > 1.
  EXPECT_LE(mx, 100.0 * 1000.0);
}

// --------------------------------------------------------- end to end --

core::Cluster make_pair_cluster() {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(2, 1);
  return core::Cluster(std::move(cfg));
}

TEST(Rpc, CallCompletesWithExactLatencySplit) {
  auto c = make_pair_cluster();
  svc::EndpointConfig ec;
  svc::RpcEndpoint e0(c.queue(), c.port(0), ec);
  svc::RpcEndpoint e1(c.queue(), c.port(1), ec);
  svc::CallSpec spec;
  spec.dst = 1;
  spec.cls = Priority::kHigh;
  spec.service = 200 * sim::kUs;  // well inside the 1 ms high deadline
  spec.resp_bytes = 2048;
  ASSERT_TRUE(e0.client().call(spec));
  c.run();
  const auto& s = e0.client().slo().of(Priority::kHigh);
  EXPECT_EQ(s.issued, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.goodput_bytes, 2048u);
  ASSERT_EQ(s.total.count(), 1u);
  // total = admit + service + network, with an uncontended server: no
  // admission wait, the exact service span, a positive network residue.
  EXPECT_GE(s.total.max(), 200000u);
  EXPECT_EQ(s.admit.max(), 0u);
  EXPECT_EQ(s.service.max(), 200000u);
  EXPECT_GT(s.network.max(), 0u);
  EXPECT_EQ(e1.server().stats().requests, 1u);
  EXPECT_EQ(e1.server().stats().responses_sent, 1u);
}

TEST(Rpc, AdmissionRejectNacksAndClientRetries) {
  auto c = make_pair_cluster();
  svc::EndpointConfig ec;
  ec.server.admission.capacity_tokens = 1;
  ec.server.admission.queue_limit = 0;  // no buffer: reject outright
  ec.client.max_retries = 3;
  ec.client.reject_backoff = 500 * sim::kUs;
  svc::RpcEndpoint e0(c.queue(), c.port(0), ec);
  svc::RpcEndpoint e1(c.queue(), c.port(1), ec);
  svc::CallSpec spec;
  spec.dst = 1;
  spec.service = 300 * sim::kUs;
  ASSERT_TRUE(e0.client().call(spec));
  ASSERT_TRUE(e0.client().call(spec));  // concurrent: second gets NACKed
  c.run();
  const auto s = e0.client().slo().combined();
  EXPECT_EQ(s.completed, 2u);  // the retry eventually lands
  EXPECT_GE(s.rejected, 1u);
  EXPECT_GE(s.retries, 1u);
  EXPECT_GE(e1.server().stats().rejects_sent, 1u);
}

TEST(Rpc, DeadlineMissFailsAfterRetriesExhaust) {
  auto c = make_pair_cluster();
  svc::EndpointConfig ec;
  ec.client.deadlines = {200 * sim::kUs, 200 * sim::kUs, 200 * sim::kUs};
  ec.client.max_retries = 1;
  svc::RpcEndpoint e0(c.queue(), c.port(0), ec);
  svc::RpcEndpoint e1(c.queue(), c.port(1), ec);
  svc::CallSpec spec;
  spec.dst = 1;
  spec.service = 5 * sim::kMs;  // cannot meet a 200 us deadline
  ASSERT_TRUE(e0.client().call(spec));
  c.run();
  const auto s = e0.client().slo().combined();
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.goodput_bytes, 0u);
  // Both attempts' responses eventually arrive for a dead request id.
  EXPECT_GE(s.stale_responses, 1u);
  EXPECT_EQ(e0.client().pending(), 0u);
}

TEST(Rpc, PendingLimitRefusesCalls) {
  auto c = make_pair_cluster();
  svc::EndpointConfig ec;
  ec.client.pending_limit = 1;
  svc::RpcEndpoint e0(c.queue(), c.port(0), ec);
  svc::RpcEndpoint e1(c.queue(), c.port(1), ec);
  svc::CallSpec spec;
  spec.dst = 1;
  EXPECT_TRUE(e0.client().call(spec));
  EXPECT_FALSE(e0.client().call(spec));
  EXPECT_EQ(e0.client().slo().combined().client_refused, 1u);
  c.run();
  EXPECT_EQ(e0.client().slo().combined().completed, 1u);
}

// ----------------------------------------------------------- open loop --

struct Rig {
  core::Cluster cluster;
  std::vector<std::unique_ptr<svc::RpcEndpoint>> owned;
  std::vector<svc::RpcEndpoint*> endpoints;

  explicit Rig(const svc::EndpointConfig& ec = {})
      : cluster([] {
          core::ClusterConfig cfg;
          cfg.topology = topo::make_fig1_network();
          return core::Cluster(std::move(cfg));
        }()) {
    for (auto* port : cluster.ports()) {
      owned.push_back(std::make_unique<svc::RpcEndpoint>(cluster.queue(),
                                                         *port, ec));
      endpoints.push_back(owned.back().get());
    }
  }
};

TEST(OpenLoop, GeneratesTrafficAndCompletesCalls) {
  Rig rig;
  svc::OpenLoopConfig lc;
  lc.rate_rps = 2000;
  lc.duration = 5 * sim::kMs;
  svc::OpenLoopDriver d(rig.cluster.queue(), rig.endpoints, lc);
  d.start();
  rig.cluster.run();
  EXPECT_GT(d.stats().arrivals, 10u);
  EXPECT_EQ(d.stats().calls_issued + d.stats().calls_refused,
            d.stats().arrivals);
  const auto slo = d.merged_slo().combined();
  EXPECT_GT(slo.completed, 0u);
  EXPECT_EQ(slo.issued, d.stats().calls_issued);
}

TEST(OpenLoop, IncastTargetOnlyServes) {
  Rig rig;
  svc::OpenLoopConfig lc;
  lc.pattern = svc::SvcPattern::kIncast;
  lc.target_host = 0;
  lc.rate_rps = 1000;
  lc.duration = 3 * sim::kMs;
  svc::OpenLoopDriver d(rig.cluster.queue(), rig.endpoints, lc);
  d.start();
  rig.cluster.run();
  // The sink issues nothing; every request lands on it.
  EXPECT_EQ(rig.endpoints[0]->client().slo().combined().issued, 0u);
  std::uint64_t elsewhere = 0;
  for (std::size_t h = 1; h < rig.endpoints.size(); ++h)
    elsewhere += rig.endpoints[h]->server().stats().requests;
  EXPECT_EQ(elsewhere, 0u);
  EXPECT_GT(rig.endpoints[0]->server().stats().requests, 0u);
}

TEST(OpenLoop, AllToAllFansEveryArrivalOut) {
  Rig rig;
  svc::OpenLoopConfig lc;
  lc.pattern = svc::SvcPattern::kAllToAll;
  lc.rate_rps = 200;
  lc.duration = 3 * sim::kMs;
  svc::OpenLoopDriver d(rig.cluster.queue(), rig.endpoints, lc);
  d.start();
  rig.cluster.run();
  ASSERT_GT(d.stats().arrivals, 0u);
  EXPECT_EQ(d.stats().calls_issued + d.stats().calls_refused,
            d.stats().arrivals * (rig.endpoints.size() - 1));
}

TEST(OpenLoop, TraceReplayIssuesEveryEntry) {
  Rig rig;
  std::istringstream csv(
      "# t_ns,src,dst,cls,service_ns,resp_bytes\n"
      "200000,1,0,0,50000,256\n"
      "100000,0,1,2,50000,512\n"
      "300000,2,3,1,50000,1024\n");
  svc::OpenLoopConfig lc;
  lc.pattern = svc::SvcPattern::kTrace;
  lc.trace = svc::parse_trace_csv(csv);
  ASSERT_EQ(lc.trace.size(), 3u);
  // Parser sorts by arrival time.
  EXPECT_EQ(lc.trace[0].at, 100000);
  EXPECT_EQ(lc.trace[0].cls, Priority::kBulk);
  svc::OpenLoopDriver d(rig.cluster.queue(), rig.endpoints, lc);
  d.start();
  rig.cluster.run();
  EXPECT_EQ(d.stats().arrivals, 3u);
  EXPECT_EQ(d.stats().calls_issued, 3u);
  EXPECT_EQ(d.merged_slo().combined().completed, 3u);
  EXPECT_EQ(d.merged_slo().of(Priority::kBulk).goodput_bytes, 512u);
}

TEST(OpenLoop, TraceParserRejectsMalformedLines) {
  std::istringstream bad("100,0,1,9,50000,512\n");  // class out of range
  EXPECT_THROW(svc::parse_trace_csv(bad), std::invalid_argument);
  std::istringstream garbled("not,a,number\n");
  EXPECT_THROW(svc::parse_trace_csv(garbled), std::invalid_argument);
  try {
    std::istringstream two("100,0,1,0,5,64\nbroken\n");
    svc::parse_trace_csv(two);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(OpenLoop, DeterministicForSeed) {
  auto run_once = [] {
    Rig rig;
    svc::OpenLoopConfig lc;
    lc.arrivals = svc::ArrivalDist::kLognormal;
    lc.service = svc::ServiceDist::kBoundedPareto;
    lc.rate_rps = 3000;
    lc.duration = 4 * sim::kMs;
    lc.seed = 99;
    svc::OpenLoopDriver d(rig.cluster.queue(), rig.endpoints, lc);
    d.start();
    rig.cluster.run();
    const auto s = d.merged_slo().combined();
    return std::tuple{d.stats().arrivals, s.completed, s.goodput_bytes,
                      s.total.percentile(99)};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(OpenLoop, RequiresTwoEndpoints) {
  sim::EventQueue q;
  EXPECT_THROW(
      svc::OpenLoopDriver(q, std::vector<svc::RpcEndpoint*>{}, {}),
      std::invalid_argument);
}

}  // namespace
