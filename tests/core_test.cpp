// Integration tests over the Cluster facade and the paper's experiment
// presets (Fig. 6 testbed with the Fig. 7/8 measurement routes), plus the
// ping-pong and load harnesses.
#include <gtest/gtest.h>

#include "itb/core/experiments.hpp"
#include "itb/core/parallel.hpp"
#include "itb/workload/load.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;
using packet::Bytes;

TEST(Cluster, BuildsWithMapperAndDeliversTraffic) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  EXPECT_EQ(c.host_count(), 8u);
  EXPECT_NE(c.route_table(), nullptr);
  EXPECT_NE(c.mapper_report(), nullptr);
  EXPECT_TRUE(c.routes_deadlock_free());

  int delivered = 0;
  for (std::uint16_t h = 0; h < 8; ++h)
    c.port(h).set_receive_handler(
        [&](sim::Time, std::uint16_t, Bytes) { ++delivered; });
  for (std::uint16_t h = 0; h < 8; ++h)
    c.port(h).send(static_cast<std::uint16_t>((h + 3) % 8), Bytes(777, 1));
  c.run();
  EXPECT_EQ(delivered, 8);
}

TEST(Cluster, ManualRoutesSkipMapper) {
  auto c = core::make_fig7_cluster(true);
  EXPECT_EQ(c->route_table(), nullptr);
  EXPECT_EQ(c->mapper_report(), nullptr);
}

TEST(Cluster, InvalidTopologyThrows) {
  core::ClusterConfig cfg;
  cfg.topology.add_switch(4);
  cfg.topology.add_host();  // unattached
  EXPECT_THROW(core::Cluster c(std::move(cfg)), std::logic_error);
}

TEST(PingPong, ProducesPositiveLatency) {
  auto c = core::make_fig7_cluster(true);
  auto row = workload::run_pingpong(c->queue(), c->port(core::kHost1),
                                    c->port(core::kHost2), 64, 10);
  EXPECT_GT(row.half_rtt_ns, 0);
  EXPECT_GE(row.max_ns, row.min_ns);
  // Unloaded deterministic simulation: iterations are identical.
  EXPECT_DOUBLE_EQ(row.stddev_ns, 0.0);
}

TEST(PingPong, LatencyMonotonicInSize) {
  auto c = core::make_fig7_cluster(true);
  workload::AllsizeConfig cfg;
  cfg.iterations = 3;
  cfg.sizes = {8, 256, 4096, 16384};
  auto rows = workload::run_allsize(c->queue(), c->port(core::kHost1),
                                    c->port(core::kHost2), cfg);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GT(rows[i].half_rtt_ns, rows[i - 1].half_rtt_ns);
}

TEST(Fig7, ModifiedMcpOverheadSmallAndPositive) {
  // The headline Fig. 7 result: the ITB-capable MCP adds a small constant
  // to the receive path of every packet — the paper measured ~125 ns
  // average and < 300 ns.
  auto orig = core::make_fig7_cluster(false);
  auto mod = core::make_fig7_cluster(true);
  // Single-packet message sizes (multi-fragment messages pay the
  // per-packet overhead once per fragment).
  for (std::size_t size : {16u, 1024u, 4000u}) {
    auto a = workload::run_pingpong(orig->queue(), orig->port(core::kHost1),
                                    orig->port(core::kHost2), size, 5);
    auto b = workload::run_pingpong(mod->queue(), mod->port(core::kHost1),
                                    mod->port(core::kHost2), size, 5);
    const double overhead = b.half_rtt_ns - a.half_rtt_ns;
    EXPECT_GT(overhead, 0) << size;
    EXPECT_LT(overhead, 300) << size;
  }
}

TEST(Fig8, BothPathsCrossFiveSwitchesAndDeliver) {
  for (bool itb : {false, true}) {
    auto c = core::make_fig8_cluster(itb);
    Bytes got;
    c->port(core::kHost2)
        .set_receive_handler(
            [&](sim::Time, std::uint16_t, Bytes m) { got = std::move(m); });
    Bytes msg(333, 5);
    ASSERT_TRUE(c->port(core::kHost1).send(core::kHost2, msg));
    c->run();
    EXPECT_EQ(got, msg) << (itb ? "ITB" : "UD");
    if (itb) {
      EXPECT_GE(c->nic(core::kInTransit).stats().itb_forwarded, 1u);
    }
  }
}

TEST(Fig8, ItbOverheadAboutOneMicrosecondAndFlat) {
  // The headline Fig. 8 result: each ITB costs ~1.3 us, roughly flat in
  // message size. Methodology as in the paper: overhead = 2 * (half-RTT
  // with ITB - half-RTT without), since only the forward leg differs.
  std::vector<double> overheads;
  for (std::size_t size : {16u, 512u, 4096u}) {
    auto ud = core::make_fig8_cluster(false);
    auto itb = core::make_fig8_cluster(true);
    auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                    ud->port(core::kHost2), size, 5);
    auto b = workload::run_pingpong(itb->queue(), itb->port(core::kHost1),
                                    itb->port(core::kHost2), size, 5);
    overheads.push_back(2 * (b.half_rtt_ns - a.half_rtt_ns));
  }
  for (double o : overheads) {
    EXPECT_GT(o, 700.0);   // the prior-work estimate was ~0.5 us; measured
    EXPECT_LT(o, 2000.0);  // ~1.3 us on real hardware
  }
  // Flatness (virtual cut-through): sizes differ by 256x, overhead within
  // a few hundred ns.
  const auto [lo, hi] = std::minmax_element(overheads.begin(), overheads.end());
  EXPECT_LT(*hi - *lo, 500.0);
}

TEST(Load, UniformTrafficDeliversUnderLightLoad) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  workload::LoadConfig lc;
  lc.message_bytes = 256;
  lc.rate_msgs_per_s = 2000;  // light
  lc.warmup = 1 * sim::kMs;
  lc.measure = 5 * sim::kMs;
  auto result = workload::run_load(c.queue(), c.ports(), lc);
  EXPECT_GT(result.messages_delivered, 20u);
  EXPECT_GT(result.latency_mean_ns, 0);
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(Load, SaturationCapsAcceptedThroughput) {
  // Offered load far beyond capacity: accepted throughput must saturate
  // (send-token refusals appear) instead of diverging.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(2, 1);
  core::Cluster c(std::move(cfg));
  workload::LoadConfig lc;
  lc.message_bytes = 2048;
  lc.rate_msgs_per_s = 5e5;  // absurd
  lc.warmup = 500 * sim::kUs;
  lc.measure = 3 * sim::kMs;
  auto result = workload::run_load(c.queue(), c.ports(), lc);
  EXPECT_GT(result.sends_refused, 0u);
  // Wire limit is 160 MB/s per direction; two hosts exchanging traffic
  // full-duplex can accept at most ~320 MB/s in aggregate.
  EXPECT_LT(result.accepted_bytes_per_s, 330e6);
}

TEST(Load, DeterministicForSeed) {
  auto run_once = [] {
    core::ClusterConfig cfg;
    cfg.topology = topo::make_fig1_network();
    cfg.policy = routing::Policy::kUpDown;
    core::Cluster c(std::move(cfg));
    workload::LoadConfig lc;
    lc.rate_msgs_per_s = 3000;
    lc.warmup = 1 * sim::kMs;
    lc.measure = 3 * sim::kMs;
    lc.seed = 42;
    return workload::run_load(c.queue(), c.ports(), lc).messages_delivered;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Load, BackpressureRefusesSendsAndBoundsLatency) {
  // A tiny GM send-token pool under absurd offered load: the runner must
  // surface the backpressure as sends_refused (not queue unboundedly), and
  // the latency of the messages that DO go out must stay bounded — refusal
  // happens at call time, so accepted messages never sit in a client queue.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(2, 1);
  cfg.gm_config.send_tokens = 2;
  core::Cluster c(std::move(cfg));
  workload::LoadConfig lc;
  lc.message_bytes = 1024;
  lc.rate_msgs_per_s = 2e5;
  lc.warmup = 500 * sim::kUs;
  lc.measure = 3 * sim::kMs;
  auto result = workload::run_load(c.queue(), c.ports(), lc);
  EXPECT_GT(result.sends_refused, 100u);
  EXPECT_GT(result.messages_delivered, 0u);
  // With 2 tokens x 1 KB in flight, delivery latency is a few packet times,
  // nowhere near the measurement window.
  EXPECT_LT(result.latency_p999_ns, 1.0 * sim::kMs);
  EXPECT_GE(result.latency_p999_ns, result.latency_p99_ns);
}

TEST(Load, SweepResultsAreJobsInvariant) {
  // The motivation bench's --jobs guarantee, as a regression test: each
  // sweep point seeds per-host counter-style RNG streams, so results are
  // bit-identical no matter how many workers run the sweep.
  const std::vector<double> rates = {1e3, 3e3, 6e3};
  auto run_sweep = [&](unsigned jobs) {
    return core::run_sweep_parallel(
        rates.size(),
        [&](std::size_t i) {
          core::ClusterConfig cfg;
          cfg.topology = topo::make_fig1_network();
          core::Cluster c(std::move(cfg));
          workload::LoadConfig lc;
          lc.rate_msgs_per_s = rates[i];
          lc.warmup = 500 * sim::kUs;
          lc.measure = 2 * sim::kMs;
          lc.seed = 7;
          return workload::run_load(c.queue(), c.ports(), lc);
        },
        jobs);
  };
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].messages_delivered, parallel[i].messages_delivered);
    EXPECT_EQ(serial[i].sends_refused, parallel[i].sends_refused);
    EXPECT_DOUBLE_EQ(serial[i].latency_mean_ns, parallel[i].latency_mean_ns);
    EXPECT_DOUBLE_EQ(serial[i].latency_p999_ns, parallel[i].latency_p999_ns);
    EXPECT_DOUBLE_EQ(serial[i].accepted_bytes_per_s,
                     parallel[i].accepted_bytes_per_s);
  }
}

TEST(Load, PatternsAreSupported) {
  for (auto pattern : {workload::Pattern::kUniform, workload::Pattern::kHotspot,
                       workload::Pattern::kBitReversal}) {
    core::ClusterConfig cfg;
    cfg.topology = topo::make_fig1_network();
    cfg.policy = routing::Policy::kItb;
    core::Cluster c(std::move(cfg));
    workload::LoadConfig lc;
    lc.pattern = pattern;
    lc.rate_msgs_per_s = 1000;
    lc.warmup = 500 * sim::kUs;
    lc.measure = 2 * sim::kMs;
    auto result = workload::run_load(c.queue(), c.ports(), lc);
    EXPECT_GT(result.messages_delivered, 0u) << to_string(pattern);
  }
}

}  // namespace
