// Unit tests for the discrete-event core: event ordering, cancellation,
// clock semantics, RNG determinism and statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "itb/sim/event_queue.hpp"
#include "itb/sim/rng.hpp"
#include "itb/sim/stats.hpp"
#include "itb/sim/trace.hpp"

namespace {

using itb::sim::EventQueue;
using itb::sim::Histogram;
using itb::sim::Rng;
using itb::sim::RunningStats;
using itb::sim::SampledStats;
using itb::sim::Time;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) q.schedule_at(5, [&, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Time fired_at = -1;
  q.schedule_at(100, [&] { q.schedule_in(50, [&] { fired_at = q.now(); }); });
  q.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto id = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  auto id = q.schedule_at(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  auto id = q.schedule_at(10, [] {});
  q.run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RunUntilStopsAtHorizonAndAdvancesClock) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { ++count; });
  q.schedule_at(20, [&] { ++count; });
  q.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(q.run(25), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 25);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunEventsBoundsWork) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 5; ++i) q.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(q.run_events(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) q.schedule_in(1, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.now(), 99);
}

TEST(EventQueue, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  q.schedule_at(50, [] {});
  q.reset();
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.empty());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(7);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    auto d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(3);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampledStats, Percentiles) {
  SampledStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(SampledStats, PercentileEdgeCases) {
  SampledStats empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  SampledStats one;
  one.add(42.0);
  // A single sample is every percentile, including the boundaries.
  EXPECT_DOUBLE_EQ(one.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 42.0);

  SampledStats two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(50), 10.0);    // nearest rank: ceil(1) = 1
  EXPECT_DOUBLE_EQ(two.percentile(50.1), 20.0);  // ceil(1.002) = 2
  EXPECT_DOUBLE_EQ(two.percentile(100), 20.0);
  // Out-of-range and NaN inputs clamp instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(two.percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(250), 20.0);
  EXPECT_DOUBLE_EQ(two.percentile(std::nan("")), 10.0);
}

TEST(SampledStats, Merge) {
  SampledStats a, b;
  for (int i = 1; i <= 50; ++i) a.add(i);
  for (int i = 51; i <= 100; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 100.0);
  EXPECT_EQ(a.samples().size(), 100u);

  SampledStats into_empty;
  into_empty.merge(a);
  EXPECT_EQ(into_empty.count(), 100u);
  EXPECT_DOUBLE_EQ(into_empty.percentile(0), 1.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
}

TEST(Tracer, EmitOnlyWhenAttached) {
  itb::sim::Tracer tracer;
  int calls = 0;
  auto msg = [&] {
    ++calls;
    return std::string("x");
  };
  tracer.emit(0, itb::sim::TraceCategory::kNic, msg);
  EXPECT_EQ(calls, 0);
  std::string log;
  tracer.attach(itb::sim::Tracer::string_sink(log));
  tracer.emit(5, itb::sim::TraceCategory::kNic, msg);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(log, "5 [nic] x\n");
}

TEST(Time, ScaledBytesTimeRoundsUp) {
  // Myrinet: 1600 ns per 256 bytes = 6.25 ns/byte.
  EXPECT_EQ(itb::sim::scaled_bytes_time(256, 1600), 1600);
  EXPECT_EQ(itb::sim::scaled_bytes_time(4, 1600), 25);
  EXPECT_EQ(itb::sim::scaled_bytes_time(1, 1600), 7);  // 6.25 rounds up
  EXPECT_EQ(itb::sim::scaled_bytes_time(0, 1600), 0);
}

}  // namespace
