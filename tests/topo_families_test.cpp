// Routing behaviour across the canonical topology families (ring, mesh,
// star): where up*/down* hurts, where ITBs help, and end-to-end traffic on
// each shape.
#include <gtest/gtest.h>

#include "itb/core/cluster.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;

TEST(Ring, UpDownForbidsSomeMinimalPaths) {
  // A ring's single cycle guarantees at least one oriented "crossing" link
  // whose minimal paths are forbidden.
  auto t = topo::make_ring(6, 1);
  routing::UpDown ud(t);
  routing::Router r(ud);
  routing::RouteTable table(r, routing::Policy::kUpDown);
  EXPECT_LT(table.minimal_fraction(r), 1.0);
}

TEST(Ring, ItbRestoresMinimalityAndStaysDeadlockFree) {
  auto t = topo::make_ring(6, 1);
  routing::UpDown ud(t);
  routing::Router r(ud);
  routing::RouteTable table(r, routing::Policy::kItb);
  EXPECT_DOUBLE_EQ(table.minimal_fraction(r), 1.0);
  EXPECT_GT(table.average_itbs(), 0.0);
  routing::DependencyGraph g(t);
  g.add_table(table, t);
  EXPECT_FALSE(g.has_cycle());
}

TEST(Ring, TrafficFlowsUnderItbRouting) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_ring(6, 1);
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  int got = 0;
  for (std::uint16_t h = 0; h < 6; ++h)
    c.port(h).set_receive_handler(
        [&](sim::Time, std::uint16_t, packet::Bytes) { ++got; });
  for (std::uint16_t h = 0; h < 6; ++h)
    c.port(h).send(static_cast<std::uint16_t>((h + 3) % 6),
                   packet::Bytes(200, 1));
  c.run();
  EXPECT_EQ(got, 6);
}

TEST(Mesh, ItbShortensAverageRoutes) {
  auto t = topo::make_mesh(3, 3, 1);
  routing::UpDown ud(t);
  routing::Router r(ud);
  routing::RouteTable updown(r, routing::Policy::kUpDown);
  routing::RouteTable itb(r, routing::Policy::kItb);
  EXPECT_LE(itb.average_trunk_hops(), updown.average_trunk_hops());
  EXPECT_DOUBLE_EQ(itb.minimal_fraction(r), 1.0);
}

TEST(Mesh, MapperDiscoversMesh) {
  auto t = topo::make_mesh(3, 4, 2);
  auto report = mapper::discover(t, 0);
  EXPECT_EQ(report.switches_found(), 12u);
  EXPECT_EQ(report.hosts_found(), 24u);
}

TEST(Star, TreeTopologyNeedsNoItbs) {
  // A star (with no rim links) is a tree: every minimal path is already
  // up*/down*-legal, so the ITB table plants zero ITBs.
  auto t = topo::make_star(5, 2);
  routing::UpDown ud(t);
  routing::Router r(ud);
  routing::RouteTable table(r, routing::Policy::kItb);
  EXPECT_DOUBLE_EQ(table.average_itbs(), 0.0);
  EXPECT_DOUBLE_EQ(table.minimal_fraction(r), 1.0);
}

TEST(Star, EndToEndAcrossLeaves) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_star(4, 2);
  core::Cluster c(std::move(cfg));
  packet::Bytes got;
  c.port(7).set_receive_handler(
      [&](sim::Time, std::uint16_t, packet::Bytes m) { got = std::move(m); });
  packet::Bytes msg(1111, 0x42);
  ASSERT_TRUE(c.port(0).send(7, msg));
  c.run();
  EXPECT_EQ(got, msg);
}

TEST(Families, BestRootHelpsOnRings) {
  // Root choice changes which ring paths are forbidden; the optimiser must
  // never do worse than the default.
  for (std::uint16_t n : {5, 6, 9}) {
    auto t = topo::make_ring(n, 1);
    const auto best = routing::select_best_root(t);
    auto avg = [&](std::uint16_t root) {
      routing::UpDown ud(t, root);
      routing::Router r(ud);
      return routing::RouteTable(r, routing::Policy::kUpDown)
          .average_trunk_hops();
    };
    EXPECT_LE(avg(best), avg(0) + 1e-12) << "ring " << n;
  }
}

}  // namespace
