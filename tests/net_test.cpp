// Tests for the wormhole network model: cut-through timing, channel
// holding, FIFO arbitration, LAN/SAN port penalties, receive gating and the
// Early-Recv hook timing.
#include <gtest/gtest.h>

#include <vector>

#include "itb/net/network.hpp"
#include "itb/packet/format.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using net::Network;
using net::TxHandle;
using packet::Bytes;

/// Records every hook invocation for assertions.
class Recorder : public net::HostHooks {
 public:
  struct Event {
    std::string kind;
    sim::Time t;
    TxHandle h;
  };
  std::vector<Event> events;
  std::vector<net::WirePacket> packets;
  Bytes last_head4;

  void on_rx_head(sim::Time t, TxHandle h) override {
    events.push_back({"head", t, h});
  }
  void on_rx_early_header(sim::Time t, TxHandle h, const Bytes& head4) override {
    events.push_back({"early", t, h});
    last_head4 = head4;
  }
  void on_rx_complete(sim::Time t, net::WirePacket p) override {
    events.push_back({"complete", t, p.handle});
    packets.push_back(std::move(p));
  }
  void on_tx_started(sim::Time t, TxHandle h) override {
    events.push_back({"tx_start", t, h});
  }
  void on_tx_complete(sim::Time t, TxHandle h) override {
    events.push_back({"tx_done", t, h});
  }
  void on_tx_dropped(sim::Time t, TxHandle h) override {
    events.push_back({"tx_drop", t, h});
  }

  sim::Time time_of(const std::string& kind, TxHandle h) const {
    for (const auto& e : events)
      if (e.kind == kind && e.h == h) return e.t;
    return -1;
  }
  bool has(const std::string& kind, TxHandle h) const {
    return time_of(kind, h) >= 0;
  }
};

/// Two hosts on one switch: h0 -> s0 port 1, h1 -> s0 port 2.
struct OneSwitchRig {
  topo::Topology topo;
  sim::EventQueue queue;
  sim::Tracer tracer;
  net::NetTiming timing;
  std::unique_ptr<Network> net;
  Recorder h0, h1;

  OneSwitchRig() {
    topo.add_switch(8);
    topo.add_host();
    topo.add_host();
    topo.attach_host(0, 0, 1, topo::PortKind::kSan);
    topo.attach_host(1, 0, 2, topo::PortKind::kSan);
    net = std::make_unique<Network>(topo, timing, queue, tracer);
    net->attach_host(0, &h0);
    net->attach_host(1, &h1);
  }

  Bytes gm_packet(std::uint8_t out_port, std::size_t payload_len) {
    return packet::build_packet({out_port}, packet::PacketType::kGm,
                                Bytes(payload_len, 0xAB));
  }
};

TEST(Network, DeliversPacketWithRouteConsumed) {
  OneSwitchRig rig;
  auto h = rig.net->inject(0, rig.gm_packet(2, 16));
  rig.queue.run();
  ASSERT_EQ(rig.h1.packets.size(), 1u);
  const auto& pkt = rig.h1.packets[0];
  EXPECT_EQ(pkt.handle, h);
  EXPECT_EQ(pkt.src_host, 0);
  EXPECT_EQ(packet::leading_route_bytes(pkt.bytes), 0u);
  EXPECT_TRUE(packet::verify_crc(pkt.bytes));
  EXPECT_EQ(rig.net->stats().delivered, 1u);
  EXPECT_EQ(rig.net->in_flight(), 0u);
}

TEST(Network, UnloadedLatencyComposition) {
  OneSwitchRig rig;
  const std::size_t payload = 64;
  auto pkt = rig.gm_packet(2, payload);
  const auto total = static_cast<std::int64_t>(pkt.size());
  auto h = rig.net->inject(0, pkt);
  rig.queue.run();
  const auto& tm = rig.timing;
  // Head: 2 link crossings (hop = latency + 1 byte) + 1 SAN fall-through.
  const sim::Time pipe = 2 * (tm.link_latency_ns + tm.byte_time(1)) +
                         tm.switch_fallthrough_ns;
  EXPECT_EQ(rig.h1.time_of("head", h), pipe);
  // Tail: pipelined behind the head, but not before the source finished
  // streaming (data_ready = byte_time(total)) plus the pipe latency. One
  // route byte was consumed en route.
  const sim::Time tail =
      std::max(pipe + tm.byte_time(total - 1 - 1), tm.byte_time(total) + pipe);
  EXPECT_EQ(rig.h1.time_of("complete", h), tail);
}

TEST(Network, EarlyHeaderFiresAtFourBytes) {
  OneSwitchRig rig;
  auto h = rig.net->inject(0, rig.gm_packet(2, 32));
  rig.queue.run();
  const auto head = rig.h1.time_of("head", h);
  EXPECT_EQ(rig.h1.time_of("early", h), head + rig.timing.byte_time(3));
  // The snapshot holds the leading type bytes, not route bytes.
  ASSERT_GE(rig.h1.last_head4.size(), 2u);
  auto parsed = packet::parse_head(rig.h1.last_head4);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, packet::PacketType::kGm);
}

TEST(Network, TxCompleteBeforeOrAtDelivery) {
  OneSwitchRig rig;
  auto h = rig.net->inject(0, rig.gm_packet(2, 512));
  rig.queue.run();
  const auto tx_done = rig.h0.time_of("tx_done", h);
  const auto complete = rig.h1.time_of("complete", h);
  ASSERT_GE(tx_done, 0);
  EXPECT_LE(tx_done, complete);
  // Sender streamed the full packet: at least len * byte_time.
  EXPECT_GE(tx_done, rig.timing.byte_time(
                         static_cast<std::int64_t>(rig.gm_packet(2, 512).size())));
}

TEST(Network, SecondInjectionWaitsForUplinkChannel) {
  OneSwitchRig rig;
  auto a = rig.net->inject(0, rig.gm_packet(2, 1024));
  auto b = rig.net->inject(0, rig.gm_packet(2, 16));
  rig.queue.run();
  // FIFO: the small packet leaves only after the big one's tail.
  EXPECT_LT(rig.h1.time_of("complete", a), rig.h1.time_of("complete", b));
  EXPECT_GE(rig.net->stats().head_blocks, 1u);
}

TEST(Network, ContentionOnSharedDestinationSerialises) {
  // h0 and h2 both send to h1; the channel into h1 serialises them.
  topo::Topology topo;
  topo.add_switch(8);
  for (int i = 0; i < 3; ++i) topo.add_host();
  topo.attach_host(0, 0, 1);
  topo.attach_host(1, 0, 2);
  topo.attach_host(2, 0, 3);
  sim::EventQueue queue;
  sim::Tracer tracer;
  Network net(topo, {}, queue, tracer);
  Recorder r0, r1, r2;
  net.attach_host(0, &r0);
  net.attach_host(1, &r1);
  net.attach_host(2, &r2);
  auto pkt = packet::build_packet({2}, packet::PacketType::kGm, Bytes(256, 1));
  net.inject(0, pkt);
  net.inject(2, pkt);
  queue.run();
  ASSERT_EQ(r1.packets.size(), 2u);
  // Deliveries must not overlap: second head >= first tail.
  const auto t0 = r1.events;
  sim::Time first_complete = -1, second_head = -1;
  int heads = 0;
  for (const auto& e : t0) {
    if (e.kind == "head" && ++heads == 2) second_head = e.t;
    if (e.kind == "complete" && first_complete < 0) first_complete = e.t;
  }
  EXPECT_GE(second_head, first_complete);
}

TEST(Network, RxGateBlocksDeliveryUntilReady) {
  OneSwitchRig rig;
  rig.net->set_host_rx_ready(1, false);
  auto h = rig.net->inject(0, rig.gm_packet(2, 16));
  rig.queue.run(1'000'000);
  EXPECT_FALSE(rig.h1.has("complete", h));
  EXPECT_EQ(rig.net->in_flight(), 1u);
  rig.net->set_host_rx_ready(1, true);
  rig.queue.run();
  EXPECT_TRUE(rig.h1.has("complete", h));
}

TEST(Network, BackpressurePropagatesUpstream) {
  // While h1 is not ready, a packet to it occupies the h0->s0 channel, so
  // a later packet from h0 to h1 cannot even start.
  OneSwitchRig rig;
  rig.net->set_host_rx_ready(1, false);
  auto a = rig.net->inject(0, rig.gm_packet(2, 64));
  auto b = rig.net->inject(0, rig.gm_packet(2, 64));
  rig.queue.run(1'000'000);
  EXPECT_FALSE(rig.h0.has("tx_start", b));
  rig.net->set_host_rx_ready(1, true);
  rig.queue.run();
  EXPECT_TRUE(rig.h1.has("complete", a));
  EXPECT_TRUE(rig.h1.has("complete", b));
}

TEST(Network, LanPortsAddFallThroughPenalty) {
  // Same shape as OneSwitchRig but the destination link is a LAN link.
  topo::Topology topo;
  topo.add_switch(8);
  topo.add_host();
  topo.add_host();
  topo.attach_host(0, 0, 1, topo::PortKind::kSan);
  topo.attach_host(1, 0, 2, topo::PortKind::kLan);
  sim::EventQueue queue;
  sim::Tracer tracer;
  net::NetTiming tm;
  Network net(topo, tm, queue, tracer);
  Recorder r0, r1;
  net.attach_host(0, &r0);
  net.attach_host(1, &r1);
  auto h = net.inject(0, packet::build_packet({2}, packet::PacketType::kGm,
                                              Bytes(8, 0)));
  queue.run();
  const sim::Time san_head = 2 * (tm.link_latency_ns + tm.byte_time(1)) +
                             tm.switch_fallthrough_ns;
  EXPECT_EQ(r1.time_of("head", h), san_head + tm.lan_port_penalty_ns);
}

TEST(Network, MalformedRouteIsDropped) {
  OneSwitchRig rig;
  // Port 7 is unconnected on the switch.
  auto h = rig.net->inject(0, rig.gm_packet(7, 8));
  rig.queue.run();
  EXPECT_TRUE(rig.h0.has("tx_drop", h));
  EXPECT_EQ(rig.net->stats().dropped, 1u);
  EXPECT_EQ(rig.net->in_flight(), 0u);
}

TEST(Network, MissingRouteByteIsDropped) {
  OneSwitchRig rig;
  // No route byte at all: the switch cannot pick an output port.
  auto pkt = packet::build_packet({}, packet::PacketType::kGm, Bytes(8, 0));
  auto h = rig.net->inject(0, pkt);
  rig.queue.run();
  EXPECT_TRUE(rig.h0.has("tx_drop", h));
}

TEST(Network, DataReadyDelaysTail) {
  // A cut-through injection whose source data is only ready far in the
  // future must not complete before data_ready + pipe latency.
  OneSwitchRig rig;
  const sim::Time ready = 1'000'000;
  auto h = rig.net->inject(0, rig.gm_packet(2, 128), ready);
  rig.queue.run();
  EXPECT_GT(rig.h1.time_of("complete", h), ready);
  EXPECT_TRUE(rig.h1.has("head", h));
  EXPECT_LT(rig.h1.time_of("head", h), ready);  // head still cut through
}

TEST(Network, PeekRxVisibleBetweenHeadAndCompletion) {
  OneSwitchRig rig;
  std::optional<bool> peek_ok;
  // Check from inside the early-header hook via a scheduled probe.
  auto h = rig.net->inject(0, rig.gm_packet(2, 256));
  rig.queue.schedule_at(rig.timing.byte_time(40), [&] {
    auto p = rig.net->peek_rx(h);
    peek_ok = p.has_value() && !p->bytes->empty() && p->tail_time > 0;
  });
  rig.queue.run();
  ASSERT_TRUE(peek_ok.has_value());
  EXPECT_TRUE(*peek_ok);
  EXPECT_FALSE(rig.net->peek_rx(h).has_value());  // gone after delivery
}

TEST(Network, ChannelBusyAccounting) {
  OneSwitchRig rig;
  rig.net->inject(0, rig.gm_packet(2, 100));
  rig.queue.run();
  sim::Duration total = 0;
  for (auto ns : rig.net->channel_busy_ns()) total += ns;
  EXPECT_GT(total, 0);
}

TEST(Network, SelfLoopCableRoutesBackIntoSwitch) {
  // A packet can leave through one port of a switch self-cable and re-enter
  // through the other (Fig. 8's "loop in switch 2").
  topo::Topology topo;
  topo.add_switch(8);
  topo.add_host();
  topo.add_host();
  topo.attach_host(0, 0, 0);
  topo.attach_host(1, 0, 1);
  topo.connect({topo::switch_id(0), 4}, {topo::switch_id(0), 5});
  sim::EventQueue queue;
  sim::Tracer tracer;
  Network net(topo, {}, queue, tracer);
  Recorder r0, r1;
  net.attach_host(0, &r0);
  net.attach_host(1, &r1);
  // Route: s0 out port 4 (self cable, re-enters on 5), then out port 1.
  auto pkt = packet::build_packet({4, 1}, packet::PacketType::kGm, Bytes(8, 0));
  auto h = net.inject(0, pkt);
  queue.run();
  EXPECT_TRUE(r1.has("complete", h));
  // Two switch traversals happened: two fall-throughs in the head time.
  net::NetTiming tm;
  EXPECT_EQ(r1.time_of("head", h),
            3 * (tm.link_latency_ns + tm.byte_time(1)) +
                2 * tm.switch_fallthrough_ns);
}

TEST(Network, InjectFromUnattachedHostThrows) {
  topo::Topology topo;
  topo.add_switch(4);
  topo.add_host();
  topo.attach_host(0, 0, 0);
  sim::EventQueue queue;
  sim::Tracer tracer;
  Network net(topo, {}, queue, tracer);
  EXPECT_THROW(net.inject(0, Bytes{0x81}), std::logic_error);
}

TEST(Network, EmptyPacketThrows) {
  OneSwitchRig rig;
  EXPECT_THROW(rig.net->inject(0, Bytes{}), std::invalid_argument);
}

TEST(Network, DoubleAttachThrows) {
  OneSwitchRig rig;
  Recorder extra;
  EXPECT_THROW(rig.net->attach_host(0, &extra), std::logic_error);
}

}  // namespace
