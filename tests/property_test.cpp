// Property-based suites: the DESIGN.md invariants checked across sweeps of
// random topologies, seeds, message sizes and fault rates (parameterised
// gtest, one instantiation axis per sweep).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "itb/core/cluster.hpp"
#include "itb/mapper/mapper.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;
using packet::Bytes;

topo::Topology random_topo(std::uint64_t seed, std::uint16_t switches = 10,
                           std::uint8_t hosts = 2) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = switches;
  spec.hosts_per_switch = hosts;
  return topo::make_random_irregular(spec, rng);
}

// ------------------------------------------------- routing invariants ----

class RoutingInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingInvariants, UpDownRoutesNeverTurnUpAfterDown) {
  auto t = random_topo(GetParam());
  routing::UpDown ud(t);
  routing::Router r(ud);
  for (std::uint16_t s = 0; s < t.host_count(); s += 2)
    for (std::uint16_t d = 1; d < t.host_count(); d += 2) {
      if (s == d) continue;
      EXPECT_TRUE(r.is_valid_updown(r.updown_route(s, d).trunk_channels));
    }
}

TEST_P(RoutingInvariants, ItbRoutesAreMinimal) {
  // Every switch has hosts in these fabrics, so ITB legalisation reaches
  // the unrestricted minimum for every pair.
  auto t = random_topo(GetParam());
  routing::UpDown ud(t);
  routing::Router r(ud);
  for (std::uint16_t s = 0; s < t.host_count(); s += 2)
    for (std::uint16_t d = 1; d < t.host_count(); d += 2) {
      if (s == d) continue;
      EXPECT_EQ(r.itb_route(s, d).trunk_hops(), r.minimal_distance(s, d));
    }
}

TEST_P(RoutingInvariants, ItbSegmentsEachValidAndChainConsistent) {
  auto t = random_topo(GetParam());
  routing::UpDown ud(t);
  routing::Router r(ud);
  for (std::uint16_t s = 0; s < t.host_count(); s += 3)
    for (std::uint16_t d = 2; d < t.host_count(); d += 3) {
      if (s == d) continue;
      auto p = r.itb_route(s, d);
      ASSERT_EQ(p.segments.size(), p.in_transit_hosts.size() + 1);
      std::size_t cursor = 0;
      for (const auto& seg : p.segments) {
        ASSERT_GE(seg.size(), 1u);
        std::vector<topo::Channel> chain(
            p.trunk_channels.begin() + static_cast<std::ptrdiff_t>(cursor),
            p.trunk_channels.begin() +
                static_cast<std::ptrdiff_t>(cursor + seg.size() - 1));
        EXPECT_TRUE(r.is_valid_updown(chain));
        cursor += seg.size() - 1;
      }
      EXPECT_EQ(cursor, p.trunk_channels.size());
    }
}

TEST_P(RoutingInvariants, BothTablesDeadlockFree) {
  auto t = random_topo(GetParam());
  routing::UpDown ud(t);
  routing::Router r(ud);
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    routing::RouteTable table(r, policy);
    routing::DependencyGraph g(t);
    g.add_table(table, t);
    EXPECT_FALSE(g.has_cycle()) << to_string(policy);
  }
}

TEST_P(RoutingInvariants, RoutesExecuteToDestination) {
  auto t = random_topo(GetParam());
  auto result = mapper::run(t, routing::Policy::kItb);
  const auto& disc = result.report.discovered;
  for (std::uint16_t s = 0; s < t.host_count(); s += 2)
    for (std::uint16_t d = 1; d < t.host_count(); d += 2) {
      if (s == d) continue;
      const auto& path = result.table.route(s, d);
      auto cur = disc.host_uplink(s);
      for (std::size_t seg = 0; seg < path.segments.size(); ++seg) {
        if (seg > 0) cur = disc.host_uplink(path.in_transit_hosts[seg - 1]);
        for (auto port : path.segments[seg]) {
          auto peer = disc.peer(cur.node, port);
          ASSERT_TRUE(peer.has_value());
          cur = *peer;
        }
      }
      EXPECT_EQ(cur.node, topo::host_id(d));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingInvariants,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// ------------------------------------------------- delivery invariants ---

struct DeliveryCase {
  std::uint64_t seed;
  routing::Policy policy;
};

class DeliveryInvariants : public ::testing::TestWithParam<DeliveryCase> {};

TEST_P(DeliveryInvariants, EveryHostPairExchangesIntactPayloads) {
  const auto& param = GetParam();
  core::ClusterConfig cfg;
  cfg.topology = random_topo(param.seed, 6, 2);
  cfg.policy = param.policy;
  core::Cluster c(std::move(cfg));
  const auto n = static_cast<std::uint16_t>(c.host_count());

  // Each host sends a distinctive payload to every other; receivers check
  // content integrity and tally per-source counts.
  std::vector<std::map<std::uint16_t, int>> got(n);
  for (std::uint16_t h = 0; h < n; ++h) {
    c.port(h).set_receive_handler(
        [&, h](sim::Time, std::uint16_t src, Bytes m) {
          ASSERT_GE(m.size(), 2u);
          EXPECT_EQ(m[0], static_cast<std::uint8_t>(src));
          EXPECT_EQ(m[1], static_cast<std::uint8_t>(h));
          ++got[h][src];
        });
  }
  for (std::uint16_t s = 0; s < n; ++s)
    for (std::uint16_t d = 0; d < n; ++d) {
      if (s == d) continue;
      Bytes msg(64 + s + d, 0);
      msg[0] = static_cast<std::uint8_t>(s);
      msg[1] = static_cast<std::uint8_t>(d);
      ASSERT_TRUE(c.port(s).send(d, std::move(msg)));
    }
  c.run();
  for (std::uint16_t h = 0; h < n; ++h) {
    for (std::uint16_t s = 0; s < n; ++s) {
      if (s == h) continue;
      EXPECT_EQ(got[h][s], 1) << "h" << h << " from h" << s;
    }
  }
  // Conservation: nothing remains in flight, no drops in backpressure mode.
  EXPECT_EQ(c.network().in_flight(), 0u);
  EXPECT_EQ(c.network().stats().dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, DeliveryInvariants,
    ::testing::Values(DeliveryCase{1, routing::Policy::kUpDown},
                      DeliveryCase{1, routing::Policy::kItb},
                      DeliveryCase{2, routing::Policy::kUpDown},
                      DeliveryCase{2, routing::Policy::kItb},
                      DeliveryCase{3, routing::Policy::kItb},
                      DeliveryCase{4, routing::Policy::kItb}));

// --------------------------------------------------- latency properties --

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, PayloadIntegrityAcrossItbChain) {
  // Messages of every size cross a route with an ITB and arrive intact.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  Bytes msg(GetParam());
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i * 131 + 7);
  Bytes got;
  c.port(1).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { got = std::move(m); });
  ASSERT_TRUE(c.port(4).send(1, msg));
  c.run();
  EXPECT_EQ(got, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 64, 1000, 4072,
                                           4073, 4074, 8146, 12345, 16384));

class TimingMonotonic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimingMonotonic, HalfRttIncreasesWithSizeOnRandomFabrics) {
  core::ClusterConfig cfg;
  cfg.topology = random_topo(GetParam(), 5, 2);
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  const auto far = static_cast<std::uint16_t>(c.host_count() - 1);
  double prev = 0;
  for (std::size_t size : {8u, 128u, 2048u, 8192u}) {
    auto row = workload::run_pingpong(c.queue(), c.port(0), c.port(far), size, 2);
    EXPECT_GT(row.half_rtt_ns, prev);
    prev = row.half_rtt_ns;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingMonotonic, ::testing::Values(11, 22, 33));

// --------------------------------------------------- mapper properties ---

class MapperSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperSweep, DiscoveryIsExactForEverySeed) {
  auto t = random_topo(GetParam(), 12, 2);
  for (std::uint16_t root = 0; root < t.host_count();
       root = static_cast<std::uint16_t>(root + 7)) {
    auto report = mapper::discover(t, root);
    EXPECT_EQ(report.switches_found(), t.switch_count());
    EXPECT_EQ(report.hosts_found(), t.host_count());
    EXPECT_EQ(report.discovered.link_count(), t.link_count());
    // Every true switch appears exactly once in the discovery order.
    std::set<std::uint16_t> seen(report.switch_of.begin(),
                                 report.switch_of.end());
    EXPECT_EQ(seen.size(), t.switch_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperSweep,
                         ::testing::Values(7, 17, 27, 37, 47));

}  // namespace
