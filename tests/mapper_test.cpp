// Tests for the mapper: discovery walk fidelity, probe accounting, and the
// route tables it produces (valid on the real fabric by construction).
#include <gtest/gtest.h>

#include "itb/mapper/mapper.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;

TEST(Mapper, DiscoversLinearChain) {
  auto fabric = topo::make_linear(4, 2);
  auto report = mapper::discover(fabric, 0);
  EXPECT_EQ(report.switches_found(), 4u);
  EXPECT_EQ(report.hosts_found(), 8u);
  EXPECT_EQ(report.discovered.link_count(), fabric.link_count());
  EXPECT_NO_THROW(report.discovered.validate());
}

TEST(Mapper, ProbeCountEqualsPortScans) {
  // The walk sends one probe out of every port of every discovered switch.
  auto fabric = topo::make_linear(3, 1);
  auto report = mapper::discover(fabric, 0);
  EXPECT_EQ(report.probes_sent, 3u * 8u);
}

TEST(Mapper, DiscoversFig1Network) {
  auto fabric = topo::make_fig1_network();
  auto report = mapper::discover(fabric, 0);
  EXPECT_EQ(report.switches_found(), 8u);
  EXPECT_EQ(report.hosts_found(), 8u);
  EXPECT_EQ(report.discovered.link_count(), fabric.link_count());
}

TEST(Mapper, DiscoversPaperTestbedWithSelfCable) {
  auto fabric = topo::make_paper_testbed();
  auto report = mapper::discover(fabric, 0);
  EXPECT_EQ(report.switches_found(), 2u);
  EXPECT_EQ(report.hosts_found(), 3u);
  EXPECT_EQ(report.discovered.link_count(), fabric.link_count());
}

TEST(Mapper, DiscoveryOrderIndependentOfRoot) {
  auto fabric = topo::make_fig1_network();
  for (std::uint16_t root = 0; root < fabric.host_count(); ++root) {
    auto report = mapper::discover(fabric, root);
    EXPECT_EQ(report.switches_found(), 8u) << "root " << root;
    EXPECT_EQ(report.hosts_found(), 8u) << "root " << root;
  }
}

TEST(Mapper, PreservesPortKinds) {
  auto fabric = topo::make_paper_testbed();
  auto report = mapper::discover(fabric, 0);
  // host1's link must still be a LAN link in the discovered fabric.
  auto lid = report.discovered.link_at(topo::host_id(0), 0);
  ASSERT_TRUE(lid.has_value());
  EXPECT_EQ(report.discovered.link(*lid).kind, topo::PortKind::kLan);
}

TEST(Mapper, RandomFabricsRoundTrip) {
  sim::Rng rng(314);
  for (int trial = 0; trial < 6; ++trial) {
    topo::IrregularSpec spec;
    spec.switches = 14;
    spec.hosts_per_switch = 2;
    auto fabric = topo::make_random_irregular(spec, rng);
    auto report = mapper::discover(fabric, 3);
    EXPECT_EQ(report.switches_found(), fabric.switch_count());
    EXPECT_EQ(report.hosts_found(), fabric.host_count());
    EXPECT_EQ(report.discovered.link_count(), fabric.link_count());
  }
}

TEST(Mapper, BadRootThrows) {
  auto fabric = topo::make_linear(2, 1);
  EXPECT_THROW(mapper::discover(fabric, 99), std::invalid_argument);
}

/// Execute a route (list of segments) over the REAL fabric and return the
/// final node, re-entering at in-transit hosts as the MCP would.
topo::NodeId execute_route(const topo::Topology& fabric, std::uint16_t src,
                           const std::vector<packet::Route>& segments) {
  auto cur = fabric.host_uplink(src);
  for (std::size_t seg = 0; seg < segments.size(); ++seg) {
    if (seg > 0) {
      // Re-injected from the host the previous segment ended at.
      if (cur.node.kind != topo::NodeKind::kHost) return cur.node;
      cur = fabric.host_uplink(cur.node.index);
    }
    for (auto port : segments[seg]) {
      auto peer = fabric.peer(cur.node, port);
      if (!peer) return cur.node;  // dangling: would be dropped
      cur = *peer;
    }
  }
  return cur.node;
}

TEST(Mapper, ComputedRoutesExecuteOnRealFabric) {
  // The mapper only ever sees its own discovered graph; its routes must
  // nevertheless steer packets correctly on the true fabric.
  sim::Rng rng(77);
  topo::IrregularSpec spec;
  spec.switches = 10;
  spec.hosts_per_switch = 2;
  auto fabric = topo::make_random_irregular(spec, rng);
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    auto result = mapper::run(fabric, policy, /*root_host=*/5);
    for (std::uint16_t s = 0; s < fabric.host_count(); ++s)
      for (std::uint16_t d = 0; d < fabric.host_count(); ++d) {
        if (s == d) continue;
        const auto& path = result.table.route(s, d);
        EXPECT_EQ(execute_route(fabric, s, path.segments), topo::host_id(d))
            << to_string(policy) << " " << s << "->" << d;
      }
  }
}

TEST(Mapper, ItbTableFromMapperIsDeadlockFree) {
  sim::Rng rng(99);
  topo::IrregularSpec spec;
  spec.switches = 12;
  spec.hosts_per_switch = 2;
  auto fabric = topo::make_random_irregular(spec, rng);
  auto result = mapper::run(fabric, routing::Policy::kItb);
  routing::DependencyGraph graph(result.report.discovered);
  graph.add_table(result.table, result.report.discovered);
  EXPECT_FALSE(graph.has_cycle());
}

TEST(Mapper, UnreachableHostThrows) {
  topo::Topology t;
  t.add_switch(4);
  t.add_switch(4);  // disconnected from switch 0
  t.add_host();
  t.add_host();
  t.attach_host(0, 0, 0);
  t.attach_host(1, 1, 0);
  EXPECT_THROW(mapper::discover(t, 0), std::logic_error);
}

}  // namespace
