// SlabPool / FlatFifo unit + property tests, and the zero-allocation
// steady-state oracle for the pooled network hot path (DESIGN.md §6i).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "itb/net/network.hpp"
#include "itb/packet/format.hpp"
#include "itb/sim/alloc_hook.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/flat_fifo.hpp"
#include "itb/sim/slab_pool.hpp"
#include "itb/sim/trace.hpp"
#include "itb/topo/topology.hpp"

namespace {

using namespace itb;

TEST(SlabPool, AcquireReleaseRoundTrip) {
  sim::SlabPool<int> pool;
  auto [h, p] = pool.acquire();
  *p = 42;
  EXPECT_TRUE(static_cast<bool>(h));
  EXPECT_EQ(pool.get(h), p);
  EXPECT_EQ(*pool.get(h), 42);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_TRUE(pool.release(h));
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, NullHandleIsRejected) {
  sim::SlabPool<int> pool;
  sim::PoolHandle null;
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_EQ(pool.get(null), nullptr);
  EXPECT_FALSE(pool.release(null));
}

TEST(SlabPool, StaleHandleIsDetected) {
  sim::SlabPool<int> pool;
  auto [h, p] = pool.acquire();
  *p = 7;
  ASSERT_TRUE(pool.release(h));
  // Double release and use-after-release both miss on the generation.
  EXPECT_FALSE(pool.release(h));
  EXPECT_EQ(pool.get(h), nullptr);
  // The slot recycles (LIFO) under a new generation; the old handle still
  // misses while the new one works.
  auto [h2, p2] = pool.acquire();
  EXPECT_EQ(h2.slot, h.slot);
  EXPECT_NE(h2.gen, h.gen);
  EXPECT_EQ(pool.get(h), nullptr);
  EXPECT_EQ(pool.get(h2), p2);
  EXPECT_FALSE(pool.release(h));
  EXPECT_TRUE(pool.release(h2));
}

TEST(SlabPool, GrowthKeepsPointersStable) {
  sim::SlabPool<std::uint32_t, 4> pool;  // tiny slabs force growth
  std::vector<std::pair<sim::PoolHandle, std::uint32_t*>> objs;
  for (std::uint32_t i = 0; i < 100; ++i) {
    auto [h, p] = pool.acquire();
    *p = i;
    objs.emplace_back(h, p);
  }
  EXPECT_EQ(pool.slab_count(), 25u);
  EXPECT_EQ(pool.capacity(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.get(objs[i].first), objs[i].second);
    EXPECT_EQ(*objs[i].second, i);
  }
}

TEST(SlabPool, HighWaterTracksPeakLive) {
  sim::SlabPool<int, 8> pool;
  std::vector<sim::PoolHandle> hs;
  for (int i = 0; i < 10; ++i) hs.push_back(pool.acquire().first);
  EXPECT_EQ(pool.high_water(), 10u);
  for (auto h : hs) pool.release(h);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.high_water(), 10u);  // peak, not current
  for (int i = 0; i < 5; ++i) hs[i] = pool.acquire().first;
  EXPECT_EQ(pool.high_water(), 10u);
}

TEST(SlabPool, WarmReuseKeepsVectorCapacity) {
  sim::SlabPool<std::vector<int>> pool;
  auto [h, v] = pool.acquire();
  v->resize(1000);
  const auto cap = v->capacity();
  const int* data = v->data();
  ASSERT_TRUE(pool.release(h));
  auto [h2, v2] = pool.acquire();  // LIFO: same slot, same object
  EXPECT_EQ(v2, v);
  EXPECT_EQ(v2->capacity(), cap);
  EXPECT_EQ(v2->data(), data);  // buffer survived the recycle
  pool.release(h2);
}

TEST(SlabPool, RandomizedAgainstReference) {
  sim::SlabPool<std::uint64_t, 16> pool;
  std::mt19937 rng(0xC0FFEE);
  // Reference model: live handles and the value each object must hold.
  std::vector<sim::PoolHandle> live;
  std::unordered_map<std::uint64_t, std::uint64_t> expected;  // packed handle
  std::vector<sim::PoolHandle> stale;
  const auto key = [](sim::PoolHandle h) {
    return (static_cast<std::uint64_t>(h.slot) << 32) | h.gen;
  };
  std::uint64_t next_value = 1;
  for (int step = 0; step < 20'000; ++step) {
    const bool acquire = live.empty() || (rng() % 100) < 55;
    if (acquire) {
      auto [h, p] = pool.acquire();
      *p = next_value;
      expected[key(h)] = next_value;
      ++next_value;
      live.push_back(h);
    } else {
      const std::size_t i = rng() % live.size();
      const sim::PoolHandle h = live[i];
      EXPECT_EQ(*pool.get(h), expected.at(key(h)));
      EXPECT_TRUE(pool.release(h));
      expected.erase(key(h));
      live[i] = live.back();
      live.pop_back();
      if (stale.size() < 64) stale.push_back(h);
    }
    ASSERT_EQ(pool.live(), live.size());
  }
  for (const auto h : live) EXPECT_EQ(*pool.get(h), expected.at(key(h)));
  for (const auto h : stale) {
    EXPECT_EQ(pool.get(h), nullptr);
    EXPECT_FALSE(pool.release(h));
  }
  EXPECT_GE(pool.high_water(), live.size());
  EXPECT_GE(pool.capacity(), pool.high_water());
}

TEST(FlatFifo, FifoOrderAndWrap) {
  sim::FlatFifo<int> q;
  EXPECT_TRUE(q.empty());
  // Push/pop through several capacity doublings and wraps.
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) q.push_back(next_in++);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.take_front(), next_out++);
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(next_in - next_out));
  while (!q.empty()) EXPECT_EQ(q.take_front(), next_out++);
  EXPECT_EQ(next_in, next_out);
}

TEST(FlatFifo, RandomizedAgainstDeque) {
  sim::FlatFifo<std::uint32_t> q;
  std::deque<std::uint32_t> ref;
  std::mt19937 rng(1234);
  std::uint32_t next = 0;
  for (int step = 0; step < 30'000; ++step) {
    switch (rng() % 10) {
      case 0: case 1: case 2: case 3: case 4: {  // push
        const std::uint32_t v = next++ % 37;  // duplicates on purpose
        q.push_back(v);
        ref.push_back(v);
        break;
      }
      case 5: case 6: case 7:  // pop
        if (!ref.empty()) {
          EXPECT_EQ(q.front(), ref.front());
          q.pop_front();
          ref.pop_front();
        }
        break;
      case 8: {  // erase_value
        const std::uint32_t v = rng() % 37;
        const auto removed = q.erase_value(v);
        const auto before = ref.size();
        std::erase(ref, v);
        EXPECT_EQ(removed, before - ref.size());
        break;
      }
      case 9: {  // contains
        const std::uint32_t v = rng() % 37;
        const bool in_ref =
            std::find(ref.begin(), ref.end(), v) != ref.end();
        EXPECT_EQ(q.contains(v), in_ref);
        break;
      }
    }
    ASSERT_EQ(q.size(), ref.size());
    if (!ref.empty()) {
      const std::size_t i = rng() % ref.size();
      ASSERT_EQ(q[i], ref[i]);
    }
  }
  while (!ref.empty()) {
    EXPECT_EQ(q.take_front(), ref.front());
    ref.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state: after warmup, the pooled network hot path
// must not touch the heap at all. This is the test-level version of the
// engine_throughput bench's oracle (skipped under sanitizers, where the
// counting allocator is compiled out).

/// Closed-loop source: every delivery re-injects the same buffer.
class RecyclingHost final : public net::HostHooks {
 public:
  struct Flow {
    std::uint16_t src = 0;
    packet::Bytes route_prefix;
  };

  RecyclingHost(net::Network& network, std::vector<Flow>& flows)
      : network_(network), flows_(flows) {}

  void on_rx_head(sim::Time, net::TxHandle) override {}
  void on_rx_early_header(sim::Time, net::TxHandle,
                          const packet::Bytes&) override {}
  void on_tx_started(sim::Time, net::TxHandle) override {}
  void on_tx_complete(sim::Time, net::TxHandle) override {}
  void on_rx_complete(sim::Time, net::WirePacket pkt) override {
    Flow& flow = flows_[pkt.src_host];
    packet::Bytes buf = std::move(pkt.bytes);
    buf.insert(buf.begin(), flow.route_prefix.begin(),
               flow.route_prefix.end());
    network_.inject(flow.src, std::move(buf));
  }

 private:
  net::Network& network_;
  std::vector<Flow>& flows_;
};

TEST(ZeroAlloc, NetworkSteadyStateMakesNoHeapAllocations) {
  if (!sim::alloc_counting_available())
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build)";

  constexpr int kSwitches = 4;
  constexpr int kPerSwitch = 2;
  constexpr int kHosts = kSwitches * kPerSwitch;
  constexpr int kWindow = 4;

  topo::Topology topo;
  for (int s = 0; s < kSwitches; ++s) topo.add_switch(8);
  for (int h = 0; h < kHosts; ++h) topo.add_host();
  for (int s = 0; s + 1 < kSwitches; ++s)
    topo.connect_switches(static_cast<std::uint16_t>(s), 1,
                          static_cast<std::uint16_t>(s + 1), 0);
  for (int h = 0; h < kHosts; ++h)
    topo.attach_host(static_cast<std::uint16_t>(h),
                     static_cast<std::uint16_t>(h / kPerSwitch),
                     static_cast<std::uint8_t>(2 + h % kPerSwitch));

  sim::EventQueue queue;
  sim::Tracer tracer;
  net::Network network(topo, net::NetTiming{}, queue, tracer);

  std::vector<RecyclingHost::Flow> flows(kHosts);
  std::vector<std::unique_ptr<RecyclingHost>> hosts;
  for (int h = 0; h < kHosts; ++h) {
    hosts.push_back(std::make_unique<RecyclingHost>(network, flows));
    network.attach_host(static_cast<std::uint16_t>(h), hosts.back().get());
  }

  const packet::Bytes payload(64, 0xAB);
  for (int h = 0; h < kHosts; ++h) {
    const int dst = kHosts - 1 - h;
    const int sa = h / kPerSwitch, sb = dst / kPerSwitch;
    packet::Route route;
    for (int s = sa; s != sb; s += (sb > sa ? 1 : -1))
      route.push_back(sb > sa ? 1 : 0);
    route.push_back(static_cast<std::uint8_t>(2 + dst % kPerSwitch));
    auto& flow = flows[h];
    flow.src = static_cast<std::uint16_t>(h);
    for (std::uint8_t port : route)
      flow.route_prefix.push_back(packet::encode_route_byte(port));
    for (int w = 0; w < kWindow; ++w)
      network.inject(flow.src,
                     packet::build_packet(route, packet::PacketType::kGm,
                                          payload));
  }

  // Warmup: pools grow to the working set, queues and scratch vectors
  // stretch to their steady capacity.
  queue.run_events(100'000);
  ASSERT_GT(network.stats().delivered, 0u);

  const std::uint64_t before = sim::total_allocations();
  queue.run_events(200'000);
  const std::uint64_t after = sim::total_allocations();
  EXPECT_EQ(after - before, 0u)
      << "steady-state hot path allocated " << (after - before) << " times";
}

}  // namespace
