// Liveness watchdog, wait-graph diagnosis and graceful degradation.
//
// The centrepiece is the §8 buffer-wait wedge made reproducible: a ring of
// four switches whose ITB routes all hop two segments clockwise provably
// deadlocks under the faithful 2-buffer stop-when-full MCP — every NIC's
// receive pool fills with ITB packets whose re-injections wait on ring
// channels held by worms waiting on other full pools. The static
// buffer-augmented dependency graph predicts the wedge, the control run
// demonstrates it, and the watchdog run must detect it, name the buffer
// cycle, degrade the wedged NICs to §4 drop-on-full and drain the network
// with exactly-once delivery intact (GM retransmission recovers the
// drops).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/fault/fault.hpp"
#include "itb/health/diagnosis.hpp"
#include "itb/health/watchdog.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

// ------------------------------------------------------------- ring rig --

/// Ring of four switches, one host per switch; ports 0/1 run the ring
/// (s p1 -> s+1 p0), port 2 serves the host. Link s is trunk s -> s+1.
topo::Topology make_ring() {
  topo::Topology t;
  for (int i = 0; i < 4; ++i) t.add_switch(4);
  for (int i = 0; i < 4; ++i) t.add_host();
  for (std::uint16_t s = 0; s < 4; ++s)
    t.connect_switches(s, 1, static_cast<std::uint16_t>((s + 1) % 4), 0);
  for (std::uint16_t h = 0; h < 4; ++h) t.attach_host(h, h, 2);
  return t;
}

/// Every host talks to the host two switches clockwise through the ITB
/// host one switch clockwise: h -> (h+2)%4 via (h+1)%4, two one-hop
/// segments {1,2}. Acks travel the same pattern, so all four receive
/// pools are under in-transit pressure at once.
core::ClusterConfig ring_config() {
  core::ClusterConfig cfg;
  cfg.topology = make_ring();
  using Routes = std::vector<std::vector<std::vector<packet::Route>>>;
  Routes r(4, std::vector<std::vector<packet::Route>>(4));
  for (std::uint16_t h = 0; h < 4; ++h)
    r[h][(h + 2) % 4] = {{1, 2}, {1, 2}};
  cfg.manual_routes = std::move(r);
  cfg.gm_config.retransmit_timeout = 3 * sim::kMs;
  cfg.gm_config.max_retries = 0;  // retry forever: recovery must drain all
  return cfg;
}

constexpr int kRingMessages = 10;  // per host
constexpr std::size_t kRingBytes = 1500;

/// Start the all-pairs clockwise load; delivered[flow][msg] counts arrivals.
void start_ring_load(core::Cluster& c,
                     std::map<int, std::map<int, int>>& delivered) {
  for (std::uint16_t h = 0; h < 4; ++h) {
    const auto dst = static_cast<std::uint16_t>((h + 2) % 4);
    c.port(dst).set_receive_handler(
        [&delivered, dst](sim::Time, std::uint16_t src, Bytes m) {
          ++delivered[src * 4 + dst][m.at(0)];
        });
  }
  for (int i = 0; i < kRingMessages; ++i)
    for (std::uint16_t h = 0; h < 4; ++h) {
      Bytes m(kRingBytes, 0);
      m[0] = static_cast<std::uint8_t>(i);
      ASSERT_TRUE(c.port(h).send(static_cast<std::uint16_t>((h + 2) % 4),
                                 std::move(m)));
    }
}

int total_delivered(const std::map<int, std::map<int, int>>& delivered) {
  int n = 0;
  for (const auto& [flow, msgs] : delivered)
    for (const auto& [id, count] : msgs) n += count;
  return n;
}

// ------------------------------------------------- static §8 prediction --

TEST(BufferAugmentedCdg, RingItbRoutesAcyclicClassicallyButWedgeCapable) {
  const auto topo = make_ring();
  // Hand-built HostPaths matching ring_config()'s manual routes.
  auto ring_path = [](std::uint16_t h) {
    routing::HostPath p;
    p.src_host = h;
    p.dst_host = static_cast<std::uint16_t>((h + 2) % 4);
    p.segments = {{1, 2}, {1, 2}};
    p.in_transit_hosts = {static_cast<std::uint16_t>((h + 1) % 4)};
    p.trunk_channels = {topo::Channel{h, true},
                        topo::Channel{static_cast<std::uint16_t>((h + 1) % 4),
                                      true}};
    return p;
  };

  routing::DependencyGraph plain(topo);
  routing::DependencyGraph buffered(topo);
  for (std::uint16_t h = 0; h < 4; ++h) {
    plain.add_route(ring_path(h), topo);
    buffered.add_route_buffered(ring_path(h), topo);
  }
  // The classical CDG is acyclic — ITB ejection breaks every channel
  // chain, so the static checker passes this route set.
  EXPECT_FALSE(plain.has_cycle());
  // The buffer-augmented graph sees the §8 wedge: a cycle through all four
  // in-transit pools.
  EXPECT_TRUE(buffered.has_cycle());
  EXPECT_TRUE(buffered.cycle_through_buffer());
  const auto cycle = buffered.find_cycle_nodes();
  int buffer_nodes = 0;
  for (const auto& n : cycle) buffer_nodes += n.is_buffer ? 1 : 0;
  EXPECT_GE(buffer_nodes, 1);
  EXPECT_FALSE(routing::DependencyGraph::describe(cycle).empty());
}

TEST(BufferAugmentedCdg, LegacyFindCycleProjectsChannelsOnly) {
  const auto topo = make_ring();
  routing::DependencyGraph g(topo);
  using Node = routing::DependencyGraph::Node;
  // buf(0) -> ch(0>) -> buf(1) -> ch(1>) -> buf(0): a pure buffer cycle.
  g.add_edge(Node::of_buffer(0), Node::of_channel({0, true}));
  g.add_edge(Node::of_channel({0, true}), Node::of_buffer(1));
  g.add_edge(Node::of_buffer(1), Node::of_channel({1, true}));
  g.add_edge(Node::of_channel({1, true}), Node::of_buffer(0));
  EXPECT_TRUE(g.has_cycle());
  EXPECT_TRUE(g.cycle_through_buffer());
  const auto channels = g.find_cycle();
  for (const auto& c : channels) EXPECT_LT(c.link, 2u);
  EXPECT_EQ(channels.size(), 2u);
}

// ------------------------------------------------------ §8 wedge itself --

TEST(BufferWaitWedge, RingDeadlocksWithoutWatchdog) {
  auto cfg = ring_config();
  core::Cluster c(std::move(cfg));
  std::map<int, std::map<int, int>> delivered;
  start_ring_load(c, delivered);
  c.run(30 * sim::kMs);
  // The run is wedged: traffic in flight, deliveries far short, and only
  // the (futile) GM retransmission timers keep the queue alive.
  EXPECT_GT(c.network().in_flight(), 0u);
  EXPECT_LT(total_delivered(delivered), 4 * kRingMessages);
}

TEST(BufferWaitWedge, WatchdogDiagnosesRecoversAndDrains) {
  auto cfg = ring_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_period = 50 * sim::kUs;
  cfg.watchdog.stall_threshold = 250 * sim::kUs;
  cfg.watchdog.escalation_grace = 150 * sim::kUs;
  core::Cluster c(std::move(cfg));
  std::map<int, std::map<int, int>> delivered;
  start_ring_load(c, delivered);
  c.run(2'000 * sim::kMs);

  // Recovery drained the network and every message arrived exactly once.
  EXPECT_EQ(c.network().in_flight(), 0u);
  for (std::uint16_t h = 0; h < 4; ++h) {
    const int flow = h * 4 + (h + 2) % 4;
    for (int i = 0; i < kRingMessages; ++i)
      EXPECT_EQ(delivered[flow][i], 1) << "flow " << flow << " msg " << i;
  }

  auto* wd = c.health();
  ASSERT_NE(wd, nullptr);
  const auto& hs = wd->stats();
  EXPECT_GE(hs.stalls_detected, 1u);
  EXPECT_GE(hs.buffer_deadlocks, 1u);
  EXPECT_GE(hs.pool_mode_switches, 1u);
  EXPECT_GE(hs.recoveries, 1u);

  // The diagnoser named the buffer cycle.
  ASSERT_FALSE(wd->diagnoses().empty());
  const auto& d = wd->diagnoses().front();
  EXPECT_EQ(d.kind, health::StallKind::kBufferDeadlock);
  EXPECT_FALSE(d.cycle.empty());
  EXPECT_FALSE(d.wedged_hosts.empty());
  EXPECT_NE(d.description.find("buf("), std::string::npos);

  // Ledger: no fault injector here, so the only admissible losses are the
  // watchdog's own forced ejections (usually zero on this path).
  const auto& ns = c.network().stats();
  EXPECT_EQ(ns.injected, ns.delivered + ns.dropped + ns.lost);
  EXPECT_EQ(ns.lost, hs.forced_ejections);

  const auto v = wd->verdict();
  EXPECT_EQ(v.unrecovered, 0u);
  EXPECT_FALSE(v.first_cycle.empty());
  EXPECT_FALSE(wd->recovery_latency().empty());
}

TEST(BufferWaitWedge, ForcedEjectionBreaksWedgeWhenPoolSwitchDisabled) {
  auto cfg = ring_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_period = 50 * sim::kUs;
  cfg.watchdog.stall_threshold = 250 * sim::kUs;
  cfg.watchdog.escalation_grace = 150 * sim::kUs;
  cfg.watchdog.switch_to_pool = false;  // stage 1 off: go straight to eject
  core::Cluster c(std::move(cfg));
  std::map<int, std::map<int, int>> delivered;
  start_ring_load(c, delivered);
  c.run(2'000 * sim::kMs);

  EXPECT_EQ(c.network().in_flight(), 0u);
  for (std::uint16_t h = 0; h < 4; ++h) {
    const int flow = h * 4 + (h + 2) % 4;
    for (int i = 0; i < kRingMessages; ++i)
      EXPECT_EQ(delivered[flow][i], 1) << "flow " << flow << " msg " << i;
  }
  auto* wd = c.health();
  ASSERT_NE(wd, nullptr);
  EXPECT_GE(wd->stats().forced_ejections, 1u);
  EXPECT_EQ(wd->stats().pool_mode_switches, 0u);
  // Ejected packets count as lost on the health ledger and GM retransmits
  // them: the end-to-end story still reconciles.
  const auto& ns = c.network().stats();
  EXPECT_EQ(ns.injected, ns.delivered + ns.dropped + ns.lost);
  EXPECT_EQ(ns.lost, wd->stats().forced_ejections);
  EXPECT_EQ(wd->verdict().unrecovered, 0u);
}

// --------------------------------------------------- other stall kinds --

TEST(Watchdog, NicStallWindowClassifiedAsFaultBlackhole) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed();
  cfg.fault_schedule.nic_stall(2, 0, 3 * sim::kMs);
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_period = 50 * sim::kUs;
  cfg.watchdog.stall_threshold = 300 * sim::kUs;
  core::Cluster c(std::move(cfg));
  int delivered = 0;
  c.port(2).set_receive_handler(
      [&delivered](sim::Time, std::uint16_t, Bytes) { ++delivered; });
  ASSERT_TRUE(c.port(0).send(2, Bytes(512, 7)));
  c.run();

  EXPECT_EQ(delivered, 1);  // the window closed and the packet went through
  auto* wd = c.health();
  ASSERT_NE(wd, nullptr);
  EXPECT_GE(wd->stats().stalls_detected, 1u);
  EXPECT_GE(wd->stats().fault_blackholes, 1u);
  // Blackholes are never escalated: the fault window owns the recovery.
  EXPECT_EQ(wd->stats().pool_mode_switches, 0u);
  EXPECT_EQ(wd->stats().forced_ejections, 0u);
  EXPECT_GE(wd->stats().recoveries, 1u);
  EXPECT_EQ(wd->verdict().unrecovered, 0u);
  ASSERT_FALSE(wd->diagnoses().empty());
  EXPECT_EQ(wd->diagnoses().front().kind, health::StallKind::kFaultBlackhole);
}

TEST(Watchdog, ParksWhenIdleAndReArmsOnInjection) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed();
  cfg.watchdog.enabled = true;
  core::Cluster c(std::move(cfg));
  auto* wd = c.health();
  ASSERT_NE(wd, nullptr);

  // No traffic: the watchdog starts parked, so a drain run returns at
  // time zero with zero checks.
  c.run();
  EXPECT_EQ(c.queue().now(), 0);
  EXPECT_EQ(wd->stats().checks, 0u);

  int delivered = 0;
  c.port(2).set_receive_handler(
      [&delivered](sim::Time, std::uint16_t, Bytes) { ++delivered; });
  ASSERT_TRUE(c.port(0).send(2, Bytes(2048, 3)));
  c.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(wd->epoch(), 1u);  // progress was observed

  // Second round: the parked watchdog must re-arm off the injection hook.
  ASSERT_TRUE(c.port(0).send(2, Bytes(2048, 4)));
  c.run();
  EXPECT_EQ(delivered, 2);
  const auto v = wd->verdict();
  EXPECT_TRUE(v.clean());
  EXPECT_EQ(v.stalls, 0u);
}

TEST(Watchdog, PerNicEpochsTrackReceiveSideProgress) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_period = 5 * sim::kUs;  // tick often enough to observe
  core::Cluster c(std::move(cfg));
  auto* wd = c.health();
  int delivered = 0;
  c.port(2).set_receive_handler(
      [&delivered](sim::Time, std::uint16_t, Bytes) { ++delivered; });
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(c.port(0).send(2, Bytes(4000, 1)));
  c.run();
  EXPECT_EQ(delivered, 5);
  // The receiving host's NIC made receive-side progress, and the global
  // epoch moved at least as much as any single NIC's.
  EXPECT_GE(wd->nic_epoch(2), 1u);
  EXPECT_GE(wd->epoch(), wd->nic_epoch(2));
}

// --------------------------------------------------- chaos hotspot burst --

TEST(ChaosHotspot, BurstPresetIsDeterministicAndProtectedHostAware) {
  const auto topo = topo::make_fig1_network();
  fault::FaultSchedule::ChaosSpec spec;
  spec.horizon = 10 * sim::kMs;
  spec.hotspot_bursts = 5;
  spec.hotspot_stall = 150 * sim::kUs;
  spec.hotspot_gap = 50 * sim::kUs;
  spec.protected_hosts = {0, 1, 2, 3};

  const auto a = fault::FaultSchedule::chaos(topo, spec);
  const auto b = fault::FaultSchedule::chaos(topo, spec);
  ASSERT_EQ(a.windows().size(), 5u);
  ASSERT_EQ(b.windows().size(), 5u);

  const auto target = a.windows().front().target;
  sim::Time expect_start = 0;
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    const auto& w = a.windows()[i];
    EXPECT_EQ(w.kind, fault::FaultKind::kNicStall);
    EXPECT_EQ(w.target, target);  // one hotspot host for the whole train
    EXPECT_EQ(w.start, expect_start);
    EXPECT_EQ(w.end, w.start + spec.hotspot_stall);
    expect_start = w.end + spec.hotspot_gap;
    // Deterministic: the second draw is bit-identical.
    EXPECT_EQ(b.windows()[i].target, w.target);
    EXPECT_EQ(b.windows()[i].start, w.start);
    EXPECT_EQ(b.windows()[i].end, w.end);
  }
  // Protected hosts are never the hotspot.
  for (std::uint16_t p : spec.protected_hosts) EXPECT_NE(target, p);

  // Pinning a protected host is rejected.
  spec.hotspot_host = 2;
  EXPECT_THROW(fault::FaultSchedule::chaos(topo, spec),
               std::invalid_argument);
  // Pinning an unprotected one is honoured.
  spec.hotspot_host = 6;
  const auto pinned = fault::FaultSchedule::chaos(topo, spec);
  for (const auto& w : pinned.windows()) EXPECT_EQ(w.target, 6u);
}

TEST(ChaosHotspot, BurstRidesAlongsideOtherChaosWithoutPerturbingIt) {
  const auto topo = topo::make_fig1_network();
  fault::FaultSchedule::ChaosSpec spec;
  spec.horizon = 10 * sim::kMs;
  spec.link_windows = 3;
  spec.stall_windows = 2;
  const auto base = fault::FaultSchedule::chaos(topo, spec);
  spec.hotspot_bursts = 4;
  const auto with_burst = fault::FaultSchedule::chaos(topo, spec);
  ASSERT_EQ(with_burst.windows().size(), base.windows().size() + 4);
  for (std::size_t i = 0; i < base.windows().size(); ++i) {
    EXPECT_EQ(with_burst.windows()[i].target, base.windows()[i].target);
    EXPECT_EQ(with_burst.windows()[i].start, base.windows()[i].start);
  }
}

// ----------------------------------------------------------- flag + misc --

TEST(WatchdogFlag, ParsesFromArgv) {
  const char* argv1[] = {"bench", "--watchdog", "--jobs", "4"};
  EXPECT_TRUE(health::watchdog_flag(4, const_cast<char**>(argv1)));
  const char* argv2[] = {"bench", "--jobs", "4"};
  EXPECT_FALSE(health::watchdog_flag(3, const_cast<char**>(argv2)));
}

TEST(LivenessVerdict, MergeAggregatesAcrossRuns) {
  health::LivenessVerdict a, b;
  a.checks = 3;
  a.stalls = 1;
  a.buffer_deadlocks = 1;
  a.recoveries = 1;
  a.first_cycle = "buf(h1) -> ch(0>)";
  b.checks = 5;
  b.unrecovered = 1;
  b.forced_ejections = 2;
  b.merge(a);
  EXPECT_EQ(b.checks, 8u);
  EXPECT_EQ(b.stalls, 1u);
  EXPECT_EQ(b.forced_ejections, 2u);
  EXPECT_EQ(b.unrecovered, 1u);
  EXPECT_EQ(b.first_cycle, "buf(h1) -> ch(0>)");
  EXPECT_FALSE(b.clean());
  EXPECT_TRUE(health::LivenessVerdict{}.clean());
}

TEST(Cluster, BufferWedgePredictionOnMapperRoutes) {
  core::ClusterConfig up;
  up.topology = topo::make_paper_testbed();
  up.policy = routing::Policy::kUpDown;
  core::Cluster updown(std::move(up));
  EXPECT_TRUE(updown.routes_deadlock_free());
  // Up*/down* uses no in-transit hosts at all: no buffer edges, no wedge.
  EXPECT_TRUE(updown.routes_buffer_wedge_free());

  // The 3-host testbed's single in-transit hop cannot close a buffer
  // cycle...
  core::ClusterConfig tb;
  tb.topology = topo::make_paper_testbed();
  tb.policy = routing::Policy::kItb;
  core::Cluster testbed(std::move(tb));
  EXPECT_TRUE(testbed.routes_deadlock_free());
  EXPECT_TRUE(testbed.routes_buffer_wedge_free());

  // ...but the mapper's ITB tables on the full Fig. 1 irregular network —
  // classically deadlock-free per §1's argument — ARE wedge-capable: the
  // buffer-augmented graph finds a cycle through the in-transit pools.
  // This is the static predictor seeing the §8 finding before any packet
  // moves.
  core::ClusterConfig itb_cfg;
  itb_cfg.topology = topo::make_fig1_network();
  itb_cfg.policy = routing::Policy::kItb;
  core::Cluster fig1(std::move(itb_cfg));
  EXPECT_TRUE(fig1.routes_deadlock_free());
  EXPECT_FALSE(fig1.routes_buffer_wedge_free());
}

}  // namespace
