// Tests for the fast event engine internals: InlineFunction storage and
// lifetime, eager closure destruction on cancel, engine stats, the
// wheel/heap time split, and a randomized semantics-equivalence suite
// pitting EventQueue against a trivially-correct reference queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "itb/sim/event_queue.hpp"
#include "itb/sim/inline_function.hpp"
#include "itb/sim/rng.hpp"

namespace {

using itb::sim::EventId;
using itb::sim::EventQueue;
using itb::sim::InlineFunction;
using itb::sim::Rng;
using itb::sim::Time;

// ---------------------------------------------------------------------------
// InlineFunction

/// Counts live instances so tests can assert exactly when a capture dies.
struct Sentinel {
  explicit Sentinel(int* live) : live_(live) { ++*live_; }
  Sentinel(const Sentinel& o) : live_(o.live_) { ++*live_; }
  Sentinel(Sentinel&& o) noexcept : live_(o.live_) { ++*live_; }
  ~Sentinel() { --*live_; }
  int* live_;
};

TEST(InlineFunction, SmallCaptureIsInline) {
  int x = 0;
  InlineFunction<void()> f([&x] { ++x; });
  EXPECT_TRUE(f.is_inline());
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(x, 1);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 B > 48 B inline buffer
  big[15] = 7;
  InlineFunction<int()> f([big] { return static_cast<int>(big[15]); });
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(InlineFunction, MovePreservesCallableAndEmptiesSource) {
  int x = 0;
  InlineFunction<void()> a([&x] { x += 5; });
  InlineFunction<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 5);
}

TEST(InlineFunction, DestructionRunsCaptureDtors) {
  int live = 0;
  {
    InlineFunction<void()> f([s = Sentinel(&live)] { (void)s; });
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(InlineFunction, ResetDestroysHeapCallableToo) {
  int live = 0;
  std::array<std::uint64_t, 16> pad{};
  InlineFunction<void()> f([s = Sentinel(&live), pad] { (void)s; (void)pad; });
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(live, 1);
  f.reset();
  EXPECT_EQ(live, 0);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, MoveAssignDestroysPreviousCallable) {
  int live_a = 0, live_b = 0;
  InlineFunction<void()> f([s = Sentinel(&live_a)] { (void)s; });
  f = InlineFunction<void()>([s = Sentinel(&live_b)] { (void)s; });
  EXPECT_EQ(live_a, 0);
  EXPECT_EQ(live_b, 1);
}

// ---------------------------------------------------------------------------
// Eager cancellation (the satellite fix: cancel used to retain the closure
// until its timestamp surfaced in the heap)

TEST(EventQueue, CancelDestroysClosureImmediately) {
  EventQueue q;
  int live = 0;
  auto id = q.schedule_at(1000, [s = Sentinel(&live)] { (void)s; });
  EXPECT_EQ(live, 1);
  EXPECT_TRUE(q.cancel(id));
  // The capture must die inside cancel(), not when time 1000 is reached.
  EXPECT_EQ(live, 0);
  q.run();
}

TEST(EventQueue, CancelDestroysFarTimerClosureImmediately) {
  EventQueue q;
  int live = 0;
  // Far beyond the wheel window: this event lives in the spill heap.
  auto id = q.schedule_at(50'000'000, [s = Sentinel(&live)] { (void)s; });
  EXPECT_EQ(live, 1);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(live, 0);
  q.run();
}

TEST(EventQueue, ResetDestroysAllClosures) {
  EventQueue q;
  int live = 0;
  q.schedule_at(10, [s = Sentinel(&live)] { (void)s; });         // wheel
  q.schedule_at(90'000'000, [s = Sentinel(&live)] { (void)s; }); // heap
  EXPECT_EQ(live, 2);
  q.reset();
  EXPECT_EQ(live, 0);
}

TEST(EventQueue, NullIdCancelFails) {
  EventQueue q;
  q.schedule_at(5, [] {});
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, StaleIdFromRecycledSlotFails) {
  EventQueue q;
  auto a = q.schedule_at(10, [] {});
  ASSERT_TRUE(q.cancel(a));
  // The slot is recycled for b; a's generation is stale and must not be
  // able to cancel b.
  auto b = q.schedule_at(20, [] {});
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.cancel(b));
}

// ---------------------------------------------------------------------------
// Stats

TEST(EventQueue, StatsCountSchedulesFiresCancels) {
  EventQueue q;
  auto a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.schedule_at(30, [] {});
  q.cancel(a);
  q.run();
  EXPECT_EQ(q.stats().scheduled, 3u);
  EXPECT_EQ(q.stats().fired, 2u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  EXPECT_EQ(q.stats().peak_pending, 3u);
}

TEST(EventQueue, StatsSplitWheelFromSpill) {
  EventQueue q;
  q.schedule_at(100, [] {});         // inside the 4096 ns wheel window
  q.schedule_at(50'000'000, [] {});  // far timer -> spill heap
  EXPECT_EQ(q.stats().wheel_scheduled, 1u);
  EXPECT_EQ(q.stats().spill_scheduled, 1u);
  q.run();
}

// ---------------------------------------------------------------------------
// Wheel/heap boundary behaviour

TEST(EventQueue, EventsStraddlingTheWindowBoundaryFireInOrder) {
  EventQueue q;
  std::vector<Time> fired;
  // One event per region: last wheel bucket, first spilled time, deep heap.
  q.schedule_at(4095, [&] { fired.push_back(q.now()); });
  q.schedule_at(4096, [&] { fired.push_back(q.now()); });
  q.schedule_at(4097, [&] { fired.push_back(q.now()); });
  q.schedule_at(1'000'000, [&] { fired.push_back(q.now()); });
  q.run();
  EXPECT_EQ(fired, (std::vector<Time>{4095, 4096, 4097, 1'000'000}));
}

TEST(EventQueue, FifoPreservedAcrossSpillMigration) {
  EventQueue q;
  std::vector<int> order;
  // Both at t=10000: the first spills (outside the initial window), the
  // second is scheduled later from inside an event when the window has
  // advanced — FIFO by schedule order must still hold after migration.
  q.schedule_at(10'000, [&] { order.push_back(0); });
  q.schedule_at(9'000, [&] {
    q.schedule_at(10'000, [&] { order.push_back(1); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, IdleGapJumpDoesNotOvershootRunHorizon) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(100'000, [&] { fired = true; });
  // Horizon far before the only event: the clock must stop at the horizon,
  // and the event must survive to a later run().
  EXPECT_EQ(q.run(50'000), 0u);
  EXPECT_EQ(q.now(), 50'000);
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 100'000);
}

TEST(EventQueue, ManyEventsInOneBucketKeepFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  q.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

// ---------------------------------------------------------------------------
// Randomized equivalence against a trivially-correct reference queue

/// The simplest possible correct implementation: a vector of {at, seq,
/// action} scanned linearly for the minimum. Semantics to match: FIFO at
/// equal times, cancel-before-fire, run(until) horizon clock, reset().
class ReferenceQueue {
 public:
  std::uint64_t schedule_at(Time at, std::function<void()> action) {
    events_.push_back({at, next_seq_, std::move(action)});
    return next_seq_++;
  }
  bool cancel(std::uint64_t seq) {
    for (auto it = events_.begin(); it != events_.end(); ++it)
      if (it->seq == seq) {
        events_.erase(it);
        return true;
      }
    return false;
  }
  std::uint64_t run(Time until) {
    std::uint64_t fired = 0;
    for (;;) {
      auto best = events_.end();
      for (auto it = events_.begin(); it != events_.end(); ++it)
        if (best == events_.end() || it->at < best->at ||
            (it->at == best->at && it->seq < best->seq))
          best = it;
      if (best == events_.end() || best->at > until) break;
      now_ = best->at;
      auto action = std::move(best->action);
      events_.erase(best);
      action();
      ++fired;
    }
    if (until != INT64_MAX && now_ < until) now_ = until;
    return fired;
  }
  Time now() const { return now_; }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> action;
  };
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 1;
  Time now_ = 0;
};

/// Drive both queues through an identical random schedule/cancel/run script
/// and require identical observable traces.
TEST(EventEngineEquivalence, RandomizedScriptMatchesReference) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Rng rng(seed);
    EventQueue fast;
    ReferenceQueue ref;
    std::vector<std::pair<Time, int>> fast_trace, ref_trace;
    std::vector<EventId> fast_ids;
    std::vector<std::uint64_t> ref_ids;
    int tag = 0;

    for (int round = 0; round < 40; ++round) {
      // Burst of schedules: mixed near (wheel), far (heap) and duplicate
      // timestamps to exercise the FIFO tie-break.
      const int n = 1 + static_cast<int>(rng.next_below(12));
      for (int i = 0; i < n; ++i) {
        Time delay;
        switch (rng.next_below(4)) {
          case 0: delay = static_cast<Time>(rng.next_below(16)); break;
          case 1: delay = static_cast<Time>(rng.next_below(4096)); break;
          case 2: delay = static_cast<Time>(rng.next_below(100'000)); break;
          default: delay = static_cast<Time>(rng.next_below(10'000'000));
        }
        const Time at = fast.now() + delay;
        const int t = tag++;
        fast_ids.push_back(
            fast.schedule_at(at, [&fast_trace, &fast, t] {
              fast_trace.emplace_back(fast.now(), t);
            }));
        ref_ids.push_back(ref.schedule_at(at, [&ref_trace, &ref, t] {
          ref_trace.emplace_back(ref.now(), t);
        }));
      }
      // Random cancels (some already-fired ids: results must agree too).
      const int cancels = static_cast<int>(rng.next_below(4));
      for (int i = 0; i < cancels && !fast_ids.empty(); ++i) {
        const auto pick = rng.next_below(fast_ids.size());
        EXPECT_EQ(fast.cancel(fast_ids[pick]), ref.cancel(ref_ids[pick]));
      }
      // Run to a horizon that may fall in an idle gap.
      const Time until = fast.now() + static_cast<Time>(rng.next_below(200'000));
      EXPECT_EQ(fast.run(until), ref.run(until));
      EXPECT_EQ(fast.now(), ref.now()) << "seed " << seed;
      EXPECT_EQ(fast.pending(), ref.pending());
    }
    // Drain both completely.
    fast.run();
    ref.run(INT64_MAX);
    EXPECT_EQ(fast_trace, ref_trace) << "seed " << seed;
    EXPECT_EQ(fast.pending(), 0u);
  }
}

TEST(EventEngineEquivalence, ResetMatchesReferenceRestart) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(0); });
  q.schedule_at(5'000'000, [&] { order.push_back(1); });
  q.run(10);
  q.reset();
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.empty());
  // The queue is fully reusable after reset, including times below the
  // old clock.
  q.schedule_at(3, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(q.now(), 3);
}

}  // namespace
