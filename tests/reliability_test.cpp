// Fault-injection tests: GM's "reliable and ordered packet delivery in
// presence of network faults" (§3) exercised against a lossy and corrupting
// wire, including routes with in-transit buffers.
#include <gtest/gtest.h>

#include <numeric>

#include "itb/core/cluster.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

std::unique_ptr<core::Cluster> lossy_cluster(double drop, double corrupt,
                                             routing::Policy policy,
                                             std::uint64_t seed = 9) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = policy;
  cfg.fault_plan.drop_probability = drop;
  cfg.fault_plan.corrupt_probability = corrupt;
  cfg.fault_plan.seed = seed;
  cfg.gm_config.retransmit_timeout = 200 * sim::kUs;
  return std::make_unique<core::Cluster>(std::move(cfg));
}

struct Collected {
  std::vector<int> order;
  std::size_t bytes = 0;
};

Collected exchange(core::Cluster& c, std::uint16_t src, std::uint16_t dst,
                   int count, std::size_t size) {
  Collected got;
  c.port(dst).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) {
        got.order.push_back(m[0]);
        got.bytes += m.size();
      });
  int next = 0;
  std::function<void()> feed = [&] {
    while (next < count &&
           c.port(src).send(dst, Bytes(size, static_cast<std::uint8_t>(next))))
      ++next;
    if (next < count) c.queue().schedule_in(100 * sim::kUs, feed);
  };
  feed();
  c.run();
  return got;
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, AllMessagesDeliveredInOrderDespiteDrops) {
  auto c = lossy_cluster(GetParam(), 0.0, routing::Policy::kUpDown);
  auto got = exchange(*c, 0, 7, 25, 900);
  ASSERT_EQ(got.order.size(), 25u);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(got.order[static_cast<size_t>(i)], i);
  if (GetParam() > 0.0) {
    EXPECT_GT(c->network().stats().faults_injected, 0u);
    EXPECT_GT(c->port(0).stats().retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossSweep,
                         ::testing::Values(0.0, 0.02, 0.1, 0.3));

class CorruptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionSweep, CrcCatchesCorruptionAndGmRecovers) {
  auto c = lossy_cluster(0.0, GetParam(), routing::Policy::kUpDown);
  auto got = exchange(*c, 2, 5, 20, 700);
  ASSERT_EQ(got.order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got.order[static_cast<size_t>(i)], i);
  if (GetParam() >= 0.1) {
    std::uint64_t bad = 0;
    for (std::uint16_t h = 0; h < c->host_count(); ++h)
      bad += c->nic(h).stats().rx_bad_crc + c->nic(h).stats().rx_unknown_type;
    EXPECT_GT(bad, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(CorruptionRates, CorruptionSweep,
                         ::testing::Values(0.0, 0.1, 0.25));

TEST(Reliability, ItbRoutesSurviveLossyWire) {
  // Host pair whose minimal route crosses an in-transit buffer: losses can
  // hit either wormhole segment; GM end-to-end recovery must still hold.
  auto c = lossy_cluster(0.15, 0.05, routing::Policy::kItb);
  ASSERT_EQ(c->route_table()->route(4, 1).itb_count(), 1u);
  auto got = exchange(*c, 4, 1, 30, 1200);
  ASSERT_EQ(got.order.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(got.order[static_cast<size_t>(i)], i);
  EXPECT_GT(c->network().stats().faults_injected, 0u);
}

TEST(Reliability, LostInTransitPacketFreesItsBuffer) {
  // A packet lost on its way INTO the in-transit host must not leak the
  // receive buffer it reserved: after heavy loss the fabric still moves
  // traffic (a leak would wedge the 2-buffer NIC permanently).
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  cfg.fault_plan.drop_probability = 0.5;
  cfg.fault_plan.seed = 1234;
  cfg.gm_config.retransmit_timeout = 150 * sim::kUs;
  core::Cluster c(std::move(cfg));
  auto got = exchange(c, 4, 1, 10, 400);
  ASSERT_EQ(got.order.size(), 10u);
  std::uint64_t aborted = 0;
  for (std::uint16_t h = 0; h < c.host_count(); ++h)
    aborted += c.nic(h).stats().rx_aborted;
  EXPECT_GT(aborted, 0u);
}

TEST(Reliability, MultiFragmentMessagesSurviveLoss) {
  auto c = lossy_cluster(0.12, 0.0, routing::Policy::kUpDown, 77);
  const std::size_t size = 3 * 4000;  // 3 fragments
  Bytes expected(size);
  std::iota(expected.begin(), expected.end(), std::uint8_t{0});
  Bytes got;
  c->port(3).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes m) { got = std::move(m); });
  ASSERT_TRUE(c->port(0).send(3, expected));
  c->run();
  EXPECT_EQ(got, expected);
}

TEST(Reliability, BackoffSlowsRetransmissionStorms) {
  // With an aggressive timer and a congested path, the backoff must keep
  // the retransmission count sane (a storm would produce thousands).
  core::ClusterConfig cfg;
  cfg.topology = topo::make_linear(2, 2);
  cfg.gm_config.retransmit_timeout = 15 * sim::kUs;  // below the loaded RTT
  core::Cluster c(std::move(cfg));
  int got = 0;
  c.port(2).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got; });
  c.port(3).set_receive_handler(
      [&](sim::Time, std::uint16_t, Bytes) { ++got; });
  for (int i = 0; i < 8; ++i) {
    c.port(0).send(2, Bytes(4000, 1));
    c.port(1).send(3, Bytes(4000, 2));
  }
  c.run();
  EXPECT_EQ(got, 16);
  const auto rexmit = c.port(0).stats().retransmissions +
                      c.port(1).stats().retransmissions;
  EXPECT_LT(rexmit, 200u);
}

TEST(Reliability, DeterministicUnderFaults) {
  auto run_once = [] {
    auto c = lossy_cluster(0.2, 0.1, routing::Policy::kItb, 31337);
    exchange(*c, 0, 6, 15, 800);
    return c->queue().now();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Reliability, SequenceNumbersSurviveWraparound) {
  // Regression: cumulative-ack comparisons used plain <= on the 32-bit
  // sequence space, so the first connection to cross 2^32 stalled forever
  // (every ack looked "stale"). Serial-number arithmetic must carry a lossy
  // connection straight across the boundary.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.fault_plan.drop_probability = 0.1;
  cfg.fault_plan.seed = 9;
  cfg.gm_config.retransmit_timeout = 200 * sim::kUs;
  cfg.gm_config.initial_seq = 0xFFFFFFF0u;  // wraps within the first packets
  core::Cluster c(std::move(cfg));
  auto got = exchange(c, 0, 7, 40, 900);
  ASSERT_EQ(got.order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(got.order[static_cast<size_t>(i)], i);
  EXPECT_GT(c.network().stats().lost, 0u);
}

TEST(Reliability, LostPacketsAreNotCountedDelivered) {
  // Regression: the network used to bump stats_.delivered even for packets
  // the fault injector swallowed; injected must now reconcile exactly with
  // delivered + dropped + lost, and the loss ledger must match the
  // injector's by-cause accounting.
  auto c = lossy_cluster(0.3, 0.0, routing::Policy::kUpDown, 4242);
  auto got = exchange(*c, 0, 7, 25, 900);
  ASSERT_EQ(got.order.size(), 25u);
  const auto& ns = c->network().stats();
  EXPECT_GT(ns.lost, 0u);
  EXPECT_EQ(ns.injected, ns.delivered + ns.dropped + ns.lost);
  ASSERT_NE(c->faults(), nullptr);
  EXPECT_EQ(ns.lost, c->faults()->stats().lost_drop);
  EXPECT_EQ(ns.faults_injected,
            c->faults()->stats().lost_drop + c->faults()->stats().corrupted);
}

TEST(Reliability, SenderGivesUpAfterMaxRetries) {
  // Regression: on_timeout retransmitted forever. Against a wire that eats
  // every packet the sender must declare the peer dead after max_retries,
  // fail the pending messages and hand the tokens back.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.fault_plan.drop_probability = 1.0;  // nothing ever arrives
  cfg.gm_config.retransmit_timeout = 50 * sim::kUs;
  cfg.gm_config.max_retries = 4;
  core::Cluster c(std::move(cfg));
  std::uint32_t failed = 0;
  c.port(0).set_send_failure_handler(
      [&](sim::Time, std::uint16_t, std::uint32_t n) { failed += n; });
  ASSERT_TRUE(c.port(0).send(7, Bytes(600, 1)));
  ASSERT_TRUE(c.port(0).send(7, Bytes(600, 2)));
  EXPECT_EQ(c.port(0).tokens_in_use(), 2);
  c.run();
  EXPECT_TRUE(c.port(0).peer_failed(7));
  EXPECT_EQ(failed, 2u);
  EXPECT_EQ(c.port(0).stats().send_failures, 1u);
  EXPECT_EQ(c.port(0).stats().messages_failed, 2u);
  EXPECT_EQ(c.port(0).tokens_in_use(), 0);
  EXPECT_EQ(c.port(0).stats().retransmissions,
            4u * 2u);  // 4 barren rounds x 2 outstanding packets
  // The queue drained: no timer left spinning on the dead connection.
  EXPECT_FALSE(c.port(0).send(7, Bytes(10, 3)));
}

}  // namespace
