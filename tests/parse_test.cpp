// Tests for the textual topology format.
#include <gtest/gtest.h>

#include "itb/topo/builders.hpp"
#include "itb/topo/parse.hpp"

namespace {

using namespace itb::topo;

constexpr const char* kSample = R"(
# a two-switch COW
switch sw0 8
switch sw1 8
host a
host b
host c

link sw0:0 sw1:0 san
link sw0:1 sw1:1 san   # parallel trunk
link a:0 sw0:2 lan
link b:0 sw0:3 lan
link c:0 sw1:2 san
)";

TEST(Parse, SampleParses) {
  auto t = parse_topology(kSample);
  EXPECT_EQ(t.switch_count(), 2u);
  EXPECT_EQ(t.host_count(), 3u);
  EXPECT_EQ(t.link_count(), 5u);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.switch_spec(0).name, "sw0");
  EXPECT_EQ(t.host_spec(2).name, "c");
  EXPECT_EQ(t.link(2).kind, PortKind::kLan);
}

TEST(Parse, DefaultsAndWhitespace) {
  auto t = parse_topology("switch s\nhost h\nlink h:0 s:0\n");
  EXPECT_EQ(t.switch_spec(0).ports, 8);       // default port count
  EXPECT_EQ(t.link(0).kind, PortKind::kSan);  // default kind
}

TEST(Parse, SelfCableOnSwitch) {
  auto t = parse_topology("switch s 8\nlink s:6 s:7 san\n");
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.link(0).a.node, t.link(0).b.node);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const char* needle) {
    try {
      parse_topology(text);
      FAIL() << "expected failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("switch\n", "line 1");
  expect_error("bogus s\n", "unknown keyword");
  expect_error("switch s\nswitch s\n", "duplicate name");
  expect_error("switch s\nlink s:0 t:0\n", "unknown node");
  expect_error("switch s\nhost h\nlink h:x s:0\n", "bad port");
  expect_error("switch s\nhost h\nlink h:0 s:0 foo\n", "san or lan");
  expect_error("switch s 8\nlink s:0 s:0\n", "itself");  // same port twice
  expect_error("switch s 8 extra\n", "trailing");
  expect_error("host h\nhost g\nlink h:0 g:0\n", "host-to-host");
}

TEST(Parse, RoundTripThroughSerialize) {
  auto original = parse_topology(kSample);
  auto again = parse_topology(serialize_topology(original));
  ASSERT_EQ(again.switch_count(), original.switch_count());
  ASSERT_EQ(again.host_count(), original.host_count());
  ASSERT_EQ(again.link_count(), original.link_count());
  for (LinkId l = 0; l < original.link_count(); ++l) {
    EXPECT_EQ(again.link(l).a, original.link(l).a);
    EXPECT_EQ(again.link(l).b, original.link(l).b);
    EXPECT_EQ(again.link(l).kind, original.link(l).kind);
  }
}

TEST(Parse, BuildersSurviveRoundTrip) {
  for (auto topo : {make_paper_testbed(), make_fig1_network(),
                    make_ring(5, 1), make_mesh(2, 3, 1), make_star(4, 2)}) {
    auto again = parse_topology(serialize_topology(topo));
    EXPECT_EQ(again.switch_count(), topo.switch_count());
    EXPECT_EQ(again.host_count(), topo.host_count());
    EXPECT_EQ(again.link_count(), topo.link_count());
  }
}

TEST(Builders, RingMeshStarShapes) {
  auto ring = make_ring(6, 2);
  EXPECT_EQ(ring.switch_count(), 6u);
  EXPECT_EQ(ring.host_count(), 12u);
  EXPECT_NO_THROW(ring.validate());
  EXPECT_THROW(make_ring(2), std::invalid_argument);

  auto mesh = make_mesh(3, 4, 2);
  EXPECT_EQ(mesh.switch_count(), 12u);
  EXPECT_EQ(mesh.host_count(), 24u);
  EXPECT_NO_THROW(mesh.validate());
  // 3x4 mesh: 2*... horizontal 3*3=9, vertical 2*4=8 trunks.
  EXPECT_EQ(mesh.link_count(), 9u + 8u + 24u);
  EXPECT_THROW(make_mesh(2, 2, 5, 8), std::invalid_argument);

  auto star = make_star(5, 2);
  EXPECT_EQ(star.switch_count(), 6u);
  EXPECT_EQ(star.host_count(), 10u);
  EXPECT_NO_THROW(star.validate());
}

}  // namespace
