// Tests for the distributed-application kernels and the routing-level
// optimisation knobs (root selection, ITB host spread).
#include <gtest/gtest.h>

#include <map>

#include "itb/core/cluster.hpp"
#include "itb/workload/apps.hpp"

namespace {

using namespace itb;

std::unique_ptr<core::Cluster> small_cluster(
    routing::Policy policy,
    routing::ItbHostSelection sel = routing::ItbHostSelection::kLowestIndex) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = policy;
  cfg.itb_selection = sel;
  cfg.gm_config.send_tokens = 32;
  cfg.gm_config.window = 16;
  return std::make_unique<core::Cluster>(std::move(cfg));
}

TEST(Apps, AllToAllCompletes) {
  auto c = small_cluster(routing::Policy::kItb);
  auto r = workload::run_all_to_all(c->queue(), c->ports(), 256, 1);
  EXPECT_EQ(r.messages, 8u * 7u);
  EXPECT_EQ(r.bytes, 8u * 7u * 256u);
  EXPECT_GT(r.makespan, 0);
}

TEST(Apps, AllToAllMultipleRounds) {
  auto c = small_cluster(routing::Policy::kUpDown);
  auto r = workload::run_all_to_all(c->queue(), c->ports(), 64, 3);
  EXPECT_EQ(r.messages, 3u * 8u * 7u);
}

TEST(Apps, RingExchangeCompletesEveryRound) {
  auto c = small_cluster(routing::Policy::kItb);
  auto r = workload::run_ring_exchange(c->queue(), c->ports(), 1024, 5);
  EXPECT_EQ(r.messages, 5u * 8u);
  EXPECT_EQ(r.bytes, 5u * 8u * 1024u);
}

TEST(Apps, RingRoundsAreOrdered) {
  // Round k+1 cannot start before round k's message arrived: the makespan
  // of r rounds grows linearly in r.
  auto c1 = small_cluster(routing::Policy::kUpDown);
  auto one = workload::run_ring_exchange(c1->queue(), c1->ports(), 512, 1);
  auto c4 = small_cluster(routing::Policy::kUpDown);
  auto four = workload::run_ring_exchange(c4->queue(), c4->ports(), 512, 4);
  EXPECT_GT(four.makespan, 3 * one.makespan);
}

TEST(Apps, MasterWorkerCompletes) {
  auto c = small_cluster(routing::Policy::kItb);
  auto r = workload::run_master_worker(c->queue(), c->ports(), 512, 128, 3);
  EXPECT_EQ(r.messages, 3u * 2u * 7u);
}

TEST(Apps, RejectsDegenerateInputs) {
  auto c = small_cluster(routing::Policy::kUpDown);
  std::vector<gm::GmPort*> one{c->ports()[0]};
  EXPECT_THROW(workload::run_all_to_all(c->queue(), one, 64, 1),
               std::invalid_argument);
  EXPECT_THROW(workload::run_ring_exchange(c->queue(), one, 64, 1),
               std::invalid_argument);
  EXPECT_THROW(workload::run_master_worker(c->queue(), one, 64, 64, 1),
               std::invalid_argument);
}

// ------------------------------------------------- routing optimisations --

TEST(RoutingOpts, SelectBestRootNeverWorseThanDefault) {
  sim::Rng rng(1);
  for (int trial = 0; trial < 4; ++trial) {
    topo::IrregularSpec spec;
    spec.switches = 12;
    spec.hosts_per_switch = 2;
    auto topo = topo::make_random_irregular(spec, rng);
    const auto best = routing::select_best_root(topo);
    auto avg_hops = [&](std::uint16_t root) {
      routing::UpDown ud(topo, root);
      routing::Router router(ud);
      routing::RouteTable table(router, routing::Policy::kUpDown);
      return table.average_trunk_hops();
    };
    EXPECT_LE(avg_hops(best), avg_hops(0) + 1e-9) << "trial " << trial;
  }
}

TEST(RoutingOpts, SelectBestRootTieBreaksLow) {
  // On a tree (no cycles) every orientation permits every shortest path,
  // so all roots cost the same and the tie breaks toward switch 0.
  auto topo = topo::make_linear(5, 1);
  EXPECT_EQ(routing::select_best_root(topo), 0);
}

TEST(RoutingOpts, SelectBestRootPrefersHubOnWheel) {
  // A hub switch connected to every rim switch, rim also a ring: rooting
  // at the hub keeps every legal path minimal; rim roots force detours.
  topo::Topology t;
  for (int i = 0; i < 7; ++i) t.add_switch(8);  // 0 = hub, 1..6 rim
  std::vector<std::uint8_t> port(7, 0);
  for (std::uint16_t r = 1; r <= 6; ++r)
    t.connect_switches(0, port[0]++, r, port[r]++);
  for (std::uint16_t r = 1; r <= 6; ++r) {
    auto next = static_cast<std::uint16_t>(r == 6 ? 1 : r + 1);
    t.connect_switches(r, port[r]++, next, port[next]++);
  }
  for (std::uint16_t r = 0; r < 7; ++r) {
    t.add_host();
    t.attach_host(r, r, port[r]++);
  }
  EXPECT_EQ(routing::select_best_root(t), 0);
}

TEST(RoutingOpts, SpreadSelectionDistributesItbDuty) {
  // A network with several hosts per switch: spread selection must lower
  // the busiest host's forwarding duty and keep route lengths identical.
  sim::Rng rng(5);
  topo::IrregularSpec spec;
  spec.switches = 16;
  spec.hosts_per_switch = 4;
  auto topo = topo::make_random_irregular(spec, rng);
  routing::UpDown ud(topo);

  auto duty_and_hops = [&](routing::ItbHostSelection sel) {
    routing::Router router(ud, sel);
    routing::RouteTable table(router, routing::Policy::kItb);
    std::map<std::uint16_t, std::size_t> duty;
    for (std::uint16_t s = 0; s < table.host_count(); ++s)
      for (std::uint16_t d = 0; d < table.host_count(); ++d) {
        if (s == d) continue;
        for (auto h : table.route(s, d).in_transit_hosts) ++duty[h];
      }
    std::size_t max_duty = 0;
    for (auto& [h, n] : duty) max_duty = std::max(max_duty, n);
    return std::pair(max_duty, table.average_trunk_hops());
  };
  auto [low_duty, low_hops] = duty_and_hops(routing::ItbHostSelection::kLowestIndex);
  auto [spread_duty, spread_hops] = duty_and_hops(routing::ItbHostSelection::kSpread);
  EXPECT_LT(spread_duty, low_duty);
  EXPECT_DOUBLE_EQ(spread_hops, low_hops);
}

TEST(RoutingOpts, SpreadRoutesStillDeliver) {
  auto c = small_cluster(routing::Policy::kItb,
                         routing::ItbHostSelection::kSpread);
  int got = 0;
  for (std::uint16_t h = 0; h < 8; ++h)
    c->port(h).set_receive_handler(
        [&](sim::Time, std::uint16_t, packet::Bytes) { ++got; });
  for (std::uint16_t h = 0; h < 8; ++h)
    c->port(h).send(static_cast<std::uint16_t>((h + 5) % 8),
                    packet::Bytes(300, 1));
  c->run();
  EXPECT_EQ(got, 8);
}

TEST(RoutingOpts, ItbKernelsMatchUpDownResults) {
  // Same kernel, both policies: byte counts must agree (routing must never
  // change what the application sees).
  auto a = small_cluster(routing::Policy::kUpDown);
  auto b = small_cluster(routing::Policy::kItb);
  auto ra = workload::run_all_to_all(a->queue(), a->ports(), 512, 1);
  auto rb = workload::run_all_to_all(b->queue(), b->ports(), 512, 1);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_EQ(ra.bytes, rb.bytes);
}

}  // namespace
