// Deadlock-engine subsystem (DESIGN.md §6l): the policy interface that
// re-expresses up*/down*, the paper's ITBs and the new virtual-channel
// escape engine behind one abstraction — lane ladder decomposition, the
// vc-lane fallback when a minimal route needs more segments than lanes,
// per-lane CDG verification, cluster wiring (bind, recovery re-bind), the
// multi-lane zero-allocation steady state, and patch-vs-fresh parity for
// kVcEscape tables.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>

#include "itb/core/cluster.hpp"
#include "itb/engine/engine.hpp"
#include "itb/sim/alloc_hook.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using engine::EngineKind;
using engine::EngineSpec;
using packet::Bytes;

// ------------------------------------------------------------ factory --

TEST(EngineFactory, ThreeEnginesExposeTheirContracts) {
  const auto ud = engine::make_engine({EngineKind::kUpDown, 1});
  EXPECT_EQ(ud->kind(), EngineKind::kUpDown);
  EXPECT_STREQ(ud->name(), "updown");
  EXPECT_EQ(ud->policy(), routing::Policy::kUpDown);
  EXPECT_EQ(ud->lane_count(), 1u);
  EXPECT_EQ(ud->buffer_lanes_per_port(), 1u);
  EXPECT_FALSE(ud->uses_host_buffers());

  const auto itb = engine::make_engine({EngineKind::kItb, 1});
  EXPECT_EQ(itb->kind(), EngineKind::kItb);
  EXPECT_STREQ(itb->name(), "itb");
  EXPECT_EQ(itb->policy(), routing::Policy::kItb);
  EXPECT_EQ(itb->lane_count(), 1u);
  EXPECT_TRUE(itb->uses_host_buffers());

  const auto vc = engine::make_engine({EngineKind::kVcEscape, 3});
  EXPECT_EQ(vc->kind(), EngineKind::kVcEscape);
  EXPECT_STREQ(vc->name(), "vc-escape");
  EXPECT_EQ(vc->policy(), routing::Policy::kVcEscape);
  EXPECT_EQ(vc->lane_count(), 3u);
  EXPECT_EQ(vc->buffer_lanes_per_port(), 3u);
  EXPECT_FALSE(vc->uses_host_buffers());

  // The escape scheme needs at least two lanes to mean anything.
  EXPECT_GE(engine::make_engine({EngineKind::kVcEscape, 0})->lane_count(), 2u);
  EXPECT_STREQ(engine::to_string(EngineKind::kVcEscape), "vc-escape");
}

// ------------------------------------------------- ladder decomposition --

/// Valley fabric: two hosts whose unique minimal path is
/// down,up,down,up (3 up*/down* segments), while the shortest legal
/// up*/down* route detours over the root (6 trunks). Three towers hang off
/// root 0 so the BFS depths put the valley floor below both peaks:
///
///   0-6-7-[1]   0-10-11-[3]   0-8-9-[5]      (towers)
///   [1]-2-[3]-4-[5]                          (valley, hosts at 1 and 5)
topo::Topology make_valley() {
  topo::Topology t;
  for (int s = 0; s < 12; ++s) t.add_switch(4);
  t.add_host();
  t.add_host();
  t.connect_switches(0, 0, 6, 0);
  t.connect_switches(6, 1, 7, 0);
  t.connect_switches(7, 1, 1, 0);
  t.connect_switches(0, 1, 8, 0);
  t.connect_switches(8, 1, 9, 0);
  t.connect_switches(9, 1, 5, 0);
  t.connect_switches(0, 2, 10, 0);
  t.connect_switches(10, 1, 11, 0);
  t.connect_switches(11, 1, 3, 0);
  t.connect_switches(1, 1, 2, 0);
  t.connect_switches(2, 1, 3, 1);
  t.connect_switches(3, 2, 4, 0);
  t.connect_switches(4, 1, 5, 1);
  t.attach_host(0, 1, 2);
  t.attach_host(1, 5, 2);
  return t;
}

TEST(LaneLadder, ValleyRouteDecomposesIntoThreeSegments) {
  const auto t = make_valley();
  routing::UpDown ud(t, 0);
  routing::Router router(ud);
  routing::RouteTable vc3(router, routing::Policy::kVcEscape, 1, 3);

  const auto& r = vc3.route(0, 1);
  ASSERT_EQ(r.trunk_hops(), 4u);  // the minimal valley path
  EXPECT_EQ(router.updown_segments(r.trunk_channels), 3u);
  EXPECT_TRUE(r.in_transit_hosts.empty());
  ASSERT_EQ(r.segments.size(), 1u);

  auto eng = engine::make_engine({EngineKind::kVcEscape, 3});
  eng->bind(ud, t, {});
  const auto lanes = engine::trunk_lanes(*eng, r);
  EXPECT_EQ(lanes, (std::vector<std::uint8_t>{0, 1, 1, 2}));
}

TEST(LaneLadder, RouteFallsBackToUpDownWhenOutOfLanes) {
  const auto t = make_valley();
  routing::UpDown ud(t, 0);
  routing::Router router(ud);
  routing::RouteTable vc2(router, routing::Policy::kVcEscape, 1, 2);
  routing::RouteTable plain(router, routing::Policy::kUpDown, 1);

  // 3 segments > 2 lanes: the row degrades to the exact up*/down* route.
  EXPECT_EQ(vc2.route(0, 1).trunk_hops(), 6u);
  EXPECT_EQ(vc2.route(0, 1).trunk_channels, plain.route(0, 1).trunk_channels);
  EXPECT_LT(vc2.minimal_fraction(router), 1.0);

  // One more lane restores minimality — and the per-lane CDG stays acyclic
  // in both configurations.
  routing::RouteTable vc3(router, routing::Policy::kVcEscape, 1, 3);
  EXPECT_DOUBLE_EQ(vc3.minimal_fraction(router), 1.0);
  for (unsigned lanes : {2u, 3u}) {
    auto eng = engine::make_engine({EngineKind::kVcEscape, lanes});
    eng->bind(ud, t, {});
    const auto& table = lanes == 2 ? vc2 : vc3;
    EXPECT_TRUE(engine::verify_deadlock_free(*eng, table, t)) << lanes;
  }
}

TEST(LaneLadder, LaneSequenceIsMonotoneAndMatchesSegmentCount) {
  // Invariant on every solved route, fallback rows included: lanes only
  // ratchet upward and the last lane index is segments - 1.
  for (auto& t : {topo::make_fig1_network(), make_valley(),
                  topo::make_ring(8, 2)}) {
    routing::UpDown ud(t, 0);
    routing::Router router(ud);
    routing::RouteTable table(router, routing::Policy::kVcEscape, 1, 3);
    auto eng = engine::make_engine({EngineKind::kVcEscape, 3});
    eng->bind(ud, t, {});
    const auto hosts = t.host_count();
    for (std::uint16_t s = 0; s < hosts; ++s)
      for (std::uint16_t d = 0; d < hosts; ++d) {
        if (s == d) continue;
        const auto& r = table.route(s, d);
        if (r.segments.empty()) continue;
        const auto lanes = engine::trunk_lanes(*eng, r);
        for (std::size_t i = 1; i < lanes.size(); ++i)
          EXPECT_LE(lanes[i - 1], lanes[i]);
        if (!lanes.empty())
          EXPECT_EQ(lanes.back() + 1u,
                    router.updown_segments(r.trunk_channels));
      }
  }
}

// ----------------------------------------------------- minimal_fraction --

TEST(SolveFlags, UnrestrictedEngineReportsFullMinimalityUnspecialCased) {
  // Satellite check: an engine with no routing restriction must come out of
  // the same minimal_fraction computation as everything else and report
  // exactly 1.0 — no policy-specific carve-out.
  for (auto& t : {topo::make_fig1_network(), topo::make_fat_tree(4)}) {
    routing::UpDown ud(t, 0);
    routing::Router router(ud);
    routing::RouteTable vc(router, routing::Policy::kVcEscape, 1, 8);
    EXPECT_DOUBLE_EQ(vc.minimal_fraction(router), 1.0);
    EXPECT_DOUBLE_EQ(vc.average_itbs(), 0.0);
  }
}

// ------------------------------------------------------ cluster wiring --

TEST(EngineCluster, VcEscapeDeliversEndToEndWithoutHostBuffers) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.engine = EngineSpec{EngineKind::kVcEscape, 2};
  core::Cluster c(std::move(cfg));

  EXPECT_EQ(c.network().lane_count(), 2u);
  EXPECT_EQ(c.deadlock_engine().kind(), EngineKind::kVcEscape);
  EXPECT_EQ(c.nic(0).injection_lane(), 0u);
  EXPECT_TRUE(c.routes_deadlock_free());

  int got = 0;
  c.port(5).set_receive_handler(
      [&got](sim::Time, std::uint16_t, Bytes) { ++got; });
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(c.port(0).send(5, Bytes(256, static_cast<std::uint8_t>(i))));
  c.run();
  EXPECT_EQ(got, 8);
  EXPECT_EQ(c.network().in_flight(), 0u);
  // Minimal routing with NO in-transit forwarding: that is the trade.
  for (std::uint16_t h = 0; h < c.host_count(); ++h)
    EXPECT_EQ(c.nic(h).stats().itb_forwarded, 0u);
}

TEST(EngineCluster, PolicyAloneDerivesTheMatchingEngine) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  core::Cluster c(std::move(cfg));
  EXPECT_EQ(c.deadlock_engine().kind(), EngineKind::kItb);
  EXPECT_EQ(c.network().lane_count(), 1u);
  EXPECT_TRUE(c.routes_deadlock_free());
}

TEST(EngineCluster, VcEscapeChaosSoakHasNoUnrecoveredWedges) {
  // PR-3/PR-4 style chaos (link + switch windows, NIC stalls, lossy wire)
  // with the watchdog armed: the VC engine must ride the remap/re-bind
  // cycle with zero unrecovered stall verdicts and a reconciled ledger.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.engine = EngineSpec{EngineKind::kVcEscape, 2};
  cfg.gm_config.retransmit_timeout = 150 * sim::kUs;
  cfg.gm_config.max_retries = 8;
  cfg.remap_delay = 300 * sim::kUs;
  cfg.fault_plan.drop_probability = 0.02;
  cfg.watchdog.enabled = true;
  fault::FaultSchedule::ChaosSpec spec;
  spec.horizon = 8 * sim::kMs;
  spec.link_windows = 3;
  spec.switch_windows = 1;
  spec.stall_windows = 1;
  spec.mean_duration = 400 * sim::kUs;
  spec.seed = 9;
  spec.protected_hosts = {0, 5};
  cfg.fault_schedule = fault::FaultSchedule::chaos(cfg.topology, spec);
  core::Cluster c(std::move(cfg));

  int got = 0;
  c.port(5).set_receive_handler(
      [&got](sim::Time, std::uint16_t, Bytes) { ++got; });
  auto accepted = std::make_shared<int>(0);
  auto feed = std::make_shared<std::function<void()>>();
  *feed = [&c, accepted, feed] {
    if (c.port(0).peer_failed(5)) return;
    while (*accepted < 30 &&
           c.port(0).send(5, Bytes(1000, static_cast<std::uint8_t>(*accepted))))
      ++*accepted;
    if (*accepted < 30)
      c.queue().schedule_in(100 * sim::kUs, [feed] { (*feed)(); });
  };
  (*feed)();
  c.run();

  EXPECT_GT(got, 0);
  const auto& ns = c.network().stats();
  EXPECT_EQ(ns.injected, ns.delivered + ns.dropped + ns.lost);
  ASSERT_NE(c.health(), nullptr);
  EXPECT_EQ(c.health()->verdict().unrecovered, 0u);
  ASSERT_NE(c.recovery(), nullptr);
  EXPECT_GE(c.recovery()->stats().remaps, 1u);
}

// -------------------------------------------------- zero-alloc hot path --

/// Re-injects every delivered packet from its original source: a closed
/// recirculating flow set (same as slab_pool_test, but over routes that
/// WOULD deadlock on one lane — the 2-lane ring proof running forever).
class RecyclingHost : public net::HostHooks {
 public:
  struct Flow {
    std::uint16_t src = 0;
    Bytes route_prefix;
  };

  RecyclingHost(net::Network& network, std::vector<Flow>& flows)
      : network_(network), flows_(flows) {}

  void on_rx_head(sim::Time, net::TxHandle) override {}
  void on_rx_early_header(sim::Time, net::TxHandle, const Bytes&) override {}
  void on_tx_started(sim::Time, net::TxHandle) override {}
  void on_tx_complete(sim::Time, net::TxHandle) override {}
  void on_rx_complete(sim::Time, net::WirePacket pkt) override {
    Flow& flow = flows_[pkt.src_host];
    Bytes buf = std::move(pkt.bytes);
    buf.insert(buf.begin(), flow.route_prefix.begin(),
               flow.route_prefix.end());
    network_.inject(flow.src, std::move(buf));
  }

 private:
  net::Network& network_;
  std::vector<Flow>& flows_;
};

TEST(ZeroAlloc, MultiLaneSteadyStateMakesNoHeapAllocations) {
  if (!sim::alloc_counting_available())
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build)";

  // Ring of four, one host per switch, every host sending two hops
  // clockwise — the canonical cyclic dependency, legal only because the
  // 2-lane escape engine is arbitrating.
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_switch(4);
  for (int i = 0; i < 4; ++i) topo.add_host();
  for (std::uint16_t s = 0; s < 4; ++s)
    topo.connect_switches(s, 1, static_cast<std::uint16_t>((s + 1) % 4), 0);
  for (std::uint16_t h = 0; h < 4; ++h) topo.attach_host(h, h, 2);

  sim::EventQueue queue;
  sim::Tracer tracer;
  net::Network network(topo, net::NetTiming{}, queue, tracer);
  auto eng = engine::make_engine({EngineKind::kVcEscape, 2});
  eng->bind(routing::UpDown(topo, 0), topo, {});
  network.set_lane_policy(eng.get());
  ASSERT_EQ(network.lane_count(), 2u);

  std::vector<RecyclingHost::Flow> flows(4);
  std::vector<std::unique_ptr<RecyclingHost>> hosts;
  for (std::uint16_t h = 0; h < 4; ++h) {
    hosts.push_back(std::make_unique<RecyclingHost>(network, flows));
    network.attach_host(h, hosts.back().get());
  }
  const packet::Route route{1, 1, 2};
  for (std::uint16_t h = 0; h < 4; ++h) {
    flows[h].src = h;
    for (std::uint8_t port : route)
      flows[h].route_prefix.push_back(packet::encode_route_byte(port));
    network.inject(h, packet::build_packet(route, packet::PacketType::kGm,
                                           Bytes(64, h)));
  }

  queue.run_events(100'000);
  ASSERT_GT(network.stats().delivered, 0u);

  const std::uint64_t before = sim::total_allocations();
  queue.run_events(200'000);
  const std::uint64_t after = sim::total_allocations();
  EXPECT_EQ(after - before, 0u)
      << "multi-lane steady state allocated " << (after - before) << " times";
  EXPECT_EQ(network.in_flight(), 4u);  // the flows keep circulating
}

// ------------------------------------------------------ patch soundness --

TEST(VcEscape, PatchedTableMatchesFreshSolveAfterLinkLoss) {
  const auto t = topo::make_fig1_network();
  routing::UpDown base(t, 0);

  auto diff = [&t](const routing::UpDown& from, const routing::UpDown& to) {
    routing::LinkDelta delta;
    for (topo::LinkId l = 0; l < t.link_count(); ++l) {
      const bool was = from.link_usable(l);
      const bool now = to.link_usable(l);
      if (was && !now)
        delta.removed.push_back(l);
      else if (!was && now)
        delta.added.push_back(l);
      else if (was && now && from.up_end(l) != to.up_end(l)) {
        delta.removed.push_back(l);
        delta.added.push_back(l);
      }
    }
    return delta;
  };

  int exercised = 0;
  for (topo::LinkId l = 0; l < t.link_count() && exercised < 3; ++l) {
    const auto& lk = t.link(l);
    if (lk.a.node.kind != topo::NodeKind::kSwitch ||
        lk.b.node.kind != topo::NodeKind::kSwitch)
      continue;
    std::vector<char> mask(t.link_count(), 1);
    mask[l] = 0;
    routing::UpDown degraded(t, 0, mask);
    bool connected = true;
    for (std::uint16_t sw = 0; sw < t.switch_count(); ++sw)
      connected = connected && degraded.reached(sw);
    if (!connected) continue;  // a cut link would unroute hosts, skip
    ++exercised;

    routing::Router base_router(base);
    routing::RouteTable table(base_router, routing::Policy::kVcEscape, 1, 2);
    table.enable_patching(base_router);

    routing::Router degraded_router(degraded);
    table.patch(degraded_router, diff(base, degraded), 1);

    routing::RouteTable fresh(degraded_router, routing::Policy::kVcEscape, 1,
                              2);
    std::ostringstream patched, solved;
    table.dump(patched);
    fresh.dump(solved);
    EXPECT_EQ(patched.str(), solved.str()) << "after losing link " << l;
  }
  EXPECT_GE(exercised, 1);
}

}  // namespace
