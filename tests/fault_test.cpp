// Fault windows and remap-and-recover: scheduled link/switch/host outages
// and NIC stalls driven through net::Network, the mapper re-running over the
// degraded fabric, and GM masking (or gracefully reporting) the damage.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "itb/core/cluster.hpp"
#include "itb/fault/recovery.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

// Message ids observed by one receiver, for exactly-once assertions.
struct Observed {
  std::vector<int> order;
  std::multiset<int> ids;
};

// Feed `count` tagged messages src -> dst, refilling as tokens return and
// aborting the feed if the connection is declared dead. Returns how many
// sends were accepted.
int feed_messages(core::Cluster& c, std::uint16_t src, std::uint16_t dst,
                  int count, std::size_t size, Observed* obs) {
  if (obs) {
    c.port(dst).set_receive_handler([obs](sim::Time, std::uint16_t, Bytes m) {
      obs->order.push_back(m[0]);
      obs->ids.insert(m[0]);
    });
  }
  auto accepted = std::make_shared<int>(0);
  auto feed = std::make_shared<std::function<void()>>();
  *feed = [&c, src, dst, count, size, accepted, feed] {
    if (c.port(src).peer_failed(dst)) return;
    while (*accepted < count &&
           c.port(src).send(
               dst, Bytes(size, static_cast<std::uint8_t>(*accepted))))
      ++*accepted;
    if (*accepted < count) c.queue().schedule_in(100 * sim::kUs, [feed] { (*feed)(); });
  };
  (*feed)();
  c.run();
  return *accepted;
}

void expect_reconciled(core::Cluster& c) {
  const auto& ns = c.network().stats();
  EXPECT_EQ(ns.injected, ns.delivered + ns.dropped + ns.lost);
  ASSERT_NE(c.faults(), nullptr);
  EXPECT_EQ(ns.lost, c.faults()->stats().total_lost());
  std::uint64_t tokens = 0;
  for (std::uint16_t h = 0; h < c.host_count(); ++h)
    tokens += static_cast<std::uint64_t>(c.port(h).tokens_in_use());
  EXPECT_EQ(tokens, 0u) << "send tokens leaked";
}

TEST(FaultSchedule, ChaosIsDeterministicPerSeed) {
  const auto topo = topo::make_fig1_network();
  fault::FaultSchedule::ChaosSpec spec;
  spec.horizon = 10 * sim::kMs;
  spec.link_windows = 4;
  spec.switch_windows = 2;
  spec.host_windows = 2;
  spec.stall_windows = 2;
  spec.seed = 42;
  spec.protected_hosts = {0, 7};

  const auto a = fault::FaultSchedule::chaos(topo, spec);
  const auto b = fault::FaultSchedule::chaos(topo, spec);
  ASSERT_EQ(a.windows().size(), b.windows().size());
  ASSERT_EQ(a.windows().size(), 10u);
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    EXPECT_EQ(a.windows()[i].kind, b.windows()[i].kind);
    EXPECT_EQ(a.windows()[i].target, b.windows()[i].target);
    EXPECT_EQ(a.windows()[i].start, b.windows()[i].start);
    EXPECT_EQ(a.windows()[i].end, b.windows()[i].end);
  }
  for (const auto& w : a.windows()) {
    EXPECT_LT(w.start, w.end);
    if (w.kind == fault::FaultKind::kHostDown ||
        w.kind == fault::FaultKind::kNicStall) {
      EXPECT_NE(w.target, 0u);
      EXPECT_NE(w.target, 7u);
    }
  }

  spec.seed = 43;
  const auto other = fault::FaultSchedule::chaos(topo, spec);
  bool differs = false;
  for (std::size_t i = 0; i < other.windows().size(); ++i)
    differs |= other.windows()[i].start != a.windows()[i].start ||
               other.windows()[i].target != a.windows()[i].target;
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, RejectsEmptyWindowsAndBadTargets) {
  fault::FaultSchedule s;
  EXPECT_THROW(s.link_down(0, 100, 100), std::invalid_argument);
  EXPECT_THROW(s.link_down(0, 200, 100), std::invalid_argument);

  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed();
  cfg.fault_schedule.switch_down(55, 100, 200);  // only 2 switches exist
  EXPECT_THROW(core::Cluster{std::move(cfg)}, std::invalid_argument);
}

// The acceptance scenario: a scheduled link-down window on the Fig. 6
// testbed path h0 -> h2 triggers a mapper remap onto the second trunk; GM
// go-back-N masks the outage and every in-flight message is delivered
// exactly once; the fault/remap/recovery metrics land in the JSON export
// and the loss accounting reconciles.
TEST(FaultRecovery, TestbedLinkDownRemapsAndDeliversExactlyOnce) {
  topo::TestbedIds ids;
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed(&ids);
  cfg.policy = routing::Policy::kUpDown;
  cfg.gm_config.retransmit_timeout = 150 * sim::kUs;
  cfg.remap_delay = 200 * sim::kUs;

  // The trunk the installed h0 -> h2 route crosses (the mapper is
  // deterministic, so a probe run over the same fabric finds it). Route
  // structures index links in the mapper's discovered graph, so recover the
  // fabric link from the port-faithful route bytes: the first byte is the
  // exit port on switch 0.
  const auto probe = mapper::run(cfg.topology, cfg.policy, 0);
  const auto& before = probe.table.route(ids.host1, ids.host2);
  ASSERT_FALSE(before.segments.empty());
  const std::uint8_t exit_port = before.segments.front().front();
  std::optional<topo::LinkId> victim_link;
  for (topo::LinkId l = 0; l < cfg.topology.link_count(); ++l) {
    const auto& link = cfg.topology.link(l);
    for (const auto& end : {link.a, link.b})
      if (end.node == topo::switch_id(ids.switch1) && end.port == exit_port)
        victim_link = l;
  }
  ASSERT_TRUE(victim_link.has_value());
  const auto victim = *victim_link;
  cfg.fault_schedule.link_down(victim, 120 * sim::kUs, 30 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);

  // Capture the mid-window route (the final window-close remap restores
  // the original table, so check while the trunk is still down). The swap
  // must have moved h0 -> h2 off the dead trunk's exit port.
  std::optional<std::uint8_t> mid_window_exit_port;
  c.queue().schedule_at(5 * sim::kMs, [&] {
    if (const auto* t = c.recovery()->current_table()) {
      const auto& r = t->route(ids.host1, ids.host2);
      if (!r.segments.empty())
        mid_window_exit_port = r.segments.front().front();
    }
  });

  Observed obs;
  const int accepted = feed_messages(c, ids.host1, ids.host2, 30, 1000, &obs);

  EXPECT_EQ(accepted, 30);
  ASSERT_EQ(obs.order.size(), 30u) << "messages lost or duplicated";
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(obs.order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(obs.ids.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(obs.ids.count(i), 1u);

  // The outage actually bit and the mapper recovered over the other trunk.
  EXPECT_GT(c.network().stats().lost, 0u);
  EXPECT_GE(c.recovery()->stats().remaps, 2u);  // open + close remaps
  ASSERT_TRUE(mid_window_exit_port.has_value());
  EXPECT_NE(*mid_window_exit_port, exit_port);
  EXPECT_FALSE(c.recovery()->recovery_latency().empty());

  // Telemetry: counters in the registry, histogram percentiles in the JSON.
  const auto& reg = c.telemetry().registry();
  EXPECT_GE(reg.value("fault", "remaps").value_or(0), 2.0);
  EXPECT_GE(reg.value("fault", "windows_opened").value_or(0), 1.0);
  EXPECT_GT(reg.value("fault", "lost_link_down").value_or(0), 0.0);
  EXPECT_GT(reg.value("fault", "recovery_latency_p50_ns").value_or(0), 0.0);
  std::ostringstream json;
  c.telemetry().write_json(json);
  EXPECT_NE(json.str().find("\"recovery_latency_p50_ns\""), std::string::npos);
  EXPECT_NE(json.str().find("\"windows_opened\""), std::string::npos);

  expect_reconciled(c);
}

TEST(FaultRecovery, LinkDownWithoutRemapRecoversWhenWindowCloses) {
  // auto_remap off: the route stays pinned at the dead trunk, GM retries
  // until the window closes, then everything drains exactly once.
  topo::TestbedIds ids;
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed(&ids);
  cfg.auto_remap = false;
  cfg.gm_config.retransmit_timeout = 150 * sim::kUs;
  const auto probe = mapper::run(cfg.topology, routing::Policy::kUpDown, 0);
  const std::uint8_t exit_port =
      probe.table.route(ids.host1, ids.host2).segments.front().front();
  std::optional<topo::LinkId> victim;
  for (topo::LinkId l = 0; l < cfg.topology.link_count(); ++l) {
    const auto& link = cfg.topology.link(l);
    for (const auto& end : {link.a, link.b})
      if (end.node == topo::switch_id(ids.switch1) && end.port == exit_port)
        victim = l;
  }
  ASSERT_TRUE(victim.has_value());
  cfg.fault_schedule.link_down(*victim, 120 * sim::kUs, 2 * sim::kMs);

  core::Cluster c(std::move(cfg));
  EXPECT_EQ(c.recovery(), nullptr);
  Observed obs;
  feed_messages(c, ids.host1, ids.host2, 20, 1000, &obs);
  ASSERT_EQ(obs.order.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(obs.order[static_cast<std::size_t>(i)], i);
  EXPECT_GT(c.network().stats().lost, 0u);
  EXPECT_GT(c.port(ids.host1).stats().retransmissions, 0u);
  expect_reconciled(c);
}

TEST(FaultRecovery, ItbHostFailureMidPathReroutesWithoutItb) {
  // Fig. 1, ITB policy: the minimal route 4 -> 6 -> 1 needs the in-transit
  // host on switch 6. Kill that host mid-path: the remap must fall back to
  // the pure up*/down* route (switch 6 has no other host) and traffic keeps
  // flowing during the window.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  cfg.gm_config.retransmit_timeout = 150 * sim::kUs;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.fault_schedule.host_down(6, 200 * sim::kUs, 40 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_EQ(c.route_table()->route(4, 1).itb_count(), 1u);
  ASSERT_EQ(c.route_table()->route(4, 1).in_transit_hosts.front(), 6);

  std::size_t mid_window_itbs = 99;
  bool mid_window_reachable = false;
  sim::Time last_delivery = 0;
  c.queue().schedule_at(10 * sim::kMs, [&] {
    if (const auto* t = c.recovery()->current_table()) {
      const auto& r = t->route(4, 1);
      mid_window_itbs = r.itb_count();
      mid_window_reachable = !r.segments.empty();
    }
  });

  Observed obs;
  c.port(1).set_receive_handler([&](sim::Time t, std::uint16_t, Bytes m) {
    obs.order.push_back(m[0]);
    last_delivery = t;
  });
  int next = 0;
  std::function<void()> feeder = [&] {
    while (next < 40 &&
           c.port(4).send(1, Bytes(900, static_cast<std::uint8_t>(next))))
      ++next;
    if (next < 40) c.queue().schedule_in(100 * sim::kUs, feeder);
  };
  feeder();
  c.run();

  ASSERT_EQ(obs.order.size(), 40u);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(obs.order[static_cast<std::size_t>(i)], i);
  ASSERT_TRUE(mid_window_reachable);
  EXPECT_EQ(mid_window_itbs, 0u);  // rerouted without the dead ITB host
  // Deliveries continued during the window, not only after it closed.
  EXPECT_LT(last_delivery, 40 * sim::kMs);
  EXPECT_GE(c.recovery()->stats().remaps, 1u);
  expect_reconciled(c);
}

TEST(FaultRecovery, DeadPeerFailsPendingSendsAndReturnsTokens) {
  // A host that stays down past GM's retry budget: sends to it must fail
  // through the callback with tokens returned, not hang forever.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.gm_config.retransmit_timeout = 100 * sim::kUs;
  cfg.gm_config.max_retries = 4;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.fault_schedule.host_down(6, 150 * sim::kUs, 200 * sim::kMs);

  core::Cluster c(std::move(cfg));
  Observed obs;
  std::uint32_t failed_reported = 0;
  std::uint16_t failed_dst = 0xFFFF;
  c.port(0).set_send_failure_handler(
      [&](sim::Time, std::uint16_t dst, std::uint32_t n) {
        failed_dst = dst;
        failed_reported += n;
      });
  const int accepted = feed_messages(c, 0, 6, 25, 800, &obs);

  EXPECT_TRUE(c.port(0).peer_failed(6));
  EXPECT_EQ(failed_dst, 6);
  EXPECT_EQ(c.port(0).stats().send_failures, 1u);
  EXPECT_GT(failed_reported, 0u);
  EXPECT_EQ(c.port(0).stats().messages_failed, failed_reported);
  // Every accepted message either arrived or was failed; none vanished. A
  // message can be counted on both sides (delivered, then its ack died with
  // the host), so this is >= rather than ==; the ids multiset guards the
  // at-most-once half.
  EXPECT_GE(obs.order.size() + failed_reported,
            static_cast<std::size_t>(accepted));
  for (int i = 0; i < accepted; ++i) EXPECT_LE(obs.ids.count(i), 1u);
  EXPECT_EQ(c.port(0).tokens_in_use(), 0);
  // A fresh send to the dead peer fails fast until the connection resets.
  EXPECT_FALSE(c.port(0).send(6, Bytes(100, 1)));
  c.port(0).reset_connection(6);
  c.port(6).reset_connection(0);
  EXPECT_FALSE(c.port(0).peer_failed(6));
  expect_reconciled(c);
}

TEST(FaultRecovery, NicStallIsLosslessBackpressure) {
  // A stalled NIC parks traffic under Stop&Go; nothing may be lost and no
  // remap happens (the topology never changed).
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.gm_config.retransmit_timeout = 400 * sim::kUs;
  cfg.fault_schedule.nic_stall(1, 100 * sim::kUs, 1500 * sim::kUs);

  core::Cluster c(std::move(cfg));
  EXPECT_EQ(c.recovery(), nullptr);  // stalls are not topology faults
  Observed obs;
  feed_messages(c, 0, 1, 15, 700, &obs);
  ASSERT_EQ(obs.order.size(), 15u);
  for (int i = 0; i < 15; ++i)
    EXPECT_EQ(obs.order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(c.network().stats().lost, 0u);
  EXPECT_EQ(c.faults()->stats().windows_opened, 1u);
  EXPECT_EQ(c.faults()->stats().windows_closed, 1u);
  expect_reconciled(c);
}

TEST(FaultRecovery, SwitchDownKillsAndRecovers) {
  // Down a leaf switch on the Fig. 1 fabric: its host drops off the map
  // (remap reports it unreachable) and comes back when the window closes.
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.gm_config.retransmit_timeout = 200 * sim::kUs;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.fault_schedule.switch_down(7, 20 * sim::kUs, 5 * sim::kMs);

  core::Cluster c(std::move(cfg));
  Observed obs;
  feed_messages(c, 0, 7, 20, 900, &obs);
  ASSERT_EQ(obs.order.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(obs.order[static_cast<std::size_t>(i)], i);
  EXPECT_GE(c.recovery()->stats().remaps, 2u);
  EXPECT_GT(c.faults()->stats().lost_switch_down +
                c.faults()->stats().lost_link_down,
            0u);
  expect_reconciled(c);
}

TEST(FaultRecovery, ChaosSoakIsDeterministicAndExactlyOnce) {
  auto run_once = [](std::uint64_t seed) {
    core::ClusterConfig cfg;
    cfg.topology = topo::make_fig1_network();
    cfg.policy = routing::Policy::kItb;
    cfg.gm_config.retransmit_timeout = 150 * sim::kUs;
    cfg.gm_config.max_retries = 8;
    cfg.remap_delay = 300 * sim::kUs;
    cfg.fault_plan.drop_probability = 0.02;
    fault::FaultSchedule::ChaosSpec spec;
    spec.horizon = 8 * sim::kMs;
    spec.link_windows = 3;
    spec.switch_windows = 1;
    spec.stall_windows = 1;
    spec.mean_duration = 400 * sim::kUs;
    spec.seed = seed;
    spec.protected_hosts = {0, 5};
    cfg.fault_schedule = fault::FaultSchedule::chaos(cfg.topology, spec);

    core::Cluster c(std::move(cfg));
    Observed obs;
    const int accepted = feed_messages(c, 0, 5, 30, 1100, &obs);

    // Exactly-once: every delivered id appears exactly once, and together
    // with failed messages accounts for every accepted send.
    for (int i = 0; i < accepted; ++i) EXPECT_LE(obs.ids.count(i), 1u);
    EXPECT_GE(obs.ids.size() + c.port(0).stats().messages_failed,
              static_cast<std::size_t>(accepted));
    expect_reconciled(c);

    struct Fingerprint {
      sim::Time end;
      std::size_t delivered;
      std::uint64_t lost, injected, remaps;
    } fp{c.queue().now(), obs.ids.size(), c.network().stats().lost,
         c.network().stats().injected,
         c.recovery() ? c.recovery()->stats().remaps : 0};
    return std::make_tuple(fp.end, fp.delivered, fp.lost, fp.injected,
                           fp.remaps);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

}  // namespace
