// Unit tests for the host PCI bus model and the LANai McpCpu executor.
#include <gtest/gtest.h>

#include <vector>

#include "itb/host/pci.hpp"
#include "itb/nic/lanai.hpp"

namespace {

using namespace itb;

// -------------------------------------------------------------- PciBus ---

TEST(PciBus, SingleTransferTiming) {
  sim::EventQueue q;
  host::PciTiming timing;  // 600 ns setup, 485 ns / 256 B
  host::PciBus bus(q, timing);
  sim::Time done_at = -1;
  bus.dma(256, [&] { done_at = q.now(); });
  EXPECT_TRUE(bus.busy());
  q.run();
  EXPECT_EQ(done_at, 600 + 485);
  EXPECT_FALSE(bus.busy());
  EXPECT_EQ(bus.completed(), 1u);
}

TEST(PciBus, TransfersSerialize) {
  sim::EventQueue q;
  host::PciBus bus(q, host::PciTiming{});
  std::vector<sim::Time> done;
  for (int i = 0; i < 3; ++i) bus.dma(256, [&] { done.push_back(q.now()); });
  q.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 1085);
  EXPECT_EQ(done[1], 2 * 1085);
  EXPECT_EQ(done[2], 3 * 1085);
}

TEST(PciBus, ZeroByteTransferCostsSetupOnly) {
  sim::EventQueue q;
  host::PciBus bus(q, host::PciTiming{});
  sim::Time done_at = -1;
  bus.dma(0, [&] { done_at = q.now(); });
  q.run();
  EXPECT_EQ(done_at, 600);
}

TEST(PciBus, Pci32IsSlowerThanPci64) {
  EXPECT_GT(host::PciTiming::pci32_33().transfer_time(4096),
            host::PciTiming::pci64_66().transfer_time(4096));
}

TEST(PciBus, QueueingWhileBusy) {
  sim::EventQueue q;
  host::PciBus bus(q, host::PciTiming{});
  int order = 0;
  int first = 0, second = 0;
  bus.dma(1024, [&] { first = ++order; });
  // Enqueue a second transfer from within the first's completion.
  bus.dma(8, [&] { second = ++order; });
  q.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

// -------------------------------------------------------------- McpCpu ---

TEST(McpCpu, JobCostsCyclesPlusDispatch) {
  sim::EventQueue q;
  nic::LanaiTiming t;
  nic::McpCpu cpu(q, t);
  sim::Time done_at = -1;
  cpu.post(nic::McpPriority::kRecvComplete, 10, [&] { done_at = q.now(); });
  q.run();
  EXPECT_EQ(done_at, t.cycles(10 + t.dispatch));
  EXPECT_EQ(cpu.busy_ns(), t.cycles(10 + t.dispatch));
}

TEST(McpCpu, SkipDispatchOmitsTheDispatchCost) {
  sim::EventQueue q;
  nic::LanaiTiming t;
  nic::McpCpu cpu(q, t);
  sim::Time done_at = -1;
  cpu.post(nic::McpPriority::kEarlyRecv, 10, [&] { done_at = q.now(); }, true);
  q.run();
  EXPECT_EQ(done_at, t.cycles(10));
}

TEST(McpCpu, HigherPriorityJobsRunFirst) {
  sim::EventQueue q;
  nic::LanaiTiming t;
  nic::McpCpu cpu(q, t);
  std::vector<int> order;
  // Park the CPU on a long job, then post out of priority order.
  cpu.post(nic::McpPriority::kHostRequest, 100, [&] { order.push_back(0); });
  cpu.post(nic::McpPriority::kSdma, 1, [&] { order.push_back(3); });
  cpu.post(nic::McpPriority::kEarlyRecv, 1, [&] { order.push_back(1); });
  cpu.post(nic::McpPriority::kRecvComplete, 1, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(McpCpu, EqualPriorityIsFifo) {
  sim::EventQueue q;
  nic::McpCpu cpu(q, nic::LanaiTiming{});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    cpu.post(nic::McpPriority::kRecvComplete, 1, [&, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(McpCpu, NonPreemptive) {
  // A high-priority job posted while a low-priority one runs waits for it.
  sim::EventQueue q;
  nic::LanaiTiming t;
  nic::McpCpu cpu(q, t);
  sim::Time high_done = -1;
  cpu.post(nic::McpPriority::kHostRequest, 100, [&] {
    cpu.post(nic::McpPriority::kEarlyRecv, 1, [&] { high_done = q.now(); });
  });
  q.run();
  // The high job starts only after the low one's full window.
  EXPECT_EQ(high_done,
            t.cycles(100 + t.dispatch) + t.cycles(1 + t.dispatch));
}

TEST(McpCpu, JobsCanChainWithoutRecursionIssues) {
  sim::EventQueue q;
  nic::McpCpu cpu(q, nic::LanaiTiming{});
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 200)
      cpu.post(nic::McpPriority::kSdma, 1, chain);
  };
  cpu.post(nic::McpPriority::kSdma, 1, chain);
  q.run();
  EXPECT_EQ(depth, 200);
}

TEST(LanaiTiming, DefaultsMatchPaperCalibration) {
  nic::LanaiTiming t;
  // 33 MHz LANai: 30 ns cycles.
  EXPECT_EQ(t.cycle_ns, 30);
  // The Fig. 7 per-packet probe is ~125 ns (4 cycles = 120 ns).
  EXPECT_EQ(t.cycles(t.itb_recv_extra), 120);
}

}  // namespace
