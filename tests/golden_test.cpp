// Golden regression tests: the simulation is deterministic, so the
// paper-calibrated headline numbers are exact values, not ranges. If a
// timing-model change moves them, these tests force the change to be a
// conscious recalibration (update EXPERIMENTS.md alongside).
#include <gtest/gtest.h>

#include "itb/core/experiments.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

double fig7_delta_ns(std::size_t size) {
  auto orig = core::make_fig7_cluster(false);
  auto mod = core::make_fig7_cluster(true);
  auto a = workload::run_pingpong(orig->queue(), orig->port(core::kHost1),
                                  orig->port(core::kHost2), size, 3);
  auto b = workload::run_pingpong(mod->queue(), mod->port(core::kHost1),
                                  mod->port(core::kHost2), size, 3);
  return b.half_rtt_ns - a.half_rtt_ns;
}

double fig8_overhead_ns(std::size_t size) {
  auto ud = core::make_fig8_cluster(false);
  auto itb = core::make_fig8_cluster(true);
  auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                  ud->port(core::kHost2), size, 3);
  auto b = workload::run_pingpong(itb->queue(), itb->port(core::kHost1),
                                  itb->port(core::kHost2), size, 3);
  return 2.0 * (b.half_rtt_ns - a.half_rtt_ns);
}

TEST(Golden, Fig7SteadyStateDeltaIs120ns) {
  // The ITB-capable MCP's per-packet receive-path cost: 4 LANai cycles at
  // 30 ns. (Paper: ~125 ns average.)
  EXPECT_DOUBLE_EQ(fig7_delta_ns(256), 120.0);
  EXPECT_DOUBLE_EQ(fig7_delta_ns(1024), 120.0);
  EXPECT_DOUBLE_EQ(fig7_delta_ns(4000), 120.0);
}

TEST(Golden, Fig7TinyPacketWorstCaseIs234ns) {
  // Early Recv handler collision on the MCP CPU. (Paper: < 300 ns.)
  EXPECT_DOUBLE_EQ(fig7_delta_ns(4), 234.0);
}

TEST(Golden, Fig8PerItbOverheadIs1319ns) {
  // 25 ns (4 wire bytes) + 180 ns (Early Recv) + 780 ns (program DMA)
  // + 360 ns (DMA spin-up) + link extras. (Paper: ~1.3 us.)
  EXPECT_DOUBLE_EQ(fig8_overhead_ns(256), 1319.0);
  EXPECT_DOUBLE_EQ(fig8_overhead_ns(4000), 1319.0);
}

TEST(Golden, Fig7BaselineLatenciesStable) {
  auto orig = core::make_fig7_cluster(false);
  auto row = workload::run_pingpong(orig->queue(), orig->port(core::kHost1),
                                    orig->port(core::kHost2), 4, 3);
  EXPECT_DOUBLE_EQ(row.half_rtt_ns, 9059.5);
  EXPECT_DOUBLE_EQ(row.stddev_ns, 0.0);  // unloaded determinism
}

TEST(Golden, Fig8PathsTraverseFiveSwitchesWorth) {
  // Both Fig. 8 forward paths carry the same switch-count latency: their
  // absolute half-RTTs differ by exactly half the per-ITB overhead.
  auto ud = core::make_fig8_cluster(false);
  auto itb = core::make_fig8_cluster(true);
  auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                  ud->port(core::kHost2), 64, 3);
  auto b = workload::run_pingpong(itb->queue(), itb->port(core::kHost1),
                                  itb->port(core::kHost2), 64, 3);
  EXPECT_DOUBLE_EQ(b.half_rtt_ns - a.half_rtt_ns, 1319.0 / 2.0);
}

}  // namespace
