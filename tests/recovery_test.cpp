// Incremental fault recovery: masked up*/down* orientation, scoped
// re-probe, route-table patching (byte-identical to from-scratch solves),
// epoch-safe hot-swap with NIC send re-sourcing, flap quarantine and storm
// control. Companion bench: bench/fault_recovery.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/fault/recovery.hpp"
#include "itb/mapper/mapper.hpp"
#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"
#include "itb/routing/updown.hpp"
#include "itb/topo/builders.hpp"

namespace {

using namespace itb;
using packet::Bytes;

// ---- helpers shared with fault_test.cpp (kept local: test binaries are
// one-file by convention here) ------------------------------------------

struct Observed {
  std::vector<int> order;
  std::multiset<int> ids;
};

int feed_messages(core::Cluster& c, std::uint16_t src, std::uint16_t dst,
                  int count, std::size_t size, Observed* obs) {
  if (obs) {
    c.port(dst).set_receive_handler([obs](sim::Time, std::uint16_t, Bytes m) {
      obs->order.push_back(m[0]);
      obs->ids.insert(m[0]);
    });
  }
  auto accepted = std::make_shared<int>(0);
  auto feed = std::make_shared<std::function<void()>>();
  *feed = [&c, src, dst, count, size, accepted, feed] {
    if (c.port(src).peer_failed(dst)) return;
    while (*accepted < count &&
           c.port(src).send(dst,
                            Bytes(size, static_cast<std::uint8_t>(*accepted))))
      ++*accepted;
    if (*accepted < count)
      c.queue().schedule_in(100 * sim::kUs, [feed] { (*feed)(); });
  };
  (*feed)();
  c.run();
  return *accepted;
}

void expect_reconciled(core::Cluster& c) {
  const auto& ns = c.network().stats();
  EXPECT_EQ(ns.injected, ns.delivered + ns.dropped + ns.lost);
  ASSERT_NE(c.faults(), nullptr);
  EXPECT_EQ(ns.lost, c.faults()->stats().total_lost());
  std::uint64_t tokens = 0;
  for (std::uint16_t h = 0; h < c.host_count(); ++h)
    tokens += static_cast<std::uint64_t>(c.port(h).tokens_in_use());
  EXPECT_EQ(tokens, 0u) << "send tokens leaked";
}

std::vector<topo::LinkId> trunk_links(const topo::Topology& topo) {
  std::vector<topo::LinkId> out;
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(l);
    if (link.a.node.kind == topo::NodeKind::kSwitch &&
        link.b.node.kind == topo::NodeKind::kSwitch &&
        link.a.node != link.b.node)  // self-cables are not trunks
      out.push_back(l);
  }
  return out;
}

// The usability+orientation diff the recovery engine feeds to patch().
routing::LinkDelta diff_orientation(const topo::Topology& topo,
                                    const routing::UpDown& before,
                                    const routing::UpDown& after) {
  routing::LinkDelta delta;
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const bool was = before.link_usable(l);
    const bool now = after.link_usable(l);
    if (was && !now)
      delta.removed.push_back(l);
    else if (!was && now)
      delta.added.push_back(l);
    else if (was && now && before.up_end(l) != after.up_end(l)) {
      delta.removed.push_back(l);
      delta.added.push_back(l);
    }
  }
  return delta;
}

std::string dump_of(const routing::RouteTable& t) {
  std::ostringstream os;
  t.dump(os);
  return os.str();
}

// The fabric link behind route(src, dst)'s first hop: the installed route's
// first byte is the exit port on src's uplink switch.
topo::LinkId first_hop_link(const topo::Topology& topo,
                            const routing::RouteTable& table,
                            std::uint16_t src, std::uint16_t dst) {
  const auto& path = table.route(src, dst);
  EXPECT_FALSE(path.segments.empty());
  const std::uint8_t exit_port = path.segments.front().front();
  const auto sw = topo.host_uplink(src).node;
  const auto link = topo.link_at(sw, exit_port);
  EXPECT_TRUE(link.has_value());
  return *link;
}

// ---- masked up*/down* --------------------------------------------------

TEST(MaskedUpDown, ToleratesCutOffSubtreesAndReportsUsability) {
  const auto topo = topo::make_linear(4, 1);
  const auto trunks = trunk_links(topo);  // chain: sw0-sw1, sw1-sw2, sw2-sw3
  ASSERT_EQ(trunks.size(), 3u);

  std::vector<char> mask(topo.link_count(), 1);
  mask[trunks[1]] = 0;  // cut sw2/sw3 off from the root side
  const routing::UpDown ud(topo, /*root=*/0, mask);

  EXPECT_TRUE(ud.reached(0));
  EXPECT_TRUE(ud.reached(1));
  EXPECT_FALSE(ud.reached(2));
  EXPECT_FALSE(ud.reached(3));

  EXPECT_TRUE(ud.link_usable(trunks[0]));
  EXPECT_FALSE(ud.link_usable(trunks[1]));  // masked
  EXPECT_FALSE(ud.link_usable(trunks[2]));  // both ends unreached
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(l);
    if (link.a.node.kind == topo::NodeKind::kSwitch &&
        link.b.node.kind == topo::NodeKind::kSwitch)
      continue;
    const auto sw = link.a.node.kind == topo::NodeKind::kSwitch
                        ? link.a.node.index
                        : link.b.node.index;
    EXPECT_EQ(ud.link_usable(l), ud.reached(sw)) << "host link " << l;
  }

  // The unmasked two-arg constructor still insists on full connectivity.
  auto disconnected = topo::make_linear(2, 1);
  std::vector<char> cut(disconnected.link_count(), 1);
  cut[trunk_links(disconnected)[0]] = 0;
  EXPECT_NO_THROW(routing::UpDown(disconnected, 0, cut));
}

// ---- route-table patching ---------------------------------------------

// Sweep every trunk link of two restricted-routing topologies: mask it,
// patch, byte-compare against a from-scratch solve; restore it, patch
// again, byte-compare against the original table. The patched table must
// be indistinguishable from a full re-solve at every step.
TEST(RoutePatching, PatchedTablesMatchFullSolveForEveryTrunk) {
  const topo::Topology topos[] = {topo::make_fig1_network(),
                                  topo::make_clos(2, 4, 2)};
  for (const auto& topo : topos) {
    const auto root = topo.host_uplink(0).node.index;
    const auto hosts = topo.host_count();
    std::vector<char> all_up(topo.link_count(), 1);
    for (const auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
      routing::UpDown base_ud(topo, root, all_up);
      routing::Router base_router(base_ud,
                                  routing::ItbHostSelection::kLowestIndex);
      routing::RouteTable table(base_router, policy, 1);
      table.enable_patching(base_router);
      const auto base_dump = dump_of(table);

      std::size_t scoped_removals = 0;
      for (const auto victim : trunk_links(topo)) {
        std::vector<char> mask = all_up;
        mask[victim] = 0;
        routing::UpDown down_ud(topo, root, mask);
        routing::Router down_router(down_ud,
                                    routing::ItbHostSelection::kLowestIndex);
        const auto st = table.patch(
            down_router, diff_orientation(topo, base_ud, down_ud), 1);
        EXPECT_FALSE(st.full);
        routing::RouteTable fresh(down_router, policy, 1);
        EXPECT_EQ(dump_of(table), dump_of(fresh))
            << "policy " << static_cast<int>(policy) << " victim " << victim;
        if (st.sources_resolved < hosts) ++scoped_removals;

        routing::UpDown up_ud(topo, root, all_up);
        const auto st2 = table.patch(
            base_router, diff_orientation(topo, down_ud, up_ud), 1);
        EXPECT_FALSE(st2.full);
        EXPECT_EQ(dump_of(table), base_dump)
            << "restore mismatch, victim " << victim;
      }
      // The reverse index must be doing real scoping work, not re-solving
      // the world on every removal.
      EXPECT_GT(scoped_removals, 0u);
    }
  }
}

TEST(RoutePatching, ForceFullAndUnindexedTablesFallBack) {
  const auto topo = topo::make_fig1_network();
  const auto root = topo.host_uplink(0).node.index;
  std::vector<char> all_up(topo.link_count(), 1);
  routing::UpDown ud(topo, root, all_up);
  routing::Router router(ud, routing::ItbHostSelection::kLowestIndex);

  routing::RouteTable unindexed(router, routing::Policy::kItb, 1);
  EXPECT_FALSE(unindexed.patching_enabled());
  const auto st = unindexed.patch(router, routing::LinkDelta{}, 1);
  EXPECT_TRUE(st.full);
  EXPECT_EQ(st.sources_resolved, topo.host_count());

  routing::RouteTable indexed(router, routing::Policy::kItb, 1);
  indexed.enable_patching(router);
  routing::LinkDelta force;
  force.force_full = true;
  EXPECT_TRUE(indexed.patch(router, force, 1).full);
}

// ---- scoped re-probe ---------------------------------------------------

TEST(ScopedProbe, RediscoverChargesOnlyTheFaultBoundary) {
  const auto topo = topo::make_fat_tree(4);  // 16 hosts, 20 switches
  std::vector<char> mask(topo.link_count(), 1);
  const auto full = mapper::discover_reachability(topo, 0, mask);
  EXPECT_EQ(full.probes_sent, full.full_walk_probes);
  EXPECT_EQ(std::count(full.host_up.begin(), full.host_up.end(), 1),
            static_cast<long>(topo.host_count()));

  const auto victim = trunk_links(topo).front();
  mask[victim] = 0;
  const auto scoped = mapper::rediscover_scoped(topo, 0, mask, full, {victim});
  EXPECT_LT(scoped.probes_sent, scoped.full_walk_probes)
      << "scoped walk charged a full fabric scan";
  // Accounting shortcut never changes the answer: a cold walk over the
  // same mask sees the identical reachable set.
  const auto cold = mapper::discover_reachability(topo, 0, mask);
  EXPECT_EQ(scoped.switch_up, cold.switch_up);
  EXPECT_EQ(scoped.host_up, cold.host_up);
  EXPECT_EQ(scoped.full_walk_probes, cold.full_walk_probes);

  // Restoring the link re-exposes the subtree; the scoped walk charges
  // the boundary plus newly reachable switches only.
  std::vector<char> back(topo.link_count(), 1);
  const auto restored =
      mapper::rediscover_scoped(topo, 0, back, scoped, {victim});
  EXPECT_EQ(restored.host_up, full.host_up);
  EXPECT_LT(restored.probes_sent, restored.full_walk_probes);
}

// ---- recovery engine, end to end --------------------------------------

// Satellite (a): the mapper's root host dies mid-run; recovery re-elects
// the lowest-id live host and keeps remapping (failed_remaps stays 0), and
// the traffic between two bystander hosts survives exactly once.
TEST(Recovery, RootHostFailsOverToLowestLiveHost) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.recovery.verify_patches = true;
  cfg.fault_schedule.host_down(0, 1 * sim::kMs, 3 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  Observed obs;
  const int sent = feed_messages(c, 2, 5, 30, 256, &obs);

  EXPECT_EQ(sent, 30);
  EXPECT_EQ(obs.ids.size(), 30u);
  EXPECT_EQ(std::set<int>(obs.ids.begin(), obs.ids.end()).size(), 30u);
  const auto& st = c.recovery()->stats();
  EXPECT_EQ(st.failed_remaps, 0u) << "root election failed";
  EXPECT_GE(st.remaps, 2u);  // host-down open + close
  EXPECT_EQ(st.verify_fallbacks, 0u);
  EXPECT_EQ(c.recovery()->epoch(), st.remaps);
  expect_reconciled(c);

  // Satellite (f): the incremental counters ride the standard export.
  std::ostringstream json;
  c.telemetry().write_json(json);
  EXPECT_NE(json.str().find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.str().find("scoped_probes"), std::string::npos);
  EXPECT_NE(json.str().find("sources_patched"), std::string::npos);
  EXPECT_NE(json.str().find("flaps_quarantined"), std::string::npos);
}

// Satellite (b): a link restored while another is still down must be
// picked up by the very round that observes it — the Fig. 6 testbed's
// second trunk dies before the first comes back, so the only way h0 -> h2
// traffic resumes is the restored-at-close trunk re-entering the table in
// one pass.
TEST(Recovery, RestoredLinkReusedInSamePassWhileOtherStillDown) {
  topo::TestbedIds ids;
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed(&ids);
  cfg.policy = routing::Policy::kUpDown;
  cfg.gm_config.retransmit_timeout = 300 * sim::kUs;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.recovery.verify_patches = true;
  const auto trunks = trunk_links(cfg.topology);
  ASSERT_EQ(trunks.size(), 2u);
  cfg.fault_schedule.link_down(trunks[0], 1 * sim::kMs, 4 * sim::kMs);
  cfg.fault_schedule.link_down(trunks[1], 3 * sim::kMs, 8 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  Observed obs;
  const int sent = feed_messages(c, ids.host1, ids.host2, 40, 512, &obs);

  EXPECT_EQ(sent, 40);
  EXPECT_EQ(obs.ids.size(), 40u);
  EXPECT_EQ(std::set<int>(obs.ids.begin(), obs.ids.end()).size(), 40u);
  const auto& st = c.recovery()->stats();
  EXPECT_EQ(st.remaps, 4u);  // two opens, two closes, none coalesced
  EXPECT_EQ(st.failed_remaps, 0u);
  EXPECT_GE(st.patch_rounds, 2u);
  EXPECT_EQ(st.verify_fallbacks, 0u);
  EXPECT_TRUE(c.nic(ids.host1).has_route(ids.host2));
  expect_reconciled(c);
}

// Epoch-safe hot-swap: a send posted under the boot table and still queued
// when a remap retires its epoch is re-sourced against the new table (and
// only then, with the route still gone at the CURRENT epoch, surrendered
// as unroutable) instead of being silently launched down a dead path.
TEST(Recovery, NicResourcesQueuedSendsAcrossEpochSwap) {
  topo::TestbedIds ids;
  core::ClusterConfig cfg;
  cfg.topology = topo::make_paper_testbed(&ids);
  cfg.policy = routing::Policy::kUpDown;
  cfg.remap_delay = 100 * sim::kUs;
  const auto trunks = trunk_links(cfg.topology);
  ASSERT_EQ(trunks.size(), 2u);
  // Both trunks down: host2 is unreachable from 200us until 5ms.
  for (const auto t : trunks)
    cfg.fault_schedule.link_down(t, 200 * sim::kUs, 5 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  const std::uint16_t src = ids.host1, dst = ids.host2;
  // Just after the remap fires (300us) but before the modelled
  // probe+solve cost lands the install: occupy the send DMA with a large
  // transfer, then queue a small send behind it. The small send's epoch-0
  // stamp goes stale while it waits.
  c.queue().schedule_in(310 * sim::kUs, [&c, src, dst] {
    for (int i = 0; i < 16; ++i)
      c.nic(src).post_send(dst, Bytes(nic::Nic::kMtu, 0xAA));
    c.nic(src).post_send(dst, Bytes(64, 0xBB));
  });
  c.run();

  const auto& ns = c.nic(src).stats();
  EXPECT_GE(ns.resourced_sends, 1u) << "stale-epoch send was not re-sourced";
  EXPECT_GE(ns.dropped_unroutable, 1u)
      << "re-sourced send should fail fast at the current epoch";
  EXPECT_GE(c.recovery()->epoch(), 2u);
}

// Satellite (c): two overlapping link-down windows on a 256-host Clos
// fabric reconcile exactly-once with the liveness watchdog reporting no
// unrecovered stalls, and every patched table verified against a full
// solve.
TEST(Recovery, Clos256OverlappingWindowsReconcileUnderWatchdog) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_clos(8, 16, 16);  // 256 hosts, 24 switches
  ASSERT_EQ(cfg.topology.host_count(), 256u);
  cfg.policy = routing::Policy::kUpDown;
  cfg.route_solve_jobs = 4;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.gm_config.retransmit_timeout = 400 * sim::kUs;
  cfg.recovery.verify_patches = true;
  cfg.watchdog.enabled = true;

  const std::uint16_t src = 0, dst = 16;  // leaf 0 -> leaf 1
  const auto probe = mapper::run(cfg.topology, cfg.policy, 0);
  const auto victim1 = first_hop_link(cfg.topology, probe.table, src, dst);
  // A second uplink of the same leaf, so the windows genuinely overlap on
  // distinct links.
  std::optional<topo::LinkId> victim2;
  const auto src_sw = cfg.topology.host_uplink(src).node;
  for (const auto l : trunk_links(cfg.topology)) {
    const auto& link = cfg.topology.link(l);
    if (l != victim1 && (link.a.node == src_sw || link.b.node == src_sw)) {
      victim2 = l;
      break;
    }
  }
  ASSERT_TRUE(victim2.has_value());
  cfg.fault_schedule.link_down(victim1, 1 * sim::kMs, 3 * sim::kMs);
  cfg.fault_schedule.link_down(*victim2, 2 * sim::kMs, 4 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  ASSERT_NE(c.health(), nullptr);
  Observed obs;
  const int sent = feed_messages(c, src, dst, 60, 512, &obs);

  EXPECT_EQ(sent, 60);
  EXPECT_EQ(obs.ids.size(), 60u);
  EXPECT_EQ(std::set<int>(obs.ids.begin(), obs.ids.end()).size(), 60u);
  EXPECT_EQ(c.health()->verdict().unrecovered, 0u);
  const auto& st = c.recovery()->stats();
  EXPECT_EQ(st.failed_remaps, 0u);
  EXPECT_EQ(st.verify_fallbacks, 0u);
  EXPECT_GE(st.patch_rounds, 1u);
  expect_reconciled(c);
}

// The scaling claim behind the tentpole: once the engine is warm, a
// single-link fault on a 128-host fat tree re-probes a small neighbourhood
// (not the fabric) and re-solves an order of magnitude fewer sources than
// all-pairs.
TEST(Recovery, ScopedRoundProbesAndSolvesFractionOfFabric) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fat_tree(8);  // 128 hosts, 80 switches
  cfg.policy = routing::Policy::kUpDown;
  cfg.route_solve_jobs = 4;
  cfg.remap_delay = 200 * sim::kUs;
  cfg.recovery.verify_patches = true;

  // Victim: the median-usage trunk among those the installed table
  // actually crosses, picked off a table built in true-fabric coordinates
  // (identical to the engine's own epoch-1 solve).
  const auto root_sw = cfg.topology.host_uplink(0).node.index;
  std::vector<char> all_up(cfg.topology.link_count(), 1);
  routing::UpDown ud(cfg.topology, root_sw, all_up);
  routing::Router router(ud, routing::ItbHostSelection::kLowestIndex);
  routing::RouteTable table(router, cfg.policy, 4);
  const auto usage = table.channel_usage(cfg.topology);
  std::vector<std::pair<std::uint64_t, topo::LinkId>> by_usage;
  for (const auto l : trunk_links(cfg.topology))
    by_usage.push_back({usage[2 * l] + usage[2 * l + 1], l});
  ASSERT_FALSE(by_usage.empty());
  std::sort(by_usage.begin(), by_usage.end());
  // The canonical tie-break funnels every source's routes through a small
  // set of trunks (the busiest are crossed by ALL sources), so the median
  // trunk — like most of the fabric — carries no routes at all. That is
  // the representative single-link fault; the busiest trunk doubles as the
  // warm-up fault and documents the funnel worst case.
  const auto victim = by_usage[by_usage.size() / 2].second;
  const auto warmup = by_usage.back().second;
  ASSERT_NE(warmup, victim);

  cfg.fault_schedule.link_down(warmup, 1 * sim::kMs, 2 * sim::kMs);
  cfg.fault_schedule.link_down(victim, 10 * sim::kMs, 12 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  c.run();

  const auto& rounds = c.recovery()->rounds();
  ASSERT_EQ(rounds.size(), 4u);  // warmup open/close, victim open/close
  EXPECT_TRUE(rounds[0].full);  // cold engine: first round is a full solve
  // Funnel close: the re-solved world returns to the boot graph, so the
  // generation shortcut prices the whole restore by attraction only.
  EXPECT_FALSE(rounds[1].full);
  const auto& r = rounds[2];  // victim open, engine warm
  EXPECT_FALSE(r.full);
  EXPECT_LE(r.probes * 4, r.full_walk_probes)
      << "scoped re-probe scanned most of the fabric";
  EXPECT_LE(r.sources_resolved * 10, r.sources_total)
      << "single-link fault re-solved " << r.sources_resolved << "/"
      << r.sources_total << " sources";
  // Victim close: the graph returns to a state every surviving source was
  // last solved under — the restore is free.
  EXPECT_EQ(rounds[3].sources_resolved, 0u);
  EXPECT_EQ(c.recovery()->stats().verify_fallbacks, 0u);
}

// Flap quarantine: a link that bounces four times inside the window is
// parked (masked down regardless of its real state) and requalified after
// backoff; storm control degrades an over-budget dirty set to one full
// re-solve instead of queueing unbounded patch work.
TEST(Recovery, FlapQuarantineParksOscillatingLink) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kUpDown;
  // Wider than the open->close gap, so a window's close coalesces into the
  // round armed by its open.
  cfg.remap_delay = 300 * sim::kUs;
  cfg.recovery.flap_threshold = 4;
  cfg.recovery.flap_window = 5 * sim::kMs;
  cfg.recovery.quarantine_base = 2 * sim::kMs;
  const auto victim = trunk_links(cfg.topology).front();
  cfg.fault_schedule.link_down(victim, 1000 * sim::kUs, 1200 * sim::kUs);
  cfg.fault_schedule.link_down(victim, 1400 * sim::kUs, 1600 * sim::kUs);
  cfg.fault_schedule.link_down(victim, 1800 * sim::kUs, 2000 * sim::kUs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  // The 4th transition (1.6ms close) crosses the threshold: by 2.5ms the
  // link must be parked even though its last window closed at 2.0ms.
  auto* rec = c.recovery();
  bool parked_midway = false;
  c.queue().schedule_in(2500 * sim::kUs,
                        [&, victim] { parked_midway = rec->quarantined(victim); });
  c.run();

  EXPECT_TRUE(parked_midway);
  EXPECT_FALSE(rec->quarantined(victim)) << "quarantine never released";
  EXPECT_GE(rec->stats().flaps_quarantined, 1u);
  EXPECT_GE(rec->stats().coalesced_events, 1u);
}

TEST(Recovery, StormControlDegradesOverflowToFullResolve) {
  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kUpDown;
  cfg.remap_delay = 100 * sim::kUs;
  cfg.recovery.max_pending_links = 2;
  // A switch takes all its links with it: more dirty links than the
  // pending budget in one event.
  cfg.fault_schedule.switch_down(7, 1 * sim::kMs, 2 * sim::kMs);

  core::Cluster c(std::move(cfg));
  ASSERT_NE(c.recovery(), nullptr);
  c.run();

  const auto& st = c.recovery()->stats();
  EXPECT_GE(st.overflow_full_resolves, 1u);
  EXPECT_EQ(st.failed_remaps, 0u);
  EXPECT_GE(st.remaps, 2u);
}

// Tables, and therefore the entire packet stream, are jobs-invariant
// through recovery windows: the flight fingerprint of a faulted run must
// not depend on how many threads solved the routes.
TEST(Recovery, FlightFingerprintInvariantAcrossRouteJobs) {
  auto run_once = [](unsigned jobs) {
    core::ClusterConfig cfg;
    cfg.topology = topo::make_fig1_network();
    cfg.policy = routing::Policy::kItb;
    cfg.route_solve_jobs = jobs;
    cfg.remap_delay = 200 * sim::kUs;
    cfg.recovery.verify_patches = (jobs == 1);  // exercised either way
    cfg.flight.enabled = true;
    const auto victim = trunk_links(cfg.topology).front();
    cfg.fault_schedule.link_down(victim, 1 * sim::kMs, 3 * sim::kMs);
    core::Cluster c(std::move(cfg));
    Observed obs;
    feed_messages(c, 2, 5, 30, 256, &obs);
    EXPECT_GE(c.recovery()->stats().remaps, 2u);
    return c.flight()->fingerprint();
  };
  const auto fp1 = run_once(1);
  const auto fp4 = run_once(4);
  EXPECT_NE(fp1, 0u);
  EXPECT_EQ(fp1, fp4);
}

}  // namespace
