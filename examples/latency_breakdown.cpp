// Where do the microseconds go? A stage-by-stage decomposition of one GM
// message's latency and of the per-ITB forwarding cost, computed from the
// same timing constants the simulator bills — useful when calibrating the
// model against other hardware generations.
//
//   $ ./latency_breakdown [payload_bytes]
#include <cstdio>
#include <cstdlib>

#include "itb/core/experiments.hpp"
#include "itb/gm/header.hpp"
#include "itb/workload/pingpong.hpp"

int main(int argc, char** argv) {
  using namespace itb;
  const std::size_t payload = argc > 1
                                  ? std::strtoull(argv[1], nullptr, 10)
                                  : 256;

  const nic::LanaiTiming lt;
  const net::NetTiming nt;
  const host::PciTiming pt;
  const gm::GmConfig gc;

  const auto wire_bytes =
      static_cast<std::int64_t>(payload + gm::GmHeader::kSize + 2 + 1 + 2);

  std::printf("One-way cost model for a %zu B GM payload (%lld B on the "
              "wire incl. GM header,\ntype, CRC and a 2-byte route):\n\n",
              payload, static_cast<long long>(wire_bytes));
  auto line = [](const char* what, sim::Duration ns) {
    std::printf("  %-42s %8.3f us\n", what, static_cast<double>(ns) / 1000.0);
  };
  line("host gm_send() software", gc.host_send_overhead_ns);
  line("MCP SDMA programming", lt.cycles(lt.sdma_process + lt.dispatch));
  line("PCI DMA host->NIC", pt.transfer_time(wire_bytes));
  line("MCP route stamp + send start",
       lt.cycles(lt.send_process + lt.dispatch + lt.send_dma_start));
  line("wire (full packet at 6.25 ns/B)", nt.byte_time(wire_bytes));
  line("switch fall-through (per SAN hop)", nt.switch_fallthrough_ns);
  line("MCP receive classification",
       lt.cycles(lt.recv_process + lt.itb_recv_extra + lt.dispatch));
  line("PCI DMA NIC->host", pt.transfer_time(wire_bytes));
  line("MCP RDMA completion", lt.cycles(lt.rdma_complete + lt.dispatch));
  line("host receive callback", gc.host_recv_overhead_ns);

  std::printf("\nPer-ITB forwarding cost (Fig. 8's ~1.3 us):\n");
  line("4 bytes on the wire (Early Recv trigger)", nt.byte_time(4));
  line("Early Recv dispatch + type probe",
       lt.cycles(lt.early_recv_check + lt.dispatch));
  line("strip tag, program re-injection DMA", lt.cycles(lt.itb_program_send));
  line("send DMA spin-up", lt.cycles(lt.send_dma_start));
  line("extra host-link crossings (eject + re-inject)",
       2 * (nt.link_latency_ns + nt.byte_time(1)));

  // Cross-check against the measured Fig. 8 configuration.
  auto ud = core::make_fig8_cluster(false);
  auto itb = core::make_fig8_cluster(true);
  auto a = workload::run_pingpong(ud->queue(), ud->port(core::kHost1),
                                  ud->port(core::kHost2), payload, 10);
  auto b = workload::run_pingpong(itb->queue(), itb->port(core::kHost1),
                                  itb->port(core::kHost2), payload, 10);
  std::printf("\nmeasured per-ITB overhead at this size: %.3f us\n",
              2 * (b.half_rtt_ns - a.half_rtt_ns) / 1000.0);
  return 0;
}
