// Where do the microseconds go? A measured, stage-by-stage decomposition of
// one GM message's latency on the Fig. 8 paths, computed from flight-recorder
// journeys (WormTimeline spans) rather than from the static cost model — the
// attribution telescopes, so the stages sum to the observed latency exactly.
//
//   $ ./latency_breakdown [payload_bytes]
//
// Runs the Fig. 8 ping-pong on both forward paths (plain up*/down* and
// up*/down* through one in-transit host) with the flight recorder armed,
// stitches the recordings into per-packet journeys, and prints:
//   * the mean per-stage latency on each path, side by side,
//   * the ITB-hop split (detect / wait / dma) behind the ~1.3 us figure,
//   * the measured per-ITB overhead at this payload size.
#include <cstdio>
#include <cstdlib>

#include "itb/core/experiments.hpp"
#include "itb/flight/recorder.hpp"
#include "itb/flight/timeline.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

struct PathRun {
  workload::AllsizeRow pingpong;
  flight::Recording recording;
};

PathRun run_path(bool itb_path, std::size_t payload) {
  flight::RecorderConfig frc;
  frc.enabled = true;
  auto cluster = core::make_fig8_cluster(itb_path, {}, {}, {}, frc);
  PathRun r;
  r.pingpong = workload::run_pingpong(cluster->queue(),
                                      cluster->port(core::kHost1),
                                      cluster->port(core::kHost2), payload, 20);
  r.recording = cluster->flight()->snapshot();
  return r;
}

/// Mean nanoseconds per complete journey for one stage.
double mean_ns(const flight::WormTimeline& tl,
               sim::Duration flight::StageBreakdown::* field) {
  if (tl.complete_count() == 0) return 0;
  return static_cast<double>(tl.totals().*field) /
         static_cast<double>(tl.complete_count());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t payload =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  auto ud = run_path(/*itb_path=*/false, payload);
  auto itb = run_path(/*itb_path=*/true, payload);

  flight::WormTimeline tl_ud(ud.recording);
  flight::WormTimeline tl_itb(itb.recording);

  std::printf("Measured one-way breakdown for a %zu B GM payload on the "
              "Fig. 8 paths\n(mean ns per delivered packet, from flight-"
              "recorder journeys; the stages\ntelescope, so each column sums "
              "to the packet's observed latency):\n\n",
              payload);
  std::printf("  %-14s %12s %12s %12s\n", "stage", "UD(us)", "UD+ITB(us)",
              "delta(ns)");
  double sum_ud = 0, sum_itb = 0;
  for (const auto& sv : flight::stage_views()) {
    const double a = mean_ns(tl_ud, sv.field);
    const double b = mean_ns(tl_itb, sv.field);
    sum_ud += a;
    sum_itb += b;
    std::printf("  %-14s %12.3f %12.3f %12.1f\n", sv.name, a / 1000.0,
                b / 1000.0, b - a);
  }
  std::printf("  %-14s %12.3f %12.3f %12.1f\n", "total", sum_ud / 1000.0,
              sum_itb / 1000.0, sum_itb - sum_ud);
  std::printf("\n  journeys: %zu complete of %zu (UD), %zu of %zu (UD+ITB); "
              "max stage\n  residual %lld ns / %lld ns (0 = exact "
              "attribution)\n",
              tl_ud.complete_count(), tl_ud.journeys().size(),
              tl_itb.complete_count(), tl_itb.journeys().size(),
              static_cast<long long>(tl_ud.max_stage_residual()),
              static_cast<long long>(tl_itb.max_stage_residual()));

  const auto split = tl_itb.itb_hop_split();
  std::printf("\nPer-ITB forwarding cost (Fig. 8's ~1.3 us), mean over %zu "
              "recorded hops:\n",
              split.hops);
  auto line = [](const char* what, double ns) {
    std::printf("  %-42s %8.3f us\n", what, ns / 1000.0);
  };
  line("detect (eject -> Early Recv, 4 B + trigger)", split.detect_ns);
  line("wait (type probe, dispatch, DMA queueing)", split.wait_ns);
  line("dma (program + send DMA spin-up)", split.dma_ns);
  line("total in-NIC forwarding", split.total_ns());

  std::printf("\nmeasured per-ITB overhead at this size: %.3f us\n",
              2 * (itb.pingpong.half_rtt_ns - ud.pingpong.half_rtt_ns) /
                  1000.0);
  std::printf("(the overhead exceeds the in-NIC split by the two extra "
              "host-link\ncrossings — eject and re-inject — which the wire "
              "stage absorbs)\n");
  return 0;
}
