// Load study on an irregular COW: what the ITB mechanism buys under real
// traffic — the §1-2 story (minimal paths, balanced channels, less
// contention) on a network small enough to run in seconds.
//
//   $ ./network_load_study [seed]
#include <cstdio>
#include <cstdlib>

#include "itb/core/cluster.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

topo::Topology make_fabric(std::uint64_t seed) {
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 16;
  spec.hosts_per_switch = 4;
  return topo::make_random_irregular(spec, rng);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  std::printf("16-switch irregular COW, 64 hosts, uniform 512 B traffic\n\n");
  std::printf("%10s | %22s | %22s\n", "", "up*/down*", "UD+ITB");
  std::printf("%10s | %10s %11s | %10s %11s\n", "offered", "accepted",
              "mean lat us", "accepted", "mean lat us");

  for (double rate : {2e3, 8e3, 1.6e4, 2.4e4}) {
    double acc[2], lat[2];
    int i = 0;
    for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
      core::ClusterConfig cfg;
      cfg.topology = make_fabric(seed);
      cfg.policy = policy;
      cfg.mcp_options.recv_buffers = 64;
      cfg.mcp_options.drop_when_full = true;  // loaded-network MCP (§4)
      core::Cluster cluster(std::move(cfg));

      workload::LoadConfig lc;
      lc.message_bytes = 512;
      lc.rate_msgs_per_s = rate;
      lc.warmup = 1 * sim::kMs;
      lc.measure = 5 * sim::kMs;
      lc.seed = seed;
      auto r = workload::run_load(cluster.queue(), cluster.ports(), lc);
      acc[i] = r.accepted_msgs_per_s_per_host;
      lat[i] = r.latency_mean_ns / 1000.0;
      ++i;
    }
    std::printf("%10.0f | %10.0f %11.1f | %10.0f %11.1f\n", rate, acc[0],
                lat[0], acc[1], lat[1]);
  }
  std::printf("\nAs load approaches saturation the ITB table keeps accepting "
              "traffic the\nspanning-tree table has to refuse, at a fraction "
              "of the latency.\n");
  return 0;
}
