// Quickstart: build a small Myrinet COW, let the mapper compute ITB routes,
// and exchange GM messages between two hosts.
//
//   $ ./quickstart
#include <cstdio>

#include "itb/core/cluster.hpp"
#include "itb/workload/pingpong.hpp"

int main() {
  using namespace itb;

  // 1. Describe the fabric: two 8-port switches, two hosts each.
  topo::Topology fabric;
  fabric.add_switch(8, "left");
  fabric.add_switch(8, "right");
  fabric.connect_switches(0, 0, 1, 0);            // one SAN trunk
  for (std::uint16_t h = 0; h < 4; ++h) {
    fabric.add_host("node" + std::to_string(h));
    fabric.attach_host(h, h < 2 ? 0 : 1, static_cast<std::uint8_t>(1 + h % 2),
                       topo::PortKind::kLan);
  }

  // 2. Assemble the cluster. The mapper discovers the fabric with probe
  //    packets, computes routes (UD+ITB policy here) and downloads them
  //    into every NIC. Timing models default to the paper's testbed.
  core::ClusterConfig cfg;
  cfg.topology = std::move(fabric);
  cfg.policy = routing::Policy::kItb;
  core::Cluster cluster(std::move(cfg));

  std::printf("mapper: %zu switches, %zu hosts discovered with %llu probes\n",
              cluster.mapper_report()->switches_found(),
              cluster.mapper_report()->hosts_found(),
              static_cast<unsigned long long>(
                  cluster.mapper_report()->probes_sent));
  std::printf("route table deadlock-free: %s\n\n",
              cluster.routes_deadlock_free() ? "yes" : "NO");

  // 3. Send one message and watch it arrive.
  cluster.port(3).set_receive_handler(
      [](sim::Time t, std::uint16_t src, packet::Bytes msg) {
        std::printf("node3 received %zu bytes from node%u at t=%.2f us\n",
                    msg.size(), src, static_cast<double>(t) / 1000.0);
      });
  cluster.port(0).send(3, packet::Bytes(2048, 0x42),
                       [](sim::Time t) {
                         std::printf("node0 send token returned at t=%.2f us "
                                     "(acknowledged)\n",
                                     static_cast<double>(t) / 1000.0);
                       });
  cluster.run();

  // 4. Measure: a gm_allsize-style ping-pong.
  auto row = workload::run_pingpong(cluster.queue(), cluster.port(0),
                                    cluster.port(3), 64, 100);
  std::printf("\n64 B half-round-trip: %.2f us (100 iterations)\n",
              row.half_rtt_ns / 1000.0);
  return 0;
}
