// The Myrinet mapper at work: probe-walk discovery of an irregular fabric,
// route computation under both policies, and what the modified (ITB)
// mapper changes.
//
//   $ ./mapper_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "itb/mapper/mapper.hpp"
#include "itb/routing/paths.hpp"
#include "itb/sim/rng.hpp"
#include "itb/topo/builders.hpp"

int main(int argc, char** argv) {
  using namespace itb;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  sim::Rng rng(seed);
  topo::IrregularSpec spec;
  spec.switches = 12;
  spec.hosts_per_switch = 3;
  auto fabric = topo::make_random_irregular(spec, rng);

  std::printf("fabric: %zu switches, %zu hosts, %zu cables (seed %llu)\n\n",
              fabric.switch_count(), fabric.host_count(), fabric.link_count(),
              static_cast<unsigned long long>(seed));

  auto report = mapper::discover(fabric, /*root_host=*/0);
  std::printf("discovery from host 0: %zu switches and %zu hosts found with "
              "%llu probes\n",
              report.switches_found(), report.hosts_found(),
              static_cast<unsigned long long>(report.probes_sent));
  std::printf("discovery order (true switch ids):");
  for (auto s : report.switch_of) std::printf(" s%u", s);
  std::printf("\n\n");

  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    auto result = mapper::run(fabric, policy);
    std::printf("%s mapper: avg trunk hops %.3f, avg ITBs/route %.3f\n",
                to_string(policy), result.table.average_trunk_hops(),
                result.table.average_itbs());
    // Show a route that actually uses an ITB, if any.
    for (std::uint16_t s = 0; s < fabric.host_count(); ++s) {
      bool shown = false;
      for (std::uint16_t d = 0; d < fabric.host_count(); ++d) {
        if (s == d) continue;
        const auto& path = result.table.route(s, d);
        if (path.itb_count() > 0) {
          std::printf("  sample ITB route: %s\n",
                      routing::describe(path, result.report.discovered).c_str());
          shown = true;
          break;
        }
      }
      if (shown) break;
    }
  }
  return 0;
}
