// The paper's Figure 1, executable: a minimal path that up*/down* routing
// forbids, made legal by one in-transit buffer — with the deadlock-freedom
// argument checked on the spot.
//
//   $ ./itb_routing_demo
#include <cstdio>

#include "itb/routing/deadlock.hpp"
#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"
#include "itb/topo/builders.hpp"

int main() {
  using namespace itb;

  auto fabric = topo::make_fig1_network();
  routing::UpDown updown(fabric);
  routing::Router router(updown);

  std::printf("Fig. 1 network: 8 switches, one host each; BFS tree rooted "
              "at switch %u\n\n", updown.root());
  std::printf("switch depths:");
  for (std::uint16_t s = 0; s < 8; ++s)
    std::printf(" s%u=%u", s, updown.depth(s));
  std::printf("\n\n");

  // The minimal path host4 -> host1 (switches 4 -> 6 -> 1).
  auto minimal = routing::describe(router.minimal_route(4, 1), fabric);
  auto valid = router.is_valid_updown(router.minimal_route(4, 1).trunk_channels);
  std::printf("minimal path:   %s\n", minimal.c_str());
  std::printf("                %s under up*/down* (down->up turn at s6)\n\n",
              valid ? "LEGAL" : "FORBIDDEN");

  auto ud = router.updown_route(4, 1);
  std::printf("up*/down* path: %s\n", routing::describe(ud, fabric).c_str());
  std::printf("                %zu trunk hops (one more than minimal)\n\n",
              ud.trunk_hops());

  auto itb = router.itb_route(4, 1);
  std::printf("UD+ITB path:    %s\n", routing::describe(itb, fabric).c_str());
  std::printf("                %zu trunk hops, %zu ITB — the invalid path is "
              "split into two\n                valid up*/down* sub-paths at "
              "the host on switch 6\n\n",
              itb.trunk_hops(), itb.itb_count());

  // Deadlock freedom of the full route tables.
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    routing::RouteTable table(router, policy);
    routing::DependencyGraph graph(fabric);
    graph.add_table(table, fabric);
    std::printf("%-10s all-pairs table: avg hops %.3f, minimal fraction "
                "%.2f, CDG %s\n",
                to_string(policy), table.average_trunk_hops(),
                table.minimal_fraction(router),
                graph.has_cycle() ? "CYCLIC (deadlock!)" : "acyclic");
  }

  // And the contrast: raw minimal routing without ITBs is NOT safe.
  routing::DependencyGraph raw(fabric);
  for (std::uint16_t s = 0; s < fabric.host_count(); ++s)
    for (std::uint16_t d = 0; d < fabric.host_count(); ++d) {
      if (s == d) continue;
      raw.add_route(router.minimal_route(s, d), fabric);
    }
  std::printf("raw minimal (no ITBs):              CDG %s\n",
              raw.has_cycle() ? "CYCLIC (deadlock!)" : "acyclic");
  return 0;
}
