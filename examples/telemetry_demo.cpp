// Telemetry demo: the observability subsystem end to end on the paper's
// Fig. 1 network.
//
// Drives uniform random traffic over the 8-switch irregular COW with ITB
// routing, samples per-channel utilization while it runs, and renders an
// ASCII heatmap — one row per directed channel, one column per sampler
// tick, shade by utilization. Busy channels (the spanning-tree root and
// the ITB hosts' links) stand out immediately.
//
//   $ ./telemetry_demo [--json out.json] [rate_msgs_per_s]
//
// With --json the full cluster telemetry (registry snapshot + every time
// series) is also written as an itb.telemetry.v1 document.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "itb/core/cluster.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/workload/load.hpp"

namespace {

using namespace itb;

std::string channel_name(const topo::Topology& topo, std::size_t c) {
  const topo::Channel ch{static_cast<topo::LinkId>(c / 2), c % 2 == 0};
  const auto src = topo.channel_source(ch);
  const auto dst = topo.channel_target(ch);
  auto end_name = [&](topo::Endpoint e) {
    return e.node.kind == topo::NodeKind::kSwitch
               ? topo.switch_spec(e.node.index).name
               : topo.host_spec(e.node.index).name;
  };
  return end_name(src) + " -> " + end_name(dst);
}

/// Map utilization in [0, 1] to a shade character.
char shade(double u) {
  static const char kRamp[] = " .:-=+*#%@";
  const double clamped = std::clamp(u, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(clamped * 9.0 + 0.5);
  return kRamp[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = telemetry::json_flag(argc, argv);
  double rate = 8e3;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json") { ++i; continue; }
    if (a.rfind("--json=", 0) == 0) continue;
    rate = std::strtod(argv[i], nullptr);
  }

  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;
  cfg.mcp_options.recv_buffers = 64;
  cfg.mcp_options.drop_when_full = true;  // loaded-network MCP (§4)
  cfg.telemetry_sample_period = 100 * sim::kUs;
  core::Cluster cluster(std::move(cfg));
  const auto& topo = cluster.topology();

  std::printf("Fig. 1 network (%zu switches, %zu hosts, %zu links), UD+ITB "
              "routing,\nuniform %0.0f msgs/s/host of 512 B for 6 ms\n\n",
              topo.switch_count(), topo.host_count(), topo.link_count(), rate);

  cluster.telemetry().start_sampling();
  workload::LoadConfig lc;
  lc.message_bytes = 512;
  lc.rate_msgs_per_s = rate;
  lc.warmup = 0;
  lc.measure = 6 * sim::kMs;
  lc.seed = 42;
  auto r = workload::run_load(cluster.queue(), cluster.ports(), lc);
  cluster.telemetry().stop_sampling();

  const auto& sampler = cluster.telemetry().sampler();
  const std::size_t channels = topo.link_count() * 2;

  // Longest row label, for alignment.
  std::size_t label_width = 0;
  std::vector<std::string> names(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    names[c] = channel_name(topo, c);
    label_width = std::max(label_width, names[c].size());
  }

  std::printf("per-channel utilization, one column per %lld us tick "
              "(shade ramp \" .:-=+*#%%@\"):\n\n",
              static_cast<long long>(sampler.period() / sim::kUs));
  for (std::size_t c = 0; c < channels; ++c) {
    const auto* s = sampler.find(
        "channel_utilization",
        telemetry::Labels{.host = -1, .channel = static_cast<int>(c)});
    if (!s) continue;
    double mean = 0;
    std::string row;
    row.reserve(s->values.size());
    for (double v : s->values) {
      row.push_back(shade(v));
      mean += v;
    }
    if (!s->values.empty()) mean /= static_cast<double>(s->values.size());
    std::printf("%-*s |%s| %4.1f%%\n", static_cast<int>(label_width),
                names[c].c_str(), row.c_str(), 100.0 * mean);
  }

  std::printf("\naccepted %.0f msgs/s/host, mean latency %.1f us, p99 %.1f "
              "us, %llu retransmissions\n",
              r.accepted_msgs_per_s_per_host, r.latency_mean_ns / 1000.0,
              r.latency_p99_ns / 1000.0,
              static_cast<unsigned long long>(r.retransmissions));

  if (json_path) {
    if (!cluster.telemetry().write_json(*json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("cluster telemetry written to %s\n", json_path->c_str());
  }
  return 0;
}
