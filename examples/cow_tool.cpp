// cow_tool — drive the library from a topology description file.
//
//   cow_tool routes   <file> [ud|itb]          print the route table
//   cow_tool check    <file>                   validate + deadlock analysis
//   cow_tool pingpong <file> <src> <dst> [sz]  measure half-RTT
//   cow_tool serialize <file>                  parse + re-emit (round trip)
//
// The file format is documented in itb/topo/parse.hpp. Example:
//
//   switch sw0 8
//   switch sw1 8
//   host a
//   host b
//   link sw0:0 sw1:0 san
//   link a:0 sw0:1 lan
//   link b:0 sw1:1 lan
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "itb/core/cluster.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/topo/parse.hpp"
#include "itb/workload/pingpong.hpp"

namespace {

using namespace itb;

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int cmd_routes(const topo::Topology& topo, routing::Policy policy) {
  routing::UpDown ud(topo);
  routing::Router router(ud);
  routing::RouteTable table(router, policy);
  std::printf("%s routes, %zu hosts:\n", to_string(policy), topo.host_count());
  for (std::uint16_t s = 0; s < topo.host_count(); ++s)
    for (std::uint16_t d = 0; d < topo.host_count(); ++d) {
      if (s == d) continue;
      std::printf("  %s\n", routing::describe(table.route(s, d), topo).c_str());
    }
  std::printf("avg trunk hops %.3f, minimal fraction %.3f, avg ITBs %.3f\n",
              table.average_trunk_hops(), table.minimal_fraction(router),
              table.average_itbs());
  return 0;
}

int cmd_check(const topo::Topology& topo) {
  topo.validate();
  std::printf("topology OK: %zu switches, %zu hosts, %zu cables\n",
              topo.switch_count(), topo.host_count(), topo.link_count());
  routing::UpDown ud(topo);
  routing::Router router(ud);
  std::printf("best up*/down* root: switch %u (current: 0)\n",
              routing::select_best_root(topo));
  for (auto policy : {routing::Policy::kUpDown, routing::Policy::kItb}) {
    routing::RouteTable table(router, policy);
    routing::DependencyGraph graph(topo);
    graph.add_table(table, topo);
    std::printf("%-10s table: %s\n", to_string(policy),
                graph.has_cycle() ? "CYCLIC (deadlock!)" : "deadlock-free");
  }
  return 0;
}

int cmd_pingpong(topo::Topology topo, std::uint16_t src, std::uint16_t dst,
                 std::size_t size) {
  core::ClusterConfig cfg;
  cfg.topology = std::move(topo);
  cfg.policy = routing::Policy::kItb;
  core::Cluster cluster(std::move(cfg));
  auto row = workload::run_pingpong(cluster.queue(), cluster.port(src),
                                    cluster.port(dst), size, 100);
  std::printf("h%u <-> h%u, %zu B: half-RTT %.3f us (min %.3f, max %.3f)\n",
              src, dst, size, row.half_rtt_ns / 1000.0, row.min_ns / 1000.0,
              row.max_ns / 1000.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s routes|check|pingpong|serialize <file> [args]\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  topo::Topology topo;
  try {
    topo = topo::parse_topology(read_file(argv[2]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  try {
    if (cmd == "routes") {
      const auto policy = (argc > 3 && std::string(argv[3]) == "ud")
                              ? routing::Policy::kUpDown
                              : routing::Policy::kItb;
      return cmd_routes(topo, policy);
    }
    if (cmd == "check") return cmd_check(topo);
    if (cmd == "pingpong") {
      if (argc < 5) {
        std::fprintf(stderr, "pingpong needs <src> <dst>\n");
        return 2;
      }
      const auto src = static_cast<std::uint16_t>(std::atoi(argv[3]));
      const auto dst = static_cast<std::uint16_t>(std::atoi(argv[4]));
      const std::size_t size = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 64;
      return cmd_pingpong(std::move(topo), src, dst, size);
    }
    if (cmd == "serialize") {
      std::fputs(topo::serialize_topology(topo).c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}
