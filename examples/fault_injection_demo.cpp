// GM's reliability machinery under an unfaithful wire: drop and corrupt
// packets (including across an in-transit buffer) and watch sequence
// numbers, acks and retransmissions put the message stream back together.
//
//   $ ./fault_injection_demo [drop%] [corrupt%]
#include <cstdio>
#include <cstdlib>

#include "itb/core/cluster.hpp"
#include "itb/topo/builders.hpp"

int main(int argc, char** argv) {
  using namespace itb;
  const double drop = (argc > 1 ? std::atof(argv[1]) : 15.0) / 100.0;
  const double corrupt = (argc > 2 ? std::atof(argv[2]) : 5.0) / 100.0;

  core::ClusterConfig cfg;
  cfg.topology = topo::make_fig1_network();
  cfg.policy = routing::Policy::kItb;  // src 4 -> dst 1 crosses one ITB
  cfg.fault_plan.drop_probability = drop;
  cfg.fault_plan.corrupt_probability = corrupt;
  cfg.fault_plan.seed = 42;
  cfg.gm_config.retransmit_timeout = 200 * sim::kUs;
  core::Cluster c(std::move(cfg));

  std::printf("fabric: Fig. 1 network; route h4 -> h1 uses %zu ITB(s)\n",
              c.route_table()->route(4, 1).itb_count());
  std::printf("faults: %.0f%% drop, %.0f%% corrupt\n\n", drop * 100,
              corrupt * 100);

  constexpr int kMessages = 40;
  int received = 0;
  bool in_order = true;
  c.port(1).set_receive_handler(
      [&](sim::Time t, std::uint16_t, packet::Bytes m) {
        if (m[0] != received) in_order = false;
        ++received;
        if (received % 10 == 0)
          std::printf("  %2d/%d delivered by t=%.1f ms\n", received, kMessages,
                      static_cast<double>(t) / 1e6);
      });
  int next = 0;
  std::function<void()> feed = [&] {
    while (next < kMessages &&
           c.port(4).send(1, packet::Bytes(1500, static_cast<std::uint8_t>(next))))
      ++next;
    if (next < kMessages) c.queue().schedule_in(100 * sim::kUs, feed);
  };
  feed();
  c.run();

  const auto& tx = c.port(4).stats();
  std::printf("\nresult: %d/%d messages, order %s\n", received, kMessages,
              in_order ? "preserved" : "VIOLATED");
  std::printf("wire faults injected: %llu\n",
              static_cast<unsigned long long>(
                  c.network().stats().faults_injected));
  std::printf("data packets posted:  %llu (retransmissions: %llu)\n",
              static_cast<unsigned long long>(tx.packets_data),
              static_cast<unsigned long long>(tx.retransmissions));
  std::printf("duplicates discarded: %llu, bad CRC discarded: %llu\n",
              static_cast<unsigned long long>(c.port(1).stats().duplicates),
              static_cast<unsigned long long>(c.nic(1).stats().rx_bad_crc));
  return received == kMessages && in_order ? 0 : 1;
}
