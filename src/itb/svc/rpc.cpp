#include "itb/svc/rpc.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

namespace itb::svc {

namespace {

void put_u16(packet::Bytes& b, std::size_t at, std::uint16_t v) {
  b[at] = static_cast<std::uint8_t>(v);
  b[at + 1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(packet::Bytes& b, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(packet::Bytes& b, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t get_u16(const packet::Bytes& b, std::size_t at) {
  return static_cast<std::uint16_t>(b[at] | (b[at + 1] << 8));
}
std::uint32_t get_u32(const packet::Bytes& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | b[at + static_cast<std::size_t>(i)];
  return v;
}
std::uint64_t get_u64(const packet::Bytes& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | b[at + static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

packet::Bytes RpcHeader::encode(std::size_t message_bytes) const {
  packet::Bytes b(std::max(message_bytes, kSize), 0);
  b[0] = kind;
  b[1] = static_cast<std::uint8_t>(cls);
  put_u16(b, 2, client);
  put_u32(b, 4, req_id);
  put_u64(b, 8, issued_ns);
  put_u64(b, 16, service_ns);
  put_u32(b, 24, resp_bytes);
  put_u64(b, 28, admit_wait_ns);
  put_u64(b, 36, service_span_ns);
  return b;
}

std::optional<RpcHeader> RpcHeader::decode(const packet::Bytes& msg) {
  if (msg.size() < kSize) return std::nullopt;
  RpcHeader h;
  if (msg[0] < kRequest || msg[0] > kReject) return std::nullopt;
  h.kind = msg[0];
  if (msg[1] >= kPriorityClasses) return std::nullopt;
  h.cls = static_cast<Priority>(msg[1]);
  h.client = get_u16(msg, 2);
  h.req_id = get_u32(msg, 4);
  h.issued_ns = get_u64(msg, 8);
  h.service_ns = get_u64(msg, 16);
  h.resp_bytes = get_u32(msg, 24);
  h.admit_wait_ns = get_u64(msg, 28);
  h.service_span_ns = get_u64(msg, 36);
  return h;
}

// --- RpcServer -------------------------------------------------------------

RpcServer::RpcServer(sim::EventQueue& queue, gm::GmPort& port,
                     const RpcServerConfig& config)
    : queue_(queue), port_(port), config_(config),
      admission_(queue, config.admission) {}

int RpcServer::cost_of(const RpcHeader& h) const {
  const auto extra = static_cast<int>(
      static_cast<sim::Duration>(h.service_ns) / config_.cost_quantum);
  return std::clamp(1 + extra, 1, config_.max_cost);
}

void RpcServer::handle_request(sim::Time t, std::uint16_t src,
                               const RpcHeader& h) {
  ++stats_.requests;
  const int cost = cost_of(h);
  const sim::Time arrived = t;
  const auto outcome = admission_.offer(
      h.cls, cost,
      // Queued path: fires on admission (start the service, charging the
      // buffer wait) or on eviction by a higher-priority arrival (NACK).
      [this, src, h, arrived](sim::Time now, bool admitted) {
        if (admitted) {
          start_service(src, h, now - arrived);
        } else {
          RpcHeader r = h;
          r.kind = RpcHeader::kReject;
          ++stats_.rejects_sent;
          send_or_queue(src, r.encode(RpcHeader::kSize));
        }
      });
  if (outcome == AdmissionController::Outcome::kAdmitted) {
    start_service(src, h, 0);
  } else if (outcome == AdmissionController::Outcome::kRejected) {
    RpcHeader r = h;
    r.kind = RpcHeader::kReject;
    ++stats_.rejects_sent;
    send_or_queue(src, r.encode(RpcHeader::kSize));
  }
}

void RpcServer::start_service(std::uint16_t src, RpcHeader h,
                              sim::Duration wait) {
  const int cost = cost_of(h);
  h.admit_wait_ns = static_cast<std::uint64_t>(wait);
  h.service_span_ns = h.service_ns;
  queue_.schedule_in(
      std::max<sim::Duration>(static_cast<sim::Duration>(h.service_ns), 1),
      [this, src, h, cost] {
        admission_.depart(cost);
        respond(src, h);
      });
}

void RpcServer::respond(std::uint16_t dst, RpcHeader h) {
  h.kind = RpcHeader::kResponse;
  ++stats_.responses_sent;
  send_or_queue(dst, h.encode(h.resp_bytes));
}

void RpcServer::send_or_queue(std::uint16_t dst, packet::Bytes msg) {
  if (port_.peer_failed(dst)) {
    ++stats_.dead_peer_drops;
    return;
  }
  if (!sendq_.empty() || !port_.send(dst, packet::Bytes(msg))) {
    ++stats_.send_retries;
    sendq_.emplace_back(dst, std::move(msg));
    if (!flush_armed_) {
      flush_armed_ = true;
      queue_.schedule_in(config_.send_retry_gap, [this] { flush_sendq(); });
    }
  }
}

void RpcServer::flush_sendq() {
  flush_armed_ = false;
  while (!sendq_.empty()) {
    auto& [dst, msg] = sendq_.front();
    if (port_.peer_failed(dst)) {
      ++stats_.dead_peer_drops;
      sendq_.pop_front();
      continue;
    }
    if (!port_.send(dst, packet::Bytes(msg))) break;
    sendq_.pop_front();
  }
  if (!sendq_.empty() && !flush_armed_) {
    flush_armed_ = true;
    queue_.schedule_in(config_.send_retry_gap, [this] { flush_sendq(); });
  }
}

void RpcServer::register_metrics(telemetry::MetricRegistry& registry,
                                 int host) const {
  telemetry::Labels labels;
  labels.host = host;
  auto counter = [&](const char* name, const std::uint64_t* v) {
    registry.register_source(
        "svc", name, telemetry::MetricKind::kCounter,
        [v] { return static_cast<double>(*v); }, labels);
  };
  counter("server_requests", &stats_.requests);
  counter("server_responses", &stats_.responses_sent);
  counter("server_rejects", &stats_.rejects_sent);
  counter("server_send_retries", &stats_.send_retries);
  counter("server_dead_peer_drops", &stats_.dead_peer_drops);
  counter("server_malformed", &stats_.malformed);
  admission_.register_metrics(registry, host);
}

// --- RpcClient -------------------------------------------------------------

RpcClient::RpcClient(sim::EventQueue& queue, gm::GmPort& port,
                     const RpcClientConfig& config)
    : queue_(queue), port_(port), config_(config) {}

bool RpcClient::call(const CallSpec& spec) {
  const sim::Time now = queue_.now();
  const bool tracked =
      now >= config_.measure_start && now <= config_.measure_end;
  auto& cls = slo_.cls[static_cast<std::size_t>(spec.cls)];
  if (pending_.size() >= config_.pending_limit) {
    if (tracked) ++cls.client_refused;
    return false;
  }
  if (tracked) ++cls.issued;
  Pending p;
  p.spec = spec;
  p.first_issued = now;
  p.attempt = 1;
  p.tracked = tracked;
  issue(next_id_++, std::move(p));
  return true;
}

void RpcClient::issue(std::uint32_t id, Pending p) {
  RpcHeader h;
  h.kind = RpcHeader::kRequest;
  h.cls = p.spec.cls;
  h.client = port_.host();
  h.req_id = id;
  h.issued_ns = static_cast<std::uint64_t>(p.first_issued);
  h.service_ns = static_cast<std::uint64_t>(p.spec.service);
  h.resp_bytes = p.spec.resp_bytes;
  const std::uint16_t dst = p.spec.dst;
  const auto deadline =
      config_.deadlines[static_cast<std::size_t>(p.spec.cls)];
  p.deadline_ev =
      queue_.schedule_in(deadline, [this, id] { on_deadline(id); });
  pending_.emplace(id, std::move(p));
  send_or_queue(dst, h.encode(config_.request_bytes));
}

void RpcClient::on_deadline(std::uint32_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.attempt <= config_.max_retries) {
    retry(id, std::move(p));
  } else {
    finish_failed(p);
  }
}

void RpcClient::retry(std::uint32_t, Pending p) {
  if (p.tracked) ++slo_of(p).retries;
  ++p.attempt;
  issue(next_id_++, std::move(p));
}

void RpcClient::finish_failed(Pending& p) {
  if (!p.tracked) return;
  auto& cls = slo_of(p);
  ++cls.failed;
  ++cls.deadline_misses;
}

void RpcClient::handle_response(sim::Time t, const RpcHeader& h) {
  auto it = pending_.find(h.req_id);
  if (it == pending_.end()) {
    ++slo_.cls[static_cast<std::size_t>(h.cls)].stale_responses;
    return;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  queue_.cancel(p.deadline_ev);

  if (h.kind == RpcHeader::kReject) {
    if (p.tracked) ++slo_of(p).rejected;
    if (p.attempt <= config_.max_retries) {
      if (p.tracked) ++slo_of(p).retries;
      ++p.attempt;
      // Back off before the re-issue; the Pending travels in the closure.
      auto shared = std::make_shared<Pending>(std::move(p));
      queue_.schedule_in(config_.reject_backoff, [this, shared] {
        issue(next_id_++, std::move(*shared));
      });
    } else {
      finish_failed(p);
    }
    return;
  }

  if (!p.tracked) return;
  auto& cls = slo_of(p);
  ++cls.completed;
  const auto lat = static_cast<std::uint64_t>(t - p.first_issued);
  const auto deadline = static_cast<std::uint64_t>(
      config_.deadlines[static_cast<std::size_t>(p.spec.cls)]);
  if (lat <= deadline) {
    cls.goodput_bytes += h.resp_bytes;
  } else {
    ++cls.deadline_misses;
  }
  cls.total.record(lat);
  cls.admit.record(h.admit_wait_ns);
  cls.service.record(h.service_span_ns);
  const std::uint64_t attributed = h.admit_wait_ns + h.service_span_ns;
  cls.network.record(lat > attributed ? lat - attributed : 0);
}

void RpcClient::send_or_queue(std::uint16_t dst, packet::Bytes msg) {
  if (port_.peer_failed(dst)) return;  // deadline timer will settle the call
  if (!sendq_.empty() || !port_.send(dst, packet::Bytes(msg))) {
    ++gm_backpressure_;
    sendq_.emplace_back(dst, std::move(msg));
    if (!flush_armed_) {
      flush_armed_ = true;
      queue_.schedule_in(config_.send_retry_gap, [this] { flush_sendq(); });
    }
  }
}

void RpcClient::flush_sendq() {
  flush_armed_ = false;
  while (!sendq_.empty()) {
    auto& [dst, msg] = sendq_.front();
    if (port_.peer_failed(dst)) {
      sendq_.pop_front();
      continue;
    }
    if (!port_.send(dst, packet::Bytes(msg))) break;
    sendq_.pop_front();
  }
  if (!sendq_.empty() && !flush_armed_) {
    flush_armed_ = true;
    queue_.schedule_in(config_.send_retry_gap, [this] { flush_sendq(); });
  }
}

void RpcClient::register_metrics(telemetry::MetricRegistry& registry,
                                 int host) const {
  telemetry::Labels labels;
  labels.host = host;
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const std::string suffix =
        std::string("_") + to_string(static_cast<Priority>(c));
    auto counter = [&](const char* name, const std::uint64_t* v) {
      registry.register_source(
          "svc", std::string(name) + suffix, telemetry::MetricKind::kCounter,
          [v] { return static_cast<double>(*v); }, labels);
    };
    const SloClassStats& s = slo_.cls[c];
    counter("client_issued", &s.issued);
    counter("client_completed", &s.completed);
    counter("client_rejected", &s.rejected);
    counter("client_retries", &s.retries);
    counter("client_deadline_misses", &s.deadline_misses);
    counter("client_failed", &s.failed);
    counter("client_goodput_bytes", &s.goodput_bytes);
  }
  registry.register_source(
      "svc", "client_gm_backpressure", telemetry::MetricKind::kCounter,
      [this] { return static_cast<double>(gm_backpressure_); }, labels);
  registry.register_source(
      "svc", "client_pending", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(pending_.size()); }, labels);
}

// --- RpcEndpoint -----------------------------------------------------------

RpcEndpoint::RpcEndpoint(sim::EventQueue& queue, gm::GmPort& port,
                         const EndpointConfig& config)
    : port_(port),
      server_(queue, port, config.server),
      client_(queue, port, config.client) {
  port_.set_receive_handler(
      [this](sim::Time t, std::uint16_t src, packet::Bytes msg) {
        const auto h = RpcHeader::decode(msg);
        if (!h) {
          ++server_.stats_.malformed;
          return;
        }
        if (h->kind == RpcHeader::kRequest)
          server_.handle_request(t, src, *h);
        else
          client_.handle_response(t, *h);
      });
}

void RpcEndpoint::register_metrics(telemetry::MetricRegistry& registry) const {
  server_.register_metrics(registry, port_.host());
  client_.register_metrics(registry, port_.host());
}

}  // namespace itb::svc
