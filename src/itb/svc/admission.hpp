// Tokened admission control with a bounded blocked-request buffer.
//
// The service layer's front door (DESIGN.md §6h). A server owns a fixed
// pool of service tokens; a request costs one or more tokens (scaled by its
// service demand). Requests that do not fit wait in a bounded buffer of
// blocked requests, ordered by priority class (preemptive: a high-priority
// arrival is served before every queued lower-priority one, and when the
// buffer is full it may evict the newest lowest-priority entry). On every
// departure the controller re-scans the buffer **first-fit** in priority
// order — BufferEON-style reallocation-on-departure: a large blocked
// request at the head does not stop a smaller one behind it from taking
// the freed tokens, which keeps utilization high under heavy-tailed
// service-size mixes at the cost of potentially delaying the large one.
//
// Everything is synchronous with the event queue's clock; the controller
// never schedules events itself (service completion timing belongs to the
// RpcServer). Blocking probability = rejections / offered, the quantity the
// SLO report tracks per class.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "itb/sim/event_queue.hpp"
#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::svc {

/// Priority classes, highest first. kHigh preempts kNormal preempts kBulk
/// in the admission queue (ordering only — running requests are never
/// preempted; the wormhole fabric below owns in-flight packets).
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kBulk = 2 };
inline constexpr std::size_t kPriorityClasses = 3;

const char* to_string(Priority p);

struct AdmissionConfig {
  /// Concurrent service capacity in tokens.
  int capacity_tokens = 16;
  /// Bound of the blocked-request buffer (all classes pooled).
  std::size_t queue_limit = 64;
  /// On departure, scan past blocked requests that do not fit for one that
  /// does (first-fit). false = strict head-of-line within priority order.
  bool first_fit = true;
  /// When the buffer is full, a strictly higher-priority arrival evicts
  /// the newest entry of the lowest queued class instead of being rejected.
  bool preemptive_queue = true;
};

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted_immediate = 0;
  std::uint64_t admitted_from_queue = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected_full = 0;  // buffer full, nothing evictable
  std::uint64_t evicted = 0;        // queued entries displaced by priority
  std::uint64_t departures = 0;
  std::uint64_t first_fit_skips = 0;  // blocked heads passed over by a fit

  std::uint64_t rejected() const { return rejected_full + evicted; }
  /// Fraction of offered requests turned away (BufferEON's headline
  /// metric under load).
  double blocking_probability() const {
    return offered ? static_cast<double>(rejected()) /
                         static_cast<double>(offered)
                   : 0.0;
  }
};

class AdmissionController {
 public:
  /// Admission verdict for the queued case arrives later via the callback:
  /// admitted (with the wait charged) or evicted by a higher-priority
  /// arrival. Immediate outcomes are returned from offer() directly.
  enum class Outcome : std::uint8_t { kAdmitted, kQueued, kRejected };
  using QueueCallback = std::function<void(sim::Time now, bool admitted)>;

  AdmissionController(sim::EventQueue& queue, const AdmissionConfig& config);

  /// Offer a request needing `cost` tokens (clamped into [1, capacity]).
  /// kAdmitted: tokens are held; call depart(cost) when service completes.
  /// kQueued: `on_resolved` fires on admission (tokens held) or eviction.
  /// kRejected: buffer full; nothing held, callback never fires.
  Outcome offer(Priority cls, int cost, QueueCallback on_resolved);

  /// Return `cost` tokens and re-scan the blocked buffer first-fit.
  void depart(int cost);

  int tokens_free() const { return tokens_free_; }
  int capacity() const { return config_.capacity_tokens; }
  std::size_t queue_depth() const;
  const AdmissionStats& stats() const { return stats_; }
  /// Admission-wait (offer to admit) distribution per class, ns.
  const telemetry::LatencyHistogram& wait_hist(Priority cls) const {
    return wait_hist_[static_cast<std::size_t>(cls)];
  }

  /// Publish svc.admission_* counters/gauges under component "svc",
  /// labelled with `host`.
  void register_metrics(telemetry::MetricRegistry& registry, int host) const;

 private:
  struct Blocked {
    Priority cls = Priority::kNormal;
    int cost = 0;
    sim::Time offered_at = 0;
    QueueCallback on_resolved;
  };

  void admit_from_queue();

  sim::EventQueue& queue_;
  AdmissionConfig config_;
  AdmissionStats stats_;
  int tokens_free_ = 0;
  /// One FIFO per class; service order is class-major (preemptive).
  std::array<std::deque<Blocked>, kPriorityClasses> blocked_;
  std::array<telemetry::LatencyHistogram, kPriorityClasses> wait_hist_;
};

}  // namespace itb::svc
