#include "itb/svc/slo.hpp"

namespace itb::svc {

void SloClassStats::merge(const SloClassStats& o) {
  total.merge(o.total);
  admit.merge(o.admit);
  network.merge(o.network);
  service.merge(o.service);
  issued += o.issued;
  completed += o.completed;
  rejected += o.rejected;
  retries += o.retries;
  deadline_misses += o.deadline_misses;
  failed += o.failed;
  stale_responses += o.stale_responses;
  client_refused += o.client_refused;
  goodput_bytes += o.goodput_bytes;
}

void SloStats::merge(const SloStats& o) {
  for (std::size_t i = 0; i < kPriorityClasses; ++i) cls[i].merge(o.cls[i]);
}

SloClassStats SloStats::combined() const {
  SloClassStats out;
  for (const auto& c : cls) out.merge(c);
  return out;
}

}  // namespace itb::svc
