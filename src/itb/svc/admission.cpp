#include "itb/svc/admission.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace itb::svc {

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBulk: return "bulk";
  }
  return "?";
}

AdmissionController::AdmissionController(sim::EventQueue& queue,
                                         const AdmissionConfig& config)
    : queue_(queue), config_(config), tokens_free_(config.capacity_tokens) {
  if (config.capacity_tokens <= 0)
    throw std::invalid_argument("admission capacity must be positive");
}

std::size_t AdmissionController::queue_depth() const {
  std::size_t n = 0;
  for (const auto& q : blocked_) n += q.size();
  return n;
}

AdmissionController::Outcome AdmissionController::offer(
    Priority cls, int cost, QueueCallback on_resolved) {
  ++stats_.offered;
  cost = std::clamp(cost, 1, config_.capacity_tokens);
  const auto c = static_cast<std::size_t>(cls);

  // Admit on the spot only when no same-or-higher-priority request is
  // already blocked — otherwise a small newcomer would overtake the queue
  // without going through the first-fit scan, starving queued peers.
  bool queue_ahead = false;
  for (std::size_t k = 0; k <= c; ++k)
    if (!blocked_[k].empty()) queue_ahead = true;
  if (!queue_ahead && cost <= tokens_free_) {
    tokens_free_ -= cost;
    ++stats_.admitted_immediate;
    wait_hist_[c].record(0);
    return Outcome::kAdmitted;
  }

  if (queue_depth() >= config_.queue_limit) {
    // Preemptive ordering at the buffer: displace the newest entry of the
    // lowest queued class, provided it is strictly lower-priority than the
    // arrival.
    std::size_t victim = kPriorityClasses;
    for (std::size_t k = kPriorityClasses; k-- > c + 1;)
      if (!blocked_[k].empty()) {
        victim = k;
        break;
      }
    if (!config_.preemptive_queue || victim == kPriorityClasses) {
      ++stats_.rejected_full;
      return Outcome::kRejected;
    }
    Blocked out = std::move(blocked_[victim].back());
    blocked_[victim].pop_back();
    ++stats_.evicted;
    if (out.on_resolved) out.on_resolved(queue_.now(), false);
  }

  blocked_[c].push_back(
      Blocked{cls, cost, queue_.now(), std::move(on_resolved)});
  ++stats_.queued;
  return Outcome::kQueued;
}

void AdmissionController::depart(int cost) {
  ++stats_.departures;
  tokens_free_ = std::min(tokens_free_ + cost, config_.capacity_tokens);
  admit_from_queue();
}

void AdmissionController::admit_from_queue() {
  // First-fit in priority order: walk classes high to low, and within a
  // class front to back, admitting everything that fits the free tokens.
  // Without first_fit the scan stops at the first entry that does not fit
  // (head-of-line blocking, the control arm of the ablation).
  std::vector<Blocked> admitted;
  for (auto& q : blocked_) {
    for (auto it = q.begin(); it != q.end();) {
      if (it->cost <= tokens_free_) {
        tokens_free_ -= it->cost;
        admitted.push_back(std::move(*it));
        it = q.erase(it);
      } else if (config_.first_fit) {
        ++stats_.first_fit_skips;
        ++it;
      } else {
        break;
      }
    }
    if (!config_.first_fit && !q.empty()) break;
  }
  // Callbacks fire after the scan so a re-entrant offer()/depart() from
  // inside one sees a consistent queue.
  const sim::Time now = queue_.now();
  for (auto& b : admitted) {
    ++stats_.admitted_from_queue;
    wait_hist_[static_cast<std::size_t>(b.cls)].record(
        static_cast<std::uint64_t>(now - b.offered_at));
    if (b.on_resolved) b.on_resolved(now, true);
  }
}

void AdmissionController::register_metrics(telemetry::MetricRegistry& registry,
                                           int host) const {
  telemetry::Labels labels;
  labels.host = host;
  auto counter = [&](const char* name, const std::uint64_t* v) {
    registry.register_source(
        "svc", name, telemetry::MetricKind::kCounter,
        [v] { return static_cast<double>(*v); }, labels);
  };
  counter("admission_offered", &stats_.offered);
  counter("admission_immediate", &stats_.admitted_immediate);
  counter("admission_from_queue", &stats_.admitted_from_queue);
  counter("admission_queued", &stats_.queued);
  counter("admission_rejected_full", &stats_.rejected_full);
  counter("admission_evicted", &stats_.evicted);
  counter("admission_departures", &stats_.departures);
  counter("admission_first_fit_skips", &stats_.first_fit_skips);
  registry.register_source(
      "svc", "admission_tokens_free", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(tokens_free_); }, labels);
  registry.register_source(
      "svc", "admission_queue_depth", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(queue_depth()); }, labels);
}

}  // namespace itb::svc
