#include "itb/svc/openloop.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace itb::svc {

const char* to_string(ArrivalDist d) {
  switch (d) {
    case ArrivalDist::kExponential: return "exponential";
    case ArrivalDist::kLognormal: return "lognormal";
    case ArrivalDist::kBoundedPareto: return "bounded-pareto";
  }
  return "?";
}

const char* to_string(ServiceDist d) {
  switch (d) {
    case ServiceDist::kFixed: return "fixed";
    case ServiceDist::kLognormal: return "lognormal";
    case ServiceDist::kBoundedPareto: return "bounded-pareto";
  }
  return "?";
}

const char* to_string(SvcPattern p) {
  switch (p) {
    case SvcPattern::kUniform: return "uniform";
    case SvcPattern::kIncast: return "incast";
    case SvcPattern::kHotspot: return "hotspot";
    case SvcPattern::kAllToAll: return "all-to-all";
    case SvcPattern::kTrace: return "trace";
  }
  return "?";
}

std::vector<TraceEntry> parse_trace_csv(std::istream& in) {
  std::vector<TraceEntry> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    long long at = 0, service = 0;
    unsigned src = 0, dst = 0, cls = 0, resp = 0;
    char c1, c2, c3, c4, c5;
    if (!(ls >> at >> c1 >> src >> c2 >> dst >> c3 >> cls >> c4 >> service >>
          c5 >> resp) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',' || c5 != ',' ||
        cls >= kPriorityClasses || at < 0 || service < 0)
      throw std::invalid_argument("malformed trace line " +
                                  std::to_string(lineno) + ": " + line);
    e.at = at;
    e.src = static_cast<std::uint16_t>(src);
    e.dst = static_cast<std::uint16_t>(dst);
    e.cls = static_cast<Priority>(cls);
    e.service = service;
    e.resp_bytes = resp;
    out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.at < b.at;
                   });
  return out;
}

OpenLoopDriver::OpenLoopDriver(sim::EventQueue& queue,
                               std::vector<RpcEndpoint*> endpoints,
                               OpenLoopConfig config)
    : queue_(queue), endpoints_(std::move(endpoints)),
      config_(std::move(config)) {
  if (endpoints_.size() < 2)
    throw std::invalid_argument("open-loop driver needs >= 2 endpoints");
  rngs_.reserve(endpoints_.size());
  for (std::size_t h = 0; h < endpoints_.size(); ++h)
    rngs_.push_back(sim::Rng::stream(config_.seed, h));
  end_ = config_.start + config_.duration;
}

void OpenLoopDriver::start() {
  if (config_.pattern == SvcPattern::kTrace) {
    for (const TraceEntry& e : config_.trace) {
      if (e.src >= endpoints_.size() || e.dst >= endpoints_.size() ||
          e.src == e.dst)
        throw std::invalid_argument("trace entry outside the cluster");
      queue_.schedule_at(std::max(e.at, config_.start), [this, e] {
        ++stats_.arrivals;
        CallSpec spec;
        spec.dst = e.dst;
        spec.cls = e.cls;
        spec.service = e.service;
        spec.resp_bytes = e.resp_bytes;
        if (endpoints_[e.src]->client().call(spec))
          ++stats_.calls_issued;
        else
          ++stats_.calls_refused;
      });
    }
    return;
  }
  for (std::size_t h = 0; h < endpoints_.size(); ++h) {
    // The incast sink only serves; everyone else generates.
    if (config_.pattern == SvcPattern::kIncast && h == config_.target_host)
      continue;
    arm(h);
  }
}

sim::Duration OpenLoopDriver::next_gap(sim::Rng& rng) const {
  const double mean = 1e9 / config_.rate_rps;
  double gap = mean;
  switch (config_.arrivals) {
    case ArrivalDist::kExponential:
      gap = rng.next_exponential(mean);
      break;
    case ArrivalDist::kLognormal:
      gap = rng.next_lognormal(mean, config_.arrival_sigma);
      break;
    case ArrivalDist::kBoundedPareto:
      gap = rng.next_bounded_pareto(mean, config_.pareto_alpha,
                                    config_.pareto_cap);
      break;
  }
  return std::max<sim::Duration>(static_cast<sim::Duration>(gap), 1);
}

sim::Duration OpenLoopDriver::next_service(sim::Rng& rng) const {
  const auto mean = static_cast<double>(config_.mean_service);
  double s = mean;
  switch (config_.service) {
    case ServiceDist::kFixed:
      break;
    case ServiceDist::kLognormal:
      s = rng.next_lognormal(mean, config_.service_sigma);
      break;
    case ServiceDist::kBoundedPareto:
      s = rng.next_bounded_pareto(mean, config_.pareto_alpha,
                                  config_.pareto_cap);
      break;
  }
  return std::max<sim::Duration>(static_cast<sim::Duration>(s), 1);
}

Priority OpenLoopDriver::next_class(sim::Rng& rng) const {
  double total = 0;
  for (double w : config_.class_mix) total += w;
  if (total <= 0) return Priority::kNormal;
  double u = rng.next_double() * total;
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    u -= config_.class_mix[c];
    if (u < 0) return static_cast<Priority>(c);
  }
  return static_cast<Priority>(kPriorityClasses - 1);
}

std::uint16_t OpenLoopDriver::next_dst(std::size_t src, sim::Rng& rng) const {
  const std::size_t n = endpoints_.size();
  switch (config_.pattern) {
    case SvcPattern::kIncast:
      return config_.target_host;
    case SvcPattern::kHotspot:
      if (src != config_.target_host &&
          rng.next_bool(config_.hotspot_fraction))
        return config_.target_host;
      break;
    default:
      break;
  }
  std::uint16_t dst;
  do {
    dst = static_cast<std::uint16_t>(rng.next_below(n));
  } while (dst == src);
  return dst;
}

void OpenLoopDriver::arm(std::size_t host) {
  const sim::Duration gap = next_gap(rngs_[host]);
  const sim::Time at = std::max(queue_.now(), config_.start) + gap;
  if (at > end_) return;
  queue_.schedule_at(at, [this, host] { fire(host); });
}

void OpenLoopDriver::fire(std::size_t host) {
  ++stats_.arrivals;
  sim::Rng& rng = rngs_[host];
  CallSpec spec;
  spec.cls = next_class(rng);
  spec.service = next_service(rng);
  spec.resp_bytes = config_.resp_bytes;
  auto issue_to = [&](std::uint16_t dst) {
    spec.dst = dst;
    if (endpoints_[host]->client().call(spec))
      ++stats_.calls_issued;
    else
      ++stats_.calls_refused;
  };
  if (config_.pattern == SvcPattern::kAllToAll) {
    for (std::size_t d = 0; d < endpoints_.size(); ++d)
      if (d != host) issue_to(static_cast<std::uint16_t>(d));
  } else {
    issue_to(next_dst(host, rng));
  }
  arm(host);
}

SloStats OpenLoopDriver::merged_slo() const {
  SloStats out;
  for (const RpcEndpoint* e : endpoints_) out.merge(e->client().slo());
  return out;
}

AdmissionStats OpenLoopDriver::merged_admission() const {
  AdmissionStats out;
  for (const RpcEndpoint* e : endpoints_) {
    const AdmissionStats& s = e->server().admission().stats();
    out.offered += s.offered;
    out.admitted_immediate += s.admitted_immediate;
    out.admitted_from_queue += s.admitted_from_queue;
    out.queued += s.queued;
    out.rejected_full += s.rejected_full;
    out.evicted += s.evicted;
    out.departures += s.departures;
    out.first_fit_skips += s.first_fit_skips;
  }
  return out;
}

telemetry::LatencyHistogram OpenLoopDriver::merged_wait_hist(
    Priority cls) const {
  telemetry::LatencyHistogram out;
  for (const RpcEndpoint* e : endpoints_)
    out.merge(e->server().admission().wait_hist(cls));
  return out;
}

}  // namespace itb::svc
