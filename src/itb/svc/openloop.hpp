// Open-loop load generation for the RPC service layer.
//
// Closed-loop drivers (run_load, the app kernels) let a slow system slow
// the offered load down, hiding tail latency — the coordinated-omission
// trap. The OpenLoopDriver schedules arrivals from the wall clock alone:
// a request that finds the client buried simply queues behind it, and its
// full wait lands in the latency distribution. Inter-arrival gaps and
// service demands draw from exponential, lognormal, or bounded-Pareto
// distributions ("millions of users" traffic is heavy-tailed, not Poisson),
// destinations follow uniform / incast / hotspot / all-to-all patterns or a
// CSV trace replay, and priority classes are drawn from a configurable mix.
//
// Determinism: every client draws from its own counter-style RNG stream
// (sim::Rng::stream(seed, host)), a pure function of the config — arrival
// sequences do not depend on host count, construction order, or which
// worker thread runs the sweep point, so bench output is --jobs-invariant.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "itb/sim/rng.hpp"
#include "itb/svc/rpc.hpp"

namespace itb::svc {

enum class ArrivalDist : std::uint8_t {
  kExponential,
  kLognormal,
  kBoundedPareto,
};
enum class ServiceDist : std::uint8_t {
  kFixed,
  kLognormal,
  kBoundedPareto,
};
enum class SvcPattern : std::uint8_t {
  kUniform,   // dst uniform over the other hosts
  kIncast,    // every client calls target_host; the target only serves
  kHotspot,   // hotspot_fraction to target_host, rest uniform
  kAllToAll,  // each arrival fans one call out to every other host
  kTrace,     // replay OpenLoopConfig::trace verbatim
};

const char* to_string(ArrivalDist d);
const char* to_string(ServiceDist d);
const char* to_string(SvcPattern p);

/// One replayed call (kTrace). `at` is absolute simulation time.
struct TraceEntry {
  sim::Time at = 0;
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  Priority cls = Priority::kNormal;
  sim::Duration service = 20 * sim::kUs;
  std::uint32_t resp_bytes = 512;
};

/// Parse "t_ns,src,dst,cls,service_ns,resp_bytes" lines ('#' comments,
/// blank lines skipped; cls is 0-2). Throws std::invalid_argument on a
/// malformed line. Entries are sorted by arrival time.
std::vector<TraceEntry> parse_trace_csv(std::istream& in);

struct OpenLoopConfig {
  ArrivalDist arrivals = ArrivalDist::kExponential;
  /// Offered arrivals/s per generating client.
  double rate_rps = 2e4;
  /// Lognormal shape for inter-arrival gaps (kLognormal).
  double arrival_sigma = 1.5;
  /// Bounded-Pareto tail index and truncation multiple (arrivals+service).
  double pareto_alpha = 1.5;
  double pareto_cap = 100.0;

  ServiceDist service = ServiceDist::kFixed;
  sim::Duration mean_service = 20 * sim::kUs;
  double service_sigma = 1.0;

  SvcPattern pattern = SvcPattern::kUniform;
  double hotspot_fraction = 0.3;
  std::uint16_t target_host = 0;
  std::uint32_t resp_bytes = 512;
  /// Priority mix, normalized internally.
  std::array<double, kPriorityClasses> class_mix = {0.2, 0.5, 0.3};

  sim::Time start = 0;
  sim::Duration duration = 10 * sim::kMs;
  std::uint64_t seed = 1;
  std::vector<TraceEntry> trace;  // kTrace only
};

struct OpenLoopStats {
  std::uint64_t arrivals = 0;       // generator firings
  std::uint64_t calls_issued = 0;   // accepted by RpcClient::call
  std::uint64_t calls_refused = 0;  // client pending_limit hit
};

class OpenLoopDriver {
 public:
  /// `endpoints[h]` serves host h; all hosts generate except an incast
  /// target. The driver holds pointers only — endpoints outlive it.
  OpenLoopDriver(sim::EventQueue& queue, std::vector<RpcEndpoint*> endpoints,
                 OpenLoopConfig config);

  /// Arm the generators (or schedule the trace). Call once, then run the
  /// queue; generation stops at start + duration.
  void start();

  const OpenLoopStats& stats() const { return stats_; }
  const OpenLoopConfig& config() const { return config_; }

  /// SLO stats merged over every endpoint's client.
  SloStats merged_slo() const;
  /// Admission stats summed over every endpoint's server.
  AdmissionStats merged_admission() const;
  /// Admission-wait histograms pooled over servers, per class.
  telemetry::LatencyHistogram merged_wait_hist(Priority cls) const;

 private:
  void arm(std::size_t host);
  void fire(std::size_t host);
  sim::Duration next_gap(sim::Rng& rng) const;
  sim::Duration next_service(sim::Rng& rng) const;
  Priority next_class(sim::Rng& rng) const;
  std::uint16_t next_dst(std::size_t src, sim::Rng& rng) const;

  sim::EventQueue& queue_;
  std::vector<RpcEndpoint*> endpoints_;
  OpenLoopConfig config_;
  OpenLoopStats stats_;
  std::vector<sim::Rng> rngs_;
  sim::Time end_ = 0;
};

}  // namespace itb::svc
