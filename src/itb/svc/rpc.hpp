// RPC endpoint over GM: request/response with admission control.
//
// The paper's §6 next step is application traffic over the ITB fabric; this
// is the request/response service layer that generates it (DESIGN.md §6h).
// One RpcEndpoint sits on each host's GmPort and plays both roles:
//
//   RpcClient — issues calls with a deadline and bounded retries. A call's
//     clock starts at call() (client-side send queueing counts — open-loop
//     measurement must not hide coordinated omission). Responses correlate
//     by request id; an attempt whose deadline passes is re-issued under a
//     fresh id (the late response, if any, is counted stale), and a call
//     that exhausts its retries is a deadline miss AND a failure.
//
//   RpcServer — admits requests through an AdmissionController (tokened
//     capacity, bounded blocked-buffer, priority classes, BufferEON-style
//     first-fit admit-on-departure), charges the requested service time on
//     the event queue while the tokens are held, then returns a response of
//     the requested size. Rejected requests get an immediate NACK so the
//     client can retry or fail fast instead of burning its deadline.
//
// Reliability layering: GM already provides reliable ordered delivery with
// bounded retransmission underneath, so RPC retries only fire on
// service-level events (admission rejection, deadline expiry, dead peer) —
// packet loss inside a fault window surfaces as added network latency, not
// as an RPC-visible error, exactly the separation §3 of the paper assigns
// to GM.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "itb/gm/port.hpp"
#include "itb/svc/admission.hpp"
#include "itb/svc/slo.hpp"

namespace itb::svc {

/// Wire header carried in the first bytes of every GM message exchanged by
/// the service layer. Requests pad to the configured request size;
/// responses pad to the requested response size.
struct RpcHeader {
  enum Kind : std::uint8_t { kRequest = 1, kResponse = 2, kReject = 3 };

  std::uint8_t kind = kRequest;
  Priority cls = Priority::kNormal;
  std::uint16_t client = 0;           // requesting host (response routing)
  std::uint32_t req_id = 0;           // correlation id, per-client namespace
  std::uint64_t issued_ns = 0;        // client clock at call(), echoed back
  std::uint64_t service_ns = 0;       // requested service time
  std::uint32_t resp_bytes = 0;       // requested response payload size
  std::uint64_t admit_wait_ns = 0;    // response: admission-buffer wait
  std::uint64_t service_span_ns = 0;  // response: tokens-held span

  static constexpr std::size_t kSize = 1 + 1 + 2 + 4 + 8 + 8 + 4 + 8 + 8;

  packet::Bytes encode(std::size_t message_bytes) const;
  static std::optional<RpcHeader> decode(const packet::Bytes& msg);
};

struct RpcServerConfig {
  AdmissionConfig admission;
  /// Token cost of a request: 1 + service_ns / cost_quantum, clamped to
  /// [1, max_cost]. Heavy requests hold more of the server, which is what
  /// makes first-fit admission meaningful under heavy-tailed service sizes.
  sim::Duration cost_quantum = 100 * sim::kUs;
  int max_cost = 4;
  /// Retry cadence for responses refused by GM send-token exhaustion.
  sim::Duration send_retry_gap = 20 * sim::kUs;
};

struct RpcServerStats {
  std::uint64_t requests = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t rejects_sent = 0;
  std::uint64_t send_retries = 0;       // GM refused, will retry
  std::uint64_t dead_peer_drops = 0;    // response dropped: peer failed
  std::uint64_t malformed = 0;          // undecodable request payloads
};

class RpcServer {
 public:
  RpcServer(sim::EventQueue& queue, gm::GmPort& port,
            const RpcServerConfig& config);

  /// Dispatch one decoded request (the endpoint demuxes kinds).
  void handle_request(sim::Time t, std::uint16_t src, const RpcHeader& h);

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  const RpcServerStats& stats() const { return stats_; }
  void register_metrics(telemetry::MetricRegistry& registry, int host) const;

 private:
  friend class RpcEndpoint;
  int cost_of(const RpcHeader& h) const;
  void start_service(std::uint16_t src, RpcHeader h, sim::Duration wait);
  void respond(std::uint16_t dst, RpcHeader h);
  void send_or_queue(std::uint16_t dst, packet::Bytes msg);
  void flush_sendq();

  sim::EventQueue& queue_;
  gm::GmPort& port_;
  RpcServerConfig config_;
  AdmissionController admission_;
  RpcServerStats stats_;
  std::deque<std::pair<std::uint16_t, packet::Bytes>> sendq_;
  bool flush_armed_ = false;
};

struct RpcClientConfig {
  /// Per-class deadlines, call() to response.
  std::array<sim::Duration, kPriorityClasses> deadlines = {
      1 * sim::kMs, 4 * sim::kMs, 16 * sim::kMs};
  /// Re-issues allowed after a deadline expiry or admission rejection.
  int max_retries = 1;
  /// Wait before re-issuing a rejected call (deadline retries go out
  /// immediately — the deadline already paced them).
  sim::Duration reject_backoff = 100 * sim::kUs;
  /// Bound on calls in flight per client; call() refuses beyond it (an
  /// open-loop driver counts the refusal instead of blocking).
  std::size_t pending_limit = 4096;
  /// Request message size on the wire (>= RpcHeader::kSize).
  std::size_t request_bytes = 128;
  /// Retry cadence for requests refused by GM send-token exhaustion.
  sim::Duration send_retry_gap = 20 * sim::kUs;
  /// Only calls issued inside [measure_start, measure_end] touch SloStats
  /// (warmup/cool-down requests still execute, unrecorded).
  sim::Time measure_start = 0;
  sim::Time measure_end = INT64_MAX;
};

/// One outgoing call.
struct CallSpec {
  std::uint16_t dst = 0;
  Priority cls = Priority::kNormal;
  sim::Duration service = 20 * sim::kUs;
  std::uint32_t resp_bytes = 512;
};

class RpcClient {
 public:
  RpcClient(sim::EventQueue& queue, gm::GmPort& port,
            const RpcClientConfig& config);

  /// Issue a call. Returns false (and counts client_refused) when
  /// pending_limit is reached.
  bool call(const CallSpec& spec);

  /// Dispatch one decoded response/reject (the endpoint demuxes kinds).
  void handle_response(sim::Time t, const RpcHeader& h);

  const SloStats& slo() const { return slo_; }
  std::size_t pending() const { return pending_.size(); }
  std::uint64_t gm_backpressure() const { return gm_backpressure_; }
  void register_metrics(telemetry::MetricRegistry& registry, int host) const;

 private:
  struct Pending {
    CallSpec spec;
    sim::Time first_issued = 0;  // end-to-end clock across retries
    int attempt = 1;
    bool tracked = true;
    sim::EventId deadline_ev{};
  };

  void issue(std::uint32_t id, Pending p);
  void on_deadline(std::uint32_t id);
  void retry(std::uint32_t id, Pending p);
  void finish_failed(Pending& p);
  void send_or_queue(std::uint16_t dst, packet::Bytes msg);
  void flush_sendq();
  SloClassStats& slo_of(const Pending& p) {
    return slo_.cls[static_cast<std::size_t>(p.spec.cls)];
  }

  sim::EventQueue& queue_;
  gm::GmPort& port_;
  RpcClientConfig config_;
  SloStats slo_;
  std::uint32_t next_id_ = 1;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::deque<std::pair<std::uint16_t, packet::Bytes>> sendq_;
  bool flush_armed_ = false;
  std::uint64_t gm_backpressure_ = 0;
};

struct EndpointConfig {
  RpcServerConfig server;
  RpcClientConfig client;
};

/// Both RPC roles on one host's GmPort. Owns the port's receive handler
/// and demuxes by header kind: requests to the server, responses to the
/// client. Construct one per host before any traffic flows.
class RpcEndpoint {
 public:
  RpcEndpoint(sim::EventQueue& queue, gm::GmPort& port,
              const EndpointConfig& config = {});

  RpcServer& server() { return server_; }
  RpcClient& client() { return client_; }
  const RpcServer& server() const { return server_; }
  const RpcClient& client() const { return client_; }
  std::uint16_t host() const { return port_.host(); }

  /// Publish svc.* metrics for both roles, labelled with this host.
  void register_metrics(telemetry::MetricRegistry& registry) const;

 private:
  gm::GmPort& port_;
  RpcServer server_;
  RpcClient client_;
};

}  // namespace itb::svc
