// SLO accounting for the RPC service layer.
//
// Every completed request's latency is split exactly into three spans the
// layers below already measure:
//   admission-wait — time blocked in the server's admission buffer,
//   service        — the time the request held its service tokens,
//   network        — everything else (GM host overheads, fabric transit,
//                    queueing, retransmissions, client-side send queueing).
// Histograms are per priority class and log-bucketed (bounded memory over
// arbitrarily long soaks), so p50/p99/p999 come from the same machinery as
// every other latency figure in the repo. Counters cover the service-level
// outcomes: completions, deadline misses, admission rejections, retries,
// goodput bytes. Stats merge across hosts and sweep points, which is how
// the bench aggregates one cluster's clients into a run-level SLO row.
#pragma once

#include <array>
#include <cstdint>

#include "itb/svc/admission.hpp"
#include "itb/telemetry/histogram.hpp"

namespace itb::svc {

struct SloClassStats {
  telemetry::LatencyHistogram total;    // call() to response, end to end
  telemetry::LatencyHistogram admit;    // server admission-wait span
  telemetry::LatencyHistogram network;  // total - admit - service
  telemetry::LatencyHistogram service;  // tokens held
  std::uint64_t issued = 0;          // tracked calls entering the client
  std::uint64_t completed = 0;       // responses received
  std::uint64_t rejected = 0;        // admission NACKs seen by the client
  std::uint64_t retries = 0;         // re-issues (deadline or rejection)
  std::uint64_t deadline_misses = 0; // completed late or never completed
  std::uint64_t failed = 0;          // gave up: no response within retries
  std::uint64_t stale_responses = 0; // response for a superseded attempt
  std::uint64_t client_refused = 0;  // client pending_limit hit
  std::uint64_t goodput_bytes = 0;   // response payload within deadline

  void merge(const SloClassStats& o);
  double deadline_miss_rate() const {
    const std::uint64_t settled = completed + failed;
    return settled ? static_cast<double>(deadline_misses) /
                         static_cast<double>(settled)
                   : 0.0;
  }
};

struct SloStats {
  std::array<SloClassStats, kPriorityClasses> cls;

  SloClassStats& of(Priority p) { return cls[static_cast<std::size_t>(p)]; }
  const SloClassStats& of(Priority p) const {
    return cls[static_cast<std::size_t>(p)];
  }

  void merge(const SloStats& o);

  /// All classes pooled (histograms merged, counters summed).
  SloClassStats combined() const;
};

}  // namespace itb::svc
