#include "itb/nic/lanai.hpp"

namespace itb::nic {

void McpCpu::post(McpPriority priority, int cycles, std::function<void()> fn,
                  bool skip_dispatch) {
  jobs_.push(Job{static_cast<int>(priority), next_seq_++, cycles,
                 skip_dispatch, std::move(fn)});
  if (!busy_) pump();
}

void McpCpu::pump() {
  if (jobs_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Job job = std::move(const_cast<Job&>(jobs_.top()));
  jobs_.pop();
  const int total = job.cycles + (job.skip_dispatch ? 0 : timing_.dispatch);
  const sim::Duration cost = timing_.cycles(total);
  busy_ns_ += cost;
  ++jobs_executed_;
  queue_.schedule_in(cost, [this, fn = std::move(job.fn)] {
    fn();
    pump();
  });
}

}  // namespace itb::nic
