#include "itb/nic/nic.hpp"

#include <stdexcept>

namespace itb::nic {

Nic::Nic(sim::EventQueue& queue, sim::Tracer& tracer, net::Network& network,
         host::PciBus& pci, std::uint16_t host, const LanaiTiming& timing,
         const McpOptions& options)
    : queue_(queue),
      tracer_(tracer),
      network_(network),
      pci_(pci),
      host_(host),
      timing_(timing),
      options_(options),
      cpu_(queue, timing),
      routes_(network.topology().host_count()) {
  network_.attach_host(host, this);
}

void Nic::set_route(std::uint16_t dst, std::vector<packet::Route> segments) {
  routes_.at(dst) = std::move(segments);
}

void Nic::load_routes(const routing::RouteTable& table) {
  for (std::uint16_t d = 0; d < table.host_count(); ++d) {
    if (d == host_) continue;
    routes_.at(d) = table.route(host_, d).segments;
  }
}

std::uint64_t Nic::post_send(std::uint16_t dst, packet::Bytes payload,
                             packet::PacketType type) {
  if (dst == host_) throw std::invalid_argument("loopback send not supported");
  if (payload.size() > kMtu) throw std::invalid_argument("payload exceeds MTU");
  if (routes_.at(dst).empty())
    throw std::logic_error("no route to host " + std::to_string(dst));
  const std::uint64_t token = next_token_++;
  if (auto* fr = network_.flight_recorder())
    fr->record(flight::EventType::kSendPost, queue_.now(), token, host_, token,
               static_cast<std::uint8_t>(type));
  host_queue_.push_back(PostedSend{token, dst, type, std::move(payload)});
  sdma_pump();
  return token;
}

void Nic::sdma_pump() {
  // SRAM send buffers in use: filled-and-waiting, being filled by the host
  // DMA, and the one the send DMA is draining.
  const int occupied = static_cast<int>(ready_buffers_.size()) +
                       sdma_in_flight_ + (send_dma_busy_ ? 1 : 0);
  if (host_queue_.empty() || occupied >= options_.send_buffers) return;

  ++sdma_in_flight_;
  PostedSend ps = std::move(host_queue_.front());
  host_queue_.pop_front();
  cpu_.post(McpPriority::kSdma, timing_.sdma_process,
            [this, ps = std::move(ps)]() mutable {
              const auto bytes = static_cast<std::int64_t>(ps.payload.size());
              pci_.dma(bytes, [this, ps = std::move(ps)]() mutable {
                --sdma_in_flight_;
                ready_buffers_.push_back(std::move(ps));
                send_pump();
                sdma_pump();
              });
            });
}

void Nic::set_send_dma(bool busy) {
  if (busy == send_dma_busy_) return;
  if (busy)
    send_dma_since_ = queue_.now();
  else
    send_dma_busy_ns_ += queue_.now() - send_dma_since_;
  send_dma_busy_ = busy;
}

sim::Duration Nic::send_dma_busy_ns() const {
  return send_dma_busy_ns_ +
         (send_dma_busy_ ? queue_.now() - send_dma_since_ : 0);
}

sim::Duration Nic::rx_busy_ns() const {
  return rx_busy_ns_ + (rx_reserved_ > 0 ? queue_.now() - rx_busy_since_ : 0);
}

void Nic::register_metrics(telemetry::MetricRegistry& registry) const {
  const telemetry::Labels labels{.host = host_, .channel = -1};
  auto source = [&registry, labels](const char* name,
                                    const std::uint64_t& field) {
    registry.register_source("nic", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); },
                             labels);
  };
  source("sent", stats_.sent);
  source("received", stats_.received);
  source("delivered_to_host", stats_.delivered_to_host);
  source("itb_forwarded", stats_.itb_forwarded);
  source("itb_pending_hits", stats_.itb_pending_hits);
  source("dropped_no_buffer", stats_.dropped_no_buffer);
  source("dropped_unroutable", stats_.dropped_unroutable);
  source("rx_unknown_type", stats_.rx_unknown_type);
  source("rx_bad_crc", stats_.rx_bad_crc);
  source("rx_aborted", stats_.rx_aborted);
  registry.register_source(
      "nic", "mcp_busy_ns", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(cpu_.busy_ns()); }, labels);
  registry.register_source(
      "nic", "mcp_jobs", telemetry::MetricKind::kCounter,
      [this] { return static_cast<double>(cpu_.jobs_executed()); }, labels);
  registry.register_source(
      "nic", "send_dma_busy_ns", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(send_dma_busy_ns()); }, labels);
  registry.register_source(
      "nic", "rx_busy_ns", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(rx_busy_ns()); }, labels);
}

void Nic::send_pump() {
  if (send_dma_busy_ || ready_buffers_.empty()) return;
  set_send_dma(true);
  PostedSend ps = std::move(ready_buffers_.front());
  ready_buffers_.pop_front();
  cpu_.post(McpPriority::kHostRequest, timing_.send_process,
            [this, ps = std::move(ps)]() mutable {
              if (routes_[ps.dst].empty()) {
                // post_send checked the route, but tables hot-swap on
                // remap: a window that disconnects ps.dst empties its
                // route while the send sits in the SRAM pipeline. Drop
                // it here — GM's retransmission timer re-posts once a
                // later remap restores a route (or declares the peer
                // dead after max_retries).
                ++stats_.dropped_unroutable;
                set_send_dma(false);
                if (!itb_pending_.empty()) {
                  const auto next = itb_pending_.front();
                  itb_pending_.pop_front();
                  set_send_dma(true);
                  cpu_.post(McpPriority::kItbPendingSend,
                            timing_.itb_program_send,
                            [this, next] { start_reinjection(next); });
                } else {
                  send_pump();
                  sdma_pump();
                }
                return;
              }
              auto bytes =
                  packet::build_itb_packet(routes_[ps.dst], ps.type, ps.payload);
              const std::uint64_t token = ps.token;
              queue_.schedule_in(
                  timing_.cycles(timing_.send_dma_start),
                  [this, token, bytes = std::move(bytes)]() mutable {
                    const auto h = network_.inject(host_, std::move(bytes));
                    tx_tokens_[h] = token;
                    if (auto* fr = network_.flight_recorder())
                      fr->record(flight::EventType::kTxBind, queue_.now(), h,
                                 host_, token);
                    ++stats_.sent;
                  });
            });
}

// --------------------------------------------------------------- receive --

void Nic::on_rx_head(sim::Time t, net::TxHandle h) {
  if (rx_reserved_ >= options_.recv_buffers) {
    // Only reachable in drop_when_full mode: with backpressure the network
    // never grants the final channel while we are out of buffers.
    rx_doomed_.insert(h);
    return;
  }
  if (rx_reserved_++ == 0) rx_busy_since_ = t;
  if (!options_.drop_when_full && rx_reserved_ >= options_.recv_buffers)
    network_.set_host_rx_ready(host_, false);
}

void Nic::on_rx_early_header(sim::Time t, net::TxHandle h,
                             const packet::Bytes& head4) {
  if (!options_.itb_support || !options_.early_recv) return;
  if (rx_doomed_.contains(h)) return;

  // The LANai raised the Early Recv Packet event; its handler probes the
  // type field — only the 2-byte type fits in the 4-byte snapshot. The
  // claim is recorded immediately (simulator bookkeeping); the cost lands
  // on the MCP CPU.
  auto type = packet::peek_type(head4);
  const bool is_itb = type == packet::PacketType::kItb;
  if (is_itb) itb_claimed_.insert(h);
  if (auto* fr = network_.flight_recorder())
    fr->record(flight::EventType::kEarlyRecv, t, h, host_, 0, is_itb ? 1 : 0);

  cpu_.post(McpPriority::kEarlyRecv, timing_.early_recv_check, [this, h,
                                                                is_itb] {
    if (!is_itb) return;  // normal packet: resume normal dispatching
    if (send_dma_busy_) {
      // "ITB packet pending" flag: serviced at send completion (Fig. 5).
      ++stats_.itb_pending_hits;
      itb_pending_.push_back(h);
      return;
    }
    set_send_dma(true);
    if (options_.recv_side_reinjection) {
      // The Recv machine programs the send DMA itself, skipping one
      // dispatching cycle (Fig. 4, dashed lines).
      cpu_.post(McpPriority::kEarlyRecv, timing_.itb_program_send,
                [this, h] { start_reinjection(h); }, /*skip_dispatch=*/true);
    } else {
      cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                [this, h] { start_reinjection(h); });
    }
  });
}

void Nic::start_reinjection(net::TxHandle h) {
  if (auto* fr = network_.flight_recorder())
    fr->record(flight::EventType::kItbDmaStart, queue_.now(), h, host_);
  // Packet content: still streaming in (peek) or fully received (stash).
  packet::Bytes stripped;
  sim::Time data_ready;
  if (auto it = itb_stash_.find(h); it != itb_stash_.end()) {
    stripped = packet::strip_itb_stage(it->second.bytes);
    data_ready = queue_.now();
    itb_stash_.erase(it);
  } else if (auto peek = network_.peek_rx(h)) {
    stripped = packet::strip_itb_stage(*peek->bytes);
    data_ready = peek->tail_time;
  } else {
    // The packet was lost (fault injection) between detection and DMA
    // programming; on_rx_aborted already released its receive buffer.
    // Release the send DMA and resume normal service.
    tracer_.emit(queue_.now(), sim::TraceCategory::kMcp, [&] {
      return "h" + std::to_string(host_) + " ITB rx" + std::to_string(h) +
             " lost before re-injection";
    });
    set_send_dma(false);
    if (!itb_pending_.empty()) {
      const auto next = itb_pending_.front();
      itb_pending_.pop_front();
      set_send_dma(true);
      cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                [this, next] { start_reinjection(next); });
    } else {
      send_pump();
    }
    return;
  }
  itb_injected_.insert(h);
  ++stats_.itb_forwarded;
  tracer_.emit(queue_.now(), sim::TraceCategory::kMcp, [&] {
    return "h" + std::to_string(host_) + " re-injecting ITB rx" +
           std::to_string(h);
  });
  queue_.schedule_in(
      timing_.cycles(timing_.send_dma_start),
      [this, h, data_ready, stripped = std::move(stripped)]() mutable {
        const auto nh =
            network_.inject(host_, std::move(stripped), data_ready);
        reinjections_.insert(nh);
        reinject_of_[nh] = h;
        if (auto* fr = network_.flight_recorder())
          fr->record(flight::EventType::kReinject, queue_.now(), nh, host_, h);
      });
}

void Nic::on_rx_complete(sim::Time, net::WirePacket packet) {
  ++stats_.received;
  const auto h = packet.handle;

  if (rx_doomed_.erase(h) > 0) {
    ++stats_.dropped_no_buffer;
    tracer_.emit(queue_.now(), sim::TraceCategory::kNic, [&] {
      return "h" + std::to_string(host_) + " dropped rx" + std::to_string(h) +
             " (no buffer)";
    });
    return;
  }

  if (itb_claimed_.contains(h)) {
    // Handled (or queued) by the Early Recv path. Keep the bytes around if
    // the re-injection has not started yet; the receive buffer stays in
    // use until the re-injection's send completes.
    if (!itb_injected_.contains(h)) itb_stash_[h] = std::move(packet);
    return;
  }

  const int cost =
      timing_.recv_process + (options_.itb_support ? timing_.itb_recv_extra : 0);
  cpu_.post(McpPriority::kRecvComplete, cost,
            [this, packet = std::move(packet)]() mutable {
              auto head = packet::parse_head(packet.bytes);
              if (!head) {
                ++stats_.rx_unknown_type;
                free_recv_buffer();
                return;
              }
              if (head->type == packet::PacketType::kItb) {
                if (!options_.itb_support) {
                  // The original MCP has no idea what an ITB packet is.
                  ++stats_.rx_unknown_type;
                  free_recv_buffer();
                  return;
                }
                // Late detection (early_recv ablation): forward from the
                // fully received buffer. Stands in for Early Recv in the
                // flight timeline (detail=2) so ITB hops still stitch.
                const auto h = packet.handle;
                if (auto* fr = network_.flight_recorder())
                  fr->record(flight::EventType::kEarlyRecv, queue_.now(), h,
                             host_, 0, 2);
                itb_claimed_.insert(h);
                itb_stash_[h] = std::move(packet);
                if (send_dma_busy_) {
                  ++stats_.itb_pending_hits;
                  itb_pending_.push_back(h);
                } else {
                  set_send_dma(true);
                  cpu_.post(McpPriority::kItbPendingSend,
                            timing_.itb_program_send,
                            [this, h] { start_reinjection(h); });
                }
                return;
              }
              // The interface checks the packet CRC before handing the
              // payload to the host; a corrupted packet is discarded and
              // GM's retransmission recovers it.
              if (!packet::verify_crc(packet.bytes)) {
                ++stats_.rx_bad_crc;
                free_recv_buffer();
                return;
              }
              // Normal packet: RDMA the payload into host memory.
              packet::Bytes payload(
                  packet.bytes.begin() +
                      static_cast<std::ptrdiff_t>(head->payload_offset),
                  packet.bytes.end() - 1);
              const auto type = head->type;
              const auto h = packet.handle;
              pci_.dma(static_cast<std::int64_t>(payload.size()),
                       [this, type, h, payload = std::move(payload)]() mutable {
                         cpu_.post(McpPriority::kRdmaComplete,
                                   timing_.rdma_complete,
                                   [this, type, h,
                                    payload = std::move(payload)]() mutable {
                                     ++stats_.delivered_to_host;
                                     if (auto* fr = network_.flight_recorder())
                                       fr->record(flight::EventType::kDeliver,
                                                  queue_.now(), h, host_);
                                     if (client_)
                                       client_->on_message(queue_.now(), type,
                                                           std::move(payload));
                                     free_recv_buffer();
                                   });
                       });
            });
}

void Nic::free_recv_buffer() {
  if (--rx_reserved_ == 0) rx_busy_ns_ += queue_.now() - rx_busy_since_;
  network_.set_host_rx_ready(host_, true);
}

bool Nic::enable_drop_when_full() {
  if (options_.drop_when_full) return false;
  options_.drop_when_full = true;
  // Reopen the gate: a parked worm is granted the channel into this host
  // and its arrival, finding no free buffer, is doomed in on_rx_head —
  // exactly the circular-pool discard the paper's §4 relies on.
  network_.set_host_rx_ready(host_, true);
  return true;
}

// ------------------------------------------------------------------ send --

void Nic::on_tx_started(sim::Time, net::TxHandle) {}

void Nic::on_tx_complete(sim::Time, net::TxHandle h) {
  cpu_.post(McpPriority::kSendComplete, timing_.send_complete, [this, h] {
    if (reinjections_.erase(h) > 0) {
      const auto orig = reinject_of_.at(h);
      reinject_of_.erase(h);
      itb_claimed_.erase(orig);
      itb_injected_.erase(orig);
      free_recv_buffer();  // the ITB packet's receive buffer
    } else if (auto it = tx_tokens_.find(h); it != tx_tokens_.end()) {
      const auto token = it->second;
      tx_tokens_.erase(it);
      if (client_) client_->on_send_complete(queue_.now(), token);
    }
    set_send_dma(false);
    if (!itb_pending_.empty()) {
      // Pending ITB packets beat normal sends (Fig. 5, high priority).
      const auto next = itb_pending_.front();
      itb_pending_.pop_front();
      set_send_dma(true);
      cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                [this, next] { start_reinjection(next); });
    } else {
      send_pump();
    }
    sdma_pump();
  });
}

void Nic::on_rx_aborted(sim::Time, net::TxHandle h) {
  ++stats_.rx_aborted;
  if (rx_doomed_.erase(h) > 0) return;  // no buffer was reserved
  if (itb_injected_.contains(h)) return;  // re-injection owns the buffer now
  itb_claimed_.erase(h);
  itb_stash_.erase(h);
  std::erase(itb_pending_, h);
  free_recv_buffer();
}

void Nic::on_tx_dropped(sim::Time, net::TxHandle h) {
  // Clean up bookkeeping for a transmission the network discarded.
  cpu_.post(McpPriority::kSendComplete, timing_.send_complete, [this, h] {
    if (reinjections_.erase(h) > 0) {
      const auto orig = reinject_of_.at(h);
      reinject_of_.erase(h);
      itb_claimed_.erase(orig);
      itb_injected_.erase(orig);
      free_recv_buffer();
    } else {
      tx_tokens_.erase(h);
    }
    set_send_dma(false);
    send_pump();
    sdma_pump();
  });
}

}  // namespace itb::nic
