#include "itb/nic/nic.hpp"

#include <stdexcept>

namespace itb::nic {

Nic::Nic(sim::EventQueue& queue, sim::Tracer& tracer, net::Network& network,
         host::PciBus& pci, std::uint16_t host, const LanaiTiming& timing,
         const McpOptions& options)
    : queue_(queue),
      tracer_(tracer),
      network_(network),
      pci_(pci),
      host_(host),
      timing_(timing),
      options_(options),
      cpu_(queue, timing),
      routes_(network.topology().host_count()) {
  network_.attach_host(host, this);
}

void Nic::set_route(std::uint16_t dst, std::vector<packet::Route> segments) {
  routes_.at(dst) = std::move(segments);
}

void Nic::load_routes(const routing::RouteTable& table) {
  for (std::uint16_t d = 0; d < table.host_count(); ++d) {
    if (d == host_) continue;
    routes_.at(d) = table.route(host_, d).segments;
  }
  route_epoch_ = table.epoch();
}

std::uint64_t Nic::post_send(std::uint16_t dst, packet::Bytes payload,
                             packet::PacketType type) {
  if (dst == host_) throw std::invalid_argument("loopback send not supported");
  if (payload.size() > kMtu) throw std::invalid_argument("payload exceeds MTU");
  if (routes_.at(dst).empty())
    throw std::logic_error("no route to host " + std::to_string(dst));
  const std::uint64_t token = next_token_++;
  if (auto* fr = network_.flight_recorder())
    fr->record(flight::EventType::kSendPost, queue_.now(), token, host_, token,
               static_cast<std::uint8_t>(type));
  auto [h, ps] = send_pool_.acquire();
  ps->token = token;
  ps->dst = dst;
  ps->type = type;
  ps->epoch = route_epoch_;
  ps->payload = std::move(payload);
  host_queue_.push_back(h);
  sdma_pump();
  return token;
}

void Nic::sdma_pump() {
  // SRAM send buffers in use: filled-and-waiting, being filled by the host
  // DMA, and the one the send DMA is draining.
  const int occupied = static_cast<int>(ready_buffers_.size()) +
                       sdma_in_flight_ + (send_dma_busy_ ? 1 : 0);
  if (host_queue_.empty() || occupied >= options_.send_buffers) return;

  ++sdma_in_flight_;
  const sim::PoolHandle h = host_queue_.take_front();
  cpu_.post(McpPriority::kSdma, timing_.sdma_process, [this, h] {
    const auto bytes =
        static_cast<std::int64_t>(send_pool_.get(h)->payload.size());
    pci_.dma(bytes, [this, h] {
      --sdma_in_flight_;
      ready_buffers_.push_back(h);
      send_pump();
      sdma_pump();
    });
  });
}

void Nic::set_send_dma(bool busy) {
  if (busy == send_dma_busy_) return;
  if (busy)
    send_dma_since_ = queue_.now();
  else
    send_dma_busy_ns_ += queue_.now() - send_dma_since_;
  send_dma_busy_ = busy;
}

sim::Duration Nic::send_dma_busy_ns() const {
  return send_dma_busy_ns_ +
         (send_dma_busy_ ? queue_.now() - send_dma_since_ : 0);
}

sim::Duration Nic::rx_busy_ns() const {
  return rx_busy_ns_ + (rx_reserved_ > 0 ? queue_.now() - rx_busy_since_ : 0);
}

void Nic::register_metrics(telemetry::MetricRegistry& registry) const {
  const telemetry::Labels labels{.host = host_, .channel = -1};
  auto source = [&registry, labels](const char* name,
                                    const std::uint64_t& field) {
    registry.register_source("nic", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); },
                             labels);
  };
  source("sent", stats_.sent);
  source("received", stats_.received);
  source("delivered_to_host", stats_.delivered_to_host);
  source("itb_forwarded", stats_.itb_forwarded);
  source("itb_pending_hits", stats_.itb_pending_hits);
  source("dropped_no_buffer", stats_.dropped_no_buffer);
  source("dropped_unroutable", stats_.dropped_unroutable);
  source("resourced_sends", stats_.resourced_sends);
  source("rx_unknown_type", stats_.rx_unknown_type);
  source("rx_bad_crc", stats_.rx_bad_crc);
  source("rx_aborted", stats_.rx_aborted);
  registry.register_source(
      "nic", "mcp_busy_ns", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(cpu_.busy_ns()); }, labels);
  registry.register_source(
      "nic", "mcp_jobs", telemetry::MetricKind::kCounter,
      [this] { return static_cast<double>(cpu_.jobs_executed()); }, labels);
  registry.register_source(
      "nic", "send_dma_busy_ns", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(send_dma_busy_ns()); }, labels);
  registry.register_source(
      "nic", "rx_busy_ns", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(rx_busy_ns()); }, labels);
  registry.register_source(
      "nic", "send_pool_high_water", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(send_pool_.high_water()); }, labels);
  registry.register_source(
      "nic", "injection_lane", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(injection_lane()); }, labels);
}

void Nic::send_pump() {
  if (send_dma_busy_ || ready_buffers_.empty()) return;
  set_send_dma(true);
  const sim::PoolHandle sh = ready_buffers_.take_front();
  cpu_.post(McpPriority::kHostRequest, timing_.send_process, [this, sh] {
    PostedSend& ps = *send_pool_.get(sh);
    if (routes_[ps.dst].empty()) {
      // post_send checked the route, but tables hot-swap on remap: a window
      // that disconnects ps.dst empties its route while the send sits in
      // the SRAM pipeline. If the table epoch moved since the send was
      // admitted, the swap itself may be why — re-queue it once against the
      // new epoch (the route may only LOOK empty because a newer table
      // already replaced the one it was checked against). Only a send that
      // is unroutable at the CURRENT epoch is dropped; GM's retransmission
      // timer then re-posts once a later remap restores a route (or
      // declares the peer dead after max_retries).
      if (ps.epoch != route_epoch_) {
        ps.epoch = route_epoch_;
        ++stats_.resourced_sends;
        host_queue_.push_back(sh);
      } else {
        send_pool_.release(sh);
        ++stats_.dropped_unroutable;
      }
      set_send_dma(false);
      if (!itb_pending_.empty()) {
        const auto next = itb_pending_.take_front();
        set_send_dma(true);
        cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                  [this, next] { start_reinjection(next); });
      } else {
        send_pump();
        sdma_pump();
      }
      return;
    }
    auto bytes = packet::build_itb_packet(routes_[ps.dst], ps.type, ps.payload);
    const std::uint64_t token = ps.token;
    send_pool_.release(sh);  // payload consumed; buffer recycles warm
    queue_.schedule_in(timing_.cycles(timing_.send_dma_start),
                       [this, token, bytes = std::move(bytes)]() mutable {
                         const auto h = network_.inject(host_, std::move(bytes));
                         tx_live_.push_back(TxRec{h, token, 0, false});
                         if (auto* fr = network_.flight_recorder())
                           fr->record(flight::EventType::kTxBind, queue_.now(),
                                      h, host_, token);
                         ++stats_.sent;
                       });
  });
}

// --------------------------------------------------------------- receive --

Nic::TxRec* Nic::find_tx(net::TxHandle h) {
  for (TxRec& r : tx_live_)
    if (r.handle == h) return &r;
  return nullptr;
}

void Nic::erase_tx(TxRec* rec) {
  if (rec != &tx_live_.back()) *rec = std::move(tx_live_.back());
  tx_live_.pop_back();
}

Nic::RxRec* Nic::find_rx(net::TxHandle h) {
  for (RxRec& r : rx_recs_)
    if (r.handle == h) return &r;
  return nullptr;
}

Nic::RxRec& Nic::rx_rec(net::TxHandle h) {
  if (RxRec* r = find_rx(h)) return *r;
  rx_recs_.emplace_back();
  rx_recs_.back().handle = h;
  return rx_recs_.back();
}

void Nic::erase_rx(RxRec* rec) {
  if (rec != &rx_recs_.back()) *rec = std::move(rx_recs_.back());
  rx_recs_.pop_back();
}

void Nic::on_rx_head(sim::Time t, net::TxHandle h) {
  if (rx_reserved_ >= options_.recv_buffers) {
    // Only reachable in drop_when_full mode: with backpressure the network
    // never grants the final channel while we are out of buffers.
    rx_rec(h).doomed = true;
    return;
  }
  if (rx_reserved_++ == 0) rx_busy_since_ = t;
  if (!options_.drop_when_full && rx_reserved_ >= options_.recv_buffers)
    network_.set_host_rx_ready(host_, false);
}

void Nic::on_rx_early_header(sim::Time t, net::TxHandle h,
                             const packet::Bytes& head4) {
  if (!options_.itb_support || !options_.early_recv) return;
  if (RxRec* r = find_rx(h); r && r->doomed) return;

  // The LANai raised the Early Recv Packet event; its handler probes the
  // type field — only the 2-byte type fits in the 4-byte snapshot. The
  // claim is recorded immediately (simulator bookkeeping); the cost lands
  // on the MCP CPU.
  auto type = packet::peek_type(head4);
  const bool is_itb = type == packet::PacketType::kItb;
  if (is_itb) rx_rec(h).claimed = true;
  if (auto* fr = network_.flight_recorder())
    fr->record(flight::EventType::kEarlyRecv, t, h, host_, 0, is_itb ? 1 : 0);

  cpu_.post(McpPriority::kEarlyRecv, timing_.early_recv_check, [this, h,
                                                                is_itb] {
    if (!is_itb) return;  // normal packet: resume normal dispatching
    if (send_dma_busy_) {
      // "ITB packet pending" flag: serviced at send completion (Fig. 5).
      ++stats_.itb_pending_hits;
      itb_pending_.push_back(h);
      return;
    }
    set_send_dma(true);
    if (options_.recv_side_reinjection) {
      // The Recv machine programs the send DMA itself, skipping one
      // dispatching cycle (Fig. 4, dashed lines).
      cpu_.post(McpPriority::kEarlyRecv, timing_.itb_program_send,
                [this, h] { start_reinjection(h); }, /*skip_dispatch=*/true);
    } else {
      cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                [this, h] { start_reinjection(h); });
    }
  });
}

void Nic::start_reinjection(net::TxHandle h) {
  if (auto* fr = network_.flight_recorder())
    fr->record(flight::EventType::kItbDmaStart, queue_.now(), h, host_);
  // Packet content: still streaming in (peek) or fully received (stash).
  packet::Bytes stripped;
  sim::Time data_ready;
  RxRec* rec = find_rx(h);
  if (rec && rec->stashed) {
    stripped = packet::strip_itb_stage(rec->stash.bytes);
    data_ready = queue_.now();
    rec->stashed = false;
    rec->stash = net::WirePacket{};  // bytes no longer needed
  } else if (auto peek = network_.peek_rx(h)) {
    stripped = packet::strip_itb_stage(*peek->bytes);
    data_ready = peek->tail_time;
  } else {
    // The packet was lost (fault injection) between detection and DMA
    // programming; on_rx_aborted already released its receive buffer (and
    // erased the record). Release the send DMA and resume normal service.
    tracer_.emit(queue_.now(), sim::TraceCategory::kMcp, [&] {
      return "h" + std::to_string(host_) + " ITB rx" + std::to_string(h) +
             " lost before re-injection";
    });
    set_send_dma(false);
    if (!itb_pending_.empty()) {
      const auto next = itb_pending_.take_front();
      set_send_dma(true);
      cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                [this, next] { start_reinjection(next); });
    } else {
      send_pump();
    }
    return;
  }
  // The reception is live (stash or peek succeeded), so its record is too.
  rec->injected = true;
  ++stats_.itb_forwarded;
  tracer_.emit(queue_.now(), sim::TraceCategory::kMcp, [&] {
    return "h" + std::to_string(host_) + " re-injecting ITB rx" +
           std::to_string(h);
  });
  queue_.schedule_in(
      timing_.cycles(timing_.send_dma_start),
      [this, h, data_ready, stripped = std::move(stripped)]() mutable {
        const auto nh =
            network_.inject(host_, std::move(stripped), data_ready);
        tx_live_.push_back(TxRec{nh, 0, h, true});
        if (auto* fr = network_.flight_recorder())
          fr->record(flight::EventType::kReinject, queue_.now(), nh, host_, h);
      });
}

void Nic::on_rx_complete(sim::Time, net::WirePacket packet) {
  ++stats_.received;
  const auto h = packet.handle;

  if (RxRec* r = find_rx(h)) {
    if (r->doomed) {
      erase_rx(r);
      ++stats_.dropped_no_buffer;
      tracer_.emit(queue_.now(), sim::TraceCategory::kNic, [&] {
        return "h" + std::to_string(host_) + " dropped rx" + std::to_string(h) +
               " (no buffer)";
      });
      return;
    }
    // Claimed (or queued) by the Early Recv path. Keep the bytes around if
    // the re-injection has not started yet; the receive buffer stays in
    // use until the re-injection's send completes.
    if (!r->injected) {
      r->stash = std::move(packet);
      r->stashed = true;
    }
    return;
  }

  const int cost =
      timing_.recv_process + (options_.itb_support ? timing_.itb_recv_extra : 0);
  cpu_.post(McpPriority::kRecvComplete, cost,
            [this, packet = std::move(packet)]() mutable {
              auto head = packet::parse_head(packet.bytes);
              if (!head) {
                ++stats_.rx_unknown_type;
                free_recv_buffer();
                return;
              }
              if (head->type == packet::PacketType::kItb) {
                if (!options_.itb_support) {
                  // The original MCP has no idea what an ITB packet is.
                  ++stats_.rx_unknown_type;
                  free_recv_buffer();
                  return;
                }
                // Late detection (early_recv ablation): forward from the
                // fully received buffer. Stands in for Early Recv in the
                // flight timeline (detail=2) so ITB hops still stitch.
                const auto h = packet.handle;
                if (auto* fr = network_.flight_recorder())
                  fr->record(flight::EventType::kEarlyRecv, queue_.now(), h,
                             host_, 0, 2);
                RxRec& rec = rx_rec(h);
                rec.claimed = true;
                rec.stash = std::move(packet);
                rec.stashed = true;
                if (send_dma_busy_) {
                  ++stats_.itb_pending_hits;
                  itb_pending_.push_back(h);
                } else {
                  set_send_dma(true);
                  cpu_.post(McpPriority::kItbPendingSend,
                            timing_.itb_program_send,
                            [this, h] { start_reinjection(h); });
                }
                return;
              }
              // The interface checks the packet CRC before handing the
              // payload to the host; a corrupted packet is discarded and
              // GM's retransmission recovers it.
              if (!packet::verify_crc(packet.bytes)) {
                ++stats_.rx_bad_crc;
                free_recv_buffer();
                return;
              }
              // Normal packet: RDMA the payload into host memory.
              packet::Bytes payload(
                  packet.bytes.begin() +
                      static_cast<std::ptrdiff_t>(head->payload_offset),
                  packet.bytes.end() - 1);
              const auto type = head->type;
              const auto h = packet.handle;
              pci_.dma(static_cast<std::int64_t>(payload.size()),
                       [this, type, h, payload = std::move(payload)]() mutable {
                         cpu_.post(McpPriority::kRdmaComplete,
                                   timing_.rdma_complete,
                                   [this, type, h,
                                    payload = std::move(payload)]() mutable {
                                     ++stats_.delivered_to_host;
                                     if (auto* fr = network_.flight_recorder())
                                       fr->record(flight::EventType::kDeliver,
                                                  queue_.now(), h, host_);
                                     if (client_)
                                       client_->on_message(queue_.now(), type,
                                                           std::move(payload));
                                     free_recv_buffer();
                                   });
                       });
            });
}

void Nic::free_recv_buffer() {
  if (--rx_reserved_ == 0) rx_busy_ns_ += queue_.now() - rx_busy_since_;
  network_.set_host_rx_ready(host_, true);
}

bool Nic::enable_drop_when_full() {
  if (options_.drop_when_full) return false;
  options_.drop_when_full = true;
  // Reopen the gate: a parked worm is granted the channel into this host
  // and its arrival, finding no free buffer, is doomed in on_rx_head —
  // exactly the circular-pool discard the paper's §4 relies on.
  network_.set_host_rx_ready(host_, true);
  return true;
}

// ------------------------------------------------------------------ send --

void Nic::on_tx_started(sim::Time, net::TxHandle) {}

void Nic::on_tx_complete(sim::Time, net::TxHandle h) {
  cpu_.post(McpPriority::kSendComplete, timing_.send_complete, [this, h] {
    if (TxRec* tx = find_tx(h)) {
      if (tx->is_reinject) {
        const auto orig = tx->reinject_of;
        erase_tx(tx);
        if (RxRec* r = find_rx(orig)) erase_rx(r);
        free_recv_buffer();  // the ITB packet's receive buffer
      } else {
        const auto token = tx->token;
        erase_tx(tx);
        if (client_) client_->on_send_complete(queue_.now(), token);
      }
    }
    set_send_dma(false);
    if (!itb_pending_.empty()) {
      // Pending ITB packets beat normal sends (Fig. 5, high priority).
      const auto next = itb_pending_.take_front();
      set_send_dma(true);
      cpu_.post(McpPriority::kItbPendingSend, timing_.itb_program_send,
                [this, next] { start_reinjection(next); });
    } else {
      send_pump();
    }
    sdma_pump();
  });
}

void Nic::on_rx_aborted(sim::Time, net::TxHandle h) {
  ++stats_.rx_aborted;
  RxRec* r = find_rx(h);
  if (r && r->doomed) {  // no buffer was reserved
    erase_rx(r);
    return;
  }
  if (r && r->injected) return;  // re-injection owns the buffer now
  if (r) erase_rx(r);
  itb_pending_.erase_value(h);
  free_recv_buffer();
}

void Nic::on_tx_dropped(sim::Time, net::TxHandle h) {
  // Clean up bookkeeping for a transmission the network discarded.
  cpu_.post(McpPriority::kSendComplete, timing_.send_complete, [this, h] {
    if (TxRec* tx = find_tx(h)) {
      if (tx->is_reinject) {
        const auto orig = tx->reinject_of;
        erase_tx(tx);
        if (RxRec* r = find_rx(orig)) erase_rx(r);
        free_recv_buffer();
      } else {
        erase_tx(tx);
      }
    }
    set_send_dma(false);
    send_pump();
    sdma_pump();
  });
}

}  // namespace itb::nic
