#include "itb/nic/mux.hpp"

namespace itb::nic {

void NicMux::route(packet::PacketType type, NicClient* client) {
  clients_[slot(type)] = client;
}

void NicMux::on_message(sim::Time t, packet::PacketType type,
                        packet::Bytes payload) {
  if (NicClient* client = clients_[slot(type)]) {
    client->on_message(t, type, std::move(payload));
  } else {
    ++unclaimed_;
  }
}

void NicMux::on_send_complete(sim::Time t, std::uint64_t token) {
  // Send tokens are NIC-scoped, not type-scoped; every stack hears the
  // completion and ignores tokens it does not own.
  for (NicClient* client : clients_)
    if (client) client->on_send_complete(t, token);
}

}  // namespace itb::nic
