// Packet-type demultiplexer for host-side NIC clients.
//
// The MCP classifies arrived packets by their 2-byte type (§4: GM, mapping,
// IP, ITB); on the host the corresponding software stacks consume them. A
// NicMux stands in as the NIC's single client and forwards each delivery to
// the stack registered for its type — GM and the IP driver can then share
// one interface, as they do under real GM.
#pragma once

#include <array>
#include <cstdint>

#include "itb/nic/nic.hpp"

namespace itb::nic {

class NicMux final : public NicClient {
 public:
  /// Installs itself as `nic`'s client.
  explicit NicMux(Nic& nic) { nic.set_client(this); }

  /// Register the consumer of packets of `type` (nullptr unregisters).
  void route(packet::PacketType type, NicClient* client);

  /// Packets that arrived with no registered consumer.
  std::uint64_t unclaimed() const { return unclaimed_; }

  void on_message(sim::Time t, packet::PacketType type,
                  packet::Bytes payload) override;
  void on_send_complete(sim::Time t, std::uint64_t token) override;

 private:
  static std::size_t slot(packet::PacketType type) {
    return static_cast<std::uint16_t>(type) & 0x7;
  }

  std::array<NicClient*, 8> clients_{};
  std::uint64_t unclaimed_ = 0;
};

}  // namespace itb::nic
