// The Myrinet NIC: LANai + SRAM buffers + MCP state machines.
//
// The MCP (paper §3) is four state machines coordinated by a prioritised
// event handler:
//   SDMA — host memory -> NIC send buffer (over the host DMA / PCI bus)
//   Send — stamp the source route from the NIC route table, start send DMA
//   Recv — classify arrived packets, program the receive-side host DMA
//   RDMA — NIC receive buffer -> host memory, completion to the host
//
// The ITB modification (paper §4, Figs. 4-5) adds:
//   * an Early Recv Packet event raised when the first 4 bytes of a packet
//     are in SRAM, whose handler probes the type field;
//   * Recv-side re-injection: when the Early Recv handler finds an ITB
//     packet and the send DMA is free, it programs the re-injection DMA
//     itself, skipping one event-handler dispatching cycle;
//   * an "ITB packet pending" flag serviced at send completion when the
//     send DMA was busy at detection time;
//   * virtual cut-through: the re-injection can start while the packet is
//     still arriving; reception always runs to the last byte even if the
//     re-injection blocks (Stop&Go stalls only the send side).
//
// Buffering matches the paper: two receive buffers and two send buffers by
// default; `recv_buffers` can be raised and `drop_when_full` enables the
// proposed circular-pool behaviour (accept and drop when full, relying on
// GM retransmission) instead of link-level backpressure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "itb/host/pci.hpp"
#include "itb/net/network.hpp"
#include "itb/nic/lanai.hpp"
#include "itb/packet/format.hpp"
#include "itb/routing/table.hpp"
#include "itb/sim/flat_fifo.hpp"
#include "itb/sim/slab_pool.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::nic {

struct McpOptions {
  /// False = the original GM MCP: no ITB code at all. An arriving ITB
  /// packet counts as an unknown type and is discarded.
  bool itb_support = true;

  /// Ablations of the two §4 design choices (both true = the paper's MCP).
  bool early_recv = true;             // detect at 4 bytes vs at completion
  bool recv_side_reinjection = true;  // skip one dispatch cycle

  int recv_buffers = 2;
  int send_buffers = 2;

  /// §4 extension: behave like a circular buffer pool — never exert
  /// backpressure; drop arrivals that find no free buffer (GM retransmits).
  bool drop_when_full = false;

  static McpOptions original_gm() {
    McpOptions o;
    o.itb_support = false;
    return o;
  }
};

struct NicStats {
  std::uint64_t sent = 0;               // injections for host sends
  std::uint64_t received = 0;           // packets fully received
  std::uint64_t delivered_to_host = 0;  // RDMA completions
  std::uint64_t itb_forwarded = 0;      // re-injections performed
  std::uint64_t itb_pending_hits = 0;   // ITB found send DMA busy
  std::uint64_t dropped_no_buffer = 0;  // drop_when_full discards
  std::uint64_t dropped_unroutable = 0;  // unroutable at the CURRENT epoch
  std::uint64_t resourced_sends = 0;     // re-queued across a table hot-swap
  std::uint64_t rx_unknown_type = 0;    // e.g. ITB packet at original MCP
  std::uint64_t rx_bad_crc = 0;         // corrupted packets discarded
  std::uint64_t rx_aborted = 0;         // receptions lost mid-flight
};

/// Host-side observer (the GM library implements this).
class NicClient {
 public:
  virtual ~NicClient() = default;

  /// A packet's payload landed in host memory (RDMA complete).
  virtual void on_message(sim::Time t, packet::PacketType type,
                          packet::Bytes payload) = 0;

  /// The send posted with this token fully left the NIC.
  virtual void on_send_complete(sim::Time t, std::uint64_t token) = 0;
};

class Nic final : public net::HostHooks {
 public:
  static constexpr std::size_t kMtu = 4096;  // GM packet payload limit

  Nic(sim::EventQueue& queue, sim::Tracer& tracer, net::Network& network,
      host::PciBus& pci, std::uint16_t host, const LanaiTiming& timing,
      const McpOptions& options);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  void set_client(NicClient* client) { client_ = client; }

  /// Install the source-route segments toward `dst` (what the mapper
  /// downloads into NIC SRAM).
  void set_route(std::uint16_t dst, std::vector<packet::Route> segments);

  /// Install routes for every destination from a computed table.
  void load_routes(const routing::RouteTable& table);

  /// True when a (non-empty) route toward `dst` is installed. Degraded
  /// tables leave unreachable destinations route-less; callers check this
  /// instead of eating post_send's no-route throw.
  bool has_route(std::uint16_t dst) const {
    return dst < routes_.size() && !routes_[dst].empty();
  }

  /// Queue a payload for transmission; returns the send token. Fragmenting
  /// messages into MTU-sized packets is the GM layer's job.
  std::uint64_t post_send(std::uint16_t dst, packet::Bytes payload,
                          packet::PacketType type = packet::PacketType::kGm);

  const NicStats& stats() const { return stats_; }
  const McpOptions& options() const { return options_; }
  const LanaiTiming& timing() const { return timing_; }
  std::uint16_t host() const { return host_; }
  const McpCpu& cpu() const { return cpu_; }
  /// Virtual lane this NIC's injections start on (0 unless a multi-lane
  /// deadlock engine is installed on the network).
  std::uint8_t injection_lane() const { return network_.injection_lane(host_); }

  /// The network's flight recorder (nullptr when capture is off); the GM
  /// layer records its message-level events through this.
  flight::FlightRecorder* flight_recorder() const {
    return network_.flight_recorder();
  }

  // --- live occupancy, read by the telemetry sampler --------------------
  /// ITB packets waiting for the send DMA (the "pending" flag queue).
  std::size_t itb_pending_depth() const { return itb_pending_.size(); }
  /// Receive buffers currently reserved.
  int rx_buffers_in_use() const { return rx_reserved_; }
  bool send_dma_busy() const { return send_dma_busy_; }
  /// Cumulative time the send DMA was busy / at least one receive buffer
  /// was held, including the currently open window. Rate-sampling either
  /// one yields a busy fraction.
  sim::Duration send_dma_busy_ns() const;
  sim::Duration rx_busy_ns() const;
  /// Every receive buffer reserved — the condition that closes the host
  /// gate in backpressure mode. The liveness diagnoser reads this to place
  /// buffer nodes in the wait-for graph.
  bool rx_full() const { return rx_reserved_ >= options_.recv_buffers; }

  /// Watchdog escalation (§4 cure applied at runtime): flip this NIC from
  /// backpressure to the drop-on-full circular pool and reopen the host
  /// gate, so wedged upstream worms drain — arrivals that find no free
  /// buffer are accepted and discarded, and GM retransmission recovers
  /// them. Returns true when the mode actually changed.
  bool enable_drop_when_full();

  /// Publish the NicStats counters plus MCP busy time under component
  /// "nic" with a host label (callback-backed).
  void register_metrics(telemetry::MetricRegistry& registry) const;

  // --- net::HostHooks ---------------------------------------------------
  void on_rx_head(sim::Time t, net::TxHandle h) override;
  void on_rx_early_header(sim::Time t, net::TxHandle h,
                          const packet::Bytes& head4) override;
  void on_rx_complete(sim::Time t, net::WirePacket packet) override;
  void on_tx_started(sim::Time t, net::TxHandle h) override;
  void on_tx_complete(sim::Time t, net::TxHandle h) override;
  void on_tx_dropped(sim::Time t, net::TxHandle h) override;
  void on_rx_aborted(sim::Time t, net::TxHandle h) override;

 private:
  /// One host send in the SDMA/SRAM pipeline. Lives in `send_pool_` so the
  /// MCP closures capture a 16-byte {this, handle} instead of the payload
  /// vector, and the payload buffer is recycled warm across sends.
  struct PostedSend {
    std::uint64_t token = 0;
    std::uint16_t dst = 0;
    packet::PacketType type = packet::PacketType::kGm;
    /// Route-table epoch the send was admitted under. A send that reaches
    /// the head of the SRAM pipeline with no route AND a stale epoch is
    /// re-sourced (one retry per epoch) instead of dropped — the table was
    /// hot-swapped underneath it, and the new table may route differently.
    std::uint64_t epoch = 0;
    packet::Bytes payload;
  };

  /// In-flight transmission bookkeeping: one record per handle until its
  /// tx completes or drops. The population is bounded by the SRAM send
  /// buffers plus re-injections in flight (a handful), so a flat vector
  /// with linear lookup and swap-remove beats a hash map.
  struct TxRec {
    net::TxHandle handle = 0;
    std::uint64_t token = 0;        // host send: completion token
    net::TxHandle reinject_of = 0;  // re-injection: the original reception
    bool is_reinject = false;
  };

  /// Receive-side special states. Normal receptions never get a record;
  /// one is created when a packet is doomed (drop_when_full) or claimed as
  /// ITB, and erased when its buffer is released. Bounded by recv_buffers
  /// plus the ITB pending queue, so flat + swap-remove again.
  struct RxRec {
    net::TxHandle handle = 0;
    bool doomed = false;    // arrived with no free buffer; discard at tail
    bool claimed = false;   // Early Recv identified an ITB packet
    bool injected = false;  // re-injection has started (owns the rx buffer)
    bool stashed = false;   // completed before re-injection; bytes kept
    net::WirePacket stash;
  };

  // SDMA: pull host sends into SRAM send buffers.
  void sdma_pump();
  // Send: stamp routes and inject ready buffers.
  void send_pump();
  // Busy-time accounting around the send DMA flag / rx buffer count.
  void set_send_dma(bool busy);
  // ITB: forward an in-transit packet (from peek or a stashed completion).
  void forward_itb(net::TxHandle h);
  void start_reinjection(net::TxHandle h);
  void free_recv_buffer();

  TxRec* find_tx(net::TxHandle h);
  void erase_tx(TxRec* rec);
  RxRec* find_rx(net::TxHandle h);
  /// Find-or-create (fresh handles get a zeroed record).
  RxRec& rx_rec(net::TxHandle h);
  void erase_rx(RxRec* rec);

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  net::Network& network_;
  host::PciBus& pci_;
  std::uint16_t host_;
  LanaiTiming timing_;
  McpOptions options_;
  McpCpu cpu_;
  NicClient* client_ = nullptr;
  NicStats stats_;

  std::vector<std::vector<packet::Route>> routes_;  // by destination host

  // Send path.
  sim::SlabPool<PostedSend, 64> send_pool_;
  sim::FlatFifo<sim::PoolHandle> host_queue_;      // waiting for SDMA
  sim::FlatFifo<sim::PoolHandle> ready_buffers_;   // SRAM, ready to send
  int sdma_in_flight_ = 0;                  // host DMA transfers running
  bool send_dma_busy_ = false;
  sim::Time send_dma_since_ = 0;            // busy-window start
  sim::Duration send_dma_busy_ns_ = 0;      // closed busy windows
  std::uint64_t next_token_ = 1;
  std::uint64_t route_epoch_ = 0;           // epoch of the loaded table
  std::vector<TxRec> tx_live_;              // in-flight transmissions

  // Receive path.
  int rx_reserved_ = 0;                     // buffers in use
  sim::Time rx_busy_since_ = 0;             // occupancy-window start
  sim::Duration rx_busy_ns_ = 0;            // closed occupancy windows
  std::vector<RxRec> rx_recs_;              // doomed / ITB receptions
  sim::FlatFifo<net::TxHandle> itb_pending_;  // waiting for send DMA
};

}  // namespace itb::nic
