// LANai processor model.
//
// The LANai is a 32-bit RISC running the MCP out of NIC SRAM (paper Fig. 2).
// We model it as a sequential processor executing prioritised jobs, each
// billed an instruction-path cost in LANai cycles; the paper's overhead
// numbers (125 ns/packet for the ITB type probe, 1.3 us per ITB forward) are
// exactly such instruction-path costs, so modelling at this granularity is
// what lets the reproduction measure them.
//
// Jobs do not preempt each other: the MCP's event handler only regains
// control between state-machine steps, so a high-priority event posted while
// another runs waits for it to finish — the "dispatching cycle delay" that
// the Recv-side re-injection shortcut avoids (Fig. 4, dashed lines).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "itb/sim/event_queue.hpp"
#include "itb/sim/time.hpp"

namespace itb::nic {

/// LANai clock and MCP instruction-path costs (in LANai cycles).
/// Defaults model a 33 MHz LANai-4 class part (30 ns/cycle) and are
/// calibrated so the bench binaries land on the paper's measurements.
struct LanaiTiming {
  sim::Duration cycle_ns = 30;

  // --- costs shared by both MCP variants -------------------------------
  int dispatch = 4;          // event-handler dispatch to a state machine
  int sdma_process = 30;     // fetch host send descriptor, program host DMA
  int send_process = 36;     // stamp route from table, program send DMA
  int send_dma_start = 12;   // send DMA spin-up before the first byte moves
  int recv_process = 40;     // classify packet, program RDMA to host
  int rdma_complete = 16;    // completion handling, recycle receive buffer
  int send_complete = 12;    // send-DMA completion, free the send buffer

  // --- costs only present in the ITB-capable MCP -----------------------
  int itb_recv_extra = 4;    // extra type-probe instructions in the normal
                             // receive path (the Fig. 7 ~125 ns overhead)
  int early_recv_check = 2;  // Early Recv event: is the packet an ITB one?
  int itb_program_send = 26; // decode ITB header, strip tag, program the
                             // re-injection DMA (Fig. 8's dominant term)

  sim::Duration cycles(int n) const { return n * cycle_ns; }
};

/// Priorities for MCP jobs; lower value runs first. Mirrors the paper's
/// "highest priority pending event" dispatch rule with Early Recv added as
/// a new high-priority event (§4).
enum class McpPriority : int {
  kEarlyRecv = 0,
  kItbPendingSend = 1,
  kRecvComplete = 2,
  kSendComplete = 3,
  kRdmaComplete = 4,
  kSdma = 5,
  kHostRequest = 6,
};

/// Sequential prioritised executor for MCP jobs.
class McpCpu {
 public:
  McpCpu(sim::EventQueue& queue, const LanaiTiming& timing)
      : queue_(queue), timing_(timing) {}

  /// Post a job: when the CPU reaches it, it is busy for `cycles` plus the
  /// dispatch cost, then `fn` runs (at the end of the busy window).
  /// `skip_dispatch` models a state machine continuing straight into more
  /// work without returning to the event handler (the Recv-side
  /// re-injection shortcut of Fig. 4).
  void post(McpPriority priority, int cycles, std::function<void()> fn,
            bool skip_dispatch = false);

  bool busy() const { return busy_; }

  /// Total cycles the CPU has executed (for utilisation reporting).
  std::int64_t busy_ns() const { return busy_ns_; }

  /// Jobs dispatched so far (telemetry: MCP event-handler activity).
  std::uint64_t jobs_executed() const { return jobs_executed_; }

 private:
  struct Job {
    int priority;
    std::uint64_t seq;
    int cycles;
    bool skip_dispatch;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Job& a, const Job& b) const {
      return a.priority > b.priority ||
             (a.priority == b.priority && a.seq > b.seq);
    }
  };

  void pump();

  sim::EventQueue& queue_;
  LanaiTiming timing_;
  std::priority_queue<Job, std::vector<Job>, Later> jobs_;
  bool busy_ = false;
  std::uint64_t next_seq_ = 0;
  std::int64_t busy_ns_ = 0;
  std::uint64_t jobs_executed_ = 0;
};

}  // namespace itb::nic
