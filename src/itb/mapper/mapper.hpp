// The Myrinet mapper (§3-4).
//
// GM's mapper explores the fabric with probe packets, assembles a topology
// database, computes a route between every pair of hosts and downloads each
// host's row into its NIC SRAM. The paper modifies the route-computation
// step to emit ITB routes (Fig. 3b format); everything else is stock.
//
// We reproduce the algorithmic substrate: a depth-first probe walk that
// discovers every switch, port and host (counting probes the way the real
// mapper pays packets), followed by up*/down* orientation and route-table
// construction under either policy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "itb/routing/table.hpp"
#include "itb/topo/topology.hpp"

namespace itb::mapper {

/// Outcome of the probe walk.
struct DiscoveryReport {
  /// The reconstructed fabric. Switch indices are in discovery order;
  /// host indices are the true GM host ids (learned from probe replies).
  topo::Topology discovered;

  /// discovered switch index -> true switch index (for tests; the real
  /// mapper never knows the "true" numbering).
  std::vector<std::uint16_t> switch_of;

  /// Probe packets spent: one per port scan, plus one reply per answer.
  std::uint64_t probes_sent = 0;

  /// Heap allocations made by the probe walk itself (discovery-report
  /// assembly excluded). The walk pre-sizes everything from the fabric, so
  /// this must stay 0 whatever the fabric size — the scale suite asserts it
  /// through the sim::alloc_hook oracle. Always 0 when allocation counting
  /// is unavailable (sanitizer builds).
  std::uint64_t walk_heap_allocs = 0;

  std::size_t switches_found() const { return discovered.switch_count(); }
  std::size_t hosts_found() const { return discovered.host_count(); }
};

/// Walk the fabric starting from `root_host`'s uplink switch. The walk is
/// deterministic: ports are scanned in ascending order, new switches are
/// visited depth-first (an explicit-stack DFS — fabric depth costs heap
/// bytes, never native stack frames, so an 8192-switch chain discovers
/// fine). Unattached ports cost one (unanswered) probe each.
/// With `allow_partial` the walk tolerates unreachable hosts (remapping a
/// fabric degraded by fault windows); they stay unattached in `discovered`.
/// Otherwise unreachable hosts are a mapping error and throw.
DiscoveryReport discover(const topo::Topology& fabric, std::uint16_t root_host,
                         bool allow_partial = false);

/// The mapper's live view of which switches and hosts its probes can reach
/// under a link-usability mask, in TRUE fabric coordinates (no discovery
/// renumbering — the incremental recovery engine keeps ids stable across
/// fault epochs so route-table patches and reverse indexes stay valid).
struct ReachabilityMap {
  std::vector<char> switch_up;  // true switch id -> reachable from the root
  std::vector<char> host_up;    // host id -> attached via a usable uplink
  std::uint16_t root_switch = 0xFFFF;
  /// Probe packets this pass charged (one per port of every switch scanned).
  std::uint64_t probes_sent = 0;
  /// What a from-scratch walk over the same reachable region would pay —
  /// the scoped/full ratio the recovery bench reports.
  std::uint64_t full_walk_probes = 0;
};

/// Full reachability flood from `root_host`'s uplink over links with
/// `link_up[l]` true (empty mask = all up). Charges a full walk's probes.
/// Throws if the root host is out of range, unattached, or masked off.
ReachabilityMap discover_reachability(const topo::Topology& fabric,
                                      std::uint16_t root_host,
                                      const std::vector<char>& link_up);

/// Scoped re-probe after a fault/restore round: the mapper already holds
/// `prev` and only `changed_links` flipped usability, so it re-scans just
/// (a) reachable switches incident to a changed link (the fault boundary)
/// and (b) switches newly reachable since `prev` (the subtree a restored
/// link exposes). The returned map is exactly what discover_reachability
/// would produce; only the probe accounting differs — probes_sent counts
/// the scoped scan, full_walk_probes the walk it replaced. Falls back to
/// full-walk accounting when `prev` is from a different root or fabric.
ReachabilityMap rediscover_scoped(const topo::Topology& fabric,
                                  std::uint16_t root_host,
                                  const std::vector<char>& link_up,
                                  const ReachabilityMap& prev,
                                  const std::vector<topo::LinkId>& changed_links);

/// Full mapper run: discover, orient (root = first discovered switch),
/// compute the all-pairs table under `policy`. The returned table's routes
/// are valid on the real fabric because the discovered graph is
/// port-faithful. `route_jobs` fans the per-source route solves across
/// that many threads (0 = hardware concurrency); the table is bit-identical
/// for any value, so it defaults to 1 — callers inside an already-parallel
/// sweep stay single-threaded, the scale bench opts in.
struct MapResult {
  DiscoveryReport report;
  routing::RouteTable table;
};
MapResult run(const topo::Topology& fabric, routing::Policy policy,
              std::uint16_t root_host = 0,
              routing::ItbHostSelection selection =
                  routing::ItbHostSelection::kLowestIndex,
              bool allow_partial = false, unsigned route_jobs = 1,
              unsigned vc_lanes = 2);

}  // namespace itb::mapper
