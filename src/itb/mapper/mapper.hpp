// The Myrinet mapper (§3-4).
//
// GM's mapper explores the fabric with probe packets, assembles a topology
// database, computes a route between every pair of hosts and downloads each
// host's row into its NIC SRAM. The paper modifies the route-computation
// step to emit ITB routes (Fig. 3b format); everything else is stock.
//
// We reproduce the algorithmic substrate: a depth-first probe walk that
// discovers every switch, port and host (counting probes the way the real
// mapper pays packets), followed by up*/down* orientation and route-table
// construction under either policy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "itb/routing/table.hpp"
#include "itb/topo/topology.hpp"

namespace itb::mapper {

/// Outcome of the probe walk.
struct DiscoveryReport {
  /// The reconstructed fabric. Switch indices are in discovery order;
  /// host indices are the true GM host ids (learned from probe replies).
  topo::Topology discovered;

  /// discovered switch index -> true switch index (for tests; the real
  /// mapper never knows the "true" numbering).
  std::vector<std::uint16_t> switch_of;

  /// Probe packets spent: one per port scan, plus one reply per answer.
  std::uint64_t probes_sent = 0;

  /// Heap allocations made by the probe walk itself (discovery-report
  /// assembly excluded). The walk pre-sizes everything from the fabric, so
  /// this must stay 0 whatever the fabric size — the scale suite asserts it
  /// through the sim::alloc_hook oracle. Always 0 when allocation counting
  /// is unavailable (sanitizer builds).
  std::uint64_t walk_heap_allocs = 0;

  std::size_t switches_found() const { return discovered.switch_count(); }
  std::size_t hosts_found() const { return discovered.host_count(); }
};

/// Walk the fabric starting from `root_host`'s uplink switch. The walk is
/// deterministic: ports are scanned in ascending order, new switches are
/// visited depth-first (an explicit-stack DFS — fabric depth costs heap
/// bytes, never native stack frames, so an 8192-switch chain discovers
/// fine). Unattached ports cost one (unanswered) probe each.
/// With `allow_partial` the walk tolerates unreachable hosts (remapping a
/// fabric degraded by fault windows); they stay unattached in `discovered`.
/// Otherwise unreachable hosts are a mapping error and throw.
DiscoveryReport discover(const topo::Topology& fabric, std::uint16_t root_host,
                         bool allow_partial = false);

/// Full mapper run: discover, orient (root = first discovered switch),
/// compute the all-pairs table under `policy`. The returned table's routes
/// are valid on the real fabric because the discovered graph is
/// port-faithful. `route_jobs` fans the per-source route solves across
/// that many threads (0 = hardware concurrency); the table is bit-identical
/// for any value, so it defaults to 1 — callers inside an already-parallel
/// sweep stay single-threaded, the scale bench opts in.
struct MapResult {
  DiscoveryReport report;
  routing::RouteTable table;
};
MapResult run(const topo::Topology& fabric, routing::Policy policy,
              std::uint16_t root_host = 0,
              routing::ItbHostSelection selection =
                  routing::ItbHostSelection::kLowestIndex,
              bool allow_partial = false, unsigned route_jobs = 1);

}  // namespace itb::mapper
