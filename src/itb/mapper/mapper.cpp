#include "itb/mapper/mapper.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "itb/routing/updown.hpp"

namespace itb::mapper {
namespace {

struct WalkState {
  const topo::Topology& fabric;
  std::vector<std::uint16_t> disc_of_true;  // true switch -> disc index
  std::vector<std::uint16_t> true_of_disc;  // disc index -> true switch
  std::set<topo::LinkId> seen_links;
  std::uint64_t probes = 0;

  struct LinkRec {
    topo::Endpoint a;  // disc-indexed endpoints
    topo::Endpoint b;
    topo::PortKind kind;
  };
  std::vector<LinkRec> links;

  struct HostRec {
    std::uint16_t host;      // true GM host id (from the probe reply)
    std::uint16_t disc_sw;
    std::uint8_t port;
    topo::PortKind kind;
  };
  std::vector<HostRec> hosts;

  explicit WalkState(const topo::Topology& f)
      : fabric(f), disc_of_true(f.switch_count(), 0xFFFF) {}

  std::uint16_t admit(std::uint16_t true_sw) {
    if (disc_of_true[true_sw] != 0xFFFF) return disc_of_true[true_sw];
    const auto disc = static_cast<std::uint16_t>(true_of_disc.size());
    disc_of_true[true_sw] = disc;
    true_of_disc.push_back(true_sw);
    return disc;
  }

  void walk(std::uint16_t true_sw) {
    const auto disc = disc_of_true[true_sw];
    const auto ports = fabric.switch_spec(true_sw).ports;
    for (std::uint8_t p = 0; p < ports; ++p) {
      ++probes;  // one probe out of every port, answered or not
      auto peer = fabric.peer(topo::switch_id(true_sw), p);
      if (!peer) continue;  // silence: nothing plugged in
      const auto lid = *fabric.link_at(topo::switch_id(true_sw), p);
      if (seen_links.contains(lid)) continue;  // scanned from the far side
      seen_links.insert(lid);
      const auto kind = fabric.link(lid).kind;

      if (peer->node.kind == topo::NodeKind::kHost) {
        hosts.push_back(HostRec{peer->node.index, disc, p, kind});
        continue;
      }
      const bool is_new = disc_of_true[peer->node.index] == 0xFFFF;
      const auto peer_disc = admit(peer->node.index);
      links.push_back(LinkRec{{topo::switch_id(disc), p},
                              {topo::switch_id(peer_disc), peer->port},
                              kind});
      if (is_new) walk(peer->node.index);
    }
  }
};

}  // namespace

DiscoveryReport discover(const topo::Topology& fabric, std::uint16_t root_host,
                         bool allow_partial) {
  if (root_host >= fabric.host_count())
    throw std::invalid_argument("root host out of range");
  if (!fabric.host_attached(root_host))
    throw std::invalid_argument("root host is unattached");
  WalkState state(fabric);
  const auto start = fabric.host_uplink(root_host).node.index;
  state.admit(start);
  state.walk(start);

  DiscoveryReport report;
  report.probes_sent = state.probes;
  report.switch_of = state.true_of_disc;

  // Rebuild the fabric from the walk records: switches in discovery order,
  // hosts at their true GM ids.
  for (std::uint16_t d = 0; d < state.true_of_disc.size(); ++d) {
    report.discovered.add_switch(
        fabric.switch_spec(state.true_of_disc[d]).ports,
        "disc" + std::to_string(d));
  }
  for (std::uint16_t h = 0; h < fabric.host_count(); ++h)
    report.discovered.add_host(fabric.host_spec(h).name);
  for (const auto& l : state.links)
    report.discovered.connect(l.a, l.b, l.kind);
  for (const auto& h : state.hosts)
    report.discovered.attach_host(h.host, h.disc_sw, h.port, h.kind);

  if (!allow_partial && state.hosts.size() != fabric.host_count())
    throw std::logic_error("mapper: fabric has unreachable hosts");
  return report;
}

MapResult run(const topo::Topology& fabric, routing::Policy policy,
              std::uint16_t root_host, routing::ItbHostSelection selection,
              bool allow_partial) {
  DiscoveryReport report = discover(fabric, root_host, allow_partial);
  // The mapper roots the spanning tree at its first discovered switch —
  // deterministic from its own point of view.
  routing::UpDown updown(report.discovered, 0);
  routing::Router router(updown, selection);
  routing::RouteTable table(router, policy);
  return MapResult{std::move(report), std::move(table)};
}

}  // namespace itb::mapper
