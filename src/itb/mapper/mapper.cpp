#include "itb/mapper/mapper.hpp"

#include <algorithm>
#include <stdexcept>

#include "itb/routing/updown.hpp"
#include "itb/sim/alloc_hook.hpp"

namespace itb::mapper {
namespace {

/// Probe-walk state. The walk is an explicit-stack depth-first traversal:
/// the recursive formulation it replaces overflowed the thread stack on
/// multi-thousand-switch chains (one native frame per newly discovered
/// switch), while a Frame here is 8 bytes in a flat vector. Port-scan order
/// and therefore probe counts, discovery order and the rebuilt fabric are
/// identical to the recursive walk — the regression suite checks that
/// against a reference implementation.
///
/// Every container is pre-sized from the fabric being walked, so the walk
/// itself performs no heap allocation per probe (seen_links is a flat
/// bitmap keyed by LinkId, not a node-per-insert std::set) — discovery of a
/// thousand-switch fabric stays allocation-free after setup, which
/// DiscoveryReport::walk_heap_allocs lets tests assert.
struct WalkState {
  const topo::Topology& fabric;
  std::vector<std::uint16_t> disc_of_true;  // true switch -> disc index
  std::vector<std::uint16_t> true_of_disc;  // disc index -> true switch
  std::vector<bool> seen_links;             // keyed by true LinkId
  std::uint64_t probes = 0;

  struct LinkRec {
    topo::Endpoint a;  // disc-indexed endpoints
    topo::Endpoint b;
    topo::PortKind kind;
  };
  std::vector<LinkRec> links;

  struct HostRec {
    std::uint16_t host;      // true GM host id (from the probe reply)
    std::uint16_t disc_sw;
    std::uint8_t port;
    topo::PortKind kind;
  };
  std::vector<HostRec> hosts;

  /// One in-progress switch scan: which switch, and the next port to probe.
  struct Frame {
    std::uint16_t true_sw;
    std::uint16_t disc;
    std::uint8_t next_port;
    std::uint8_t ports;
  };
  std::vector<Frame> stack;

  explicit WalkState(const topo::Topology& f)
      : fabric(f),
        disc_of_true(f.switch_count(), 0xFFFF),
        seen_links(f.link_count(), false) {
    true_of_disc.reserve(f.switch_count());
    links.reserve(f.link_count());
    hosts.reserve(f.host_count());
    stack.reserve(f.switch_count());
  }

  std::uint16_t admit(std::uint16_t true_sw) {
    if (disc_of_true[true_sw] != 0xFFFF) return disc_of_true[true_sw];
    if (true_of_disc.size() >= 0xFFFFu)
      throw std::invalid_argument(
          "mapper: discovery index space exhausted (65535 switches max; "
          "0xFFFF is the unvisited sentinel)");
    const auto disc = static_cast<std::uint16_t>(true_of_disc.size());
    disc_of_true[true_sw] = disc;
    true_of_disc.push_back(true_sw);
    return disc;
  }

  /// Depth-first walk from `start_sw` (already admitted). Each iteration
  /// probes one port of the top-of-stack switch; discovering a new switch
  /// pushes a frame, which reproduces the recursive visit order exactly
  /// (the parent's remaining ports resume after the child's scan finishes).
  void walk(std::uint16_t start_sw) {
    stack.push_back(Frame{start_sw, disc_of_true[start_sw], 0,
                          fabric.switch_spec(start_sw).ports});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_port == f.ports) {
        stack.pop_back();
        continue;
      }
      const auto true_sw = f.true_sw;
      const auto disc = f.disc;
      const std::uint8_t p = f.next_port++;
      ++probes;  // one probe out of every port, answered or not
      auto peer = fabric.peer(topo::switch_id(true_sw), p);
      if (!peer) continue;  // silence: nothing plugged in
      const auto lid = *fabric.link_at(topo::switch_id(true_sw), p);
      if (seen_links[lid]) continue;  // scanned from the far side
      seen_links[lid] = true;
      const auto kind = fabric.link(lid).kind;

      if (peer->node.kind == topo::NodeKind::kHost) {
        hosts.push_back(HostRec{peer->node.index, disc, p, kind});
        continue;
      }
      const bool is_new = disc_of_true[peer->node.index] == 0xFFFF;
      const auto peer_disc = admit(peer->node.index);
      links.push_back(LinkRec{{topo::switch_id(disc), p},
                              {topo::switch_id(peer_disc), peer->port},
                              kind});
      if (is_new)  // invalidates `f`; the loop re-reads back() next round
        stack.push_back(Frame{peer->node.index, peer_disc, 0,
                              fabric.switch_spec(peer->node.index).ports});
    }
  }
};

}  // namespace

DiscoveryReport discover(const topo::Topology& fabric, std::uint16_t root_host,
                         bool allow_partial) {
  if (root_host >= fabric.host_count())
    throw std::invalid_argument("root host out of range");
  if (!fabric.host_attached(root_host))
    throw std::invalid_argument("root host is unattached");
  WalkState state(fabric);
  const auto start = fabric.host_uplink(root_host).node.index;
  state.admit(start);
  const auto allocs_before = sim::total_allocations();
  state.walk(start);
  const auto walk_allocs =
      sim::alloc_counting_available()
          ? sim::total_allocations() - allocs_before
          : 0;

  DiscoveryReport report;
  report.probes_sent = state.probes;
  report.walk_heap_allocs = walk_allocs;
  report.switch_of = state.true_of_disc;

  // Rebuild the fabric from the walk records: switches in discovery order,
  // hosts at their true GM ids.
  for (std::uint16_t d = 0; d < state.true_of_disc.size(); ++d) {
    report.discovered.add_switch(
        fabric.switch_spec(state.true_of_disc[d]).ports,
        "disc" + std::to_string(d));
  }
  for (std::uint16_t h = 0; h < fabric.host_count(); ++h)
    report.discovered.add_host(fabric.host_spec(h).name);
  for (const auto& l : state.links)
    report.discovered.connect(l.a, l.b, l.kind);
  for (const auto& h : state.hosts)
    report.discovered.attach_host(h.host, h.disc_sw, h.port, h.kind);

  if (!allow_partial && state.hosts.size() != fabric.host_count())
    throw std::logic_error("mapper: fabric has unreachable hosts");
  return report;
}

namespace {

/// Flood fill over switches through usable trunk links, explicit stack,
/// everything pre-sized — the in-memory model behind both reachability
/// entry points.
std::vector<char> flood_switches(const topo::Topology& fabric,
                                 std::uint16_t root_switch,
                                 const std::vector<char>& link_up) {
  const auto usable = [&](topo::LinkId l) {
    return link_up.empty() || link_up[l];
  };
  std::vector<char> up(fabric.switch_count(), 0);
  std::vector<std::uint16_t> stack;
  stack.reserve(fabric.switch_count());
  up[root_switch] = 1;
  stack.push_back(root_switch);
  while (!stack.empty()) {
    const auto sw = stack.back();
    stack.pop_back();
    for (auto lid : fabric.links_of(topo::switch_id(sw))) {
      if (!usable(lid)) continue;
      const auto& l = fabric.link(lid);
      if (l.a.node.kind != topo::NodeKind::kSwitch ||
          l.b.node.kind != topo::NodeKind::kSwitch || l.a.node == l.b.node)
        continue;
      const std::uint16_t other =
          l.a.node.index == sw ? l.b.node.index : l.a.node.index;
      if (up[other]) continue;
      up[other] = 1;
      stack.push_back(other);
    }
  }
  return up;
}

ReachabilityMap assemble_map(const topo::Topology& fabric,
                             std::uint16_t root_host,
                             const std::vector<char>& link_up) {
  if (root_host >= fabric.host_count())
    throw std::invalid_argument("root host out of range");
  if (!fabric.host_attached(root_host))
    throw std::invalid_argument("root host is unattached");
  const auto uplink = *fabric.link_at(topo::host_id(root_host), 0);
  if (!link_up.empty() && !link_up[uplink])
    throw std::invalid_argument("root host uplink is masked down");

  ReachabilityMap map;
  map.root_switch = fabric.host_uplink(root_host).node.index;
  map.switch_up = flood_switches(fabric, map.root_switch, link_up);
  map.host_up.assign(fabric.host_count(), 0);
  for (std::uint16_t h = 0; h < fabric.host_count(); ++h) {
    if (!fabric.host_attached(h)) continue;
    const auto l = *fabric.link_at(topo::host_id(h), 0);
    if (!link_up.empty() && !link_up[l]) continue;
    map.host_up[h] = map.switch_up[fabric.host_uplink(h).node.index];
  }
  for (std::uint16_t sw = 0; sw < fabric.switch_count(); ++sw)
    if (map.switch_up[sw]) map.full_walk_probes += fabric.switch_spec(sw).ports;
  return map;
}

}  // namespace

ReachabilityMap discover_reachability(const topo::Topology& fabric,
                                      std::uint16_t root_host,
                                      const std::vector<char>& link_up) {
  auto map = assemble_map(fabric, root_host, link_up);
  map.probes_sent = map.full_walk_probes;  // a cold walk scans everything
  return map;
}

ReachabilityMap rediscover_scoped(
    const topo::Topology& fabric, std::uint16_t root_host,
    const std::vector<char>& link_up, const ReachabilityMap& prev,
    const std::vector<topo::LinkId>& changed_links) {
  auto map = assemble_map(fabric, root_host, link_up);
  if (prev.switch_up.size() != map.switch_up.size() ||
      prev.root_switch != map.root_switch) {
    map.probes_sent = map.full_walk_probes;  // nothing trustworthy to reuse
    return map;
  }
  // Re-scan only the fault boundary (reachable switches touching a changed
  // link) and whatever a restored link newly exposed; everything else is
  // vouched for by the previous walk.
  std::vector<char> rescan(fabric.switch_count(), 0);
  for (auto lid : changed_links) {
    const auto& l = fabric.link(lid);
    if (l.a.node.kind == topo::NodeKind::kSwitch) rescan[l.a.node.index] = 1;
    if (l.b.node.kind == topo::NodeKind::kSwitch) rescan[l.b.node.index] = 1;
  }
  for (std::uint16_t sw = 0; sw < fabric.switch_count(); ++sw) {
    if (!map.switch_up[sw]) continue;
    if (rescan[sw] || !prev.switch_up[sw])
      map.probes_sent += fabric.switch_spec(sw).ports;
  }
  return map;
}

MapResult run(const topo::Topology& fabric, routing::Policy policy,
              std::uint16_t root_host, routing::ItbHostSelection selection,
              bool allow_partial, unsigned route_jobs, unsigned vc_lanes) {
  DiscoveryReport report = discover(fabric, root_host, allow_partial);
  // The mapper roots the spanning tree at its first discovered switch —
  // deterministic from its own point of view.
  routing::UpDown updown(report.discovered, 0);
  routing::Router router(updown, selection);
  routing::RouteTable table(router, policy, route_jobs, vc_lanes);
  return MapResult{std::move(report), std::move(table)};
}

}  // namespace itb::mapper
