// Liveness watchdog: notice a wedged run and heal it without restarting.
//
// DESIGN.md §8: the faithful 2-buffer stop-when-full MCP wedges on loaded
// ITB networks through a cycle of buffer waits the static CDG checker
// cannot see. The paper proposes the §4 drop-on-full circular pool as the
// cure but never *detects* the wedge at runtime; a production-scale sweep
// must not hang forever instead.
//
// The watchdog is an event-driven progress sentinel. Every check period it
// compares a progress fingerprint — network delivered/dropped/lost plus
// each NIC's receive-side counters, deliberately EXCLUDING injections,
// because GM happily retransmits into a wedged fabric and would mask the
// stall. No change for `stall_threshold` while worms are in flight is a
// stall verdict, handed to the WaitGraphDiagnoser. On a confirmed deadlock
// the escalation policy acts in two stages:
//   1. switch the wedged in-transit NICs (the buffer nodes on the cycle)
//      to §4 drop-on-full pool mode — GM retransmission recovers drops;
//   2. after a grace period still without progress, force-eject the oldest
//      blocked worm, charged to the ledger as health.forced_ejections.
// Fault blackholes (traffic parked behind a NIC-stall window) and plain
// congestion are diagnosed but never acted on: the former heals when the
// window closes, the latter needs no healing.
//
// The watchdog parks itself whenever the network is idle so a drain-style
// EventQueue::run() still returns; Network's activity hook re-arms it on
// the next injection. Progress epochs (global and per NIC) and all verdict
// counters are published as `health.*` telemetry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "itb/health/diagnosis.hpp"
#include "itb/net/network.hpp"
#include "itb/nic/nic.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/export.hpp"
#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::health {

struct WatchdogConfig {
  bool enabled = false;
  sim::Duration check_period = 100 * sim::kUs;
  /// No fingerprint change for this long with worms in flight = stall.
  sim::Duration stall_threshold = 500 * sim::kUs;
  /// Escalation stage 1: switch wedged in-transit NICs to drop-on-full.
  bool switch_to_pool = true;
  /// Escalation stage 2: force-eject the oldest blocked worm.
  bool force_eject = true;
  /// Wait between escalation stages (and between repeated ejections).
  sim::Duration escalation_grace = 200 * sim::kUs;
};

/// Counters behind the `health.*` metrics.
struct HealthStats {
  std::uint64_t checks = 0;
  std::uint64_t stalls_detected = 0;
  std::uint64_t buffer_deadlocks = 0;
  std::uint64_t channel_deadlocks = 0;
  std::uint64_t fault_blackholes = 0;
  std::uint64_t congestion_verdicts = 0;
  std::uint64_t pool_mode_switches = 0;  // NICs flipped to drop-on-full
  std::uint64_t forced_ejections = 0;    // worms killed to break a wedge
  std::uint64_t recoveries = 0;          // stall episodes that ended
};

/// One run's liveness outcome, aggregatable across sweep points.
struct LivenessVerdict {
  std::uint64_t checks = 0;
  std::uint64_t stalls = 0;
  std::uint64_t buffer_deadlocks = 0;
  std::uint64_t channel_deadlocks = 0;
  std::uint64_t fault_blackholes = 0;
  std::uint64_t congestion_verdicts = 0;
  std::uint64_t pool_mode_switches = 0;
  std::uint64_t forced_ejections = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t unrecovered = 0;  // runs that ended still stalled
  std::string first_cycle;        // first diagnosed wait cycle, if any

  bool clean() const { return stalls == 0 && unrecovered == 0; }
  void merge(const LivenessVerdict& o);
};

class LivenessWatchdog {
 public:
  /// `nics[h]` serves host h (null entries allowed). Installs itself as the
  /// network's activity hook; starts parked until the first injection.
  LivenessWatchdog(sim::EventQueue& queue, sim::Tracer& tracer,
                   net::Network& network, std::vector<nic::Nic*> nics,
                   const WatchdogConfig& config);
  ~LivenessWatchdog();

  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  const WatchdogConfig& config() const { return config_; }
  const HealthStats& stats() const { return stats_; }
  const std::vector<Diagnosis>& diagnoses() const { return diagnoses_; }
  /// Detection-to-first-progress latency of every finished stall episode.
  const telemetry::LatencyHistogram& recovery_latency() const {
    return recovery_latency_;
  }

  /// Global progress epoch: bumps whenever the fingerprint advances.
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t nic_epoch(std::uint16_t host) const {
    return nic_epochs_.at(host);
  }

  /// True while a stall episode is open (no progress since detection).
  bool stalled() const { return in_stall_; }

  LivenessVerdict verdict() const;

  /// Activity hook target: re-arm the tick after parking. Called by the
  /// network on every injection; safe to call any time.
  void poke();

  /// Publish HealthStats + progress epochs under component "health".
  void register_metrics(telemetry::MetricRegistry& registry) const;

 private:
  using Fingerprint = std::array<std::uint64_t, 4>;

  void arm();
  void tick();
  void update_epochs();
  void handle_stall(sim::Time now);
  bool try_escalate(sim::Time now);
  void finish_episode(sim::Time now);
  Fingerprint global_fingerprint() const;
  std::uint64_t nic_fingerprint(std::size_t h) const;

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  net::Network& network_;
  std::vector<nic::Nic*> nics_;
  WatchdogConfig config_;
  WaitGraphDiagnoser diagnoser_;

  HealthStats stats_;
  std::vector<Diagnosis> diagnoses_;
  telemetry::LatencyHistogram recovery_latency_;

  Fingerprint last_fp_{};
  std::vector<std::uint64_t> nic_fps_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> nic_epochs_;
  sim::Time last_progress_ = 0;

  bool parked_ = true;
  sim::EventId tick_event_;
  bool in_stall_ = false;
  sim::Time stall_detected_ = 0;
  sim::Time last_action_ = 0;
  int stage_ = 0;  // 0 = none, 1 = pool switch done, 2 = ejecting
  StallKind current_kind_ = StallKind::kCongestion;
  std::vector<std::uint16_t> wedged_hosts_;
};

/// `--watchdog` flag (bench plumbing; value-less, position-independent).
bool watchdog_flag(int argc, char** argv);

/// One-line stdout summary for benches, printed only when --watchdog is on.
void print_liveness_summary(const LivenessVerdict& v);

/// Standard JSON scalars for a bench report (health_* names).
void add_liveness_scalars(telemetry::BenchReport& report,
                          const LivenessVerdict& v);

}  // namespace itb::health
