#include "itb/health/diagnosis.hpp"

#include <algorithm>
#include <optional>

namespace itb::health {

const char* to_string(StallKind k) {
  switch (k) {
    case StallKind::kBufferDeadlock: return "buffer-deadlock";
    case StallKind::kChannelDeadlock: return "channel-deadlock";
    case StallKind::kFaultBlackhole: return "fault-blackhole";
    case StallKind::kCongestion: return "congestion";
  }
  return "?";
}

Diagnosis WaitGraphDiagnoser::diagnose(sim::Time now) const {
  using Node = routing::DependencyGraph::Node;
  routing::DependencyGraph graph(network_.topology(), network_.lane_count());
  const auto snap = network_.wait_snapshot();

  // The resource a blocked worm is parked on. A busy channel dominates: its
  // owner carries the dependency onward. A free-but-gated channel into a
  // host means the wait is really on that host's buffer pool — unless the
  // gate is a fault window, which is not a resource anything releases.
  auto wait_target = [](const net::Network::WormWait& w)
      -> std::optional<Node> {
    if (!w.blocked) return std::nullopt;
    if (w.waiting_channel_busy)
      return Node::of_channel(w.waiting_on, w.waiting_lane);
    if (w.gate_closed && !w.gate_fault) return Node::of_buffer(w.gate_host);
    return std::nullopt;  // fault-gated or transiently free
  };

  std::size_t blocked = 0;
  bool fault_parked = false;
  for (const auto& w : snap) {
    if (!w.blocked) continue;
    ++blocked;
    if (w.gate_fault) fault_parked = true;
    const auto target = wait_target(w);
    if (!target) continue;
    for (const auto& held : w.held)
      graph.add_edge(Node::of_channel(held.channel, held.lane), *target);
  }

  // Full receive pools: buf(h) frees only when host h's blocked outgoing
  // injection (the ITB re-injection holding the buffer) makes progress.
  for (std::size_t h = 0; h < nics_.size(); ++h) {
    const nic::Nic* nic = nics_[h];
    if (!nic || !nic->rx_full()) continue;
    for (const auto& w : snap) {
      if (w.src_host != h) continue;
      if (const auto target = wait_target(w))
        graph.add_edge(Node::of_buffer(static_cast<std::uint16_t>(h)),
                       *target);
    }
  }

  Diagnosis d;
  d.at = now;
  d.blocked_worms = blocked;
  d.cycle = graph.find_cycle_nodes();
  if (!d.cycle.empty()) {
    for (const auto& n : d.cycle)
      if (n.is_buffer) d.wedged_hosts.push_back(n.host);
    std::sort(d.wedged_hosts.begin(), d.wedged_hosts.end());
    d.wedged_hosts.erase(
        std::unique(d.wedged_hosts.begin(), d.wedged_hosts.end()),
        d.wedged_hosts.end());
    d.kind = d.wedged_hosts.empty() ? StallKind::kChannelDeadlock
                                    : StallKind::kBufferDeadlock;
    d.description = routing::DependencyGraph::describe(d.cycle);
  } else if (fault_parked) {
    d.kind = StallKind::kFaultBlackhole;
    d.description = "traffic parked behind a NIC-stall fault window";
  } else {
    d.kind = StallKind::kCongestion;
    d.description = "no wait cycle; " + std::to_string(blocked) +
                    " worm(s) blocked on busy resources";
  }
  return d;
}

}  // namespace itb::health
