#include "itb/health/watchdog.hpp"

#include <cstdio>
#include <string_view>

namespace itb::health {

void LivenessVerdict::merge(const LivenessVerdict& o) {
  checks += o.checks;
  stalls += o.stalls;
  buffer_deadlocks += o.buffer_deadlocks;
  channel_deadlocks += o.channel_deadlocks;
  fault_blackholes += o.fault_blackholes;
  congestion_verdicts += o.congestion_verdicts;
  pool_mode_switches += o.pool_mode_switches;
  forced_ejections += o.forced_ejections;
  recoveries += o.recoveries;
  unrecovered += o.unrecovered;
  if (first_cycle.empty()) first_cycle = o.first_cycle;
}

LivenessWatchdog::LivenessWatchdog(sim::EventQueue& queue, sim::Tracer& tracer,
                                   net::Network& network,
                                   std::vector<nic::Nic*> nics,
                                   const WatchdogConfig& config)
    : queue_(queue),
      tracer_(tracer),
      network_(network),
      nics_(std::move(nics)),
      config_(config),
      diagnoser_(network,
                 std::vector<const nic::Nic*>(nics_.begin(), nics_.end())),
      nic_fps_(nics_.size(), 0),
      nic_epochs_(nics_.size(), 0) {
  last_fp_ = global_fingerprint();
  for (std::size_t h = 0; h < nics_.size(); ++h)
    nic_fps_[h] = nic_fingerprint(h);
  // Parked until traffic exists: an idle cluster's queue stays clean and
  // drain-style run() calls return immediately.
  network_.set_activity_hook([this] { poke(); });
}

LivenessWatchdog::~LivenessWatchdog() {
  if (!parked_) queue_.cancel(tick_event_);
  network_.set_activity_hook(nullptr);
}

void LivenessWatchdog::poke() {
  if (!parked_) return;
  parked_ = false;
  last_progress_ = queue_.now();
  arm();
}

void LivenessWatchdog::arm() {
  tick_event_ = queue_.schedule_in(config_.check_period, [this] { tick(); });
}

LivenessWatchdog::Fingerprint LivenessWatchdog::global_fingerprint() const {
  // Deliberately excludes net.injected: GM retransmission keeps injecting
  // into a wedged fabric, which must not read as progress.
  const auto& ns = network_.stats();
  std::uint64_t nic_rx = 0;
  for (const nic::Nic* n : nics_) {
    if (!n) continue;
    const auto& s = n->stats();
    nic_rx += s.received + s.delivered_to_host + s.itb_forwarded +
              s.dropped_no_buffer + s.rx_bad_crc + s.rx_unknown_type +
              s.rx_aborted;
  }
  return {ns.delivered, ns.dropped, ns.lost, nic_rx};
}

std::uint64_t LivenessWatchdog::nic_fingerprint(std::size_t h) const {
  const nic::Nic* n = nics_[h];
  if (!n) return 0;
  const auto& s = n->stats();
  return s.received + s.delivered_to_host + s.itb_forwarded +
         s.dropped_no_buffer + s.rx_bad_crc + s.rx_unknown_type +
         s.rx_aborted;
}

void LivenessWatchdog::update_epochs() {
  const Fingerprint fp = global_fingerprint();
  if (fp != last_fp_) {
    last_fp_ = fp;
    ++epoch_;
    last_progress_ = queue_.now();
  }
  for (std::size_t h = 0; h < nics_.size(); ++h) {
    const std::uint64_t nf = nic_fingerprint(h);
    if (nf != nic_fps_[h]) {
      nic_fps_[h] = nf;
      ++nic_epochs_[h];
    }
  }
}

void LivenessWatchdog::tick() {
  ++stats_.checks;
  const sim::Time now = queue_.now();
  update_epochs();
  if (in_stall_ && last_progress_ == now) finish_episode(now);
  if (network_.in_flight() == 0) {
    // Idle: park unconditionally — the next injection pokes us awake. This
    // also keeps the watchdog and the telemetry sampler from re-arming
    // each other forever on an otherwise empty queue.
    parked_ = true;
    return;
  }
  if (now - last_progress_ >= config_.stall_threshold) {
    handle_stall(now);
    if (parked_) return;
  }
  arm();
}

void LivenessWatchdog::handle_stall(sim::Time now) {
  bool acted = false;
  if (!in_stall_) {
    in_stall_ = true;
    stall_detected_ = now;
    stage_ = 0;
    last_action_ = now;
    ++stats_.stalls_detected;
    Diagnosis d = diagnoser_.diagnose(now);
    switch (d.kind) {
      case StallKind::kBufferDeadlock: ++stats_.buffer_deadlocks; break;
      case StallKind::kChannelDeadlock: ++stats_.channel_deadlocks; break;
      case StallKind::kFaultBlackhole: ++stats_.fault_blackholes; break;
      case StallKind::kCongestion: ++stats_.congestion_verdicts; break;
    }
    current_kind_ = d.kind;
    wedged_hosts_ = d.wedged_hosts;
    tracer_.emit(now, sim::TraceCategory::kHealth, [&] {
      return "stall detected: " + std::string(to_string(d.kind)) + " — " +
             d.description;
    });
    diagnoses_.push_back(std::move(d));
    acted = try_escalate(now);
  } else if (now - last_action_ >= config_.escalation_grace) {
    acted = try_escalate(now);
  }
  if (!acted) {
    // Park (leaving the verdict unrecovered) only when nothing can ever
    // change: no escalation left for us, and no event left for anyone
    // else. A blackhole's window-close event keeps the queue non-empty.
    const bool deadlock = current_kind_ == StallKind::kBufferDeadlock ||
                          current_kind_ == StallKind::kChannelDeadlock;
    const bool may_act_later = deadlock && config_.force_eject;
    if (!may_act_later && queue_.pending() == 0) parked_ = true;
  }
}

bool LivenessWatchdog::try_escalate(sim::Time now) {
  if (current_kind_ != StallKind::kBufferDeadlock &&
      current_kind_ != StallKind::kChannelDeadlock)
    return false;  // blackholes heal themselves; congestion needs no cure
  if (stage_ == 0) {
    stage_ = 1;
    last_action_ = now;
    if (config_.switch_to_pool) {
      bool any = false;
      for (const std::uint16_t h : wedged_hosts_) {
        if (h >= nics_.size() || !nics_[h]) continue;
        if (nics_[h]->enable_drop_when_full()) {
          any = true;
          ++stats_.pool_mode_switches;
          tracer_.emit(now, sim::TraceCategory::kHealth, [&] {
            return "escalation: h" + std::to_string(h) +
                   " switched to drop-on-full pool mode";
          });
        }
      }
      if (any) return true;
    }
    // Pool switch off or found no target (channel-only cycle, or the hosts
    // are already in pool mode): fall through to ejection.
  }
  if (!config_.force_eject) return false;
  if (const auto victim = network_.oldest_blocked()) {
    if (network_.force_eject(*victim)) {
      ++stats_.forced_ejections;
      stage_ = 2;
      last_action_ = now;
      tracer_.emit(now, sim::TraceCategory::kHealth, [&] {
        return "escalation: force-ejected tx" + std::to_string(*victim);
      });
      return true;
    }
  }
  return false;
}

void LivenessWatchdog::finish_episode(sim::Time now) {
  in_stall_ = false;
  stage_ = 0;
  ++stats_.recoveries;
  recovery_latency_.record(
      static_cast<std::uint64_t>(now - stall_detected_));
  tracer_.emit(now, sim::TraceCategory::kHealth, [&] {
    return "stall recovered after " +
           std::to_string(now - stall_detected_) + " ns";
  });
}

LivenessVerdict LivenessWatchdog::verdict() const {
  LivenessVerdict v;
  v.checks = stats_.checks;
  v.stalls = stats_.stalls_detected;
  v.buffer_deadlocks = stats_.buffer_deadlocks;
  v.channel_deadlocks = stats_.channel_deadlocks;
  v.fault_blackholes = stats_.fault_blackholes;
  v.congestion_verdicts = stats_.congestion_verdicts;
  v.pool_mode_switches = stats_.pool_mode_switches;
  v.forced_ejections = stats_.forced_ejections;
  v.recoveries = stats_.recoveries;
  v.unrecovered = in_stall_ && network_.in_flight() > 0 ? 1 : 0;
  for (const auto& d : diagnoses_) {
    if (d.cycle.empty()) continue;
    v.first_cycle = d.description;
    break;
  }
  return v;
}

void LivenessWatchdog::register_metrics(
    telemetry::MetricRegistry& registry) const {
  auto counter = [&registry](const char* name, const std::uint64_t& field) {
    registry.register_source("health", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  counter("checks", stats_.checks);
  counter("stalls_detected", stats_.stalls_detected);
  counter("buffer_deadlocks", stats_.buffer_deadlocks);
  counter("channel_deadlocks", stats_.channel_deadlocks);
  counter("fault_blackholes", stats_.fault_blackholes);
  counter("congestion_verdicts", stats_.congestion_verdicts);
  counter("pool_mode_switches", stats_.pool_mode_switches);
  counter("forced_ejections", stats_.forced_ejections);
  counter("recoveries", stats_.recoveries);
  registry.register_source("health", "epoch", telemetry::MetricKind::kGauge,
                           [this] { return static_cast<double>(epoch_); });
  for (std::size_t h = 0; h < nics_.size(); ++h) {
    if (!nics_[h]) continue;
    registry.register_source(
        "health", "nic_epoch", telemetry::MetricKind::kGauge,
        [this, h] { return static_cast<double>(nic_epochs_[h]); },
        telemetry::Labels{.host = static_cast<int>(h), .channel = -1});
  }
}

bool watchdog_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--watchdog") return true;
  return false;
}

void print_liveness_summary(const LivenessVerdict& v) {
  if (v.clean()) {
    std::printf("liveness: clean (%llu checks, no stalls)\n",
                static_cast<unsigned long long>(v.checks));
    return;
  }
  std::printf(
      "liveness: stalls=%llu (buffer=%llu channel=%llu blackhole=%llu "
      "congestion=%llu) pool_switches=%llu forced_ejections=%llu "
      "recovered=%llu unrecovered=%llu\n",
      static_cast<unsigned long long>(v.stalls),
      static_cast<unsigned long long>(v.buffer_deadlocks),
      static_cast<unsigned long long>(v.channel_deadlocks),
      static_cast<unsigned long long>(v.fault_blackholes),
      static_cast<unsigned long long>(v.congestion_verdicts),
      static_cast<unsigned long long>(v.pool_mode_switches),
      static_cast<unsigned long long>(v.forced_ejections),
      static_cast<unsigned long long>(v.recoveries),
      static_cast<unsigned long long>(v.unrecovered));
  if (!v.first_cycle.empty())
    std::printf("liveness: first diagnosed cycle: %s\n",
                v.first_cycle.c_str());
}

void add_liveness_scalars(telemetry::BenchReport& report,
                          const LivenessVerdict& v) {
  report.add_scalar("health_checks", static_cast<double>(v.checks));
  report.add_scalar("health_stalls", static_cast<double>(v.stalls));
  report.add_scalar("health_buffer_deadlocks",
                    static_cast<double>(v.buffer_deadlocks));
  report.add_scalar("health_pool_mode_switches",
                    static_cast<double>(v.pool_mode_switches));
  report.add_scalar("health_forced_ejections",
                    static_cast<double>(v.forced_ejections));
  report.add_scalar("health_recoveries", static_cast<double>(v.recoveries));
  report.add_scalar("health_unrecovered", static_cast<double>(v.unrecovered));
}

}  // namespace itb::health
