// Wait-graph diagnosis of a stalled network.
//
// When the LivenessWatchdog declares a stall it needs to know *why* before
// it may act: the §8 buffer-wait wedge is curable (switch the wedged pool
// to §4 drop-on-full), a fault blackhole cures itself when the window
// closes, and plain congestion must simply be left alone. The diagnoser
// answers by rebuilding, from live simulator state, the same buffer-
// augmented dependency graph the static checker uses — but over the
// *actual* waits of this instant rather than all possible routes:
//
//   * every blocked worm contributes edges from each channel it holds to
//     the resource it is parked on — the busy channel ahead of it, or the
//     buffer pool of a host whose gate is closed;
//   * every full receive pool contributes edges from its buffer node to
//     whatever its host's blocked outgoing injection waits on, because the
//     pool only frees once that (re-)injection drains.
//
// A cycle through a buffer node is a confirmed §8 wedge and names exactly
// the in-transit hosts to degrade. A cycle through channels alone is a
// routing bug (the static CDG check was bypassed). No cycle but a worm
// parked behind a fault window is a blackhole; anything else is congestion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itb/net/network.hpp"
#include "itb/nic/nic.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/sim/time.hpp"

namespace itb::health {

enum class StallKind : std::uint8_t {
  kBufferDeadlock,   // cycle through >= 1 buffer node: the §8 wedge
  kChannelDeadlock,  // cycle through channels only: broken route set
  kFaultBlackhole,   // no cycle; traffic parked behind a NIC-stall window
  kCongestion,       // no cycle, no fault: just slow
};

const char* to_string(StallKind k);

/// One stall verdict: what wedged, the cycle that proves it, and the hosts
/// whose buffer pools participate (the escalation targets).
struct Diagnosis {
  sim::Time at = 0;
  StallKind kind = StallKind::kCongestion;
  std::vector<routing::DependencyGraph::Node> cycle;  // empty unless deadlock
  std::vector<std::uint16_t> wedged_hosts;  // buffer nodes on the cycle
  std::size_t blocked_worms = 0;
  std::string description;
};

class WaitGraphDiagnoser {
 public:
  /// `nics[h]` serves host h; entries may be null for unattached hosts.
  WaitGraphDiagnoser(const net::Network& network,
                     std::vector<const nic::Nic*> nics)
      : network_(network), nics_(std::move(nics)) {}

  /// Walk the live wait state and classify the current stall.
  Diagnosis diagnose(sim::Time now) const;

 private:
  const net::Network& network_;
  std::vector<const nic::Nic*> nics_;
};

}  // namespace itb::health
