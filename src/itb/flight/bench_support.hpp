// Shared bench-side flight wiring, so every sweep binary exposes the same
// three flags with one call each:
//
//   --flight             record packet lifecycles; print the critical-path
//                        summary and the run fingerprint
//   --flight-out=PATH    also save the merged recording as itb.flight.v1
//   --flight-trace=PATH  also write the Chrome trace_event JSON (Perfetto)
//
// A sweep bench collects one Recording per point (returned by value from
// the worker, like histograms and counters) and adds them in point order;
// the merged fingerprint is then bit-identical for any --jobs value, which
// is exactly what CI asserts against the golden.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "itb/flight/chrome_trace.hpp"
#include "itb/flight/recorder.hpp"
#include "itb/flight/replay.hpp"
#include "itb/flight/timeline.hpp"
#include "itb/telemetry/export.hpp"

namespace itb::flight {

struct FlightCli {
  bool enabled = false;
  std::optional<std::string> out;    // --flight-out
  std::optional<std::string> trace;  // --flight-trace

  RecorderConfig recorder() const {
    RecorderConfig rc;
    rc.enabled = enabled;
    return rc;
  }
};

/// Parse the flight flags out of argv. `--flight-out`/`--flight-trace`
/// imply `--flight`. Throws std::invalid_argument on a missing path.
FlightCli flight_flags(int argc, char** argv);

/// Accumulates per-point recordings and finishes the run: prints the
/// critical-path table + fingerprint, verifies the stage-sum invariant,
/// writes the requested files, and adds flight.* scalars to the report.
class BenchFlight {
 public:
  explicit BenchFlight(FlightCli cli) : cli_(std::move(cli)) {}

  bool enabled() const { return cli_.enabled; }
  const FlightCli& cli() const { return cli_; }

  /// Append one point's recording (call in point order).
  void add(Recording r);

  Recording merged() const;

  /// Print summary + write files + export scalars. Returns false when the
  /// stage-sum invariant fails (any complete journey whose critical-path
  /// sum is off by >= 1 ns from its end-to-end latency) or a file cannot
  /// be written — bench mains turn that into a nonzero exit.
  bool finish(const std::string& bench_name,
              telemetry::BenchReport* report) const;

 private:
  FlightCli cli_;
  std::vector<Recording> recordings_;
};

}  // namespace itb::flight
