// Chrome trace_event JSON export of a flight recording, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Layout: one process per run (`name`), one track (tid) per journey. Each
// critical-path stage is a complete ("X") slice; ITB sub-spans and the raw
// lifecycle markers (Early Recv raise, DMA start, terminal fates) are
// instant ("i") events on the same track. Timestamps are microsecond
// doubles (trace_event's unit), which keeps full nanosecond precision as
// fractions.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "itb/flight/recorder.hpp"
#include "itb/flight/timeline.hpp"

namespace itb::flight {

void write_chrome_trace(std::ostream& out, std::string_view name,
                        const WormTimeline& timeline);
/// Journeys directly — what a multi-point bench uses after stitching one
/// timeline per simulation point (handles are only unique within a point).
void write_chrome_trace(std::ostream& out, std::string_view name,
                        const std::vector<Journey>& journeys);

/// Returns false when the file cannot be opened.
bool write_chrome_trace(const std::string& path, std::string_view name,
                        const WormTimeline& timeline);
bool write_chrome_trace(const std::string& path, std::string_view name,
                        const std::vector<Journey>& journeys);

}  // namespace itb::flight
