// ReplayChecker: run fingerprints, itb.flight.v1 serialization, and
// recording diffs to the first divergent event (DESIGN.md §6g).
//
// The simulator is deterministic by contract (the parallel sweep runner
// depends on it), which makes the ordered flight-event stream a run
// *fingerprint*: two runs of the same build and scenario must produce
// bit-identical streams, whatever --jobs says, and a changed fingerprint
// across commits means behavior changed — CI records a golden fingerprint
// for the testbed sweep and fails on divergence. When fingerprints differ,
// diff() on two saved recordings names the first event where the runs part
// ways, which is usually the whole diagnosis.
//
// File format `itb.flight.v1` (little-endian, field-by-field — never raw
// struct memory, so it is identical across ABIs):
//   magic   "IFLT"                  4 B
//   version u32 = 1                 4 B
//   count   u64  events that follow
//   recorded/evicted/fingerprint    3 x u64 (whole-stream accounting)
//   events  count x 28 B:  t i64 | handle u64 | aux u64 | node u16 |
//                          type u8 | detail u8
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "itb/flight/recorder.hpp"

namespace itb::flight {

/// First event where two recordings disagree. `index` is the position in
/// the surviving event streams; a missing optional means that stream ended.
struct Divergence {
  std::size_t index = 0;
  std::optional<FlightEvent> a;
  std::optional<FlightEvent> b;

  std::string describe() const;
};

class ReplayChecker {
 public:
  /// Recompute a fingerprint over surviving events only (what a loaded
  /// file can verify). Equals Recording::fingerprint iff nothing was
  /// evicted, since the live fingerprint covers the whole stream.
  static std::uint64_t fingerprint(const Recording& r);

  /// Hex form used in bench output and the CI golden file.
  static std::string fingerprint_hex(std::uint64_t fp);

  /// First divergence between two recordings (events first, then the
  /// whole-stream counters); nullopt when they replay identically.
  static std::optional<Divergence> diff(const Recording& a,
                                        const Recording& b);

  // --- itb.flight.v1 ----------------------------------------------------
  static void save(const Recording& r, std::ostream& out);
  /// Returns false when the file cannot be opened.
  static bool save(const Recording& r, const std::string& path);
  /// nullopt on bad magic, unknown version, or a short/corrupt stream.
  static std::optional<Recording> load(std::istream& in);
  static std::optional<Recording> load(const std::string& path);
};

}  // namespace itb::flight
