// WormTimeline: stitch flight events into per-packet journeys and compute
// the critical-path latency attribution (DESIGN.md §6g).
//
// A *journey* is one logical packet's life from the host posting it (or its
// wire injection, for packets the recorder first saw there) to the RDMA
// completion at the final destination, following ITB re-injections across
// transmission handles: the chain tx(A) --eject at ITB host--> tx(B) is one
// journey with two wire segments and one ITB hop.
//
// Stage attribution telescopes over recorded markers, so for every complete
// journey   sum(stages) == end - start   EXACTLY (integer nanoseconds, no
// estimation) — the invariant the fig8 bench and CI assert within 1 ns:
//
//   host_tx      send-post -> wire inject   (SDMA queue + PCI DMA + MCP send)
//   inject_wait  inject -> first channel grant (entry arbitration)
//   queueing     blocked-head waits at later hops (wormhole contention)
//   wire         head motion: link crossings + switch fall-through
//   itb_detect   NIC eject -> Early Recv raise (4 bytes + trigger)
//   itb_wait     Early Recv -> DMA programming (type probe, dispatch,
//                "ITB packet pending" queueing behind a busy send DMA)
//   itb_dma      DMA programming -> re-injection on the wire (program +
//                send DMA spin-up)
//   stream       head -> tail at the final NIC (payload pipelining)
//   delivery     tail -> RDMA completion (recv classify + PCI + completion)
#pragma once

#include <cstdint>
#include <vector>

#include "itb/flight/recorder.hpp"
#include "itb/sim/time.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::flight {

/// Per-stage nanosecond totals; stages() iterates them with names.
struct StageBreakdown {
  sim::Duration host_tx = 0;
  sim::Duration inject_wait = 0;
  sim::Duration queueing = 0;
  sim::Duration wire = 0;
  sim::Duration itb_detect = 0;
  sim::Duration itb_wait = 0;
  sim::Duration itb_dma = 0;
  sim::Duration stream = 0;
  sim::Duration delivery = 0;

  sim::Duration total() const {
    return host_tx + inject_wait + queueing + wire + itb_detect + itb_wait +
           itb_dma + stream + delivery;
  }
  void add(const StageBreakdown& o);
};

/// Stage names + accessors, in display order (shared by the printers, the
/// Chrome exporter and the flight.path.* metrics).
struct StageView {
  const char* name;
  sim::Duration StageBreakdown::* field;
};
const std::vector<StageView>& stage_views();

/// One ITB crossing inside a journey, with its sub-span instants.
struct ItbHop {
  std::uint16_t host = 0;
  sim::Time eject = 0;      // head reached the in-transit NIC
  sim::Time early = 0;      // Early Recv raised
  sim::Time dma_start = 0;  // re-injection DMA programming began
  sim::Time reinject = 0;   // continuation transmission entered the wire
};

enum class Outcome : std::uint8_t {
  kDelivered,   // RDMA completion observed
  kDropped,     // network discard (bad route / unattached destination)
  kLost,        // destroyed by a fault
  kForceEjected,// destroyed by the watchdog escalation
  kInFlight,    // recording ended mid-journey
};
const char* to_string(Outcome o);

struct Journey {
  std::uint64_t root = 0;        // first transmission handle of the chain
  std::uint16_t src = 0;
  std::uint16_t dst = 0;         // last host the head reached
  std::uint64_t wire_bytes = 0;  // length of the first injection
  sim::Time start = 0;           // send-post (preferred) or wire inject
  sim::Time end = 0;             // deliver, terminal event, or last marker
  Outcome outcome = Outcome::kInFlight;
  /// Ring eviction consumed this journey's early events; stages cover only
  /// the surviving suffix and the telescoping invariant is not claimed.
  bool truncated = false;
  /// Delivered, untruncated, with every marker present: stages().total()
  /// == end - start holds exactly.
  bool complete = false;
  StageBreakdown stages;
  std::vector<ItbHop> itb_hops;
  std::vector<std::uint64_t> segments;  // transmission handles, in order
};

class WormTimeline {
 public:
  explicit WormTimeline(const Recording& recording);

  const std::vector<Journey>& journeys() const { return journeys_; }
  std::size_t complete_count() const { return complete_; }

  /// Stage totals over complete journeys (the flight.path.* export).
  StageBreakdown totals() const { return totals_; }

  /// Largest |stages.total() - (end - start)| over complete journeys.
  /// Zero whenever the capture is intact — the bench/CI assertion.
  sim::Duration max_stage_residual() const { return max_residual_; }

  /// Mean ITB-hop split (detect / wait / dma) over every recorded hop —
  /// the Fig. 8 ≈1.3 µs attribution. Zeros when no hop was recorded.
  struct ItbHopSplit {
    std::size_t hops = 0;
    double detect_ns = 0, wait_ns = 0, dma_ns = 0;
    double total_ns() const { return detect_ns + wait_ns + dma_ns; }
  };
  ItbHopSplit itb_hop_split() const;

  /// Register flight.path.* gauges (stage totals over complete journeys,
  /// journey counts) on a registry, so cluster JSON dumps carry the
  /// attribution next to every other metric.
  void publish_metrics(telemetry::MetricRegistry& registry) const;

 private:
  std::vector<Journey> journeys_;
  StageBreakdown totals_;
  std::size_t complete_ = 0;
  sim::Duration max_residual_ = 0;
};

}  // namespace itb::flight
