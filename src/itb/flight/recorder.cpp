#include "itb/flight/recorder.hpp"

#include <algorithm>

namespace itb::flight {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kInject: return "inject";
    case EventType::kHeadBlock: return "head-block";
    case EventType::kGrant: return "grant";
    case EventType::kHeadSwitch: return "head-switch";
    case EventType::kNicEject: return "nic-eject";
    case EventType::kTail: return "tail";
    case EventType::kEarlyRecv: return "early-recv";
    case EventType::kItbDmaStart: return "itb-dma-start";
    case EventType::kReinject: return "reinject";
    case EventType::kDeliver: return "deliver";
    case EventType::kDrop: return "drop";
    case EventType::kLost: return "lost";
    case EventType::kForceEject: return "force-eject";
    case EventType::kSendPost: return "send-post";
    case EventType::kTxBind: return "tx-bind";
    case EventType::kGmSend: return "gm-send";
    case EventType::kGmDeliver: return "gm-deliver";
  }
  return "?";
}

std::string describe(const FlightEvent& e) {
  return std::to_string(e.t) + "ns " + to_string(e.type) + " tx" +
         std::to_string(e.handle) + " @" + std::to_string(e.node) + " aux=" +
         std::to_string(e.aux) + " detail=" + std::to_string(e.detail);
}

void Recording::append(const Recording& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  recorded += other.recorded;
  evicted += other.evicted;
  // Chain, don't xor: point order must matter, exactly as event order does
  // within one recorder.
  fingerprint = fingerprint_mix(fingerprint, other.fingerprint);
  fingerprint = fingerprint_mix(fingerprint, other.recorded);
}

FlightRecorder::FlightRecorder(const RecorderConfig& config)
    : ring_(std::max<std::size_t>(config.capacity, 1)) {}

void FlightRecorder::record(const FlightEvent& e) {
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size())
    ++count_;
  else
    ++evicted_;
  ++recorded_;
  // Canonical field order; the same bytes the serializer writes.
  std::uint64_t h = hash_;
  h = fingerprint_mix(h, static_cast<std::uint64_t>(e.t));
  h = fingerprint_mix(h, e.handle);
  h = fingerprint_mix(h, e.aux);
  h = fingerprint_mix(h, static_cast<std::uint64_t>(e.node) |
                             (static_cast<std::uint64_t>(e.type) << 16) |
                             (static_cast<std::uint64_t>(e.detail) << 24));
  hash_ = h;
}

Recording FlightRecorder::snapshot() const {
  Recording r;
  r.events.reserve(count_);
  const std::size_t oldest = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    r.events.push_back(ring_[(oldest + i) % ring_.size()]);
  r.recorded = recorded_;
  r.evicted = evicted_;
  r.fingerprint = hash_;
  return r;
}

void FlightRecorder::clear() {
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
  evicted_ = 0;
  hash_ = kFingerprintSeed;
}

void FlightRecorder::register_metrics(
    telemetry::MetricRegistry& registry) const {
  registry.register_source(
      "flight", "events_recorded", telemetry::MetricKind::kCounter,
      [this] { return static_cast<double>(recorded_); });
  registry.register_source(
      "flight", "events_evicted", telemetry::MetricKind::kCounter,
      [this] { return static_cast<double>(evicted_); });
  registry.register_source(
      "flight", "fingerprint_low32", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(hash_ & 0xffffffffull); });
}

}  // namespace itb::flight
