#include "itb/flight/bench_support.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace itb::flight {
namespace {

std::optional<std::string> path_flag(int argc, char** argv,
                                     std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == flag) {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(flag) + " needs a path");
      return std::string(argv[i + 1]);
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=')
      return std::string(arg.substr(flag.size() + 1));
  }
  return std::nullopt;
}

}  // namespace

FlightCli flight_flags(int argc, char** argv) {
  FlightCli cli;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--flight") cli.enabled = true;
  cli.out = path_flag(argc, argv, "--flight-out");
  cli.trace = path_flag(argc, argv, "--flight-trace");
  if (cli.out || cli.trace) cli.enabled = true;
  return cli;
}

void BenchFlight::add(Recording r) { recordings_.push_back(std::move(r)); }

Recording BenchFlight::merged() const {
  Recording m;
  m.fingerprint = kFingerprintSeed;
  for (const auto& r : recordings_) m.append(r);
  return m;
}

bool BenchFlight::finish(const std::string& bench_name,
                         telemetry::BenchReport* report) const {
  if (!cli_.enabled) return true;
  const Recording m = merged();

  // Stitch one timeline per simulation point: transmission handles, GM
  // tokens and timestamps are only unique within a point's cluster, so a
  // single timeline over the concatenated stream would cross-link packets
  // from different points. Stats sum; the fingerprint chains over `m`.
  StageBreakdown totals;
  std::size_t journey_count = 0, complete = 0;
  sim::Duration max_residual = 0;
  WormTimeline::ItbHopSplit split;
  std::vector<Journey> journeys;
  for (const auto& r : recordings_) {
    const WormTimeline tl(r);
    totals.add(tl.totals());
    journey_count += tl.journeys().size();
    complete += tl.complete_count();
    max_residual = std::max(max_residual, tl.max_stage_residual());
    const auto s = tl.itb_hop_split();
    // Re-weight the per-point means into one global mean.
    split.detect_ns += s.detect_ns * static_cast<double>(s.hops);
    split.wait_ns += s.wait_ns * static_cast<double>(s.hops);
    split.dma_ns += s.dma_ns * static_cast<double>(s.hops);
    split.hops += s.hops;
    journeys.insert(journeys.end(), tl.journeys().begin(),
                    tl.journeys().end());
  }
  if (split.hops > 0) {
    split.detect_ns /= static_cast<double>(split.hops);
    split.wait_ns /= static_cast<double>(split.hops);
    split.dma_ns /= static_cast<double>(split.hops);
  }

  std::printf("\nflight recorder: %llu events (%llu evicted), "
              "%zu journeys (%zu complete), fingerprint %s\n",
              static_cast<unsigned long long>(m.recorded),
              static_cast<unsigned long long>(m.evicted), journey_count,
              complete, ReplayChecker::fingerprint_hex(m.fingerprint).c_str());
  if (complete > 0) {
    const double n = static_cast<double>(complete);
    std::printf("critical path per delivered packet (mean over %zu):\n",
                complete);
    for (const auto& view : stage_views()) {
      const auto d = totals.*(view.field);
      if (d == 0) continue;
      std::printf("  %-12s %10.3f us\n", view.name,
                  static_cast<double>(d) / n / 1000.0);
    }
    std::printf("  %-12s %10.3f us\n", "total",
                static_cast<double>(totals.total()) / n / 1000.0);
  }
  if (split.hops > 0)
    std::printf("per-ITB hop (mean over %zu): detect %.3f us + wait %.3f us "
                "+ dma %.3f us = %.3f us\n",
                split.hops, split.detect_ns / 1000.0, split.wait_ns / 1000.0,
                split.dma_ns / 1000.0, split.total_ns() / 1000.0);

  bool ok = true;
  if (max_residual >= 1) {
    std::fprintf(stderr,
                 "flight: critical-path sum diverges from measured journey "
                 "latency by %lld ns\n",
                 static_cast<long long>(max_residual));
    ok = false;
  }

  if (cli_.out) {
    if (ReplayChecker::save(m, *cli_.out)) {
      std::printf("flight recording written to %s\n", cli_.out->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", cli_.out->c_str());
      ok = false;
    }
  }
  if (cli_.trace) {
    if (write_chrome_trace(*cli_.trace, bench_name, journeys)) {
      std::printf("Chrome trace written to %s (load in ui.perfetto.dev)\n",
                  cli_.trace->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", cli_.trace->c_str());
      ok = false;
    }
  }

  if (report) {
    for (const auto& view : stage_views())
      report->add_scalar(std::string("flight.path.") + view.name + "_ns",
                         static_cast<double>(totals.*(view.field)));
    report->add_scalar("flight.path.total_ns",
                       static_cast<double>(totals.total()));
    report->add_scalar("flight.journeys",
                       static_cast<double>(journey_count));
    report->add_scalar("flight.complete_journeys",
                       static_cast<double>(complete));
    report->add_scalar("flight.events", static_cast<double>(m.recorded));
    report->add_scalar("flight.itb_hop_mean_ns", split.total_ns());
    report->set_param("flight.fingerprint",
                      ReplayChecker::fingerprint_hex(m.fingerprint));
  }
  return ok;
}

}  // namespace itb::flight
