#include "itb/flight/chrome_trace.hpp"

#include <fstream>
#include <ostream>

#include "itb/telemetry/export.hpp"

namespace itb::flight {
namespace {

double us(sim::Time t) { return static_cast<double>(t) / 1000.0; }

/// One trace_event object. `ph` is the phase letter; dur < 0 omits it.
void event(telemetry::JsonWriter& w, std::string_view name,
           std::string_view ph, double ts_us, double dur_us, int tid) {
  w.begin_object();
  w.kv("name", name);
  w.kv("cat", "flight");
  w.kv("ph", ph);
  w.kv("ts", ts_us);
  if (dur_us >= 0) w.kv("dur", dur_us);
  w.kv("pid", 0);
  w.kv("tid", tid);
  if (ph == "i") w.kv("s", "t");  // thread-scoped instant
  w.end_object();
}

void metadata(telemetry::JsonWriter& w, std::string_view what, int tid,
              std::string_view name) {
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", 0);
  if (tid >= 0) w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& out, std::string_view name,
                        const WormTimeline& timeline) {
  write_chrome_trace(out, name, timeline.journeys());
}

void write_chrome_trace(std::ostream& out, std::string_view name,
                        const std::vector<Journey>& journeys) {
  telemetry::JsonWriter w(out);
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();
  metadata(w, "process_name", -1, name);

  int tid = 0;
  for (const auto& j : journeys) {
    const std::string track =
        "tx" + std::to_string(j.root) + " h" + std::to_string(j.src) + "->h" +
        std::to_string(j.dst) + " " + std::to_string(j.wire_bytes) + "B (" +
        to_string(j.outcome) + (j.truncated ? ", truncated)" : ")");
    metadata(w, "thread_name", tid, track);

    // Critical-path stages as consecutive slices. Stages telescope over the
    // journey, so emitting them back-to-back from `start` reproduces every
    // marker instant for complete journeys.
    sim::Time cursor = j.start;
    for (const auto& view : stage_views()) {
      const sim::Duration d = j.stages.*(view.field);
      if (d <= 0) continue;
      event(w, view.name, "X", us(cursor), static_cast<double>(d) / 1000.0,
            tid);
      cursor += d;
    }
    // Whole-journey envelope one nesting level up (emitted last so slices
    // at equal ts sort inner-first in Perfetto's JSON importer).
    event(w, "journey", "X", us(j.start),
          static_cast<double>(j.end - j.start) / 1000.0, tid);

    for (const auto& hop : j.itb_hops) {
      event(w, "ITB eject h" + std::to_string(hop.host), "i", us(hop.eject),
            -1, tid);
      event(w, "early recv", "i", us(hop.early), -1, tid);
      event(w, "reinjection DMA", "i", us(hop.dma_start), -1, tid);
      event(w, "reinjected", "i", us(hop.reinject), -1, tid);
    }
    if (j.outcome != Outcome::kDelivered)
      event(w, to_string(j.outcome), "i", us(j.end), -1, tid);
    ++tid;
  }
  w.end_array();
  w.end_object();
}

bool write_chrome_trace(const std::string& path, std::string_view name,
                        const WormTimeline& timeline) {
  return write_chrome_trace(path, name, timeline.journeys());
}

bool write_chrome_trace(const std::string& path, std::string_view name,
                        const std::vector<Journey>& journeys) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, name, journeys);
  return static_cast<bool>(out);
}

}  // namespace itb::flight
