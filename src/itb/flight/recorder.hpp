// Flight recorder: packed packet-lifecycle capture (DESIGN.md §6g).
//
// The paper's headline numbers are latency *attributions*: Fig. 7's ≈125 ns
// is the receive-path dispatch cost, Fig. 8's ≈1.3 µs is one ITB hop's
// eject-probe-reinject cost. Histograms cannot produce those splits; a
// per-packet event log can. The FlightRecorder is a fixed-capacity binary
// ring of packed FlightEvents fed by cheap hooks in net::Network, nic::Nic
// and gm::GmPort — every hook is one pointer test when recording is off —
// from which flight::WormTimeline reconstructs per-packet spans and
// flight::ReplayChecker derives a deterministic run fingerprint.
//
// The ring overwrites oldest events when full (evicted() counts them), but
// the fingerprint is folded in at record time, so it covers the FULL event
// stream regardless of ring capacity: two runs with different capacities
// still fingerprint identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itb/sim/time.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::flight {

/// Lifecycle stations of a packet, in rough causal order. The stream is a
/// stable format surface: values are serialized into itb.flight.v1 files,
/// so append new types at the end, never renumber.
enum class EventType : std::uint8_t {
  kInject = 0,     // Network::inject accepted the packet (node=src host,
                   //   aux=wire length in bytes)
  kHeadBlock,      // head parked in a channel's waiter queue (aux=channel)
  kGrant,          // a directed channel was granted to the head (aux=channel)
  kHeadSwitch,     // head crossed into a switch (node=switch, detail=out port)
  kNicEject,       // head reached a host NIC (node=host): ejection starts
  kTail,           // last byte landed at the NIC (node=host)
  kEarlyRecv,      // LANai raised Early Recv Packet (node=host,
                   //   detail=1 when the type probe found an ITB packet)
  kItbDmaStart,    // Recv machine began programming the re-injection DMA
  kReinject,       // re-injection entered the wire: handle=new transmission,
                   //   aux=the ejected transmission it continues
  kDeliver,        // RDMA completion handed the payload to the host
  kDrop,           // network discarded the packet (bad route / unattached)
  kLost,           // a fault destroyed the worm mid-flight (aux=link)
  kForceEject,     // watchdog escalation destroyed the worm (aux=link)
  kSendPost,       // host posted a send to the NIC (node=host, aux=token,
                   //   detail=packet type byte)
  kTxBind,         // posted send became a wire transmission (aux=token)
  kGmSend,         // gm_send() accepted a message (handle=msg id, node=dst)
  kGmDeliver,      // GM receive handler dispatched (handle=msg id, node=src)
};

const char* to_string(EventType t);

/// One packed lifecycle event. 32 bytes in memory; serialized and hashed
/// field-by-field (28 canonical bytes), never as raw struct memory, so
/// padding can never leak into fingerprints or files.
struct FlightEvent {
  sim::Time t = 0;            // simulated instant
  std::uint64_t handle = 0;   // net::TxHandle, GM msg id, or 0
  std::uint64_t aux = 0;      // per-type: length, channel, token, link, ...
  std::uint16_t node = 0;     // host or switch index
  EventType type = EventType::kInject;
  std::uint8_t detail = 0;    // per-type small payload

  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};

/// "time type tx… @node aux" — for divergence reports and debugging.
std::string describe(const FlightEvent& e);

/// An unwrapped snapshot of a recorder (or a deserialized itb.flight.v1
/// file): events in stream order, plus the whole-stream accounting.
struct Recording {
  std::vector<FlightEvent> events;
  std::uint64_t recorded = 0;     // events ever recorded (incl. evicted)
  std::uint64_t evicted = 0;      // oldest events overwritten by the ring
  std::uint64_t fingerprint = 0;  // whole-stream order-sensitive hash

  /// Append `other` after this recording (point-order merge for sweep
  /// benches): events concatenate, counters add, fingerprints chain.
  void append(const Recording& other);
};

struct RecorderConfig {
  bool enabled = false;
  /// Ring capacity in events (32 B each). The default keeps every event of
  /// a figure bench while bounding a chaos soak to ~8 MB.
  std::size_t capacity = std::size_t{1} << 18;
};

/// Seed and one FNV-1a 64 step, exposed so ReplayChecker can chain
/// per-cluster fingerprints the same way the recorder chains events.
inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;
constexpr std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

class FlightRecorder {
 public:
  explicit FlightRecorder(const RecorderConfig& config = {});

  /// Append one event. Amortized O(1); overwrites the oldest event when the
  /// ring is full. Also folds the event into the running fingerprint.
  void record(const FlightEvent& e);

  /// Convenience for the hook sites.
  void record(EventType type, sim::Time t, std::uint64_t handle,
              std::uint16_t node = 0, std::uint64_t aux = 0,
              std::uint8_t detail = 0) {
    record(FlightEvent{t, handle, aux, node, type, detail});
  }

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events currently held in the ring.
  std::size_t size() const { return count_; }
  /// Running whole-stream fingerprint (covers evicted events too).
  std::uint64_t fingerprint() const { return hash_; }

  /// Copy the ring out in stream order.
  Recording snapshot() const;

  /// Forget everything, including the fingerprint.
  void clear();

  /// Publish recorded/evicted/fingerprint-low-bits under component
  /// "flight" (callback-backed).
  void register_metrics(telemetry::MetricRegistry& registry) const;

 private:
  std::vector<FlightEvent> ring_;  // fixed capacity, allocated up front
  std::size_t head_ = 0;           // next write slot
  std::size_t count_ = 0;          // live events (<= capacity)
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t hash_ = kFingerprintSeed;
};

}  // namespace itb::flight
