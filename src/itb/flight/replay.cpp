#include "itb/flight/replay.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <ostream>

namespace itb::flight {
namespace {

constexpr char kMagic[4] = {'I', 'F', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_u16(std::ostream& out, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff),
                     static_cast<char>((v >> 8) & 0xff)};
  out.write(b, 2);
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

bool get_u16(std::istream& in, std::uint16_t& v) {
  unsigned char b[2];
  if (!in.read(reinterpret_cast<char*>(b), 2)) return false;
  v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return true;
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return true;
}

}  // namespace

std::string Divergence::describe() const {
  std::string s = "first divergence at event " + std::to_string(index) + ":\n";
  s += "  a: " + (a ? flight::describe(*a) : std::string("<stream ended>"));
  s += "\n  b: " + (b ? flight::describe(*b) : std::string("<stream ended>"));
  return s;
}

std::uint64_t ReplayChecker::fingerprint(const Recording& r) {
  std::uint64_t h = kFingerprintSeed;
  for (const auto& e : r.events) {
    h = fingerprint_mix(h, static_cast<std::uint64_t>(e.t));
    h = fingerprint_mix(h, e.handle);
    h = fingerprint_mix(h, e.aux);
    h = fingerprint_mix(h, static_cast<std::uint64_t>(e.node) |
                               (static_cast<std::uint64_t>(e.type) << 16) |
                               (static_cast<std::uint64_t>(e.detail) << 24));
  }
  return h;
}

std::string ReplayChecker::fingerprint_hex(std::uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int i = 15; i >= 0; --i) s += digits[(fp >> (4 * i)) & 0xf];
  return s;
}

std::optional<Divergence> ReplayChecker::diff(const Recording& a,
                                              const Recording& b) {
  const std::size_t n = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!(a.events[i] == b.events[i]))
      return Divergence{i, a.events[i], b.events[i]};
  if (a.events.size() != b.events.size()) {
    Divergence d;
    d.index = n;
    if (n < a.events.size()) d.a = a.events[n];
    if (n < b.events.size()) d.b = b.events[n];
    return d;
  }
  // Same surviving events; evicted prefixes can still differ.
  if (a.fingerprint != b.fingerprint || a.recorded != b.recorded)
    return Divergence{n, std::nullopt, std::nullopt};
  return std::nullopt;
}

void ReplayChecker::save(const Recording& r, std::ostream& out) {
  out.write(kMagic, 4);
  put_u32(out, kVersion);
  put_u64(out, r.events.size());
  put_u64(out, r.recorded);
  put_u64(out, r.evicted);
  put_u64(out, r.fingerprint);
  for (const auto& e : r.events) {
    put_u64(out, static_cast<std::uint64_t>(e.t));
    put_u64(out, e.handle);
    put_u64(out, e.aux);
    put_u16(out, e.node);
    const char tb[2] = {static_cast<char>(e.type),
                        static_cast<char>(e.detail)};
    out.write(tb, 2);
  }
}

bool ReplayChecker::save(const Recording& r, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(r, out);
  return static_cast<bool>(out);
}

std::optional<Recording> ReplayChecker::load(std::istream& in) {
  std::array<char, 4> magic{};
  if (!in.read(magic.data(), 4) ||
      !std::equal(magic.begin(), magic.end(), kMagic))
    return std::nullopt;
  std::uint32_t version = 0;
  if (!get_u32(in, version) || version != kVersion) return std::nullopt;
  std::uint64_t count = 0;
  Recording r;
  if (!get_u64(in, count) || !get_u64(in, r.recorded) ||
      !get_u64(in, r.evicted) || !get_u64(in, r.fingerprint))
    return std::nullopt;
  if (count > r.recorded) return std::nullopt;  // corrupt header
  r.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    FlightEvent e;
    std::uint64_t t = 0;
    unsigned char tb[2];
    if (!get_u64(in, t) || !get_u64(in, e.handle) || !get_u64(in, e.aux) ||
        !get_u16(in, e.node) || !in.read(reinterpret_cast<char*>(tb), 2))
      return std::nullopt;
    e.t = static_cast<sim::Time>(t);
    e.type = static_cast<EventType>(tb[0]);
    e.detail = tb[1];
    r.events.push_back(e);
  }
  return r;
}

std::optional<Recording> ReplayChecker::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load(in);
}

}  // namespace itb::flight
