#include "itb/flight/timeline.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace itb::flight {

void StageBreakdown::add(const StageBreakdown& o) {
  host_tx += o.host_tx;
  inject_wait += o.inject_wait;
  queueing += o.queueing;
  wire += o.wire;
  itb_detect += o.itb_detect;
  itb_wait += o.itb_wait;
  itb_dma += o.itb_dma;
  stream += o.stream;
  delivery += o.delivery;
}

const std::vector<StageView>& stage_views() {
  static const std::vector<StageView> views = {
      {"host_tx", &StageBreakdown::host_tx},
      {"inject_wait", &StageBreakdown::inject_wait},
      {"queueing", &StageBreakdown::queueing},
      {"wire", &StageBreakdown::wire},
      {"itb_detect", &StageBreakdown::itb_detect},
      {"itb_wait", &StageBreakdown::itb_wait},
      {"itb_dma", &StageBreakdown::itb_dma},
      {"stream", &StageBreakdown::stream},
      {"delivery", &StageBreakdown::delivery},
  };
  return views;
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kDelivered: return "delivered";
    case Outcome::kDropped: return "dropped";
    case Outcome::kLost: return "lost";
    case Outcome::kForceEjected: return "force-ejected";
    case Outcome::kInFlight: return "in-flight";
  }
  return "?";
}

namespace {

/// Events of one transmission handle, in stream order.
struct Segment {
  std::vector<const FlightEvent*> events;
  std::uint64_t child = 0;       // reinjection continuing this transmission
  bool is_reinjection = false;   // some kReinject names it as the new handle
};

const FlightEvent* find(const Segment& s, EventType t) {
  for (const auto* e : s.events)
    if (e->type == t) return e;
  return nullptr;
}

}  // namespace

WormTimeline::WormTimeline(const Recording& recording) {
  // --- index the stream -------------------------------------------------
  std::unordered_map<std::uint64_t, Segment> segments;
  // (host, token) -> send-post time; tokens are per-NIC.
  std::map<std::pair<std::uint16_t, std::uint64_t>, sim::Time> send_posts;
  std::vector<std::uint64_t> order;  // handles in first-seen stream order

  for (const auto& e : recording.events) {
    switch (e.type) {
      case EventType::kSendPost:
        send_posts[{e.node, e.aux}] = e.t;
        continue;
      case EventType::kGmSend:
      case EventType::kGmDeliver:
        continue;  // message-level markers; not part of packet journeys
      case EventType::kReinject: {
        auto [it, fresh] = segments.try_emplace(e.handle);
        if (fresh) order.push_back(e.handle);
        it->second.is_reinjection = true;
        segments[e.aux].child = e.handle;
        continue;
      }
      default:
        break;
    }
    auto [it, fresh] = segments.try_emplace(e.handle);
    if (fresh) order.push_back(e.handle);
    it->second.events.push_back(&e);
  }

  // --- walk each chain from its root ------------------------------------
  for (const std::uint64_t root : order) {
    const Segment& root_seg = segments.at(root);
    if (root_seg.is_reinjection) continue;  // continues an earlier journey

    Journey j;
    j.root = root;
    bool have_start = false;

    for (std::uint64_t h = root; h != 0;) {
      const Segment& seg = segments.at(h);
      j.segments.push_back(h);
      const Segment* child =
          seg.child ? &segments.at(seg.child) : nullptr;

      const FlightEvent* inject = find(seg, EventType::kInject);
      const FlightEvent* eject = find(seg, EventType::kNicEject);
      const FlightEvent* tail = find(seg, EventType::kTail);

      if (h == root) {
        if (inject) {
          j.src = inject->node;
          j.wire_bytes = inject->aux;
          // Prefer the host posting instant; inject-only packets (mapper
          // probes, evicted posts) start on the wire.
          const FlightEvent* bind = find(seg, EventType::kTxBind);
          if (bind) {
            auto it = send_posts.find({bind->node, bind->aux});
            if (it != send_posts.end()) {
              j.start = it->second;
              j.stages.host_tx = inject->t - it->second;
              have_start = true;
            }
          }
          if (!have_start) {
            j.start = inject->t;
            have_start = true;
          }
        } else if (!seg.events.empty()) {
          j.start = seg.events.front()->t;
          j.truncated = true;
          have_start = true;
        }
      } else if (!inject) {
        j.truncated = true;
      }

      // Channel waits: blocks alternate with the grant that ends them. The
      // entry block's closing grant is the segment's first grant, already
      // covered by inject_wait.
      sim::Time first_grant = -1;
      sim::Duration seg_queueing = 0;
      const FlightEvent* pending_block = nullptr;
      for (const auto* e : seg.events) {
        if (e->type == EventType::kHeadBlock) {
          pending_block = e;
        } else if (e->type == EventType::kGrant) {
          if (first_grant < 0)
            first_grant = e->t;
          else if (pending_block)
            seg_queueing += e->t - pending_block->t;
          pending_block = nullptr;
        }
      }
      if (inject && first_grant >= 0)
        j.stages.inject_wait += first_grant - inject->t;
      else if (!inject)
        j.truncated = true;
      j.stages.queueing += seg_queueing;
      if (eject) {
        j.dst = eject->node;
        if (first_grant >= 0)
          j.stages.wire += (eject->t - first_grant) - seg_queueing;
        else
          j.truncated = true;
      }

      if (child) {
        // ITB hop: eject -> Early Recv -> DMA programming -> re-injection.
        const FlightEvent* early = find(seg, EventType::kEarlyRecv);
        const FlightEvent* dma = find(seg, EventType::kItbDmaStart);
        const FlightEvent* next_inject = find(*child, EventType::kInject);
        if (eject && early && dma && next_inject) {
          j.stages.itb_detect += early->t - eject->t;
          j.stages.itb_wait += dma->t - early->t;
          j.stages.itb_dma += next_inject->t - dma->t;
          j.itb_hops.push_back(ItbHop{eject->node, eject->t, early->t,
                                      dma->t, next_inject->t});
        } else {
          j.truncated = true;
        }
        h = seg.child;
        continue;
      }

      // Final segment: streaming tail, then delivery or a terminal fate.
      const FlightEvent* deliver = find(seg, EventType::kDeliver);
      const FlightEvent* terminal = nullptr;
      for (const auto* e : seg.events) {
        if (e->type == EventType::kDrop || e->type == EventType::kLost ||
            e->type == EventType::kForceEject)
          terminal = e;
      }
      if (eject && tail) j.stages.stream += tail->t - eject->t;
      if (deliver) {
        if (tail) j.stages.delivery += deliver->t - tail->t;
        j.end = deliver->t;
        j.outcome = Outcome::kDelivered;
        j.complete = !j.truncated && inject && eject && tail &&
                     j.stages.inject_wait >= 0;
      } else if (terminal) {
        j.end = terminal->t;
        j.outcome = terminal->type == EventType::kDrop ? Outcome::kDropped
                    : terminal->type == EventType::kLost
                        ? Outcome::kLost
                        : Outcome::kForceEjected;
      } else {
        j.end = seg.events.empty() ? j.start : seg.events.back()->t;
        j.outcome = Outcome::kInFlight;
      }
      h = 0;
    }

    if (!have_start) continue;  // reinject bookkeeping only, nothing to show
    if (j.complete) {
      ++complete_;
      totals_.add(j.stages);
      const sim::Duration residual =
          std::llabs(j.stages.total() - (j.end - j.start));
      max_residual_ = std::max(max_residual_, residual);
    }
    journeys_.push_back(std::move(j));
  }
}

WormTimeline::ItbHopSplit WormTimeline::itb_hop_split() const {
  ItbHopSplit s;
  for (const auto& j : journeys_)
    for (const auto& hop : j.itb_hops) {
      ++s.hops;
      s.detect_ns += static_cast<double>(hop.early - hop.eject);
      s.wait_ns += static_cast<double>(hop.dma_start - hop.early);
      s.dma_ns += static_cast<double>(hop.reinject - hop.dma_start);
    }
  if (s.hops > 0) {
    s.detect_ns /= static_cast<double>(s.hops);
    s.wait_ns /= static_cast<double>(s.hops);
    s.dma_ns /= static_cast<double>(s.hops);
  }
  return s;
}

void WormTimeline::publish_metrics(telemetry::MetricRegistry& registry) const {
  for (const auto& view : stage_views())
    registry.gauge("flight", std::string("path.") + view.name + "_ns")
        .set(static_cast<double>(totals_.*(view.field)));
  registry.gauge("flight", "path.total_ns")
      .set(static_cast<double>(totals_.total()));
  registry.gauge("flight", "path.journeys")
      .set(static_cast<double>(journeys_.size()));
  registry.gauge("flight", "path.complete_journeys")
      .set(static_cast<double>(complete_));
  const auto split = itb_hop_split();
  registry.gauge("flight", "path.itb_hops")
      .set(static_cast<double>(split.hops));
  registry.gauge("flight", "path.itb_hop_mean_ns").set(split.total_ns());
}

}  // namespace itb::flight
