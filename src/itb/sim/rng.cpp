#include "itb/sim/rng.hpp"

#include <cmath>

namespace itb::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's rejection method: unbiased and branch-light.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::next_normal() {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::next_lognormal(double mean, double sigma) {
  // mu chosen so E[exp(mu + sigma Z)] = mean.
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return std::exp(mu + sigma * next_normal());
}

double Rng::next_bounded_pareto(double mean, double alpha, double cap) {
  // Inverse-CDF draw on [1, cap], rescaled by the closed-form mean of the
  // unit-scale bounded Pareto so the result has mean exactly `mean`.
  const double ha = std::pow(cap, -alpha);
  double u;
  do {
    u = next_double();
  } while (u >= 1.0);
  const double x = std::pow(1.0 - u * (1.0 - ha), -1.0 / alpha);
  const double unit_mean = alpha / (alpha - 1.0) *
                           (1.0 - std::pow(cap, 1.0 - alpha)) / (1.0 - ha);
  return x * (mean / unit_mean);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Whiten both inputs through SplitMix64 so adjacent stream ids land in
  // unrelated regions of the seed space.
  std::uint64_t x = seed;
  const std::uint64_t a = splitmix64(x);
  x = a ^ (stream_id + 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(x));
}

}  // namespace itb::sim
