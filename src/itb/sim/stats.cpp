#include "itb/sim/stats.hpp"

#include <cmath>

namespace itb::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampledStats::merge(const SampledStats& other) {
  running_.merge(other.running_);
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double SampledStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(std::isnan(p) ? 0.0 : p, 0.0, 100.0);
  if (clamped == 0.0) return sorted.front();
  if (clamped == 100.0) return sorted.back();
  // Nearest rank: smallest rank covering fraction p. ceil() can round to
  // n + 1 for p just under 100 (floating error), so clamp into [1, n].
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((x - lo_) / span *
                                       static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(counts_[i] * width / peak);
    out += std::to_string(bucket_lo(i)) + " | " + std::string(bar, '#') + " " +
           std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace itb::sim
