// Slab object pool with generation-checked handles.
//
// The hot simulation loop used to pay a general-purpose heap round trip per
// simulated object (one make_unique<Worm> per packet, one PostedSend node
// per NIC send). SlabPool replaces that with O(1) acquire/release against
// fixed-size slabs:
//
//   * Storage is a list of slabs, each holding kSlabSize default-constructed
//     objects. Slabs are never freed or moved, so T* stays stable for the
//     life of the pool — holders may keep raw pointers to live objects.
//   * Objects are recycled WARM: release() does not destroy the object and
//     acquire() does not re-construct it. A recycled object keeps whatever
//     state — in particular whatever vector capacities — its previous life
//     left behind, which is exactly what makes the steady state
//     allocation-free. Callers reset the fields they care about.
//   * Handles are {slot, generation}: release bumps the slot's generation,
//     so a stale handle (kept past release) is detected — get() returns
//     nullptr and release() returns false instead of corrupting a recycled
//     object.
//   * Telemetry: live(), capacity(), slab_count() and high_water() are O(1)
//     gauges; register them where the owning component publishes metrics.
//
// Free-list order is LIFO (the hottest object, cache-wise, is reused first)
// and fully deterministic, so pooled simulations stay bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace itb::sim {

inline constexpr std::uint32_t kPoolNullSlot = UINT32_MAX;

/// Generation-checked reference to a pooled object. Default-constructed
/// handles are null. A handle outliving its object's release is stale:
/// get() returns nullptr and release() returns false. Deliberately not a
/// nested type so holders can store handles without naming (or
/// instantiating) the pool's full type.
struct PoolHandle {
  std::uint32_t slot = kPoolNullSlot;
  std::uint32_t gen = 0;

  explicit operator bool() const { return slot != kPoolNullSlot; }
  friend bool operator==(PoolHandle, PoolHandle) = default;
};

template <typename T, std::size_t kSlabSize = 256>
class SlabPool {
  static_assert(kSlabSize > 0);

 public:
  static constexpr std::uint32_t kNullSlot = kPoolNullSlot;
  using Handle = PoolHandle;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Take an object from the pool (growing by one slab when empty). The
  /// object may carry recycled state — the caller resets what it needs.
  /// Returns the handle and a stable pointer.
  std::pair<Handle, T*> acquire() {
    if (free_head_ == kNullSlot) grow();
    const std::uint32_t slot = free_head_;
    Entry& e = entry(slot);
    free_head_ = e.next_free;
    e.live = true;
    ++live_;
    if (live_ > high_water_) high_water_ = live_;
    return {Handle{slot, e.gen}, &e.value};
  }

  /// Return an object to the free list. The object is not destroyed (warm
  /// reuse); its generation advances so outstanding handles go stale.
  /// Returns false (and does nothing) for a null, stale or double-released
  /// handle.
  bool release(Handle h) {
    Entry* e = checked_entry(h);
    if (!e) return false;
    e->live = false;
    ++e->gen;
    e->next_free = free_head_;
    free_head_ = h.slot;
    --live_;
    return true;
  }

  /// The object behind a handle; nullptr when the handle is null, stale or
  /// out of range.
  T* get(Handle h) {
    Entry* e = checked_entry(h);
    return e ? &e->value : nullptr;
  }
  const T* get(Handle h) const {
    return const_cast<SlabPool*>(this)->get(h);
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return slabs_.size() * kSlabSize; }
  std::size_t slab_count() const { return slabs_.size(); }
  /// Peak simultaneous live objects — the pool's true working-set size.
  std::size_t high_water() const { return high_water_; }

 private:
  struct Entry {
    T value{};
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNullSlot;
    bool live = false;
  };
  struct Slab {
    std::vector<Entry> entries = std::vector<Entry>(kSlabSize);
  };

  Entry& entry(std::uint32_t slot) {
    return slabs_[slot / kSlabSize]->entries[slot % kSlabSize];
  }

  Entry* checked_entry(Handle h) {
    if (h.slot == kNullSlot || h.slot >= capacity()) return nullptr;
    Entry& e = entry(h.slot);
    if (!e.live || e.gen != h.gen) return nullptr;
    return &e;
  }

  void grow() {
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size() * kSlabSize);
    slabs_.push_back(std::make_unique<Slab>());
    // Thread the new slab onto the free list in ascending slot order so the
    // first acquires walk the slab front to back (deterministic and
    // prefetch-friendly).
    Slab& slab = *slabs_.back();
    for (std::size_t i = kSlabSize; i-- > 0;) {
      slab.entries[i].next_free = free_head_;
      free_head_ = base + static_cast<std::uint32_t>(i);
    }
  }

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::uint32_t free_head_ = kNullSlot;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace itb::sim
