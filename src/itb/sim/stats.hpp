// Online statistics accumulators used by every measurement harness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace itb::sim {

/// Running mean/min/max/variance (Welford) without storing samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stats that also keep samples so percentiles can be reported.
class SampledStats {
 public:
  void add(double x) {
    running_.add(x);
    samples_.push_back(x);
  }
  void clear() {
    running_.clear();
    samples_.clear();
  }

  /// Pool another accumulator's samples into this one (so per-host stats
  /// can be aggregated into per-run stats).
  void merge(const SampledStats& other);

  const RunningStats& running() const { return running_; }
  std::size_t count() const { return running_.count(); }
  double mean() const { return running_.mean(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }
  double stddev() const { return running_.stddev(); }
  const std::vector<double>& samples() const { return samples_; }

  /// Percentile by nearest-rank on a sorted copy. `p` is clamped to
  /// [0, 100]; p = 0 reports the minimum and p = 100 the maximum (the
  /// nearest-rank convention is otherwise undefined at the endpoints),
  /// and a single sample is every percentile. Empty stats report 0.
  double percentile(double p) const;

 private:
  RunningStats running_;
  std::vector<double> samples_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for latency distributions in load benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// One-line textual rendering, useful in example programs.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace itb::sim
