// Deterministic random number generation.
//
// Every stochastic choice in the simulator (workload arrivals, destination
// selection, topology generation) draws from an Rng seeded explicitly, so a
// run is reproducible from its seed alone. The generator is SplitMix64 /
// xoshiro256** — tiny, fast, and free of the std::mt19937 cross-platform
// streaming pitfalls.
#pragma once

#include <cstdint>

namespace itb::sim {

/// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Standard normal deviate (Box-Muller, one value per call).
  double next_normal();

  /// Lognormal value with the given distribution mean (not mu) and shape
  /// sigma; sigma = 0 degenerates to the constant `mean`.
  double next_lognormal(double mean, double sigma);

  /// Bounded-Pareto value with the given mean and tail index alpha
  /// (> 0, != 1). The support is [L, cap * L] where cap > 1 bounds the
  /// tail and L is solved so the distribution mean is exactly `mean`.
  double next_bounded_pareto(double mean, double alpha, double cap);

  /// Fork an independent stream (for per-node generators that must not
  /// perturb each other's sequences when one node draws more than another).
  Rng split();

  /// Counter-style decorrelated stream: hash (seed, stream_id) into an
  /// independent generator. Unlike chained split() calls — where stream k
  /// depends on the k-1 streams drawn before it — stream(seed, k) is a pure
  /// function of its arguments, so per-host generators can be created in
  /// any order (or on any worker thread) and still produce the same
  /// sequences.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
};

}  // namespace itb::sim
