// Parallel index runner.
//
// ParallelRunner fans N independent, deterministic work items across a
// small thread pool. Two layers use it:
//   * core::run_sweep_parallel — one Cluster per sweep point in the bench
//     binaries (the original home of this class);
//   * routing::RouteTable — per-source route solves, so an all-pairs table
//     over a thousand-host fabric is computed one source row per task.
// It lives in sim/ (the dependency root) so both layers can reach it; the
// core/parallel.hpp header re-exports everything under itb::core for the
// benches and tests written against the old location.
//
// Determinism contract: a work item must build everything it touches from
// its own index/seed and write only state owned by that index (its sweep
// point's slot, its table row). Under that contract results are
// bit-identical for any job count — threads change only wall-clock, never
// numbers — and jobs == 1 (which runs inline on the calling thread, no
// pool at all) reproduces the serial program exactly. The determinism test
// suite asserts this.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace itb::sim {

class ParallelRunner {
 public:
  /// `jobs` = 0 picks std::thread::hardware_concurrency().
  explicit ParallelRunner(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  /// Run body(0) .. body(count - 1), each exactly once, across up to
  /// jobs() threads; returns when all have finished. jobs() == 1 (or
  /// count == 1) runs inline on the calling thread — no threads are
  /// created, so a serial run is reproduced exactly. If any body throws,
  /// the first exception (in completion order) is rethrown after every
  /// started body has finished; remaining unstarted indices are skipped.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body) const;

 private:
  unsigned jobs_;
};

/// Map `point` over [0, count) with `jobs` threads (0 = hardware
/// concurrency) and return the results in point order.
template <typename Fn>
auto run_sweep_parallel(std::size_t count, Fn&& point, unsigned jobs = 0)
    -> std::vector<decltype(point(std::size_t{}))> {
  using Result = decltype(point(std::size_t{}));
  std::vector<std::optional<Result>> slots(count);
  ParallelRunner(jobs).run_indexed(
      count, [&](std::size_t i) { slots[i].emplace(point(i)); });
  std::vector<Result> out;
  out.reserve(count);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Parse `--jobs N` or `--jobs=N` out of argv; nullopt when absent (bench
/// mains default that to 0 = hardware concurrency). Throws
/// std::invalid_argument on a missing or non-numeric value.
std::optional<unsigned> jobs_flag(int argc, char** argv);

}  // namespace itb::sim
