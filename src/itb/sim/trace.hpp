// Lightweight event tracing.
//
// Models call TRACE-style hooks through a Tracer that is off by default;
// tests and examples can attach a sink to see packet-level activity without
// paying any formatting cost in benchmark runs.
//
// A Tracer fans out to any number of sinks: attach() appends and returns a
// SinkId, so a test sink and a long-lived observer (the flight recorder's
// lifecycle notes, a telemetry tick log) coexist instead of displacing each
// other. The message callable runs once per emit, however many sinks listen.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "itb/sim/time.hpp"

namespace itb::sim {

enum class TraceCategory {
  kLink,
  kSwitch,
  kNic,
  kMcp,
  kDma,
  kGm,
  kMapper,
  kWorkload,
  kTelemetry,  // sampler ticks and registry events
  kFault,      // fault windows, kills, remaps
  kHealth,     // liveness watchdog: stalls, diagnoses, escalations
  kFlight,     // flight recorder lifecycle: armed, snapshots, divergences
};

const char* to_string(TraceCategory c);

/// Fan-out point for trace records. Formatting is deferred: the message is
/// produced by a callable only when at least one sink is attached.
class Tracer {
 public:
  using Sink = std::function<void(Time, TraceCategory, const std::string&)>;
  using SinkId = std::size_t;

  /// Append a sink (existing sinks keep receiving). The returned id detaches
  /// exactly this sink later; ids are not reused within a Tracer's lifetime.
  SinkId attach(Sink sink) {
    sinks_.push_back(std::move(sink));
    if (sinks_.back()) ++active_;
    return sinks_.size() - 1;
  }
  /// Remove one sink by id; unknown / already-detached ids are no-ops.
  void detach(SinkId id) {
    if (id < sinks_.size() && sinks_[id]) {
      sinks_[id] = nullptr;
      --active_;
    }
  }
  /// Remove every sink.
  void detach() {
    sinks_.clear();
    active_ = 0;
  }
  bool enabled() const { return active_ > 0; }
  std::size_t sink_count() const { return active_; }

  template <typename MessageFn>
  void emit(Time t, TraceCategory c, MessageFn&& fn) const {
    if (active_ == 0) return;
    const std::string msg = fn();
    for (const auto& sink : sinks_)
      if (sink) sink(t, c, msg);
  }

  /// A sink that appends "time [category] message" lines to `out`.
  static Sink string_sink(std::string& out);

 private:
  std::vector<Sink> sinks_;
  std::size_t active_ = 0;
};

}  // namespace itb::sim
