// Lightweight event tracing.
//
// Models call TRACE-style hooks through a Tracer that is off by default;
// tests and examples can attach a sink to see packet-level activity without
// paying any formatting cost in benchmark runs.
#pragma once

#include <functional>
#include <string>

#include "itb/sim/time.hpp"

namespace itb::sim {

enum class TraceCategory {
  kLink,
  kSwitch,
  kNic,
  kMcp,
  kDma,
  kGm,
  kMapper,
  kWorkload,
  kTelemetry,  // sampler ticks and registry events
  kFault,      // fault windows, kills, remaps
  kHealth,     // liveness watchdog: stalls, diagnoses, escalations
};

const char* to_string(TraceCategory c);

/// Fan-out point for trace records. Formatting is deferred: the message is
/// produced by a callable only when a sink is attached.
class Tracer {
 public:
  using Sink = std::function<void(Time, TraceCategory, const std::string&)>;

  void attach(Sink sink) { sink_ = std::move(sink); }
  void detach() { sink_ = nullptr; }
  bool enabled() const { return static_cast<bool>(sink_); }

  template <typename MessageFn>
  void emit(Time t, TraceCategory c, MessageFn&& fn) const {
    if (sink_) sink_(t, c, fn());
  }

  /// A sink that appends "time [category] message" lines to `out`.
  static Sink string_sink(std::string& out);

 private:
  Sink sink_;
};

}  // namespace itb::sim
