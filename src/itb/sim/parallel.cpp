#include "itb/sim/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>

namespace itb::sim {

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

void ParallelRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  if (workers <= 1) {
    // Inline serial path: byte-for-byte the behaviour of the pre-pool
    // benches (same thread, same order, no synchronization).
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // stop claiming
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::optional<unsigned> jobs_flag(int argc, char** argv) {
  auto parse = [](std::string_view v) -> unsigned {
    if (v.empty()) throw std::invalid_argument("--jobs: missing value");
    unsigned n = 0;
    for (char c : v) {
      if (c < '0' || c > '9')
        throw std::invalid_argument("--jobs: expected a number, got '" +
                                    std::string(v) + "'");
      n = n * 10 + static_cast<unsigned>(c - '0');
    }
    return n;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--jobs") {
      if (i + 1 >= argc) throw std::invalid_argument("--jobs: missing value");
      return parse(argv[i + 1]);
    }
    if (a.starts_with("--jobs=")) return parse(a.substr(7));
  }
  return std::nullopt;
}

}  // namespace itb::sim
