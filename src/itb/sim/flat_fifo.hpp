// Flat ring-buffer FIFO.
//
// Drop-in replacement for the std::deque<T> queues on the simulator's hot
// paths (NIC SDMA/SRAM stages, ITB pending queue). A deque allocates and
// frees 512-byte map chunks as elements churn; FlatFifo keeps one contiguous
// power-of-two array and wraps indices, so a warmed-up queue never touches
// the heap again and every element access is one cache line of arithmetic.
//
// Growth doubles the array and re-linearises the elements (amortised O(1)
// push); capacity is never given back. erase_value() exists for the rare
// cleanup paths (an aborted reception leaving the ITB pending queue) and
// compacts in FIFO order in O(n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace itb::sim {

template <typename T>
class FlatFifo {
 public:
  FlatFifo() = default;

  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }
  std::size_t capacity() const { return buf_.size(); }

  void push_back(T v) {
    if (size() == buf_.size()) grow();
    buf_[index(tail_++)] = std::move(v);
  }

  T& front() { return buf_[index(head_)]; }
  const T& front() const { return buf_[index(head_)]; }

  void pop_front() { ++head_; }

  /// Move the front element out and pop it in one step.
  T take_front() {
    T v = std::move(front());
    pop_front();
    return v;
  }

  /// i-th element from the front (0 == front()).
  T& operator[](std::size_t i) { return buf_[index(head_ + i)]; }
  const T& operator[](std::size_t i) const { return buf_[index(head_ + i)]; }

  bool contains(const T& v) const {
    for (std::size_t i = 0; i < size(); ++i)
      if ((*this)[i] == v) return true;
    return false;
  }

  /// Remove every element equal to `v`, preserving FIFO order of the rest.
  /// Returns the number removed.
  std::size_t erase_value(const T& v) {
    std::size_t kept = 0, removed = 0;
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      T& e = (*this)[i];
      if (e == v) {
        ++removed;
        continue;
      }
      if (kept != i) (*this)[kept] = std::move(e);
      ++kept;
    }
    tail_ = head_ + kept;
    return removed;
  }

  void clear() { head_ = tail_ = 0; }

 private:
  std::size_t index(std::uint64_t pos) const {
    return static_cast<std::size_t>(pos & (buf_.size() - 1));
  }

  void grow() {
    const std::size_t n = size();
    std::vector<T> next(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < n; ++i) next[i] = std::move((*this)[i]);
    buf_ = std::move(next);
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> buf_;
  std::uint64_t head_ = 0;  // monotonic positions; masked into buf_
  std::uint64_t tail_ = 0;
};

}  // namespace itb::sim
