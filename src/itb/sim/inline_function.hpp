// Small-buffer-optimized move-only callable.
//
// The event engine schedules tens of millions of closures per simulated
// run; std::function heap-allocates every capture larger than its tiny
// internal buffer (two pointers on libstdc++), which puts an allocator
// round trip on the hottest path in the simulator. InlineFunction stores
// captures up to InlineBytes directly inside the object — every scheduling
// closure in this repo (a `this` pointer plus a few scalars, occasionally a
// small vector) fits — and only falls back to the heap for oversized or
// throwing-move callables, so the schedule path is allocation-free.
//
// Move-only on purpose: a scheduled action is consumed exactly once, and
// copyability is what forces std::function to heap-allocate shared state.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace itb::sim {

template <typename Sig, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  InlineFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept {
    if (other.ops_) {
      relocate_from(other);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_) {
        relocate_from(other);
        ops_ = std::exchange(other.ops_, nullptr);
      }
    }
    return *this;
  }

  /// Assign a fresh callable in place — no temporary InlineFunction, no
  /// relocate hop. This is the schedule path: the closure is built directly
  /// inside the event slot it will fire from.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction& operator=(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() noexcept {
    if (ops_) {
      if (ops_->destroy) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Whether the callable lives in the inline buffer (empty functions count
  /// as inline: nothing was allocated). Exposed so tests can assert the
  /// schedule path stays allocation-free.
  bool is_inline() const { return !ops_ || ops_->inline_storage; }

  /// Invoke. Precondition: engaged.
  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the callable into dst from src, then destroy src.
    // nullptr means trivially relocatable: memcpy the whole buffer instead
    // of an indirect call (the hot scheduling closures — a few pointers and
    // scalars — all take this path).
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr means trivially destructible: nothing to do on reset.
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= InlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr bool trivial_inline() {
    return fits_inline<D>() && std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static D* as(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  void relocate_from(InlineFunction& other) noexcept {
    if (other.ops_->relocate)
      other.ops_->relocate(storage_, other.storage_);
    else
      __builtin_memcpy(storage_, other.storage_, InlineBytes);
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s, Args&&... args) -> R {
        return (*as<D>(s))(std::forward<Args>(args)...);
      },
      trivial_inline<D>() ? nullptr
                          : +[](void* dst, void* src) noexcept {
                              D* f = as<D>(src);
                              ::new (dst) D(std::move(*f));
                              f->~D();
                            },
      trivial_inline<D>() ? nullptr
                          : +[](void* s) noexcept { as<D>(s)->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s, Args&&... args) -> R {
        return (**as<D*>(s))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*as<D*>(src));
      },
      [](void* s) noexcept { delete *as<D*>(s); },
      false,
  };

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace itb::sim
