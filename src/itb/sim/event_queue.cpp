#include "itb/sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace itb::sim {

namespace {

constexpr std::uint32_t bucket_of(Time at, std::uint32_t mask) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(at) & mask);
}

}  // namespace

EventQueue::EventQueue()
    : wheel_(kWheelSize, kNoSlot), wheel_tail_(kWheelSize, kNoSlot) {}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].next;
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  if (++s.gen == 0) s.gen = 1;  // generation 0 is reserved for null ids
  s.in_wheel = false;
  s.next = free_head_;
  free_head_ = slot;
}

void EventQueue::push_wheel(std::uint32_t slot) {
  // Append: schedule order is seq order, so each bucket list stays sorted
  // by seq and fire_next can pop the head without scanning.
  Slot& s = slots_[slot];
  const std::uint32_t b = bucket_of(s.at, kWheelSize - 1);
  s.in_wheel = true;
  s.next = kNoSlot;
  s.prev = wheel_tail_[b];
  if (s.prev != kNoSlot)
    slots_[s.prev].next = slot;
  else
    wheel_[b] = slot;
  wheel_tail_[b] = slot;
  occupied_[b >> 6] |= 1ull << (b & 63);
  summary_ |= 1ull << (b >> 6);
}

void EventQueue::push_wheel_ordered(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::uint32_t b = bucket_of(s.at, kWheelSize - 1);
  // A migrated event predates (seq-wise) anything scheduled after the
  // window reached it, so walk from the tail to its sorted spot — almost
  // always the tail itself, or an empty bucket.
  std::uint32_t after = wheel_tail_[b];
  while (after != kNoSlot && slots_[after].seq > s.seq)
    after = slots_[after].prev;
  s.in_wheel = true;
  s.prev = after;
  if (after == kNoSlot) {
    s.next = wheel_[b];
    wheel_[b] = slot;
  } else {
    s.next = slots_[after].next;
    slots_[after].next = slot;
  }
  if (s.next != kNoSlot)
    slots_[s.next].prev = slot;
  else
    wheel_tail_[b] = slot;
  occupied_[b >> 6] |= 1ull << (b & 63);
  summary_ |= 1ull << (b >> 6);
}

void EventQueue::unlink_wheel(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::uint32_t b = bucket_of(s.at, kWheelSize - 1);
  if (s.prev == kNoSlot)
    wheel_[b] = s.next;
  else
    slots_[s.prev].next = s.next;
  if (s.next == kNoSlot)
    wheel_tail_[b] = s.prev;
  else
    slots_[s.next].prev = s.prev;
  if (wheel_[b] == kNoSlot) clear_bucket_bit(b);
}

void EventQueue::clear_bucket_bit(std::uint32_t b) {
  const std::uint32_t w = b >> 6;
  occupied_[w] &= ~(1ull << (b & 63));
  if (occupied_[w] == 0) summary_ &= ~(1ull << w);
}

void EventQueue::migrate() {
  while (!heap_.empty()) {
    if (stale(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), RefLater{});
      heap_.pop_back();
      continue;
    }
    if (heap_.front().at - wbase_ >= kWheelSpan) break;
    const std::uint32_t slot = heap_.front().slot;
    std::pop_heap(heap_.begin(), heap_.end(), RefLater{});
    heap_.pop_back();
    push_wheel_ordered(slot);
  }
}

std::uint32_t EventQueue::find_bucket(Time from) const {
  const std::uint32_t start = bucket_of(from, kWheelSize - 1);
  const std::uint32_t word = start >> 6;
  // The start word, masked to buckets at or after `start`.
  const std::uint64_t head = occupied_[word] & (~0ull << (start & 63));
  if (head)
    return (word << 6) + static_cast<std::uint32_t>(std::countr_zero(head));
  // Words strictly after the start word, then the wrapped tail (words at or
  // before it — re-reading the start word's low bits is the wrapped end of
  // the window). The summary makes each probe a single countr_zero.
  const std::uint64_t after =
      word + 1 < kWordCount ? summary_ & (~0ull << (word + 1)) : 0;
  const std::uint64_t wrapped = after ? after : summary_;
  if (!wrapped) return kWheelSize;
  const auto w = static_cast<std::uint32_t>(std::countr_zero(wrapped));
  return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(occupied_[w]));
}

void EventQueue::enqueue_ready(std::uint32_t slot, Time at) {
  if (at - wbase_ < kWheelSpan) {
    push_wheel(slot);
    ++stats_.wheel_scheduled;
  } else {
    Slot& s = slots_[slot];
    heap_.push_back(Ref{at, s.seq, slot, s.gen});
    std::push_heap(heap_.begin(), heap_.end(), RefLater{});
    ++stats_.spill_scheduled;
  }
  ++live_;
  ++stats_.scheduled;
  if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id.value >> 32);
  const auto gen = static_cast<std::uint32_t>(id.value);
  if (gen == 0 || slot >= slots_.size() || slots_[slot].gen != gen)
    return false;
  // Wheel events unlink eagerly; a spilled event leaves a 24 B reference in
  // the heap that retains nothing (the closure dies here) and is dropped
  // when it surfaces.
  if (slots_[slot].in_wheel) unlink_wheel(slot);
  free_slot(slot);
  --live_;
  ++stats_.cancelled;
  return true;
}

EventQueue::Next EventQueue::fire_next(Time limit) {
  for (;;) {
    if (live_ == 0) return Next::kEmpty;
    migrate();
    const std::uint32_t b = find_bucket(wbase_);
    if (b == kWheelSize) {
      // Wheel completely empty: every pending event is spilled beyond the
      // window. Jump the window to the earliest one (idle-gap skip).
      while (!heap_.empty() && stale(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), RefLater{});
        heap_.pop_back();
      }
      if (heap_.empty()) return Next::kEmpty;
      const Time t = heap_.front().at;
      if (t > limit) return Next::kBeyond;
      wbase_ = t;
      continue;  // migrate() pulls it into the wheel
    }

    // Bucket lists are kept sorted by seq (append on schedule, ordered
    // insert on migrate) and hold a single timestamp, so the head IS the
    // smallest (at, seq) — exact FIFO tie-break in O(1).
    const std::uint32_t best = wheel_[b];
    Slot& chosen = slots_[best];
    if (chosen.at > limit) return Next::kBeyond;
    unlink_wheel(best);
    Action act = std::move(chosen.action);
    now_ = chosen.at;
    wbase_ = chosen.at;
    free_slot(best);
    --live_;
    ++stats_.fired;
    act();  // may schedule or cancel; the queue is consistent by now
    return Next::kFired;
  }
}

bool EventQueue::step() { return fire_next(INT64_MAX) == Next::kFired; }

std::uint64_t EventQueue::run(Time until) {
  std::uint64_t fired = 0;
  while (fire_next(until) == Next::kFired) ++fired;
  // Advance the clock to the horizon so repeated bounded runs make progress
  // even through idle gaps.
  if (until != INT64_MAX && now_ < until) {
    now_ = until;
    if (wbase_ < until) wbase_ = until;
  }
  return fired;
}

std::uint64_t EventQueue::run_events(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

void EventQueue::reset() {
  // Visit only occupied buckets (the bitmap is exact for the wheel).
  for (std::uint32_t w = 0; w < kWordCount; ++w) {
    std::uint64_t bits = occupied_[w];
    while (bits) {
      const auto b =
          (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
      std::uint32_t cur = wheel_[b];
      while (cur != kNoSlot) {
        const std::uint32_t nxt = slots_[cur].next;
        free_slot(cur);  // rewrites `next` as the free-list link
        cur = nxt;
      }
      wheel_[b] = kNoSlot;
      wheel_tail_[b] = kNoSlot;
    }
  }
  for (const Ref& r : heap_)
    if (!stale(r)) free_slot(r.slot);
  heap_.clear();
  occupied_.fill(0);
  summary_ = 0;
  live_ = 0;
  now_ = 0;
  wbase_ = 0;
  next_seq_ = 1;
  // stats_ is cumulative across reset(): it describes the engine's whole
  // lifetime, and benches read it per-cluster anyway.
}

}  // namespace itb::sim
