#include "itb/sim/event_queue.hpp"

#include <stdexcept>

namespace itb::sim {

EventId EventQueue::schedule_at(Time at, Action action) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(action)});
  live_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) { return live_.erase(id.value) > 0; }

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (live_.erase(top.seq) == 0) continue;  // was cancelled
    now_ = top.at;
    top.action();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(Time until) {
  std::uint64_t fired = 0;
  while (!heap_.empty()) {
    // Drop cancelled entries before looking at the horizon so a dead entry
    // inside the window can't trick step() into firing one beyond it.
    if (!live_.contains(heap_.top().seq)) {
      heap_.pop();
      continue;
    }
    if (heap_.top().at > until) break;
    if (step()) ++fired;
  }
  // Advance the clock to the horizon so repeated bounded runs make progress
  // even through idle gaps.
  if (until != INT64_MAX && now_ < until) now_ = until;
  return fired;
}

std::uint64_t EventQueue::run_events(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

void EventQueue::reset() {
  heap_ = {};
  live_.clear();
  now_ = 0;
  next_seq_ = 1;
}

}  // namespace itb::sim
