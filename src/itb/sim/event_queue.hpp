// Discrete-event engine.
//
// A single EventQueue drives every model in the simulator: switches, links,
// DMA engines and the MCP interpreter all schedule closures at absolute
// simulated times. Events at equal timestamps fire in scheduling order
// (FIFO), which keeps runs deterministic for a fixed seed.
//
// Internals (see DESIGN.md "Event engine"):
//   * Closures are InlineFunction<void()> — captures up to 48 B live inside
//     the slot, so the schedule path makes no heap allocation.
//   * Every pending event owns a slot in a pooled free list; the EventId
//     handed back packs {slot, generation}. cancel() checks the generation,
//     destroys the closure immediately and recycles the slot — O(1), and no
//     cancelled capture outlives the cancel call.
//   * Timing is two-tier: a bucketed near-horizon wheel (kWheelSpan ns of
//     1 ns buckets, two-level occupancy bitmap for O(1) earliest-bucket
//     lookup) absorbs the byte-time/cycle-cost events that dominate
//     traffic, and a binary heap of plain {time, seq, slot, gen}
//     references spills the far timers (retransmit timeouts, sampler
//     ticks). Wheel buckets are intrusive doubly-linked lists threaded
//     through the slots — no per-bucket allocation, and a cancelled wheel
//     event unlinks eagerly. A spilled event cancelled before it migrates
//     leaves a 24 B POD reference behind that retains nothing and is
//     dropped when it surfaces.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "itb/sim/inline_function.hpp"
#include "itb/sim/time.hpp"

namespace itb::sim {

/// Opaque handle used to cancel a scheduled event. Default-constructed ids
/// are null (cancel() on them returns false).
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Timed closure scheduler with a deterministic FIFO tie-break.
class EventQueue {
 public:
  using Action = InlineFunction<void()>;

  /// Engine self-observation counters (exported through telemetry as
  /// sim.events_fired / sim.events_cancelled / sim.peak_pending).
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t peak_pending = 0;
    /// Insertions into the near-horizon wheel vs the far-timer spill heap.
    std::uint64_t wheel_scheduled = 0;
    std::uint64_t spill_scheduled = 0;
  };

  EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time (time of the most recently fired event).
  Time now() const { return now_; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  bool empty() const { return pending() == 0; }

  /// Schedule `action` to run at absolute time `at` (must be >= now()).
  /// Templated so the closure is constructed directly inside its event slot
  /// — no intermediate Action object, no relocate on the schedule path.
  template <typename F>
  EventId schedule_at(Time at, F&& action) {
    if (at < now_)
      throw std::invalid_argument("EventQueue: scheduling in the past");
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.at = at;
    s.seq = next_seq_++;
    s.action = std::forward<F>(action);
    enqueue_ready(slot, at);
    return EventId{(static_cast<std::uint64_t>(slot) << 32) | s.gen};
  }

  /// Schedule `action` to run `delay` ns from now.
  template <typename F>
  EventId schedule_in(Duration delay, F&& action) {
    return schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Cancel a previously scheduled event. Returns false if it already fired
  /// or was already cancelled. The closure (and its captures) is destroyed
  /// before this returns.
  bool cancel(EventId id);

  /// Fire the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` still fire). Returns the number of events fired.
  std::uint64_t run(Time until = INT64_MAX);

  /// Run at most `max_events` events. Returns the number fired.
  std::uint64_t run_events(std::uint64_t max_events);

  /// Drop every pending event and reset the clock to zero. Outstanding
  /// EventIds are invalidated (their slots' generations advance).
  void reset();

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kWheelBits = 12;
  static constexpr std::uint32_t kWheelSize = 1u << kWheelBits;  // buckets
  static constexpr Time kWheelSpan = kWheelSize;                 // 1 ns each
  static constexpr std::uint32_t kWordCount = kWheelSize / 64;
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  /// Owner of one pending event. `gen` advances every time the slot is
  /// freed, so heap references and EventIds from a previous occupancy miss.
  /// While in the wheel, `next`/`prev` thread the slot into its bucket's
  /// doubly-linked list; while free, `next` is the free-list link.
  struct Slot {
    Action action;
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    std::uint32_t next = kNoSlot;
    std::uint32_t prev = kNoSlot;
    bool in_wheel = false;
  };

  /// POD reference stored in the spill heap; stale iff gen mismatches.
  struct Ref {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct RefLater {
    bool operator()(const Ref& a, const Ref& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  enum class Next : std::uint8_t { kFired, kBeyond, kEmpty };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Second half of schedule_at: file the freshly filled slot into the
  /// wheel or the spill heap and update the bookkeeping.
  void enqueue_ready(std::uint32_t slot, Time at);
  bool stale(const Ref& r) const { return slots_[r.slot].gen != r.gen; }

  void push_wheel(std::uint32_t slot);
  /// push_wheel for migrated spill refs: inserts by (at, seq) so the bucket
  /// list stays FIFO-sorted even when an older (smaller-seq) spilled event
  /// joins a bucket that already has same-time events.
  void push_wheel_ordered(std::uint32_t slot);
  void unlink_wheel(std::uint32_t slot);
  void clear_bucket_bit(std::uint32_t b);
  /// Move spilled refs whose time entered the wheel window into the wheel.
  void migrate();
  /// First occupied bucket at or after absolute time `from` within the
  /// window [wbase_, wbase_ + kWheelSpan); kWheelSize when none.
  std::uint32_t find_bucket(Time from) const;

  /// Fire the earliest pending event if its time is <= limit.
  Next fire_next(Time limit);

  Time now_ = 0;
  /// Wheel window base: every wheel event's time is in [wbase_, wbase_ +
  /// kWheelSpan). Advances with the clock (and jumps over idle gaps).
  Time wbase_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;

  std::vector<std::uint32_t> wheel_;       // kWheelSize bucket list heads
  /// Bucket list tails: push_wheel appends, so each bucket stays sorted by
  /// seq and fire_next pops the head in O(1) — no min-scan. (A bucket only
  /// ever holds one timestamp: the wheel window spans exactly kWheelSize ns.)
  std::vector<std::uint32_t> wheel_tail_;
  /// Two-level occupancy bitmap: occupied_[w] has one bit per bucket,
  /// summary_ has one bit per word. find_bucket() is O(1): at most three
  /// word reads instead of a walk over empty buckets. Wheel bits are
  /// exact (wheel events unlink eagerly on cancel).
  std::array<std::uint64_t, kWordCount> occupied_{};
  std::uint64_t summary_ = 0;
  std::vector<Ref> heap_;                  // far-timer spill (RefLater order)

  Stats stats_;
};

}  // namespace itb::sim
