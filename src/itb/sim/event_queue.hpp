// Discrete-event engine.
//
// A single EventQueue drives every model in the simulator: switches, links,
// DMA engines and the MCP interpreter all schedule closures at absolute
// simulated times. Events at equal timestamps fire in scheduling order
// (FIFO), which keeps runs deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "itb/sim/time.hpp"

namespace itb::sim {

/// Opaque handle used to cancel a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timed closures with a deterministic tie-break.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time (time of the most recently fired event).
  Time now() const { return now_; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_.size(); }

  bool empty() const { return pending() == 0; }

  /// Schedule `action` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Action action);

  /// Schedule `action` to run `delay` ns from now.
  EventId schedule_in(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a previously scheduled event. Returns false if it already fired
  /// or was already cancelled.
  bool cancel(EventId id);

  /// Fire the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` still fire). Returns the number of events fired.
  std::uint64_t run(Time until = INT64_MAX);

  /// Run at most `max_events` events. Returns the number fired.
  std::uint64_t run_events(std::uint64_t max_events);

  /// Drop every pending event and reset the clock to zero.
  void reset();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // FIFO tie-break and cancellation key
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  /// Seqs that are scheduled and not cancelled. Cancellation is lazy: the
  /// heap entry stays and is skipped when it surfaces.
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace itb::sim
