// Simulated-time primitives.
//
// The whole simulator runs on an integer nanosecond clock. Nanoseconds are
// fine-grained enough to express LANai cycles (30 ns at 33 MHz) and link
// byte times (6.25 ns/byte rounds to picosecond-free fixed point by scaling
// byte counts, see bytes_time()).
#pragma once

#include <cstdint>

namespace itb::sim {

/// Simulated time in nanoseconds.
using Time = std::int64_t;

/// A duration in nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;
inline constexpr Duration kNs = 1;
inline constexpr Duration kUs = 1000;
inline constexpr Duration kMs = 1000 * 1000;

/// Transmission time of `bytes` at `ns_per_256bytes / 256` ns per byte.
///
/// Link rates rarely divide 1 ns evenly (Myrinet: 6.25 ns/byte), so rates are
/// expressed as nanoseconds per 256 bytes and the division happens once per
/// transfer, keeping the clock integral without cumulative rounding error.
constexpr Duration scaled_bytes_time(std::int64_t bytes, std::int64_t ns_per_256bytes) {
  return (bytes * ns_per_256bytes + 255) / 256;
}

}  // namespace itb::sim
