#include "itb/sim/trace.hpp"

namespace itb::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kLink: return "link";
    case TraceCategory::kSwitch: return "switch";
    case TraceCategory::kNic: return "nic";
    case TraceCategory::kMcp: return "mcp";
    case TraceCategory::kDma: return "dma";
    case TraceCategory::kGm: return "gm";
    case TraceCategory::kMapper: return "mapper";
    case TraceCategory::kWorkload: return "workload";
    case TraceCategory::kTelemetry: return "telemetry";
    case TraceCategory::kFault: return "fault";
    case TraceCategory::kHealth: return "health";
    case TraceCategory::kFlight: return "flight";
  }
  return "?";
}

Tracer::Sink Tracer::string_sink(std::string& out) {
  return [&out](Time t, TraceCategory c, const std::string& msg) {
    out += std::to_string(t) + " [" + to_string(c) + "] " + msg + "\n";
  };
}

}  // namespace itb::sim
