// Debug allocation counting.
//
// The zero-allocation hot-path work (DESIGN.md §6i) needs an oracle: a way
// for tests and benches to assert that a steady-state simulation loop makes
// NO heap allocations. This hook provides it by replacing the global
// operator new/delete with counting forwarders to malloc/free.
//
// Linking behavior is deliberate: the replacement operators live in
// alloc_hook.cpp next to the counter accessors, so a binary only gets the
// counting allocator if it references one of the functions below (the
// archive member is pulled in as a unit). Binaries that never ask for a
// count keep the stock allocator.
//
// Under ASan/TSan/MSan the replacement is compiled out entirely — the
// sanitizer runtimes own the allocator there — and alloc_counting_available()
// reports false so tests can skip their zero-allocation asserts instead of
// reading counters frozen at zero.
//
// Counting is a single relaxed atomic increment per allocation: cheap enough
// to leave on, exact enough to assert `== 0` against.
#pragma once

#include <cstdint>

namespace itb::sim {

/// True when the counting operator new/delete replacement is compiled in
/// (false under sanitizers). When false every counter below stays zero.
bool alloc_counting_available();

/// Heap allocations / deallocations since process start (all threads).
std::uint64_t total_allocations();
std::uint64_t total_deallocations();

/// Declare "warmup is over": remembers the current allocation count as the
/// steady-state mark. Benches call this after their warmup phase; the
/// sim.allocations_steady_state metric and allocations_since_mark() then
/// report growth past the mark only.
void mark_steady_state();
bool steady_state_marked();

/// Allocations since mark_steady_state() — the number that must be zero in
/// an allocation-free steady state. Zero when no mark was set.
std::uint64_t allocations_since_mark();

}  // namespace itb::sim
