#include "itb/sim/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// The sanitizer runtimes intercept malloc and provide their own operator
// new/delete with allocation metadata (redzones, leak tracking); replacing
// them would fight the runtime. Detect every spelling GCC and Clang use.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ITB_ALLOC_HOOK_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ITB_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace itb::sim {
namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};
std::atomic<std::uint64_t> g_mark{0};
std::atomic<bool> g_marked{false};

}  // namespace

bool alloc_counting_available() {
#ifdef ITB_ALLOC_HOOK_DISABLED
  return false;
#else
  return true;
#endif
}

std::uint64_t total_allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t total_deallocations() {
  return g_deallocs.load(std::memory_order_relaxed);
}

void mark_steady_state() {
  g_mark.store(total_allocations(), std::memory_order_relaxed);
  g_marked.store(true, std::memory_order_relaxed);
}

bool steady_state_marked() {
  return g_marked.load(std::memory_order_relaxed);
}

std::uint64_t allocations_since_mark() {
  if (!steady_state_marked()) return 0;
  return total_allocations() - g_mark.load(std::memory_order_relaxed);
}

}  // namespace itb::sim

#ifndef ITB_ALLOC_HOOK_DISABLED

namespace {

void* counted_alloc(std::size_t size) noexcept {
  itb::sim::g_allocs.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  itb::sim::g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}

void counted_free(void* p) noexcept {
  if (!p) return;
  itb::sim::g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

[[noreturn]] void throw_bad_alloc() { throw std::bad_alloc(); }

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw_bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw_bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw_bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw_bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // ITB_ALLOC_HOOK_DISABLED
