#include "itb/host/pci.hpp"

namespace itb::host {

void PciBus::dma(std::int64_t bytes, std::function<void()> done) {
  pending_.push_back(Pending{bytes, std::move(done)});
  if (!busy_) start_next();
}

void PciBus::start_next() {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending job = std::move(pending_.front());
  pending_.pop_front();
  queue_.schedule_in(timing_.transfer_time(job.bytes),
                     [this, done = std::move(job.done)] {
                       ++completed_;
                       done();
                       start_next();
                     });
}

}  // namespace itb::host
