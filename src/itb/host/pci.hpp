// Host I/O bus (PCI) model.
//
// The LANai's single host-DMA engine moves data between host memory and NIC
// SRAM across PCI. Transfers serialize on the bus: the paper's NICs are
// 64-bit/66 MHz parts (528 MB/s peak) on PIII hosts; the 32-bit/33 MHz
// fallback (132 MB/s) is provided for sensitivity studies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "itb/sim/event_queue.hpp"
#include "itb/sim/time.hpp"

namespace itb::host {

struct PciTiming {
  /// Effective transfer rate as ns per 256 bytes.
  /// 64-bit/66 MHz: ~528 MB/s sustained => ~485 ns / 256 B.
  std::int64_t ns_per_256bytes = 485;
  /// Per-DMA setup: descriptor fetch, bus acquisition, completion status.
  sim::Duration setup_ns = 600;

  static PciTiming pci64_66() { return PciTiming{485, 600}; }
  static PciTiming pci32_33() { return PciTiming{1940, 900}; }

  sim::Duration transfer_time(std::int64_t bytes) const {
    return setup_ns + sim::scaled_bytes_time(bytes, ns_per_256bytes);
  }
};

/// One host's PCI bus / host-DMA engine: transfers run one at a time in
/// FIFO order, each costing setup + bytes at the bus rate.
class PciBus {
 public:
  PciBus(sim::EventQueue& queue, PciTiming timing)
      : queue_(queue), timing_(timing) {}

  /// Enqueue a DMA of `bytes`; `done` fires at its completion time.
  void dma(std::int64_t bytes, std::function<void()> done);

  bool busy() const { return busy_; }
  const PciTiming& timing() const { return timing_; }
  std::uint64_t completed() const { return completed_; }

 private:
  struct Pending {
    std::int64_t bytes;
    std::function<void()> done;
  };

  void start_next();

  sim::EventQueue& queue_;
  PciTiming timing_;
  std::deque<Pending> pending_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace itb::host
