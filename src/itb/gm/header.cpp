#include "itb/gm/header.hpp"

namespace itb::gm {
namespace {

void put16(packet::Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
void put32(packet::Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t i) {
  return static_cast<std::uint16_t>((b[i] << 8) | b[i + 1]);
}
std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t i) {
  return (static_cast<std::uint32_t>(b[i]) << 24) |
         (static_cast<std::uint32_t>(b[i + 1]) << 16) |
         (static_cast<std::uint32_t>(b[i + 2]) << 8) |
         static_cast<std::uint32_t>(b[i + 3]);
}

}  // namespace

packet::Bytes encode(const GmHeader& h, std::span<const std::uint8_t> data) {
  packet::Bytes out;
  out.reserve(GmHeader::kSize + data.size());
  out.push_back(static_cast<std::uint8_t>(h.subtype));
  put16(out, h.src_host);
  put16(out, h.dst_host);
  put32(out, h.seq);
  put32(out, h.msg_id);
  put32(out, h.frag_offset);
  put32(out, h.msg_len);
  put16(out, static_cast<std::uint16_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<Decoded> decode(std::span<const std::uint8_t> payload) {
  if (payload.size() < GmHeader::kSize) return std::nullopt;
  Decoded d;
  const auto st = payload[0];
  if (st != static_cast<std::uint8_t>(Subtype::kData) &&
      st != static_cast<std::uint8_t>(Subtype::kAck))
    return std::nullopt;
  d.header.subtype = static_cast<Subtype>(st);
  d.header.src_host = get16(payload, 1);
  d.header.dst_host = get16(payload, 3);
  d.header.seq = get32(payload, 5);
  d.header.msg_id = get32(payload, 9);
  d.header.frag_offset = get32(payload, 13);
  d.header.msg_len = get32(payload, 17);
  d.header.frag_len = get16(payload, 21);
  if (payload.size() != GmHeader::kSize + d.header.frag_len)
    return std::nullopt;
  d.data.assign(payload.begin() + GmHeader::kSize, payload.end());
  return d;
}

}  // namespace itb::gm
