// GM port: the user-level message interface (§3).
//
// A GmPort layers GM's advertised guarantees over one NIC:
//   * token-flow-controlled sends (a bounded number of outstanding
//     messages per port),
//   * fragmentation of messages into MTU-sized packets and reassembly,
//   * reliable, ordered delivery per connection via go-back-N: cumulative
//     acknowledgements, a retransmission timer, duplicate suppression.
//
// Sequence numbers are compared with serial-number (wrap-safe) arithmetic,
// so long soaks survive the 2^32 wraparound. Retransmission is bounded:
// after `max_retries` barren timeouts the connection is declared dead, its
// pending messages fail, their tokens return, and the send-failure handler
// fires — a permanently dead peer degrades gracefully instead of
// retransmitting forever.
//
// Host-side software costs (the gm_send()/callback path on the Pentium III)
// are charged as fixed delays from GmConfig.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "itb/gm/header.hpp"
#include "itb/nic/nic.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::gm {

struct GmConfig {
  /// User bytes per packet: NIC MTU minus the GM header.
  std::size_t mtu_payload = nic::Nic::kMtu - GmHeader::kSize;
  /// Maximum messages a port may have outstanding (send tokens).
  int send_tokens = 16;
  /// Go-back-N window per connection, in packets.
  int window = 8;
  sim::Duration retransmit_timeout = 2 * sim::kMs;
  /// Barren retransmission rounds tolerated before a connection is declared
  /// dead (<= 0: retry forever, the pre-fix behaviour).
  int max_retries = 16;
  /// First sequence number of every connection (sender and receiver agree
  /// by configuration, as both ends share one GmConfig). Exposed so tests
  /// can start just below the 2^32 wraparound.
  std::uint32_t initial_seq = 1;
  /// gm_send() host-side cost before the NIC sees the descriptor.
  sim::Duration host_send_overhead_ns = 900;
  /// Receive-callback dispatch cost on the host.
  sim::Duration host_recv_overhead_ns = 600;
};

struct GmStats {
  std::uint64_t messages_sent = 0;       // user messages accepted
  std::uint64_t messages_delivered = 0;  // handed to the receive handler
  std::uint64_t packets_data = 0;        // data packets posted (incl. rexmit)
  std::uint64_t packets_ack = 0;         // acks posted
  std::uint64_t retransmissions = 0;     // data packets re-posted on timeout
  std::uint64_t duplicates = 0;          // duplicate data packets discarded
  std::uint64_t out_of_order = 0;        // gap packets discarded (go-back-N)
  std::uint64_t send_failures = 0;       // connections declared dead
  std::uint64_t messages_failed = 0;     // messages failed by a dead peer
  std::uint64_t packets_unroutable = 0;  // posts skipped: no route (remap gap)
};

class GmPort final : public nic::NicClient {
 public:
  using RecvHandler =
      std::function<void(sim::Time, std::uint16_t src, packet::Bytes message)>;
  using SendCallback = std::function<void(sim::Time)>;
  /// (now, dst, failed_messages): the connection to `dst` was declared dead
  /// after max_retries; its pending messages will never be delivered.
  using SendFailureHandler =
      std::function<void(sim::Time, std::uint16_t dst, std::uint32_t failed)>;

  GmPort(sim::EventQueue& queue, sim::Tracer& tracer, nic::Nic& nic,
         const GmConfig& config = {});

  void set_receive_handler(RecvHandler handler) { handler_ = std::move(handler); }
  void set_send_failure_handler(SendFailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  /// Send `message` to `dst`. Returns false when no send token is
  /// available or the connection to `dst` has been declared dead.
  /// `on_sent` fires when every fragment has been acknowledged (the token
  /// returns to the caller); it never fires for a failed message.
  bool send(std::uint16_t dst, packet::Bytes message, SendCallback on_sent = {});

  /// Did the connection to `dst` fail (max_retries exceeded)?
  bool peer_failed(std::uint16_t dst) const;

  /// Forget all connection state toward `dst` (both directions), reviving a
  /// dead connection. Sequence numbers restart at initial_seq, so the peer
  /// must reset symmetrically — the moral equivalent of GM re-opening a
  /// port pair after the mapper re-admits a host.
  void reset_connection(std::uint16_t dst);

  int tokens_available() const { return config_.send_tokens - tokens_in_use_; }
  int tokens_in_use() const { return tokens_in_use_; }
  const GmStats& stats() const { return stats_; }
  std::uint16_t host() const { return nic_.host(); }

  /// Publish the GmStats counters and token occupancy under component "gm"
  /// with this port's host label (callback-backed).
  void register_metrics(telemetry::MetricRegistry& registry) const;

  // --- nic::NicClient ----------------------------------------------------
  void on_message(sim::Time t, packet::PacketType type,
                  packet::Bytes payload) override;
  void on_send_complete(sim::Time t, std::uint64_t token) override;

 private:
  struct Fragment {
    GmHeader header;
    packet::Bytes data;
  };
  struct PendingMessage {
    std::uint32_t first_seq = 0;  // seq of its first fragment
    std::uint32_t last_seq = 0;
    SendCallback on_sent;
  };
  /// Per-destination sender state (one GM "connection" each way).
  struct TxConn {
    std::uint32_t next_seq = 1;     // next sequence number to assign
    std::uint32_t highest_acked = 0;
    std::deque<Fragment> unsent;    // waiting for window space
    std::deque<Fragment> unacked;   // posted, not yet acknowledged
    std::deque<PendingMessage> messages;
    sim::EventId timer{};
    bool timer_armed = false;
    /// Exponential backoff exponent: doubles the timeout after every
    /// barren timer expiry so congested acks don't trigger go-back-N
    /// storms; reset whenever an acknowledgement makes progress.
    int backoff = 0;
    /// Declared dead after max_retries barren timeouts; sends fail fast.
    bool dead = false;
  };
  /// Per-source receiver state.
  struct RxConn {
    std::uint32_t expected_seq = 1;
    /// Reassembly of the in-progress message (ordered delivery means at
    /// most one message is ever partially received per connection).
    std::uint32_t msg_id = 0;
    packet::Bytes buffer;
    std::size_t received_bytes = 0;
  };

  TxConn& tx_conn(std::uint16_t dst);
  RxConn& rx_conn(std::uint16_t src);
  void pump(std::uint16_t dst);
  void post_fragment(const Fragment& f);
  void send_ack(std::uint16_t dst, std::uint32_t cum_seq);
  void arm_timer(std::uint16_t dst);
  void on_timeout(std::uint16_t dst);
  void fail_connection(std::uint16_t dst);
  void handle_data(sim::Time t, const GmHeader& h, packet::Bytes data);
  void handle_ack(const GmHeader& h);

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  nic::Nic& nic_;
  GmConfig config_;
  GmStats stats_;
  RecvHandler handler_;
  SendFailureHandler failure_handler_;
  int tokens_in_use_ = 0;
  std::uint32_t next_msg_id_ = 1;
  std::map<std::uint16_t, TxConn> tx_;
  std::map<std::uint16_t, RxConn> rx_;
};

}  // namespace itb::gm
