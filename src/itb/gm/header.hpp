// GM message header carried inside the Myrinet packet payload.
//
// GM provides reliable, ordered delivery over an unreliable wire (§3). Our
// header carries what go-back-N needs: a per-connection sequence number,
// message framing for fragmentation/reassembly, and a subtype separating
// data from acknowledgements.
#pragma once

#include <cstdint>
#include <optional>

#include "itb/packet/format.hpp"

namespace itb::gm {

enum class Subtype : std::uint8_t { kData = 1, kAck = 2 };

struct GmHeader {
  Subtype subtype = Subtype::kData;
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;
  /// Data: this fragment's sequence number. Ack: cumulative — every
  /// sequence up to and including this one is acknowledged.
  std::uint32_t seq = 0;
  std::uint32_t msg_id = 0;       // data only
  std::uint32_t frag_offset = 0;  // byte offset of this fragment
  std::uint32_t msg_len = 0;      // total message length
  std::uint16_t frag_len = 0;     // bytes of user data in this packet

  static constexpr std::size_t kSize = 1 + 2 + 2 + 4 + 4 + 4 + 4 + 2;
};

/// Serialize the header followed by `data` (frag_len bytes) into a packet
/// payload buffer.
packet::Bytes encode(const GmHeader& h, std::span<const std::uint8_t> data);

/// Parse a payload produced by encode(). Returns nullopt on malformed
/// input (short buffer, inconsistent frag_len, unknown subtype).
struct Decoded {
  GmHeader header;
  packet::Bytes data;
};
std::optional<Decoded> decode(std::span<const std::uint8_t> payload);

}  // namespace itb::gm
