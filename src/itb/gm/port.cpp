#include "itb/gm/port.hpp"

#include <algorithm>
#include <stdexcept>

namespace itb::gm {
namespace {

// Serial-number (RFC 1982-style) comparison: wrap-safe as long as the live
// sequence numbers of a connection span less than 2^31, which go-back-N
// windows guarantee by orders of magnitude. Plain <= breaks the first time
// a long soak crosses the 2^32 boundary.
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace

GmPort::GmPort(sim::EventQueue& queue, sim::Tracer& tracer, nic::Nic& nic,
               const GmConfig& config)
    : queue_(queue), tracer_(tracer), nic_(nic), config_(config) {
  nic_.set_client(this);
}

GmPort::TxConn& GmPort::tx_conn(std::uint16_t dst) {
  auto [it, fresh] = tx_.try_emplace(dst);
  if (fresh) {
    it->second.next_seq = config_.initial_seq;
    it->second.highest_acked = config_.initial_seq - 1;
  }
  return it->second;
}

GmPort::RxConn& GmPort::rx_conn(std::uint16_t src) {
  auto [it, fresh] = rx_.try_emplace(src);
  if (fresh) it->second.expected_seq = config_.initial_seq;
  return it->second;
}

bool GmPort::send(std::uint16_t dst, packet::Bytes message,
                  SendCallback on_sent) {
  if (tokens_in_use_ >= config_.send_tokens) return false;
  if (message.empty()) throw std::invalid_argument("empty message");
  TxConn& conn = tx_conn(dst);
  if (conn.dead) return false;  // reset_connection() revives
  ++tokens_in_use_;
  ++stats_.messages_sent;

  const std::uint32_t msg_id = next_msg_id_++;
  const auto msg_len = static_cast<std::uint32_t>(message.size());
  if (auto* fr = nic_.flight_recorder())
    fr->record(flight::EventType::kGmSend, queue_.now(), msg_id, dst, msg_len);

  PendingMessage pm;
  pm.on_sent = std::move(on_sent);
  pm.first_seq = conn.next_seq;

  // Fragment into MTU-sized packets, consecutive sequence numbers.
  std::size_t offset = 0;
  while (offset < message.size()) {
    const std::size_t n = std::min(config_.mtu_payload, message.size() - offset);
    Fragment f;
    f.header.subtype = Subtype::kData;
    f.header.src_host = nic_.host();
    f.header.dst_host = dst;
    f.header.seq = conn.next_seq++;
    f.header.msg_id = msg_id;
    f.header.frag_offset = static_cast<std::uint32_t>(offset);
    f.header.msg_len = msg_len;
    f.data.assign(message.begin() + static_cast<std::ptrdiff_t>(offset),
                  message.begin() + static_cast<std::ptrdiff_t>(offset + n));
    conn.unsent.push_back(std::move(f));
    offset += n;
  }
  pm.last_seq = conn.next_seq - 1;
  conn.messages.push_back(std::move(pm));

  // gm_send() host-side cost, then the NIC sees the descriptors.
  queue_.schedule_in(config_.host_send_overhead_ns, [this, dst] { pump(dst); });
  return true;
}

bool GmPort::peer_failed(std::uint16_t dst) const {
  auto it = tx_.find(dst);
  return it != tx_.end() && it->second.dead;
}

void GmPort::reset_connection(std::uint16_t dst) {
  auto it = tx_.find(dst);
  if (it != tx_.end()) {
    TxConn& conn = it->second;
    if (conn.timer_armed) queue_.cancel(conn.timer);
    tokens_in_use_ -= static_cast<int>(conn.messages.size());
    tx_.erase(it);
  }
  rx_.erase(dst);
}

void GmPort::pump(std::uint16_t dst) {
  TxConn& conn = tx_conn(dst);
  if (conn.dead) return;
  while (!conn.unsent.empty() &&
         conn.unacked.size() < static_cast<std::size_t>(config_.window)) {
    Fragment f = std::move(conn.unsent.front());
    conn.unsent.pop_front();
    post_fragment(f);
    conn.unacked.push_back(std::move(f));
  }
  if (!conn.unacked.empty()) arm_timer(dst);
}

void GmPort::post_fragment(const Fragment& f) {
  if (!nic_.has_route(f.header.dst_host)) {
    // Mid-remap the table may have no route yet; the retransmission timer
    // retries once the mapper downloads a fresh one.
    ++stats_.packets_unroutable;
    return;
  }
  ++stats_.packets_data;
  nic_.post_send(f.header.dst_host, encode(f.header, f.data));
}

void GmPort::send_ack(std::uint16_t dst, std::uint32_t cum_seq) {
  if (!nic_.has_route(dst)) {
    ++stats_.packets_unroutable;  // sender retransmits; we re-ack then
    return;
  }
  GmHeader h;
  h.subtype = Subtype::kAck;
  h.src_host = nic_.host();
  h.dst_host = dst;
  h.seq = cum_seq;
  ++stats_.packets_ack;
  nic_.post_send(dst, encode(h, {}));
}

void GmPort::arm_timer(std::uint16_t dst) {
  TxConn& conn = tx_[dst];
  if (conn.timer_armed) queue_.cancel(conn.timer);
  const int shift = std::min(conn.backoff, 6);
  conn.timer = queue_.schedule_in(config_.retransmit_timeout << shift,
                                  [this, dst] { on_timeout(dst); });
  conn.timer_armed = true;
}

void GmPort::on_timeout(std::uint16_t dst) {
  TxConn& conn = tx_[dst];
  conn.timer_armed = false;
  if (conn.unacked.empty()) return;
  if (config_.max_retries > 0 && conn.backoff >= config_.max_retries) {
    fail_connection(dst);
    return;
  }
  // Go-back-N: re-post everything outstanding.
  tracer_.emit(queue_.now(), sim::TraceCategory::kGm, [&] {
    return "h" + std::to_string(nic_.host()) + " retransmit " +
           std::to_string(conn.unacked.size()) + " pkts to h" +
           std::to_string(dst);
  });
  for (const Fragment& f : conn.unacked) {
    ++stats_.retransmissions;
    post_fragment(f);
  }
  ++conn.backoff;
  arm_timer(dst);
}

void GmPort::fail_connection(std::uint16_t dst) {
  TxConn& conn = tx_[dst];
  conn.dead = true;
  if (conn.timer_armed) {
    queue_.cancel(conn.timer);
    conn.timer_armed = false;
  }
  conn.unsent.clear();
  conn.unacked.clear();
  std::deque<PendingMessage> failed;
  failed.swap(conn.messages);
  const auto n = static_cast<std::uint32_t>(failed.size());
  tokens_in_use_ -= static_cast<int>(n);  // tokens return to the caller
  ++stats_.send_failures;
  stats_.messages_failed += n;
  tracer_.emit(queue_.now(), sim::TraceCategory::kGm, [&] {
    return "h" + std::to_string(nic_.host()) + " gives up on h" +
           std::to_string(dst) + " after " + std::to_string(conn.backoff) +
           " retries, failing " + std::to_string(n) + " messages";
  });
  if (failure_handler_) failure_handler_(queue_.now(), dst, n);
}

void GmPort::on_message(sim::Time t, packet::PacketType, packet::Bytes payload) {
  auto decoded = decode(payload);
  if (!decoded) return;  // corrupted: dropped, the sender will retransmit
  if (decoded->header.dst_host != nic_.host()) return;  // misrouted
  if (decoded->header.subtype == Subtype::kAck) {
    handle_ack(decoded->header);
  } else {
    handle_data(t, decoded->header, std::move(decoded->data));
  }
}

void GmPort::handle_ack(const GmHeader& h) {
  auto it = tx_.find(h.src_host);
  if (it == tx_.end()) return;
  TxConn& conn = it->second;
  if (conn.dead) return;  // late ack from a peer already written off
  if (seq_leq(h.seq, conn.highest_acked)) return;  // stale
  conn.highest_acked = h.seq;
  conn.backoff = 0;  // progress: restore the base timeout
  while (!conn.unacked.empty() && seq_leq(conn.unacked.front().header.seq, h.seq))
    conn.unacked.pop_front();

  // Complete messages whose last fragment is now acknowledged.
  while (!conn.messages.empty() && seq_leq(conn.messages.front().last_seq, h.seq)) {
    PendingMessage pm = std::move(conn.messages.front());
    conn.messages.pop_front();
    --tokens_in_use_;
    if (pm.on_sent) pm.on_sent(queue_.now());
  }

  if (conn.unacked.empty() && conn.timer_armed) {
    queue_.cancel(conn.timer);
    conn.timer_armed = false;
  }
  pump(h.src_host);
}

void GmPort::handle_data(sim::Time, const GmHeader& h, packet::Bytes data) {
  RxConn& conn = rx_conn(h.src_host);
  if (seq_lt(h.seq, conn.expected_seq)) {
    // Duplicate of something already delivered: re-ack so the sender
    // advances past a lost acknowledgement.
    ++stats_.duplicates;
    send_ack(h.src_host, conn.expected_seq - 1);
    return;
  }
  if (h.seq != conn.expected_seq) {
    // Gap: go-back-N receivers drop out-of-order packets and re-ack the
    // last in-order one.
    ++stats_.out_of_order;
    send_ack(h.src_host, conn.expected_seq - 1);
    return;
  }
  conn.expected_seq = h.seq + 1;
  send_ack(h.src_host, h.seq);

  // Reassembly. Ordered delivery means fragments of a message arrive
  // consecutively; a fresh msg_id starts a new buffer.
  if (conn.buffer.empty() || conn.msg_id != h.msg_id) {
    conn.msg_id = h.msg_id;
    conn.buffer.assign(h.msg_len, 0);
    conn.received_bytes = 0;
  }
  std::copy(data.begin(), data.end(),
            conn.buffer.begin() + h.frag_offset);
  conn.received_bytes += data.size();
  if (conn.received_bytes < h.msg_len) return;

  packet::Bytes message = std::move(conn.buffer);
  conn.buffer.clear();
  conn.received_bytes = 0;
  ++stats_.messages_delivered;
  if (auto* fr = nic_.flight_recorder())
    fr->record(flight::EventType::kGmDeliver, queue_.now(), h.msg_id,
               h.src_host, h.msg_len);
  const std::uint16_t src = h.src_host;
  // Host-side callback dispatch cost.
  queue_.schedule_in(config_.host_recv_overhead_ns,
                     [this, src, message = std::move(message)]() mutable {
                       if (handler_) handler_(queue_.now(), src,
                                              std::move(message));
                     });
}

void GmPort::on_send_complete(sim::Time, std::uint64_t) {
  // NIC-level completion: the SRAM buffer is free. GM tokens return on
  // acknowledgement instead (reliable semantics), so nothing to do.
}

void GmPort::register_metrics(telemetry::MetricRegistry& registry) const {
  const telemetry::Labels labels{.host = nic_.host(), .channel = -1};
  auto source = [&registry, labels](const char* name,
                                    const std::uint64_t& field) {
    registry.register_source("gm", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); },
                             labels);
  };
  source("messages_sent", stats_.messages_sent);
  source("messages_delivered", stats_.messages_delivered);
  source("packets_data", stats_.packets_data);
  source("packets_ack", stats_.packets_ack);
  source("retransmissions", stats_.retransmissions);
  source("duplicates", stats_.duplicates);
  source("out_of_order", stats_.out_of_order);
  source("send_failures", stats_.send_failures);
  source("messages_failed", stats_.messages_failed);
  source("packets_unroutable", stats_.packets_unroutable);
  registry.register_source(
      "gm", "tokens_in_use", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(tokens_in_use_); }, labels);
}

}  // namespace itb::gm
