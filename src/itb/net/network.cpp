#include "itb/net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace itb::net {

struct Network::Worm {
  TxHandle handle = 0;
  packet::Bytes bytes;
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;   // set once the head reaches the final NIC
  sim::Time injected_at = 0;
  std::optional<sim::Time> data_ready_opt;
  sim::Time data_ready = 0;     // resolved at injection grant
  sim::Duration pipe_ns = 0;    // fixed per-hop latency the head has paid
  std::size_t orig_len = 0;
  std::vector<topo::Channel> held;
  std::optional<topo::Channel> waiting_on;  // parked in this channel's queue
  sim::Time tail_time = -1;     // set once the head reaches the final NIC
  bool rx_started = false;      // on_rx_head fired at the destination
  bool tx_signaled = false;     // on_tx_complete / on_tx_dropped fired
  bool done = false;
  // Pending events, cancelled if a fault kills the worm mid-flight.
  sim::EventId pending;         // next head hop / tail arrival
  sim::EventId early_event;     // early-header callback
  sim::EventId src_done_event;  // source on_tx_complete
};

std::vector<Network::WormWait> Network::wait_snapshot() const {
  std::vector<WormWait> snap;
  for (const auto& wp : worms_) {
    const Worm* w = wp.get();
    if (w->done) continue;
    WormWait s;
    s.handle = w->handle;
    s.src_host = w->src_host;
    s.injected_at = w->injected_at;
    s.held = w->held;
    if (w->waiting_on) {
      s.blocked = true;
      s.waiting_on = *w->waiting_on;
      s.waiting_channel_busy = channels_[channel_index(*w->waiting_on)].busy;
      const auto target = topo_.channel_target(*w->waiting_on);
      if (target.node.kind == topo::NodeKind::kHost) {
        const std::uint16_t h = target.node.index;
        const bool fault_gate =
            fault_hook_ && !fault_hook_->host_accepting(h);
        if (!rx_ready_[h] || fault_gate) {
          s.gate_closed = true;
          s.gate_fault = fault_gate;
          s.gate_host = h;
        }
      }
    }
    snap.push_back(std::move(s));
  }
  return snap;
}

std::optional<TxHandle> Network::oldest_blocked() const {
  const Worm* best = nullptr;
  for (const auto& wp : worms_) {
    const Worm* w = wp.get();
    if (w->done || !w->waiting_on) continue;
    if (!best || w->injected_at < best->injected_at ||
        (w->injected_at == best->injected_at && w->handle < best->handle))
      best = w;
  }
  if (!best) return std::nullopt;
  return best->handle;
}

bool Network::force_eject(TxHandle h) {
  for (const auto& wp : worms_) {
    Worm* w = wp.get();
    if (w->handle != h || w->done) continue;
    const topo::Channel at = w->waiting_on.value_or(
        w->held.empty() ? topo::Channel{} : w->held.back());
    kill_worm(w, at, "forced ejection", /*fault=*/false);
    return true;
  }
  return false;
}

std::optional<Network::RxPeek> Network::peek_rx(TxHandle h) const {
  for (const auto& w : worms_) {
    if (w->handle == h && !w->done && w->tail_time >= 0)
      return RxPeek{&w->bytes, w->tail_time};
  }
  return std::nullopt;
}

Network::Network(const topo::Topology& topo, const NetTiming& timing,
                 sim::EventQueue& queue, sim::Tracer& tracer)
    : topo_(topo),
      timing_(timing),
      queue_(queue),
      tracer_(tracer),
      hooks_(topo.host_count(), nullptr),
      rx_ready_(topo.host_count(), true),
      channels_(topo.link_count() * 2),
      channel_busy_(topo.link_count() * 2, 0) {}

Network::~Network() = default;

void Network::attach_host(std::uint16_t host, HostHooks* hooks) {
  if (host >= hooks_.size()) throw std::out_of_range("host out of range");
  if (hooks_[host]) throw std::logic_error("host already attached");
  hooks_[host] = hooks;
}

std::optional<topo::Channel> Network::channel_out(topo::NodeId from,
                                                  std::uint8_t port) const {
  auto lid = topo_.link_at(from, port);
  if (!lid) return std::nullopt;
  const auto& l = topo_.link(*lid);
  // Forward means a->b; we leave through `port` on `from`, so the channel
  // is forward iff (from, port) is the a end. Port matters for self-cables.
  const bool fwd = l.a.node == from && l.a.port == port;
  return topo::Channel{*lid, fwd};
}

TxHandle Network::inject(std::uint16_t host, packet::Bytes bytes,
                         std::optional<sim::Time> data_ready) {
  if (host >= hooks_.size() || !hooks_[host])
    throw std::logic_error("inject from unattached host");
  if (bytes.empty()) throw std::invalid_argument("empty packet");

  auto worm = std::make_unique<Worm>();
  Worm* w = worm.get();
  w->handle = next_handle_++;
  w->bytes = std::move(bytes);
  w->src_host = host;
  w->injected_at = queue_.now();
  w->data_ready_opt = data_ready;
  w->orig_len = w->bytes.size();
  worms_.push_back(std::move(worm));
  ++live_worms_;
  ++stats_.injected;
  if (activity_hook_) activity_hook_();

  auto entry = channel_out(topo::host_id(host), 0);
  if (!entry) throw std::logic_error("host has no uplink");
  if (flight_)
    flight_->record(flight::EventType::kInject, queue_.now(), w->handle, host,
                    w->orig_len);
  tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
    return "inject h" + std::to_string(host) + " tx" +
           std::to_string(w->handle) + " " + packet::describe(w->bytes);
  });
  const TxHandle handle = w->handle;
  request_channel(w, *entry);
  return handle;
}

void Network::set_host_rx_ready(std::uint16_t host, bool ready) {
  rx_ready_.at(host) = ready;
  // A waiter may have been parked on the (free) channel into this host.
  if (ready) rearbitrate_host(host);
}

bool Network::host_rx_ready(std::uint16_t host) const {
  return rx_ready_.at(host);
}

void Network::rearbitrate_host(std::uint16_t host) {
  const auto up = topo_.host_uplink(host);
  // Channel into the host: leaves the switch through the uplink port.
  auto into = channel_out(up.node, up.port);
  if (into) arbitrate(*into);
}

bool Network::host_gate_closed(topo::Endpoint target) const {
  if (target.node.kind != topo::NodeKind::kHost) return false;
  if (!rx_ready_[target.node.index]) return true;
  return fault_hook_ && !fault_hook_->host_accepting(target.node.index);
}

void Network::on_link_state(topo::LinkId link, bool up) {
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "link " + std::to_string(link) + (up ? " up" : " down");
  });
  for (const bool fwd : {true, false}) {
    const topo::Channel c{link, fwd};
    auto& st = channels_[channel_index(c)];
    if (up) {
      arbitrate(c);
      continue;
    }
    while (!st.waiters.empty()) {
      Worm* v = st.waiters.front();
      st.waiters.pop_front();
      v->waiting_on.reset();
      kill_worm(v, c, "link down");
    }
    if (st.busy && st.owner) kill_worm(st.owner, c, "link down");
  }
}

void Network::request_channel(Worm* w, topo::Channel c) {
  if (fault_hook_ && !fault_hook_->channel_usable(c)) {
    // The head ran into a dead link: the bytes are gone.
    kill_worm(w, c, "channel unusable");
    return;
  }
  auto& st = channels_[channel_index(c)];
  if (st.busy || host_gate_closed(topo_.channel_target(c)) ||
      !st.waiters.empty()) {
    ++stats_.head_blocks;
    if (flight_)
      flight_->record(flight::EventType::kHeadBlock, queue_.now(), w->handle,
                      w->src_host, channel_index(c));
    st.waiters.push_back(w);
    w->waiting_on = c;
    return;
  }
  grant_channel(w, c);
}

void Network::grant_channel(Worm* w, topo::Channel c) {
  auto& st = channels_[channel_index(c)];
  st.busy = true;
  st.busy_since = queue_.now();
  st.owner = w;
  w->waiting_on.reset();
  w->held.push_back(c);
  if (flight_)
    flight_->record(flight::EventType::kGrant, queue_.now(), w->handle,
                    w->src_host, channel_index(c));

  const bool is_entry = w->held.size() == 1;
  if (is_entry) {
    w->data_ready = w->data_ready_opt.value_or(
        queue_.now() + timing_.byte_time(static_cast<std::int64_t>(w->orig_len)));
    hooks_[w->src_host]->on_tx_started(queue_.now(), w->handle);
  }

  // The head crosses the link: propagation plus one byte of transmission.
  const sim::Duration hop = timing_.link_latency_ns + timing_.byte_time(1);
  w->pipe_ns += hop;
  const auto arrival = topo_.channel_target(c);
  w->pending =
      queue_.schedule_in(hop, [this, w, arrival] { head_at_node(w, arrival); });
}

void Network::arbitrate(topo::Channel c) {
  auto& st = channels_[channel_index(c)];
  if (fault_hook_ && !fault_hook_->channel_usable(c)) {
    while (!st.waiters.empty()) {
      Worm* v = st.waiters.front();
      st.waiters.pop_front();
      v->waiting_on.reset();
      kill_worm(v, c, "channel unusable");
    }
    return;
  }
  if (st.busy || st.waiters.empty()) return;
  if (host_gate_closed(topo_.channel_target(c))) return;
  Worm* next = st.waiters.front();
  st.waiters.pop_front();
  grant_channel(next, c);
}

void Network::head_at_node(Worm* w, topo::Endpoint arrival) {
  const sim::Time t = queue_.now();
  if (arrival.node.kind == topo::NodeKind::kHost) {
    complete_at_host(w, arrival.node.index, t);
    return;
  }

  // A switch: consume the leading route byte to pick the output port.
  if (w->bytes.empty() || !packet::is_route_byte(w->bytes[0])) {
    drop(w, "no route byte at switch");
    return;
  }
  const std::uint8_t out_port = packet::consume_route_byte(w->bytes);
  auto out = channel_out(arrival.node, out_port);
  if (!out) {
    drop(w, "route byte names a dangling port");
    return;
  }

  // Fall-through latency: base plus the LAN penalty for each LAN port
  // crossed (the incoming link and the outgoing link each count, §5).
  sim::Duration ft = timing_.switch_fallthrough_ns;
  const auto& in_link = topo_.link(w->held.back().link);
  if (in_link.kind == topo::PortKind::kLan) ft += timing_.lan_port_penalty_ns;
  if (topo_.link(out->link).kind == topo::PortKind::kLan)
    ft += timing_.lan_port_penalty_ns;
  w->pipe_ns += ft;

  if (flight_)
    flight_->record(flight::EventType::kHeadSwitch, t, w->handle,
                    arrival.node.index, 0, out_port);
  tracer_.emit(t, sim::TraceCategory::kSwitch, [&] {
    return "tx" + std::to_string(w->handle) + " head at s" +
           std::to_string(arrival.node.index) + " -> port " +
           std::to_string(out_port);
  });
  w->pending =
      queue_.schedule_in(ft, [this, w, out = *out] { request_channel(w, out); });
}

void Network::complete_at_host(Worm* w, std::uint16_t host,
                               sim::Time head_arrival) {
  HostHooks* hooks = hooks_[host];
  if (!hooks) {
    drop(w, "destination host not attached");
    return;
  }
  w->dst_host = host;
  w->rx_started = true;
  if (flight_)
    flight_->record(flight::EventType::kNicEject, head_arrival, w->handle,
                    host);
  hooks->on_rx_head(head_arrival, w->handle);

  const auto len = static_cast<std::int64_t>(w->bytes.size());
  // Early Recv trigger: the LANai raises it when the first 4 bytes are in
  // SRAM (§4).
  const sim::Time early = head_arrival + timing_.byte_time(std::min<std::int64_t>(len, 4) - 1);
  packet::Bytes head4(w->bytes.begin(),
                      w->bytes.begin() + std::min<std::int64_t>(len, 4));
  const TxHandle handle = w->handle;
  w->early_event =
      queue_.schedule_at(early, [this, hooks, handle, head4 = std::move(head4)] {
        hooks->on_rx_early_header(queue_.now(), handle, head4);
      });

  // Tail arrival: pipeline behind the head, but never before the source
  // even had the data (virtual cut-through coupling).
  const sim::Time tail = std::max(head_arrival + timing_.byte_time(len - 1),
                                  w->data_ready + w->pipe_ns);
  w->tail_time = tail;
  // The source's last byte departs one pipe latency before the tail lands.
  const sim::Time src_done = std::max(queue_.now(), tail - w->pipe_ns);
  w->src_done_event = queue_.schedule_at(src_done, [this, w] {
    w->tx_signaled = true;
    hooks_[w->src_host]->on_tx_complete(queue_.now(), w->handle);
  });

  w->pending = queue_.schedule_at(tail, [this, w, host, hooks] {
    if (flight_)
      flight_->record(flight::EventType::kTail, queue_.now(), w->handle, host);
    // Fault injection (tests of GM's reliability claims, §3): a faulty
    // network may lose the packet outright or flip a payload bit, which
    // the CRC check at the receiving MCP turns into a discard.
    bool lost = false;
    if (fault_hook_) {
      switch (fault_hook_->delivery_fate(host, w->bytes)) {
        case FaultHook::Fate::kDrop:
          lost = true;
          ++stats_.faults_injected;
          ++stats_.lost;
          break;
        case FaultHook::Fate::kCorrupt:
          ++stats_.faults_injected;
          break;
        case FaultHook::Fate::kDeliver:
          break;
      }
    }
    // A lost packet is never delivered: it counts under lost only.
    if (!lost) ++stats_.delivered;
    tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
      return "tx" + std::to_string(w->handle) + (lost ? " LOST before h" : " delivered to h") +
             std::to_string(host);
    });
    WirePacket pkt{w->handle, std::move(w->bytes), w->src_host, w->injected_at};
    release_channels(w);
    finish_worm(w);
    if (lost) {
      hooks->on_rx_aborted(queue_.now(), pkt.handle);
    } else {
      hooks->on_rx_complete(queue_.now(), std::move(pkt));
    }
  });
}

void Network::release_channels(Worm* w) {
  for (auto c : w->held) {
    auto& st = channels_[channel_index(c)];
    st.busy = false;
    st.owner = nullptr;
    channel_busy_[channel_index(c)] += queue_.now() - st.busy_since;
  }
  // Grant to waiters only after every channel is marked free; arbitration
  // may kill a waiter (fault window), which releases further channels.
  std::vector<topo::Channel> freed;
  freed.swap(w->held);
  for (auto c : freed) arbitrate(c);
}

void Network::drop(Worm* w, const char* why) {
  ++stats_.dropped;
  if (flight_)
    flight_->record(flight::EventType::kDrop, queue_.now(), w->handle,
                    w->src_host);
  tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
    return "tx" + std::to_string(w->handle) + " dropped: " + why;
  });
  w->tx_signaled = true;
  if (hooks_[w->src_host]) hooks_[w->src_host]->on_tx_dropped(queue_.now(), w->handle);
  release_channels(w);
  finish_worm(w);
}

void Network::kill_worm(Worm* w, topo::Channel at, const char* why,
                        bool fault) {
  if (w->done) return;
  queue_.cancel(w->pending);
  queue_.cancel(w->early_event);
  queue_.cancel(w->src_done_event);
  if (w->waiting_on) {
    auto& st = channels_[channel_index(*w->waiting_on)];
    std::erase(st.waiters, w);
    w->waiting_on.reset();
  }
  ++stats_.lost;
  if (flight_)
    flight_->record(fault ? flight::EventType::kLost
                          : flight::EventType::kForceEject,
                    queue_.now(), w->handle, w->src_host, at.link);
  if (fault) {
    ++stats_.faults_injected;
    if (fault_hook_) fault_hook_->note_kill(at);
  }
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "tx" + std::to_string(w->handle) + " killed at link " +
           std::to_string(at.link) + ": " + why;
  });
  const TxHandle handle = w->handle;
  const std::uint16_t src = w->src_host;
  const std::uint16_t dst = w->dst_host;
  const bool notify_tx = !w->tx_signaled;
  const bool notify_rx = w->rx_started;
  w->tx_signaled = true;
  release_channels(w);
  finish_worm(w);  // may free w (compaction) — only locals below
  if (notify_tx && hooks_[src]) hooks_[src]->on_tx_dropped(queue_.now(), handle);
  if (notify_rx && hooks_[dst]) hooks_[dst]->on_rx_aborted(queue_.now(), handle);
}

void Network::finish_worm(Worm* w) {
  w->done = true;
  --live_worms_;
  // Compact occasionally so long runs don't accumulate dead worms.
  if (worms_.size() > 64 && live_worms_ < worms_.size() / 2) {
    std::erase_if(worms_, [](const std::unique_ptr<Worm>& p) { return p->done; });
  }
}

void Network::register_metrics(telemetry::MetricRegistry& registry) const {
  auto source = [&registry, this](const char* name,
                                  const std::uint64_t& field) {
    registry.register_source("net", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  source("injected", stats_.injected);
  source("delivered", stats_.delivered);
  source("dropped", stats_.dropped);
  source("head_blocks", stats_.head_blocks);
  source("faults_injected", stats_.faults_injected);
  source("lost", stats_.lost);
  for (std::size_t c = 0; c < channel_busy_.size(); ++c)
    registry.register_source(
        "net", "channel_busy_ns", telemetry::MetricKind::kGauge,
        [this, c] { return static_cast<double>(channel_busy_[c]); },
        telemetry::Labels{.host = -1, .channel = static_cast<int>(c)});
}

}  // namespace itb::net
