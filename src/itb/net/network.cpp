#include "itb/net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace itb::net {

std::vector<Network::WormWait> Network::wait_snapshot() const {
  std::vector<WormWait> snap;
  for (const Worm* w = live_head_; w; w = w->live_next) {
    WormWait s;
    s.handle = w->handle;
    s.src_host = w->src_host;
    s.injected_at = w->injected_at;
    s.held.reserve(w->held.size());
    for (const auto slot : w->held)
      s.held.push_back(HeldLane{channel_of(slot), lane_of(slot)});
    if (w->waiting_on) {
      s.blocked = true;
      s.waiting_on = *w->waiting_on;
      s.waiting_lane = w->waiting_lane;
      s.waiting_channel_busy =
          channels_[slot_of(*w->waiting_on, w->waiting_lane)].busy;
      const auto target = channel_target_[channel_index(*w->waiting_on)];
      if (target.node.kind == topo::NodeKind::kHost) {
        const std::uint16_t h = target.node.index;
        const bool fault_gate =
            fault_hook_ && !fault_hook_->host_accepting(h);
        if (!rx_ready_[h] || fault_gate) {
          s.gate_closed = true;
          s.gate_fault = fault_gate;
          s.gate_host = h;
        }
      }
    }
    snap.push_back(std::move(s));
  }
  return snap;
}

std::optional<TxHandle> Network::oldest_blocked() const {
  const Worm* best = nullptr;
  for (const Worm* w = live_head_; w; w = w->live_next) {
    if (!w->waiting_on) continue;
    if (!best || w->injected_at < best->injected_at ||
        (w->injected_at == best->injected_at && w->handle < best->handle))
      best = w;
  }
  if (!best) return std::nullopt;
  return best->handle;
}

bool Network::force_eject(TxHandle h) {
  for (Worm* w = live_head_; w; w = w->live_next) {
    if (w->handle != h) continue;
    const topo::Channel at = w->waiting_on.value_or(
        w->held.empty() ? topo::Channel{} : channel_of(w->held.back()));
    kill_worm(w, at, "forced ejection", /*fault=*/false);
    return true;
  }
  return false;
}

std::optional<Network::RxPeek> Network::peek_rx(TxHandle h) const {
  for (const Worm* w = live_head_; w; w = w->live_next) {
    if (w->handle == h && w->tail_time >= 0)
      return RxPeek{&w->bytes, w->tail_time};
  }
  return std::nullopt;
}

Network::Network(const topo::Topology& topo, const NetTiming& timing,
                 sim::EventQueue& queue, sim::Tracer& tracer)
    : topo_(topo),
      timing_(timing),
      queue_(queue),
      tracer_(tracer),
      hooks_(topo.host_count(), nullptr),
      rx_ready_(topo.host_count(), 1),
      channels_(topo.link_count() * 2),
      channel_busy_(topo.link_count() * 2, 0),
      host_out_channel_(topo.host_count(), -1),
      host_in_channel_(topo.host_count(), -1) {
  // Build the dense per-channel caches. The Topology is immutable for the
  // Network's life, so every Topology::link_at scan the hot path used to do
  // per hop collapses into one array read here.
  for (std::size_t s = 0; s < topo_.switch_count(); ++s)
    max_ports_ =
        std::max<std::uint32_t>(max_ports_, topo_.switch_spec(s).ports);
  for (topo::LinkId l = 0; l < topo_.link_count(); ++l) {
    const auto& lk = topo_.link(l);
    max_ports_ = std::max<std::uint32_t>(
        max_ports_, std::uint32_t{std::max(lk.a.port, lk.b.port)} + 1u);
  }
  out_channel_.assign(
      (topo_.switch_count() + topo_.host_count()) * max_ports_, -1);
  channel_target_.resize(topo_.link_count() * 2);
  channel_is_lan_.assign(topo_.link_count() * 2, 0);
  channel_gate_host_.assign(topo_.link_count() * 2, -1);
  for (topo::LinkId l = 0; l < topo_.link_count(); ++l) {
    const auto& lk = topo_.link(l);
    const auto fwd = static_cast<std::int32_t>(2 * l);
    const auto rev = fwd + 1;
    out_channel_[node_slot(lk.a.node) * max_ports_ + lk.a.port] = fwd;
    out_channel_[node_slot(lk.b.node) * max_ports_ + lk.b.port] = rev;
    channel_target_[fwd] = lk.b;
    channel_target_[rev] = lk.a;
    channel_is_lan_[fwd] = channel_is_lan_[rev] =
        lk.kind == topo::PortKind::kLan ? 1 : 0;
    if (lk.a.node.kind == topo::NodeKind::kHost) {
      host_out_channel_[lk.a.node.index] = fwd;
      host_in_channel_[lk.a.node.index] = rev;
      channel_gate_host_[rev] = lk.a.node.index;
    }
    if (lk.b.node.kind == topo::NodeKind::kHost) {
      host_out_channel_[lk.b.node.index] = rev;
      host_in_channel_[lk.b.node.index] = fwd;
      channel_gate_host_[fwd] = lk.b.node.index;
    }
  }
  early_scratch_.reserve(4);
}

Network::~Network() = default;

void Network::attach_host(std::uint16_t host, HostHooks* hooks) {
  if (host >= hooks_.size()) throw std::out_of_range("host out of range");
  if (hooks_[host]) throw std::logic_error("host already attached");
  hooks_[host] = hooks;
}

void Network::set_lane_policy(const LanePolicy* policy) {
  if (live_worms_)
    throw std::logic_error("lane policy change with worms in flight");
  const unsigned lanes = policy ? policy->lane_count() : 1;
  if (lanes == 0 || lanes > 255)
    throw std::invalid_argument("lane count must be in [1, 255]");
  // A single-lane policy keeps the classical hot path: lane_policy_ stays
  // null and every slot computation folds to the physical channel index.
  lane_policy_ = lanes > 1 ? policy : nullptr;
  lanes_ = lanes;
  channels_.assign(topo_.link_count() * 2 * lanes_, ChannelState{});
  lane_busy_.assign(lanes_ > 1 ? topo_.link_count() * 2 * lanes_ : 0, 0);
}

void Network::live_insert(Worm* w) {
  w->live_prev = live_tail_;
  w->live_next = nullptr;
  if (live_tail_)
    live_tail_->live_next = w;
  else
    live_head_ = w;
  live_tail_ = w;
}

void Network::live_remove(Worm* w) {
  if (w->live_prev)
    w->live_prev->live_next = w->live_next;
  else
    live_head_ = w->live_next;
  if (w->live_next)
    w->live_next->live_prev = w->live_prev;
  else
    live_tail_ = w->live_prev;
  w->live_prev = w->live_next = nullptr;
}

void Network::waiter_push(ChannelState& st, Worm* w) {
  w->wait_prev = st.wait_tail;
  w->wait_next = nullptr;
  if (st.wait_tail)
    st.wait_tail->wait_next = w;
  else
    st.wait_head = w;
  st.wait_tail = w;
}

Network::Worm* Network::waiter_pop(ChannelState& st) {
  Worm* w = st.wait_head;
  if (w) waiter_unlink(st, w);
  return w;
}

void Network::waiter_unlink(ChannelState& st, Worm* w) {
  if (w->wait_prev)
    w->wait_prev->wait_next = w->wait_next;
  else
    st.wait_head = w->wait_next;
  if (w->wait_next)
    w->wait_next->wait_prev = w->wait_prev;
  else
    st.wait_tail = w->wait_prev;
  w->wait_prev = w->wait_next = nullptr;
}

TxHandle Network::inject(std::uint16_t host, packet::Bytes bytes,
                         std::optional<sim::Time> data_ready) {
  if (host >= hooks_.size() || !hooks_[host])
    throw std::logic_error("inject from unattached host");
  if (bytes.empty()) throw std::invalid_argument("empty packet");
  const std::int32_t entry_idx = host_out_channel_[host];
  if (entry_idx < 0) throw std::logic_error("host has no uplink");

  // The pooled worm may carry recycled state (warm reuse): reset every
  // field. Move-assigning bytes frees nothing — the previous life's buffer
  // was moved out at delivery — and held keeps its capacity.
  auto [self, w] = worm_pool_.acquire();
  w->handle = next_handle_++;
  w->bytes = std::move(bytes);
  w->route_off = 0;
  w->src_host = host;
  w->dst_host = 0;
  w->injected_at = queue_.now();
  w->data_ready_opt = data_ready;
  w->data_ready = 0;
  w->pipe_ns = 0;
  w->orig_len = w->bytes.size();
  w->held.clear();
  w->waiting_on.reset();
  w->waiting_lane = 0;
  w->lane_state =
      LaneState{lane_policy_ ? lane_policy_->injection_lane(host) : 0, 0};
  w->tail_time = -1;
  w->rx_started = false;
  w->tx_signaled = false;
  w->done = false;
  w->pending = {};
  w->early_event = {};
  w->src_done_event = {};
  w->self = self;
  live_insert(w);
  ++live_worms_;
  ++stats_.injected;
  if (activity_hook_) activity_hook_();

  if (flight_)
    // detail carries the injection lane — 0 on single-lane networks, so
    // lane-less captures (the golden fig8 fingerprint) are byte-identical.
    flight_->record(flight::EventType::kInject, queue_.now(), w->handle, host,
                    w->orig_len, w->lane_state.lane);
  tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
    return "inject h" + std::to_string(host) + " tx" +
           std::to_string(w->handle) + " " + packet::describe(w->bytes);
  });
  const TxHandle handle = w->handle;
  request_channel(w, static_cast<std::uint32_t>(entry_idx) * lanes_ +
                         w->lane_state.lane);
  return handle;
}

void Network::set_host_rx_ready(std::uint16_t host, bool ready) {
  rx_ready_.at(host) = ready ? 1 : 0;
  // A waiter may have been parked on the (free) channel into this host.
  if (ready) rearbitrate_host(host);
}

bool Network::host_rx_ready(std::uint16_t host) const {
  return rx_ready_.at(host) != 0;
}

void Network::rearbitrate_host(std::uint16_t host) {
  if (host >= host_in_channel_.size()) return;
  const std::int32_t into = host_in_channel_[host];
  if (into < 0) return;
  for (unsigned lane = 0; lane < lanes_; ++lane)
    arbitrate(static_cast<std::uint32_t>(into) * lanes_ + lane);
}

bool Network::host_gate_closed(topo::Endpoint target) const {
  if (target.node.kind != topo::NodeKind::kHost) return false;
  if (!rx_ready_[target.node.index]) return true;
  return fault_hook_ && !fault_hook_->host_accepting(target.node.index);
}

void Network::on_link_state(topo::LinkId link, bool up) {
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "link " + std::to_string(link) + (up ? " up" : " down");
  });
  for (const bool fwd : {true, false}) {
    const topo::Channel c{link, fwd};
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      const std::uint32_t slot = channel_index(c) * lanes_ + lane;
      auto& st = channels_[slot];
      if (up) {
        arbitrate(slot);
        continue;
      }
      while (Worm* v = waiter_pop(st)) {
        v->waiting_on.reset();
        kill_worm(v, c, "link down");
      }
      if (st.busy && st.owner) kill_worm(st.owner, c, "link down");
    }
  }
}

void Network::request_channel(Worm* w, std::uint32_t slot) {
  const topo::Channel c = channel_of(slot);
  if (fault_hook_ && !fault_hook_->channel_usable(c)) {
    // The head ran into a dead link: the bytes are gone.
    kill_worm(w, c, "channel unusable");
    return;
  }
  auto& st = channels_[slot];
  if (st.busy || gate_closed_idx(phys_of(slot)) || st.wait_head) {
    ++stats_.head_blocks;
    if (flight_)
      // aux is the channel-LANE slot; with one lane it equals the physical
      // channel index the pre-lane recorder wrote.
      flight_->record(flight::EventType::kHeadBlock, queue_.now(), w->handle,
                      w->src_host, slot);
    waiter_push(st, w);
    w->waiting_on = c;
    w->waiting_lane = lane_of(slot);
    return;
  }
  grant_channel(w, slot);
}

void Network::grant_channel(Worm* w, std::uint32_t slot) {
  auto& st = channels_[slot];
  st.busy = true;
  st.busy_since = queue_.now();
  st.owner = w;
  w->waiting_on.reset();
  w->held.push_back(slot);
  if (flight_)
    flight_->record(flight::EventType::kGrant, queue_.now(), w->handle,
                    w->src_host, slot);

  const bool is_entry = w->held.size() == 1;
  if (is_entry) {
    w->data_ready = w->data_ready_opt.value_or(
        queue_.now() + timing_.byte_time(static_cast<std::int64_t>(w->orig_len)));
    hooks_[w->src_host]->on_tx_started(queue_.now(), w->handle);
  }

  // The head crosses the link: propagation plus one byte of transmission.
  sim::Duration hop = timing_.link_latency_ns + timing_.byte_time(1);
  if (lane_policy_ && timing_.lane_mux_penalty_ns > 0) {
    // Lane mux cost: another lane of the same physical channel is already
    // streaming, so this head's flits interleave behind it.
    const std::uint32_t base = phys_of(slot) * lanes_;
    for (unsigned l = 0; l < lanes_; ++l)
      if (base + l != slot && channels_[base + l].busy) {
        hop += timing_.lane_mux_penalty_ns;
        break;
      }
  }
  w->pipe_ns += hop;
  const auto arrival = channel_target_[phys_of(slot)];
  w->pending =
      queue_.schedule_in(hop, [this, w, arrival] { head_at_node(w, arrival); });
}

void Network::arbitrate(std::uint32_t slot) {
  auto& st = channels_[slot];
  const topo::Channel c = channel_of(slot);
  if (fault_hook_ && !fault_hook_->channel_usable(c)) {
    while (Worm* v = waiter_pop(st)) {
      v->waiting_on.reset();
      kill_worm(v, c, "channel unusable");
    }
    return;
  }
  if (st.busy || !st.wait_head) return;
  if (gate_closed_idx(phys_of(slot))) return;
  Worm* next = waiter_pop(st);
  grant_channel(next, slot);
}

void Network::head_at_node(Worm* w, topo::Endpoint arrival) {
  const sim::Time t = queue_.now();
  if (arrival.node.kind == topo::NodeKind::kHost) {
    complete_at_host(w, arrival.node.index, t);
    return;
  }

  // A switch: consume the leading route byte to pick the output port. The
  // byte is consumed by advancing route_off — the prefix is erased in one
  // step when the head reaches the destination NIC, not per hop.
  if (w->route_off >= w->bytes.size() ||
      !packet::is_route_byte(w->bytes[w->route_off])) {
    drop(w, "no route byte at switch");
    return;
  }
  const std::uint8_t out_port =
      packet::decode_route_byte(w->bytes[w->route_off]);
  ++w->route_off;
  const std::int32_t out_idx = out_channel_idx(arrival.node, out_port);
  if (out_idx < 0) {
    drop(w, "route byte names a dangling port");
    return;
  }

  // Fall-through latency: base plus the LAN penalty for each LAN port
  // crossed (the incoming link and the outgoing link each count, §5).
  sim::Duration ft = timing_.switch_fallthrough_ns;
  if (channel_is_lan_[phys_of(w->held.back())])
    ft += timing_.lan_port_penalty_ns;
  if (channel_is_lan_[out_idx]) ft += timing_.lan_port_penalty_ns;
  w->pipe_ns += ft;

  if (flight_)
    flight_->record(flight::EventType::kHeadSwitch, t, w->handle,
                    arrival.node.index, 0, out_port);
  tracer_.emit(t, sim::TraceCategory::kSwitch, [&] {
    return "tx" + std::to_string(w->handle) + " head at s" +
           std::to_string(arrival.node.index) + " -> port " +
           std::to_string(out_port);
  });
  // The lane is decided HERE, once per traversal, and captured in the
  // closure: lane_for mutates the worm's ladder state, so re-evaluating it
  // on a grant-after-wait would double-advance the ladder.
  const topo::Channel out =
      channel_from_index(static_cast<std::uint32_t>(out_idx));
  const std::uint8_t lane =
      lane_policy_ ? lane_policy_->lane_for(w->lane_state, out) : 0;
  const std::uint32_t slot =
      static_cast<std::uint32_t>(out_idx) * lanes_ + lane;
  w->pending =
      queue_.schedule_in(ft, [this, w, slot] { request_channel(w, slot); });
}

void Network::complete_at_host(Worm* w, std::uint16_t host,
                               sim::Time head_arrival) {
  HostHooks* hooks = hooks_[host];
  if (!hooks) {
    drop(w, "destination host not attached");
    return;
  }
  // Shed the route bytes the switches consumed — one erase for the whole
  // path instead of one memmove per hop — before any callback can look.
  if (w->route_off) {
    w->bytes.erase(w->bytes.begin(), w->bytes.begin() + w->route_off);
    w->route_off = 0;
  }
  w->dst_host = host;
  w->rx_started = true;
  if (flight_)
    flight_->record(flight::EventType::kNicEject, head_arrival, w->handle,
                    host);
  hooks->on_rx_head(head_arrival, w->handle);

  const auto len = static_cast<std::int64_t>(w->bytes.size());
  // Early Recv trigger: the LANai raises it when the first 4 bytes are in
  // SRAM (§4). The snapshot is taken when the event fires — the worm is
  // still alive (the tail lands no earlier, and a kill cancels this event)
  // and its bytes are untouched until the tail — so the closure carries no
  // allocation, just the worm pointer.
  const sim::Time early = head_arrival + timing_.byte_time(std::min<std::int64_t>(len, 4) - 1);
  w->early_event = queue_.schedule_at(early, [this, hooks, w] {
    const auto n = std::min<std::size_t>(w->bytes.size(), 4);
    early_scratch_.assign(w->bytes.begin(), w->bytes.begin() + n);
    hooks->on_rx_early_header(queue_.now(), w->handle, early_scratch_);
  });

  // Tail arrival: pipeline behind the head, but never before the source
  // even had the data (virtual cut-through coupling).
  const sim::Time tail = std::max(head_arrival + timing_.byte_time(len - 1),
                                  w->data_ready + w->pipe_ns);
  w->tail_time = tail;
  // The source's last byte departs one pipe latency before the tail lands.
  const sim::Time src_done = std::max(queue_.now(), tail - w->pipe_ns);
  w->src_done_event = queue_.schedule_at(src_done, [this, w] {
    w->tx_signaled = true;
    hooks_[w->src_host]->on_tx_complete(queue_.now(), w->handle);
  });

  w->pending = queue_.schedule_at(tail, [this, w, host, hooks] {
    if (flight_)
      flight_->record(flight::EventType::kTail, queue_.now(), w->handle, host);
    // Fault injection (tests of GM's reliability claims, §3): a faulty
    // network may lose the packet outright or flip a payload bit, which
    // the CRC check at the receiving MCP turns into a discard.
    bool lost = false;
    if (fault_hook_) {
      switch (fault_hook_->delivery_fate(host, w->bytes)) {
        case FaultHook::Fate::kDrop:
          lost = true;
          ++stats_.faults_injected;
          ++stats_.lost;
          break;
        case FaultHook::Fate::kCorrupt:
          ++stats_.faults_injected;
          break;
        case FaultHook::Fate::kDeliver:
          break;
      }
    }
    // A lost packet is never delivered: it counts under lost only.
    if (!lost) ++stats_.delivered;
    tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
      return "tx" + std::to_string(w->handle) + (lost ? " LOST before h" : " delivered to h") +
             std::to_string(host);
    });
    WirePacket pkt{w->handle, std::move(w->bytes), w->src_host, w->injected_at};
    release_channels(w);
    finish_worm(w);  // recycles w — only locals below
    if (lost) {
      hooks->on_rx_aborted(queue_.now(), pkt.handle);
    } else {
      hooks->on_rx_complete(queue_.now(), std::move(pkt));
    }
  });
}

void Network::release_channels(Worm* w) {
  for (const auto slot : w->held) {
    auto& st = channels_[slot];
    st.busy = false;
    st.owner = nullptr;
    const sim::Duration busy = queue_.now() - st.busy_since;
    channel_busy_[phys_of(slot)] += busy;
    if (!lane_busy_.empty()) lane_busy_[slot] += busy;
  }
  // Grant to waiters only after every channel is marked free; arbitration
  // may kill a waiter (fault window), which releases further channels —
  // never this worm's, so indexed iteration over held stays valid. held is
  // cleared (keeping its capacity) rather than swapped away.
  for (std::size_t i = 0; i < w->held.size(); ++i) arbitrate(w->held[i]);
  w->held.clear();
}

void Network::drop(Worm* w, const char* why) {
  ++stats_.dropped;
  if (flight_)
    flight_->record(flight::EventType::kDrop, queue_.now(), w->handle,
                    w->src_host);
  tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
    return "tx" + std::to_string(w->handle) + " dropped: " + why;
  });
  w->tx_signaled = true;
  if (hooks_[w->src_host]) hooks_[w->src_host]->on_tx_dropped(queue_.now(), w->handle);
  release_channels(w);
  finish_worm(w);
}

void Network::kill_worm(Worm* w, topo::Channel at, const char* why,
                        bool fault) {
  if (w->done) return;
  queue_.cancel(w->pending);
  queue_.cancel(w->early_event);
  queue_.cancel(w->src_done_event);
  if (w->waiting_on) {
    waiter_unlink(channels_[slot_of(*w->waiting_on, w->waiting_lane)], w);
    w->waiting_on.reset();
  }
  ++stats_.lost;
  if (flight_)
    flight_->record(fault ? flight::EventType::kLost
                          : flight::EventType::kForceEject,
                    queue_.now(), w->handle, w->src_host, at.link);
  if (fault) {
    ++stats_.faults_injected;
    if (fault_hook_) fault_hook_->note_kill(at);
  }
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "tx" + std::to_string(w->handle) + " killed at link " +
           std::to_string(at.link) + ": " + why;
  });
  const TxHandle handle = w->handle;
  const std::uint16_t src = w->src_host;
  const std::uint16_t dst = w->dst_host;
  const bool notify_tx = !w->tx_signaled;
  const bool notify_rx = w->rx_started;
  w->tx_signaled = true;
  release_channels(w);
  finish_worm(w);  // recycles w — only locals below
  if (notify_tx && hooks_[src]) hooks_[src]->on_tx_dropped(queue_.now(), handle);
  if (notify_rx && hooks_[dst]) hooks_[dst]->on_rx_aborted(queue_.now(), handle);
}

void Network::finish_worm(Worm* w) {
  w->done = true;
  --live_worms_;
  live_remove(w);
  // Return the worm to the pool. Warm recycling keeps the held vector's
  // capacity for the next life; any handle kept past this point goes stale.
  worm_pool_.release(w->self);
}

void Network::register_metrics(telemetry::MetricRegistry& registry) const {
  auto source = [&registry, this](const char* name,
                                  const std::uint64_t& field) {
    registry.register_source("net", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  source("injected", stats_.injected);
  source("delivered", stats_.delivered);
  source("dropped", stats_.dropped);
  source("head_blocks", stats_.head_blocks);
  source("faults_injected", stats_.faults_injected);
  source("lost", stats_.lost);
  registry.register_source(
      "net", "worm_pool_live", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(worm_pool_.live()); });
  registry.register_source(
      "net", "worm_pool_high_water", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(worm_pool_.high_water()); });
  registry.register_source(
      "net", "worm_pool_capacity", telemetry::MetricKind::kGauge,
      [this] { return static_cast<double>(worm_pool_.capacity()); });
  for (std::size_t c = 0; c < channel_busy_.size(); ++c)
    registry.register_source(
        "net", "channel_busy_ns", telemetry::MetricKind::kGauge,
        [this, c] { return static_cast<double>(channel_busy_[c]); },
        telemetry::Labels{.host = -1, .channel = static_cast<int>(c)});
  // Per-lane occupancy (multi-lane engines only); the channel label is the
  // channel-lane slot, phys = slot / lane_count, lane = slot % lane_count.
  for (std::size_t s = 0; s < lane_busy_.size(); ++s)
    registry.register_source(
        "net", "lane_busy_ns", telemetry::MetricKind::kGauge,
        [this, s] { return static_cast<double>(lane_busy_[s]); },
        telemetry::Labels{.host = -1, .channel = static_cast<int>(s)});
}

}  // namespace itb::net
