#include "itb/net/network.hpp"

#include <stdexcept>
#include <unordered_map>

namespace itb::net {

struct Network::Worm {
  TxHandle handle = 0;
  packet::Bytes bytes;
  std::uint16_t src_host = 0;
  sim::Time injected_at = 0;
  std::optional<sim::Time> data_ready_opt;
  sim::Time data_ready = 0;     // resolved at injection grant
  sim::Duration pipe_ns = 0;    // fixed per-hop latency the head has paid
  std::size_t orig_len = 0;
  std::vector<topo::Channel> held;
  sim::Time tail_time = -1;     // set once the head reaches the final NIC
  bool done = false;
};

std::optional<Network::RxPeek> Network::peek_rx(TxHandle h) const {
  for (const auto& w : worms_) {
    if (w->handle == h && !w->done && w->tail_time >= 0)
      return RxPeek{&w->bytes, w->tail_time};
  }
  return std::nullopt;
}

Network::Network(const topo::Topology& topo, const NetTiming& timing,
                 sim::EventQueue& queue, sim::Tracer& tracer)
    : topo_(topo),
      timing_(timing),
      queue_(queue),
      tracer_(tracer),
      fault_rng_(FaultPlan{}.seed),
      hooks_(topo.host_count(), nullptr),
      rx_ready_(topo.host_count(), true),
      channels_(topo.link_count() * 2),
      channel_busy_(topo.link_count() * 2, 0) {}

void Network::set_fault_plan(const FaultPlan& plan) {
  faults_ = plan;
  fault_rng_ = sim::Rng(plan.seed);
}

Network::~Network() = default;

void Network::attach_host(std::uint16_t host, HostHooks* hooks) {
  if (host >= hooks_.size()) throw std::out_of_range("host out of range");
  if (hooks_[host]) throw std::logic_error("host already attached");
  hooks_[host] = hooks;
}

std::optional<topo::Channel> Network::channel_out(topo::NodeId from,
                                                  std::uint8_t port) const {
  auto lid = topo_.link_at(from, port);
  if (!lid) return std::nullopt;
  const auto& l = topo_.link(*lid);
  // Forward means a->b; we leave through `port` on `from`, so the channel
  // is forward iff (from, port) is the a end. Port matters for self-cables.
  const bool fwd = l.a.node == from && l.a.port == port;
  return topo::Channel{*lid, fwd};
}

TxHandle Network::inject(std::uint16_t host, packet::Bytes bytes,
                         std::optional<sim::Time> data_ready) {
  if (host >= hooks_.size() || !hooks_[host])
    throw std::logic_error("inject from unattached host");
  if (bytes.empty()) throw std::invalid_argument("empty packet");

  auto worm = std::make_unique<Worm>();
  Worm* w = worm.get();
  w->handle = next_handle_++;
  w->bytes = std::move(bytes);
  w->src_host = host;
  w->injected_at = queue_.now();
  w->data_ready_opt = data_ready;
  w->orig_len = w->bytes.size();
  worms_.push_back(std::move(worm));
  ++live_worms_;
  ++stats_.injected;

  auto entry = channel_out(topo::host_id(host), 0);
  if (!entry) throw std::logic_error("host has no uplink");
  tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
    return "inject h" + std::to_string(host) + " tx" +
           std::to_string(w->handle) + " " + packet::describe(w->bytes);
  });
  request_channel(w, *entry);
  return w->handle;
}

void Network::set_host_rx_ready(std::uint16_t host, bool ready) {
  rx_ready_.at(host) = ready;
  if (!ready) return;
  // A waiter may have been parked on the (free) channel into this host.
  const auto up = topo_.host_uplink(host);
  // Channel into the host: leaves the switch through the uplink port.
  auto into = channel_out(up.node, up.port);
  if (!into) return;
  auto& st = channels_[channel_index(*into)];
  if (!st.busy && !st.waiters.empty()) {
    Worm* w = st.waiters.front();
    st.waiters.pop_front();
    grant_channel(w, *into);
  }
}

bool Network::host_rx_ready(std::uint16_t host) const {
  return rx_ready_.at(host);
}

void Network::request_channel(Worm* w, topo::Channel c) {
  auto& st = channels_[channel_index(c)];
  const auto target = topo_.channel_target(c);
  const bool gated = target.node.kind == topo::NodeKind::kHost &&
                     !rx_ready_[target.node.index];
  if (st.busy || gated || !st.waiters.empty()) {
    ++stats_.head_blocks;
    st.waiters.push_back(w);
    return;
  }
  grant_channel(w, c);
}

void Network::grant_channel(Worm* w, topo::Channel c) {
  auto& st = channels_[channel_index(c)];
  st.busy = true;
  st.busy_since = queue_.now();
  w->held.push_back(c);

  const bool is_entry = w->held.size() == 1;
  if (is_entry) {
    w->data_ready = w->data_ready_opt.value_or(
        queue_.now() + timing_.byte_time(static_cast<std::int64_t>(w->orig_len)));
    hooks_[w->src_host]->on_tx_started(queue_.now(), w->handle);
  }

  // The head crosses the link: propagation plus one byte of transmission.
  const sim::Duration hop = timing_.link_latency_ns + timing_.byte_time(1);
  w->pipe_ns += hop;
  const auto arrival = topo_.channel_target(c);
  queue_.schedule_in(hop, [this, w, arrival] { head_at_node(w, arrival); });
}

void Network::head_at_node(Worm* w, topo::Endpoint arrival) {
  const sim::Time t = queue_.now();
  if (arrival.node.kind == topo::NodeKind::kHost) {
    complete_at_host(w, arrival.node.index, t);
    return;
  }

  // A switch: consume the leading route byte to pick the output port.
  if (w->bytes.empty() || !packet::is_route_byte(w->bytes[0])) {
    drop(w, "no route byte at switch");
    return;
  }
  const std::uint8_t out_port = packet::consume_route_byte(w->bytes);
  auto out = channel_out(arrival.node, out_port);
  if (!out) {
    drop(w, "route byte names a dangling port");
    return;
  }

  // Fall-through latency: base plus the LAN penalty for each LAN port
  // crossed (the incoming link and the outgoing link each count, §5).
  sim::Duration ft = timing_.switch_fallthrough_ns;
  const auto& in_link = topo_.link(w->held.back().link);
  if (in_link.kind == topo::PortKind::kLan) ft += timing_.lan_port_penalty_ns;
  if (topo_.link(out->link).kind == topo::PortKind::kLan)
    ft += timing_.lan_port_penalty_ns;
  w->pipe_ns += ft;

  tracer_.emit(t, sim::TraceCategory::kSwitch, [&] {
    return "tx" + std::to_string(w->handle) + " head at s" +
           std::to_string(arrival.node.index) + " -> port " +
           std::to_string(out_port);
  });
  queue_.schedule_in(ft, [this, w, out = *out] { request_channel(w, out); });
}

void Network::complete_at_host(Worm* w, std::uint16_t host,
                               sim::Time head_arrival) {
  HostHooks* hooks = hooks_[host];
  if (!hooks) {
    drop(w, "destination host not attached");
    return;
  }
  hooks->on_rx_head(head_arrival, w->handle);

  const auto len = static_cast<std::int64_t>(w->bytes.size());
  // Early Recv trigger: the LANai raises it when the first 4 bytes are in
  // SRAM (§4).
  const sim::Time early = head_arrival + timing_.byte_time(std::min<std::int64_t>(len, 4) - 1);
  packet::Bytes head4(w->bytes.begin(),
                      w->bytes.begin() + std::min<std::int64_t>(len, 4));
  const TxHandle handle = w->handle;
  queue_.schedule_at(early, [this, hooks, handle, head4 = std::move(head4)] {
    hooks->on_rx_early_header(queue_.now(), handle, head4);
  });

  // Tail arrival: pipeline behind the head, but never before the source
  // even had the data (virtual cut-through coupling).
  const sim::Time tail = std::max(head_arrival + timing_.byte_time(len - 1),
                                  w->data_ready + w->pipe_ns);
  w->tail_time = tail;
  // The source's last byte departs one pipe latency before the tail lands.
  const sim::Time src_done = std::max(queue_.now(), tail - w->pipe_ns);
  const std::uint16_t src = w->src_host;
  queue_.schedule_at(src_done, [this, src, handle] {
    hooks_[src]->on_tx_complete(queue_.now(), handle);
  });

  queue_.schedule_at(tail, [this, w, host, hooks] {
    // Fault injection (tests of GM's reliability claims, §3): a faulty
    // last hop may lose the packet outright or flip a payload bit, which
    // the CRC check at the receiving MCP turns into a discard.
    bool lost = false;
    if (faults_.drop_probability > 0 &&
        fault_rng_.next_bool(faults_.drop_probability)) {
      lost = true;
      ++stats_.faults_injected;
    } else if (faults_.corrupt_probability > 0 &&
               fault_rng_.next_bool(faults_.corrupt_probability) &&
               w->bytes.size() > 3) {
      const auto victim =
          3 + fault_rng_.next_below(w->bytes.size() - 3);
      w->bytes[victim] ^= 0x40;
      ++stats_.faults_injected;
    }
    ++stats_.delivered;
    tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
      return "tx" + std::to_string(w->handle) + (lost ? " LOST before h" : " delivered to h") +
             std::to_string(host);
    });
    WirePacket pkt{w->handle, std::move(w->bytes), w->src_host, w->injected_at};
    release_channels(w);
    finish_worm(w);
    if (lost) {
      hooks->on_rx_aborted(queue_.now(), pkt.handle);
    } else {
      hooks->on_rx_complete(queue_.now(), std::move(pkt));
    }
  });
}

void Network::release_channels(Worm* w) {
  for (auto c : w->held) {
    auto& st = channels_[channel_index(c)];
    st.busy = false;
    channel_busy_[channel_index(c)] += queue_.now() - st.busy_since;
    if (st.waiters.empty()) continue;
    // Re-arbitrate: the front waiter gets the channel unless the host gate
    // holds it back, in which case it stays parked.
    const auto target = topo_.channel_target(c);
    const bool gated = target.node.kind == topo::NodeKind::kHost &&
                       !rx_ready_[target.node.index];
    if (gated) continue;
    Worm* next = st.waiters.front();
    st.waiters.pop_front();
    grant_channel(next, c);
  }
  w->held.clear();
}

void Network::drop(Worm* w, const char* why) {
  ++stats_.dropped;
  tracer_.emit(queue_.now(), sim::TraceCategory::kLink, [&] {
    return "tx" + std::to_string(w->handle) + " dropped: " + why;
  });
  if (hooks_[w->src_host]) hooks_[w->src_host]->on_tx_dropped(queue_.now(), w->handle);
  release_channels(w);
  finish_worm(w);
}

void Network::finish_worm(Worm* w) {
  w->done = true;
  --live_worms_;
  // Compact occasionally so long runs don't accumulate dead worms.
  if (worms_.size() > 64 && live_worms_ < worms_.size() / 2) {
    std::erase_if(worms_, [](const std::unique_ptr<Worm>& p) { return p->done; });
  }
}

void Network::register_metrics(telemetry::MetricRegistry& registry) const {
  auto source = [&registry, this](const char* name,
                                  const std::uint64_t& field) {
    registry.register_source("net", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  source("injected", stats_.injected);
  source("delivered", stats_.delivered);
  source("dropped", stats_.dropped);
  source("head_blocks", stats_.head_blocks);
  source("faults_injected", stats_.faults_injected);
  for (std::size_t c = 0; c < channel_busy_.size(); ++c)
    registry.register_source(
        "net", "channel_busy_ns", telemetry::MetricKind::kGauge,
        [this, c] { return static_cast<double>(channel_busy_[c]); },
        telemetry::Labels{.host = -1, .channel = static_cast<int>(c)});
}

}  // namespace itb::net
