// The unit the network carries between NICs.
#pragma once

#include <cstdint>

#include "itb/packet/format.hpp"
#include "itb/sim/time.hpp"

namespace itb::net {

/// Identifies one in-flight transmission (not one logical message: an ITB
/// re-injection is a new transmission of the same logical packet).
using TxHandle = std::uint64_t;

struct WirePacket {
  TxHandle handle = 0;
  packet::Bytes bytes;      // route bytes still present are consumed en route
  std::uint16_t src_host = 0;
  sim::Time injected_at = 0;
};

}  // namespace itb::net
