// Virtual-lane policy interface.
//
// A physical directed channel can be split into several virtual lanes, each
// with its own flit buffer and waiter FIFO; a worm occupies exactly one lane
// of every channel it crosses. Which lane is a pure, deterministic function
// of the worm's lane state and the next channel — the LanePolicy below —
// so multi-lane runs stay bit-identical for any --jobs, and the per-lane
// channel dependency graph (routing::DependencyGraph with lane_count > 1)
// can verify an engine's deadlock-freedom claim statically.
//
// The interface is deliberately tiny: the engine subsystem
// (itb::engine::DeadlockEngine) implements it for each deadlock-freedom
// mechanism; the network only ever calls these three functions on the hot
// path and never allocates for them.
#pragma once

#include <cstdint>

#include "itb/topo/topology.hpp"

namespace itb::net {

/// Per-worm lane-selection state, carried in the Worm and mutated by
/// LanePolicy::lane_for once per traversal. POD so warm worm recycling
/// resets it with two byte stores.
struct LaneState {
  std::uint8_t lane = 0;   // lane the worm currently rides
  std::uint8_t flags = 0;  // policy-private (VC ladder: saw-a-down bit)
};

/// Lane selection policy. lane_count() is fixed for the policy's life; the
/// network sizes its per-lane tables from it at install time
/// (Network::set_lane_policy), never mid-traffic.
class LanePolicy {
 public:
  virtual ~LanePolicy() = default;

  /// Lanes per physical directed channel (>= 1, <= 255).
  virtual unsigned lane_count() const = 0;

  /// Lane of the injection (host -> switch) traversal for a worm sourced at
  /// `host`. Also resets any per-worm ladder state semantics: the returned
  /// lane seeds LaneState::lane with flags cleared.
  virtual std::uint8_t injection_lane(std::uint16_t host) const = 0;

  /// Lane for the next traversal `next`, called exactly once per traversal
  /// in route order (the result is captured before the channel request is
  /// scheduled, so a grant after a wait never re-evaluates it). Mutates
  /// `state` — a ladder policy ratchets the lane upward on down->up
  /// transitions. Must return < lane_count().
  virtual std::uint8_t lane_for(LaneState& state, topo::Channel next) const = 0;
};

}  // namespace itb::net
