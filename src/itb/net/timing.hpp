// Wire-level timing parameters.
//
// Defaults are calibrated to the paper's testbed: Myrinet LAN links run at
// 1.28 Gbit/s = 6.25 ns/byte, which matches the paper's own conversions
// (44 bytes = 275 ns, 32 bytes = 200 ns, §2). Switch fall-through and the
// LAN-port penalty reproduce the §5 observation that switch latency depends
// on the traversed port kinds.
#pragma once

#include "itb/sim/time.hpp"

namespace itb::net {

struct NetTiming {
  /// Link rate as nanoseconds per 256 bytes (1600 = 6.25 ns/byte).
  std::int64_t ns_per_256bytes = 1600;

  /// Cable propagation delay per link (few metres of copper/fibre).
  sim::Duration link_latency_ns = 10;

  /// Switch fall-through: header decode + crossbar setup, SAN in/out.
  sim::Duration switch_fallthrough_ns = 150;

  /// Extra latency per LAN port crossed (each of the input and output port
  /// contributes if its link is a LAN link). M2FM-SW8 LAN ports re-time the
  /// signal and are noticeably slower than SAN ports.
  sim::Duration lan_port_penalty_ns = 200;

  /// Extra head latency when a grant lands on a virtual lane while a
  /// sibling lane of the same physical channel is busy (the lane mux
  /// interleaves flits). 0 by default — single-lane engines and the stock
  /// timing model are unaffected; the engine bench can charge VC storage
  /// its arbitration cost here.
  sim::Duration lane_mux_penalty_ns = 0;

  sim::Duration byte_time(std::int64_t bytes) const {
    return sim::scaled_bytes_time(bytes, ns_per_256bytes);
  }
};

}  // namespace itb::net
