// Event-driven wormhole network.
//
// Packets propagate as "worms": the head walks the source route hop by hop,
// reserving the directed channel of every link it crosses; payload bytes
// stream pipelined behind it at link rate. A blocked head keeps its channels
// reserved — the wormhole property that makes contention cascade (§1) and
// that ITB ejection relieves. Myrinet's Stop&Go flow control appears as its
// observable consequence: an upstream transmitter pauses while its channel
// chain is stalled, and reception at an ejecting NIC continues regardless of
// whether the re-injection is blocked (§4).
//
// Channel arbitration is FIFO per directed channel. The channel into a host
// is additionally gated on the NIC having a free receive buffer: a NIC out
// of buffers exerts backpressure exactly like a busy channel.
//
// Completion timing: with every link at the same rate, the tail reaches the
// destination at
//     max(head_arrival + (len-1) * byte_time,  data_ready + pipe_latency)
// where pipe_latency accumulates the per-hop fixed costs the head paid and
// data_ready is when the *source* had the last byte available — the hook
// that models virtual cut-through re-injection of a packet that is still
// being received (§4).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "itb/net/timing.hpp"
#include "itb/net/wire_packet.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/rng.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/metrics.hpp"
#include "itb/topo/topology.hpp"

namespace itb::net {

/// Endpoint callbacks, implemented by the NIC model. All times are the
/// simulated instants of the wire events themselves; the NIC adds its own
/// processing costs on top.
class HostHooks {
 public:
  virtual ~HostHooks() = default;

  /// First byte of a packet reached the NIC.
  virtual void on_rx_head(sim::Time t, TxHandle h) = 0;

  /// The first four bytes are in NIC SRAM — the trigger of the paper's
  /// Early Recv Packet event. `head4` holds up to 4 leading bytes.
  virtual void on_rx_early_header(sim::Time t, TxHandle h,
                                  const packet::Bytes& head4) = 0;

  /// Last byte landed; the packet (route bytes already consumed) is handed
  /// over. The receive buffer the NIC granted is now in use.
  virtual void on_rx_complete(sim::Time t, WirePacket packet) = 0;

  /// The injection's first byte left the NIC (send DMA streaming).
  virtual void on_tx_started(sim::Time t, TxHandle h) = 0;

  /// The injection's last byte left the NIC (send DMA free again).
  virtual void on_tx_complete(sim::Time t, TxHandle h) = 0;

  /// The packet was dropped in the network (malformed route). Diagnostic.
  virtual void on_tx_dropped(sim::Time /*t*/, TxHandle /*h*/) {}

  /// A reception that began (on_rx_head fired) will never complete — the
  /// packet was lost by fault injection. The NIC must release whatever it
  /// reserved for this handle.
  virtual void on_rx_aborted(sim::Time /*t*/, TxHandle /*h*/) {}
};

/// Counters exposed for benches and tests.
struct NetworkStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t head_blocks = 0;  // times a head had to queue for a channel
  std::uint64_t faults_injected = 0;  // packets killed/corrupted by FaultPlan
};

/// Fault injection: GM promises "reliable and ordered packet delivery in
/// presence of network faults" (§3); this is how the test suite makes the
/// network unfaithful. Probabilities are per delivered packet.
struct FaultPlan {
  double drop_probability = 0.0;     // packet vanishes at the last hop
  double corrupt_probability = 0.0;  // one payload byte is flipped
  std::uint64_t seed = 0x5EED;
};

class Network {
 public:
  Network(const topo::Topology& topo, const NetTiming& timing,
          sim::EventQueue& queue, sim::Tracer& tracer);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the NIC serving `host`. Must be called once per host before
  /// any traffic involving it.
  void attach_host(std::uint16_t host, HostHooks* hooks);

  /// Queue a packet for injection at `host`. `data_ready` is when the last
  /// byte becomes available in the sending NIC (pass std::nullopt for a
  /// fully buffered packet: ready as soon as transmission reaches it).
  /// Transmission begins when the host's uplink channel is granted.
  TxHandle inject(std::uint16_t host, packet::Bytes bytes,
                  std::optional<sim::Time> data_ready = std::nullopt);

  /// Arm fault injection (replaces any previous plan; a default-constructed
  /// plan disables it).
  void set_fault_plan(const FaultPlan& plan);

  /// Receive-buffer gate: while false, the channel into `host` is not
  /// granted and upstream packets stall (Stop&Go backpressure).
  void set_host_rx_ready(std::uint16_t host, bool ready);
  bool host_rx_ready(std::uint16_t host) const;

  const NetworkStats& stats() const { return stats_; }
  const NetTiming& timing() const { return timing_; }
  const topo::Topology& topology() const { return topo_; }

  /// Total time each directed channel spent reserved; index 2*link +
  /// (forward ? 0 : 1). Load-balance benches read this.
  const std::vector<sim::Duration>& channel_busy_ns() const {
    return channel_busy_;
  }

  /// Number of worms currently in flight (for drain loops in tests).
  std::size_t in_flight() const { return live_worms_; }

  /// Publish the NetworkStats counters and per-channel busy time under
  /// component "net" (callback-backed: stats() stays the source of truth).
  void register_metrics(telemetry::MetricRegistry& registry) const;

  /// Snapshot of an in-flight reception, valid between on_rx_head and
  /// on_rx_complete at the destination NIC. The NIC uses it to set up a
  /// virtual cut-through re-injection while the packet is still arriving:
  /// the real LANai streams bytes from its receive buffer as they land;
  /// the simulator equivalently hands over the content plus the instant
  /// the last byte will be in SRAM (`tail_time`).
  struct RxPeek {
    const packet::Bytes* bytes;
    sim::Time tail_time;
  };
  std::optional<RxPeek> peek_rx(TxHandle h) const;

 private:
  struct Worm;
  struct ChannelState {
    bool busy = false;
    sim::Time busy_since = 0;
    std::deque<Worm*> waiters;
  };

  const topo::Topology& topo_;
  NetTiming timing_;
  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  NetworkStats stats_;
  FaultPlan faults_;
  sim::Rng fault_rng_;

  std::vector<HostHooks*> hooks_;     // by host index
  std::vector<bool> rx_ready_;        // by host index
  std::vector<ChannelState> channels_;  // by channel index
  std::vector<sim::Duration> channel_busy_;
  std::vector<std::unique_ptr<Worm>> worms_;
  std::size_t live_worms_ = 0;
  TxHandle next_handle_ = 1;

  static std::uint32_t channel_index(topo::Channel c) {
    return 2 * c.link + (c.forward ? 0 : 1);
  }

  /// Directed channel leaving `from` through `port`; nullopt if dangling.
  std::optional<topo::Channel> channel_out(topo::NodeId from,
                                           std::uint8_t port) const;

  void request_channel(Worm* w, topo::Channel c);
  void grant_channel(Worm* w, topo::Channel c);
  void release_channels(Worm* w);
  void head_at_node(Worm* w, topo::Endpoint arrival);
  void complete_at_host(Worm* w, std::uint16_t host, sim::Time head_arrival);
  void drop(Worm* w, const char* why);
  void finish_worm(Worm* w);
};

}  // namespace itb::net
