// Event-driven wormhole network.
//
// Packets propagate as "worms": the head walks the source route hop by hop,
// reserving the directed channel of every link it crosses; payload bytes
// stream pipelined behind it at link rate. A blocked head keeps its channels
// reserved — the wormhole property that makes contention cascade (§1) and
// that ITB ejection relieves. Myrinet's Stop&Go flow control appears as its
// observable consequence: an upstream transmitter pauses while its channel
// chain is stalled, and reception at an ejecting NIC continues regardless of
// whether the re-injection is blocked (§4).
//
// Channel arbitration is FIFO per directed channel. The channel into a host
// is additionally gated on the NIC having a free receive buffer: a NIC out
// of buffers exerts backpressure exactly like a busy channel.
//
// Completion timing: with every link at the same rate, the tail reaches the
// destination at
//     max(head_arrival + (len-1) * byte_time,  data_ready + pipe_latency)
// where pipe_latency accumulates the per-hop fixed costs the head paid and
// data_ready is when the *source* had the last byte available — the hook
// that models virtual cut-through re-injection of a packet that is still
// being received (§4).
//
// Fault injection is delegated to a FaultHook (fault::FaultInjector): the
// network consults it before every channel grant (a down link kills the worm
// at that hop), at the host gate (a stalled NIC parks traffic losslessly),
// and at each segment delivery (probabilistic drop/corrupt). With no hook
// installed the wire is faithful and none of the checks run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "itb/flight/recorder.hpp"
#include "itb/net/lanes.hpp"
#include "itb/net/timing.hpp"
#include "itb/net/wire_packet.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/slab_pool.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/metrics.hpp"
#include "itb/topo/topology.hpp"

namespace itb::net {

/// Endpoint callbacks, implemented by the NIC model. All times are the
/// simulated instants of the wire events themselves; the NIC adds its own
/// processing costs on top.
class HostHooks {
 public:
  virtual ~HostHooks() = default;

  /// First byte of a packet reached the NIC.
  virtual void on_rx_head(sim::Time t, TxHandle h) = 0;

  /// The first four bytes are in NIC SRAM — the trigger of the paper's
  /// Early Recv Packet event. `head4` holds up to 4 leading bytes.
  virtual void on_rx_early_header(sim::Time t, TxHandle h,
                                  const packet::Bytes& head4) = 0;

  /// Last byte landed; the packet (route bytes already consumed) is handed
  /// over. The receive buffer the NIC granted is now in use.
  virtual void on_rx_complete(sim::Time t, WirePacket packet) = 0;

  /// The injection's first byte left the NIC (send DMA streaming).
  virtual void on_tx_started(sim::Time t, TxHandle h) = 0;

  /// The injection's last byte left the NIC (send DMA free again).
  virtual void on_tx_complete(sim::Time t, TxHandle h) = 0;

  /// The packet was discarded at or near injection (malformed route, or a
  /// fault killed it before the source finished streaming). The send DMA is
  /// free again.
  virtual void on_tx_dropped(sim::Time /*t*/, TxHandle /*h*/) {}

  /// A reception that began (on_rx_head fired) will never complete — the
  /// packet was lost by fault injection. The NIC must release whatever it
  /// reserved for this handle.
  virtual void on_rx_aborted(sim::Time /*t*/, TxHandle /*h*/) {}
};

/// Counters exposed for benches and tests. At quiescence
///   injected == delivered + dropped + lost.
struct NetworkStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;      // malformed route / unattached destination
  std::uint64_t head_blocks = 0;  // times a head had to queue for a channel
  std::uint64_t faults_injected = 0;  // fault events (kills + corruptions)
  std::uint64_t lost = 0;             // packets destroyed by faults
};

/// Fault-injection interface (implemented by fault::FaultInjector). The
/// network never decides fates itself; it only reports them in its stats.
class FaultHook {
 public:
  enum class Fate : std::uint8_t { kDeliver, kDrop, kCorrupt };

  virtual ~FaultHook() = default;

  /// May a head cross this channel right now? false kills the worm here —
  /// bytes entering a dead link are gone, wormhole offers no recovery.
  virtual bool channel_usable(topo::Channel c) const = 0;

  /// Is the NIC at `host` accepting receptions? false models a stalled NIC:
  /// traffic parks under Stop&Go backpressure, nothing is lost.
  virtual bool host_accepting(std::uint16_t host) const = 0;

  /// Fate of a packet whose tail just reached `host`. A kCorrupt verdict
  /// flips payload byte(s) in `bytes` in place before delivery.
  virtual Fate delivery_fate(std::uint16_t host, packet::Bytes& bytes) = 0;

  /// A worm was killed by a channel_usable() veto at `at` (cause
  /// accounting: link / switch / host windows each keep their own counter).
  virtual void note_kill(topo::Channel at) = 0;
};

class Network {
 public:
  Network(const topo::Topology& topo, const NetTiming& timing,
          sim::EventQueue& queue, sim::Tracer& tracer);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the NIC serving `host`. Must be called once per host before
  /// any traffic involving it.
  void attach_host(std::uint16_t host, HostHooks* hooks);

  /// Queue a packet for injection at `host`. `data_ready` is when the last
  /// byte becomes available in the sending NIC (pass std::nullopt for a
  /// fully buffered packet: ready as soon as transmission reaches it).
  /// Transmission begins when the host's uplink channel is granted.
  TxHandle inject(std::uint16_t host, packet::Bytes bytes,
                  std::optional<sim::Time> data_ready = std::nullopt);

  /// Install (or clear, with nullptr) the fault hook. The hook must outlive
  /// the network or be cleared before destruction.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  /// Install (or clear, with nullptr) the virtual-lane policy. Resizes the
  /// per-lane channel tables, so it must run before any traffic and with
  /// nothing in flight; the policy must outlive the network or be cleared.
  /// A policy with lane_count() == 1 (or nullptr) leaves the network on the
  /// classical single-lane hot path — zero extra work per event.
  void set_lane_policy(const LanePolicy* policy);
  unsigned lane_count() const { return lanes_; }

  /// Lane the policy assigns to injections at `host` (0 without a policy).
  std::uint8_t injection_lane(std::uint16_t host) const {
    return lane_policy_ ? lane_policy_->injection_lane(host) : 0;
  }

  /// Install (or clear) the flight recorder. Off by default; when set,
  /// every lifecycle station (inject, channel block/grant, per-hop head
  /// motion, NIC eject, tail, terminal fates) records one packed event.
  void set_flight_recorder(flight::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  flight::FlightRecorder* flight_recorder() const { return flight_; }

  /// The fault hook reports a link's state changed. Down: every worm
  /// holding or waiting for either directed channel is killed. Up: both
  /// channels re-arbitrate.
  void on_link_state(topo::LinkId link, bool up);

  /// Re-run arbitration for the channel into `host` (used when a NIC-stall
  /// fault window closes; parked traffic resumes).
  void rearbitrate_host(std::uint16_t host);

  /// Receive-buffer gate: while false, the channel into `host` is not
  /// granted and upstream packets stall (Stop&Go backpressure).
  void set_host_rx_ready(std::uint16_t host, bool ready);
  bool host_rx_ready(std::uint16_t host) const;

  const NetworkStats& stats() const { return stats_; }
  const NetTiming& timing() const { return timing_; }
  const topo::Topology& topology() const { return topo_; }

  /// Total time each directed channel spent reserved; index 2*link +
  /// (forward ? 0 : 1). Load-balance benches read this. With lanes the
  /// physical channel accumulates every lane's busy time.
  const std::vector<sim::Duration>& channel_busy_ns() const {
    return channel_busy_;
  }

  /// Per-lane busy time, index (2*link + dir) * lane_count() + lane. Empty
  /// on a single-lane network (channel_busy_ns() is already per lane then).
  const std::vector<sim::Duration>& lane_busy_ns() const { return lane_busy_; }

  /// Number of worms currently in flight (for drain loops in tests).
  std::size_t in_flight() const { return live_worms_; }

  /// One in-flight worm's wait state, as seen by the liveness diagnoser
  /// (health::WaitGraphDiagnoser): which channel lanes it holds and what it
  /// is parked on. `blocked` worms sit in a lane's waiter queue; the gate
  /// fields describe why a free channel into a host still was not granted.
  struct HeldLane {
    topo::Channel channel{};
    std::uint8_t lane = 0;
  };
  struct WormWait {
    TxHandle handle = 0;
    std::uint16_t src_host = 0;
    sim::Time injected_at = 0;
    std::vector<HeldLane> held;
    bool blocked = false;
    topo::Channel waiting_on{};       // valid iff blocked
    std::uint8_t waiting_lane = 0;    // valid iff blocked
    bool waiting_channel_busy = false;  // another worm owns waiting_on's lane
    bool gate_closed = false;  // waiting_on enters a host whose gate is shut
    bool gate_fault = false;   // ... shut by the fault hook (NIC stall)
    std::uint16_t gate_host = 0;  // valid iff gate_closed
  };
  std::vector<WormWait> wait_snapshot() const;

  /// Handle of the blocked worm with the earliest injection time (FIFO tie
  /// break by handle); nullopt when nothing is blocked.
  std::optional<TxHandle> oldest_blocked() const;

  /// Destroy an in-flight worm to break a wedge (watchdog escalation). The
  /// packet counts as `lost` but NOT as a fault: the loss belongs to the
  /// health ledger (health.forced_ejections), not the fault injector's.
  /// Returns false if the handle is unknown or already finished.
  bool force_eject(TxHandle h);

  /// Invoked on every inject(); lets a parked liveness watchdog re-arm
  /// without polling an idle network. Clear with nullptr.
  void set_activity_hook(std::function<void()> hook) {
    activity_hook_ = std::move(hook);
  }

  /// Publish the NetworkStats counters and per-channel busy time under
  /// component "net" (callback-backed: stats() stays the source of truth).
  void register_metrics(telemetry::MetricRegistry& registry) const;

  /// Snapshot of an in-flight reception, valid between on_rx_head and
  /// on_rx_complete at the destination NIC. The NIC uses it to set up a
  /// virtual cut-through re-injection while the packet is still arriving:
  /// the real LANai streams bytes from its receive buffer as they land;
  /// the simulator equivalently hands over the content plus the instant
  /// the last byte will be in SRAM (`tail_time`).
  struct RxPeek {
    const packet::Bytes* bytes;
    sim::Time tail_time;
  };
  std::optional<RxPeek> peek_rx(TxHandle h) const;

 private:
  /// One in-flight transmission. Worms live in a SlabPool: acquired on
  /// inject, released on any terminal fate, recycled WARM so the bytes and
  /// held vectors keep their capacities — the steady state allocates
  /// nothing. Slab storage never moves, so the raw Worm* kept by channel
  /// owners and event closures stays valid for the worm's whole life.
  struct Worm {
    TxHandle handle = 0;
    packet::Bytes bytes;
    std::uint32_t route_off = 0;  // route bytes consumed so far (the bytes
                                  // themselves are erased once, at the
                                  // destination NIC, not per hop)
    std::uint16_t src_host = 0;
    std::uint16_t dst_host = 0;  // set once the head reaches the final NIC
    sim::Time injected_at = 0;
    std::optional<sim::Time> data_ready_opt;
    sim::Time data_ready = 0;   // resolved at injection grant
    sim::Duration pipe_ns = 0;  // fixed per-hop latency the head has paid
    std::size_t orig_len = 0;
    /// Channel-lane slots held (index into channels_), route order. Plain
    /// ints rather than Channel+lane pairs: the slot IS the arbitration
    /// identity, and phys/lane decompose from it when needed.
    std::vector<std::uint32_t> held;
    std::optional<topo::Channel> waiting_on;  // parked in this lane's queue
    std::uint8_t waiting_lane = 0;            // valid iff waiting_on
    LaneState lane_state;  // mutated by the lane policy per traversal
    sim::Time tail_time = -1;  // set once the head reaches the final NIC
    bool rx_started = false;   // on_rx_head fired at the destination
    bool tx_signaled = false;  // on_tx_complete / on_tx_dropped fired
    bool done = false;
    // Pending events, cancelled if a fault kills the worm mid-flight.
    sim::EventId pending;         // next head hop / tail arrival
    sim::EventId early_event;     // early-header callback
    sim::EventId src_done_event;  // source on_tx_complete
    // Intrusive links: the network-wide live list (insertion order) and the
    // FIFO waiter queue of the channel named by waiting_on.
    Worm* live_prev = nullptr;
    Worm* live_next = nullptr;
    Worm* wait_prev = nullptr;
    Worm* wait_next = nullptr;
    sim::PoolHandle self;  // this worm's own pool slot
  };

  /// Per directed channel LANE (one entry per lane of each channel; a
  /// single-lane network degenerates to the classical per-channel table).
  /// Waiters are an intrusive doubly-linked FIFO threaded through the worms
  /// themselves (a worm waits on at most one lane), replacing the
  /// per-channel std::deque.
  struct ChannelState {
    bool busy = false;
    sim::Time busy_since = 0;
    Worm* owner = nullptr;  // holder while busy (kill target on link-down)
    Worm* wait_head = nullptr;
    Worm* wait_tail = nullptr;
  };

  const topo::Topology& topo_;
  NetTiming timing_;
  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  NetworkStats stats_;
  FaultHook* fault_hook_ = nullptr;
  flight::FlightRecorder* flight_ = nullptr;
  const LanePolicy* lane_policy_ = nullptr;  // non-null only when lanes_ > 1
  unsigned lanes_ = 1;
  std::function<void()> activity_hook_;

  std::vector<HostHooks*> hooks_;       // by host index
  std::vector<std::uint8_t> rx_ready_;  // by host index (byte, not
                                        // vector<bool>: the host gate reads
                                        // this on every channel request)
  std::vector<ChannelState> channels_;  // by channel-lane slot
  std::vector<sim::Duration> channel_busy_;  // per PHYSICAL channel
  std::vector<sim::Duration> lane_busy_;     // per slot; empty when lanes_==1
  sim::SlabPool<Worm> worm_pool_;
  Worm* live_head_ = nullptr;  // in-flight worms, injection order
  Worm* live_tail_ = nullptr;
  std::size_t live_worms_ = 0;
  TxHandle next_handle_ = 1;
  packet::Bytes early_scratch_;  // reused 4-byte Early-Recv snapshot

  // Dense topology caches, built once in the constructor (the Topology is
  // immutable for the Network's life). Indexed by channel index, they turn
  // the per-hop O(links) Topology::link_at scan into one array read.
  std::uint32_t max_ports_ = 1;
  std::vector<std::int32_t> out_channel_;  // [node_slot * max_ports_ + port]
                                           // -> channel index, -1 dangling
  std::vector<topo::Endpoint> channel_target_;  // per channel index
  std::vector<std::uint8_t> channel_is_lan_;    // per channel index
  std::vector<std::int32_t> channel_gate_host_;  // host the channel enters,
                                                 // -1 if it enters a switch
  std::vector<std::int32_t> host_out_channel_;  // host uplink, -1 unattached
  std::vector<std::int32_t> host_in_channel_;   // into host, -1 unattached

  static std::uint32_t channel_index(topo::Channel c) {
    return 2 * c.link + (c.forward ? 0 : 1);
  }
  static topo::Channel channel_from_index(std::uint32_t idx) {
    return topo::Channel{idx >> 1, (idx & 1u) == 0};
  }
  // Channel-lane slots: channels_[phys * lanes_ + lane]. With lanes_ == 1
  // slot == physical channel index, so every single-lane run takes the
  // exact pre-lane arithmetic (slot/1, slot%1 fold away).
  std::uint32_t slot_of(topo::Channel c, std::uint8_t lane) const {
    return channel_index(c) * lanes_ + lane;
  }
  std::uint32_t phys_of(std::uint32_t slot) const { return slot / lanes_; }
  std::uint8_t lane_of(std::uint32_t slot) const {
    return static_cast<std::uint8_t>(slot % lanes_);
  }
  topo::Channel channel_of(std::uint32_t slot) const {
    return channel_from_index(phys_of(slot));
  }
  std::size_t node_slot(topo::NodeId n) const {
    return (n.kind == topo::NodeKind::kHost ? topo_.switch_count() : 0) +
           n.index;
  }
  /// Channel leaving `from` through `port`; -1 if dangling.
  std::int32_t out_channel_idx(topo::NodeId from, std::uint8_t port) const {
    if (port >= max_ports_) return -1;
    return out_channel_[node_slot(from) * max_ports_ + port];
  }

  // Intrusive-list plumbing.
  void live_insert(Worm* w);
  void live_remove(Worm* w);
  static void waiter_push(ChannelState& st, Worm* w);
  static Worm* waiter_pop(ChannelState& st);
  static void waiter_unlink(ChannelState& st, Worm* w);

  /// The host gate: rx-buffer backpressure or a NIC-stall fault window.
  bool host_gate_closed(topo::Endpoint target) const;
  /// Same gate keyed by channel index — one table read on the request path.
  bool gate_closed_idx(std::uint32_t channel_idx) const {
    const std::int32_t h = channel_gate_host_[channel_idx];
    if (h < 0) return false;
    if (!rx_ready_[static_cast<std::size_t>(h)]) return true;
    return fault_hook_ &&
           !fault_hook_->host_accepting(static_cast<std::uint16_t>(h));
  }

  void request_channel(Worm* w, std::uint32_t slot);
  void grant_channel(Worm* w, std::uint32_t slot);
  void release_channels(Worm* w);
  /// Grant the slot to its front waiter if it is free, usable and ungated;
  /// if the fault hook vetoes the channel, every parked waiter is killed.
  void arbitrate(std::uint32_t slot);
  void head_at_node(Worm* w, topo::Endpoint arrival);
  void complete_at_host(Worm* w, std::uint16_t host, sim::Time head_arrival);
  void drop(Worm* w, const char* why);
  /// Destroy an in-flight worm at `at`: cancels its scheduled events,
  /// releases its channels and fires the abort-side hooks. `fault` charges
  /// the kill to the fault ledger (faults_injected + note_kill); a forced
  /// ejection passes false and only counts as lost.
  void kill_worm(Worm* w, topo::Channel at, const char* why,
                 bool fault = true);
  void finish_worm(Worm* w);
};

}  // namespace itb::net
