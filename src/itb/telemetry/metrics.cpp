#include "itb/telemetry/metrics.hpp"

#include <stdexcept>

namespace itb::telemetry {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
  }
  return "?";
}

double MetricRegistry::Slot::read() const {
  if (source) return source();
  return kind == MetricKind::kCounter ? static_cast<double>(counter_value)
                                      : gauge_value;
}

MetricRegistry::Slot& MetricRegistry::add_slot(std::string component,
                                               std::string name,
                                               MetricKind kind, Labels labels) {
  for (const auto& s : slots_)
    if (s.component == component && s.name == name && s.labels == labels)
      throw std::invalid_argument("metric already registered: " + component +
                                  "." + name);
  slots_.push_back(Slot{std::move(component), std::move(name), labels, kind,
                        0, 0.0, nullptr});
  return slots_.back();
}

Counter MetricRegistry::counter(std::string component, std::string name,
                                Labels labels) {
  auto& slot =
      add_slot(std::move(component), std::move(name), MetricKind::kCounter,
               labels);
  return Counter(&slot.counter_value);
}

Gauge MetricRegistry::gauge(std::string component, std::string name,
                            Labels labels) {
  auto& slot = add_slot(std::move(component), std::move(name),
                        MetricKind::kGauge, labels);
  return Gauge(&slot.gauge_value);
}

void MetricRegistry::register_source(std::string component, std::string name,
                                     MetricKind kind, Source source,
                                     Labels labels) {
  if (!source) throw std::invalid_argument("metric source must be callable");
  auto& slot = add_slot(std::move(component), std::move(name), kind, labels);
  slot.source = std::move(source);
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_)
    out.push_back(MetricSample{s.component, s.name, s.labels, s.kind, s.read()});
  return out;
}

std::optional<double> MetricRegistry::value(std::string_view component,
                                            std::string_view name,
                                            Labels labels) const {
  for (const auto& s : slots_)
    if (s.component == component && s.name == name && s.labels == labels)
      return s.read();
  return std::nullopt;
}

}  // namespace itb::telemetry
