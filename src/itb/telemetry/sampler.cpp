#include "itb/telemetry/sampler.hpp"

#include <stdexcept>

namespace itb::telemetry {

Sampler::Sampler(sim::EventQueue& queue, sim::Tracer& tracer,
                 sim::Duration period)
    : queue_(queue), tracer_(tracer), period_(period) {
  if (period_ <= 0) throw std::invalid_argument("sampler period must be > 0");
}

void Sampler::add_probe(std::string name, Labels labels, Mode mode,
                        Probe probe, double scale) {
  if (!probe) throw std::invalid_argument("sampler probe must be callable");
  for (const auto& s : series_)
    if (s.name == name && s.labels == labels)
      throw std::invalid_argument("sampler probe already registered: " + name);
  Series s;
  s.name = std::move(name);
  s.labels = labels;
  s.mode = mode;
  s.scale = scale;
  series_.push_back(std::move(s));
  probes_.push_back(std::move(probe));
  prev_.push_back(0.0);
}

void Sampler::set_period(sim::Duration period) {
  if (period <= 0) throw std::invalid_argument("sampler period must be > 0");
  if (armed_) throw std::logic_error("cannot change period while armed");
  period_ = period;
}

void Sampler::start() {
  if (armed_) return;
  if (!running_) {
    // Fresh start: baseline every rate probe so the first window measures
    // growth from now, not from zero.
    running_ = true;
    prev_at_ = queue_.now();
    for (std::size_t i = 0; i < probes_.size(); ++i) prev_[i] = probes_[i]();
  }
  arm();
}

void Sampler::arm() {
  armed_ = true;
  pending_tick_ = queue_.schedule_in(period_, [this] { tick(); });
}

void Sampler::tick() {
  armed_ = false;
  sample_all(queue_.now());
  // Re-arm only while the simulation has other work: a lone sampler tick
  // would otherwise keep a drain-style run() alive forever. Parking loses
  // nothing because simulated time halts with an empty queue; resume()
  // (or stop()'s flush) picks the window back up.
  if (queue_.pending() > 0) arm();
}

void Sampler::sample_all(sim::Time t) {
  const sim::Duration elapsed = t - prev_at_;
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    const double raw = probes_[i]();
    double v = 0.0;
    switch (series_[i].mode) {
      case Mode::kLevel:
        v = raw * series_[i].scale;
        break;
      case Mode::kRate:
        v = elapsed > 0 ? series_[i].scale * (raw - prev_[i]) /
                              static_cast<double>(elapsed)
                        : 0.0;
        break;
    }
    series_[i].at.push_back(t);
    series_[i].values.push_back(v);
    prev_[i] = raw;
  }
  prev_at_ = t;
  ++ticks_;
  tracer_.emit(t, sim::TraceCategory::kTelemetry, [&] {
    std::string msg = "tick " + std::to_string(ticks_) + " dt=" +
                      std::to_string(elapsed) + " probes=" +
                      std::to_string(probes_.size());
    // Dump every sampled value: the sink only exists in debug sessions and
    // this is exactly the cross-check data (satellite: trace <-> export).
    for (const auto& s : series_) {
      msg += " " + s.name;
      if (s.labels.host >= 0) msg += "[h" + std::to_string(s.labels.host) + "]";
      if (s.labels.channel >= 0)
        msg += "[c" + std::to_string(s.labels.channel) + "]";
      char buf[32];
      std::snprintf(buf, sizeof buf, "=%g", s.values.back());
      msg += buf;
    }
    return msg;
  });
}

void Sampler::stop() {
  if (!running_) return;
  if (armed_) {
    queue_.cancel(pending_tick_);
    armed_ = false;
  }
  // Flush the open window so cumulative counters integrate exactly.
  if (queue_.now() > prev_at_) sample_all(queue_.now());
  running_ = false;
}

const Sampler::Series* Sampler::find(std::string_view name,
                                     Labels labels) const {
  for (const auto& s : series_)
    if (s.name == name && s.labels == labels) return &s;
  return nullptr;
}

void Sampler::clear_samples() {
  for (auto& s : series_) {
    s.at.clear();
    s.values.clear();
  }
  ticks_ = 0;
}

sim::Tracer::Sink tick_log_sink(std::string& out) {
  return [&out](sim::Time t, sim::TraceCategory c, const std::string& msg) {
    if (c != sim::TraceCategory::kTelemetry) return;
    out += std::to_string(t) + " [" + sim::to_string(c) + "] " + msg + "\n";
  };
}

}  // namespace itb::telemetry
