// Unified metrics registry.
//
// Every layer of the simulator keeps ad-hoc counter structs (net::NetworkStats,
// nic::NicStats, gm::GmStats, ip::IpStats) that benches read through accessors.
// The MetricRegistry gives them one namespace: a metric is identified by
// {component, name} plus optional {host, channel} labels, and is either
//   * an owned Counter/Gauge handle (cheap pointer-sized handles backed by
//     registry storage, for new instrumentation), or
//   * a source callback that polls an existing ad-hoc counter at snapshot
//     time — the integration style used across the stack, which keeps the
//     legacy accessors as the single source of truth (no double counting).
//
// Naming scheme: components are the module names ("net", "nic", "gm", "ip",
// "core"); metric names are lower_snake_case and match the legacy struct
// field where one exists (e.g. nic.itb_forwarded).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace itb::telemetry {

/// Optional dimensions of a metric. -1 means "not scoped by this label".
struct Labels {
  int host = -1;
  int channel = -1;

  friend bool operator==(Labels, Labels) = default;
};

enum class MetricKind : std::uint8_t {
  kCounter,  // monotonically increasing
  kGauge,    // instantaneous level
};

const char* to_string(MetricKind k);

/// Handle to a registry-owned counter. Copyable, trivially cheap; a
/// default-constructed handle is inert (all operations no-ops).
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (v_) *v_ += n;
  }
  std::uint64_t value() const { return v_ ? *v_ : 0; }

 private:
  friend class MetricRegistry;
  explicit Counter(std::uint64_t* v) : v_(v) {}
  std::uint64_t* v_ = nullptr;
};

/// Handle to a registry-owned gauge.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
    if (v_) *v_ = v;
  }
  void add(double d) {
    if (v_) *v_ += d;
  }
  double value() const { return v_ ? *v_ : 0.0; }

 private:
  friend class MetricRegistry;
  explicit Gauge(double* v) : v_(v) {}
  double* v_ = nullptr;
};

/// One row of a registry snapshot.
struct MetricSample {
  std::string component;
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
};

class MetricRegistry {
 public:
  using Source = std::function<double()>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Create a registry-owned counter and return its handle.
  /// Throws std::invalid_argument if {component, name, labels} is taken.
  Counter counter(std::string component, std::string name, Labels labels = {});

  /// Create a registry-owned gauge and return its handle.
  Gauge gauge(std::string component, std::string name, Labels labels = {});

  /// Register a callback polled at snapshot time. This is how existing
  /// ad-hoc counters join the registry without being rewritten.
  void register_source(std::string component, std::string name,
                       MetricKind kind, Source source, Labels labels = {});

  /// Poll every metric. Rows appear in registration order.
  std::vector<MetricSample> snapshot() const;

  /// Current value of one metric; nullopt when not registered.
  std::optional<double> value(std::string_view component,
                              std::string_view name, Labels labels = {}) const;

  std::size_t size() const { return slots_.size(); }

 private:
  struct Slot {
    std::string component;
    std::string name;
    Labels labels;
    MetricKind kind;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    Source source;  // set => callback-backed

    double read() const;
  };

  Slot& add_slot(std::string component, std::string name, MetricKind kind,
                 Labels labels);

  // deque: handles keep pointers into slots, so addresses must be stable.
  std::deque<Slot> slots_;
};

}  // namespace itb::telemetry
