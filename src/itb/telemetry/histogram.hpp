// Log-bucketed latency histogram (HDR-histogram style).
//
// sim::SampledStats keeps every sample so its percentiles are exact, but a
// long loaded run records millions of latencies and the vector grows without
// bound. LatencyHistogram trades a bounded relative error for O(buckets)
// memory: values below 2^(sub_bits+1) land in exact unit-width buckets; above
// that, every power-of-two range is split into 2^sub_bits linear sub-buckets,
// so the bucket width is always <= value / 2^sub_bits. With the default
// sub_bits = 7 (128 sub-buckets per octave) the worst-case relative error of
// a reported percentile is 1/256 < 0.4%, comfortably inside the 1% target
// the test suite enforces.
//
// Values are non-negative integers — nanoseconds everywhere in this repo.
// Histograms with equal sub_bits can be merge()d, so per-host distributions
// aggregate into per-run ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace itb::telemetry {

class LatencyHistogram {
 public:
  explicit LatencyHistogram(unsigned sub_bits = 7);

  /// Record one value. Negative doubles clamp to zero; fractions truncate
  /// (the simulator clock is integral anyway).
  void add(double v);
  void record(std::uint64_t v, std::uint64_t times = 1);

  void clear();

  /// Merge another histogram recorded with the same sub_bits.
  /// Throws std::invalid_argument on a resolution mismatch.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  /// Exact extremes and mean (tracked outside the buckets).
  std::uint64_t min() const { return total_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  double sum() const { return sum_; }

  /// Nearest-rank percentile, p in [0, 100] (clamped). Returns the
  /// representative (midpoint) value of the bucket holding the rank,
  /// clamped into [min(), max()]; p = 0 returns min(), p = 100 max().
  double percentile(double p) const;

  unsigned sub_bits() const { return sub_bits_; }

  /// Non-empty buckets as [lo, hi) ranges, for export.
  struct Bucket {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // exclusive
    std::uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

  /// Compact one-line summary ("n=.. p50=.. p95=.. p99=.. p999=.. max=..").
  std::string summary() const;

 private:
  std::size_t index_of(std::uint64_t v) const;
  std::uint64_t bucket_lo(std::size_t i) const;
  std::uint64_t bucket_hi(std::size_t i) const;

  unsigned sub_bits_;
  std::vector<std::uint64_t> counts_;  // grows lazily with the max index seen
  std::uint64_t total_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace itb::telemetry
