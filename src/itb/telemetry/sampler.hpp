// Event-queue-driven periodic sampler.
//
// A Sampler owns a set of probes — closures reading live quantities out of
// the running models (cumulative channel busy time, ITB pending-queue depth,
// DMA busy time, GM tokens in use, retransmission counts) — and turns them
// into time series by firing a tick event every `period` nanoseconds of
// simulated time.
//
// Two probe modes:
//   * kLevel — record probe() as-is (queue depths, tokens in use);
//   * kRate  — record scale * (probe() - previous) / elapsed_ns, turning a
//     cumulative counter into a rate over the tick window. With scale = 1 a
//     busy-nanosecond counter becomes a utilization fraction in [0, 1];
//     with scale = 1e9 an event counter becomes events per second. Because
//     the elapsed window is measured (not assumed equal to the period), the
//     series integrates exactly: sum(v_i * (t_i - t_{i-1})) / scale equals
//     the counter's total growth.
//
// Interaction with queue draining: many harnesses run the queue until it
// empties (run_pingpong drains between iterations). A naively re-arming
// tick would keep the queue alive forever, so a tick that finds no other
// pending event *parks* instead of re-arming — simulated time cannot
// advance while the queue is empty, so nothing is missed. resume() re-arms
// a parked sampler; stop() records one final flush sample (so open windows
// are not lost) and disarms. Every tick is traced under
// sim::TraceCategory::kTelemetry for cross-checking against the export.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "itb/sim/event_queue.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::telemetry {

class Sampler {
 public:
  enum class Mode : std::uint8_t { kLevel, kRate };

  using Probe = std::function<double()>;

  struct Series {
    std::string name;
    Labels labels;
    Mode mode = Mode::kLevel;
    double scale = 1.0;
    std::vector<sim::Time> at;    // tick timestamps
    std::vector<double> values;   // one per tick
  };

  Sampler(sim::EventQueue& queue, sim::Tracer& tracer,
          sim::Duration period = 100 * sim::kUs);

  /// Register a probe. Must not collide with an existing {name, labels}.
  void add_probe(std::string name, Labels labels, Mode mode, Probe probe,
                 double scale = 1.0);

  /// Sampling period; may only change while the sampler is not armed.
  void set_period(sim::Duration period);
  sim::Duration period() const { return period_; }

  /// Arm the first tick at now + period and baseline every kRate probe.
  /// No-op when already armed; a parked sampler resumes.
  void start();
  /// Alias for start() that reads better at call sites that re-arm a
  /// parked sampler before scheduling more work.
  void resume() { start(); }

  /// Take a final sample covering the window since the last tick (if time
  /// advanced), then disarm. Safe to call repeatedly.
  void stop();

  /// Armed or parked (started and not stopped).
  bool running() const { return running_; }
  /// Parked: started, but the tick is not scheduled because the queue had
  /// no other work. resume() re-arms.
  bool parked() const { return running_ && !armed_; }

  std::uint64_t ticks() const { return ticks_; }

  const std::vector<Series>& series() const { return series_; }
  const Series* find(std::string_view name, Labels labels = {}) const;

  /// Time of the sample before series' first entry (the start() baseline).
  sim::Time baseline_at() const { return prev_at_; }

  /// Drop recorded samples (probes stay registered; tick count resets).
  void clear_samples();

 private:
  void arm();
  void tick();
  void sample_all(sim::Time t);

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  sim::Duration period_;
  std::vector<Series> series_;
  std::vector<Probe> probes_;       // parallel to series_
  std::vector<double> prev_;        // last polled raw value, per probe
  sim::Time prev_at_ = 0;           // time of the last poll
  bool running_ = false;
  bool armed_ = false;
  sim::EventId pending_tick_{};
  std::uint64_t ticks_ = 0;
};

/// A Tracer sink that writes only kTelemetry records to `out` as
/// "time [telemetry] message" lines — the debug view of the sampler's
/// ticks, cross-checkable against the exported time series.
sim::Tracer::Sink tick_log_sink(std::string& out);

}  // namespace itb::telemetry
