#include "itb/telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "itb/sim/alloc_hook.hpp"

namespace itb::telemetry {

// ----------------------------------------------------------- JsonWriter --

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ << ", ";
    has_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  has_element_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  has_element_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_ << json_quote(k) << ": ";
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  out_ << json_quote(s);
}

void JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    out_ << "null";
    return;
  }
  // Integral doubles print without an exponent or trailing zeros; others
  // round-trip at 17 significant digits.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out_ << buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out_ << buf;
  }
}

void JsonWriter::value(std::int64_t i) {
  separate();
  out_ << i;
}

void JsonWriter::value(std::uint64_t u) {
  separate();
  out_ << u;
}

void JsonWriter::value(bool b) {
  separate();
  out_ << (b ? "true" : "false");
}

void JsonWriter::null() {
  separate();
  out_ << "null";
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// -------------------------------------------------------- shared pieces --

void write_counter_json(JsonWriter& w, std::string_view run,
                        const MetricSample& m) {
  w.begin_object();
  if (!run.empty()) w.kv("run", run);
  w.kv("component", m.component);
  w.kv("name", m.name);
  if (m.labels.host >= 0) w.kv("host", m.labels.host);
  if (m.labels.channel >= 0) w.kv("channel", m.labels.channel);
  w.kv("kind", to_string(m.kind));
  w.kv("value", m.value);
  w.end_object();
}

void write_histogram_json(JsonWriter& w, std::string_view name,
                          std::string_view run, const LatencyHistogram& h) {
  w.begin_object();
  w.kv("name", name);
  if (!run.empty()) w.kv("run", run);
  w.kv("count", h.count());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("mean", h.mean());
  w.kv("p50", h.percentile(50));
  w.kv("p95", h.percentile(95));
  w.kv("p99", h.percentile(99));
  w.kv("p999", h.percentile(99.9));
  w.key("buckets");
  w.begin_array();
  for (const auto& b : h.nonzero_buckets()) {
    w.begin_array();
    w.value(b.lo);
    w.value(b.hi);
    w.value(b.count);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_series_json(JsonWriter& w, std::string_view run,
                       const Sampler::Series& s) {
  w.begin_object();
  if (!run.empty()) w.kv("run", run);
  w.kv("name", s.name);
  if (s.labels.host >= 0) w.kv("host", s.labels.host);
  if (s.labels.channel >= 0) w.kv("channel", s.labels.channel);
  w.kv("mode", s.mode == Sampler::Mode::kLevel ? "level" : "rate");
  w.key("t_ns");
  w.begin_array();
  for (auto t : s.at) w.value(static_cast<std::int64_t>(t));
  w.end_array();
  w.key("v");
  w.begin_array();
  for (auto v : s.values) w.value(v);
  w.end_array();
  w.end_object();
}

// ------------------------------------------------------------ Telemetry --

Telemetry::Telemetry(sim::EventQueue& queue, sim::Tracer& tracer,
                     sim::Duration sample_period)
    : queue_(queue), sampler_(queue, tracer, sample_period) {
  // Scheduler self-metrics: how the event engine behaved during the run.
  registry_.register_source("sim", "events_fired", MetricKind::kCounter,
                            [&queue] { return double(queue.stats().fired); });
  registry_.register_source("sim", "events_cancelled", MetricKind::kCounter, [&queue] {
    return double(queue.stats().cancelled);
  });
  registry_.register_source("sim", "peak_pending", MetricKind::kGauge, [&queue] {
    return double(queue.stats().peak_pending);
  });
  registry_.register_source("sim", "events_wheel", MetricKind::kCounter, [&queue] {
    return double(queue.stats().wheel_scheduled);
  });
  registry_.register_source("sim", "events_spilled", MetricKind::kCounter, [&queue] {
    return double(queue.stats().spill_scheduled);
  });
  // Allocation oracle (zero when counting is compiled out — sanitizers —
  // or before mark_steady_state()): heap allocations since warmup ended.
  // The zero-allocation hot path shows a flat 0 here for the whole run.
  registry_.register_source("sim", "allocations_total", MetricKind::kCounter,
                            [] { return double(sim::total_allocations()); });
  registry_.register_source(
      "sim", "allocations_steady_state", MetricKind::kCounter,
      [] { return double(sim::allocations_since_mark()); });
}

void Telemetry::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "itb.telemetry.v1");
  w.kv("now_ns", static_cast<std::int64_t>(queue_.now()));
  w.key("counters");
  w.begin_array();
  for (const auto& m : registry_.snapshot()) write_counter_json(w, "", m);
  w.end_array();
  w.key("series");
  w.begin_array();
  for (const auto& s : sampler_.series()) write_series_json(w, "", s);
  w.end_array();
  w.end_object();
  out << '\n';
}

bool Telemetry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

void Telemetry::write_series_csv(std::ostream& out) const {
  out << "series,host,channel,t_ns,value\n";
  for (const auto& s : sampler_.series())
    for (std::size_t i = 0; i < s.at.size(); ++i) {
      out << s.name << ',';
      if (s.labels.host >= 0) out << s.labels.host;
      out << ',';
      if (s.labels.channel >= 0) out << s.labels.channel;
      out << ',' << s.at[i] << ',' << s.values[i] << '\n';
    }
}

// ----------------------------------------------------------- BenchReport --

BenchReport::BenchReport(std::string bench_name) : bench_(std::move(bench_name)) {}

void BenchReport::add_row(const std::string& table, Row row) {
  for (auto& [name, rows] : tables_)
    if (name == table) {
      rows.push_back(std::move(row));
      return;
    }
  tables_.emplace_back(table, std::vector<Row>{std::move(row)});
}

void BenchReport::add_histogram(std::string name, std::string run,
                                const LatencyHistogram& hist) {
  histograms_.push_back(NamedHist{std::move(name), std::move(run), hist});
}

void BenchReport::add_counters(std::string run,
                               const MetricRegistry& registry) {
  add_counters(std::move(run), registry.snapshot());
}

void BenchReport::add_counters(std::string run,
                               std::vector<MetricSample> samples) {
  counters_.push_back(TaggedCounters{std::move(run), std::move(samples)});
}

void BenchReport::add_series(std::string run, const Sampler& sampler) {
  add_series(std::move(run), sampler.series());
}

void BenchReport::add_series(std::string run,
                             std::vector<Sampler::Series> series) {
  series_.push_back(TaggedSeries{std::move(run), std::move(series)});
}

void BenchReport::write(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "itb.telemetry.v1");
  w.kv("bench", bench_);
  w.key("params");
  w.begin_object();
  for (const auto& [k, v] : params_num_) w.kv(k, v);
  for (const auto& [k, v] : params_text_) w.kv(k, v);
  w.end_object();
  w.key("scalars");
  w.begin_object();
  for (const auto& [k, v] : scalars_) w.kv(k, v);
  w.end_object();
  w.key("tables");
  w.begin_object();
  for (const auto& [name, rows] : tables_) {
    w.key(name);
    w.begin_array();
    for (const auto& row : rows) {
      w.begin_object();
      for (const auto& [k, v] : row.num) w.kv(k, v);
      for (const auto& [k, v] : row.text) w.kv(k, v);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.key("histograms");
  w.begin_array();
  for (const auto& h : histograms_)
    write_histogram_json(w, h.name, h.run, h.hist);
  w.end_array();
  w.key("counters");
  w.begin_array();
  for (const auto& tc : counters_)
    for (const auto& m : tc.samples) write_counter_json(w, tc.run, m);
  w.end_array();
  w.key("series");
  w.begin_array();
  for (const auto& ts : series_)
    for (const auto& s : ts.series) write_series_json(w, ts.run, s);
  w.end_array();
  w.end_object();
  out << '\n';
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return out.good();
}

std::optional<std::string> json_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc)
        throw std::invalid_argument("--json requires a file path");
      return std::string(argv[i + 1]);
    }
    if (arg.rfind("--json=", 0) == 0) {
      auto path = std::string(arg.substr(7));
      if (path.empty())
        throw std::invalid_argument("--json requires a file path");
      return path;
    }
  }
  return std::nullopt;
}

}  // namespace itb::telemetry
