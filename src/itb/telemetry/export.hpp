// Machine-readable telemetry export.
//
// Three pieces:
//   * JsonWriter — a tiny streaming JSON emitter (no dependency, correct
//     escaping, finite-number handling) shared by everything below;
//   * Telemetry — the facade core::Cluster owns: one MetricRegistry + one
//     Sampler, with write_json()/write_series_csv() for whole-cluster dumps
//     (`cluster.telemetry().write_json("run.json")`);
//   * BenchReport — what the bench binaries build: named scalars, numeric
//     row tables, latency histograms, plus embedded registry snapshots and
//     sampler series from one or more clusters (tagged per run).
//
// JSON schema (stable; version bumps on breaking change):
//   {
//     "schema": "itb.telemetry.v1",
//     "bench": "...", "params": {...}, "scalars": {...},
//     "tables": {"<table>": [{"col": num | "text", ...}, ...]},
//     "histograms": [{"name", "run", "count", "min", "max", "mean",
//                     "p50", "p95", "p99", "p999",
//                     "buckets": [[lo, hi, n], ...]}],
//     "counters": [{"run", "component", "name", "host"?, "channel"?,
//                   "kind", "value"}],
//     "series": [{"run", "name", "host"?, "channel"?, "mode", "t_ns": [...],
//                 "v": [...]}]
//   }
// Cluster-level Telemetry::write_json emits the same document with only
// "schema", "now_ns", "counters" and "series".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/metrics.hpp"
#include "itb/telemetry/sampler.hpp"

namespace itb::telemetry {

/// Minimal streaming JSON writer. The caller provides structure
/// (begin/end object/array, key); the writer handles commas and escaping.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  void separate();

  std::ostream& out_;
  // One entry per open container: whether it already holds an element.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// Escape and quote a string for JSON.
std::string json_quote(std::string_view s);

/// The observability bundle a Cluster owns.
class Telemetry {
 public:
  Telemetry(sim::EventQueue& queue, sim::Tracer& tracer,
            sim::Duration sample_period = 100 * sim::kUs);

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  Sampler& sampler() { return sampler_; }
  const Sampler& sampler() const { return sampler_; }

  /// Arm / flush-and-disarm the sampler.
  void start_sampling() { sampler_.start(); }
  void stop_sampling() { sampler_.stop(); }

  /// Dump a registry snapshot + every recorded time series.
  void write_json(std::ostream& out) const;
  /// Returns false when the file cannot be opened.
  bool write_json(const std::string& path) const;

  /// Time series as CSV: series,host,channel,t_ns,value.
  void write_series_csv(std::ostream& out) const;

 private:
  sim::EventQueue& queue_;
  MetricRegistry registry_;
  Sampler sampler_;
};

/// Accumulates one bench run for JSON export.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void set_param(std::string key, double v) { params_num_[std::move(key)] = v; }
  void set_param(std::string key, std::string v) {
    params_text_[std::move(key)] = std::move(v);
  }
  void add_scalar(std::string name, double v) {
    scalars_.emplace_back(std::move(name), v);
  }

  /// One row of a named table; numeric and text cells.
  struct Row {
    std::map<std::string, double> num;
    std::map<std::string, std::string> text;
  };
  void add_row(const std::string& table, Row row);

  void add_histogram(std::string name, std::string run,
                     const LatencyHistogram& hist);

  /// Embed a cluster's registry snapshot / recorded series, tagged `run`
  /// so multiple clusters (original vs modified MCP, UD vs ITB) coexist.
  void add_counters(std::string run, const MetricRegistry& registry);
  void add_series(std::string run, const Sampler& sampler);
  /// By-value variants for parallel sweeps, where the cluster (and its
  /// registry/sampler) is gone by the time results are merged in order.
  void add_counters(std::string run, std::vector<MetricSample> samples);
  void add_series(std::string run, std::vector<Sampler::Series> series);

  void write(std::ostream& out) const;
  /// Returns false when the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  std::string bench_;
  std::map<std::string, double> params_num_;
  std::map<std::string, std::string> params_text_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::vector<Row>>> tables_;
  struct NamedHist {
    std::string name;
    std::string run;
    LatencyHistogram hist;
  };
  std::vector<NamedHist> histograms_;
  struct TaggedCounters {
    std::string run;
    std::vector<MetricSample> samples;
  };
  std::vector<TaggedCounters> counters_;
  struct TaggedSeries {
    std::string run;
    std::vector<Sampler::Series> series;
  };
  std::vector<TaggedSeries> series_;
};

/// Parse `--json <path>` or `--json=<path>` out of argv; nullopt when the
/// flag is absent. Throws std::invalid_argument on a missing path. Every
/// bench binary funnels its CLI through this so the flag is uniform.
std::optional<std::string> json_flag(int argc, char** argv);

/// Shared helpers for emitting histogram / series objects (used by both
/// Telemetry and BenchReport writers).
void write_histogram_json(JsonWriter& w, std::string_view name,
                          std::string_view run, const LatencyHistogram& hist);
void write_series_json(JsonWriter& w, std::string_view run,
                       const Sampler::Series& s);
void write_counter_json(JsonWriter& w, std::string_view run,
                        const MetricSample& m);

}  // namespace itb::telemetry
