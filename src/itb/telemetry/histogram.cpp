#include "itb/telemetry/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace itb::telemetry {

LatencyHistogram::LatencyHistogram(unsigned sub_bits) : sub_bits_(sub_bits) {
  if (sub_bits_ < 1 || sub_bits_ > 16)
    throw std::invalid_argument("sub_bits must be in [1, 16]");
}

// Index layout (s = sub_bits):
//   v < 2^(s+1)            -> index v (unit-width, exact)
//   otherwise, with shift = bit_width(v) - 1 - s >= 1 and sub = v >> shift
//   (sub in [2^s, 2^(s+1))) -> index shift * 2^s + sub.
// The two regions meet seamlessly: v = 2^(s+1) gives shift 1, sub 2^s,
// index 2^(s+1).
std::size_t LatencyHistogram::index_of(std::uint64_t v) const {
  const std::uint64_t exact_limit = 1ull << (sub_bits_ + 1);
  if (v < exact_limit) return static_cast<std::size_t>(v);
  const unsigned shift =
      static_cast<unsigned>(std::bit_width(v)) - 1 - sub_bits_;
  const std::uint64_t sub = v >> shift;
  return static_cast<std::size_t>((static_cast<std::uint64_t>(shift)
                                   << sub_bits_) + sub);
}

std::uint64_t LatencyHistogram::bucket_lo(std::size_t i) const {
  const std::size_t exact_limit = std::size_t{1} << (sub_bits_ + 1);
  if (i < exact_limit) return i;
  const std::uint64_t shift = (i >> sub_bits_) - 1;
  const std::uint64_t sub = i - (shift << sub_bits_);
  return sub << shift;
}

std::uint64_t LatencyHistogram::bucket_hi(std::size_t i) const {
  const std::size_t exact_limit = std::size_t{1} << (sub_bits_ + 1);
  if (i < exact_limit) return i + 1;
  const std::uint64_t shift = (i >> sub_bits_) - 1;
  const std::uint64_t sub = i - (shift << sub_bits_);
  return (sub + 1) << shift;
}

void LatencyHistogram::add(double v) {
  if (std::isnan(v)) return;
  record(v <= 0.0 ? 0 : static_cast<std::uint64_t>(v));
}

void LatencyHistogram::record(std::uint64_t v, std::uint64_t times) {
  if (times == 0) return;
  const std::size_t idx = index_of(v);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += times;
  total_ += times;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  sum_ += static_cast<double>(v) * static_cast<double>(times);
}

void LatencyHistogram::clear() { *this = LatencyHistogram(sub_bits_); }

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.sub_bits_ != sub_bits_)
    throw std::invalid_argument("cannot merge histograms of different sub_bits");
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p == 0.0) return static_cast<double>(min());
  if (p == 100.0) return static_cast<double>(max_);
  // Nearest rank: the smallest rank covering fraction p of the population.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const double mid = static_cast<double>(bucket_lo(i)) +
                         static_cast<double>(bucket_hi(i) - bucket_lo(i) - 1) /
                             2.0;
      return std::clamp(mid, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets()
    const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    if (counts_[i] > 0)
      out.push_back(Bucket{bucket_lo(i), bucket_hi(i), counts_[i]});
  return out;
}

std::string LatencyHistogram::summary() const {
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return std::string(buf);
  };
  return "n=" + std::to_string(total_) + " p50=" + fmt(percentile(50)) +
         " p95=" + fmt(percentile(95)) + " p99=" + fmt(percentile(99)) +
         " p999=" + fmt(percentile(99.9)) + " max=" + std::to_string(max_);
}

}  // namespace itb::telemetry
