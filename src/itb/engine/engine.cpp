#include "itb/engine/engine.hpp"

#include <stdexcept>

namespace itb::engine {

namespace {

/// Directed channel along a host's (single) link.
topo::Channel host_channel(const topo::Topology& topo, std::uint16_t host,
                           bool host_to_switch) {
  const auto lid = topo.link_at(topo::host_id(host), 0);
  if (!lid) throw std::logic_error("host unattached");
  const auto& l = topo.link(*lid);
  const bool host_is_a = l.a.node == topo::host_id(host);
  return topo::Channel{*lid, host_is_a == host_to_switch};
}

/// Plain up*/down*: one lane, restricted routes, no extra storage anywhere.
class UpDownEngine final : public DeadlockEngine {
 public:
  EngineKind kind() const override { return EngineKind::kUpDown; }
  const char* name() const override { return "updown"; }
  routing::Policy policy() const override { return routing::Policy::kUpDown; }
  bool uses_host_buffers() const override { return false; }
  void bind(const routing::UpDown&, const topo::Topology&,
            const std::vector<std::uint16_t>&) override {}
  unsigned lane_count() const override { return 1; }
  std::uint8_t injection_lane(std::uint16_t) const override { return 0; }
  std::uint8_t lane_for(net::LaneState& state, topo::Channel) const override {
    return state.lane;  // always 0
  }
};

/// The paper's mechanism: one lane, minimal routes legalised by ejection /
/// re-injection at in-transit hosts (host receive buffers are the storage).
class ItbEngine final : public DeadlockEngine {
 public:
  EngineKind kind() const override { return EngineKind::kItb; }
  const char* name() const override { return "itb"; }
  routing::Policy policy() const override { return routing::Policy::kItb; }
  bool uses_host_buffers() const override { return true; }
  void bind(const routing::UpDown&, const topo::Topology&,
            const std::vector<std::uint16_t>&) override {}
  unsigned lane_count() const override { return 1; }
  std::uint8_t injection_lane(std::uint16_t) const override { return 0; }
  std::uint8_t lane_for(net::LaneState& state, topo::Channel) const override {
    return state.lane;  // always 0
  }
};

/// Virtual-channel escape: the lane ladder described in the header. Keeps a
/// per-directed-channel up/down table in TRUE fabric coordinates so the hot
/// path is one array read plus a couple of branches.
class VcEscapeEngine final : public DeadlockEngine {
 public:
  explicit VcEscapeEngine(unsigned lanes) : lanes_(lanes < 2 ? 2 : lanes) {}

  EngineKind kind() const override { return EngineKind::kVcEscape; }
  const char* name() const override { return "vc-escape"; }
  routing::Policy policy() const override {
    return routing::Policy::kVcEscape;
  }
  bool uses_host_buffers() const override { return false; }
  unsigned lane_count() const override { return lanes_; }
  std::uint8_t injection_lane(std::uint16_t) const override { return 0; }

  std::uint8_t lane_for(net::LaneState& state, topo::Channel next) const override {
    const std::size_t idx = 2 * next.link + (next.forward ? 0 : 1);
    const Dir d = idx < dir_.size() ? dir_[idx] : Dir::kUnoriented;
    switch (d) {
      case Dir::kUnoriented:  // host link (or unbound): stay on the lane
        break;
      case Dir::kDown:
        state.flags |= kSawDown;
        break;
      case Dir::kUp:
        if (state.flags & kSawDown) {
          // down -> up: next up*/down*-valid segment, next lane. The route
          // solve guarantees segment count <= lanes_, so the clamp never
          // binds on solved routes; it only keeps a malformed manual route
          // in range.
          if (state.lane + 1u < lanes_) ++state.lane;
          state.flags = 0;
        }
        break;
    }
    return state.lane;
  }

  void bind(const routing::UpDown& updown, const topo::Topology& fabric,
            const std::vector<std::uint16_t>& switch_of) override {
    dir_.assign(fabric.link_count() * 2, Dir::kUnoriented);
    const auto& disc = updown.topology();
    for (topo::LinkId l = 0; l < disc.link_count(); ++l) {
      if (!updown.link_usable(l)) continue;
      const auto& lk = disc.link(l);
      if (lk.a.node.kind != topo::NodeKind::kSwitch ||
          lk.b.node.kind != topo::NodeKind::kSwitch)
        continue;
      // Translate the a-end to true coordinates (ports survive discovery
      // verbatim; switch indices need the mapper's switch_of table).
      const std::uint16_t true_a =
          switch_of.empty() ? lk.a.node.index : switch_of.at(lk.a.node.index);
      const auto tl = fabric.link_at(topo::switch_id(true_a), lk.a.port);
      if (!tl) continue;
      const auto& tlk = fabric.link(*tl);
      const bool a_is_a =
          tlk.a.node == topo::switch_id(true_a) && tlk.a.port == lk.a.port;
      const bool a_up = updown.is_up_traversal(l, lk.a.node.index);
      dir_[2 * *tl + (a_is_a ? 0 : 1)] = a_up ? Dir::kUp : Dir::kDown;
      dir_[2 * *tl + (a_is_a ? 1 : 0)] = a_up ? Dir::kDown : Dir::kUp;
    }
  }

 private:
  enum class Dir : std::uint8_t { kUnoriented, kUp, kDown };
  static constexpr std::uint8_t kSawDown = 1;

  unsigned lanes_;
  std::vector<Dir> dir_;  // per directed channel of the bound fabric
};

void add_laned_route(routing::DependencyGraph& graph,
                     const DeadlockEngine& engine,
                     const routing::HostPath& path,
                     const topo::Topology& topo) {
  if (path.segments.size() != 1)
    throw std::logic_error("multi-lane engines route in one segment");
  using Node = routing::DependencyGraph::Node;
  net::LaneState state{engine.injection_lane(path.src_host), 0};
  Node prev =
      Node::of_channel(host_channel(topo, path.src_host, true), state.lane);
  for (const auto& c : path.trunk_channels) {
    const Node cur = Node::of_channel(c, engine.lane_for(state, c));
    graph.add_edge(prev, cur);
    prev = cur;
  }
  const topo::Channel down = host_channel(topo, path.dst_host, false);
  graph.add_edge(prev, Node::of_channel(down, engine.lane_for(state, down)));
}

}  // namespace

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kUpDown:
      return "updown";
    case EngineKind::kItb:
      return "itb";
    case EngineKind::kVcEscape:
      return "vc-escape";
  }
  return "?";
}

std::unique_ptr<DeadlockEngine> make_engine(const EngineSpec& spec) {
  switch (spec.kind) {
    case EngineKind::kUpDown:
      return std::make_unique<UpDownEngine>();
    case EngineKind::kItb:
      return std::make_unique<ItbEngine>();
    case EngineKind::kVcEscape:
      return std::make_unique<VcEscapeEngine>(spec.lanes);
  }
  throw std::invalid_argument("unknown engine kind");
}

std::vector<std::uint8_t> trunk_lanes(const DeadlockEngine& engine,
                                      const routing::HostPath& path) {
  net::LaneState state{engine.injection_lane(path.src_host), 0};
  std::vector<std::uint8_t> lanes;
  lanes.reserve(path.trunk_channels.size());
  for (const auto& c : path.trunk_channels)
    lanes.push_back(engine.lane_for(state, c));
  return lanes;
}

routing::DependencyGraph build_dependency_graph(const DeadlockEngine& engine,
                                                const routing::RouteTable& table,
                                                const topo::Topology& topo) {
  routing::DependencyGraph graph(topo, engine.lane_count());
  if (engine.lane_count() == 1) {
    // Classical single-lane CDG; ITB routes restart chains at ejections.
    graph.add_table(table, topo);
    return graph;
  }
  for (std::uint16_t s = 0; s < table.host_count(); ++s)
    for (std::uint16_t d = 0; d < table.host_count(); ++d) {
      if (s == d) continue;
      const auto& r = table.route(s, d);
      if (r.segments.empty()) continue;  // degraded pair
      add_laned_route(graph, engine, r, topo);
    }
  return graph;
}

bool verify_deadlock_free(const DeadlockEngine& engine,
                          const routing::RouteTable& table,
                          const topo::Topology& topo) {
  return !build_dependency_graph(engine, table, topo).has_cycle();
}

}  // namespace itb::engine
