// Pluggable deadlock-freedom engines.
//
// The paper's in-transit buffers are ONE way to make minimal routing legal
// on an up*/down*-oriented irregular network. This subsystem abstracts the
// mechanism behind a policy interface so structurally different answers can
// be swapped, compared on identical topology and traffic, and statically
// verified with the same per-lane channel-dependency-graph machinery:
//
//   * up*/down*   — no extra storage, restricted (often non-minimal) routes;
//   * UD+ITB      — the paper: minimal routes split into valid segments by
//                   ejecting/re-injecting at in-transit hosts (host DRAM is
//                   the buffer);
//   * VC-escape   — multi-lane storage (arXiv:2007.02550 family): >= 2
//                   virtual lanes per physical channel, minimal routing with
//                   a lane ladder. A minimal route decomposes into maximal
//                   up*/down*-valid segments; segment j rides lane j, and
//                   the lane only ever ratchets upward (on a down->up
//                   transition), so cross-lane dependencies go strictly
//                   j -> j+1 while each lane's own dependencies obey
//                   up*/down* — the per-lane CDG is acyclic by construction.
//                   Minimal routes needing more segments than lanes fall
//                   back to the plain up*/down* route on lane 0.
//
// A DeadlockEngine couples the three knobs that must agree for the claim to
// hold: the routing restriction (routing::Policy fed to the table solve),
// the lane count + lane-selection function (net::LanePolicy driving the
// wormhole arbitration), and the buffer accounting the bench reports.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "itb/net/lanes.hpp"
#include "itb/routing/deadlock.hpp"
#include "itb/routing/paths.hpp"
#include "itb/routing/table.hpp"
#include "itb/routing/updown.hpp"
#include "itb/topo/topology.hpp"

namespace itb::engine {

enum class EngineKind : std::uint8_t { kUpDown, kItb, kVcEscape };

/// Serializable engine selection (ClusterConfig carries one).
struct EngineSpec {
  EngineKind kind = EngineKind::kItb;
  /// Virtual lanes per physical channel; only kVcEscape reads it (>= 2).
  unsigned lanes = 2;
};

/// One deadlock-freedom mechanism: routing restriction + lane policy +
/// buffer accounting. Engines are stateless apart from the bound up*/down*
/// orientation, so one instance serves a whole cluster.
class DeadlockEngine : public net::LanePolicy {
 public:
  virtual EngineKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Routing policy the route table must be solved under.
  virtual routing::Policy policy() const = 0;

  /// Flit-buffer lanes per physical port the switch hardware must provide
  /// (the bench's wire-storage cost metric). Equals lane_count().
  unsigned buffer_lanes_per_port() const { return lane_count(); }

  /// Does the mechanism additionally consume host receive buffers for
  /// forwarding (the ITB pool)? Feeds the bench's buffer-cost row and the
  /// buffered wedge analysis.
  virtual bool uses_host_buffers() const = 0;

  /// Bind the engine to the orientation its route tables were solved under.
  /// `updown` may be computed over a DISCOVERED topology (the mapper path);
  /// `switch_of` then maps discovered switch indices to `fabric`'s true
  /// indices so lane decisions on live (true-coordinate) channels agree
  /// with the solve. Pass an empty `switch_of` when `updown` was built over
  /// `fabric` itself. Must be re-bound whenever recovery re-orients (the
  /// RecoveryManager's on_orientation hook does this).
  virtual void bind(const routing::UpDown& updown,
                    const topo::Topology& fabric,
                    const std::vector<std::uint16_t>& switch_of) = 0;
};

/// Factory for the three built-in engines.
std::unique_ptr<DeadlockEngine> make_engine(const EngineSpec& spec);

/// Lane sequence the engine assigns to a route's trunk traversals (one
/// entry per trunk channel, in order). Tests compare this against the
/// static ladder decomposition; it is by construction what the live network
/// executes, since both walk LanePolicy::lane_for in route order.
std::vector<std::uint8_t> trunk_lanes(const DeadlockEngine& engine,
                                      const routing::HostPath& path);

/// Build the engine's per-lane channel dependency graph over a route table:
/// every chain node is a (channel, lane) pair under the engine's own lane
/// assignment (single-lane engines reduce to the classical CDG). The graph
/// being acyclic IS the engine's deadlock-freedom claim.
routing::DependencyGraph build_dependency_graph(const DeadlockEngine& engine,
                                                const routing::RouteTable& table,
                                                const topo::Topology& topo);

/// Convenience: the per-lane CDG has no cycle.
bool verify_deadlock_free(const DeadlockEngine& engine,
                          const routing::RouteTable& table,
                          const topo::Topology& topo);

const char* to_string(EngineKind kind);

}  // namespace itb::engine
