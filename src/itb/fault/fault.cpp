#include "itb/fault/fault.hpp"

#include <algorithm>
#include <optional>

#include "itb/sim/rng.hpp"

namespace itb::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kSwitchDown: return "switch-down";
    case FaultKind::kHostDown: return "host-down";
    case FaultKind::kNicStall: return "nic-stall";
  }
  return "?";
}

bool FaultSchedule::has_topology_faults() const {
  return std::any_of(windows_.begin(), windows_.end(), [](const FaultWindow& w) {
    return w.kind != FaultKind::kNicStall;
  });
}

FaultSchedule FaultSchedule::chaos(const topo::Topology& topo,
                                   const ChaosSpec& spec) {
  if (spec.horizon <= 0)
    throw std::invalid_argument("chaos spec needs a positive horizon");
  sim::Rng rng(spec.seed);
  FaultSchedule out;

  auto duration = [&] {
    const auto d = static_cast<sim::Duration>(
        rng.next_exponential(static_cast<double>(spec.mean_duration)));
    return std::max(spec.min_duration, d);
  };
  auto start = [&] {
    return static_cast<sim::Time>(
        rng.next_below(static_cast<std::uint64_t>(spec.horizon)));
  };
  auto protected_host = [&](std::uint16_t h) {
    return std::find(spec.protected_hosts.begin(), spec.protected_hosts.end(),
                     h) != spec.protected_hosts.end();
  };

  for (int i = 0; i < spec.link_windows && topo.link_count() > 0; ++i) {
    const auto link = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
    const auto s = start();
    out.link_down(link, s, s + duration());
  }
  for (int i = 0; i < spec.switch_windows && topo.switch_count() > 0; ++i) {
    const auto sw = static_cast<std::uint16_t>(rng.next_below(topo.switch_count()));
    const auto s = start();
    out.switch_down(sw, s, s + duration());
  }
  // Host-targeting windows re-draw (bounded) around protected hosts; the
  // draws still come off the one stream so the schedule stays seed-stable.
  auto pick_host = [&]() -> std::optional<std::uint16_t> {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto h = static_cast<std::uint16_t>(rng.next_below(topo.host_count()));
      if (!protected_host(h)) return h;
    }
    return std::nullopt;
  };
  for (int i = 0; i < spec.host_windows && topo.host_count() > 0; ++i) {
    if (auto h = pick_host()) {
      const auto s = start();
      out.host_down(*h, s, s + duration());
    }
  }
  for (int i = 0; i < spec.stall_windows && topo.host_count() > 0; ++i) {
    if (auto h = pick_host()) {
      const auto s = start();
      out.nic_stall(*h, s, s + duration());
    }
  }
  // Hotspot burst: a fixed-cadence stall train on one host. Drawn last so
  // enabling it never perturbs the windows generated above.
  if (spec.hotspot_bursts > 0 && topo.host_count() > 0) {
    std::optional<std::uint16_t> target = spec.hotspot_host;
    if (target && protected_host(*target))
      throw std::invalid_argument("hotspot_host is protected");
    if (!target) target = pick_host();
    if (target) {
      sim::Time s = spec.hotspot_start;
      for (int i = 0; i < spec.hotspot_bursts; ++i) {
        out.nic_stall(*target, s, s + spec.hotspot_stall);
        s += spec.hotspot_stall + spec.hotspot_gap;
      }
    }
  }
  return out;
}

}  // namespace itb::fault
