// Fault model vocabulary.
//
// GM promises "reliable and ordered packet delivery in presence of network
// faults" (§3). The paper's Myrinet recovers from component failures by
// having the mapper recompute the up*/down* tree over whatever survives;
// this module supplies the faults: a deterministic, seeded schedule of
// timed windows during which a link, a switch, a host (e.g. an in-transit
// host mid-path) or a NIC is out, plus the legacy per-packet drop/corrupt
// coin-flips. Everything is driven off the one event queue, so a chaos run
// is reproducible from its seeds alone.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "itb/sim/time.hpp"
#include "itb/topo/topology.hpp"

namespace itb::fault {

/// What a fault window takes out.
enum class FaultKind : std::uint8_t {
  kLinkDown,    // one cable; both directed channels die
  kSwitchDown,  // a switch; every link touching it dies
  kHostDown,    // a host (ITB hosts included); its uplink dies
  kNicStall,    // a NIC stops accepting receptions; lossless backpressure
};

const char* to_string(FaultKind k);

/// One timed outage: `target` is a LinkId for kLinkDown, a switch index for
/// kSwitchDown, and a host index otherwise. Half-open interval
/// [start, end): the component recovers at `end`.
struct FaultWindow {
  FaultKind kind = FaultKind::kLinkDown;
  std::uint32_t target = 0;
  sim::Time start = 0;
  sim::Time end = 0;
};

/// Probabilistic last-hop faults (the original fault model, kept): per
/// delivered packet, drop it or flip one payload byte.
struct FaultPlan {
  double drop_probability = 0.0;     // packet vanishes at the last hop
  double corrupt_probability = 0.0;  // one payload byte is flipped
  std::uint64_t seed = 0x5EED;

  bool active() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0;
  }
};

/// Loss/corruption accounting by cause. Reconciles with the network:
/// net.stats().lost == total_lost(), and none of these ever count as
/// net.delivered.
struct FaultStats {
  std::uint64_t windows_opened = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t lost_drop = 0;         // probabilistic last-hop drops
  std::uint64_t corrupted = 0;         // delivered with a flipped byte
  std::uint64_t lost_link_down = 0;    // killed by a plain link window
  std::uint64_t lost_switch_down = 0;  // killed at a dead switch's link
  std::uint64_t lost_host_down = 0;    // killed at a dead host's uplink

  std::uint64_t total_lost() const {
    return lost_drop + lost_link_down + lost_switch_down + lost_host_down;
  }
};

/// An ordered list of fault windows. Built by hand (tests) or generated
/// randomly from a seed (chaos soaks). Windows may overlap freely; a
/// component is up again only when every window covering it has closed.
class FaultSchedule {
 public:
  FaultSchedule& add(FaultWindow w) {
    if (w.end <= w.start)
      throw std::invalid_argument("fault window must have end > start");
    windows_.push_back(w);
    return *this;
  }
  FaultSchedule& link_down(topo::LinkId link, sim::Time start, sim::Time end) {
    return add({FaultKind::kLinkDown, link, start, end});
  }
  FaultSchedule& switch_down(std::uint16_t sw, sim::Time start, sim::Time end) {
    return add({FaultKind::kSwitchDown, sw, start, end});
  }
  FaultSchedule& host_down(std::uint16_t host, sim::Time start, sim::Time end) {
    return add({FaultKind::kHostDown, host, start, end});
  }
  FaultSchedule& nic_stall(std::uint16_t host, sim::Time start, sim::Time end) {
    return add({FaultKind::kNicStall, host, start, end});
  }

  const std::vector<FaultWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

  /// Any window that changes the usable topology (everything but NIC
  /// stalls, which are pure backpressure)?
  bool has_topology_faults() const;

  /// Parameters for random chaos generation. Counts are windows per kind;
  /// durations are exponentially distributed around `mean_duration`
  /// (clamped below by `min_duration`), starts uniform in [0, horizon).
  struct ChaosSpec {
    sim::Time horizon = 0;  // required: windows start within [0, horizon)
    int link_windows = 0;
    int switch_windows = 0;
    int host_windows = 0;
    int stall_windows = 0;
    sim::Duration mean_duration = 500 * sim::kUs;
    sim::Duration min_duration = 20 * sim::kUs;
    std::uint64_t seed = 0xC4A05;
    /// Hosts never targeted by host-down / NIC-stall windows (keep the
    /// endpoints a bench measures alive so exactly-once is decidable).
    std::vector<std::uint16_t> protected_hosts;

    /// "Hotspot burst" preset (§8 wedge reproducer): a train of short
    /// NIC-stall windows all aimed at ONE seeded host. While the hotspot
    /// NIC is stalled, every flow routed through it parks under Stop&Go
    /// backpressure; each release floods the 2-buffer pool at once — the
    /// load pattern that wedges the stop-when-full MCP. The host is drawn
    /// from the seed (protected-host-aware) unless `hotspot_host` pins it.
    int hotspot_bursts = 0;                          // stall windows in the train
    sim::Duration hotspot_stall = 200 * sim::kUs;    // each window's length
    sim::Duration hotspot_gap = 100 * sim::kUs;      // open time between windows
    sim::Time hotspot_start = 0;                     // train start
    std::optional<std::uint16_t> hotspot_host;       // pin the target host
  };

  /// Deterministic random schedule over `topo` (same spec -> same windows).
  static FaultSchedule chaos(const topo::Topology& topo, const ChaosSpec& spec);

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace itb::fault
