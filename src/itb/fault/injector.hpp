// Deterministic fault injector.
//
// Implements net::FaultHook: arms every window of a FaultSchedule on the
// event queue, tracks which links/switches/hosts are currently down (windows
// may overlap — a link is usable again only when the count of windows
// covering it returns to zero), answers the network's per-hop usability
// checks, and applies the probabilistic last-hop FaultPlan with the same
// seeded draw order the old in-network implementation used, so existing
// loss-sweep results are bit-identical.
//
// Topology-affecting windows (everything but NIC stalls) are announced to
// listeners on open and close; the RecoveryManager subscribes and re-runs
// the mapper, mirroring Myrinet's reconfiguration-on-fault.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "itb/fault/fault.hpp"
#include "itb/net/network.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/sim/rng.hpp"
#include "itb/sim/trace.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::fault {

class FaultInjector final : public net::FaultHook {
 public:
  /// Installs itself as `network`'s fault hook and schedules every window.
  FaultInjector(sim::EventQueue& queue, sim::Tracer& tracer,
                net::Network& network, FaultPlan plan,
                const FaultSchedule& schedule);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // net::FaultHook
  bool channel_usable(topo::Channel c) const override {
    return effective_down_[c.link] == 0;
  }
  bool host_accepting(std::uint16_t host) const override {
    return nic_stall_[host] == 0;
  }
  Fate delivery_fate(std::uint16_t host, packet::Bytes& bytes) override;
  void note_kill(topo::Channel at) override;

  /// Called with (now, window, opened) for every window that changes the
  /// usable topology. NIC stalls are not announced (routing is unaffected).
  using TopologyListener =
      std::function<void(sim::Time, const FaultWindow&, bool opened)>;
  void add_topology_listener(TopologyListener fn) {
    listeners_.push_back(std::move(fn));
  }

  const FaultStats& stats() const { return stats_; }
  int active_windows() const { return active_windows_; }

  /// Is this component currently inside one or more down windows?
  bool link_down(topo::LinkId link) const { return link_down_[link] > 0; }
  bool switch_down(std::uint16_t sw) const { return switch_down_[sw] > 0; }
  bool host_down(std::uint16_t host) const { return host_down_[host] > 0; }
  bool nic_stalled(std::uint16_t host) const { return nic_stall_[host] > 0; }

  /// True when either directed channel of `link` is unusable for any cause
  /// (its own window, a dead endpoint switch, a dead endpoint host).
  bool link_impaired(topo::LinkId link) const {
    return effective_down_[link] > 0;
  }

  /// Publish FaultStats + active_windows under component "fault".
  void register_metrics(telemetry::MetricRegistry& registry) const;

 private:
  void open_window(const FaultWindow& w);
  void close_window(const FaultWindow& w);
  /// Impair / restore one link on behalf of some window; tells the network
  /// on 0 -> 1 and 1 -> 0 transitions of the covering-window count.
  void down_link(topo::LinkId link);
  void up_link(topo::LinkId link);
  std::vector<topo::LinkId> links_of_target(const FaultWindow& w) const;
  void announce(const FaultWindow& w, bool opened);

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  net::Network& network_;
  const topo::Topology& topo_;
  FaultPlan plan_;
  sim::Rng rng_;
  FaultStats stats_;
  int active_windows_ = 0;

  std::vector<int> effective_down_;  // per link: windows impairing it
  std::vector<int> link_down_;       // per link: direct link windows
  std::vector<int> switch_down_;     // per switch
  std::vector<int> host_down_;       // per host
  std::vector<int> nic_stall_;       // per host
  std::vector<TopologyListener> listeners_;
};

}  // namespace itb::fault
