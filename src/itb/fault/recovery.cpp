#include "itb/fault/recovery.hpp"

#include <string>

namespace itb::fault {

topo::Topology degraded_topology(const topo::Topology& full,
                                 const FaultInjector& injector) {
  topo::Topology out;
  for (std::uint16_t s = 0; s < full.switch_count(); ++s) {
    const auto& spec = full.switch_spec(s);
    out.add_switch(spec.ports, spec.name);
  }
  for (std::uint16_t h = 0; h < full.host_count(); ++h)
    out.add_host(full.host_spec(h).name);
  for (topo::LinkId l = 0; l < full.link_count(); ++l) {
    if (injector.link_impaired(l)) continue;
    const auto& link = full.link(l);
    out.connect(link.a, link.b, link.kind);
  }
  return out;
}

RecoveryManager::RecoveryManager(sim::EventQueue& queue, sim::Tracer& tracer,
                                 const topo::Topology& fabric,
                                 FaultInjector& injector,
                                 std::vector<nic::Nic*> nics, Config config)
    : queue_(queue),
      tracer_(tracer),
      fabric_(fabric),
      injector_(injector),
      nics_(std::move(nics)),
      config_(config) {
  injector_.add_topology_listener(
      [this](sim::Time t, const FaultWindow& w, bool opened) {
        on_topology_event(t, w, opened);
      });
}

void RecoveryManager::on_topology_event(sim::Time t, const FaultWindow& w,
                                        bool opened) {
  tracer_.emit(t, sim::TraceCategory::kFault, [&] {
    return std::string("mapper notified: ") + to_string(w.kind) +
           (opened ? " opened" : " closed") + ", remap in " +
           std::to_string(config_.remap_delay) + " ns";
  });
  if (!pending_armed_) {
    oldest_event_ = t;
    pending_armed_ = true;
  } else {
    queue_.cancel(pending_);  // debounce: fold into one later remap
  }
  pending_ = queue_.schedule_in(config_.remap_delay, [this] { remap(); });
}

void RecoveryManager::remap() {
  pending_armed_ = false;
  const auto degraded = degraded_topology(fabric_, injector_);

  // Map from the preferred root if it survived, else the lowest live host.
  std::optional<std::uint16_t> root;
  auto live = [&](std::uint16_t h) {
    return degraded.host_attached(h) && !injector_.host_down(h);
  };
  if (live(config_.preferred_root_host)) {
    root = config_.preferred_root_host;
  } else {
    for (std::uint16_t h = 0; h < degraded.host_count(); ++h)
      if (live(h)) { root = h; break; }
  }
  if (!root) {
    ++stats_.failed_remaps;
    tracer_.emit(queue_.now(), sim::TraceCategory::kFault,
                 [] { return std::string("remap failed: no live host"); });
    return;
  }

  table_ = mapper::run(degraded, config_.policy, *root, config_.selection,
                       /*allow_partial=*/true);
  for (nic::Nic* nic : nics_) nic->load_routes(table_->table);

  stats_.unreachable_hosts =
      degraded.host_count() - table_->report.hosts_found();
  ++stats_.remaps;
  const auto latency = queue_.now() - oldest_event_;
  latency_.add(static_cast<double>(latency));
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "remap #" + std::to_string(stats_.remaps) + " from h" +
           std::to_string(*root) + ": " +
           std::to_string(table_->report.hosts_found()) + "/" +
           std::to_string(degraded.host_count()) + " hosts reachable, " +
           std::to_string(latency) + " ns after the fault";
  });
}

void RecoveryManager::register_metrics(
    telemetry::MetricRegistry& registry) const {
  auto counter = [&registry](const char* name, const std::uint64_t& field) {
    registry.register_source("fault", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  counter("remaps", stats_.remaps);
  counter("failed_remaps", stats_.failed_remaps);
  auto gauge = [&registry, this](const char* name, auto fn) {
    registry.register_source("fault", name, telemetry::MetricKind::kGauge,
                             std::move(fn));
  };
  gauge("recovery_latency_p50_ns",
        [this] { return latency_.empty() ? 0.0 : latency_.percentile(50); });
  gauge("recovery_latency_p99_ns",
        [this] { return latency_.empty() ? 0.0 : latency_.percentile(99); });
  gauge("recovery_latency_max_ns",
        [this] { return static_cast<double>(latency_.max()); });
  gauge("unreachable_hosts",
        [this] { return static_cast<double>(stats_.unreachable_hosts); });
}

}  // namespace itb::fault
