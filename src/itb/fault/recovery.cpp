#include "itb/fault/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

namespace itb::fault {

topo::Topology degraded_topology(const topo::Topology& full,
                                 const FaultInjector& injector) {
  topo::Topology out;
  for (std::uint16_t s = 0; s < full.switch_count(); ++s) {
    const auto& spec = full.switch_spec(s);
    out.add_switch(spec.ports, spec.name);
  }
  for (std::uint16_t h = 0; h < full.host_count(); ++h)
    out.add_host(full.host_spec(h).name);
  for (topo::LinkId l = 0; l < full.link_count(); ++l) {
    if (injector.link_impaired(l)) continue;
    const auto& link = full.link(l);
    out.connect(link.a, link.b, link.kind);
  }
  return out;
}

RecoveryManager::RecoveryManager(sim::EventQueue& queue, sim::Tracer& tracer,
                                 const topo::Topology& fabric,
                                 FaultInjector& injector,
                                 std::vector<nic::Nic*> nics, Config config)
    : queue_(queue),
      tracer_(tracer),
      fabric_(fabric),
      injector_(injector),
      nics_(std::move(nics)),
      config_(config),
      pending_flag_(fabric.link_count(), 0),
      flap_(fabric.link_count()) {
  pending_links_.reserve(config_.tuning.max_pending_links);
  injector_.add_topology_listener(
      [this](sim::Time t, const FaultWindow& w, bool opened) {
        on_topology_event(t, w, opened);
      });
}

std::vector<topo::LinkId> RecoveryManager::affected_links(
    const FaultWindow& w) const {
  switch (w.kind) {
    case FaultKind::kLinkDown:
      return {static_cast<topo::LinkId>(w.target)};
    case FaultKind::kHostDown: {
      const auto l = fabric_.link_at(
          topo::host_id(static_cast<std::uint16_t>(w.target)), 0);
      if (l) return {*l};
      return {};
    }
    case FaultKind::kSwitchDown:
      return fabric_.links_of(
          topo::switch_id(static_cast<std::uint16_t>(w.target)));
    default:
      return {};
  }
}

void RecoveryManager::on_topology_event(sim::Time t, const FaultWindow& w,
                                        bool opened) {
  tracer_.emit(t, sim::TraceCategory::kFault, [&] {
    return std::string("mapper notified: ") + to_string(w.kind) +
           (opened ? " opened" : " closed");
  });
  bool any = false;
  for (auto l : affected_links(w)) {
    note_flap(l, t);
    note_dirty(l);
    any = true;
  }
  if (any) arm(t);
}

void RecoveryManager::note_flap(topo::LinkId link, sim::Time t) {
  auto& f = flap_[link];
  if (t - f.window_start > config_.tuning.flap_window) {
    f.window_start = t;
    f.transitions = 0;
  }
  ++f.transitions;
  f.last_transition = t;
  if (f.quarantined || f.transitions < config_.tuning.flap_threshold) return;

  // Quarantine: park the link (masked down for routing regardless of its
  // real state) with exponential backoff on repeat offenders.
  f.quarantined = true;
  ++stats_.flaps_quarantined;
  const double scale =
      std::pow(config_.tuning.quarantine_backoff, f.backoff_level);
  ++f.backoff_level;
  const auto dur = static_cast<sim::Duration>(std::min(
      static_cast<double>(config_.tuning.quarantine_max),
      static_cast<double>(config_.tuning.quarantine_base) * scale));
  tracer_.emit(t, sim::TraceCategory::kFault, [&] {
    return "flap quarantine: link " + std::to_string(link) + " parked for " +
           std::to_string(dur) + " ns (level " +
           std::to_string(f.backoff_level) + ")";
  });
  queue_.schedule_in(dur, [this, link] { requalify(link); });
}

void RecoveryManager::requalify(topo::LinkId link) {
  auto& f = flap_[link];
  f.quarantined = false;
  // Quiet through the whole quarantine -> first offence pricing again.
  if (queue_.now() - f.last_transition >= config_.tuning.flap_window)
    f.backoff_level = 0;
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "flap quarantine: link " + std::to_string(link) + " requalified";
  });
  note_dirty(link);
  arm(queue_.now());
}

void RecoveryManager::note_dirty(topo::LinkId link) {
  if (pending_flag_[link]) return;
  pending_flag_[link] = 1;
  if (pending_links_.size() >= config_.tuning.max_pending_links)
    pending_overflow_ = true;  // storm: degrade the next round to full
  else
    pending_links_.push_back(link);
}

void RecoveryManager::arm(sim::Time event_time) {
  if (!pending_fresh_) {
    pending_fresh_ = true;
    oldest_pending_ = event_time;
  }
  switch (phase_) {
    case Phase::kIdle:
      phase_ = Phase::kArmed;
      queue_.schedule_in(config_.remap_delay, [this] { fire(); });
      break;
    case Phase::kArmed:
      ++stats_.coalesced_events;  // leading edge: folded, not postponed
      break;
    case Phase::kComputing:
      break;  // buffered; install() re-arms
  }
}

std::vector<char> RecoveryManager::current_mask() const {
  std::vector<char> mask(fabric_.link_count(), 1);
  for (topo::LinkId l = 0; l < fabric_.link_count(); ++l)
    mask[l] = !injector_.link_impaired(l) && !flap_[l].quarantined;
  return mask;
}

std::optional<std::uint16_t> RecoveryManager::elect_root(
    const std::vector<char>& mask) const {
  const auto live = [&](std::uint16_t h) {
    if (!fabric_.host_attached(h) || injector_.host_down(h)) return false;
    return mask[*fabric_.link_at(topo::host_id(h), 0)] != 0;
  };
  if (live(config_.preferred_root_host)) return config_.preferred_root_host;
  for (std::uint16_t h = 0; h < fabric_.host_count(); ++h)
    if (live(h)) return h;
  return std::nullopt;
}

void RecoveryManager::fire() {
  phase_ = Phase::kComputing;
  round_links_ = std::move(pending_links_);
  pending_links_.clear();
  for (auto l : round_links_) pending_flag_[l] = 0;
  const bool overflow = pending_overflow_;
  pending_overflow_ = false;
  round_oldest_ = oldest_pending_;
  pending_fresh_ = false;

  const auto mask = current_mask();
  const auto root = elect_root(mask);
  if (!root) {
    ++stats_.failed_remaps;
    tracer_.emit(queue_.now(), sim::TraceCategory::kFault,
                 [] { return std::string("remap failed: no live host"); });
    // Keep the changes pending: the next window edge re-arms a round that
    // will still see them (the delta diffs against the last computed mask).
    phase_ = Phase::kIdle;
    for (auto l : round_links_) note_dirty(l);
    pending_overflow_ |= overflow;
    pending_fresh_ = true;
    oldest_pending_ = round_oldest_;
    return;
  }
  const auto root_sw = fabric_.host_uplink(*root).node.index;

  // Scoped re-probe when the previous walk is reusable; a root move or a
  // storm-control overflow falls back to a cold walk.
  const bool can_scope = config_.tuning.incremental && reach_.has_value() &&
                         !overflow && root_sw == last_root_switch_;
  auto reach = can_scope ? mapper::rediscover_scoped(fabric_, *root, mask,
                                                     *reach_, round_links_)
                         : mapper::discover_reachability(fabric_, *root, mask);

  auto new_ud = std::make_unique<routing::UpDown>(fabric_, root_sw, mask);
  auto new_router =
      std::make_unique<routing::Router>(*new_ud, config_.selection);

  const auto hosts = fabric_.host_count();
  const bool full = !config_.tuning.incremental || !table_ || overflow ||
                    root_sw != last_root_switch_ || !table_->patching_enabled();
  std::uint64_t sources_resolved = 0;
  if (full) {
    table_.emplace(*new_router, config_.policy, config_.route_jobs,
                   config_.vc_lanes);
    if (config_.tuning.incremental) table_->enable_patching(*new_router);
    sources_resolved = hosts;
    ++stats_.full_resolves;
    if (overflow) ++stats_.overflow_full_resolves;
  } else {
    // Diff usability + orientation over EVERY link between the last
    // computed orientation and the new one: this subsumes the dirty set
    // (quarantine, reachability cut-offs and BFS-tree moves included). An
    // orientation flip is a removal plus an addition.
    routing::LinkDelta delta;
    for (topo::LinkId l = 0; l < fabric_.link_count(); ++l) {
      const bool was = updown_->link_usable(l);
      const bool now_u = new_ud->link_usable(l);
      if (was && !now_u)
        delta.removed.push_back(l);
      else if (!was && now_u)
        delta.added.push_back(l);
      else if (was && now_u && updown_->up_end(l) != new_ud->up_end(l)) {
        delta.removed.push_back(l);
        delta.added.push_back(l);
      }
    }
    const auto ps = table_->patch(*new_router, delta, config_.route_jobs);
    sources_resolved = ps.sources_resolved;
    ++stats_.patch_rounds;
    if (config_.tuning.verify_patches) {
      routing::RouteTable fresh(*new_router, config_.policy,
                                config_.route_jobs, config_.vc_lanes);
      std::ostringstream patched, solved;
      table_->dump(patched);
      fresh.dump(solved);
      if (patched.str() != solved.str()) {
        ++stats_.verify_fallbacks;
        tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [] {
          return std::string(
              "patch verify MISMATCH: falling back to full table");
        });
        table_.emplace(std::move(fresh));
        table_->enable_patching(*new_router);
        sources_resolved = hosts;
      }
    }
  }

  updown_ = std::move(new_ud);
  router_ = std::move(new_router);
  last_root_switch_ = root_sw;

  round_info_ = RoundInfo{};
  round_info_.fired = queue_.now();
  round_info_.full = full;
  round_info_.probes = reach.probes_sent;
  round_info_.full_walk_probes = reach.full_walk_probes;
  round_info_.sources_resolved = sources_resolved;
  round_info_.sources_total = hosts;
  round_unreachable_ = 0;
  for (std::uint16_t h = 0; h < hosts; ++h)
    if (!reach.host_up[h]) ++round_unreachable_;
  reach_ = std::move(reach);

  // The modelled recompute/download time: scoped rounds install sooner.
  const auto cost = static_cast<sim::Duration>(
      config_.tuning.probe_cost * round_info_.probes +
      config_.tuning.per_source_cost * sources_resolved);
  queue_.schedule_in(cost, [this] { install(); });
}

void RecoveryManager::install() {
  if (config_.on_orientation) config_.on_orientation(*updown_);
  table_->set_epoch(++epoch_);
  for (nic::Nic* nic : nics_) nic->load_routes(*table_);

  ++stats_.remaps;
  stats_.unreachable_hosts = round_unreachable_;
  stats_.scoped_probes += round_info_.probes;
  stats_.full_probe_equiv += round_info_.full_walk_probes;
  stats_.sources_patched += round_info_.sources_resolved;
  stats_.sources_total += round_info_.sources_total;

  round_info_.installed = queue_.now();
  rounds_.push_back(round_info_);
  const auto latency = queue_.now() - round_oldest_;
  latency_.add(static_cast<double>(latency));
  tracer_.emit(queue_.now(), sim::TraceCategory::kFault, [&] {
    return "remap #" + std::to_string(stats_.remaps) + " epoch " +
           std::to_string(epoch_) + (round_info_.full ? " (full)" : " (patch)") +
           ": " + std::to_string(round_info_.sources_resolved) + "/" +
           std::to_string(round_info_.sources_total) + " sources, " +
           std::to_string(round_info_.probes) + "/" +
           std::to_string(round_info_.full_walk_probes) + " probes, " +
           std::to_string(latency) + " ns after the fault";
  });

  phase_ = Phase::kIdle;
  if (pending_fresh_) {
    // Events landed while we were computing: their leading edge may already
    // be past, so fire as soon as the delay (measured from THEIR oldest
    // event) allows.
    phase_ = Phase::kArmed;
    const auto due = oldest_pending_ + config_.remap_delay;
    const auto now = queue_.now();
    queue_.schedule_in(due > now ? due - now : 0, [this] { fire(); });
  }
}

void RecoveryManager::register_metrics(
    telemetry::MetricRegistry& registry) const {
  auto counter = [&registry](const char* name, const std::uint64_t& field) {
    registry.register_source("fault", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  counter("remaps", stats_.remaps);
  counter("failed_remaps", stats_.failed_remaps);
  auto gauge = [&registry, this](const char* name, auto fn) {
    registry.register_source("fault", name, telemetry::MetricKind::kGauge,
                             std::move(fn));
  };
  gauge("recovery_latency_p50_ns",
        [this] { return latency_.empty() ? 0.0 : latency_.percentile(50); });
  gauge("recovery_latency_p99_ns",
        [this] { return latency_.empty() ? 0.0 : latency_.percentile(99); });
  gauge("recovery_latency_max_ns",
        [this] { return static_cast<double>(latency_.max()); });
  gauge("unreachable_hosts",
        [this] { return static_cast<double>(stats_.unreachable_hosts); });

  // The incremental machinery reports under its own component.
  auto rcounter = [&registry](const char* name, const std::uint64_t& field) {
    registry.register_source("recovery", name, telemetry::MetricKind::kCounter,
                             [&field] { return static_cast<double>(field); });
  };
  rcounter("scoped_probes", stats_.scoped_probes);
  rcounter("full_probe_equiv", stats_.full_probe_equiv);
  rcounter("sources_patched", stats_.sources_patched);
  rcounter("sources_total", stats_.sources_total);
  rcounter("flaps_quarantined", stats_.flaps_quarantined);
  rcounter("coalesced_events", stats_.coalesced_events);
  rcounter("full_resolves", stats_.full_resolves);
  rcounter("patch_rounds", stats_.patch_rounds);
  rcounter("overflow_full_resolves", stats_.overflow_full_resolves);
  rcounter("verify_fallbacks", stats_.verify_fallbacks);
  registry.register_source("recovery", "epoch", telemetry::MetricKind::kGauge,
                           [this] { return static_cast<double>(epoch_); });
}

}  // namespace itb::fault
