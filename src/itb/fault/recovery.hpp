// Remap-and-recover (§3).
//
// When GM's mapper detects a topology change it recomputes the up*/down*
// tree over the surviving fabric and downloads fresh route tables; GM's
// go-back-N retransmission masks the outage from applications. This module
// reproduces that loop against the fault injector: every topology-affecting
// window open/close schedules a (debounced) remap `remap_delay` later —
// modelling the detection + recompute time — which rebuilds the degraded
// topology, re-runs mapper discovery/up*/down*/ITB path computation with
// allow_partial, and hot-swaps every NIC's route table. The time from the
// first unrecovered fault event to the table swap is the recovery latency,
// recorded in a histogram and exported through the telemetry registry.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "itb/fault/injector.hpp"
#include "itb/mapper/mapper.hpp"
#include "itb/nic/nic.hpp"
#include "itb/routing/table.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::fault {

/// Copy of `full` with every impaired link removed. Hosts and switches all
/// remain (indices must stay stable for routing); hosts whose uplink died
/// are simply unattached.
topo::Topology degraded_topology(const topo::Topology& full,
                                 const FaultInjector& injector);

class RecoveryManager {
 public:
  struct Config {
    routing::Policy policy = routing::Policy::kItb;
    routing::ItbHostSelection selection = routing::ItbHostSelection::kLowestIndex;
    std::uint16_t preferred_root_host = 0;
    /// Detection + recompute + download time between a topology event and
    /// the route-table swap. Further events inside the delay coalesce into
    /// the same remap (debounce), as one mapper pass covers them all.
    sim::Duration remap_delay = 500 * sim::kUs;
  };

  struct Stats {
    std::uint64_t remaps = 0;
    std::uint64_t failed_remaps = 0;       // no live root host to map from
    std::uint64_t unreachable_hosts = 0;   // at the most recent remap
  };

  RecoveryManager(sim::EventQueue& queue, sim::Tracer& tracer,
                  const topo::Topology& fabric, FaultInjector& injector,
                  std::vector<nic::Nic*> nics, Config config);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  const Stats& stats() const { return stats_; }
  const telemetry::LatencyHistogram& recovery_latency() const { return latency_; }
  /// Route table installed by the most recent remap; nullptr before any.
  const routing::RouteTable* current_table() const {
    return table_ ? &table_->table : nullptr;
  }

  /// Publish remap counters + recovery-latency percentiles under "fault".
  void register_metrics(telemetry::MetricRegistry& registry) const;

 private:
  void on_topology_event(sim::Time t, const FaultWindow& w, bool opened);
  void remap();

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  const topo::Topology& fabric_;
  FaultInjector& injector_;
  std::vector<nic::Nic*> nics_;
  Config config_;
  Stats stats_;
  telemetry::LatencyHistogram latency_;

  std::optional<mapper::MapResult> table_;
  sim::EventId pending_;
  bool pending_armed_ = false;
  sim::Time oldest_event_ = 0;  // first unrecovered topology event
};

}  // namespace itb::fault
