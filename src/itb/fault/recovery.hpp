// Incremental remap-and-recover (§3, scaled up).
//
// When GM's mapper detects a topology change it recomputes the up*/down*
// tree over the surviving fabric and downloads fresh route tables; GM's
// go-back-N retransmission masks the outage from applications. PR 3's
// version of this loop re-ran FULL discovery plus an all-pairs route solve
// on every window edge — fine on a 3-host testbed, a stall generator on a
// 1024-host fat-tree where one policy solve costs ~0.4 s. This engine
// repairs incrementally, the way production fabric managers do:
//
//   * stable coordinates — faults become a link-usability mask over the
//     TRUE fabric (no degraded-topology renumbering), so switch/host/link
//     ids, reverse indexes and route dumps stay comparable across epochs;
//   * scoped re-probe — mapper::rediscover_scoped re-scans only the fault
//     boundary and newly exposed subtrees, not the whole fabric;
//   * route-table patching — RouteTable::patch re-solves only sources whose
//     stored routes are provably affected (link reverse index + ITB
//     candidate index + added-link attraction bound); every surviving row
//     is byte-identical to a from-scratch solve;
//   * epoch-safe hot-swap — each install bumps a monotonic epoch; NICs
//     re-source in-flight sends bound to a retired epoch instead of leaning
//     on the dropped_unroutable backstop;
//   * flap quarantine + storm control — per-link flap detection with
//     exponential backoff parks oscillating links, event coalescing folds
//     window edges into one round (leading edge fires remap_delay after the
//     FIRST unabsorbed event), and a bounded pending set degrades to one
//     full re-solve on overflow.
//
// The time from the first unabsorbed topology event to the table install is
// the recovery latency, recorded in a histogram and exported through the
// telemetry registry ("fault" keeps its PR 3 names; the incremental
// machinery reports under "recovery").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "itb/fault/injector.hpp"
#include "itb/mapper/mapper.hpp"
#include "itb/nic/nic.hpp"
#include "itb/routing/table.hpp"
#include "itb/sim/event_queue.hpp"
#include "itb/telemetry/histogram.hpp"
#include "itb/telemetry/metrics.hpp"

namespace itb::fault {

/// Copy of `full` with every impaired link removed. Hosts and switches all
/// remain (indices must stay stable for routing); hosts whose uplink died
/// are simply unattached. The incremental engine no longer routes over
/// these (it masks instead); kept for tests and offline analysis.
topo::Topology degraded_topology(const topo::Topology& full,
                                 const FaultInjector& injector);

/// Tuning for the incremental recovery engine. Defaults are sized for the
/// microsecond-scale fabrics the benches run; everything is overridable per
/// cluster.
struct RecoveryTuning {
  /// Master switch: false = PR 3 behaviour (full solve every round) while
  /// keeping the new coalescing/quarantine/epoch machinery.
  bool incremental = true;

  /// Re-solve every patched table from scratch too and byte-compare the
  /// dumps; on mismatch fall back to the full table (counted). The safety
  /// net the tests and the bench run with — fallbacks must stay 0.
  bool verify_patches = false;

  /// Modelled cost charged between the coalesced fire and the table
  /// install: probe_cost per probe actually sent plus per_source_cost per
  /// source re-solved. This is what makes scoped recovery FASTER in sim
  /// time, not just in host CPU.
  sim::Duration probe_cost = 1 * sim::kUs;
  sim::Duration per_source_cost = 2 * sim::kUs;

  /// Flap quarantine: >= flap_threshold usability transitions of one link
  /// within flap_window parks it for quarantine_base * backoff^level
  /// (capped at quarantine_max); a link that stays quiet for flap_window
  /// after its last transition resets its backoff level.
  int flap_threshold = 4;
  sim::Duration flap_window = 5 * sim::kMs;
  sim::Duration quarantine_base = 2 * sim::kMs;
  double quarantine_backoff = 2.0;
  sim::Duration quarantine_max = 50 * sim::kMs;

  /// Bounded pending-change set (storm control): more distinct dirty links
  /// than this between rounds degrades the next round to one full
  /// re-solve instead of queueing unbounded patch work.
  std::size_t max_pending_links = 64;
};

class RecoveryManager {
 public:
  struct Config {
    routing::Policy policy = routing::Policy::kItb;
    routing::ItbHostSelection selection = routing::ItbHostSelection::kLowestIndex;
    std::uint16_t preferred_root_host = 0;
    /// Detection time between the FIRST unabsorbed topology event and the
    /// recompute firing. Later events inside the delay coalesce into the
    /// same round without postponing it (leading edge, not debounce — a
    /// flap train can no longer starve recovery forever).
    sim::Duration remap_delay = 500 * sim::kUs;
    /// Threads for the per-source route solves of a round (0 = hardware
    /// concurrency). Tables are jobs-invariant.
    unsigned route_jobs = 1;
    /// Lane budget handed to kVcEscape solves (ignored by other policies).
    unsigned vc_lanes = 2;
    /// Invoked at each install with the orientation the new tables were
    /// solved under (TRUE fabric coordinates), BEFORE the NICs receive the
    /// tables. The cluster uses this to re-bind its deadlock engine so lane
    /// decisions keep agreeing with the installed routes.
    std::function<void(const routing::UpDown&)> on_orientation;
    RecoveryTuning tuning;
  };

  struct Stats {
    std::uint64_t remaps = 0;
    std::uint64_t failed_remaps = 0;      // no live root host to map from
    std::uint64_t unreachable_hosts = 0;  // at the most recent install

    // Incremental machinery (cumulative over rounds).
    std::uint64_t full_resolves = 0;     // rounds that re-solved all sources
    std::uint64_t patch_rounds = 0;      // rounds served by RouteTable::patch
    std::uint64_t scoped_probes = 0;     // probes actually charged
    std::uint64_t full_probe_equiv = 0;  // what full walks would have cost
    std::uint64_t sources_patched = 0;   // sources re-solved
    std::uint64_t sources_total = 0;     // sources a full solve would touch
    std::uint64_t coalesced_events = 0;  // events folded into an armed round
    std::uint64_t flaps_quarantined = 0;
    std::uint64_t overflow_full_resolves = 0;  // storm-control degradations
    std::uint64_t verify_fallbacks = 0;  // patched table mismatched full
  };

  /// One completed recovery round, for the bench's per-round ratios.
  struct RoundInfo {
    sim::Time fired = 0;
    sim::Time installed = 0;
    bool full = false;
    std::uint64_t probes = 0;
    std::uint64_t full_walk_probes = 0;
    std::uint64_t sources_resolved = 0;
    std::uint64_t sources_total = 0;
  };

  RecoveryManager(sim::EventQueue& queue, sim::Tracer& tracer,
                  const topo::Topology& fabric, FaultInjector& injector,
                  std::vector<nic::Nic*> nics, Config config);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  const Stats& stats() const { return stats_; }
  const telemetry::LatencyHistogram& recovery_latency() const { return latency_; }
  const std::vector<RoundInfo>& rounds() const { return rounds_; }

  /// Route table installed by the most recent remap; nullptr before any.
  const routing::RouteTable* current_table() const {
    return table_ ? &*table_ : nullptr;
  }

  /// Epoch of the most recently installed table (0 = the boot table).
  std::uint64_t epoch() const { return epoch_; }

  /// True while the flap detector has this link parked.
  bool quarantined(topo::LinkId link) const {
    return link < flap_.size() && flap_[link].quarantined;
  }

  /// Publish remap counters + recovery-latency percentiles under "fault"
  /// (PR 3 names) and the incremental gauges under "recovery".
  void register_metrics(telemetry::MetricRegistry& registry) const;

 private:
  enum class Phase : std::uint8_t { kIdle, kArmed, kComputing };

  struct FlapState {
    sim::Time window_start = 0;
    sim::Time last_transition = 0;
    int transitions = 0;
    int backoff_level = 0;
    bool quarantined = false;
  };

  void on_topology_event(sim::Time t, const FaultWindow& w, bool opened);
  std::vector<topo::LinkId> affected_links(const FaultWindow& w) const;
  void note_flap(topo::LinkId link, sim::Time t);
  void requalify(topo::LinkId link);
  void note_dirty(topo::LinkId link);
  void arm(sim::Time event_time);
  void fire();
  void install();
  std::vector<char> current_mask() const;
  std::optional<std::uint16_t> elect_root(const std::vector<char>& mask) const;

  sim::EventQueue& queue_;
  sim::Tracer& tracer_;
  const topo::Topology& fabric_;
  FaultInjector& injector_;
  std::vector<nic::Nic*> nics_;
  Config config_;
  Stats stats_;
  telemetry::LatencyHistogram latency_;
  std::vector<RoundInfo> rounds_;

  // Routing state, in TRUE fabric coordinates, alive across rounds.
  std::unique_ptr<routing::UpDown> updown_;
  std::unique_ptr<routing::Router> router_;
  std::optional<routing::RouteTable> table_;
  std::optional<mapper::ReachabilityMap> reach_;
  std::uint16_t last_root_switch_ = 0xFFFF;
  std::uint64_t epoch_ = 0;

  // Pending-change accumulation (events not yet consumed by a fire).
  Phase phase_ = Phase::kIdle;
  std::vector<topo::LinkId> pending_links_;
  std::vector<char> pending_flag_;   // per link: already in pending_links_
  bool pending_overflow_ = false;
  bool pending_fresh_ = false;       // unconsumed events exist
  sim::Time oldest_pending_ = 0;

  // The round currently between fire() and install().
  std::vector<topo::LinkId> round_links_;
  sim::Time round_oldest_ = 0;
  std::uint64_t round_unreachable_ = 0;
  RoundInfo round_info_;

  std::vector<FlapState> flap_;
};

}  // namespace itb::fault
